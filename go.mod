module radcrit

go 1.24
