package radcrit_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"radcrit"
)

// TestPlanFacadeEndToEnd drives the declarative surface exactly as a
// third-party consumer would: build a plan fluently, serialise it, load
// it back, and run it on both engine families with progress hooks.
func TestPlanFacadeEndToEnd(t *testing.T) {
	plan := radcrit.NewPlan(42, 120).
		Named("facade-e2e").
		WithKernelOnDevices("dgemm:128", "k40", "phi").
		WithThresholds(0, 2).
		WithStreamChunk(40)

	var buf bytes.Buffer
	if err := radcrit.SavePlan(&buf, plan); err != nil {
		t.Fatalf("SavePlan: %v", err)
	}
	loaded, err := radcrit.LoadPlan(&buf)
	if err != nil {
		t.Fatalf("LoadPlan: %v", err)
	}

	var cells int
	batch := radcrit.NewBatchRunner()
	batch.Progress = radcrit.Progress{OnCell: func(int, *radcrit.CellOutcome) { cells++ }}
	bres, err := batch.Run(context.Background(), loaded)
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}
	if cells != 2 {
		t.Errorf("OnCell fired %d times", cells)
	}
	sres, err := radcrit.NewStreamRunner().Run(context.Background(), loaded)
	if err != nil {
		t.Fatalf("stream run: %v", err)
	}
	for i := range bres.Cells {
		b, s := bres.Cells[i].Summary, sres.Cells[i].Summary
		if b.Tally != s.Tally {
			t.Errorf("cell %d: engines disagree on tally: %+v vs %+v", i, b.Tally, s.Tally)
		}
		for k := range b.SDCFIT {
			if b.SDCFIT[k] != s.SDCFIT[k] {
				t.Errorf("cell %d threshold %d: engines disagree on SDC FIT", i, k)
			}
		}
		if b.Tally.SDC == 0 {
			t.Errorf("cell %d: campaign produced no SDCs — test is vacuous", i)
		}
	}
}

// TestFacadeRejectsInvalidPlans pins the no-panic contract of the public
// surface: malformed plans come back as errors from every entry point.
func TestFacadeRejectsInvalidPlans(t *testing.T) {
	if _, err := radcrit.LoadPlan(strings.NewReader(`{"seed":1,"strikes":10,"cells":[{"device":"k40","kernel":"dgemm:7"}]}`)); err == nil {
		t.Errorf("LoadPlan accepted a non-tile DGEMM size")
	}
	bad := radcrit.NewPlan(1, 0).WithCell("k40", "dgemm:128")
	for name, r := range map[string]radcrit.Runner{
		"batch":  radcrit.NewBatchRunner(),
		"stream": radcrit.NewStreamRunner(),
		"matrix": radcrit.NewMatrixRunner(),
	} {
		if _, err := r.Run(context.Background(), bad); err == nil {
			t.Errorf("%s runner accepted a zero-strike plan", name)
		}
	}
	if _, err := radcrit.NewKernel("clamr:1x1"); err == nil {
		t.Errorf("NewKernel accepted an invalid CLAMR config")
	}
}

// TestFacadeCancellation pins ctx.Err() propagation through the facade.
func TestFacadeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	plan := radcrit.NewPlan(1, 50).WithCell("k40", "dgemm:128")
	if _, err := radcrit.NewStreamRunner().Run(ctx, plan); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled facade run returned %v", err)
	}
}
