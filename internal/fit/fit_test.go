package fit

import (
	"math"
	"testing"

	"radcrit/internal/beam"
)

func TestCrossSection(t *testing.T) {
	if CrossSection(10, 1e10) != 1e-9 {
		t.Fatal("cross section wrong")
	}
	if CrossSection(10, 0) != 0 {
		t.Fatal("zero fluence should give 0")
	}
}

func TestFITScaling(t *testing.T) {
	// 1e-9 cm^2 cross-section at 13 n/cm^2/h over 1e9 hours = 13 failures.
	got := FIT(1e-9)
	if math.Abs(got-13) > 1e-9 {
		t.Fatalf("FIT = %v, want 13", got)
	}
}

func TestFITFromCampaign(t *testing.T) {
	exp := beam.Exposure{
		Facility:      beam.LANSCE,
		Board:         beam.Board{Derating: 1},
		BeamHours:     100,
		ExecSeconds:   1,
		SensitiveArea: 1000,
	}
	f := FITFromCampaign(50, exp)
	if f <= 0 {
		t.Fatal("non-positive FIT")
	}
	if FITFromCampaign(100, exp) != 2*f {
		t.Fatal("FIT not linear in error count")
	}
}

func TestMTBF(t *testing.T) {
	// §I: Titan's ~18,688 GPUs see MTBFs of dozens of hours. With a
	// per-device FIT around 2500, MTBF = 1e9/(2500*18688) ≈ 21 h.
	mtbf := MTBFHours(2500, 18688)
	if mtbf < 5 || mtbf > 100 {
		t.Fatalf("Titan-scale MTBF %v h outside dozens-of-hours band", mtbf)
	}
	if !math.IsInf(MTBFHours(0, 100), 1) {
		t.Fatal("zero FIT should give infinite MTBF")
	}
}

func TestConfidenceInterval(t *testing.T) {
	lo, hi := ConfidenceInterval(100, 50, 500)
	if lo >= 100 || hi <= 100 {
		t.Fatalf("interval (%v,%v) should straddle the point estimate", lo, hi)
	}
	lo, hi = ConfidenceInterval(100, 0, 500)
	if lo != 0 || hi != 100 {
		t.Fatal("zero errors should return (0, point)")
	}
}

func TestNormalizer(t *testing.T) {
	n := NewNormalizer(200, 100)
	if n.Apply(200) != 100 || n.Apply(50) != 25 {
		t.Fatal("normalizer wrong")
	}
	id := NewNormalizer(0, 100)
	if id.Apply(7) != 7 {
		t.Fatal("degenerate normalizer should be identity")
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{Labels: []string{"a", "b"}, Values: []float64{3, 7}}
	if b.Total() != 10 {
		t.Fatal("total wrong")
	}
	s := b.Scale(2)
	if s.Values[0] != 6 || s.Values[1] != 14 {
		t.Fatal("scale wrong")
	}
	if b.Values[0] != 3 {
		t.Fatal("Scale mutated the receiver")
	}
}
