// Package fit computes failure-rate statistics: cross-sections from
// observed errors and fluence, FIT (Failures In Time) scaled to the
// natural neutron flux, MTBF projections for machine-scale deployments,
// and the relative (arbitrary-unit) normalisation the paper uses to
// protect business-sensitive absolute rates.
package fit

import (
	"math"

	"radcrit/internal/beam"
	"radcrit/internal/stats"
)

// HoursPerBillion is the FIT unit: failures per 10^9 device-hours.
const HoursPerBillion = 1e9

// CrossSection returns the experimental cross-section in cm^2 (arbitrary
// absolute scale here, consistent relative scale across experiments):
// observed errors divided by fluence.
func CrossSection(errors int, fluence float64) float64 {
	if fluence <= 0 {
		return 0
	}
	return float64(errors) / fluence
}

// FIT converts a cross-section to failures per 10^9 hours under the
// natural flux (13 n/cm^2/h at sea level, NYC reference).
func FIT(crossSection float64) float64 {
	return crossSection * beam.NaturalFlux * HoursPerBillion
}

// FITFromCampaign computes the FIT of an error class observed in a beam
// slot.
func FITFromCampaign(errors int, exp beam.Exposure) float64 {
	return FIT(CrossSection(errors, exp.Fluence()))
}

// ConfidenceInterval returns the 95% interval of a FIT estimate derived
// from `errors` observed events (Wilson interval on the per-strike
// proportion scaled to the point estimate).
func ConfidenceInterval(fitValue float64, errors, totalStrikes int) (lo, hi float64) {
	if errors <= 0 || totalStrikes <= 0 {
		return 0, fitValue
	}
	pLo, pHi := stats.WilsonInterval(errors, totalStrikes, 1.96)
	p := float64(errors) / float64(totalStrikes)
	if p == 0 {
		return 0, fitValue
	}
	return fitValue * pLo / p, fitValue * pHi / p
}

// MTBFHours returns the mean time between failures of a machine with n
// devices of the given per-device FIT, in hours. Titan-scale systems
// (18,688 GPUs) see radiation MTBFs of dozens of hours (§I).
func MTBFHours(fitPerDevice float64, devices int) float64 {
	total := fitPerDevice * float64(devices)
	if total <= 0 {
		return math.Inf(1)
	}
	return HoursPerBillion / total
}

// Normalizer rescales absolute FITs into the arbitrary units of the
// paper's figures: "as we use the same normalization for each device and
// code, relative FIT data still allows cross comparisons" (§V).
type Normalizer struct {
	scale float64
}

// NewNormalizer fixes the unit so that reference maps to target (e.g. the
// largest bar in a figure maps to 100 a.u.). A non-positive reference
// yields an identity normalizer.
func NewNormalizer(reference, target float64) *Normalizer {
	if reference <= 0 || target <= 0 {
		return &Normalizer{scale: 1}
	}
	return &Normalizer{scale: target / reference}
}

// Apply converts an absolute value to arbitrary units.
func (n *Normalizer) Apply(v float64) float64 { return v * n.scale }

// Breakdown is a FIT split by a categorical key (spatial pattern,
// outcome class, ...), the unit of the paper's stacked-bar figures.
type Breakdown struct {
	Labels []string
	Values []float64
}

// Total returns the summed FIT of the breakdown.
func (b Breakdown) Total() float64 {
	var t float64
	for _, v := range b.Values {
		t += v
	}
	return t
}

// Scale returns a copy with every value scaled by s.
func (b Breakdown) Scale(s float64) Breakdown {
	out := Breakdown{Labels: append([]string(nil), b.Labels...), Values: make([]float64, len(b.Values))}
	for i, v := range b.Values {
		out.Values[i] = v * s
	}
	return out
}
