package core

import (
	"math"
	"strings"
	"testing"

	"radcrit/internal/grid"
	"radcrit/internal/logdata"
	"radcrit/internal/metrics"
)

func report(dims grid.Dims, ms ...metrics.Mismatch) *metrics.Report {
	return &metrics.Report{Dims: dims, TotalElements: dims.Len(), Mismatches: ms}
}

func mk(x, y int, read, expected float64) metrics.Mismatch {
	return metrics.Mismatch{
		Coord: grid.Coord{X: x, Y: y}, Read: read, Expected: expected,
		RelErrPct: metrics.RelativeErrorPct(read, expected),
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	c := Analyze(nil, DefaultOptions())
	if c.TotalExecutions != 0 || c.CriticalSDCs != 0 {
		t.Fatal("empty analysis not zero")
	}
}

func TestAnalyzeFiltersAndSummarizes(t *testing.T) {
	dims := grid.Dims{X: 32, Y: 32, Z: 1}
	reports := []*metrics.Report{
		// Fully tolerable (all below 2%): cleared by the filter.
		report(dims, mk(1, 1, 100.5, 100)),
		// Critical: one large error.
		report(dims, mk(2, 2, 200, 100)),
		// Critical: a line of large errors.
		report(dims, mk(1, 5, 150, 100), mk(7, 5, 150, 100)),
	}
	c := Analyze(reports, DefaultOptions())
	if c.TotalExecutions != 3 || c.CriticalSDCs != 2 {
		t.Fatalf("counts wrong: %+v", c)
	}
	if math.Abs(c.FilteredFraction-1.0/3.0) > 1e-12 {
		t.Fatalf("filtered fraction = %v", c.FilteredFraction)
	}
	if c.Locality[metrics.Single] != 1 || c.Locality[metrics.Line] != 1 {
		t.Fatalf("locality histogram wrong: %v", c.Locality)
	}
	if c.IncorrectElements.Max != 2 {
		t.Fatalf("max incorrect elements = %v", c.IncorrectElements.Max)
	}
	if c.MeanRelErrPct.Max != 100 {
		t.Fatalf("max MRE = %v", c.MeanRelErrPct.Max)
	}
}

func TestAnalyzeNoFilterKeepsEverything(t *testing.T) {
	dims := grid.Dims{X: 8, Y: 8, Z: 1}
	reports := []*metrics.Report{report(dims, mk(0, 0, 100.0001, 100))}
	c := Analyze(reports, Options{ThresholdPct: 0})
	if c.CriticalSDCs != 1 {
		t.Fatal("zero threshold should keep all SDCs")
	}
}

func TestAnalyzeCapping(t *testing.T) {
	dims := grid.Dims{X: 8, Y: 8, Z: 1}
	reports := []*metrics.Report{report(dims, mk(0, 0, 1e6, 1))}
	capped := Analyze(reports, Options{ThresholdPct: 2, CapPct: 100})
	if capped.MeanRelErrPct.Max != 100 {
		t.Fatalf("cap not applied: %v", capped.MeanRelErrPct.Max)
	}
	uncapped := Analyze(reports, Options{ThresholdPct: 2})
	if uncapped.MeanRelErrPct.Max <= 100 {
		t.Fatal("no cap should keep the raw magnitude")
	}
}

func TestLocalityShares(t *testing.T) {
	dims := grid.Dims{X: 8, Y: 8, Z: 1}
	reports := []*metrics.Report{
		report(dims, mk(1, 1, 150, 100), mk(2, 1, 150, 100), mk(1, 2, 150, 100), mk(2, 2, 150, 100)), // square
		report(dims, mk(3, 3, 150, 100)), // single
	}
	c := Analyze(reports, DefaultOptions())
	if c.LocalityShare(metrics.Square) != 0.5 {
		t.Fatalf("square share = %v", c.LocalityShare(metrics.Square))
	}
	if c.SpreadShare() != 0.5 {
		t.Fatalf("spread share = %v", c.SpreadShare())
	}
}

func TestCorrelation(t *testing.T) {
	dims := grid.Dims{X: 64, Y: 64, Z: 1}
	// More elements <-> bigger errors: positive correlation.
	var reports []*metrics.Report
	for n := 1; n <= 5; n++ {
		var ms []metrics.Mismatch
		for i := 0; i < n; i++ {
			ms = append(ms, mk(i, n, 100+float64(n)*50, 100))
		}
		reports = append(reports, report(dims, ms...))
	}
	c := Analyze(reports, DefaultOptions())
	if c.CountVsMRECorrelation < 0.9 {
		t.Fatalf("correlation = %v", c.CountVsMRECorrelation)
	}
}

func TestAnalyzeLog(t *testing.T) {
	l := &logdata.Log{
		OutputDims: grid.Dims{X: 16, Y: 16, Z: 1},
		Events: []logdata.Event{
			{Class: 1 /* SDC */, Mismatches: []metrics.Mismatch{mk(1, 1, 150, 100)}},
		},
	}
	c := AnalyzeLog(l, DefaultOptions())
	if c.CriticalSDCs != 1 {
		t.Fatalf("log analysis wrong: %+v", c)
	}
}

func TestStringRendering(t *testing.T) {
	dims := grid.Dims{X: 8, Y: 8, Z: 1}
	c := Analyze([]*metrics.Report{report(dims, mk(0, 0, 150, 100))}, DefaultOptions())
	s := c.String()
	for _, want := range []string{"critical SDCs: 1", "incorrect elements", "locality", "single=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestVerdict(t *testing.T) {
	dims := grid.Dims{X: 8, Y: 8, Z: 1}
	manySmall := Analyze([]*metrics.Report{
		report(dims, mk(0, 0, 103, 100), mk(1, 0, 103, 100), mk(2, 0, 103, 100)),
	}, DefaultOptions())
	fewBig := Analyze([]*metrics.Report{
		report(dims, mk(0, 0, 1000, 100)),
	}, DefaultOptions())
	v := Verdict("XeonPhi", manySmall, "K40", fewBig)
	if !strings.Contains(v, "XeonPhi corrupts more elements") {
		t.Fatalf("verdict wrong:\n%s", v)
	}
	if !strings.Contains(v, "K40 produces larger") {
		t.Fatalf("verdict wrong:\n%s", v)
	}
	if !strings.Contains(v, "trade-off") {
		t.Fatal("trade-off phrasing missing")
	}
}
