// Package core is the paper's primary contribution as a reusable library:
// the error-criticality evaluation methodology. Given the mismatch reports
// of a set of irradiated executions (live from a campaign or re-parsed
// from public logs), it applies the four metrics of §III — incorrect
// element count, relative error, mean relative error, spatial locality —
// under a configurable imprecision threshold and produces the aggregate
// criticality profile the paper's figures are drawn from.
package core

import (
	"fmt"
	"sort"
	"strings"

	"radcrit/internal/logdata"
	"radcrit/internal/metrics"
	"radcrit/internal/stats"
)

// Options configure an analysis.
type Options struct {
	// ThresholdPct is the relative-error filter; mismatches at or below
	// it are tolerated (§III uses a conservative 2%).
	ThresholdPct float64
	// CapPct bounds per-element relative errors when averaging (the
	// paper caps at 100% for DGEMM and 20,000% for LavaMD figures).
	// Zero or negative disables capping.
	CapPct float64
}

// DefaultOptions returns the paper's conservative configuration.
func DefaultOptions() Options {
	return Options{ThresholdPct: metrics.DefaultThresholdPct}
}

// Criticality is the aggregate error-criticality profile of a set of
// irradiated executions.
type Criticality struct {
	Options Options

	// TotalExecutions is the number of SDC reports examined.
	TotalExecutions int
	// CriticalSDCs is how many remain SDCs after the filter.
	CriticalSDCs int
	// FilteredFraction is the share of executions the filter cleared —
	// the paper's "apparent reliability gain" of imprecise computing.
	FilteredFraction float64

	// IncorrectElements summarises metric 1 over critical SDCs.
	IncorrectElements Summary
	// MeanRelErrPct summarises metric 3 over critical SDCs.
	MeanRelErrPct Summary
	// Locality histograms metric 4 over critical SDCs.
	Locality map[metrics.Pattern]int
	// CountVsMRECorrelation is the Pearson correlation between metrics 1
	// and 3: positive values mean wider corruption is also bigger
	// corruption.
	CountVsMRECorrelation float64
}

// Summary holds order statistics of one metric.
type Summary struct {
	Mean, Median, P90, Max float64
}

func summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		Mean:   stats.Mean(xs),
		Median: stats.Median(xs),
		P90:    stats.Percentile(xs, 90),
		Max:    stats.Max(xs),
	}
}

// MaxRelErrPct is the ceiling applied to unrepresentable relative errors
// (expected value zero, NaN/Inf reads) when no explicit cap is configured:
// keeping aggregates finite without disturbing any realistic magnitude.
const MaxRelErrPct = 1e15

// Analyze applies the methodology to a set of per-execution reports.
func Analyze(reports []*metrics.Report, opts Options) *Criticality {
	cap := opts.CapPct
	if cap <= 0 || cap > MaxRelErrPct {
		cap = MaxRelErrPct
	}
	c := &Criticality{
		Options:         opts,
		TotalExecutions: len(reports),
		Locality:        make(map[metrics.Pattern]int),
	}
	var counts, mres []float64
	for _, rep := range reports {
		eff := rep
		if opts.ThresholdPct > 0 {
			eff = rep.Filter(opts.ThresholdPct)
		}
		if !eff.IsSDC() {
			continue
		}
		c.CriticalSDCs++
		counts = append(counts, float64(eff.Count()))
		mres = append(mres, eff.MeanRelErrPct(cap))
		c.Locality[eff.Locality()]++
	}
	if c.TotalExecutions > 0 {
		c.FilteredFraction = 1 - float64(c.CriticalSDCs)/float64(c.TotalExecutions)
	}
	c.IncorrectElements = summarize(counts)
	c.MeanRelErrPct = summarize(mres)
	c.CountVsMRECorrelation = stats.Pearson(counts, mres)
	return c
}

// AnalyzeLog applies the methodology to a parsed campaign log — the
// third-party re-analysis path the paper enables by publishing raw logs.
func AnalyzeLog(l *logdata.Log, opts Options) *Criticality {
	return Analyze(l.Reports(), opts)
}

// LocalityShare returns the fraction of critical SDCs with pattern p.
func (c *Criticality) LocalityShare(p metrics.Pattern) float64 {
	if c.CriticalSDCs == 0 {
		return 0
	}
	return float64(c.Locality[p]) / float64(c.CriticalSDCs)
}

// SpreadShare returns the cubic+square share: the errors that defeat
// row/column-structured hardening like ABFT.
func (c *Criticality) SpreadShare() float64 {
	return c.LocalityShare(metrics.Cubic) + c.LocalityShare(metrics.Square)
}

// String renders a compact human-readable profile.
func (c *Criticality) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "criticality over %d SDC executions (filter >%.2g%%):\n",
		c.TotalExecutions, c.Options.ThresholdPct)
	fmt.Fprintf(&sb, "  critical SDCs: %d (%.0f%% cleared by filter)\n",
		c.CriticalSDCs, 100*c.FilteredFraction)
	fmt.Fprintf(&sb, "  incorrect elements: mean %.1f, median %.1f, p90 %.1f, max %.0f\n",
		c.IncorrectElements.Mean, c.IncorrectElements.Median,
		c.IncorrectElements.P90, c.IncorrectElements.Max)
	fmt.Fprintf(&sb, "  mean relative error: mean %.4g%%, median %.4g%%, p90 %.4g%%, max %.4g%%\n",
		c.MeanRelErrPct.Mean, c.MeanRelErrPct.Median,
		c.MeanRelErrPct.P90, c.MeanRelErrPct.Max)
	fmt.Fprintf(&sb, "  locality:")
	keys := make([]metrics.Pattern, 0, len(c.Locality))
	for p := range c.Locality {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, p := range keys {
		fmt.Fprintf(&sb, " %s=%d", p, c.Locality[p])
	}
	fmt.Fprintf(&sb, "\n  count-vs-magnitude correlation: %.2f\n", c.CountVsMRECorrelation)
	return sb.String()
}

// Verdict compares two criticality profiles and phrases which is more
// critical, mirroring the paper's cross-architecture discussion (§V-E).
func Verdict(nameA string, a *Criticality, nameB string, b *Criticality) string {
	var sb strings.Builder
	moreElems := nameA
	if b.IncorrectElements.Median > a.IncorrectElements.Median {
		moreElems = nameB
	}
	bigger := nameA
	if b.MeanRelErrPct.Median > a.MeanRelErrPct.Median {
		bigger = nameB
	}
	fmt.Fprintf(&sb, "%s corrupts more elements per SDC; %s produces larger per-element errors.\n",
		moreElems, bigger)
	if moreElems != bigger {
		fmt.Fprintf(&sb, "Choosing a platform is the paper's trade-off: many small errors (%s) vs few large ones (%s).",
			moreElems, bigger)
	} else {
		fmt.Fprintf(&sb, "%s dominates both axes: it is strictly more error-critical here.", moreElems)
	}
	return sb.String()
}
