// Package injector turns a raw beam strike into one classified irradiated
// execution: it resolves the strike against the device architecture,
// applies the resulting injection to the real kernel, and classifies the
// outcome (Masked / SDC / Crash / Hang, §II-A).
//
// Logical masking is emergent: a syndrome that the architecture resolves
// to an SDC can still produce a bit-identical output (a flipped bit below
// one ulp of an accumulation, an already-consumed cache line) and is then
// reclassified as Masked, exactly as a beam experiment would observe it.
package injector

import (
	"sync"

	"radcrit/internal/arch"
	"radcrit/internal/beam"
	"radcrit/internal/fault"
	"radcrit/internal/kernels"
	"radcrit/internal/metrics"
	"radcrit/internal/xrand"
)

// Outcome is the classified result of one irradiated execution.
type Outcome struct {
	// Class is the observable outcome (§II-A).
	Class fault.OutcomeClass
	// Resource is the struck structure.
	Resource fault.Resource
	// Scope is the injection semantics (meaningful for SDC syndromes).
	Scope arch.Scope
	// Report holds the output mismatches; non-nil only for Class == SDC.
	Report *metrics.Report
}

// Session is a prepared (device, kernel) execution context. It hoists the
// per-strike overheads out of the strike loop: the occupancy profile is
// computed and validated once, the kernel's golden-state handle is
// obtained once, and the session owns the report pool that recycles
// mismatch reports across strikes, so a steady-state strike allocates
// (almost) nothing.
//
// Sessions are safe for concurrent use: a parallel campaign engine shares
// one Session across all of its workers (the pool is internally
// synchronised; everything else is immutable after construction).
type Session struct {
	dev     arch.Device
	kern    kernels.Kernel
	prof    arch.Profile
	golden  kernels.GoldenState
	reports metrics.ReportPool
	// batches recycles the per-span strike-assembly buffers of RunBatch.
	batches sync.Pool
}

// batchBuf is one recyclable RunBatch working set: the SDC strikes
// collected for the kernel's batch seam and their positions in the
// caller's outcome slice.
type batchBuf struct {
	items []kernels.BatchStrike
	idx   []int
}

// NewSession prepares a session for kern on dev, validating the profile.
func NewSession(dev arch.Device, kern kernels.Kernel) (*Session, error) {
	prof := kern.Profile(dev)
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	return &Session{dev: dev, kern: kern, prof: prof, golden: kern.Golden(dev)}, nil
}

// newSessionUnchecked prepares a session without profile validation, for
// the one-shot convenience paths that historically did not validate.
func newSessionUnchecked(dev arch.Device, kern kernels.Kernel) *Session {
	return &Session{dev: dev, kern: kern, prof: kern.Profile(dev), golden: kern.Golden(dev)}
}

// Device returns the session's device.
func (s *Session) Device() arch.Device { return s.dev }

// Kernel returns the session's kernel.
func (s *Session) Kernel() kernels.Kernel { return s.kern }

// Profile returns the validated occupancy profile.
func (s *Session) Profile() arch.Profile { return s.prof }

// Golden returns the session's golden-state handle.
func (s *Session) Golden() kernels.GoldenState { return s.golden }

// RunOne executes one strike in the session and classifies it.
//
// Ownership: a non-nil Outcome.Report is borrowed from the session's
// report pool. The caller owns it and may hand it back via ReleaseReport
// once nothing can reference it again (the streaming engine does, after
// the chunk's sinks have consumed it); callers that simply drop it leave
// it to the garbage collector, which is always safe.
func (s *Session) RunOne(strike fault.Strike, rng *xrand.RNG) Outcome {
	syn := s.dev.ResolveStrike(s.prof, strike, rng)
	out := Outcome{Class: syn.Outcome, Resource: syn.Resource, Scope: syn.Injection.Scope}
	if syn.Outcome != fault.SDC {
		return out
	}
	rep := s.kern.RunInjectedPooled(s.golden, syn.Injection, rng, &s.reports)
	if rep.Count() == 0 {
		// Logically masked: the corrupted state never reached the output.
		// The empty report goes straight back to the pool — the common
		// case of a campaign, and now allocation-free.
		s.reports.Put(rep)
		out.Class = fault.Masked
		return out
	}
	out.Report = rep
	return out
}

// RunBatch executes a span of strikes and classifies each into outs. It
// is bit-identical to calling RunOne per index — every strike consumes
// only its own rngs[i], so resolving all syndromes up front and running
// the SDC survivors through the kernel's cross-strike batch seam
// (kernels.BatchRunner, falling back to a RunInjectedPooled loop) changes
// locality, not results. Report ownership matches RunOne: non-nil
// Outcome.Reports are borrowed from the session pool.
//
// strikes, rngs and outs must have equal lengths.
func (s *Session) RunBatch(strikes []fault.Strike, rngs []*xrand.RNG, outs []Outcome) {
	bb, _ := s.batches.Get().(*batchBuf)
	if bb == nil {
		bb = &batchBuf{}
	}
	items, idx := bb.items[:0], bb.idx[:0]
	for i := range strikes {
		syn := s.dev.ResolveStrike(s.prof, strikes[i], rngs[i])
		outs[i] = Outcome{Class: syn.Outcome, Resource: syn.Resource, Scope: syn.Injection.Scope}
		if syn.Outcome != fault.SDC {
			continue
		}
		items = append(items, kernels.BatchStrike{Inj: syn.Injection, RNG: rngs[i]})
		idx = append(idx, i)
	}
	kernels.RunBatch(s.kern, s.golden, items, &s.reports)
	for j, i := range idx {
		rep := items[j].Report
		items[j].Report = nil // the pooled buffer must not retain reports
		items[j].RNG = nil
		if rep == nil || rep.Count() == 0 {
			// Logically masked: the corrupted state never reached the
			// output. The empty report goes straight back to the pool.
			s.reports.Put(rep)
			outs[i].Class = fault.Masked
			continue
		}
		outs[i].Report = rep
	}
	bb.items, bb.idx = items, idx
	s.batches.Put(bb)
}

// ReleaseReport returns a report obtained from RunOne to the session's
// pool for reuse by a later strike. Call it only when no reference to the
// report (including slices handed out by its accessors) can be used
// again; consumers that retain reports must Clone them first. Nil reports
// are ignored.
func (s *Session) ReleaseReport(rep *metrics.Report) {
	s.reports.Put(rep)
}

// RunOne executes one strike against kern on dev and classifies it. For
// strike loops, prepare a Session instead of paying the setup per call.
func RunOne(dev arch.Device, kern kernels.Kernel, strike fault.Strike, rng *xrand.RNG) Outcome {
	return newSessionUnchecked(dev, kern).RunOne(strike, rng)
}

// RunMany executes n strikes with independent sub-streams of rng, at
// uniformly random execution moments and beam-distributed deposition
// energies. It returns the outcomes in order.
func RunMany(dev arch.Device, kern kernels.Kernel, n int, rng *xrand.RNG) []Outcome {
	ses := newSessionUnchecked(dev, kern)
	outs := make([]Outcome, n)
	for i := range outs {
		sub := rng.Split(uint64(i) + 1)
		strike := fault.Strike{When: sub.Float64(), Energy: beam.StrikeEnergy(sub)}
		outs[i] = ses.RunOne(strike, sub)
	}
	return outs
}

// Tally summarises outcome classes.
type Tally struct {
	Masked, SDC, Crash, Hang int
}

// Count returns the total number of outcomes tallied.
func (t Tally) Count() int { return t.Masked + t.SDC + t.Crash + t.Hang }

// SDCToDUERatio returns SDCs per crash-or-hang (the paper's §V preamble
// statistic). It returns 0 when no crashes or hangs were observed.
func (t Tally) SDCToDUERatio() float64 {
	due := t.Crash + t.Hang
	if due == 0 {
		return 0
	}
	return float64(t.SDC) / float64(due)
}

// TallyOutcomes counts outcome classes.
func TallyOutcomes(outs []Outcome) Tally {
	var t Tally
	for _, o := range outs {
		switch o.Class {
		case fault.Masked:
			t.Masked++
		case fault.SDC:
			t.SDC++
		case fault.Crash:
			t.Crash++
		case fault.Hang:
			t.Hang++
		}
	}
	return t
}
