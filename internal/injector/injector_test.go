package injector

import (
	"testing"

	"radcrit/internal/beam"
	"radcrit/internal/fault"
	"radcrit/internal/k40"
	"radcrit/internal/kernels/dgemm"
	"radcrit/internal/phi"
	"radcrit/internal/xrand"
)

func TestRunOneClassifies(t *testing.T) {
	dev := k40.New()
	kern := dgemm.New(128)
	rng := xrand.New(1)
	seen := map[fault.OutcomeClass]int{}
	for i := 0; i < 400; i++ {
		sub := rng.Split(uint64(i))
		out := RunOne(dev, kern, fault.Strike{When: sub.Float64(), Energy: 1}, sub)
		seen[out.Class]++
		if out.Class == fault.SDC {
			if out.Report == nil || out.Report.Count() == 0 {
				t.Fatal("SDC outcome without mismatches")
			}
		} else if out.Report != nil {
			t.Fatal("non-SDC outcome carries a report")
		}
	}
	if seen[fault.SDC] == 0 || seen[fault.Masked] == 0 {
		t.Fatalf("outcome mix degenerate: %v", seen)
	}
}

func TestLogicalMaskingReclassifies(t *testing.T) {
	// Over enough strikes, some architecturally-SDC syndromes must be
	// logically masked by the kernel (sub-ulp deltas, consumed lines),
	// so Masked count exceeds the architectural masking alone.
	dev := k40.New()
	kern := dgemm.New(128)
	prof := kern.Profile(dev)
	rng := xrand.New(7)
	architectural := 0
	observed := 0
	const n = 600
	for i := 0; i < n; i++ {
		sub := rng.Split(uint64(i))
		strike := fault.Strike{When: sub.Float64(), Energy: 1}
		// Architectural classification with an identical RNG stream.
		archRng := rng.Split(uint64(i))
		syn := dev.ResolveStrike(prof, strike, archRng)
		if syn.Outcome == fault.SDC {
			architectural++
			out := RunOne(dev, kern, strike, sub)
			if out.Class == fault.SDC {
				observed++
			}
		}
	}
	if architectural == 0 {
		t.Fatal("no architectural SDCs sampled")
	}
	if observed >= architectural {
		t.Fatalf("no logical masking observed: %d of %d survived", observed, architectural)
	}
}

func TestSessionMatchesRunOne(t *testing.T) {
	// The prepared-session hot path and the one-shot convenience path
	// must classify identically: both resolve the same profile and golden
	// state, so only the per-call setup cost differs.
	dev := k40.New()
	kern := dgemm.New(128)
	ses, err := NewSession(dev, kern)
	if err != nil {
		t.Fatal(err)
	}
	if ses.Device() != dev || ses.Kernel() != kern {
		t.Fatal("session identity accessors wrong")
	}
	if err := ses.Profile().Validate(); err != nil {
		t.Fatal(err)
	}
	if ses.Golden() == nil {
		t.Fatal("session has no golden handle")
	}
	rng := xrand.New(9)
	for i := 0; i < 200; i++ {
		strike := fault.Strike{When: rng.Split(uint64(i)).Float64(), Energy: 1.2}
		a := ses.RunOne(strike, rng.Split(uint64(i)+1))
		b := RunOne(dev, kern, strike, rng.Split(uint64(i)+1))
		if a.Class != b.Class || a.Resource != b.Resource || a.Scope != b.Scope {
			t.Fatalf("strike %d: session %+v != convenience %+v", i, a, b)
		}
		if (a.Report == nil) != (b.Report == nil) {
			t.Fatalf("strike %d: report presence differs", i)
		}
		if a.Report != nil && a.Report.Count() != b.Report.Count() {
			t.Fatalf("strike %d: report sizes differ", i)
		}
	}
}

func TestRunManyUsesBeamEnergyDistribution(t *testing.T) {
	// RunMany must sample strike energies through beam.StrikeEnergy — the
	// single source of the deposition-energy distribution — so the two
	// strike paths cannot drift. Replaying the RNG stream reproduces the
	// exact energies RunMany consumed.
	dev := k40.New()
	kern := dgemm.New(128)
	outs := RunMany(dev, kern, 30, xrand.New(3))
	if len(outs) != 30 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	rng := xrand.New(3)
	for i := 0; i < 30; i++ {
		sub := rng.Split(uint64(i) + 1)
		strike := fault.Strike{When: sub.Float64(), Energy: beam.StrikeEnergy(sub)}
		out := RunOne(dev, kern, strike, sub)
		if out.Class != outs[i].Class || out.Resource != outs[i].Resource {
			t.Fatalf("strike %d: replay %+v != RunMany %+v", i, out, outs[i])
		}
	}
}

func TestRunManyDeterministic(t *testing.T) {
	dev := phi.New()
	kern := dgemm.New(128)
	a := RunMany(dev, kern, 50, xrand.New(3))
	b := RunMany(dev, kern, 50, xrand.New(3))
	for i := range a {
		if a[i].Class != b[i].Class || a[i].Resource != b[i].Resource {
			t.Fatalf("run %d diverged between identical campaigns", i)
		}
	}
}

func TestTally(t *testing.T) {
	outs := []Outcome{
		{Class: fault.Masked}, {Class: fault.SDC}, {Class: fault.SDC},
		{Class: fault.Crash}, {Class: fault.Hang},
	}
	tl := TallyOutcomes(outs)
	if tl.Masked != 1 || tl.SDC != 2 || tl.Crash != 1 || tl.Hang != 1 {
		t.Fatalf("tally wrong: %+v", tl)
	}
	if tl.Count() != 5 {
		t.Fatal("count wrong")
	}
	if tl.SDCToDUERatio() != 1 {
		t.Fatalf("ratio = %v", tl.SDCToDUERatio())
	}
	if (Tally{SDC: 5}).SDCToDUERatio() != 0 {
		t.Fatal("zero DUE should return 0")
	}
}
