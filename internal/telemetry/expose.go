package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type the Handler
// answers with.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns the GET /metrics endpoint: the registry rendered in
// Prometheus text format 0.0.4.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		bw := bufio.NewWriter(w)
		r.WritePrometheus(bw)
		_ = bw.Flush()
	})
}

// WritePrometheus renders every family: families in name order, series
// in label-value order, HELP/TYPE lines once per family.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, f := range r.sortedFamilies() {
		f.write(w)
	}
}

// sample is one exposition line's payload before formatting.
type sample struct {
	labelValues []string
	value       float64
	s           *series // static families; nil for collector samples
}

func (f *family) write(w io.Writer) {
	var samples []sample
	if f.collect != nil {
		f.collect(func(labelValues []string, v float64) {
			if len(labelValues) != len(f.labels) {
				panic(fmt.Sprintf("telemetry: collector for %q emitted %d label values, want %d", f.name, len(labelValues), len(f.labels)))
			}
			samples = append(samples, sample{labelValues: append([]string(nil), labelValues...), value: v})
		})
	} else {
		f.mu.RLock()
		for _, s := range f.children {
			samples = append(samples, sample{labelValues: s.labels, s: s})
		}
		if f.overflow != nil {
			samples = append(samples, sample{labelValues: f.overflow.labels, s: f.overflow})
		}
		f.mu.RUnlock()
	}
	// Families render their HELP/TYPE metadata even with zero series
	// (legal in the text format): a scraper can rely on a registered
	// family being discoverable before its first sample, and an idle
	// vec — a drained queue's depth gauge, say — does not flap in and
	// out of the exposition.
	sort.Slice(samples, func(i, j int) bool {
		a, b := samples[i].labelValues, samples[j].labelValues
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	for _, sm := range samples {
		switch {
		case sm.s == nil:
			writeSample(w, f.name, f.labels, sm.labelValues, "", "", formatFloat(sm.value))
		case f.kind == kindCounter:
			writeSample(w, f.name, f.labels, sm.labelValues, "", "", strconv.FormatUint(sm.s.c.Value(), 10))
		case f.kind == kindGauge:
			writeSample(w, f.name, f.labels, sm.labelValues, "", "", formatFloat(sm.s.g.Value()))
		case f.kind == kindHistogram:
			h := sm.s.h
			var cum uint64
			for i, ub := range h.upper {
				cum += h.counts[i].Load()
				writeSample(w, f.name+"_bucket", f.labels, sm.labelValues, "le", formatFloat(ub), strconv.FormatUint(cum, 10))
			}
			cum += h.counts[len(h.upper)].Load()
			writeSample(w, f.name+"_bucket", f.labels, sm.labelValues, "le", "+Inf", strconv.FormatUint(cum, 10))
			writeSample(w, f.name+"_sum", f.labels, sm.labelValues, "", "", formatFloat(h.Sum()))
			writeSample(w, f.name+"_count", f.labels, sm.labelValues, "", "", strconv.FormatUint(h.Count(), 10))
		}
	}
}

// writeSample renders one line: name{labels[,extraName="extraValue"]} value.
func writeSample(w io.Writer, name string, labelNames, labelValues []string, extraName, extraValue, value string) {
	io.WriteString(w, name)
	if len(labelNames) > 0 || extraName != "" {
		io.WriteString(w, "{")
		for i, ln := range labelNames {
			if i > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, `%s="%s"`, ln, escapeLabel(labelValues[i]))
		}
		if extraName != "" {
			if len(labelNames) > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, `%s="%s"`, extraName, escapeLabel(extraValue))
		}
		io.WriteString(w, "}")
	}
	io.WriteString(w, " ")
	io.WriteString(w, value)
	io.WriteString(w, "\n")
}

// formatFloat renders a sample value: shortest round-trip decimal, with
// the infinities in Prometheus spelling.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP line: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// RegisterBuildInfo exports the conventional build_info gauge: constant
// 1, with the build identity in labels (version string, Go runtime, and
// the host's core count — the denominator of any utilization ratio).
func RegisterBuildInfo(r *Registry, name, version string) {
	cores := strconv.Itoa(runtime.NumCPU())
	goVersion := runtime.Version()
	r.GaugeVecFunc(name,
		"Build and host identity; always 1.",
		[]string{"version", "go", "cores"},
		func(emit func([]string, float64)) {
			emit([]string{version, goVersion, cores}, 1)
		})
}
