// Package telemetry is radcrit's zero-dependency metrics subsystem: a
// Registry of counters, gauges and histograms with atomic,
// allocation-free hot paths, bounded-cardinality label vectors, and a
// Prometheus text-format (version 0.0.4) exposition handler (expose.go).
//
// Design rules (DESIGN.md §14):
//
//   - Hot paths touch pre-resolved children only: resolve a vec's child
//     once (With) and hold it; Inc/Add/Set/Observe are single atomic
//     operations with no allocation.
//   - Label cardinality is bounded per family. A label set beyond the
//     cap collapses into a shared overflow series (every label value
//     "overflow") and is counted on telemetry_series_dropped_total, so a
//     hostile or buggy label source can never grow memory without bound.
//   - Scrape-time collectors (GaugeFunc and friends) are the preferred
//     instrumentation for state that already lives behind a lock (queue
//     depths, store sizes, lease tables): they cost nothing between
//     scrapes and are always consistent with the source of truth.
//
// Metric and label names follow the Prometheus data model:
// [a-zA-Z_:][a-zA-Z0-9_:]* for metrics, [a-zA-Z_][a-zA-Z0-9_]* for
// labels. Registration errors (bad names, conflicting re-registration)
// panic: they are programmer errors, caught by the first scrape of any
// test. Re-registering an identical vec/scalar returns the existing one,
// so independent components may share a registry without coordination.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultSeriesCap bounds the children of one labeled family unless the
// family was registered with an explicit Cap option. tenant × kernel ×
// device × class products stay far below this; the cap exists for label
// values that come from the wire (tenant names, worker names).
const DefaultSeriesCap = 256

// overflowValue replaces every label value of a series rejected by the
// cardinality cap.
const overflowValue = "overflow"

// metric kinds, in exposition TYPE-line spelling.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop; lock-free).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram observes float64 values into fixed cumulative buckets.
// Observe is a bucket scan plus three atomic operations — no allocation,
// no lock.
type Histogram struct {
	upper  []float64       // ascending bucket upper bounds (exclusive of +Inf)
	counts []atomic.Uint64 // len(upper)+1; the last is the +Inf bucket
	sum    Gauge           // float64 accumulator (atomic CAS add)
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// DefBuckets are general-purpose latency buckets in seconds, 1ms..60s.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// ExpBuckets returns n exponential bucket bounds starting at start and
// multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("telemetry: ExpBuckets wants start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// series is one labeled child of a family.
type series struct {
	labels []string // values, in the family's label-name order
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one registered metric name.
type family struct {
	name    string
	help    string
	kind    string
	labels  []string
	buckets []float64 // histograms only
	cap     int

	mu       sync.RWMutex
	children map[string]*series
	overflow *series

	// collect, when non-nil, makes this a scrape-time family: samples
	// come from the callback instead of children.
	collect func(emit func(labelValues []string, v float64))

	reg *Registry
}

// Registry holds a set of metric families and renders them in Prometheus
// text format (WritePrometheus / Handler in expose.go). Safe for
// concurrent use. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	dropped  atomic.Uint64
}

// NewRegistry builds an empty registry with the built-in
// telemetry_series_dropped_total self-metric.
func NewRegistry() *Registry {
	r := &Registry{families: map[string]*family{}}
	r.CounterFunc("telemetry_series_dropped_total",
		"Label-vector lookups rejected by a family's cardinality cap and folded into its overflow series.",
		func() float64 { return float64(r.dropped.Load()) })
	return r
}

// VecOpt configures a labeled family at registration.
type VecOpt func(*family)

// Cap overrides the family's series cap (default DefaultSeriesCap).
func Cap(n int) VecOpt {
	return func(f *family) {
		if n > 0 {
			f.cap = n
		}
	}
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// register installs (or, for an identical static re-registration,
// returns) a family. Conflicts panic: two components disagreeing about a
// metric's shape is a bug no scrape should paper over.
func (r *Registry) register(name, help, kind string, labels []string, buckets []float64, collect func(func([]string, float64)), opts []VecOpt) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("telemetry: metric %q: invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.families[name]; ok {
		if old.kind != kind || !equalStrings(old.labels, labels) || !equalFloats(old.buckets, buckets) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different shape", name))
		}
		if collect != nil || old.collect != nil {
			panic(fmt.Sprintf("telemetry: collector metric %q registered twice", name))
		}
		return old
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		cap:     DefaultSeriesCap,
		collect: collect,
		reg:     r,
	}
	if collect == nil {
		f.children = map[string]*series{}
	}
	for _, o := range opts {
		o(f)
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// newSeries builds a child with the family's kind-specific state.
func (f *family) newSeries(values []string) *series {
	s := &series{labels: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = &Histogram{
			upper:  f.buckets,
			counts: make([]atomic.Uint64, len(f.buckets)+1),
		}
	}
	return s
}

// child resolves one label-value tuple, applying the cardinality cap.
func (f *family) child(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.RLock()
	s := f.children[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.children[key]; s != nil {
		return s
	}
	if len(f.children) >= f.cap {
		f.reg.dropped.Add(1)
		if f.overflow == nil {
			ov := make([]string, len(f.labels))
			for i := range ov {
				ov[i] = overflowValue
			}
			f.overflow = f.newSeries(ov)
		}
		return f.overflow
	}
	s = f.newSeries(values)
	f.children[key] = s
	return s
}

// --- static scalars ---

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil, nil, nil).child(nil).c
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil, nil, nil).child(nil).g
}

// Histogram registers (or returns) an unlabeled histogram over the given
// ascending bucket upper bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.register(name, help, kindHistogram, nil, buckets, nil, nil).child(nil).h
}

// --- label vectors ---

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With resolves one child; hold the result, don't re-resolve per event
// on hot paths.
func (v *CounterVec) With(labelValues ...string) *Counter { return v.f.child(labelValues).c }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With resolves one child.
func (v *GaugeVec) With(labelValues ...string) *Gauge { return v.f.child(labelValues).g }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With resolves one child.
func (v *HistogramVec) With(labelValues ...string) *Histogram { return v.f.child(labelValues).h }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels []string, opts ...VecOpt) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil, nil, opts)}
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels []string, opts ...VecOpt) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil, nil, opts)}
}

// HistogramVec registers (or returns) a labeled histogram family (nil
// buckets selects DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels []string, opts ...VecOpt) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.register(name, help, kindHistogram, labels, buckets, nil, opts)}
}

// --- scrape-time collectors ---

// CounterFunc registers a counter whose value is read at scrape time —
// for monotonic counts that already live behind someone else's lock.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounter, nil, nil, func(emit func([]string, float64)) {
		emit(nil, fn())
	}, nil)
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGauge, nil, nil, func(emit func([]string, float64)) {
		emit(nil, fn())
	}, nil)
}

// GaugeVecFunc registers a labeled gauge family whose samples are
// produced at scrape time by collect calling emit once per series. The
// emitted label-value slices must match len(labels); violations panic at
// scrape.
func (r *Registry) GaugeVecFunc(name, help string, labels []string, collect func(emit func(labelValues []string, v float64))) {
	r.register(name, help, kindGauge, labels, nil, collect, nil)
}

// CounterVecFunc is GaugeVecFunc for monotonic counters.
func (r *Registry) CounterVecFunc(name, help string, labels []string, collect func(emit func(labelValues []string, v float64))) {
	r.register(name, help, kindCounter, labels, nil, collect, nil)
}

// SeriesCount reports a family's live child count (tests, capacity
// monitoring). Collector families report 0.
func (r *Registry) SeriesCount(name string) int {
	r.mu.Lock()
	f := r.families[name]
	r.mu.Unlock()
	if f == nil || f.collect != nil {
		return 0
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.children)
}

// sortedFamilies snapshots the family list in name order for exposition.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
