package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionGolden pins the Prometheus text format 0.0.4 rendering
// byte for byte: HELP escaping, label-value escaping and ordering,
// cumulative histogram buckets with the le label, family name ordering.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("z_requests_total", "Requests.\nSecond line with \\ backslash.", []string{"tenant", "code"})
	c.With("beta", "200").Add(3)
	c.With("alpha", `quo"te`).Inc() // value escaped in the output
	g := r.Gauge("a_depth", "Queue depth.")
	g.Set(2)
	h := r.HistogramVec("m_seconds", "Latency.", []float64{0.25, 0.5}, []string{"kernel"})
	hd := h.With("dgemm")
	hd.Observe(0.1)
	hd.Observe(0.3)
	hd.Observe(9)
	r.GaugeVecFunc("b_lag", "Per-tenant lag.", []string{"tenant"}, func(emit func([]string, float64)) {
		emit([]string{"beta"}, -0.5)
		emit([]string{"alpha"}, 1.5)
	})

	var sb strings.Builder
	r.WritePrometheus(&sb)
	got := sb.String()

	want := `# HELP a_depth Queue depth.
# TYPE a_depth gauge
a_depth 2
# HELP b_lag Per-tenant lag.
# TYPE b_lag gauge
b_lag{tenant="alpha"} 1.5
b_lag{tenant="beta"} -0.5
# HELP m_seconds Latency.
# TYPE m_seconds histogram
m_seconds_bucket{kernel="dgemm",le="0.25"} 1
m_seconds_bucket{kernel="dgemm",le="0.5"} 2
m_seconds_bucket{kernel="dgemm",le="+Inf"} 3
m_seconds_sum{kernel="dgemm"} 9.4
m_seconds_count{kernel="dgemm"} 3
# HELP telemetry_series_dropped_total Label-vector lookups rejected by a family's cardinality cap and folded into its overflow series.
# TYPE telemetry_series_dropped_total counter
telemetry_series_dropped_total 0
# HELP z_requests_total Requests.\nSecond line with \\ backslash.
# TYPE z_requests_total counter
z_requests_total{tenant="alpha",code="quo\"te"} 1
z_requests_total{tenant="beta",code="200"} 3
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestEmptyFamilyKeepsMetadata: a registered vec with no series yet (or
// whose collector emits nothing) still renders HELP/TYPE, so families
// are discoverable before first use and idle gauges don't flap out of
// the exposition.
func TestEmptyFamilyKeepsMetadata(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("idle_total", "Never incremented.", []string{"tenant"})
	r.GaugeVecFunc("empty_lag", "Collector with nothing to say.", []string{"tenant"},
		func(emit func([]string, float64)) {})
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP idle_total Never incremented.\n# TYPE idle_total counter\n",
		"# TYPE empty_lag gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "idle_total{") || strings.Contains(out, "empty_lag{") {
		t.Errorf("empty family rendered sample lines:\n%s", out)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r, "radcrit_build_info", "radcrit test-version")
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, `radcrit_build_info{version="radcrit test-version",go="go`) ||
		!strings.Contains(out, `"} 1`) {
		t.Errorf("build info missing:\n%s", out)
	}
}
