package telemetry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentMutation hammers one counter, gauge and histogram (and a
// shared vec) from many goroutines — the -race proof that every hot-path
// mutation is an atomic operation, plus an exact-count check that no
// increment is lost.
func TestConcurrentMutation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2, 4})
	vec := r.CounterVec("v_total", "", []string{"tenant"})

	const workers = 8
	const iters = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tc := vec.With(fmt.Sprintf("t%d", w%4))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 5))
				tc.Inc()
				// Interleave scrapes with mutation: the exposition path
				// must be safe against live writers.
				if i%1000 == 0 {
					var sb strings.Builder
					r.WritePrometheus(&sb)
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != workers*iters {
		t.Errorf("gauge = %v, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	var vecTotal uint64
	for i := 0; i < 4; i++ {
		vecTotal += vec.With(fmt.Sprintf("t%d", i)).Value()
	}
	if vecTotal != workers*iters {
		t.Errorf("vec total = %d, want %d", vecTotal, workers*iters)
	}
}

// TestBoundedCardinality: a label source beyond the family's cap folds
// into the shared overflow series instead of growing the table, and the
// rejections are counted on the registry self-metric.
func TestBoundedCardinality(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("bounded_total", "", []string{"tenant"}, Cap(4))
	for i := 0; i < 100; i++ {
		vec.With(fmt.Sprintf("t%d", i)).Inc()
	}
	if got := r.SeriesCount("bounded_total"); got != 4 {
		t.Fatalf("series count = %d, want cap 4", got)
	}
	// The 96 rejected label sets all landed on one overflow child (the
	// read itself is a 97th rejected lookup, but no Inc).
	if got := vec.With("anything-else").Value(); got != 96 {
		t.Errorf("overflow series = %d, want 96", got)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `bounded_total{tenant="overflow"} 96`) {
		t.Errorf("exposition missing overflow series:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "telemetry_series_dropped_total 97") {
		t.Errorf("exposition missing dropped counter:\n%s", sb.String())
	}
	// Existing children keep resolving to their own series.
	if got := vec.With("t1").Value(); got != 1 {
		t.Errorf("t1 = %d, want 1", got)
	}
}

// TestIdempotentRegistration: re-registering an identical family returns
// the same underlying state; a conflicting shape panics.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "help")
	b := r.Counter("dup_total", "help")
	a.Inc()
	if b.Value() != 1 {
		t.Errorf("re-registered counter is not the same series")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("dup_total", "now a gauge")
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9leading", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
	defer func() {
		if recover() == nil {
			t.Errorf("bad label name did not panic")
		}
	}()
	r.CounterVec("ok_total", "", []string{"bad-label"})
}

func TestGaugeSetAndAdd(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1.25)
	if got := g.Value(); got != 1.25 {
		t.Errorf("gauge = %v, want 1.25", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	// Bucket occupancy: le=0.1 -> 2 (0.05, 0.1 inclusive), le=1 -> 1,
	// le=10 -> 1, +Inf -> 1.
	want := []uint64{2, 1, 1, 1}
	for i, n := range want {
		if got := h.counts[i].Load(); got != n {
			t.Errorf("bucket %d = %d, want %d", i, got, n)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-102.65) > 1e-9 {
		t.Errorf("sum = %v, want 102.65", h.Sum())
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
