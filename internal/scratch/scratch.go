// Package scratch provides the pooled, reusable working-set primitives of
// the zero-allocation strike hot path (DESIGN.md §8):
//
//   - Pool[T]: a typed sync.Pool-backed borrow/release API, safe under the
//     campaign worker pool, used by the kernels to recycle their per-strike
//     scratch (dense difference grids, sparse corrupted-cell maps).
//   - IndexMap[V]: an epoch-stamped sparse int->V map whose Clear is O(1)
//     — bump the epoch instead of reallocating or zeroing — so a strike's
//     corrupted-cell working set costs memory proportional to the
//     *perturbed* region, not the kernel's domain, and recycling it across
//     strikes costs nothing.
//   - ZeroBox: row-major bounding-box zeroing, restoring the all-zero pool
//     invariant of a dense scratch grid by touching only the cells a
//     strike actually dirtied.
//
// None of these primitives affect results: pooled and unpooled executions
// are bit-identical (pinned by the kernels' property suites), because a
// borrowed object always observes the same logical state a fresh
// allocation would.
package scratch

import (
	"sort"
	"sync"
)

// Pool is a typed sync.Pool: Get borrows a T (constructing one on a cold
// pool), Put returns it for reuse. All methods are safe for concurrent
// use. Invariants on the pooled value's state (e.g. "grid is all-zero")
// are the caller's contract: establish them before Put, rely on them after
// Get.
type Pool[T any] struct {
	pool  sync.Pool
	stats *PoolStats // nil for anonymous pools (NewPool)
}

// NewPool returns a pool whose cold Gets construct values with newFn.
// NewNamedPool (metrics.go) is the metered variant.
func NewPool[T any](newFn func() T) *Pool[T] {
	return &Pool[T]{pool: sync.Pool{New: func() any { return newFn() }}}
}

// Get borrows a value from the pool.
func (p *Pool[T]) Get() T {
	if p.stats != nil {
		p.stats.gets.Add(1)
	}
	return p.pool.Get().(T)
}

// Put returns a value to the pool. The caller must not use v afterwards.
func (p *Pool[T]) Put(v T) { p.pool.Put(v) }

// IndexMap is a sparse map from non-negative int keys to values of type V,
// built for reuse across many small working sets over a huge key domain
// (e.g. corrupted cells of an 8192x8192 matrix). It is an open-addressing
// hash table whose slots are epoch-stamped: Clear bumps the epoch and
// truncates the insertion log, invalidating every slot in O(1) without
// touching them. Capacity grows to the largest working set ever held and
// is then reused allocation-free.
//
// The zero value is ready to use. IndexMap is not safe for concurrent use;
// pool one per worker via Pool.
type IndexMap[V any] struct {
	slots []mapSlot[V]
	keys  []int // insertion log of the live epoch's keys
	epoch uint32
	shift uint // 64 - log2(len(slots))
}

type mapSlot[V any] struct {
	key   int
	stamp uint32
	val   V
}

// minMapCap is the initial slot-table size (a power of two).
const minMapCap = 64

// hashIndex spreads a key over the slot table (Fibonacci hashing).
func (m *IndexMap[V]) hashIndex(key int) int {
	return int((uint64(key) * 0x9E3779B97F4A7C15) >> m.shift)
}

// Len returns the number of live entries.
func (m *IndexMap[V]) Len() int { return len(m.keys) }

// Clear drops every entry in O(1) by advancing the epoch. On the (rare)
// epoch wrap it eagerly zeroes the stamps so stale slots from 2^32 clears
// ago cannot resurrect.
func (m *IndexMap[V]) Clear() {
	m.keys = m.keys[:0]
	m.epoch++
	if m.epoch == 0 { // wrapped: stale stamps would alias the new epoch
		for i := range m.slots {
			m.slots[i].stamp = 0
		}
		m.epoch = 1
	}
}

// init readies the zero value: epoch 1 (so zeroed slots are never live)
// and the minimum slot table.
func (m *IndexMap[V]) lazyInit() {
	if m.epoch == 0 {
		m.epoch = 1
	}
	if len(m.slots) == 0 {
		m.slots = make([]mapSlot[V], minMapCap)
		m.shift = 64 - 6 // log2(minMapCap)
	}
}

// findSlot returns the slot index holding key, or the insertion point for
// it (the first dead slot of its probe chain).
func (m *IndexMap[V]) findSlot(key int) int {
	i := m.hashIndex(key)
	mask := len(m.slots) - 1
	for {
		s := &m.slots[i]
		if s.stamp != m.epoch || s.key == key {
			return i
		}
		i = (i + 1) & mask
	}
}

// Get returns the value stored under key.
func (m *IndexMap[V]) Get(key int) (V, bool) {
	if len(m.slots) == 0 || len(m.keys) == 0 {
		var zero V
		return zero, false
	}
	s := &m.slots[m.findSlot(key)]
	if s.stamp == m.epoch && s.key == key {
		return s.val, true
	}
	var zero V
	return zero, false
}

// Ref returns a pointer to key's value slot, inserting a zero V when the
// key is absent (reported by fresh). The pointer is invalidated by the
// next insertion of a *different* key (the table may grow); use it
// immediately, before any other map call.
func (m *IndexMap[V]) Ref(key int) (ref *V, fresh bool) {
	m.lazyInit()
	i := m.findSlot(key)
	s := &m.slots[i]
	if s.stamp == m.epoch && s.key == key {
		return &s.val, false
	}
	if m.overloaded() {
		m.grow()
		i = m.findSlot(key)
		s = &m.slots[i]
	}
	var zero V
	s.key, s.stamp, s.val = key, m.epoch, zero
	m.keys = append(m.keys, key)
	return &s.val, true
}

// Set stores val under key, overwriting any previous value.
func (m *IndexMap[V]) Set(key int, val V) {
	ref, _ := m.Ref(key)
	*ref = val
}

// overloaded reports whether the next insertion should grow the table
// (load factor 3/4).
func (m *IndexMap[V]) overloaded() bool {
	return (len(m.keys)+1)*4 > len(m.slots)*3
}

// grow doubles the slot table and reinserts the live entries from the
// insertion log.
func (m *IndexMap[V]) grow() {
	old := m.slots
	oldEpoch := m.epoch
	m.slots = make([]mapSlot[V], 2*len(old))
	m.shift--
	for _, s := range old {
		if s.stamp != oldEpoch {
			continue
		}
		i := m.findSlot(s.key)
		m.slots[i] = mapSlot[V]{key: s.key, stamp: m.epoch, val: s.val}
	}
}

// Keys returns the live keys in insertion order. The slice aliases the
// map's insertion log: it is valid until the next Clear and must not be
// mutated (use SortedKeys for in-place sorting).
func (m *IndexMap[V]) Keys() []int { return m.keys }

// SortedKeys sorts the live keys ascending in place and returns them —
// the deterministic emission order of the kernels' mismatch reports,
// replacing the map-iteration sort they used to pay an allocation for.
// The slice is valid until the next Clear.
func (m *IndexMap[V]) SortedKeys() []int {
	sort.Ints(m.keys)
	return m.keys
}

// ZeroBox zeroes the closed box [x0,x1] x [y0,y1] of a row-major grid with
// the given stride, restoring a dense scratch grid's all-zero pool
// invariant while touching only the strike's dirty region. Out-of-range
// or empty boxes are no-ops.
func ZeroBox[T any](buf []T, stride, x0, y0, x1, y1 int) {
	if stride <= 0 || x1 < x0 || y1 < y0 {
		return
	}
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 >= stride {
		x1 = stride - 1
	}
	for y := y0; y <= y1; y++ {
		row := y * stride
		if row+x0 >= len(buf) {
			return
		}
		end := row + x1 + 1
		if end > len(buf) {
			end = len(buf)
		}
		clear(buf[row+x0 : end])
	}
}
