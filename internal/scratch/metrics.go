package scratch

import (
	"sort"
	"sync"
	"sync/atomic"

	"radcrit/internal/telemetry"
)

// PoolStats counts one named pool's traffic: Gets, and the subset that
// missed (cold pool — the sync.Pool constructed a fresh value). The hit
// rate is (gets - misses) / gets. Both are plain atomic adds, within the
// hot path's single-atomic budget (DESIGN.md §14).
type PoolStats struct {
	gets   atomic.Uint64
	misses atomic.Uint64
}

// Gets returns the total borrow count.
func (s *PoolStats) Gets() uint64 { return s.gets.Load() }

// Misses returns the cold-construction count.
func (s *PoolStats) Misses() uint64 { return s.misses.Load() }

// statsByName dedups stats across pool instances: the kernels construct
// one Pool per kernel instance, but every "lavamd.grid" pool shares one
// stats row — the per-name aggregate is what the hit-rate metric wants.
var (
	statsMu     sync.Mutex
	statsByName = map[string]*PoolStats{}
)

// statsFor returns (creating once) the shared stats row for name.
func statsFor(name string) *PoolStats {
	statsMu.Lock()
	defer statsMu.Unlock()
	s, ok := statsByName[name]
	if !ok {
		s = &PoolStats{}
		statsByName[name] = s
	}
	return s
}

// NewNamedPool is NewPool with shared per-name traffic accounting,
// exported by RegisterMetrics. Pools of the same name — across kernel
// instances and goroutines — aggregate into one stats row.
func NewNamedPool[T any](name string, newFn func() T) *Pool[T] {
	s := statsFor(name)
	p := &Pool[T]{stats: s}
	p.pool.New = func() any {
		s.misses.Add(1)
		return newFn()
	}
	return p
}

// Stats snapshots every named pool's counters, sorted by name.
func Stats() []struct {
	Name         string
	Gets, Misses uint64
} {
	statsMu.Lock()
	names := make([]string, 0, len(statsByName))
	for name := range statsByName {
		names = append(names, name)
	}
	statsMu.Unlock()
	sort.Strings(names)
	out := make([]struct {
		Name         string
		Gets, Misses uint64
	}, 0, len(names))
	for _, name := range names {
		s := statsFor(name)
		out = append(out, struct {
			Name         string
			Gets, Misses uint64
		}{name, s.Gets(), s.Misses()})
	}
	return out
}

// RegisterMetrics exports every named pool's traffic on reg as
// scrape-time counters (hit rate = 1 - misses/gets).
func RegisterMetrics(reg *telemetry.Registry) {
	collect := func(read func(*PoolStats) uint64) func(emit func([]string, float64)) {
		return func(emit func([]string, float64)) {
			statsMu.Lock()
			type row struct {
				name string
				s    *PoolStats
			}
			rows := make([]row, 0, len(statsByName))
			for name, s := range statsByName {
				rows = append(rows, row{name, s})
			}
			statsMu.Unlock()
			for _, r := range rows {
				emit([]string{r.name}, float64(read(r.s)))
			}
		}
	}
	reg.CounterVecFunc("radcrit_scratch_pool_gets_total",
		"Borrows from each named scratch pool.",
		[]string{"pool"}, collect((*PoolStats).Gets))
	reg.CounterVecFunc("radcrit_scratch_pool_misses_total",
		"Cold constructions in each named scratch pool (hit rate = 1 - misses/gets).",
		[]string{"pool"}, collect((*PoolStats).Misses))
}
