package scratch

import (
	"sort"
	"testing"
)

func TestIndexMapBasic(t *testing.T) {
	var m IndexMap[float64]
	if _, ok := m.Get(7); ok {
		t.Fatal("zero-value map claims to hold a key")
	}
	m.Set(7, 1.5)
	m.Set(3, -2)
	m.Set(7, 4.5) // overwrite keeps one entry
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if v, ok := m.Get(7); !ok || v != 4.5 {
		t.Fatalf("Get(7) = %v,%v", v, ok)
	}
	if v, ok := m.Get(3); !ok || v != -2 {
		t.Fatalf("Get(3) = %v,%v", v, ok)
	}
	if _, ok := m.Get(4); ok {
		t.Fatal("absent key reported present")
	}
}

func TestIndexMapRef(t *testing.T) {
	var m IndexMap[int]
	ref, fresh := m.Ref(10)
	if !fresh || *ref != 0 {
		t.Fatalf("first Ref: fresh=%v *ref=%d", fresh, *ref)
	}
	*ref = 5
	ref2, fresh2 := m.Ref(10)
	if fresh2 || *ref2 != 5 {
		t.Fatalf("second Ref: fresh=%v *ref=%d", fresh2, *ref2)
	}
	*ref2 += 3
	if v, _ := m.Get(10); v != 8 {
		t.Fatalf("accumulated value = %d, want 8", v)
	}
}

func TestIndexMapClearIsEmpty(t *testing.T) {
	var m IndexMap[int]
	for i := 0; i < 100; i++ {
		m.Set(i*977, i)
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("Len after Clear = %d", m.Len())
	}
	for i := 0; i < 100; i++ {
		if _, ok := m.Get(i * 977); ok {
			t.Fatalf("key %d survived Clear", i*977)
		}
	}
	// The cleared map accepts the same and different keys afresh.
	m.Set(977, -1)
	if v, ok := m.Get(977); !ok || v != -1 {
		t.Fatalf("post-Clear Set/Get = %v,%v", v, ok)
	}
	if len(m.Keys()) != 1 {
		t.Fatalf("Keys after Clear+Set = %v", m.Keys())
	}
}

func TestIndexMapGrowthKeepsEntries(t *testing.T) {
	var m IndexMap[int]
	const n = 10_000 // forces many doublings from minMapCap
	for i := 0; i < n; i++ {
		m.Set(i*31, i)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Get(i * 31); !ok || v != i {
			t.Fatalf("Get(%d) = %v,%v after growth", i*31, v, ok)
		}
	}
}

func TestIndexMapEpochWrap(t *testing.T) {
	var m IndexMap[int]
	m.Set(1, 1)
	m.epoch = ^uint32(0) // one Clear away from wrapping
	m.Clear()
	if m.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", m.epoch)
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("entry resurrected across epoch wrap")
	}
	m.Set(2, 2)
	if v, ok := m.Get(2); !ok || v != 2 {
		t.Fatalf("post-wrap Set/Get = %v,%v", v, ok)
	}
}

func TestIndexMapSortedKeys(t *testing.T) {
	var m IndexMap[string]
	for _, k := range []int{42, 7, 1000, 0, 13} {
		m.Set(k, "x")
	}
	got := m.SortedKeys()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("SortedKeys not sorted: %v", got)
	}
	want := []int{0, 7, 13, 42, 1000}
	for i, k := range want {
		if got[i] != k {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
}

// The map's whole point: a warm working set recycles with zero allocation.
func TestIndexMapSteadyStateAllocFree(t *testing.T) {
	var m IndexMap[float64]
	work := func() {
		m.Clear()
		for i := 0; i < 200; i++ {
			m.Set(i*131071, float64(i))
		}
		m.SortedKeys()
	}
	work() // warm to peak capacity
	if avg := testing.AllocsPerRun(50, work); avg != 0 {
		t.Fatalf("steady-state allocs per Clear+200 inserts = %v, want 0", avg)
	}
}

func TestPool(t *testing.T) {
	built := 0
	p := NewPool(func() *[]int {
		built++
		s := make([]int, 4)
		return &s
	})
	a := p.Get()
	if built != 1 || len(*a) != 4 {
		t.Fatalf("cold Get: built=%d len=%d", built, len(*a))
	}
	p.Put(a)
	b := p.Get()
	if b != a {
		// sync.Pool may drop values under GC pressure; only flag the
		// constructor double-firing when the same value was available.
		t.Logf("pool returned a different value (allowed): built=%d", built)
	}
}

func TestZeroBox(t *testing.T) {
	const stride, rows = 8, 6
	buf := make([]float64, stride*rows)
	for i := range buf {
		buf[i] = 1
	}
	ZeroBox(buf, stride, 2, 1, 5, 3)
	for y := 0; y < rows; y++ {
		for x := 0; x < stride; x++ {
			in := x >= 2 && x <= 5 && y >= 1 && y <= 3
			got := buf[y*stride+x]
			if in && got != 0 {
				t.Fatalf("cell (%d,%d) inside box not zeroed", x, y)
			}
			if !in && got != 1 {
				t.Fatalf("cell (%d,%d) outside box clobbered", x, y)
			}
		}
	}
	// Degenerate boxes are no-ops.
	ZeroBox(buf, stride, 5, 5, 2, 2)
	ZeroBox(buf, 0, 0, 0, 1, 1)
	// Clamped boxes stay in bounds.
	ZeroBox(buf, stride, -3, -2, stride+5, rows+5)
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("full-grid clamp left cell %d = %v", i, v)
		}
	}
}
