package api

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"radcrit/internal/service"
	"radcrit/internal/telemetry"
	"radcrit/internal/tenant"
)

// TestLimiterTokenBucket drives the limiter on a fake clock: burst
// admits back-to-back requests, exhaustion rejects with a sane
// Retry-After, and refill readmits exactly on schedule.
func TestLimiterTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newLimiter(func() time.Time { return now })
	rl := tenant.RateLimit{RPS: 2, Burst: 3}

	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("a", rl); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, wait := l.allow("a", rl)
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	// Empty bucket at 2 rps: the next token is 500ms away.
	if wait < 400*time.Millisecond || wait > 600*time.Millisecond {
		t.Errorf("retry-after = %v, want ~500ms", wait)
	}
	now = now.Add(500 * time.Millisecond)
	if ok, _ := l.allow("a", rl); !ok {
		t.Fatal("request after refill rejected")
	}
	// Tenants do not share buckets.
	if ok, _ := l.allow("b", rl); !ok {
		t.Fatal("fresh tenant rejected")
	}
	// Zero RPS is unlimited.
	for i := 0; i < 100; i++ {
		if ok, _ := l.allow("c", tenant.RateLimit{}); !ok {
			t.Fatal("unlimited tenant rejected")
		}
	}
}

// startMeteredDaemon builds a daemon with a tenants file, metrics and a
// rate-limited tenant ("slow": 1 rps, burst 2).
func startMeteredDaemon(t *testing.T, stateDir string) (*testDaemon, *telemetry.Registry) {
	t.Helper()
	tpath := filepath.Join(stateDir, "tenants.json")
	body := `{"tenants":[
		{"name":"slow","weight":1,"rate_limit":{"rps":1,"burst":2}},
		{"name":"fast","weight":2}
	]}`
	if err := os.WriteFile(tpath, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	tr, err := tenant.Load(tpath)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	m, err := service.New(service.Options{StateDir: stateDir, Executors: 1, Tenants: tr, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	srv := httptest.NewServer(New(m, "test-build", WithMetrics(reg)))
	return &testDaemon{m: m, srv: srv, c: NewClient(srv.URL)}, reg
}

// TestRateLimit429AndClientRetry: the third back-to-back request of a
// burst-2 tenant is 429 with Retry-After, the 429 counter advances, and
// the api.Client retries through the rejection to success.
func TestRateLimit429AndClientRetry(t *testing.T) {
	d, reg := startMeteredDaemon(t, t.TempDir())
	defer d.stop(t)

	get := func() (*http.Response, error) {
		req, _ := http.NewRequest("GET", d.srv.URL+"/v1/jobs", nil)
		req.Header.Set(TenantHeader, "slow")
		return http.DefaultClient.Do(req)
	}
	codes := []int{}
	var retryAfter string
	for i := 0; i < 3; i++ {
		resp, err := get()
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
		if resp.StatusCode == http.StatusTooManyRequests {
			retryAfter = resp.Header.Get("Retry-After")
		}
	}
	if codes[0] != 200 || codes[1] != 200 || codes[2] != 429 {
		t.Fatalf("burst-2 codes = %v, want [200 200 429]", codes)
	}
	if retryAfter == "" {
		t.Fatal("429 without Retry-After")
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `radcrit_api_rate_limited_total{tenant="slow"} 1`) {
		t.Errorf("scrape missing 429 counter:\n%s", sb.String())
	}

	// The client retries the 429 honoring Retry-After (fake sleep: just
	// verify the delay is the server's estimate, then proceed).
	c := NewClient(d.srv.URL)
	c.Tenant = "slow"
	var slept []time.Duration
	c.sleep = func(_ context.Context, dur time.Duration) error {
		slept = append(slept, dur)
		// Let real time pass so the bucket actually refills.
		time.Sleep(1100 * time.Millisecond)
		return nil
	}
	if _, err := c.List(context.Background()); err != nil {
		t.Fatalf("client did not ride through the 429: %v", err)
	}
	if len(slept) == 0 {
		t.Fatal("client never backed off")
	}
	if slept[0] < time.Second {
		t.Errorf("first backoff %v, want >= Retry-After of 1s", slept[0])
	}
}

// TestMetricsEndpoint: GET /metrics serves the Prometheus exposition
// with API request families once traffic has flowed.
func TestMetricsEndpoint(t *testing.T) {
	d, _ := startMeteredDaemon(t, t.TempDir())
	defer d.stop(t)

	if _, err := d.c.List(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(d.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, telemetry.ContentType)
	}
	var sb strings.Builder
	buf := make([]byte, 64<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	out := sb.String()
	for _, want := range []string{
		`radcrit_api_requests_total{tenant="default"} 1`,
		`radcrit_api_responses_total{tenant="default",code="200"} 1`,
		"radcrit_api_request_seconds_bucket",
		"radcrit_executors 1",
		"telemetry_series_dropped_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}
}

// TestTenantsReloadEndpoint: POST /v1/tenants/reload picks up an edited
// tenants.json — new weights visible in the response and the registry.
func TestTenantsReloadEndpoint(t *testing.T) {
	dir := t.TempDir()
	d, _ := startMeteredDaemon(t, dir)
	defer d.stop(t)

	body := `{"tenants":[{"name":"fast","weight":7}]}`
	if err := os.WriteFile(filepath.Join(dir, "tenants.json"), []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.srv.URL+"/v1/tenants/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d", resp.StatusCode)
	}
	var stats []service.TenantStat
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ts := range stats {
		if ts.Tenant == "fast" && ts.Weight == 7 {
			found = true
		}
		if ts.Tenant == "slow" {
			t.Errorf("deleted tenant %q still in stats with weight %d", ts.Tenant, ts.Weight)
		}
	}
	if !found {
		t.Errorf("reloaded weight not visible: %+v", stats)
	}
	if w := d.m.Tenants().Weight("fast"); w != 7 {
		t.Errorf("registry weight = %d, want 7", w)
	}
	// The deleted tenant's identity is gone too: a submit addressed to
	// "slow" is now 403 unknown-tenant, not 429.
	req, _ := http.NewRequest("POST", d.srv.URL+"/v1/jobs", strings.NewReader("{}"))
	req.Header.Set(TenantHeader, "slow")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusForbidden {
		t.Errorf("deleted tenant submit = %d, want 403", r2.StatusCode)
	}
}
