package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"radcrit/internal/campaign"
	"radcrit/internal/service"
)

// Client is the Go face of the v1 API — what beamsim/figures -submit and
// the CI smoke use to run campaigns against a daemon instead of
// in-process.
type Client struct {
	// Base is the daemon address ("http://127.0.0.1:8447"); a bare
	// host:port is promoted to http.
	Base string
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
	// Timeout bounds each individual request attempt (not the whole
	// retried call, whose budget is the caller's ctx). 0 means no
	// per-attempt deadline beyond ctx's. Event streams are exempt.
	Timeout time.Duration
	// Retries is the number of extra attempts after a transient failure —
	// a transport error, a 5xx, or a 429. 0 selects the default (3);
	// negative disables retrying. GET and DELETE retry on any transient
	// failure; POST retries only when the connection never reached the
	// server (a dial error) or when the server answered 429 — an explicit
	// rejection before any work, so a submit is never accidentally
	// doubled.
	Retries int
	// RetryBase is the first backoff delay, doubled per attempt with
	// jitter (default 200ms).
	RetryBase time.Duration
	// RetryMax caps every retry delay: the exponential backoff and any
	// server-provided Retry-After alike (default 5s). A 429 carrying a
	// Retry-After header waits the server's estimate — it knows the
	// tenant's backlog — instead of blind backoff, clamped to this cap.
	RetryMax time.Duration
	// Tenant, when set, is sent as the X-Radcrit-Tenant header on every
	// request (trusted-network tenant addressing). Ignored when Token is
	// set.
	Tenant string
	// Token, when set, authenticates every request as its registered
	// tenant via an Authorization: Bearer header.
	Token string

	// sleep overrides the retry delay (tests inject a fake clock).
	sleep func(ctx context.Context, d time.Duration) error
}

// NewClient normalises addr into a Client.
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{Base: strings.TrimRight(addr, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// authHeaders stamps the client's tenant identity onto a request.
func (c *Client) authHeaders(req *http.Request) {
	switch {
	case c.Token != "":
		req.Header.Set("Authorization", "Bearer "+c.Token)
	case c.Tenant != "":
		req.Header.Set(TenantHeader, c.Tenant)
	}
}

// attempt issues one request under the per-attempt timeout and returns
// the status, body and any server-provided Retry-After hint. A nil
// error with a non-2xx status is a protocol answer; an error is
// transport failure.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte) (int, []byte, time.Duration, error) {
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return 0, nil, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.authHeaders(req)
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, nil, 0, err
	}
	defer resp.Body.Close()
	retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return resp.StatusCode, nil, retryAfter, err
	}
	return resp.StatusCode, data, retryAfter, nil
}

// parseRetryAfter reads the delay-seconds form of a Retry-After header
// (the only form the daemon emits). Malformed or absent values yield 0.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// retryMax is the cap on any single retry delay.
func (c *Client) retryMax() time.Duration {
	if c.RetryMax > 0 {
		return c.RetryMax
	}
	return 5 * time.Second
}

// sleepRetry waits one retry delay (or the fake clock stands in).
func (c *Client) sleepRetry(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// fetch is attempt under the client's retry policy: transient failures
// (transport errors, 5xx, 429) back off exponentially with jitter and
// retry, within the caller's ctx. POST only retries dial errors and
// explicit 429 rejections — if the request may have reached the server
// and been acted on, retrying could double it. A 429 whose Retry-After
// header names a delay waits exactly that long (clamped to RetryMax,
// no jitter — the server's backlog estimate already spreads tenants)
// instead of blind exponential backoff.
func (c *Client) fetch(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	retries := c.Retries
	switch {
	case retries == 0:
		retries = 3
	case retries < 0:
		retries = 0
	}
	base := c.RetryBase
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		status, data, retryAfter, err := c.attempt(ctx, method, path, body)
		if !retriable(method, status, err) || attempt >= retries || ctx.Err() != nil {
			return status, data, err
		}
		delay := base << attempt
		if delay > c.retryMax() {
			delay = c.retryMax()
		}
		// Jitter over [delay/2, delay) so a fleet of clients recovering
		// from the same blip does not retry in lockstep.
		delay = delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		if status == http.StatusTooManyRequests && retryAfter > 0 {
			delay = retryAfter
			if delay > c.retryMax() {
				delay = c.retryMax()
			}
		}
		if c.sleepRetry(ctx, delay) != nil {
			return status, data, err
		}
	}
}

// retriable classifies one attempt's outcome under the retry policy.
func retriable(method string, status int, err error) bool {
	idempotent := method == http.MethodGet || method == http.MethodDelete
	if err != nil {
		if idempotent {
			return true
		}
		// The connection never reached the server: safe for any method.
		var opErr *net.OpError
		return errors.As(err, &opErr) && opErr.Op == "dial"
	}
	if status == http.StatusTooManyRequests {
		// Admission control rejected the request before any work — safe
		// to retry whatever the method.
		return true
	}
	return idempotent && status >= 500
}

// do issues a (retried) request and decodes the JSON response into out,
// turning non-2xx statuses into errors carrying the server's message.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) (int, error) {
	status, data, err := c.fetch(ctx, method, path, body)
	if err != nil {
		return status, fmt.Errorf("api: %w", err)
	}
	if status >= 400 {
		var ae apiError
		if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
			return status, fmt.Errorf("api: %s %s: HTTP %d: %s", method, path, status, ae.Error)
		}
		return status, fmt.Errorf("api: %s %s: HTTP %d", method, path, status)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return status, fmt.Errorf("api: decode %s: %w", path, err)
		}
	}
	return status, nil
}

// Submit posts a plan at the given priority and returns the new job.
func (c *Client) Submit(ctx context.Context, p *campaign.Plan, priority int) (service.Snapshot, error) {
	data, err := json.Marshal(p)
	if err != nil {
		return service.Snapshot{}, fmt.Errorf("api: %w", err)
	}
	path := "/v1/jobs"
	if priority != 0 {
		path += "?priority=" + url.QueryEscape(strconv.Itoa(priority))
	}
	var snap service.Snapshot
	_, err = c.do(ctx, http.MethodPost, path, data, &snap)
	return snap, err
}

// Status fetches a job's snapshot.
func (c *Client) Status(ctx context.Context, id string) (service.Snapshot, error) {
	var snap service.Snapshot
	_, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &snap)
	return snap, err
}

// Result fetches a finished job's summaries. While the job is still
// queued or running it returns service.ErrNotFinished.
func (c *Client) Result(ctx context.Context, id string) (*service.JobResult, error) {
	path := "/v1/jobs/" + url.PathEscape(id) + "/result"
	status, data, err := c.fetch(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	switch {
	case status == http.StatusAccepted:
		return nil, service.ErrNotFinished
	case status >= 400:
		var ae apiError
		if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
			return nil, fmt.Errorf("api: GET %s: HTTP %d: %s", path, status, ae.Error)
		}
		return nil, fmt.Errorf("api: GET %s: HTTP %d", path, status)
	}
	var jr service.JobResult
	if err := json.Unmarshal(data, &jr); err != nil {
		return nil, fmt.Errorf("api: decode result: %w", err)
	}
	return &jr, nil
}

// Cancel asks the daemon to stop a job.
func (c *Client) Cancel(ctx context.Context, id string) (service.Snapshot, error) {
	var snap service.Snapshot
	_, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &snap)
	return snap, err
}

// Tenants fetches the daemon's per-tenant scheduling stats — the
// fairness observability radload samples mid-drain.
func (c *Client) Tenants(ctx context.Context) ([]service.TenantStat, error) {
	var stats []service.TenantStat
	_, err := c.do(ctx, http.MethodGet, "/v1/tenants", nil, &stats)
	return stats, err
}

// List fetches the jobs listing: snapshots plus per-state counts and
// per-tenant queue depths.
func (c *Client) List(ctx context.Context) (JobsList, error) {
	var jl JobsList
	_, err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &jl)
	return jl, err
}

// Registry fetches the daemon's registered devices and kernels.
func (c *Client) Registry(ctx context.Context) (RegistryInfo, error) {
	var ri RegistryInfo
	_, err := c.do(ctx, http.MethodGet, "/v1/registry", nil, &ri)
	return ri, err
}

// Version fetches the daemon's build information.
func (c *Client) Version(ctx context.Context) (VersionInfo, error) {
	var vi VersionInfo
	_, err := c.do(ctx, http.MethodGet, "/v1/version", nil, &vi)
	return vi, err
}

// Wait polls a job until it reaches a terminal state, reporting progress
// through onProgress (which may be nil) after every poll.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration, onProgress func(service.Snapshot)) (service.Snapshot, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		snap, err := c.Status(ctx, id)
		if err != nil {
			return snap, err
		}
		if onProgress != nil {
			onProgress(snap)
		}
		if snap.State.Terminal() {
			return snap, nil
		}
		select {
		case <-ctx.Done():
			return snap, ctx.Err()
		case <-t.C:
		}
	}
}

// ClientEvent is one frame of a job's SSE event stream as the client
// surfaces it.
type ClientEvent struct {
	// Type is the SSE event name: "status" (full snapshot), "state",
	// "cell", "chunk" — or the synthetic "reconnected", emitted locally
	// after the stream is re-established following a drop.
	Type string
	// Data is the frame's JSON payload: a service.Snapshot for "status",
	// a service.Event otherwise, nil for "reconnected".
	Data json.RawMessage
}

// Events follows a job's SSE progress stream, delivering every frame to
// onEvent. A dropped connection reconnects with jittered exponential
// backoff, presenting the standard Last-Event-ID header so the server
// replays missed events from its ring; after each successful reconnect
// a synthetic "reconnected" frame is delivered first, so a consumer
// knows its view may have gapped (the ring holds a bounded backlog).
// Events returns nil once the job reaches a terminal state, ctx's error
// on cancellation, and a non-retriable server answer (404, 400) as an
// error.
func (c *Client) Events(ctx context.Context, id string, onEvent func(ClientEvent)) error {
	var lastID string
	backoff := 200 * time.Millisecond
	connected := false
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		terminal, established, err := c.streamEvents(ctx, id, &lastID, connected, onEvent)
		if terminal {
			return nil
		}
		if err != nil {
			var fatal *fatalStreamError
			if errors.As(err, &fatal) {
				return fatal.err
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
		if established {
			connected = true
			backoff = 200 * time.Millisecond
		}
		delay := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

// fatalStreamError marks a server answer reconnecting cannot fix.
type fatalStreamError struct{ err error }

func (e *fatalStreamError) Error() string { return e.err.Error() }

// streamEvents runs one connection of the event stream. It reports
// whether the job reached a terminal state (the clean end) and whether
// the stream was established at all (HTTP 200).
func (c *Client) streamEvents(ctx context.Context, id string, lastID *string, reconnected bool, onEvent func(ClientEvent)) (terminal, established bool, _ error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.Base+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return false, false, &fatalStreamError{err: fmt.Errorf("api: %w", err)}
	}
	req.Header.Set("Accept", "text/event-stream")
	c.authHeaders(req)
	if *lastID != "" {
		req.Header.Set("Last-Event-ID", *lastID)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return false, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		err := fmt.Errorf("api: events: HTTP %d", resp.StatusCode)
		var ae apiError
		if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
			err = fmt.Errorf("api: events: HTTP %d: %s", resp.StatusCode, ae.Error)
		}
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			return false, false, err // transient: reconnect
		}
		return false, false, &fatalStreamError{err: err}
	}
	if reconnected {
		onEvent(ClientEvent{Type: "reconnected"})
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var event, data, id_ string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event != "" || data != "" {
				if id_ != "" {
					*lastID = id_
				}
				ev := ClientEvent{Type: event, Data: json.RawMessage(data)}
				onEvent(ev)
				if terminalFrame(ev) {
					return true, true, nil
				}
			}
			event, data, id_ = "", "", ""
		case strings.HasPrefix(line, "id: "):
			id_ = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = line[len("data: "):]
		}
	}
	if err := sc.Err(); err != nil {
		return false, true, err
	}
	return false, true, io.ErrUnexpectedEOF // server closed without a terminal state
}

// terminalFrame reports whether a frame announces the job's terminal
// state, ending the stream cleanly.
func terminalFrame(ev ClientEvent) bool {
	switch ev.Type {
	case "status":
		var snap service.Snapshot
		return json.Unmarshal(ev.Data, &snap) == nil && snap.State.Terminal()
	case "state":
		var sev service.Event
		return json.Unmarshal(ev.Data, &sev) == nil && sev.State.Terminal()
	}
	return false
}

// Run is the whole client workflow: submit, wait, fetch the result.
func (c *Client) Run(ctx context.Context, p *campaign.Plan, priority int, poll time.Duration, onProgress func(service.Snapshot)) (*service.JobResult, error) {
	snap, err := c.Submit(ctx, p, priority)
	if err != nil {
		return nil, err
	}
	if snap, err = c.Wait(ctx, snap.ID, poll, onProgress); err != nil {
		return nil, err
	}
	return c.Result(ctx, snap.ID)
}
