package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"radcrit/internal/campaign"
	"radcrit/internal/service"
)

// Client is the Go face of the v1 API — what beamsim/figures -submit and
// the CI smoke use to run campaigns against a daemon instead of
// in-process.
type Client struct {
	// Base is the daemon address ("http://127.0.0.1:8447"); a bare
	// host:port is promoted to http.
	Base string
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
}

// NewClient normalises addr into a Client.
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{Base: strings.TrimRight(addr, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out, turning
// non-2xx statuses into errors carrying the server's message.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return 0, fmt.Errorf("api: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, fmt.Errorf("api: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return resp.StatusCode, fmt.Errorf("api: %w", err)
	}
	if resp.StatusCode >= 400 {
		var ae apiError
		if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
			return resp.StatusCode, fmt.Errorf("api: %s: %s", resp.Status, ae.Error)
		}
		return resp.StatusCode, fmt.Errorf("api: %s", resp.Status)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("api: decode %s: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// Submit posts a plan at the given priority and returns the new job.
func (c *Client) Submit(ctx context.Context, p *campaign.Plan, priority int) (service.Snapshot, error) {
	data, err := json.Marshal(p)
	if err != nil {
		return service.Snapshot{}, fmt.Errorf("api: %w", err)
	}
	path := "/v1/jobs"
	if priority != 0 {
		path += "?priority=" + url.QueryEscape(strconv.Itoa(priority))
	}
	var snap service.Snapshot
	_, err = c.do(ctx, http.MethodPost, path, bytes.NewReader(data), &snap)
	return snap, err
}

// Status fetches a job's snapshot.
func (c *Client) Status(ctx context.Context, id string) (service.Snapshot, error) {
	var snap service.Snapshot
	_, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &snap)
	return snap, err
}

// Result fetches a finished job's summaries. While the job is still
// queued or running it returns service.ErrNotFinished.
func (c *Client) Result(ctx context.Context, id string) (*service.JobResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.Base+"/v1/jobs/"+url.PathEscape(id)+"/result", nil)
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	switch {
	case resp.StatusCode == http.StatusAccepted:
		return nil, service.ErrNotFinished
	case resp.StatusCode >= 400:
		var ae apiError
		if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
			return nil, fmt.Errorf("api: %s: %s", resp.Status, ae.Error)
		}
		return nil, fmt.Errorf("api: %s", resp.Status)
	}
	var jr service.JobResult
	if err := json.Unmarshal(data, &jr); err != nil {
		return nil, fmt.Errorf("api: decode result: %w", err)
	}
	return &jr, nil
}

// Cancel asks the daemon to stop a job.
func (c *Client) Cancel(ctx context.Context, id string) (service.Snapshot, error) {
	var snap service.Snapshot
	_, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &snap)
	return snap, err
}

// Registry fetches the daemon's registered devices and kernels.
func (c *Client) Registry(ctx context.Context) (RegistryInfo, error) {
	var ri RegistryInfo
	_, err := c.do(ctx, http.MethodGet, "/v1/registry", nil, &ri)
	return ri, err
}

// Version fetches the daemon's build information.
func (c *Client) Version(ctx context.Context) (VersionInfo, error) {
	var vi VersionInfo
	_, err := c.do(ctx, http.MethodGet, "/v1/version", nil, &vi)
	return vi, err
}

// Wait polls a job until it reaches a terminal state, reporting progress
// through onProgress (which may be nil) after every poll.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration, onProgress func(service.Snapshot)) (service.Snapshot, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		snap, err := c.Status(ctx, id)
		if err != nil {
			return snap, err
		}
		if onProgress != nil {
			onProgress(snap)
		}
		if snap.State.Terminal() {
			return snap, nil
		}
		select {
		case <-ctx.Done():
			return snap, ctx.Err()
		case <-t.C:
		}
	}
}

// Run is the whole client workflow: submit, wait, fetch the result.
func (c *Client) Run(ctx context.Context, p *campaign.Plan, priority int, poll time.Duration, onProgress func(service.Snapshot)) (*service.JobResult, error) {
	snap, err := c.Submit(ctx, p, priority)
	if err != nil {
		return nil, err
	}
	if snap, err = c.Wait(ctx, snap.ID, poll, onProgress); err != nil {
		return nil, err
	}
	return c.Result(ctx, snap.ID)
}
