package api

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"radcrit/internal/campaign"
	"radcrit/internal/service"
	"radcrit/internal/tenant"
)

func tinyPlan() *campaign.Plan {
	return campaign.NewPlan(1, 10).WithCell("k40", "dgemm:128").WithWorkers(1)
}

// fakeClock records the delays sleepRetry was asked for without actually
// waiting, so retry-schedule assertions are exact and instant.
type fakeClock struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (f *fakeClock) sleep(_ context.Context, d time.Duration) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delays = append(f.delays, d)
	return nil
}

// TestClientHonorsRetryAfter pins the 429 retry policy: a POST submit is
// retried (admission control rejects before any work, so it is safe),
// the server's Retry-After delay is used verbatim — no jitter — and a
// delay beyond RetryMax is clamped to it.
func TestClientHonorsRetryAfter(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		switch hits {
		case 1:
			w.Header().Set("Retry-After", "2")
			writeErr(w, http.StatusTooManyRequests, "quota")
		case 2:
			w.Header().Set("Retry-After", "120") // beyond RetryMax: must clamp
			writeErr(w, http.StatusTooManyRequests, "quota")
		default:
			writeJSON(w, http.StatusCreated, service.Snapshot{ID: "j-1", State: service.StateQueued})
		}
	}))
	defer srv.Close()

	clock := &fakeClock{}
	c := NewClient(srv.URL)
	c.RetryMax = 5 * time.Second
	c.sleep = clock.sleep
	snap, err := c.Submit(context.Background(), tinyPlan(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != "j-1" || hits != 3 {
		t.Fatalf("snapshot %+v after %d attempts", snap, hits)
	}
	want := []time.Duration{2 * time.Second, 5 * time.Second}
	if len(clock.delays) != len(want) {
		t.Fatalf("retry delays = %v, want %v", clock.delays, want)
	}
	for i, d := range want {
		if clock.delays[i] != d {
			t.Fatalf("retry delay %d = %v, want %v (all: %v)", i, clock.delays[i], d, clock.delays)
		}
	}
}

// TestClientRetryAfterExhaustion: a server that never relents exhausts
// the retry budget and surfaces the 429 as an error.
func TestClientRetryAfterExhaustion(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits++
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "quota")
	}))
	defer srv.Close()

	clock := &fakeClock{}
	c := NewClient(srv.URL)
	c.Retries = 2
	c.sleep = clock.sleep
	_, err := c.Submit(context.Background(), tinyPlan(), 0)
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("exhausted submit error = %v, want HTTP 429", err)
	}
	if hits != 3 || len(clock.delays) != 2 {
		t.Fatalf("hits = %d, delays = %v; want 3 attempts, 2 sleeps", hits, clock.delays)
	}
}

func TestParseRetryAfter(t *testing.T) {
	for h, want := range map[string]time.Duration{
		"7":    7 * time.Second,
		"0":    0,
		"":     0,
		"soon": 0,
		"-3":   0,
	} {
		if got := parseRetryAfter(h); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", h, got, want)
		}
	}
}

// TestClientAuthHeaders: Token wins over Tenant; Tenant alone uses the
// plaintext header; neither sends anonymous requests.
func TestClientAuthHeaders(t *testing.T) {
	var gotAuth, gotTenant string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotAuth, gotTenant = r.Header.Get("Authorization"), r.Header.Get(TenantHeader)
		writeJSON(w, http.StatusOK, VersionInfo{Version: "x", Go: "gox"})
	}))
	defer srv.Close()
	ctx := context.Background()

	c := NewClient(srv.URL)
	c.Tenant = "beta"
	if _, err := c.Version(ctx); err != nil {
		t.Fatal(err)
	}
	if gotAuth != "" || gotTenant != "beta" {
		t.Fatalf("tenant-mode headers = auth %q tenant %q", gotAuth, gotTenant)
	}

	c.Token = "s3cret"
	if _, err := c.Version(ctx); err != nil {
		t.Fatal(err)
	}
	if gotAuth != "Bearer s3cret" || gotTenant != "" {
		t.Fatalf("token-mode headers = auth %q tenant %q", gotAuth, gotTenant)
	}
}

// TestTenantAuthEndToEnd drives the real daemon's tenant resolution:
// bearer tokens, plaintext tenant addressing, impersonation refusals and
// the 429 + Retry-After admission path.
func TestTenantAuthEndToEnd(t *testing.T) {
	reg := tenant.NewRegistry()
	for _, tn := range []tenant.Tenant{
		{Name: "alpha", Weight: 3, Token: "alpha-token"},
		{Name: "beta", Weight: 1},
		{Name: "capped", Quotas: tenant.Quotas{MaxQueuedJobs: 1}},
	} {
		if err := reg.Upsert(tn); err != nil {
			t.Fatal(err)
		}
	}
	m, err := service.New(service.Options{StateDir: t.TempDir(), Executors: 1, Tenants: reg})
	if err != nil {
		t.Fatal(err)
	}
	// Never started: jobs stay queued, so quota state is deterministic.
	srv := httptest.NewServer(New(m, "test-build"))
	defer srv.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Drain(ctx); err != nil {
			t.Fatal(err)
		}
	}()
	ctx := context.Background()

	submitAs := func(tenantName, token string) (service.Snapshot, error) {
		c := NewClient(srv.URL)
		c.Retries = -1
		c.Tenant, c.Token = tenantName, token
		return c.Submit(ctx, tinyPlan(), 0)
	}

	if snap, err := submitAs("", "alpha-token"); err != nil || snap.Tenant != "alpha" {
		t.Fatalf("token submit = %+v, %v; want tenant alpha", snap, err)
	}
	if snap, err := submitAs("beta", ""); err != nil || snap.Tenant != "beta" {
		t.Fatalf("header submit = %+v, %v; want tenant beta", snap, err)
	}
	if snap, err := submitAs("", ""); err != nil || snap.Tenant != tenant.Default {
		t.Fatalf("anonymous submit = %+v, %v; want default tenant", snap, err)
	}
	if _, err := submitAs("", "wrong-token"); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("bad token error = %v, want HTTP 401", err)
	}
	if _, err := submitAs("alpha", ""); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("header impersonation error = %v, want HTTP 401", err)
	}
	if _, err := submitAs("ghost", ""); err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("unknown tenant error = %v, want HTTP 403", err)
	}

	// Admission control over the wire: fill capped's one queue slot, then
	// assert the rejection is 429 and carries a usable Retry-After.
	if _, err := submitAs("capped", ""); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(tinyPlan())
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/jobs", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TenantHeader, "capped")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", resp.Header.Get("Retry-After"))
	}
}
