package api

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"radcrit/internal/campaign"
	"radcrit/internal/service"
)

// goldenPlanJSON mirrors the campaign package's frozen seed-42/300-strike
// experiment matrix: the acceptance anchor for end-to-end bit-identity
// through the HTTP surface.
const goldenPlanJSON = `{
  "name": "golden",
  "seed": 42,
  "strikes": 300,
  "thresholds": [0, 1],
  "cells": [
    {"device": "k40", "kernel": "dgemm:128"},
    {"device": "k40", "kernel": "lavamd:4"},
    {"device": "k40", "kernel": "hotspot:64x80"},
    {"device": "k40", "kernel": "clamr:48x60"},
    {"device": "phi", "kernel": "dgemm:128"},
    {"device": "phi", "kernel": "lavamd:3"},
    {"device": "phi", "kernel": "hotspot:64x80"},
    {"device": "phi", "kernel": "clamr:48x60"}
  ]
}`

// testDaemon is one daemon incarnation: a manager plus its HTTP front.
type testDaemon struct {
	m   *service.Manager
	srv *httptest.Server
	c   *Client
}

func startDaemon(t *testing.T, stateDir string) *testDaemon {
	t.Helper()
	m, err := service.New(service.Options{StateDir: stateDir, Executors: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	srv := httptest.NewServer(New(m, "test-build"))
	return &testDaemon{m: m, srv: srv, c: NewClient(srv.URL)}
}

func (d *testDaemon) stop(t *testing.T) {
	t.Helper()
	d.srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := d.m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func loadGoldenPlan(t *testing.T) *campaign.Plan {
	t.Helper()
	p, err := campaign.LoadPlan(strings.NewReader(goldenPlanJSON))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// summariesJSON extracts the byte-comparison form of a result: spec,
// info and summary per cell — the payload the bit-identity contract is
// about (scheduling metadata like cached/resumed legitimately differs
// between cold and warm runs).
func summariesJSON(t *testing.T, cells []service.CellResult) string {
	t.Helper()
	type cell struct {
		Spec    campaign.CellSpec    `json:"spec"`
		Info    *campaign.StreamInfo `json:"info"`
		Summary *campaign.Summary    `json:"summary"`
	}
	out := make([]cell, 0, len(cells))
	for _, c := range cells {
		out = append(out, cell{Spec: c.Spec, Info: c.Info, Summary: c.Summary})
	}
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestEndToEndGoldenBitIdentity is the PR's acceptance criterion: the
// frozen golden plan submitted over HTTP returns per-cell summaries
// byte-identical to StreamRunner run in-process — on a cold store, on a
// warm (fully deduplicated) store, and from a fresh daemon incarnation
// reusing the first one's store across a restart.
func TestEndToEndGoldenBitIdentity(t *testing.T) {
	plan := loadGoldenPlan(t)
	direct, err := (&campaign.StreamRunner{}).Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	want := summariesJSON(t, service.ResultFromPlan("direct", direct).Cells)

	dir := t.TempDir()
	d := startDaemon(t, dir)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	cold, err := d.c.Run(ctx, plan, 0, 20*time.Millisecond, nil)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if cold.State != service.StateDone || len(cold.Cells) != 8 {
		t.Fatalf("cold run state %s with %d cells", cold.State, len(cold.Cells))
	}
	for i, c := range cold.Cells {
		if c.Cached {
			t.Errorf("cold cell %d claims a cache hit", i)
		}
	}
	if got := summariesJSON(t, cold.Cells); got != want {
		t.Errorf("cold-store summaries differ from in-process StreamRunner")
	}

	warm, err := d.c.Run(ctx, plan, 0, 20*time.Millisecond, nil)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	for i, c := range warm.Cells {
		if !c.Cached {
			t.Errorf("warm cell %d was recomputed", i)
		}
	}
	if got := summariesJSON(t, warm.Cells); got != want {
		t.Errorf("warm-store summaries differ from in-process StreamRunner")
	}
	d.stop(t)

	// Daemon restart: a fresh incarnation serves the whole plan from the
	// persisted store.
	d2 := startDaemon(t, dir)
	defer d2.stop(t)
	again, err := d2.c.Run(ctx, plan, 0, 20*time.Millisecond, nil)
	if err != nil {
		t.Fatalf("post-restart run: %v", err)
	}
	for i, c := range again.Cells {
		if !c.Cached {
			t.Errorf("post-restart cell %d was recomputed", i)
		}
	}
	if got := summariesJSON(t, again.Cells); got != want {
		t.Errorf("post-restart summaries differ from in-process StreamRunner")
	}
}

// TestAPIErrorsAndLifecycle exercises the non-happy paths: strict plan
// decoding, unknown jobs, result-before-finish, cancellation, registry
// and version endpoints.
func TestAPIErrorsAndLifecycle(t *testing.T) {
	d := startDaemon(t, t.TempDir())
	defer d.stop(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	post := func(body string) *http.Response {
		resp, err := http.Post(d.srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// A typo'd field must be rejected by the strict decoder, not run as a
	// default campaign.
	resp := post(`{"seed": 1, "strike": 10, "cells": [{"device": "k40", "kernel": "dgemm:128"}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("typo'd plan: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	resp = post(`{"seed": 1, "strikes": 10, "cells": [{"device": "k41", "kernel": "dgemm:128"}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown device: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	if _, err := d.c.Status(ctx, "j-doesnotexist"); err == nil {
		t.Errorf("status of unknown job did not error")
	}
	if _, err := d.c.Result(ctx, "j-doesnotexist"); err == nil {
		t.Errorf("result of unknown job did not error")
	}

	// A long job: result while running is ErrNotFinished (202), then a
	// cancel lands it in cancelled.
	long := campaign.NewPlan(7, 500_000).
		WithCell("k40", "dgemm:128").WithWorkers(1).WithStreamChunk(64)
	snap, err := d.c.Submit(ctx, long, 3)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Priority != 3 || snap.State != service.StateQueued {
		t.Errorf("submitted snapshot = %+v", snap)
	}
	if _, err := d.c.Result(ctx, snap.ID); err != service.ErrNotFinished {
		t.Errorf("result of running job = %v, want ErrNotFinished", err)
	}
	if _, err := d.c.Cancel(ctx, snap.ID); err != nil {
		t.Fatal(err)
	}
	final, err := d.c.Wait(ctx, snap.ID, 10*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateCancelled {
		t.Errorf("cancelled job state = %s", final.State)
	}

	// Discovery endpoints.
	reg, err := d.c.Registry(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Devices) < 2 || len(reg.Kernels) < 4 {
		t.Errorf("registry = %+v", reg)
	}
	if reg.Devices[0].Name != "k40" || reg.Devices[0].Help == "" {
		t.Errorf("device info = %+v", reg.Devices[0])
	}
	vi, err := d.c.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if vi.Version != "test-build" || !strings.HasPrefix(vi.Go, "go") {
		t.Errorf("version = %+v", vi)
	}

	// Job listing includes what we just ran, plus the scheduling picture:
	// per-state counts and per-tenant stats (the default tenant at least).
	var listed JobsList
	lresp, err := http.Get(d.srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(listed.Jobs) == 0 {
		t.Errorf("job list is empty")
	}
	if listed.States[service.StateCancelled] == 0 {
		t.Errorf("state counts missing cancelled job: %v", listed.States)
	}
	foundDefault := false
	for _, ts := range listed.Tenants {
		if ts.Tenant == "default" {
			foundDefault = true
		}
	}
	if !foundDefault {
		t.Errorf("tenant stats missing default tenant: %+v", listed.Tenants)
	}
}

// TestSSEEvents follows a short job's event stream: an initial status
// event, live chunk progress, and a terminal state event that ends the
// stream.
func TestSSEEvents(t *testing.T) {
	d := startDaemon(t, t.TempDir())
	defer d.stop(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	plan := campaign.NewPlan(42, 200).
		WithCell("k40", "dgemm:128").WithWorkers(1).WithStreamChunk(32)
	snap, err := d.c.Submit(ctx, plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		d.srv.URL+"/v1/jobs/"+snap.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var sawStatus, sawChunk, sawTerminal bool
	sc := bufio.NewScanner(resp.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "status":
				sawStatus = true
			case "chunk":
				var ev service.Event
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad chunk event %q: %v", data, err)
				}
				if ev.Done > 0 && ev.Total == 200 {
					sawChunk = true
				}
			case "state":
				var ev service.Event
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad state event %q: %v", data, err)
				}
				if ev.State == service.StateDone {
					sawTerminal = true
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if !sawStatus || !sawChunk || !sawTerminal {
		t.Errorf("stream saw status=%v chunk=%v terminal=%v; want all", sawStatus, sawChunk, sawTerminal)
	}
}
