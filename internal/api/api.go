// Package api is radcritd's HTTP surface: a stdlib net/http JSON API over
// the campaign service. Plans — the exact JSON documents the CLI tools
// load with -plan — are submitted as request bodies, strict-decoded and
// validated before they touch the queue, and results come back as the
// service's wire types, whose summary floats survive the JSON round trip
// bit-exactly.
//
//	POST   /v1/jobs             submit a Plan (body), ?priority=N
//	GET    /v1/jobs             list jobs + per-tenant queue depths + per-state counts
//	GET    /v1/jobs/{id}        status + per-cell progress
//	GET    /v1/jobs/{id}/result per-cell summaries of a finished job
//	GET    /v1/jobs/{id}/events live progress (Server-Sent Events)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/tenants          per-tenant scheduling stats
//	GET    /v1/registry         registered devices and kernels
//	GET    /v1/version          build information
//
// Every request resolves to a tenant: a Bearer token maps through the
// tenant registry, the X-Radcrit-Tenant header addresses tokenless
// tenants by name (trusted-network mode), and anonymous requests act as
// the default tenant — the pre-tenancy behaviour. A submission that
// trips the tenant's admission quota is answered 429 with a Retry-After
// header estimating when the backlog will have drained.
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"radcrit/internal/campaign"
	"radcrit/internal/registry"
	"radcrit/internal/service"
	"radcrit/internal/telemetry"
	"radcrit/internal/tenant"
)

// TenantHeader names the tenant a tokenless request acts as.
const TenantHeader = "X-Radcrit-Tenant"

// maxPlanBytes bounds a submitted plan document. Plans are small — a
// thousand-cell matrix is a few tens of KiB — so 1 MiB is generous.
const maxPlanBytes = 1 << 20

// Server routes the v1 API onto a service.Manager.
type Server struct {
	m       *service.Manager
	version string
	mux     *http.ServeMux
	timeout time.Duration
	metrics *serverMetrics // nil without WithMetrics
	limiter *limiter
}

// Option configures a Server.
type Option func(*Server)

// WithRequestTimeout bounds every handler's request context. The SSE
// event stream is exempt — it is legitimately long-lived and ends on
// job completion or client disconnect instead.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.timeout = d }
}

// WithMetrics instruments the server on reg (per-tenant request,
// response and latency families, rate-limit rejections) and mounts the
// registry's Prometheus exposition at GET /metrics.
func WithMetrics(reg *telemetry.Registry) Option {
	return func(s *Server) {
		s.metrics = newServerMetrics(reg)
		s.mux.Handle("GET /metrics", reg.Handler())
	}
}

// New builds the API handler. version is the daemon's build string
// (cli.Version()), surfaced at GET /v1/version.
func New(m *service.Manager, version string, opts ...Option) *Server {
	s := &Server{m: m, version: version, mux: http.NewServeMux(), limiter: newLimiter(nil)}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.result)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.events)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	s.mux.HandleFunc("GET /v1/tenants", s.tenants)
	s.mux.HandleFunc("POST /v1/tenants/reload", s.reloadTenants)
	s.mux.HandleFunc("GET /v1/registry", s.registry)
	s.mux.HandleFunc("GET /v1/version", s.versionInfo)
	return s
}

// ServeHTTP implements http.Handler. Every /v1 request passes the
// tenant rate limiter (token bucket shaped by the registry's live
// rate_limit, so reloads bite immediately) and, when metered, the
// request/response/latency families. The SSE event stream is exempt
// from the timeout and the latency histogram: it is long-lived by
// design.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	events := strings.HasSuffix(r.URL.Path, "/events")
	if s.timeout > 0 && !events {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		// Resolution failures (unknown token, unknown tenant) are left to
		// the handlers' own authorization answers; the limiter and meters
		// file such requests under the default tenant.
		name, _, terr := s.resolveTenant(r)
		if terr != nil {
			name = tenant.Default
		}
		if terr == nil {
			if tn, ok := s.m.Tenants().Get(name); ok {
				if allowed, wait := s.limiter.allow(name, tn.Rate); !allowed {
					if s.metrics != nil {
						s.metrics.rateLimited.With(name).Inc()
						s.metrics.responses.With(name, "429").Inc()
					}
					secs := int(math.Ceil(wait.Seconds()))
					if secs < 1 {
						secs = 1
					}
					w.Header().Set("Retry-After", strconv.Itoa(secs))
					writeErr(w, http.StatusTooManyRequests, "tenant %q over request rate limit", name)
					return
				}
			}
		}
		if s.metrics != nil && !events {
			s.metrics.requests.With(name).Inc()
			rec := &statusRecorder{ResponseWriter: w}
			start := time.Now()
			s.mux.ServeHTTP(rec, r)
			s.metrics.latency.With(name).Observe(time.Since(start).Seconds())
			code := rec.code
			if code == 0 {
				code = http.StatusOK
			}
			s.metrics.responses.With(name, strconv.Itoa(code)).Inc()
			return
		}
	}
	s.mux.ServeHTTP(w, r)
}

// reloadTenants is POST /v1/tenants/reload: re-read tenants.json and
// re-weight the live queue (service.Manager.ReloadTenants — the same
// path the SIGHUP handler takes). Answers with the reloaded per-tenant
// stats.
func (s *Server) reloadTenants(w http.ResponseWriter, _ *http.Request) {
	if err := s.m.ReloadTenants(); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.m.TenantStats())
}

// apiError is every error response's body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// VersionInfo is GET /v1/version's body.
type VersionInfo struct {
	Version string `json:"version"`
	Go      string `json:"go"`
}

// RegistryInfo is GET /v1/registry's body: everything a client needs to
// write a valid plan cell.
type RegistryInfo struct {
	Devices []registry.Info `json:"devices"`
	Kernels []registry.Info `json:"kernels"`
}

// resolveTenant maps a request to its tenant name. Precedence: a Bearer
// token authenticates as its registered tenant (an unknown token is
// 401); otherwise the X-Radcrit-Tenant header addresses a registered
// tenant by name — but a tenant that has a token must present it, so
// the header alone cannot impersonate an authenticated namespace;
// otherwise the request acts as the default tenant.
func (s *Server) resolveTenant(r *http.Request) (string, int, error) {
	if auth := r.Header.Get("Authorization"); auth != "" {
		tok, ok := strings.CutPrefix(auth, "Bearer ")
		if !ok {
			return "", http.StatusUnauthorized, fmt.Errorf("unsupported Authorization scheme")
		}
		tn, ok := s.m.Tenants().ResolveToken(strings.TrimSpace(tok))
		if !ok {
			return "", http.StatusUnauthorized, fmt.Errorf("unknown bearer token")
		}
		return tn.Name, 0, nil
	}
	if name := r.Header.Get(TenantHeader); name != "" {
		tn, ok := s.m.Tenants().Get(name)
		if !ok {
			return "", http.StatusForbidden, fmt.Errorf("unknown tenant %q", name)
		}
		if tn.Token != "" {
			return "", http.StatusUnauthorized, fmt.Errorf("tenant %q requires a bearer token", name)
		}
		return tn.Name, 0, nil
	}
	return tenant.Default, 0, nil
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	tenantName, code, terr := s.resolveTenant(r)
	if terr != nil {
		writeErr(w, code, "%v", terr)
		return
	}
	priority := 0
	if p := r.URL.Query().Get("priority"); p != "" {
		v, err := strconv.Atoi(p)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad priority %q", p)
			return
		}
		priority = v
	}
	// LoadPlan strict-decodes (unknown fields are errors) and validates
	// every cell against the registry before the plan reaches the queue.
	plan, err := campaign.LoadPlan(http.MaxBytesReader(w, r.Body, maxPlanBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	snap, err := s.m.SubmitAs(tenantName, plan, priority)
	if err != nil {
		var qe *service.QuotaError
		if errors.As(err, &qe) {
			// Retry-After is whole seconds (RFC 9110), rounded up so a
			// client never retries early into the same rejection.
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(qe.RetryAfter.Seconds()))))
			writeErr(w, http.StatusTooManyRequests, "%v", qe)
			return
		}
		code := http.StatusBadRequest
		if err == service.ErrDraining {
			code = http.StatusServiceUnavailable
		}
		writeErr(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, snap)
}

// JobsList is GET /v1/jobs' body: the job snapshots plus the scheduling
// picture — per-state job counts across the daemon and per-tenant stats
// (weight, queue depth, strike progress).
type JobsList struct {
	Jobs    []service.Snapshot    `json:"jobs"`
	States  map[service.State]int `json:"states"`
	Tenants []service.TenantStat  `json:"tenants"`
}

func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	jobs := s.m.Jobs()
	states := map[service.State]int{}
	for _, j := range jobs {
		states[j.State]++
	}
	writeJSON(w, http.StatusOK, JobsList{Jobs: jobs, States: states, Tenants: s.m.TenantStats()})
}

func (s *Server) tenants(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.m.TenantStats())
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	snap, err := s.m.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, err := s.m.Result(id)
	switch {
	case err == service.ErrUnknownJob:
		writeErr(w, http.StatusNotFound, "%v", err)
	case err == service.ErrNotFinished:
		// 202: the request is fine, the answer is still being computed.
		// The body carries the live snapshot so a poller needs no second
		// request.
		snap, _ := s.m.Job(id)
		writeJSON(w, http.StatusAccepted, snap)
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	snap, err := s.m.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// events streams a job's progress as Server-Sent Events: an initial
// "status" event with the full snapshot, then "state"/"cell"/"chunk"
// events as they happen. Every job event carries an SSE id (the job's
// event sequence number); a reconnecting client that presents it via the
// standard Last-Event-ID header is replayed the events it missed (up to
// the ring's retention) before the live tail. The stream ends when the
// job reaches a terminal state or the client disconnects.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	var after uint64
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		v, err := strconv.ParseUint(lei, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad Last-Event-ID %q", lei)
			return
		}
		after = v
	}
	// Subscribe before reading the snapshot: the other order has a gap
	// in which the job's terminal state event can be published to nobody,
	// leaving this stream waiting forever on a job that already finished.
	backlog, ch, unsub, err := s.m.SubscribeFrom(id, after)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	defer unsub()
	snap, err := s.m.Job(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	sse := func(event string, seq uint64, v any) {
		data, _ := json.Marshal(v)
		if seq > 0 {
			fmt.Fprintf(w, "id: %d\n", seq)
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		flusher.Flush()
	}
	sse("status", 0, snap)
	for _, ev := range backlog {
		sse(ev.Type, ev.Seq, ev)
	}
	if snap.State.Terminal() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			sse(ev.Type, ev.Seq, ev)
			if ev.Type == "state" && ev.State.Terminal() {
				return
			}
		}
	}
}

func (s *Server) registry(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, RegistryInfo{
		Devices: registry.Devices(),
		Kernels: registry.Kernels(),
	})
}

func (s *Server) versionInfo(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, VersionInfo{Version: s.version, Go: runtime.Version()})
}
