package api

import (
	"net/http"

	"radcrit/internal/telemetry"
)

// serverMetrics is the API layer's instrumentation: request and response
// counters by tenant, a latency histogram, and the rate-limiter's 429
// count. Families are registered once in WithMetrics; per-request work
// is a handful of pre-shaped vec lookups.
type serverMetrics struct {
	requests    *telemetry.CounterVec
	responses   *telemetry.CounterVec
	latency     *telemetry.HistogramVec
	rateLimited *telemetry.CounterVec
}

func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	return &serverMetrics{
		requests: reg.CounterVec("radcrit_api_requests_total",
			"API requests received, by resolved tenant.",
			[]string{"tenant"}),
		responses: reg.CounterVec("radcrit_api_responses_total",
			"API responses sent, by tenant and status code.",
			[]string{"tenant", "code"}),
		latency: reg.HistogramVec("radcrit_api_request_seconds",
			"API request latency (the SSE event stream is exempt: it is legitimately long-lived).",
			telemetry.DefBuckets, []string{"tenant"}),
		rateLimited: reg.CounterVec("radcrit_api_rate_limited_total",
			"Requests rejected 429 by the tenant token-bucket rate limiter.",
			[]string{"tenant"}),
	}
}

// statusRecorder captures the response status for the responses counter.
// It forwards Flush so the SSE handler still sees a flusher (the events
// path skips metrics, but belt and braces).
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
