package api

import (
	"sync"
	"time"

	"radcrit/internal/tenant"
)

// limiter enforces per-tenant token-bucket rate limits (tenants.json
// "rate_limit": sustained rps plus a burst allowance). The limit itself
// is read from the tenant registry on every request, so a SIGHUP reload
// re-shapes the buckets immediately — only the accumulated tokens are
// state here.
type limiter struct {
	now func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(now func() time.Time) *limiter {
	if now == nil {
		now = time.Now
	}
	return &limiter{now: now, buckets: map[string]*bucket{}}
}

// allow spends one token from name's bucket under rl. When the bucket is
// empty it reports false plus how long until the next token accrues —
// the Retry-After answer. A zero-RPS limit is unlimited.
func (l *limiter) allow(name string, rl tenant.RateLimit) (bool, time.Duration) {
	if rl.RPS <= 0 {
		return true, 0
	}
	burst := float64(rl.EffectiveBurst())
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[name]
	if b == nil {
		b = &bucket{tokens: burst, last: now}
		l.buckets[name] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * rl.RPS
		b.last = now
	}
	if b.tokens > burst {
		b.tokens = burst // also clamps after a reload shrank the burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / rl.RPS * float64(time.Second))
	return false, wait
}
