package registry

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"radcrit/internal/arch"
	"radcrit/internal/k40"
	"radcrit/internal/kernels"
	"radcrit/internal/kernels/clamr"
	"radcrit/internal/kernels/dgemm"
	"radcrit/internal/kernels/hotspot"
	"radcrit/internal/kernels/lavamd"
	"radcrit/internal/phi"
)

// The paper's devices and kernels self-register here: "k40" and "phi"
// devices; "dgemm:N", "lavamd:G", "hotspot:SIDExITERS" and
// "clamr:SIDExSTEPS" kernel families.
func init() {
	RegisterDeviceInfo("k40", "NVIDIA Tesla K40 (Kepler) device model",
		func() (arch.Device, error) { return k40.New(), nil })
	RegisterDeviceInfo("phi", "Intel Xeon Phi 3120A (Knights Corner) device model",
		func() (arch.Device, error) { return phi.New(), nil })

	RegisterKernel("dgemm", KernelEntry{
		Help: "dense matrix multiply; params: matrix side N, e.g. dgemm:1024",
		Validate: func(params string) error {
			n, err := intParam(params, "matrix side")
			if err != nil {
				return err
			}
			return dgemm.Check(n)
		},
		Make: func(params string) (kernels.Kernel, error) {
			n, err := intParam(params, "matrix side")
			if err != nil {
				return nil, err
			}
			return dgemm.New(n), nil
		},
	})
	RegisterKernel("lavamd", KernelEntry{
		Help: "LavaMD particle dynamics; params: box-grid size G, e.g. lavamd:19",
		Validate: func(params string) error {
			g, err := intParam(params, "box-grid size")
			if err != nil {
				return err
			}
			return lavamd.Check(g)
		},
		Make: func(params string) (kernels.Kernel, error) {
			g, err := intParam(params, "box-grid size")
			if err != nil {
				return nil, err
			}
			return lavamd.New(g), nil
		},
	})
	RegisterKernel("hotspot", KernelEntry{
		Help: "HotSpot thermal stencil; params: SIDExITERS, e.g. hotspot:1024x400",
		Validate: func(params string) error {
			side, iters, err := pairParam(params, "SIDExITERS")
			if err != nil {
				return err
			}
			return hotspot.Check(side, iters)
		},
		Make: func(params string) (kernels.Kernel, error) {
			side, iters, err := pairParam(params, "SIDExITERS")
			if err != nil {
				return nil, err
			}
			return HotSpot(side, iters), nil
		},
	})
	RegisterKernel("clamr", KernelEntry{
		Help: "CLAMR shallow-water AMR; params: SIDExSTEPS, e.g. clamr:512x600",
		Validate: func(params string) error {
			side, steps, err := pairParam(params, "SIDExSTEPS")
			if err != nil {
				return err
			}
			return clamr.Check(side, steps)
		},
		Make: func(params string) (kernels.Kernel, error) {
			side, steps, err := pairParam(params, "SIDExSTEPS")
			if err != nil {
				return nil, err
			}
			return CLAMR(side, steps), nil
		},
	})
}

// intParam parses a single positive-integer params string.
func intParam(params, what string) (int, error) {
	if params == "" {
		return 0, fmt.Errorf("missing %s (e.g. \"dgemm:1024\")", what)
	}
	n, err := strconv.Atoi(params)
	if err != nil {
		return 0, fmt.Errorf("%s %q is not an integer", what, params)
	}
	return n, nil
}

// pairParam parses an "AxB" params string (e.g. "1024x400").
func pairParam(params, shape string) (a, b int, err error) {
	first, second, ok := strings.Cut(params, "x")
	if !ok || params == "" {
		return 0, 0, fmt.Errorf("params %q do not match %s", params, shape)
	}
	if a, err = strconv.Atoi(first); err != nil {
		return 0, 0, fmt.Errorf("params %q do not match %s", params, shape)
	}
	if b, err = strconv.Atoi(second); err != nil {
		return 0, 0, fmt.Errorf("params %q do not match %s", params, shape)
	}
	return a, b, nil
}

// The iterative kernels run a golden simulation at construction, so their
// instances are memoised per configuration: every consumer of one
// configuration — plans, presets, CLI flags — shares one golden timeline.
var (
	hotspotCache sync.Map // "side/iters" -> *hotspot.Kernel
	clamrCache   sync.Map // "side/steps" -> *clamr.Kernel
)

// HotSpot returns the memoised HotSpot instance for (side, iters).
func HotSpot(side, iters int) *hotspot.Kernel {
	key := fmt.Sprintf("%d/%d", side, iters)
	if v, ok := hotspotCache.Load(key); ok {
		return v.(*hotspot.Kernel)
	}
	k := hotspot.New(side, iters)
	if v, loaded := hotspotCache.LoadOrStore(key, k); loaded {
		return v.(*hotspot.Kernel)
	}
	return k
}

// CLAMR returns the memoised CLAMR instance for (side, steps).
func CLAMR(side, steps int) *clamr.Kernel {
	key := fmt.Sprintf("%d/%d", side, steps)
	if v, ok := clamrCache.Load(key); ok {
		return v.(*clamr.Kernel)
	}
	k := clamr.New(side, steps)
	if v, loaded := clamrCache.LoadOrStore(key, k); loaded {
		return v.(*clamr.Kernel)
	}
	return k
}
