package registry_test

import (
	"testing"

	"radcrit/internal/registry"
)

// TestEnumeration pins the discovery API: sorted names, help strings on
// every built-in, and agreement with the name-only accessors.
func TestEnumeration(t *testing.T) {
	devs := registry.Devices()
	if len(devs) < 2 {
		t.Fatalf("Devices() = %v", devs)
	}
	names := registry.DeviceNames()
	for i, d := range devs {
		if d.Name != names[i] {
			t.Errorf("Devices()[%d].Name = %q, DeviceNames()[%d] = %q", i, d.Name, i, names[i])
		}
		if i > 0 && devs[i-1].Name >= d.Name {
			t.Errorf("Devices() not sorted: %q before %q", devs[i-1].Name, d.Name)
		}
	}
	for _, want := range []string{"k40", "phi"} {
		found := false
		for _, d := range devs {
			if d.Name == want {
				found = true
				if d.Help == "" {
					t.Errorf("built-in device %q has no help", want)
				}
			}
		}
		if !found {
			t.Errorf("built-in device %q missing from Devices()", want)
		}
	}

	kerns := registry.Kernels()
	kNames := registry.KernelNames()
	if len(kerns) != len(kNames) {
		t.Fatalf("Kernels() has %d entries, KernelNames() %d", len(kerns), len(kNames))
	}
	for i, k := range kerns {
		if k.Name != kNames[i] {
			t.Errorf("Kernels()[%d].Name = %q, want %q", i, k.Name, kNames[i])
		}
	}
	for _, want := range []string{"dgemm", "lavamd", "hotspot", "clamr"} {
		found := false
		for _, k := range kerns {
			if k.Name == want {
				found = true
				if k.Help == "" {
					t.Errorf("built-in kernel %q has no params help", want)
				}
			}
		}
		if !found {
			t.Errorf("built-in kernel %q missing from Kernels()", want)
		}
	}
}

// TestSuggest pins the did-you-mean heuristic: close typos (including
// transpositions) resolve, distant garbage stays silent.
func TestSuggest(t *testing.T) {
	candidates := []string{"clamr", "dgemm", "hotspot", "lavamd"}
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"dgem", "dgemm", true},
		{"ddgemm", "dgemm", true},
		{"dgmem", "dgemm", true}, // transposition
		{"hotspt", "hotspot", true},
		{"lavamd", "lavamd", true},
		{"clammr", "clamr", true},
		{"zzz", "", false},
		{"completely-unrelated", "", false},
	}
	for _, c := range cases {
		got, ok := registry.Suggest(c.in, candidates)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Suggest(%q) = %q, %v; want %q, %v", c.in, got, ok, c.want, c.ok)
		}
	}
	if _, ok := registry.Suggest("k04", []string{"k40", "phi"}); !ok {
		t.Errorf("Suggest(k04) found nothing; want k40")
	}
	if _, ok := registry.Suggest("anything", nil); ok {
		t.Errorf("Suggest with no candidates succeeded")
	}
}
