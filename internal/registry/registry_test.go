package registry_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"radcrit/internal/arch"
	"radcrit/internal/kernels"
	"radcrit/internal/registry"
)

func TestBuiltinDevices(t *testing.T) {
	names := registry.DeviceNames()
	for _, want := range []string{"k40", "phi"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in device %q not registered (have %v)", want, names)
		}
	}
	dev, err := registry.NewDevice("k40")
	if err != nil {
		t.Fatalf("NewDevice(k40): %v", err)
	}
	if dev.ShortName() != "K40" {
		t.Errorf("k40 resolved to %q", dev.ShortName())
	}
	dev, err = registry.NewDevice("phi")
	if err != nil {
		t.Fatalf("NewDevice(phi): %v", err)
	}
	if dev.ShortName() != "XeonPhi" {
		t.Errorf("phi resolved to %q", dev.ShortName())
	}
}

func TestUnknownDeviceTyped(t *testing.T) {
	_, err := registry.NewDevice("gtx")
	var ue *registry.UnknownDeviceError
	if !errors.As(err, &ue) {
		t.Fatalf("want *UnknownDeviceError, got %T: %v", err, err)
	}
	if ue.Name != "gtx" || len(ue.Known) == 0 {
		t.Errorf("error lacks identity: %+v", ue)
	}
}

func TestBuiltinKernelSpecs(t *testing.T) {
	cases := []struct {
		spec, name, input string
	}{
		{"dgemm:128", "DGEMM", "128x128"},
		{"lavamd:4", "LavaMD", "grid 4"},
		{"hotspot:64x80", "HotSpot", "64x64"},
		{"clamr:48x60", "CLAMR", "48x48"},
	}
	for _, c := range cases {
		k, err := registry.NewKernel(c.spec)
		if err != nil {
			t.Fatalf("NewKernel(%s): %v", c.spec, err)
		}
		if k.Name() != c.name || k.InputLabel() != c.input {
			t.Errorf("%s resolved to %s/%s, want %s/%s",
				c.spec, k.Name(), k.InputLabel(), c.name, c.input)
		}
	}
}

func TestKernelValidationRejects(t *testing.T) {
	bad := []string{
		"sgemm:128",     // unknown family
		"dgemm",         // missing params
		"dgemm:100",     // not a tile multiple
		"dgemm:-64",     // negative
		"dgemm:big",     // not an integer
		"lavamd:1",      // grid too small
		"hotspot:4x1",   // side and iters too small
		"hotspot:64",    // not SIDExITERS
		"clamr:8x2",     // side and steps too small
		"clamr:48x60x1", // malformed pair
	}
	for _, spec := range bad {
		if err := registry.ValidateKernel(spec); err == nil {
			t.Errorf("ValidateKernel(%q) accepted an invalid spec", spec)
		}
		if _, err := registry.NewKernel(spec); err == nil {
			t.Errorf("NewKernel(%q) accepted an invalid spec", spec)
		}
	}
	var uk *registry.UnknownKernelError
	if err := registry.ValidateKernel("sgemm:1"); !errors.As(err, &uk) {
		t.Errorf("unknown family: want *UnknownKernelError, got %v", err)
	}
	var bp *registry.BadParamsError
	if err := registry.ValidateKernel("dgemm:100"); !errors.As(err, &bp) {
		t.Errorf("bad params: want *BadParamsError, got %v", err)
	}
}

// TestValidateBuildsNothing pins the plan-time guarantee: validating a
// paper-scale iterative kernel must not run its golden simulation (a
// 512x512 x 5000-step CLAMR build takes minutes; validation is instant or
// this test times out the suite).
func TestValidateBuildsNothing(t *testing.T) {
	if err := registry.ValidateKernel("clamr:512x5000"); err != nil {
		t.Fatalf("paper-scale spec rejected: %v", err)
	}
	if err := registry.ValidateKernel("hotspot:1024x400"); err != nil {
		t.Fatalf("paper-scale spec rejected: %v", err)
	}
}

func TestIterativeKernelsMemoised(t *testing.T) {
	a, err := registry.NewKernel("hotspot:64x80")
	if err != nil {
		t.Fatal(err)
	}
	b, err := registry.NewKernel("hotspot:64x80")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("two resolutions of one hotspot config built two instances")
	}
	if registry.HotSpot(64, 80) != a {
		t.Errorf("typed cache and spec resolution disagree")
	}
}

// panicKernel drives the third-party registration path.
type panicKernel struct{ kernels.Kernel }

func TestThirdPartyRegistration(t *testing.T) {
	registry.RegisterDevice("test-dev", func() (arch.Device, error) {
		return nil, fmt.Errorf("deliberately unbuildable")
	})
	if _, err := registry.NewDevice("test-dev"); err == nil || !strings.Contains(err.Error(), "unbuildable") {
		t.Errorf("factory error not surfaced: %v", err)
	}

	registry.RegisterKernel("test-kern", registry.KernelEntry{
		Validate: func(p string) error {
			if p == "bad" {
				return fmt.Errorf("bad params")
			}
			return nil
		},
		Make: func(p string) (kernels.Kernel, error) {
			if p == "explode" {
				panic("third-party constructor bug")
			}
			return panicKernel{}, nil
		},
	})
	if _, err := registry.NewKernel("test-kern:ok"); err != nil {
		t.Errorf("registered kernel not constructible: %v", err)
	}
	if err := registry.ValidateKernel("test-kern:bad"); err == nil {
		t.Errorf("registered Validate not consulted")
	}
	// A panicking third-party constructor must come back as a typed
	// construction error (not a params error — the spec validated), never
	// a panic.
	_, err := registry.NewKernel("test-kern:explode")
	var ce *registry.ConstructionError
	if !errors.As(err, &ce) {
		t.Errorf("constructor panic not converted: %v", err)
	}
}
