// Package registry is the name-to-constructor index behind declarative
// experiment plans: devices and kernels are registered under short names
// ("k40", "dgemm") and constructed from "name" or "name:params" specs, so
// a campaign cell can live in a JSON file or a command-line flag instead
// of a hand-rolled switch statement. The built-in devices and kernels of
// the paper self-register at init (builtins.go); third-party scenarios
// plug in through RegisterDevice/RegisterKernel without touching the
// facade or the campaign engines.
//
// Construction and validation are deliberately split: Kernel.Validate
// checks a params string against the kernel's preconditions without
// building any golden state (the iterative kernels run a full simulation
// at construction), which is what lets Plan.Validate reject a bad cell in
// microseconds before a Runner spends minutes on the good ones.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"radcrit/internal/arch"
	"radcrit/internal/kernels"
)

// DeviceFactory constructs a registered device model.
type DeviceFactory func() (arch.Device, error)

// KernelEntry describes one registered kernel family.
type KernelEntry struct {
	// Validate checks a params string (the part after the colon in
	// "dgemm:1024") against the kernel's preconditions without building
	// golden state. An empty params string is valid only for families
	// with a default configuration.
	Validate func(params string) error
	// Make constructs the kernel; it may be expensive (the iterative
	// kernels run their golden simulation here). Make must not panic:
	// NewKernel additionally converts any escaped panic into an error,
	// but a well-behaved entry returns one directly.
	Make func(params string) (kernels.Kernel, error)
}

// UnknownDeviceError reports a device name with no registration.
type UnknownDeviceError struct {
	Name  string
	Known []string
}

func (e *UnknownDeviceError) Error() string {
	return fmt.Sprintf("registry: unknown device %q (known: %s)", e.Name, strings.Join(e.Known, ", "))
}

// UnknownKernelError reports a kernel family with no registration.
type UnknownKernelError struct {
	Name  string
	Known []string
}

func (e *UnknownKernelError) Error() string {
	return fmt.Sprintf("registry: unknown kernel %q (known: %s)", e.Name, strings.Join(e.Known, ", "))
}

// BadParamsError reports a registered kernel rejecting its params string:
// a permanent configuration error — the spec itself is invalid.
type BadParamsError struct {
	Name, Params string
	Err          error
}

func (e *BadParamsError) Error() string {
	return fmt.Sprintf("registry: kernel %s: bad params %q: %v", e.Name, e.Params, e.Err)
}

func (e *BadParamsError) Unwrap() error { return e.Err }

// ConstructionError reports a factory failing to build a kernel whose
// spec already passed validation: a construction failure (possibly
// transient — resources, I/O, a factory bug), not an invalid plan.
type ConstructionError struct {
	Name, Params string
	Err          error
}

func (e *ConstructionError) Error() string {
	return fmt.Sprintf("registry: kernel %s:%s failed to construct: %v", e.Name, e.Params, e.Err)
}

func (e *ConstructionError) Unwrap() error { return e.Err }

var (
	mu      sync.RWMutex
	devices = map[string]DeviceFactory{}
	kernelz = map[string]KernelEntry{}
)

// RegisterDevice registers a device factory under name. Registering an
// existing name replaces it (last registration wins), letting tests and
// plugins shadow a built-in — but only before any campaign has run:
// the engine memo caches and the iterative-kernel instance caches are
// keyed by name strings and are never invalidated by re-registration,
// so results computed before the shadowing would be served afterwards.
// Register at init time, as the built-ins do.
func RegisterDevice(name string, f DeviceFactory) {
	if name == "" || f == nil {
		panic("registry: RegisterDevice with empty name or nil factory")
	}
	mu.Lock()
	defer mu.Unlock()
	devices[name] = f
}

// RegisterKernel registers a kernel family under name. Registering an
// existing name replaces it, under the same register-before-running
// caveat as RegisterDevice; note also that the campaign scale presets
// construct the built-in iterative kernels directly (registry.HotSpot /
// registry.CLAMR), so shadowing "hotspot"/"clamr" affects plan cells and
// CLI specs but not preset-driven figure builders.
func RegisterKernel(name string, e KernelEntry) {
	if name == "" || e.Make == nil {
		panic("registry: RegisterKernel with empty name or nil Make")
	}
	if e.Validate == nil {
		e.Validate = func(string) error { return nil }
	}
	mu.Lock()
	defer mu.Unlock()
	kernelz[name] = e
}

// DeviceNames returns the registered device names, sorted.
func DeviceNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(devices))
	for n := range devices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// KernelNames returns the registered kernel family names, sorted.
func KernelNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(kernelz))
	for n := range kernelz {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewDevice constructs the device registered under name.
func NewDevice(name string) (arch.Device, error) {
	mu.RLock()
	f, ok := devices[name]
	mu.RUnlock()
	if !ok {
		return nil, &UnknownDeviceError{Name: name, Known: DeviceNames()}
	}
	return f()
}

// SplitSpec splits a kernel spec "name" or "name:params" into its parts.
func SplitSpec(spec string) (name, params string) {
	name, params, _ = strings.Cut(spec, ":")
	return name, params
}

// ValidateDevice checks that name is registered without constructing it.
func ValidateDevice(name string) error {
	mu.RLock()
	_, ok := devices[name]
	mu.RUnlock()
	if !ok {
		return &UnknownDeviceError{Name: name, Known: DeviceNames()}
	}
	return nil
}

// ValidateKernel checks a kernel spec against its family's preconditions
// without building golden state: the plan-time guard that turns what used
// to be a constructor panic into a typed error.
func ValidateKernel(spec string) error {
	name, params := SplitSpec(spec)
	mu.RLock()
	e, ok := kernelz[name]
	mu.RUnlock()
	if !ok {
		return &UnknownKernelError{Name: name, Known: KernelNames()}
	}
	if err := e.Validate(params); err != nil {
		return &BadParamsError{Name: name, Params: params, Err: err}
	}
	return nil
}

// NewKernel constructs the kernel described by spec ("dgemm:1024",
// "lavamd:19", "hotspot:1024x400", "clamr:512x600"). Construction may be
// expensive for iterative kernels; built-ins memoise those per
// configuration. A panic escaping a factory is converted to an error so
// no registry misuse can take down a campaign driver.
func NewKernel(spec string) (k kernels.Kernel, err error) {
	name, params := SplitSpec(spec)
	mu.RLock()
	e, ok := kernelz[name]
	mu.RUnlock()
	if !ok {
		return nil, &UnknownKernelError{Name: name, Known: KernelNames()}
	}
	if verr := e.Validate(params); verr != nil {
		return nil, &BadParamsError{Name: name, Params: params, Err: verr}
	}
	defer func() {
		if r := recover(); r != nil {
			k = nil
			err = &ConstructionError{Name: name, Params: params, Err: fmt.Errorf("constructor panic: %v", r)}
		}
	}()
	k, err = e.Make(params)
	if err != nil {
		return nil, &ConstructionError{Name: name, Params: params, Err: err}
	}
	return k, nil
}
