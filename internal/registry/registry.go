// Package registry is the name-to-constructor index behind declarative
// experiment plans: devices and kernels are registered under short names
// ("k40", "dgemm") and constructed from "name" or "name:params" specs, so
// a campaign cell can live in a JSON file or a command-line flag instead
// of a hand-rolled switch statement. The built-in devices and kernels of
// the paper self-register at init (builtins.go); third-party scenarios
// plug in through RegisterDevice/RegisterKernel without touching the
// facade or the campaign engines.
//
// Construction and validation are deliberately split: Kernel.Validate
// checks a params string against the kernel's preconditions without
// building any golden state (the iterative kernels run a full simulation
// at construction), which is what lets Plan.Validate reject a bad cell in
// microseconds before a Runner spends minutes on the good ones.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"radcrit/internal/arch"
	"radcrit/internal/kernels"
)

// DeviceFactory constructs a registered device model.
type DeviceFactory func() (arch.Device, error)

// KernelEntry describes one registered kernel family.
type KernelEntry struct {
	// Validate checks a params string (the part after the colon in
	// "dgemm:1024") against the kernel's preconditions without building
	// golden state. An empty params string is valid only for families
	// with a default configuration.
	Validate func(params string) error
	// Make constructs the kernel; it may be expensive (the iterative
	// kernels run their golden simulation here). Make must not panic:
	// NewKernel additionally converts any escaped panic into an error,
	// but a well-behaved entry returns one directly.
	Make func(params string) (kernels.Kernel, error)
	// Help is a one-line description of the family and its params shape
	// ("matrix side N, e.g. dgemm:1024") for discovery surfaces: CLI
	// usage text and the service's registry endpoint.
	Help string
}

// Info describes one registry entry for discovery surfaces.
type Info struct {
	Name string `json:"name"`
	Help string `json:"help,omitempty"`
}

// UnknownDeviceError reports a device name with no registration.
type UnknownDeviceError struct {
	Name  string
	Known []string
}

func (e *UnknownDeviceError) Error() string {
	return fmt.Sprintf("registry: unknown device %q (known: %s)", e.Name, strings.Join(e.Known, ", "))
}

// UnknownKernelError reports a kernel family with no registration.
type UnknownKernelError struct {
	Name  string
	Known []string
}

func (e *UnknownKernelError) Error() string {
	return fmt.Sprintf("registry: unknown kernel %q (known: %s)", e.Name, strings.Join(e.Known, ", "))
}

// BadParamsError reports a registered kernel rejecting its params string:
// a permanent configuration error — the spec itself is invalid.
type BadParamsError struct {
	Name, Params string
	Err          error
}

func (e *BadParamsError) Error() string {
	return fmt.Sprintf("registry: kernel %s: bad params %q: %v", e.Name, e.Params, e.Err)
}

func (e *BadParamsError) Unwrap() error { return e.Err }

// ConstructionError reports a factory failing to build a kernel whose
// spec already passed validation: a construction failure (possibly
// transient — resources, I/O, a factory bug), not an invalid plan.
type ConstructionError struct {
	Name, Params string
	Err          error
}

func (e *ConstructionError) Error() string {
	return fmt.Sprintf("registry: kernel %s:%s failed to construct: %v", e.Name, e.Params, e.Err)
}

func (e *ConstructionError) Unwrap() error { return e.Err }

// deviceEntry pairs a device factory with its discovery help.
type deviceEntry struct {
	make DeviceFactory
	help string
}

var (
	mu      sync.RWMutex
	devices = map[string]deviceEntry{}
	kernelz = map[string]KernelEntry{}
)

// RegisterDevice registers a device factory under name. Registering an
// existing name replaces it (last registration wins), letting tests and
// plugins shadow a built-in — but only before any campaign has run:
// the engine memo caches and the iterative-kernel instance caches are
// keyed by name strings and are never invalidated by re-registration,
// so results computed before the shadowing would be served afterwards.
// Register at init time, as the built-ins do.
func RegisterDevice(name string, f DeviceFactory) {
	RegisterDeviceInfo(name, "", f)
}

// RegisterDeviceInfo is RegisterDevice with a one-line help string for
// discovery surfaces (CLI usage, the service's registry endpoint).
func RegisterDeviceInfo(name, help string, f DeviceFactory) {
	if name == "" || f == nil {
		panic("registry: RegisterDevice with empty name or nil factory")
	}
	mu.Lock()
	defer mu.Unlock()
	devices[name] = deviceEntry{make: f, help: help}
}

// RegisterKernel registers a kernel family under name. Registering an
// existing name replaces it, under the same register-before-running
// caveat as RegisterDevice; note also that the campaign scale presets
// construct the built-in iterative kernels directly (registry.HotSpot /
// registry.CLAMR), so shadowing "hotspot"/"clamr" affects plan cells and
// CLI specs but not preset-driven figure builders.
func RegisterKernel(name string, e KernelEntry) {
	if name == "" || e.Make == nil {
		panic("registry: RegisterKernel with empty name or nil Make")
	}
	if e.Validate == nil {
		e.Validate = func(string) error { return nil }
	}
	mu.Lock()
	defer mu.Unlock()
	kernelz[name] = e
}

// DeviceNames returns the registered device names, sorted.
func DeviceNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(devices))
	for n := range devices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// KernelNames returns the registered kernel family names, sorted.
func KernelNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(kernelz))
	for n := range kernelz {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Devices enumerates the registered devices, sorted by name — the
// discovery API behind GET /v1/registry and the CLI's flag help.
func Devices() []Info {
	mu.RLock()
	defer mu.RUnlock()
	infos := make([]Info, 0, len(devices))
	for n, e := range devices {
		infos = append(infos, Info{Name: n, Help: e.help})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Kernels enumerates the registered kernel families with their params
// help, sorted by name.
func Kernels() []Info {
	mu.RLock()
	defer mu.RUnlock()
	infos := make([]Info, 0, len(kernelz))
	for n, e := range kernelz {
		infos = append(infos, Info{Name: n, Help: e.Help})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Suggest returns the candidate closest to name by edit distance when it
// is close enough to plausibly be a typo ("ddgemm" → "dgemm"), for
// did-you-mean error messages. The second result is false when nothing
// is convincingly close.
func Suggest(name string, candidates []string) (string, bool) {
	best, bestDist := "", -1
	for _, c := range candidates {
		d := editDistance(name, c)
		if bestDist < 0 || d < bestDist || (d == bestDist && c < best) {
			best, bestDist = c, d
		}
	}
	if best == "" {
		return "", false
	}
	// A suggestion further away than half the typed name is noise.
	limit := max(1, len(name)/2)
	if bestDist > limit {
		return "", false
	}
	return best, true
}

// editDistance is the optimal-string-alignment distance over bytes:
// Levenshtein plus adjacent transpositions as a single edit, so the
// classic "k04" for "k40" typo counts as one step.
func editDistance(a, b string) int {
	prev2 := make([]int, len(b)+1)
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				cur[j] = min(cur[j], prev2[j-2]+1)
			}
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[len(b)]
}

// NewDevice constructs the device registered under name.
func NewDevice(name string) (arch.Device, error) {
	mu.RLock()
	e, ok := devices[name]
	mu.RUnlock()
	if !ok {
		return nil, &UnknownDeviceError{Name: name, Known: DeviceNames()}
	}
	return e.make()
}

// SplitSpec splits a kernel spec "name" or "name:params" into its parts.
func SplitSpec(spec string) (name, params string) {
	name, params, _ = strings.Cut(spec, ":")
	return name, params
}

// ValidateDevice checks that name is registered without constructing it.
func ValidateDevice(name string) error {
	mu.RLock()
	_, ok := devices[name]
	mu.RUnlock()
	if !ok {
		return &UnknownDeviceError{Name: name, Known: DeviceNames()}
	}
	return nil
}

// ValidateKernel checks a kernel spec against its family's preconditions
// without building golden state: the plan-time guard that turns what used
// to be a constructor panic into a typed error.
func ValidateKernel(spec string) error {
	name, params := SplitSpec(spec)
	mu.RLock()
	e, ok := kernelz[name]
	mu.RUnlock()
	if !ok {
		return &UnknownKernelError{Name: name, Known: KernelNames()}
	}
	if err := e.Validate(params); err != nil {
		return &BadParamsError{Name: name, Params: params, Err: err}
	}
	return nil
}

// NewKernel constructs the kernel described by spec ("dgemm:1024",
// "lavamd:19", "hotspot:1024x400", "clamr:512x600"). Construction may be
// expensive for iterative kernels; built-ins memoise those per
// configuration. A panic escaping a factory is converted to an error so
// no registry misuse can take down a campaign driver.
func NewKernel(spec string) (k kernels.Kernel, err error) {
	name, params := SplitSpec(spec)
	mu.RLock()
	e, ok := kernelz[name]
	mu.RUnlock()
	if !ok {
		return nil, &UnknownKernelError{Name: name, Known: KernelNames()}
	}
	if verr := e.Validate(params); verr != nil {
		return nil, &BadParamsError{Name: name, Params: params, Err: verr}
	}
	defer func() {
		if r := recover(); r != nil {
			k = nil
			err = &ConstructionError{Name: name, Params: params, Err: fmt.Errorf("constructor panic: %v", r)}
		}
	}()
	k, err = e.Make(params)
	if err != nil {
		return nil, &ConstructionError{Name: name, Params: params, Err: err}
	}
	return k, nil
}
