package swinject

import (
	"testing"

	"radcrit/internal/campaign"
	"radcrit/internal/fault"
	"radcrit/internal/injector"
	"radcrit/internal/k40"
	"radcrit/internal/kernels/dgemm"
)

func TestAccessible(t *testing.T) {
	for _, r := range AccessibleResources {
		if !Accessible(r) {
			t.Fatalf("%v should be accessible", r)
		}
	}
	for _, r := range []fault.Resource{
		fault.Scheduler, fault.Dispatcher, fault.ControlLogic,
		fault.InstructionPath, fault.FPU, fault.SFU, fault.VectorUnit,
	} {
		if Accessible(r) {
			t.Fatalf("%v must be outside a software injector's reach (§IV-D)", r)
		}
	}
}

func TestRunEstimatesAVF(t *testing.T) {
	c := Run(k40.New(), dgemm.New(128), 300, 1)
	if c.Injections != 300 {
		t.Fatal("injection count wrong")
	}
	if c.Masked+len(c.SDCs) != 300 {
		t.Fatal("outcomes do not add up: an injector sees only masked or SDC")
	}
	if c.AVF <= 0 || c.AVF >= 1 {
		t.Fatalf("AVF = %v; single-bit flips must be partially masked and partially corrupting", c.AVF)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(k40.New(), dgemm.New(128), 100, 7)
	b := Run(k40.New(), dgemm.New(128), 100, 7)
	if a.AVF != b.AVF || len(a.SDCs) != len(b.SDCs) {
		t.Fatal("software injection campaign not reproducible")
	}
}

func TestBlindSpotAgainstBeam(t *testing.T) {
	// Run a real beam campaign and quantify what the injector misses.
	res := campaign.Run(k40.New(), dgemm.New(128), campaign.DefaultConfig(31, 400))
	b := Compare(res.ResourceTally)
	if b.BeamSDCs != res.Tally.SDC {
		t.Fatal("SDC accounting mismatch")
	}
	if b.BeamDUEs != res.Tally.Crash+res.Tally.Hang {
		t.Fatal("DUE accounting mismatch")
	}
	// §IV-D's argument: the failure modes behind most crashes/hangs live
	// in resources fault injectors cannot reach.
	if b.DUEBlindFraction() < 0.5 {
		t.Fatalf("only %.0f%% of DUEs outside the injector's reach; the paper's point is that most are",
			100*b.DUEBlindFraction())
	}
	// And a real share of SDCs (scheduler/datapath-born) is missed too.
	if b.SDCBlindFraction() <= 0 {
		t.Fatal("beam found no SDCs outside the injector's reach")
	}
}

func TestBlindFractionsEmpty(t *testing.T) {
	var b BlindSpot
	if b.SDCBlindFraction() != 0 || b.DUEBlindFraction() != 0 {
		t.Fatal("empty blind spot should be zero")
	}
}

func TestCompareCounts(t *testing.T) {
	tally := map[fault.Resource]injector.Tally{
		fault.L2Cache:   {SDC: 10, Crash: 1},
		fault.Scheduler: {SDC: 5, Crash: 4, Hang: 2},
	}
	b := Compare(tally)
	if b.BeamSDCs != 15 || b.BeamDUEs != 7 {
		t.Fatalf("totals wrong: %+v", b)
	}
	if b.InaccessibleSDCs != 5 || b.InaccessibleDUEs != 6 {
		t.Fatalf("inaccessible counts wrong: %+v", b)
	}
}
