// Package swinject implements an AVF/PVF-style *software* fault injector
// of the kind the paper contrasts with beam testing (§IV-D): tools like
// GPU-Qin or SASSIFI flip bits in architecturally visible state (registers
// and memory words) but "provide the user with access to only a limited
// set of GPU resources ... hardware schedulers and dispatchers as well as
// the PCIe controller are among the inaccessible resources."
//
// Running the same workload under this injector and under the beam model
// quantifies that blind spot: the injector reproduces the data-corruption
// criticality (AVF) but sees none of the scheduler/dispatcher/control
// failure modes that dominate crash rates and block-granularity SDCs.
package swinject

import (
	"radcrit/internal/arch"
	"radcrit/internal/fault"
	"radcrit/internal/floatbits"
	"radcrit/internal/injector"
	"radcrit/internal/kernels"
	"radcrit/internal/metrics"
	"radcrit/internal/xrand"
)

// AccessibleResources lists the state a software injector can reach:
// architecturally visible storage only.
var AccessibleResources = []fault.Resource{
	fault.RegisterFile,
	fault.SharedMemory,
	fault.L1Cache,
	fault.L2Cache,
}

// Accessible reports whether a software injector can target r.
func Accessible(r fault.Resource) bool {
	for _, a := range AccessibleResources {
		if a == r {
			return true
		}
	}
	return false
}

// Campaign is the outcome of a software fault-injection campaign.
type Campaign struct {
	Injections int
	// Masked counts injections with no visible output effect.
	Masked int
	// SDCs holds the mismatch reports of corrupting runs.
	SDCs []*metrics.Report
	// AVF is the architectural vulnerability factor estimate: the
	// probability that a bit flip in accessible state corrupts the
	// output [26].
	AVF float64
}

// Run performs n single-bit injections into architecturally accessible
// state of kern on dev. Unlike the beam path, no outcome-class model is
// involved: the injector writes a flipped word and observes the output —
// exactly what a debugger-based tool does. Crashes and hangs caused by
// control-logic corruption never appear because those resources cannot be
// reached.
func Run(dev arch.Device, kern kernels.Kernel, n int, seed uint64) Campaign {
	rng := xrand.New(seed).SplitString("swinject").SplitString(dev.ShortName())
	c := Campaign{Injections: n}
	for i := 0; i < n; i++ {
		sub := rng.Split(uint64(i) + 1)
		r := AccessibleResources[sub.Intn(len(AccessibleResources))]
		inj := arch.Injection{
			Resource: r,
			Scope:    scopeFor(r),
			When:     sub.Float64(),
			Words:    1, // single-word, single-bit: the injector's granularity
			Lines:    1,
			Tasks:    1,
			Flip:     fault.FlipSpec{Field: floatbits.AnyField, Bits: 1},
		}
		// Software injectors cannot emulate multi-line residency
		// effects; they poke exactly one architecturally visible word.
		rep := kern.RunInjected(dev, inj, sub)
		if rep.Count() == 0 {
			c.Masked++
			continue
		}
		c.SDCs = append(c.SDCs, rep)
	}
	if n > 0 {
		c.AVF = float64(len(c.SDCs)) / float64(n)
	}
	return c
}

func scopeFor(r fault.Resource) arch.Scope {
	switch r {
	case fault.RegisterFile:
		return arch.ScopeOutputWord
	case fault.SharedMemory:
		return arch.ScopeSharedTile
	default:
		return arch.ScopeCacheLine
	}
}

// BlindSpot compares a software-injection campaign with a beam campaign's
// per-resource attribution and reports what the injector cannot see.
type BlindSpot struct {
	// BeamSDCs and BeamDUEs are total beam-observed event counts.
	BeamSDCs, BeamDUEs int
	// InaccessibleSDCs / InaccessibleDUEs happened in resources a
	// software injector cannot reach.
	InaccessibleSDCs, InaccessibleDUEs int
}

// SDCBlindFraction is the share of beam SDCs invisible to the injector.
func (b BlindSpot) SDCBlindFraction() float64 {
	if b.BeamSDCs == 0 {
		return 0
	}
	return float64(b.InaccessibleSDCs) / float64(b.BeamSDCs)
}

// DUEBlindFraction is the share of beam crashes/hangs invisible to it.
func (b BlindSpot) DUEBlindFraction() float64 {
	if b.BeamDUEs == 0 {
		return 0
	}
	return float64(b.InaccessibleDUEs) / float64(b.BeamDUEs)
}

// Compare computes the injector's blind spot from a beam campaign's
// per-resource tallies (campaign.Result.ResourceTally).
func Compare(resourceTally map[fault.Resource]injector.Tally) BlindSpot {
	var b BlindSpot
	for r, t := range resourceTally {
		b.BeamSDCs += t.SDC
		b.BeamDUEs += t.Crash + t.Hang
		if !Accessible(r) {
			b.InaccessibleSDCs += t.SDC
			b.InaccessibleDUEs += t.Crash + t.Hang
		}
	}
	return b
}
