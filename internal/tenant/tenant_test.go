package tenant

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDefaultAlwaysPresent(t *testing.T) {
	r := NewRegistry()
	d, ok := r.Get(Default)
	if !ok {
		t.Fatal("default tenant missing from a fresh registry")
	}
	if d.EffectiveWeight() != 1 || d.Token != "" {
		t.Fatalf("default tenant = %+v, want weight 1, no token", d)
	}
	if r.Weight("never-registered") != 1 {
		t.Errorf("unknown tenant weight = %d, want 1", r.Weight("never-registered"))
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	alpha := Tenant{Name: "alpha", Weight: 3, Token: "tok-alpha",
		Quotas: Quotas{MaxQueuedJobs: 10, MaxPlannedStrikes: 5000}}
	beta := Tenant{Name: "beta", Weight: 1}
	for _, tn := range []Tenant{alpha, beta} {
		if err := r.Upsert(tn); err != nil {
			t.Fatal(err)
		}
	}

	r2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := r2.Get("alpha")
	if !ok || got != alpha {
		t.Fatalf("reloaded alpha = %+v ok=%v, want %+v", got, ok, alpha)
	}
	if byTok, ok := r2.ResolveToken("tok-alpha"); !ok || byTok.Name != "alpha" {
		t.Fatalf("ResolveToken = %+v ok=%v", byTok, ok)
	}
	if _, ok := r2.ResolveToken("wrong"); ok {
		t.Error("unknown token resolved")
	}
	if _, ok := r2.ResolveToken(""); ok {
		t.Error("empty token resolved")
	}
	if all := r2.All(); len(all) != 3 { // alpha, beta, default
		t.Fatalf("All() = %d tenants, want 3", len(all))
	}
	if r2.Weight("alpha") != 3 || r2.Weight("beta") != 1 {
		t.Errorf("weights alpha=%d beta=%d", r2.Weight("alpha"), r2.Weight("beta"))
	}
}

func TestValidation(t *testing.T) {
	r := NewRegistry()
	bad := []Tenant{
		{Name: ""},
		{Name: "Has-Upper"},
		{Name: "spaces no"},
		{Name: "x", Weight: -1},
		{Name: "x", Quotas: Quotas{MaxQueuedJobs: -2}},
	}
	for _, tn := range bad {
		if err := r.Upsert(tn); err == nil {
			t.Errorf("Upsert(%+v) accepted, want error", tn)
		}
	}
	if err := r.Upsert(Tenant{Name: "a", Token: "shared"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Upsert(Tenant{Name: "b", Token: "shared"}); err == nil {
		t.Error("token collision accepted")
	}
	// Re-registering the same tenant with a new token frees the old one.
	if err := r.Upsert(Tenant{Name: "a", Token: "fresh"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.ResolveToken("shared"); ok {
		t.Error("replaced token still resolves")
	}
	if tn, ok := r.ResolveToken("fresh"); !ok || tn.Name != "a" {
		t.Errorf("new token resolves to %+v ok=%v", tn, ok)
	}
}

func TestLoadRejectsBadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(`{"tenants":[{"name":"BAD NAME"}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted an invalid tenant name")
	}
	if err := os.WriteFile(path, []byte(`not json`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted malformed JSON")
	}
}

// TestReloadSwapsAtomically: editing tenants.json and calling Reload
// swaps weights, tokens and rate limits in one step; a broken file
// leaves the old table untouched; a deleted file resets to default-only.
func TestReloadSwapsAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Upsert(Tenant{Name: "alpha", Weight: 3, Token: "tok-a"}); err != nil {
		t.Fatal(err)
	}

	// Hand-edit the file the way an operator would: alpha re-weighted and
	// re-keyed, beta added with a rate limit, then SIGHUP-style Reload.
	next := `{"tenants":[
	  {"name":"alpha","weight":5,"token":"tok-a2"},
	  {"name":"beta","weight":1,"rate_limit":{"rps":2,"burst":4}}
	]}`
	if err := os.WriteFile(path, []byte(next), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	if w := r.Weight("alpha"); w != 5 {
		t.Errorf("alpha weight = %d, want 5", w)
	}
	if _, ok := r.ResolveToken("tok-a"); ok {
		t.Error("stale token still resolves after reload")
	}
	if tn, ok := r.ResolveToken("tok-a2"); !ok || tn.Name != "alpha" {
		t.Errorf("new token resolves to %v/%v, want alpha", tn.Name, ok)
	}
	if tn, ok := r.Get("beta"); !ok || tn.Rate.RPS != 2 || tn.Rate.EffectiveBurst() != 4 {
		t.Errorf("beta rate = %+v/%v, want rps 2 burst 4", tn.Rate, ok)
	}

	// A torn write must not take down the live table.
	if err := os.WriteFile(path, []byte(`{"tenants":[{"name":"UPPER"}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := r.Reload(); err == nil {
		t.Fatal("reload of an invalid file did not error")
	}
	if w := r.Weight("alpha"); w != 5 {
		t.Errorf("failed reload disturbed the table: alpha weight = %d, want 5", w)
	}

	// Deleted file: back to the default tenant alone.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("alpha"); ok {
		t.Error("removed tenant survived reload of a deleted file")
	}
	if w := r.Weight("alpha"); w != 1 {
		t.Errorf("removed tenant weight = %d, want fallback 1", w)
	}
}

func TestEffectiveBurst(t *testing.T) {
	cases := []struct {
		rl   RateLimit
		want int
	}{
		{RateLimit{}, 1},
		{RateLimit{RPS: 0.5}, 1},
		{RateLimit{RPS: 2.5}, 3},
		{RateLimit{RPS: 10, Burst: 2}, 2},
	}
	for _, c := range cases {
		if got := c.rl.EffectiveBurst(); got != c.want {
			t.Errorf("EffectiveBurst(%+v) = %d, want %d", c.rl, got, c.want)
		}
	}
}
