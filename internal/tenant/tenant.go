// Package tenant is radcritd's multi-tenancy layer: a registry of named
// tenants — each with a scheduling weight, optional bearer token, and
// admission quotas — persisted as a plain tenants.json under the daemon's
// state directory. The service layer consults it on every submission
// (quota admission control), the scheduler uses its weights for
// weighted-fair queueing, and the API middleware resolves every request's
// token or X-Radcrit-Tenant header into a tenant name.
//
// The default tenant ("default") always exists: it has weight 1, no
// token, and unlimited quotas, so a single-tenant daemon — every client
// predating this package — behaves exactly as before.
package tenant

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Default is the tenant every unauthenticated, unlabelled request
// resolves to — the compatibility tenant.
const Default = "default"

// Quotas bounds a tenant's admission. Zero means unlimited; the checks
// run at submission time, so a quota breach answers the submit (429 at
// the API layer) instead of wedging queued work.
type Quotas struct {
	// MaxQueuedJobs bounds how many of the tenant's jobs may wait in the
	// scheduler at once.
	MaxQueuedJobs int `json:"max_queued_jobs,omitempty"`
	// MaxInflightCells bounds the tenant's unfinished cells across queued
	// and running jobs.
	MaxInflightCells int `json:"max_inflight_cells,omitempty"`
	// MaxPlannedStrikes bounds the tenant's total outstanding strike
	// budget (per-cell strikes × cells, summed over queued and running
	// jobs) — the cost-shaped quota: one huge plan spends it as fast as a
	// thousand small ones.
	MaxPlannedStrikes int `json:"max_planned_strikes,omitempty"`
}

// RateLimit is a tenant's API-level token-bucket rate limit — requests
// per second with a burst allowance, enforced by the API middleware
// before any handler runs (the queue quotas in Quotas bound admitted
// work; this bounds the request stream itself). Zero RPS means
// unlimited.
type RateLimit struct {
	// RPS is the sustained request rate (tokens refilled per second).
	RPS float64 `json:"rps,omitempty"`
	// Burst is the bucket capacity (default: ceil(RPS), minimum 1) — how
	// many requests may arrive back to back before the limiter bites.
	Burst int `json:"burst,omitempty"`
}

// EffectiveBurst normalises the bucket capacity.
func (rl RateLimit) EffectiveBurst() int {
	if rl.Burst > 0 {
		return rl.Burst
	}
	if b := int(rl.RPS + 0.999999); b > 0 {
		return b
	}
	return 1
}

// Tenant is one namespace's registration.
type Tenant struct {
	// Name identifies the tenant; lowercase [a-z0-9-], 1..64 bytes.
	Name string `json:"name"`
	// Weight is the tenant's weighted-fair scheduling share (>= 1;
	// 0 normalises to 1). A weight-3 tenant receives 3x the executor
	// time of a weight-1 tenant under saturation.
	Weight int `json:"weight,omitempty"`
	// Token, when set, is the bearer token that authenticates as this
	// tenant. Empty means the tenant is addressable by the
	// X-Radcrit-Tenant header alone (trusted-network mode).
	Token string `json:"token,omitempty"`
	// Quotas are the tenant's admission bounds.
	Quotas Quotas `json:"quotas,omitempty"`
	// Rate is the tenant's API request rate limit (zero: unlimited).
	Rate RateLimit `json:"rate_limit,omitempty"`
}

// EffectiveWeight normalises the scheduling weight (>= 1).
func (t Tenant) EffectiveWeight() int {
	if t.Weight < 1 {
		return 1
	}
	return t.Weight
}

// validName reports whether name is a plausible tenant identifier. The
// alphabet is deliberately tight: names appear in store key prefixes,
// HTTP headers and file paths.
func validName(name string) bool {
	if len(name) == 0 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return true
}

// Validate checks one tenant registration.
func (t Tenant) Validate() error {
	if !validName(t.Name) {
		return fmt.Errorf("tenant: invalid name %q (want lowercase [a-z0-9-], 1..64 bytes)", t.Name)
	}
	if t.Weight < 0 {
		return fmt.Errorf("tenant %q: negative weight %d", t.Name, t.Weight)
	}
	q := t.Quotas
	if q.MaxQueuedJobs < 0 || q.MaxInflightCells < 0 || q.MaxPlannedStrikes < 0 {
		return fmt.Errorf("tenant %q: negative quota", t.Name)
	}
	if t.Rate.RPS < 0 || t.Rate.Burst < 0 {
		return fmt.Errorf("tenant %q: negative rate limit", t.Name)
	}
	return nil
}

// Registry holds the tenant table, optionally persisted to a JSON file.
// Safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	path    string // empty: in-memory only
	tenants map[string]Tenant
	byToken map[string]string
}

// NewRegistry builds an in-memory registry holding only the default
// tenant.
func NewRegistry() *Registry {
	r := &Registry{
		tenants: map[string]Tenant{},
		byToken: map[string]string{},
	}
	r.tenants[Default] = Tenant{Name: Default, Weight: 1}
	return r
}

// fileRecord is tenants.json: a versioned list, human-editable.
type fileRecord struct {
	Tenants []Tenant `json:"tenants"`
}

// Load opens (or initialises) a registry persisted at path. A missing
// file yields a registry with only the default tenant; Upsert writes the
// file. The default tenant is always present even if the file omits it.
func Load(path string) (*Registry, error) {
	r := NewRegistry()
	r.path = path
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return r, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	var rec fileRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("tenant: %s: %w", path, err)
	}
	for _, t := range rec.Tenants {
		if err := r.insertLocked(t); err != nil {
			return nil, fmt.Errorf("tenant: %s: %w", path, err)
		}
	}
	return r, nil
}

// insertLocked validates and installs one tenant (caller holds no lock
// during Load; Upsert takes it).
func (r *Registry) insertLocked(t Tenant) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if t.Token != "" {
		if owner, taken := r.byToken[t.Token]; taken && owner != t.Name {
			return fmt.Errorf("token of tenant %q collides with tenant %q", t.Name, owner)
		}
	}
	if old, ok := r.tenants[t.Name]; ok && old.Token != "" && old.Token != t.Token {
		delete(r.byToken, old.Token)
	}
	r.tenants[t.Name] = t
	if t.Token != "" {
		r.byToken[t.Token] = t.Name
	}
	return nil
}

// Upsert installs (or replaces) a tenant registration and persists the
// registry when it is file-backed.
func (r *Registry) Upsert(t Tenant) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.insertLocked(t); err != nil {
		return err
	}
	return r.saveLocked()
}

// saveLocked writes tenants.json atomically (no-op for in-memory
// registries). The default tenant is written only when customised, so a
// pristine registry round-trips to an empty file.
func (r *Registry) saveLocked() error {
	if r.path == "" {
		return nil
	}
	var rec fileRecord
	for _, t := range r.allLocked() {
		if t.Name == Default && t.Weight <= 1 && t.Token == "" && t.Quotas == (Quotas{}) && t.Rate == (RateLimit{}) {
			continue
		}
		rec.Tenants = append(rec.Tenants, t)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	data = append(data, '\n')
	if err := os.MkdirAll(filepath.Dir(r.path), 0o755); err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	tmp := r.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o600); err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	if err := os.Rename(tmp, r.path); err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	return nil
}

// Reload re-reads the backing file and swaps the tenant table
// atomically: every reader sees either the old table or the new one,
// never a mix, and a parse or validation error leaves the old table
// fully in place. In-memory registries are a no-op. A deleted file
// resets the registry to the default tenant alone — the same state Load
// would produce.
//
// Callers holding references to this *Registry (the service manager,
// the API middleware) observe the new weights, tokens, quotas and rate
// limits on their next lookup; re-weighting jobs already queued is the
// manager's job (sched.Queue.SetWeight), since only it knows which
// tenants still hold backlog.
func (r *Registry) Reload() error {
	if r.path == "" {
		return nil
	}
	fresh, err := Load(r.path)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.tenants = fresh.tenants
	r.byToken = fresh.byToken
	r.mu.Unlock()
	return nil
}

// Get looks a tenant up by name.
func (r *Registry) Get(name string) (Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tenants[name]
	return t, ok
}

// ResolveToken maps a bearer token to its tenant.
func (r *Registry) ResolveToken(token string) (Tenant, bool) {
	if token == "" {
		return Tenant{}, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	name, ok := r.byToken[token]
	if !ok {
		return Tenant{}, false
	}
	return r.tenants[name], true
}

// Weight returns name's effective scheduling weight (1 for unknown
// tenants, so a stale job record never divides by zero).
func (r *Registry) Weight(name string) int {
	t, ok := r.Get(name)
	if !ok {
		return 1
	}
	return t.EffectiveWeight()
}

// All lists the registered tenants, sorted by name.
func (r *Registry) All() []Tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.allLocked()
}

func (r *Registry) allLocked() []Tenant {
	out := make([]Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
