package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testKey(i int) string {
	sum := sha256.Sum256([]byte{byte(i), byte(i >> 8)})
	return hex.EncodeToString(sum[:])
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	if _, ok := s.Get(key); ok {
		t.Fatalf("Get on empty store hit")
	}
	want := []byte(`{"summary": 1}`)
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %v; want %q", got, ok, want)
	}
	// Replacement is atomic and last-write-wins.
	want2 := []byte(`{"summary": 2}`)
	if err := s.Put(key, want2); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(key); !bytes.Equal(got, want2) {
		t.Fatalf("after replace Get = %q, want %q", got, want2)
	}
	if err := s.Delete(key); err != nil {
		t.Fatal(err)
	}
	if s.Has(key) {
		t.Fatalf("Has after Delete")
	}
	if err := s.Delete(key); err != nil {
		t.Fatalf("Delete of absent key: %v", err)
	}
}

func TestKeyValidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"", "short", "UPPERHEX00", "../../../../etc/passwd",
		"zzzzzzzzzzzzzzzz", "abcd/efgh0123456",
	} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a non-digest key", bad)
		}
		if _, ok := s.Get(bad); ok {
			t.Errorf("Get(%q) hit", bad)
		}
	}
}

// TestGCEvictsLRU pins the size-capped eviction order: oldest-recency
// entries go first, a Get refreshes recency, and the store lands at or
// under the cap.
func TestGCEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	const entrySize = 100
	data := bytes.Repeat([]byte("x"), entrySize)
	keys := make([]string, n)
	base := time.Now().Add(-time.Hour)
	for i := range keys {
		keys[i] = testKey(i)
		if err := s.Put(keys[i], data); err != nil {
			t.Fatal(err)
		}
		// Pin distinct mtimes so LRU order is deterministic regardless of
		// filesystem timestamp granularity: key i was last used at base+i.
		p := filepath.Join(dir, keys[i][:2], keys[i])
		at := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(p, at, at); err != nil {
			t.Fatal(err)
		}
	}

	// Touch the two oldest through Get: they become the most recent.
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("miss on keys[0]")
	}
	if _, ok := s.Get(keys[1]); !ok {
		t.Fatal("miss on keys[1]")
	}

	// Cap at half: 5 entries must be evicted, and they must be the five
	// least recently used (2..6 — 0 and 1 were just refreshed).
	evicted, reclaimed, err := s.GC(n * entrySize / 2)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 5 || reclaimed != 5*entrySize {
		t.Fatalf("GC evicted %d entries / %d bytes, want 5 / %d", evicted, reclaimed, 5*entrySize)
	}
	for i, key := range keys {
		wantAlive := i == 0 || i == 1 || i >= 7
		if got := s.Has(key); got != wantAlive {
			t.Errorf("after GC Has(key %d) = %v, want %v", i, got, wantAlive)
		}
	}
	if entries, size, err := s.Stats(); err != nil || entries != 5 || size != 5*entrySize {
		t.Errorf("Stats = %d entries / %d bytes (%v), want 5 / %d", entries, size, err, 5*entrySize)
	}

	// Under the cap: GC is a no-op.
	if evicted, _, err := s.GC(n * entrySize); err != nil || evicted != 0 {
		t.Errorf("GC under cap evicted %d (%v), want 0", evicted, err)
	}
	// Cap <= 0 disables eviction.
	if evicted, _, err := s.GC(0); err != nil || evicted != 0 {
		t.Errorf("GC(0) evicted %d (%v), want 0", evicted, err)
	}
}

// TestConcurrentPutGetGCStress hammers one store from concurrent
// writers, readers, deleters and a GC loop — the full mutation surface
// at once, under -race in CI. The invariants: a Get hit is never torn
// (every value self-describes its key and is verified intact), no
// operation errors, and a final over-cap GC still lands the store at or
// under the cap with Stats agreeing.
func TestConcurrentPutGetGCStress(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const (
		keys    = 16
		iters   = 120
		valSize = 256
	)
	// value builds a self-checking entry: the key it belongs under,
	// then deterministic padding derived from it.
	value := func(key string, w, i int) []byte {
		head := fmt.Sprintf("%s|%d|%d|", key, w, i)
		pad := bytes.Repeat([]byte{'p'}, valSize-len(head))
		return append([]byte(head), pad...)
	}
	checkIntact := func(key string, data []byte) error {
		i := bytes.IndexByte(data, '|')
		if i < 0 || string(data[:i]) != key {
			return fmt.Errorf("entry under %s is torn or misfiled: %q...", key, data[:min(32, len(data))])
		}
		if len(data) != valSize {
			return fmt.Errorf("entry under %s has %d bytes, want %d", key, len(data), valSize)
		}
		return nil
	}

	stop := make(chan struct{})
	errs := make(chan error, 16)
	// Writers and readers over a shared key set.
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < iters; i++ {
				key := testKey((w + i) % keys)
				if err := s.Put(key, value(key, w, i)); err != nil {
					errs <- err
					return
				}
				if data, ok := s.Get(key); ok {
					if err := checkIntact(key, data); err != nil {
						errs <- err
						return
					}
				}
				if i%17 == 0 {
					if err := s.Delete(testKey(i % keys)); err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- nil
		}(w)
	}
	// A GC loop squeezing the store the whole time, alternating a cap
	// that forces eviction with one that exercises the O(1) fast path.
	go func() {
		caps := []int64{keys * valSize / 4, keys * valSize * 4}
		for i := 0; ; i++ {
			select {
			case <-stop:
				errs <- nil
				return
			default:
			}
			if _, _, err := s.GC(caps[i%len(caps)]); err != nil {
				errs <- err
				return
			}
			if _, _, err := s.Stats(); err != nil {
				errs <- err
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}

	// Quiesced: a final tight GC must land under the cap and agree with
	// Stats, proving the running size total survived the storm.
	const cap = 4 * valSize
	if _, _, err := s.GC(cap); err != nil {
		t.Fatal(err)
	}
	entries, size, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if size > cap {
		t.Fatalf("after final GC store holds %d bytes across %d entries, want <= %d", size, entries, cap)
	}
	// Every surviving entry must still read back intact.
	for i := 0; i < keys; i++ {
		key := testKey(i)
		if data, ok := s.Get(key); ok {
			if err := checkIntact(key, data); err != nil {
				t.Error(err)
			}
		}
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 50; i++ {
				key := testKey(i % 10)
				val := []byte(fmt.Sprintf("worker %d iter %d", w, i))
				if err := s.Put(key, val); err != nil {
					done <- err
					return
				}
				if _, ok := s.Get(key); !ok {
					done <- fmt.Errorf("lost %s", key)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
