package store_test

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"radcrit/internal/remotestore"
	"radcrit/internal/store"
)

// backendCases builds one fresh instance of every Backend implementation:
// the disk store, the in-memory store, and the remote client speaking to
// a remotestore.Server over real HTTP (backed by a Mem). Each subtest in
// the conformance suite runs against all three.
func backendCases(t *testing.T) map[string]store.Backend {
	t.Helper()
	disk, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(remotestore.NewServer(store.NewMem()))
	t.Cleanup(srv.Close)
	return map[string]store.Backend{
		"disk":   disk,
		"mem":    store.NewMem(),
		"remote": remotestore.New(srv.URL),
	}
}

func key(i int) string { return fmt.Sprintf("%064x", i) }

func TestBackendConformanceBasics(t *testing.T) {
	for name, b := range backendCases(t) {
		t.Run(name, func(t *testing.T) {
			if _, ok := b.Get(key(1)); ok {
				t.Error("Get on empty store succeeded")
			}
			if b.Has(key(1)) {
				t.Error("Has on empty store reported true")
			}
			if err := b.Put(key(1), []byte("v1")); err != nil {
				t.Fatal(err)
			}
			if got, ok := b.Get(key(1)); !ok || !bytes.Equal(got, []byte("v1")) {
				t.Fatalf("Get = %q ok=%v", got, ok)
			}
			// Overwrite replaces.
			if err := b.Put(key(1), []byte("v2")); err != nil {
				t.Fatal(err)
			}
			if got, _ := b.Get(key(1)); !bytes.Equal(got, []byte("v2")) {
				t.Fatalf("after overwrite Get = %q", got)
			}
			if err := b.Put(key(2), []byte("other")); err != nil {
				t.Fatal(err)
			}
			entries, size, err := b.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if entries != 2 || size != int64(len("v2")+len("other")) {
				t.Fatalf("Stats = %d entries, %d bytes", entries, size)
			}
			if err := b.Delete(key(1)); err != nil {
				t.Fatal(err)
			}
			if b.Has(key(1)) {
				t.Error("deleted key still present")
			}
			if err := b.Delete(key(1)); err != nil {
				t.Errorf("double delete errored: %v", err)
			}
			// Key validation: not hex, too short, path escapes.
			for _, bad := range []string{"UPPERCASE00", "short", "../../../../etc/passwd", "zzzzzzzzzz"} {
				if err := b.Put(bad, []byte("x")); err == nil {
					t.Errorf("Put(%q) accepted", bad)
				}
				if _, ok := b.Get(bad); ok {
					t.Errorf("Get(%q) succeeded", bad)
				}
			}
		})
	}
}

func TestBackendConformanceLRU(t *testing.T) {
	for name, b := range backendCases(t) {
		t.Run(name, func(t *testing.T) {
			val := bytes.Repeat([]byte("x"), 100)
			// Distinct recency: the disk backend's clock is mtime, so space
			// writes out by a few ms.
			for i := 1; i <= 3; i++ {
				if err := b.Put(key(i), val); err != nil {
					t.Fatal(err)
				}
				time.Sleep(5 * time.Millisecond)
			}
			// Refresh entry 1: Get bumps recency, leaving 2 the coldest.
			if _, ok := b.Get(key(1)); !ok {
				t.Fatal("refresh Get missed")
			}
			time.Sleep(5 * time.Millisecond)
			evicted, reclaimed, err := b.GC(250) // room for two entries
			if err != nil {
				t.Fatal(err)
			}
			if evicted != 1 || reclaimed != 100 {
				t.Fatalf("GC evicted %d / %d bytes, want 1 / 100", evicted, reclaimed)
			}
			if b.Has(key(2)) {
				t.Error("coldest entry (2) survived GC")
			}
			if !b.Has(key(1)) || !b.Has(key(3)) {
				t.Error("refreshed (1) or newest (3) entry was evicted")
			}
			// Under-cap GC is a no-op; GC(0) disables eviction.
			if ev, _, _ := b.GC(1 << 20); ev != 0 {
				t.Errorf("under-cap GC evicted %d", ev)
			}
			if ev, _, _ := b.GC(0); ev != 0 {
				t.Errorf("GC(0) evicted %d", ev)
			}
		})
	}
}

// TestBackendConformanceConcurrent hammers each backend from many
// goroutines under -race: concurrent writers on one key must never let a
// reader observe a torn value; concurrent Put/Get/Delete/GC on many keys
// must stay consistent.
func TestBackendConformanceConcurrent(t *testing.T) {
	vA := bytes.Repeat([]byte("aa"), 64)
	vB := bytes.Repeat([]byte("bb"), 64)
	for name, b := range backendCases(t) {
		t.Run(name, func(t *testing.T) {
			if err := b.Put(key(0), vA); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					val := vA
					if w == 1 {
						val = vB
					}
					for i := 0; i < 50; i++ {
						if err := b.Put(key(0), val); err != nil {
							t.Errorf("Put: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					got, ok := b.Get(key(0))
					if !ok {
						continue // concurrent GC may evict it; only tears are bugs
					}
					if !bytes.Equal(got, vA) && !bytes.Equal(got, vB) {
						t.Errorf("torn read: %d bytes %q...", len(got), got[:min(8, len(got))])
						return
					}
				}
			}()
			// Churn on disjoint keys plus concurrent GC.
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 40; i++ {
						k := key(100 + w*100 + i)
						if err := b.Put(k, vA); err != nil {
							t.Errorf("Put: %v", err)
							return
						}
						b.Get(k)
						if i%4 == 0 {
							if _, _, err := b.GC(4096); err != nil {
								t.Errorf("GC: %v", err)
								return
							}
						}
					}
				}(w)
			}
			time.Sleep(20 * time.Millisecond)
			close(stop)
			wg.Wait()
		})
	}
}

func TestTenantPrefix(t *testing.T) {
	if p := store.TenantPrefix(""); p != "" {
		t.Errorf("empty tenant prefix = %q", p)
	}
	if p := store.TenantPrefix("default"); p != "" {
		t.Errorf("default tenant prefix = %q, want unprefixed for compat", p)
	}
	pa, pb := store.TenantPrefix("alpha"), store.TenantPrefix("beta")
	if pa == pb {
		t.Error("distinct tenants share a prefix")
	}
	if len(pa) != 16 {
		t.Errorf("prefix length = %d, want 16", len(pa))
	}
	if pa != store.TenantPrefix("alpha") {
		t.Error("prefix is not deterministic")
	}
	// A prefixed 64-hex cell key must still satisfy every backend's key
	// validation.
	if err := store.ValidKey(pa + key(7)); err != nil {
		t.Errorf("prefixed key rejected: %v", err)
	}
}
