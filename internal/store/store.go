// Package store is a persistent content-addressed result store: values
// are filed under hex digest keys (campaign.CellKey's sha256 of the
// canonical cell description), so identical experiment cells — across
// jobs, clients, processes and daemon restarts — are served from disk
// instead of re-executed. It extends the campaign engine's in-process
// single-flight memo across process lifetimes.
//
// The layout is two-level (root/ab/abcdef...), one file per entry,
// written atomically via a temp file and rename so a crash mid-Put can
// never leave a torn entry for Get to serve. Reads touch the entry's
// mtime, which is what the size-capped GC orders eviction by: least
// recently used first. Everything is plain files — a state directory is
// inspectable with ls and recoverable with rm.
package store

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Store is a directory-backed key-value store with LRU eviction. Safe for
// concurrent use by one process; the atomic-rename Put additionally makes
// readers of other processes safe (they see the old or the new entry,
// never a tear). Multi-process writers are out of scope — the daemon owns
// its state directory.
type Store struct {
	root string
	mu   sync.Mutex
	// size is a running total of entry bytes, established by the first
	// GC's scan and maintained by Put/Delete/GC from then on, so the
	// common GC call (under the cap) is O(1) instead of a directory walk.
	// GC's eviction scan re-derives it, self-healing any drift.
	size      int64
	sizeKnown bool
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's directory.
func (s *Store) Root() string { return s.root }

// path maps a key to its entry file, rejecting anything that is not a
// plausible content digest so no key can escape the root or collide with
// the sharding scheme.
func (s *Store) path(key string) (string, error) {
	if len(key) < 8 || len(key) > 128 {
		return "", fmt.Errorf("store: key %q: length out of range", key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("store: key %q is not lowercase hex", key)
		}
	}
	return filepath.Join(s.root, key[:2], key), nil
}

// Put stores data under key, atomically replacing any previous entry.
func (s *Store) Put(key string, data []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+key+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var replaced int64
	if s.sizeKnown {
		if fi, err := os.Stat(p); err == nil {
			replaced = fi.Size()
		}
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if s.sizeKnown {
		s.size += int64(len(data)) - replaced
	}
	return nil
}

// Get returns the entry stored under key. A hit refreshes the entry's
// recency (mtime), so a hot cell survives GC that evicts cold ones.
func (s *Store) Get(key string) ([]byte, bool) {
	p, err := s.path(key)
	if err != nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	now := time.Now()
	_ = os.Chtimes(p, now, now) // best-effort recency bump
	return data, true
}

// Has reports whether key is present, without refreshing its recency.
func (s *Store) Has(key string) bool {
	p, err := s.path(key)
	if err != nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err = os.Stat(p)
	return err == nil
}

// Delete removes key's entry (a no-op when absent).
func (s *Store) Delete(key string) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var old int64
	if s.sizeKnown {
		if fi, err := os.Stat(p); err == nil {
			old = fi.Size()
		}
	}
	if err := os.Remove(p); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	s.size -= old
	return nil
}

// entry is one on-disk record the GC considers.
type entry struct {
	path  string
	size  int64
	mtime time.Time
}

// scan walks the store, collecting entries and skipping temp files.
func (s *Store) scan() ([]entry, error) {
	var es []entry
	err := filepath.WalkDir(s.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if len(d.Name()) > 0 && d.Name()[0] == '.' {
			return nil // in-flight Put temp file
		}
		fi, err := d.Info()
		if err != nil {
			// The entry raced an eviction or concurrent replace; skip it.
			return nil
		}
		es = append(es, entry{path: p, size: fi.Size(), mtime: fi.ModTime()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return es, nil
}

// Stats returns the entry count and total byte size of the store.
func (s *Store) Stats() (entries int, bytes int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	es, err := s.scan()
	if err != nil {
		return 0, 0, err
	}
	for _, e := range es {
		bytes += e.size
	}
	return len(es), bytes, nil
}

// GC evicts least-recently-used entries until the store's total size is
// at most maxBytes (maxBytes <= 0 disables eviction entirely). Recency is
// the entry mtime: written at Put, refreshed at Get. Ties break on path
// for determinism. Returns the number of entries evicted and the bytes
// reclaimed.
func (s *Store) GC(maxBytes int64) (evicted int, reclaimed int64, err error) {
	if maxBytes <= 0 {
		return 0, 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// O(1) fast path once the running total is established: a GC under
	// the cap — the overwhelmingly common call, e.g. after every cell
	// completion — costs no directory walk.
	if s.sizeKnown && s.size <= maxBytes {
		return 0, 0, nil
	}
	es, err := s.scan()
	if err != nil {
		return 0, 0, err
	}
	var total int64
	for _, e := range es {
		total += e.size
	}
	s.size, s.sizeKnown = total, true // authoritative resync
	if total <= maxBytes {
		return 0, 0, nil
	}
	sort.Slice(es, func(i, j int) bool {
		if !es[i].mtime.Equal(es[j].mtime) {
			return es[i].mtime.Before(es[j].mtime)
		}
		return es[i].path < es[j].path
	})
	for _, e := range es {
		if total <= maxBytes {
			break
		}
		if rmErr := os.Remove(e.path); rmErr != nil {
			if os.IsNotExist(rmErr) {
				continue
			}
			return evicted, reclaimed, fmt.Errorf("store: %w", rmErr)
		}
		total -= e.size
		s.size -= e.size
		reclaimed += e.size
		evicted++
	}
	return evicted, reclaimed, nil
}
