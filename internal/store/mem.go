package store

import (
	"sort"
	"sync"
)

// Mem is an in-memory Backend: the disk Store's semantics without the
// disk. Recency is a logical clock (bumped on Put and Get) instead of
// mtimes, which makes LRU order exact where the disk store's mtime
// granularity could tie. Use it for tests and for ephemeral daemons
// (-store-backend mem) where cross-restart dedup is not wanted.
type Mem struct {
	mu      sync.Mutex
	entries map[string]*memEntry
	clock   uint64
}

type memEntry struct {
	data []byte
	tick uint64
}

// NewMem builds an empty in-memory backend.
func NewMem() *Mem {
	return &Mem{entries: map[string]*memEntry{}}
}

// Put stores a private copy of data under key.
func (m *Mem) Put(key string, data []byte) error {
	if err := ValidKey(key); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clock++
	cp := make([]byte, len(data))
	copy(cp, data)
	m.entries[key] = &memEntry{data: cp, tick: m.clock}
	return nil
}

// Get returns a private copy of the entry and refreshes its recency.
func (m *Mem) Get(key string) ([]byte, bool) {
	if ValidKey(key) != nil {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok {
		return nil, false
	}
	m.clock++
	e.tick = m.clock
	cp := make([]byte, len(e.data))
	copy(cp, e.data)
	return cp, true
}

// Has reports presence without refreshing recency.
func (m *Mem) Has(key string) bool {
	if ValidKey(key) != nil {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.entries[key]
	return ok
}

// Delete removes key's entry (a no-op when absent).
func (m *Mem) Delete(key string) error {
	if err := ValidKey(key); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.entries, key)
	return nil
}

// Stats returns the entry count and total byte size.
func (m *Mem) Stats() (int, int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var bytes int64
	for _, e := range m.entries {
		bytes += int64(len(e.data))
	}
	return len(m.entries), bytes, nil
}

// GC evicts least-recently-used entries until total size is at most
// maxBytes. Ties (impossible under the logical clock, but kept for
// contract symmetry) break on key order.
func (m *Mem) GC(maxBytes int64) (int, int64, error) {
	if maxBytes <= 0 {
		return 0, 0, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	type rec struct {
		key  string
		size int64
		tick uint64
	}
	recs := make([]rec, 0, len(m.entries))
	for k, e := range m.entries {
		sz := int64(len(e.data))
		total += sz
		recs = append(recs, rec{key: k, size: sz, tick: e.tick})
	}
	if total <= maxBytes {
		return 0, 0, nil
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].tick != recs[j].tick {
			return recs[i].tick < recs[j].tick
		}
		return recs[i].key < recs[j].key
	})
	var evicted int
	var reclaimed int64
	for _, r := range recs {
		if total <= maxBytes {
			break
		}
		delete(m.entries, r.key)
		total -= r.size
		reclaimed += r.size
		evicted++
	}
	return evicted, reclaimed, nil
}
