package store

import (
	"sync"
	"time"

	"radcrit/internal/telemetry"
)

// Metrics owns the store's telemetry families — one set per registry,
// shared by however many backends the process wraps (the label
// distinguishes them). Wrap decorates a Backend with hit/miss/byte/GC
// accounting on the operation path and a scrape-time size gauge.
type Metrics struct {
	hits      *telemetry.CounterVec
	misses    *telemetry.CounterVec
	putBytes  *telemetry.CounterVec
	evictions *telemetry.CounterVec
	reclaimed *telemetry.CounterVec
	entries   *telemetry.GaugeVec
	bytes     *telemetry.GaugeVec
}

// NewMetrics registers the store families on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	l := []string{"backend"}
	return &Metrics{
		hits:      reg.CounterVec("radcrit_store_hits_total", "Get calls served from the content-addressed store.", l),
		misses:    reg.CounterVec("radcrit_store_misses_total", "Get calls that found no entry.", l),
		putBytes:  reg.CounterVec("radcrit_store_put_bytes_total", "Bytes written into the store.", l),
		evictions: reg.CounterVec("radcrit_store_evictions_total", "Entries evicted by LRU GC.", l),
		reclaimed: reg.CounterVec("radcrit_store_reclaimed_bytes_total", "Bytes reclaimed by LRU GC.", l),
		entries:   reg.GaugeVec("radcrit_store_entries", "Entries currently resident (sampled; refreshed at most every few seconds).", l),
		bytes:     reg.GaugeVec("radcrit_store_bytes", "Bytes currently resident (sampled; refreshed at most every few seconds).", l),
	}
}

// statsRefresh bounds how often a metered backend re-walks Stats — the
// disk store's Stats is a directory walk, too heavy to run per scrape
// under an aggressive scraper.
const statsRefresh = 5 * time.Second

// Metered decorates a Backend with telemetry. It forwards every call
// unchanged, so the conformance contract (atomic Put, recency-refreshing
// Get, deterministic GC) is untouched.
type Metered struct {
	b Backend

	hits, misses, putBytes, evictions, reclaimed *telemetry.Counter
	entries, bytes                               *telemetry.Gauge

	mu       sync.Mutex
	lastScan time.Time
}

// Wrap decorates b, labeling its series with the backend name
// ("disk", "mem", "remote").
func (m *Metrics) Wrap(b Backend, backend string) *Metered {
	w := &Metered{
		b:         b,
		hits:      m.hits.With(backend),
		misses:    m.misses.With(backend),
		putBytes:  m.putBytes.With(backend),
		evictions: m.evictions.With(backend),
		reclaimed: m.reclaimed.With(backend),
		entries:   m.entries.With(backend),
		bytes:     m.bytes.With(backend),
	}
	w.refreshSize()
	return w
}

// refreshSize re-samples Stats into the size gauges, rate-limited.
func (w *Metered) refreshSize() {
	w.mu.Lock()
	now := time.Now()
	if !w.lastScan.IsZero() && now.Sub(w.lastScan) < statsRefresh {
		w.mu.Unlock()
		return
	}
	w.lastScan = now
	w.mu.Unlock()
	if n, size, err := w.b.Stats(); err == nil {
		w.entries.Set(float64(n))
		w.bytes.Set(float64(size))
	}
}

// Put implements Backend.
func (w *Metered) Put(key string, data []byte) error {
	err := w.b.Put(key, data)
	if err == nil {
		w.putBytes.Add(uint64(len(data)))
		w.refreshSize()
	}
	return err
}

// Get implements Backend.
func (w *Metered) Get(key string) ([]byte, bool) {
	data, ok := w.b.Get(key)
	if ok {
		w.hits.Inc()
	} else {
		w.misses.Inc()
	}
	return data, ok
}

// Has implements Backend.
func (w *Metered) Has(key string) bool { return w.b.Has(key) }

// Delete implements Backend.
func (w *Metered) Delete(key string) error { return w.b.Delete(key) }

// Stats implements Backend.
func (w *Metered) Stats() (int, int64, error) { return w.b.Stats() }

// GC implements Backend.
func (w *Metered) GC(maxBytes int64) (int, int64, error) {
	evicted, reclaimed, err := w.b.GC(maxBytes)
	if err == nil {
		if evicted > 0 {
			w.evictions.Add(uint64(evicted))
			w.reclaimed.Add(uint64(reclaimed))
		}
		w.refreshSize()
	}
	return evicted, reclaimed, err
}

var _ Backend = (*Metered)(nil)
