package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Backend is the content-addressed store contract the service layer runs
// against. The disk Store is the production implementation; Mem backs
// tests and ephemeral daemons; remotestore.Client speaks the same
// contract to an S3-shaped object service. All implementations must:
//
//   - accept only lowercase-hex keys of 8..128 bytes (ValidKey);
//   - make Put atomic: a concurrent Get sees the old value or the new
//     value, never a tear;
//   - refresh an entry's recency on Get, so GC evicts least recently
//     *used*, not least recently written;
//   - evict deterministically on recency ties (key order).
//
// The conformance suite in backend_test.go pins these properties for
// every implementation.
type Backend interface {
	// Put stores data under key, atomically replacing any previous entry.
	Put(key string, data []byte) error
	// Get returns the entry under key and refreshes its recency.
	Get(key string) ([]byte, bool)
	// Has reports presence without refreshing recency.
	Has(key string) bool
	// Delete removes key's entry (a no-op when absent).
	Delete(key string) error
	// Stats returns the entry count and total byte size.
	Stats() (entries int, bytes int64, err error)
	// GC evicts least-recently-used entries until total size is at most
	// maxBytes (<= 0 disables eviction). Returns entries evicted and
	// bytes reclaimed.
	GC(maxBytes int64) (evicted int, reclaimed int64, err error)
}

var _ Backend = (*Store)(nil)
var _ Backend = (*Mem)(nil)

// ValidKey checks that key is a plausible content digest — lowercase
// hex, 8..128 bytes — so no key can escape a disk root or collide with
// the sharding scheme.
func ValidKey(key string) error {
	if len(key) < 8 || len(key) > 128 {
		return fmt.Errorf("store: key %q: length out of range", key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("store: key %q is not lowercase hex", key)
		}
	}
	return nil
}

// TenantPrefix maps a tenant name to the hex fragment prepended to its
// store keys. The default tenant (and the empty name) gets no prefix, so
// every key written by a pre-tenancy daemon stays addressable — existing
// state directories keep their dedup hits. Other tenants get a 16-hex
// digest fragment of the name, which keeps their entries disjoint from
// each other and from the default namespace while staying within
// ValidKey's alphabet and length budget (16 + 64-hex cell key = 80).
func TenantPrefix(tenantName string) string {
	if tenantName == "" || tenantName == "default" {
		return ""
	}
	sum := sha256.Sum256([]byte("tenant:" + tenantName))
	return hex.EncodeToString(sum[:8])
}
