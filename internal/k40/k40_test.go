// Calibration tests: these pin the K40 model to the paper's §V shape
// targets at the analytic (expectation) level. The tolerances are bands,
// not exact values — the goal is that who-wins and how-fast-it-grows match
// the beam measurements.
package k40

import (
	"testing"

	"radcrit/internal/arch"
	"radcrit/internal/kernels/dgemm"
	"radcrit/internal/kernels/lavamd"
)

func TestValidModel(t *testing.T) {
	m := New()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.ShortName() != "K40" {
		t.Fatal("short name")
	}
	if !m.HardwareScheduler {
		t.Fatal("K40 uses a hardware scheduler")
	}
	if !m.ECCRegisterFile {
		t.Fatal("K40 register file is ECC protected")
	}
	if m.SFUAreaAU <= 0 {
		t.Fatal("K40 has a transcendental SFU")
	}
	if m.VectorWidthBits != 0 {
		t.Fatal("K40 has no 512-bit vector unit in this model")
	}
}

func TestInventoryMatchesPaper(t *testing.T) {
	m := New()
	if m.NumCores != 15 || m.HWThreadsPerCore != 2048 {
		t.Fatal("SM inventory wrong (15 SMs x 2048 threads, §IV-A)")
	}
	if m.RegisterFileKB != 3840 {
		t.Fatal("register file should be 30 Mbit = 3840 KB")
	}
	if m.L2KBTotal != 1536 {
		t.Fatal("L2 should be 1536 KB")
	}
	if m.SharedMemKBPerCore+m.L1KBPerCore != 64 {
		t.Fatal("L1+shared should total 64 KB per SM")
	}
}

// §V-A: from the smallest to the largest DGEMM input the K40's SDC FIT
// grows ~7x and the SDC:DUE ratio falls from ~4 toward ~1.1.
func TestDGEMMScalingShape(t *testing.T) {
	dev := New()
	sizes := []int{1024, 2048, 4096}
	var fits, ratios []float64
	for _, n := range sizes {
		p := dgemm.New(n).Profile(dev)
		_, sdc, crash, hang := dev.Model().ExpectedRates(p)
		fits = append(fits, sdc*dev.SensitiveArea(p))
		ratios = append(ratios, sdc/(crash+hang))
	}
	growth := fits[2] / fits[0]
	if growth < 5 || growth > 11 {
		t.Fatalf("DGEMM FIT growth %.2fx outside the paper's ~7x band", growth)
	}
	if ratios[0] < 3 || ratios[0] > 5.5 {
		t.Fatalf("DGEMM small-input SDC:DUE %.2f outside the ~4 band", ratios[0])
	}
	if ratios[2] > 1.6 {
		t.Fatalf("DGEMM large-input SDC:DUE %.2f should approach ~1.1", ratios[2])
	}
	if ratios[2] >= ratios[0] {
		t.Fatal("ratio must fall as input grows (scheduler strain)")
	}
}

// §V-B: LavaMD's local-memory cap keeps FIT growth well below DGEMM's.
func TestLavaMDScalingShape(t *testing.T) {
	dev := New()
	var fits, ratios []float64
	for _, g := range []int{13, 23} {
		p := lavamd.New(g).Profile(dev)
		_, sdc, crash, hang := dev.Model().ExpectedRates(p)
		fits = append(fits, sdc*dev.SensitiveArea(p))
		ratios = append(ratios, sdc/(crash+hang))
	}
	growth := fits[1] / fits[0]
	if growth < 1.2 || growth > 3 {
		t.Fatalf("LavaMD FIT growth %.2fx outside the modest-growth band", growth)
	}
	// "K40 has about 3x more SDCs than crashes and hangs" for LavaMD.
	avg := (ratios[0] + ratios[1]) / 2
	if avg < 1.8 || avg > 4.5 {
		t.Fatalf("LavaMD SDC:DUE average %.2f outside the ~3 band", avg)
	}
}

// §V: "For HotSpot, K40 has 7x more SDCs [than crashes and hangs]".
func TestHotSpotRatioShape(t *testing.T) {
	dev := New()
	p := hotspotPaperProfile(dev)
	_, sdc, crash, hang := dev.Model().ExpectedRates(p)
	ratio := sdc / (crash + hang)
	if ratio < 4.5 || ratio > 10 {
		t.Fatalf("HotSpot SDC:DUE %.2f outside the ~7 band", ratio)
	}
}

// hotspotPaperProfile mirrors the 1024x1024 HotSpot profile without paying
// for the golden simulation.
func hotspotPaperProfile(dev arch.Device) arch.Profile {
	return arch.Profile{
		Kernel:             "HotSpot",
		InputLabel:         "1024x1024",
		OutputDims:         arch.Profile{}.OutputDims, // set below
		Threads:            1024 * 1024,
		Blocks:             (1024 / 32) * (1024 / 32),
		LocalMemPerBlockKB: 4.5,
		CacheFootprintKB:   2 * 1024 * 1024 * 4 / 1024,
		ControlShare:       0.02,
		FPUShare:           0.60,
		MemoryBound:        true,
		DispatchFactor:     0.1,
		IterativeLaunches:  true,
		RelRuntime:         1,
	}
}
