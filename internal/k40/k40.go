// Package k40 provides the behavioural model of the NVIDIA Tesla K40
// (GK110b, Kepler) used in the paper's beam campaigns.
//
// Parameter provenance (paper §IV-A and the GK110 whitepaper):
//
//   - 28 nm TSMC planar bulk technology — baseline (1.0) per-bit neutron
//     sensitivity; planar cells are ~10x more sensitive than Tri-Gate [28].
//   - 15 streaming multiprocessors, up to 2048 resident threads each.
//   - 30 Mbit (3.75 MB) total register file, ECC protected. ECC removes
//     almost all RF upsets, but "data may still sit in internal queues or
//     flip-flops that are not protected" (§V-A), modelled as a small
//     escape probability with full-word flips.
//   - 64 KB configurable L1/shared memory per SM (modelled as 16 KB L1 +
//     48 KB shared), 1536 KB unified L2, 128-byte lines.
//   - Hardware warp scheduler whose state grows with the number of
//     instantiated threads ("scheduler strain", §V-A (1)); already shown
//     to contribute to GPU radiation sensitivity [34].
//   - Dedicated special-function unit (SFU) for transcendentals, which the
//     paper hypothesises is the source of LavaMD's enormous relative
//     errors on the K40 (§V-E).
//
// Datapath strikes use a mantissa-biased flip distribution: the GPU's
// short pipelines stage results briefly, and the paper observes that K40
// arithmetic errors are mostly small (75% of DGEMM SDCs below 10% mean
// relative error, §V-A). Storage strikes flip uniform bits, as SRAM cells
// are position-agnostic.
package k40

import (
	"radcrit/internal/arch"
	"radcrit/internal/fault"
	"radcrit/internal/floatbits"
)

// New returns the K40 device model.
func New() *arch.Model {
	return &arch.Model{
		DeviceName: "NVIDIA Tesla K40 (GK110b)",
		Short:      "K40",
		TechNode:   "28nm planar bulk (TSMC)",

		StorageSensitivity: 1.0,
		LogicSensitivity:   1.0,

		NumCores:           15,
		HWThreadsPerCore:   2048,
		RegisterFileKB:     3840, // 30 Mbit
		SharedMemKBPerCore: 48,
		L1KBPerCore:        16,
		L2KBTotal:          1536,
		CacheLineBytes:     128,
		VectorWidthBits:    0,

		ECCRegisterFile:   true,
		ECCSharedMemory:   true,
		ECCEscapeProb:     0.10,
		HardwareScheduler: true,

		FPUAreaAU:       420,
		SFUAreaAU:       500,
		VectorAreaAU:    0,
		SchedulerAreaAU: 260,
		DispatchAreaAU:  120,
		ControlAreaAU:   150,
		ICacheAreaAU:    90,

		ControlFloor:           0.05,
		L2SharingDegree:        1.6,
		SchedStrainAt64K:       3.0,
		SchedStrainExponent:    1.4,
		RFResidencyPerKWaiting: 0.003,
		CacheOutputBias:        0.25,

		DatapathFlip: arch.FlipDist{
			Specs: []fault.FlipSpec{
				{Field: floatbits.LowMantissa, Bits: 1},
				{Field: floatbits.Mantissa, Bits: 1},
				{Field: floatbits.AnyField, Bits: 1},
			},
			Weights: []float64{0.45, 0.35, 0.20},
		},
		StorageFlip: arch.FlipDist{
			Specs: []fault.FlipSpec{
				{Field: floatbits.AnyField, Bits: 1},
				{Field: floatbits.AnyField, Bits: 2},
			},
			Weights: []float64{0.9, 0.1},
		},
		RFEscapeFlip: arch.FlipDist{
			Specs: []fault.FlipSpec{
				{Field: floatbits.AnyField, Bits: 1},
			},
			Weights: []float64{1},
		},

		FPUScope: arch.ScopeAccumTerm,
	}
}
