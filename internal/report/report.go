// Package report renders campaign data as terminal artifacts: aligned
// tables, ASCII scatter plots (Figures 2/4/6/8), stacked FIT bars
// (Figures 3/5/7) and 2D locality maps (Figure 9). Everything writes to an
// io.Writer so cmd/figures, tests and examples share the renderers.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"radcrit/internal/campaign"
	"radcrit/internal/fit"
)

// Table renders rows with aligned columns.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Scatter renders a Figure-2/4/6/8 style plot: x = incorrect elements,
// y = mean relative error, one glyph per input-size series.
func Scatter(w io.Writer, s campaign.ScatterSeries, width, height int) {
	fmt.Fprintf(w, "%s %s — mean relative error vs. incorrect elements\n", s.Device, s.Kernel)
	if s.CapPct > 0 {
		fmt.Fprintf(w, "(per-element relative errors capped at %.0f%% for display)\n", s.CapPct)
	}

	var maxX float64 = 1
	var maxY float64 = 1
	total := 0
	for _, series := range s.Series {
		for _, p := range series.Points {
			maxX = math.Max(maxX, float64(p.IncorrectElements))
			maxY = math.Max(maxY, p.MeanRelErrPct)
			total++
		}
	}
	if total == 0 {
		fmt.Fprintln(w, "(no SDCs observed)")
		return
	}

	glyphs := []byte{'o', '+', 'x', '*', '#', '@'}
	canvas := make([][]byte, height)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", width))
	}
	for si, series := range s.Series {
		g := glyphs[si%len(glyphs)]
		for _, p := range series.Points {
			cx := int(float64(p.IncorrectElements) / maxX * float64(width-1))
			cy := height - 1 - int(p.MeanRelErrPct/maxY*float64(height-1))
			if cy < 0 {
				cy = 0
			}
			canvas[cy][cx] = g
		}
	}
	for i, row := range canvas {
		label := "        "
		if i == 0 {
			label = fmt.Sprintf("%7.1f ", maxY)
		}
		if i == height-1 {
			label = "    0.0 "
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "        0%s%d elements\n", strings.Repeat(" ", width-len(fmt.Sprint(int(maxX)))-9), int(maxX))
	for si, series := range s.Series {
		fmt.Fprintf(w, "  %c = input %s (%d SDCs)\n", glyphs[si%len(glyphs)], series.Label, len(series.Points))
	}
}

// LocalityBars renders a Figure-3/5/7 style stacked-bar chart: one pair of
// bars (All, >threshold) per input size, stacked by spatial pattern.
func LocalityBars(w io.Writer, f campaign.LocalityFigure, width int) {
	fmt.Fprintf(w, "%s %s — FIT [a.u.] by spatial locality (All vs >%.0f%%)\n",
		f.Device, f.Kernel, f.ThresholdPct)

	var maxTotal float64
	for _, b := range f.Bars {
		maxTotal = math.Max(maxTotal, b.All.Total())
	}
	if maxTotal == 0 {
		fmt.Fprintln(w, "(no SDC FIT observed)")
		return
	}
	norm := fit.NewNormalizer(maxTotal, 100) // largest bar = 100 a.u.

	segGlyph := map[string]byte{
		"cubic": 'C', "square": 'S', "line": 'L', "single": '1', "random": 'R',
	}
	renderBar := func(label string, bd fit.Breakdown) {
		var sb strings.Builder
		for i, v := range bd.Values {
			n := int(norm.Apply(v) / 100 * float64(width))
			g := segGlyph[bd.Labels[i]]
			sb.WriteString(strings.Repeat(string(g), n))
		}
		fmt.Fprintf(w, "  %-18s |%-*s| %6.1f a.u.\n", label, width, sb.String(), norm.Apply(bd.Total()))
	}
	for _, b := range f.Bars {
		renderBar(b.Input+" All", b.All)
		if b.FilterMeaningful {
			renderBar(fmt.Sprintf("%s >%.0f%%", b.Input, f.ThresholdPct), b.Filtered)
		} else {
			fmt.Fprintf(w, "  %-18s (no mismatch below the filter: bar identical to All)\n",
				fmt.Sprintf("%s >%.0f%%", b.Input, f.ThresholdPct))
		}
	}
	fmt.Fprintln(w, "  legend: C cubic, S square, L line, 1 single, R random")
}

// LocalityMap renders Figure 9: the 2D positions of corrupted elements.
func LocalityMap(w io.Writer, m campaign.LocalityMap, cols int) {
	fmt.Fprintf(w, "CLAMR error locality map (%d incorrect elements of %dx%d output)\n",
		m.Count, m.Width, m.Height)
	if m.Count == 0 {
		fmt.Fprintln(w, "(no SDC found)")
		return
	}
	if cols > m.Width {
		cols = m.Width // cannot render finer than the data
	}
	rows := cols * m.Height / m.Width
	if rows < 1 {
		rows = 1
	}
	for ry := 0; ry < rows; ry++ {
		var sb strings.Builder
		for rx := 0; rx < cols; rx++ {
			x0, x1 := rx*m.Width/cols, (rx+1)*m.Width/cols
			y0, y1 := ry*m.Height/rows, (ry+1)*m.Height/rows
			marked := false
			for y := y0; y < y1 && !marked; y++ {
				for x := x0; x < x1; x++ {
					if m.Marked[y][x] {
						marked = true
						break
					}
				}
			}
			if marked {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		fmt.Fprintf(w, "  %s\n", sb.String())
	}
}

// Ratios renders the §V preamble SDC:DUE table.
func Ratios(w io.Writer, rows []campaign.RatioRow) {
	t := &Table{Header: []string{"device", "kernel", "input", "SDC", "crash+hang", "SDC:DUE"}}
	for _, r := range rows {
		t.Add(r.Device, r.Kernel, r.Input, fmt.Sprint(r.SDC), fmt.Sprint(r.DUE),
			fmt.Sprintf("%.2f", r.Ratio))
	}
	t.Render(w)
}

// Scaling renders the input-size FIT growth table (§V-A).
func Scaling(w io.Writer, rows []campaign.ScalingRow) {
	t := &Table{Header: []string{"device", "input", "FIT all [a.u.]", "FIT >2% [a.u.]", "growth all", "growth >2%"}}
	var norm *fit.Normalizer
	for _, r := range rows {
		if norm == nil {
			norm = fit.NewNormalizer(r.FITAll, 1)
		}
		t.Add(r.Device, r.Input,
			fmt.Sprintf("%.2f", norm.Apply(r.FITAll)),
			fmt.Sprintf("%.2f", norm.Apply(r.FITFiltered)),
			fmt.Sprintf("%.2fx", r.GrowthAll),
			fmt.Sprintf("%.2fx", r.GrowthFilter))
	}
	t.Render(w)
}

// ABFT renders the ABFT coverage table (§V-A).
func ABFT(w io.Writer, rows []campaign.ABFTRow) {
	t := &Table{Header: []string{"device", "input", "ABFT-correctable", "residual (square+random)"}}
	for _, r := range rows {
		t.Add(r.Device, r.Input,
			fmt.Sprintf("%.0f%%", 100*r.CorrectableFraction),
			fmt.Sprintf("%.0f%%", 100*r.ResidualFraction))
	}
	t.Render(w)
}

// MassCheck renders the CLAMR detector coverage (§V-D).
func MassCheck(w io.Writer, r campaign.MassCheckRow) {
	fmt.Fprintf(w, "CLAMR mass-conservation check on %s: %d/%d critical SDCs detected (%.0f%% coverage; paper reports 82%%)\n",
		r.Device, r.Detected, r.CriticalSDCs, 100*r.Coverage)
}
