package report

import (
	"strings"
	"testing"

	"radcrit/internal/campaign"
	"radcrit/internal/fit"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{Header: []string{"a", "longheader"}}
	tb.Add("xxxx", "y")
	tb.Add("z", "w")
	var sb strings.Builder
	tb.Render(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatal("separator missing")
	}
}

func TestScatterRendering(t *testing.T) {
	s := campaign.ScatterSeries{
		Device: "K40", Kernel: "DGEMM", CapPct: 100,
		Series: []campaign.LabeledPoints{
			{Label: "1024x1024", Points: []campaign.ScatterPoint{
				{IncorrectElements: 10, MeanRelErrPct: 5},
				{IncorrectElements: 500, MeanRelErrPct: 80},
			}},
		},
	}
	var sb strings.Builder
	Scatter(&sb, s, 40, 10)
	out := sb.String()
	for _, want := range []string{"K40 DGEMM", "capped at 100%", "o = input 1024x1024 (2 SDCs)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scatter missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "o") {
		t.Fatal("no glyphs plotted")
	}
}

func TestScatterEmpty(t *testing.T) {
	var sb strings.Builder
	Scatter(&sb, campaign.ScatterSeries{Device: "X", Kernel: "Y"}, 40, 10)
	if !strings.Contains(sb.String(), "no SDCs") {
		t.Fatal("empty scatter should say so")
	}
}

func TestLocalityBarsRendering(t *testing.T) {
	f := campaign.LocalityFigure{
		Device: "K40", Kernel: "DGEMM", ThresholdPct: 2,
		Bars: []campaign.LocalityBar{
			{
				Input: "1024x1024",
				All: fit.Breakdown{
					Labels: []string{"cubic", "square", "line", "single", "random"},
					Values: []float64{0, 30, 40, 20, 10},
				},
				Filtered: fit.Breakdown{
					Labels: []string{"cubic", "square", "line", "single", "random"},
					Values: []float64{0, 25, 10, 5, 0},
				},
				FilterMeaningful: true,
			},
		},
	}
	var sb strings.Builder
	LocalityBars(&sb, f, 50)
	out := sb.String()
	for _, want := range []string{"1024x1024 All", "1024x1024 >2%", "legend", "S", "L"} {
		if !strings.Contains(out, want) {
			t.Fatalf("bars missing %q:\n%s", want, out)
		}
	}
}

func TestLocalityBarsNoFilterCase(t *testing.T) {
	f := campaign.LocalityFigure{
		Device: "XeonPhi", Kernel: "DGEMM", ThresholdPct: 2,
		Bars: []campaign.LocalityBar{{
			Input: "8192x8192",
			All: fit.Breakdown{
				Labels: []string{"cubic", "square", "line", "single", "random"},
				Values: []float64{0, 5, 3, 1, 1},
			},
			Filtered: fit.Breakdown{
				Labels: []string{"cubic", "square", "line", "single", "random"},
				Values: []float64{0, 5, 3, 1, 1},
			},
			FilterMeaningful: false,
		}},
	}
	var sb strings.Builder
	LocalityBars(&sb, f, 50)
	if !strings.Contains(sb.String(), "identical to All") {
		t.Fatal("no-filter case not annotated (the paper shows only the All bar)")
	}
}

func TestLocalityMapRendering(t *testing.T) {
	m := campaign.LocalityMap{Width: 8, Height: 8, Count: 3}
	m.Marked = make([][]bool, 8)
	for i := range m.Marked {
		m.Marked[i] = make([]bool, 8)
	}
	m.Marked[2][3] = true
	m.Marked[2][4] = true
	m.Marked[3][3] = true
	var sb strings.Builder
	LocalityMap(&sb, m, 8)
	out := sb.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, ".") {
		t.Fatalf("map glyphs missing:\n%s", out)
	}
}

func TestLocalityMapClampsColumns(t *testing.T) {
	// Rendering finer than the data (cols > width) must not drop marks
	// into empty sample ranges.
	m := campaign.LocalityMap{Width: 8, Height: 8, Count: 64}
	m.Marked = make([][]bool, 8)
	for y := range m.Marked {
		m.Marked[y] = make([]bool, 8)
		for x := range m.Marked[y] {
			m.Marked[y][x] = true
		}
	}
	var sb strings.Builder
	LocalityMap(&sb, m, 64)
	if strings.Contains(sb.String(), ".") {
		t.Fatalf("fully marked map rendered gaps:\n%s", sb.String())
	}
}

func TestRatiosAndScalingTables(t *testing.T) {
	var sb strings.Builder
	Ratios(&sb, []campaign.RatioRow{
		{Device: "K40", Kernel: "DGEMM", Input: "1024x1024", SDC: 40, DUE: 10, Ratio: 4},
	})
	if !strings.Contains(sb.String(), "4.00") {
		t.Fatal("ratio table wrong")
	}
	sb.Reset()
	Scaling(&sb, []campaign.ScalingRow{
		{Device: "K40", Input: "1024x1024", FITAll: 10, FITFiltered: 5, GrowthAll: 1, GrowthFilter: 1},
		{Device: "K40", Input: "4096x4096", FITAll: 70, FITFiltered: 25, GrowthAll: 7, GrowthFilter: 5},
	})
	if !strings.Contains(sb.String(), "7.00x") {
		t.Fatal("scaling table wrong")
	}
}

func TestABFTAndMassCheck(t *testing.T) {
	var sb strings.Builder
	ABFT(&sb, []campaign.ABFTRow{{Device: "K40", Input: "1024x1024", CorrectableFraction: 0.7, ResidualFraction: 0.3}})
	if !strings.Contains(sb.String(), "70%") {
		t.Fatal("ABFT table wrong")
	}
	sb.Reset()
	MassCheck(&sb, campaign.MassCheckRow{Device: "XeonPhi", CriticalSDCs: 100, Detected: 82, Coverage: 0.82})
	if !strings.Contains(sb.String(), "82%") {
		t.Fatal("mass check line wrong")
	}
}
