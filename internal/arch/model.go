package arch

import (
	"fmt"
	"math"

	"radcrit/internal/fault"
	"radcrit/internal/xrand"
)

// FlipDist is a weighted distribution over bit-flip specifications. Devices
// use different distributions for datapath and storage strikes: a strike
// surviving ECC scrubbing tends to sit in narrow pipeline latches (mantissa
// end of an FMA), while an unprotected SRAM word flips uniformly.
type FlipDist struct {
	Specs   []fault.FlipSpec
	Weights []float64
}

// Sample draws one flip specification. It panics on an empty distribution —
// a misconfigured device model should fail loudly at first use.
func (d FlipDist) Sample(rng *xrand.RNG) fault.FlipSpec {
	if len(d.Specs) == 0 || len(d.Specs) != len(d.Weights) {
		panic("arch: FlipDist misconfigured")
	}
	return d.Specs[rng.WeightedChoice(d.Weights)]
}

// Model is a parameterised behavioural accelerator. Both device packages
// (internal/k40, internal/phi) construct one of these; the parameters are
// the documented calibration surface of the reproduction.
type Model struct {
	DeviceName string // full marketing name
	Short      string // figure label
	TechNode   string // "28nm planar", "22nm Tri-Gate"

	// StorageSensitivity is the relative per-KB neutron cross-section of
	// SRAM arrays; LogicSensitivity the per-area-unit cross-section of
	// combinational/sequential logic. FinFET/Tri-Gate devices show ~10x
	// lower per-bit sensitivity than planar ones (paper §IV-A, [28]).
	StorageSensitivity float64
	LogicSensitivity   float64

	// Inventory.
	NumCores           int     // SMs (K40) or physical cores (Phi)
	HWThreadsPerCore   int     // resident thread contexts per core
	RegisterFileKB     float64 // total architectural register file
	SharedMemKBPerCore float64 // GPU shared/local memory (0 on Phi)
	L1KBPerCore        float64
	L2KBTotal          float64
	CacheLineBytes     int
	VectorWidthBits    int // 512 on Phi, 0 on K40

	// Protection and scheduling philosophy.
	ECCRegisterFile   bool
	ECCSharedMemory   bool    // Kepler protects shared memory/L1 with ECC
	ECCEscapeProb     float64 // SDC probability given a struck, ECC'd word
	HardwareScheduler bool    // true: NVIDIA-style HW warp scheduler

	// Relative logic areas (arbitrary units).
	FPUAreaAU       float64
	SFUAreaAU       float64 // transcendental unit (0 on Phi)
	VectorAreaAU    float64 // SIMD datapath (0 on K40)
	SchedulerAreaAU float64
	DispatchAreaAU  float64
	ControlAreaAU   float64
	ICacheAreaAU    float64

	// ControlFloor is the minimum effective control-share: control and
	// dispatch structures that are busy regardless of the kernel's own
	// control intensity. Near zero for a GPU; substantial for the Xeon
	// Phi, whose embedded Linux (MPSS) services run continuously beside
	// the workload and keep OS control state strikeable on-chip.
	ControlFloor float64

	// L2SharingDegree scales how many distinct consumers read a corrupted
	// L2 line before eviction. The Phi's large coherent L2 keeps corrupted
	// data alive much longer (paper §V-E), spreading single strikes over
	// many output elements.
	L2SharingDegree float64

	// SchedStrainAt64K is the scheduler-strain multiplier minus one at a
	// reference 64K instantiated threads; strain grows as
	// (threads/64K)^SchedStrainExponent. Near zero for an OS-software
	// scheduler whose working state lives in (un-irradiated) DRAM.
	SchedStrainAt64K float64
	// SchedStrainExponent is the superlinearity of strain growth: queue
	// and bookkeeping structures grow faster than linearly with the
	// managed thread count.
	SchedStrainExponent float64
	// RFResidencyPerKWaiting scales register-file exposure with the number
	// of threads waiting to be dispatched; the K40 keeps waiting threads'
	// data in registers, the Phi leaves it in DRAM (paper §V-A (2)).
	RFResidencyPerKWaiting float64

	// Flip-field distributions.
	DatapathFlip FlipDist // FPU/SFU/vector results
	StorageFlip  FlipDist // SRAM words
	RFEscapeFlip FlipDist // ECC-escaping queue/latch words

	// FPUScope is the injection scope of FPU datapath strikes:
	// ScopeAccumTerm on short GPU pipelines (error diluted inside one
	// reduction), ScopeOutputWord on the Phi's longer in-order pipeline.
	FPUScope Scope

	// CacheOutputBias is the probability that a corrupted cache line holds
	// output-side data. On the K40, hot cached data are the shared-memory
	// input tiles (C is written through); on the Phi, each core's private
	// L2 keeps its block of the result resident.
	CacheOutputBias float64
}

var _ Device = (*Model)(nil)

// Name returns the device's full name.
func (m *Model) Name() string { return m.DeviceName }

// ShortName returns the figure label.
func (m *Model) ShortName() string { return m.Short }

// Model returns m itself (Device interface accessor).
func (m *Model) Model() *Model { return m }

// Validate reports the first configuration error found.
func (m *Model) Validate() error {
	switch {
	case m.DeviceName == "" || m.Short == "":
		return fmt.Errorf("arch: model missing name")
	case m.NumCores <= 0 || m.HWThreadsPerCore <= 0:
		return fmt.Errorf("arch: model %s has no cores", m.Short)
	case m.StorageSensitivity <= 0 || m.LogicSensitivity <= 0:
		return fmt.Errorf("arch: model %s has non-positive sensitivities", m.Short)
	case m.CacheLineBytes < 8:
		return fmt.Errorf("arch: model %s cache line under one word", m.Short)
	case len(m.DatapathFlip.Specs) == 0 || len(m.StorageFlip.Specs) == 0:
		return fmt.Errorf("arch: model %s missing flip distributions", m.Short)
	}
	return nil
}

// residentCapacity is the number of thread contexts the device keeps in
// hardware at once.
func (m *Model) residentCapacity() float64 {
	return float64(m.NumCores * m.HWThreadsPerCore)
}

// activeBlocks returns how many blocks can be resident given the per-block
// local-memory footprint (the LavaMD effect: heavy local memory limits
// occupancy and with it scheduler strain, §V-B).
func (m *Model) activeBlocks(p Profile) float64 {
	blocks := float64(p.Blocks)
	if p.LocalMemPerBlockKB <= 0 || m.SharedMemKBPerCore <= 0 {
		return blocks
	}
	perCore := m.SharedMemKBPerCore / p.LocalMemPerBlockKB
	if perCore < 1 {
		perCore = 1
	}
	maxActive := perCore * float64(m.NumCores)
	if blocks < maxActive {
		return blocks
	}
	return maxActive
}

// schedulerStrain models the extra exposure of thread-management state as
// parallelism grows: hardware schedulers track every instantiated thread
// and block in SRAM queues, so strain scales with the instantiated count,
// modulated by the kernel's dispatch intensity (§V-A (1)). An operating-
// system scheduler keeps run queues in main memory, outside the beam spot,
// leaving only a small on-chip bookkeeping residue.
func (m *Model) schedulerStrain(p Profile) float64 {
	df := p.DispatchFactor
	if df <= 0 {
		df = 1
	}
	if m.SchedStrainAt64K <= 0 {
		return 1
	}
	x := float64(p.Threads) * df / 65536.0
	return 1.0 + m.SchedStrainAt64K*pow(x, m.SchedStrainExponent)
}

func pow(x, e float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Exp(e * math.Log(x))
}

// rfExposure models register-file residency: utilisation plus the extra
// time data waits in registers when more threads are instantiated than the
// device can run (K40 behaviour; the Phi's waiting threads live in DRAM).
// The waiting contribution follows the same dispatch modulation as the
// scheduler: blocks that are not yet resident hold no registers.
func (m *Model) rfExposure(p Profile) float64 {
	capacity := m.residentCapacity()
	util := float64(p.Threads) / capacity
	if util > 1 {
		util = 1
	}
	if util < 0.05 {
		util = 0.05
	}
	waitingK := (float64(p.Threads) - capacity) / 1000.0
	if waitingK < 0 {
		waitingK = 0
	}
	df := p.DispatchFactor
	if df <= 0 {
		df = 1
	}
	return util * (1.0 + m.RFResidencyPerKWaiting*waitingK*df)
}

// cacheUtil is the live fraction of a cache of capKB under a working set
// of footKB, floored so streaming kernels still expose some state.
func cacheUtil(footKB, capKB float64) float64 {
	if capKB <= 0 {
		return 0
	}
	u := footKB / capKB
	if u > 1 {
		u = 1
	}
	if u < 0.25 {
		u = 0.25
	}
	return u
}

// resourceWeights returns the relative strike cross-section of every
// resource under workload p. The sum is the device's sensitive area. The
// result is a fixed-size array so ResolveStrike — called once per strike
// by the campaign hot path — computes it on the stack, allocation-free.
func (m *Model) resourceWeights(p Profile) [fault.NumResources]float64 {
	var w [fault.NumResources]float64

	w[fault.RegisterFile] = m.RegisterFileKB * m.StorageSensitivity * m.rfExposure(p)
	if m.SharedMemKBPerCore > 0 && p.LocalMemPerBlockKB > 0 {
		used := p.LocalMemPerBlockKB * m.activeBlocks(p)
		total := m.SharedMemKBPerCore * float64(m.NumCores)
		if used > total {
			used = total
		}
		w[fault.SharedMemory] = used * m.StorageSensitivity
	}
	l1Total := m.L1KBPerCore * float64(m.NumCores)
	w[fault.L1Cache] = l1Total * m.StorageSensitivity * cacheUtil(p.CacheFootprintKB, l1Total)
	w[fault.L2Cache] = m.L2KBTotal * m.StorageSensitivity * cacheUtil(p.CacheFootprintKB, m.L2KBTotal)

	w[fault.FPU] = m.FPUAreaAU * m.LogicSensitivity * p.FPUShare
	w[fault.SFU] = m.SFUAreaAU * m.LogicSensitivity * p.SFUShare
	w[fault.VectorUnit] = m.VectorAreaAU * m.LogicSensitivity * p.VectorShare
	w[fault.Scheduler] = m.SchedulerAreaAU * m.LogicSensitivity * m.schedulerStrain(p)
	// Control-path exposure follows the kernel's control-flow intensity:
	// dispatch and control structures only hold live (strikeable) state
	// while branches, launches and rebalancing keep them busy.
	cs := p.ControlShare
	if cs < m.ControlFloor {
		cs = m.ControlFloor
	}
	if cs < 0.05 {
		cs = 0.05
	}
	w[fault.Dispatcher] = m.DispatchAreaAU * m.LogicSensitivity * cs
	w[fault.ControlLogic] = m.ControlAreaAU * m.LogicSensitivity * cs
	w[fault.InstructionPath] = m.ICacheAreaAU * m.LogicSensitivity * cs

	return w
}

// SensitiveArea returns the total relative cross-section of the device
// running workload p, in arbitrary units.
func (m *Model) SensitiveArea(p Profile) float64 {
	var total float64
	for _, w := range m.resourceWeights(p) {
		total += w
	}
	return total
}

// outcomeDist returns the outcome-class distribution of a strike on
// resource r under workload p.
func (m *Model) outcomeDist(r fault.Resource, p Profile) fault.OutcomeDist {
	// Control-heavy codes (CLAMR: many kernel launches, AMR rebalancing)
	// convert more strikes into crashes.
	crashBoost := 1.0 + 2.0*p.ControlShare

	switch r {
	case fault.RegisterFile:
		if m.ECCRegisterFile {
			esc := m.ECCEscapeProb
			return fault.OutcomeDist{Masked: 1 - esc, SDC: esc * 0.9, Crash: esc * 0.1}
		}
		return fault.OutcomeDist{Masked: 0.30, SDC: 0.62, Crash: 0.06 * crashBoost, Hang: 0.02}
	case fault.SharedMemory:
		if m.ECCSharedMemory {
			esc := m.ECCEscapeProb
			return fault.OutcomeDist{Masked: 1 - esc, SDC: esc * 0.8, Crash: esc * 0.15, Hang: esc * 0.05}
		}
		return fault.OutcomeDist{Masked: 0.35, SDC: 0.60, Crash: 0.04 * crashBoost, Hang: 0.01}
	case fault.L1Cache, fault.L2Cache:
		if p.StreamingData {
			return fault.OutcomeDist{Masked: 0.75, SDC: 0.22, Crash: 0.025 * crashBoost, Hang: 0.005}
		}
		return fault.OutcomeDist{Masked: 0.43, SDC: 0.53, Crash: 0.03 * crashBoost, Hang: 0.01}
	case fault.FPU, fault.SFU:
		return fault.OutcomeDist{Masked: 0.38, SDC: 0.60, Crash: 0.02}
	case fault.VectorUnit:
		return fault.OutcomeDist{Masked: 0.35, SDC: 0.60, Crash: 0.05}
	case fault.Scheduler:
		if p.IterativeLaunches {
			// Per-timestep kernels re-dispatch every iteration; a
			// scheduler upset is usually absorbed by the next launch
			// re-reading the state arrays.
			return fault.OutcomeDist{Masked: 0.81, SDC: 0.10, Crash: 0.06 * crashBoost, Hang: 0.03}
		}
		if m.HardwareScheduler {
			return fault.OutcomeDist{Masked: 0.15, SDC: 0.45, Crash: 0.28 * crashBoost, Hang: 0.12}
		}
		// OS scheduler: the crash-prone kernel structures (run queues,
		// page tables) live in DRAM outside the beam spot; what remains
		// strikeable on-chip is mostly user-visible thread context, so a
		// surviving upset tends to mis-schedule (SDC) rather than panic.
		return fault.OutcomeDist{Masked: 0.35, SDC: 0.52, Crash: 0.10 * crashBoost, Hang: 0.03}
	case fault.Dispatcher:
		return fault.OutcomeDist{Masked: 0.30, SDC: 0.12, Crash: 0.45 * crashBoost, Hang: 0.13}
	case fault.ControlLogic:
		return fault.OutcomeDist{Masked: 0.22, SDC: 0.06, Crash: 0.45 * crashBoost, Hang: 0.27}
	case fault.InstructionPath:
		return fault.OutcomeDist{Masked: 0.30, SDC: 0.06, Crash: 0.55 * crashBoost, Hang: 0.09}
	default:
		return fault.OutcomeDist{Masked: 1}
	}
}

// lineWords is the number of float64 words per cache line.
func (m *Model) lineWords() int {
	w := m.CacheLineBytes / 8
	if w < 1 {
		w = 1
	}
	return w
}

// buildInjection constructs the SDC directive for a strike on resource r.
func (m *Model) buildInjection(r fault.Resource, p Profile, s fault.Strike, rng *xrand.RNG) Injection {
	inj := Injection{
		Resource:   r,
		When:       s.When,
		Words:      1,
		Lines:      1,
		Tasks:      1,
		OutputBias: m.CacheOutputBias,
	}
	bits := s.MultiBitProbability()

	switch r {
	case fault.RegisterFile:
		inj.Scope = ScopeOutputWord
		if m.ECCRegisterFile {
			// Only unprotected queues/latches escape: full-word upsets.
			inj.Flip = m.RFEscapeFlip.Sample(rng)
		} else {
			inj.Flip = m.StorageFlip.Sample(rng)
		}
	case fault.SharedMemory:
		inj.Scope = ScopeSharedTile
		inj.Words = m.lineWords()
		inj.OutputBias = 0 // staging tiles hold inputs by construction
		inj.Flip = m.StorageFlip.Sample(rng)
	case fault.L1Cache:
		inj.Scope = ScopeCacheLine
		inj.Words = m.lineWords()
		inj.Flip = m.StorageFlip.Sample(rng)
	case fault.L2Cache:
		inj.Scope = ScopeCacheLine
		inj.Words = m.lineWords()
		inj.Lines = m.l2LineSpread(rng)
		inj.Flip = m.StorageFlip.Sample(rng)
	case fault.FPU:
		inj.Scope = m.FPUScope
		inj.Flip = m.DatapathFlip.Sample(rng)
	case fault.SFU:
		// Transcendental-unit strike: corrupt the operand/result of an
		// exponential-class operation; the kernel's own math amplifies it.
		inj.Scope = ScopeInputWord
		inj.Flip = m.DatapathFlip.Sample(rng)
	case fault.VectorUnit:
		inj.Scope = ScopeVectorLanes
		inj.Words = m.VectorWidthBits / 64
		if inj.Words < 1 {
			inj.Words = 1
		}
		inj.Flip = m.DatapathFlip.Sample(rng)
	case fault.Scheduler:
		inj.Scope = ScopeTaskSet
		inj.Tasks = m.taskSpread(p, rng)
		inj.Flip = m.StorageFlip.Sample(rng)
	case fault.Dispatcher, fault.ControlLogic, fault.InstructionPath:
		inj.Scope = ScopeTaskSet
		inj.Tasks = 1
		inj.Flip = m.StorageFlip.Sample(rng)
	}

	inj.Flip.Bits = bits
	return inj
}

// l2LineSpread is the number of distinct cache lines a single L2 upset
// poisons before the corrupted cell is rewritten: the longer data stays
// resident (large, coherent caches), the more distinct occupants are read
// while corrupted.
func (m *Model) l2LineSpread(rng *xrand.RNG) int {
	mean := m.L2SharingDegree - 1
	if mean <= 0 {
		return 1
	}
	n := 1 + rng.Poisson(mean)
	if n > 10 {
		n = 10
	}
	return n
}

// taskSpread is how many work units a scheduler strike derails. A hardware
// scheduler managing hundreds of thousands of threads can mis-dispatch a
// handful of blocks; an OS scheduler strike that silently survives usually
// affects one task.
func (m *Model) taskSpread(p Profile, rng *xrand.RNG) int {
	if !m.HardwareScheduler {
		if rng.Bool(0.2) {
			return 2
		}
		return 1
	}
	// Geometric-ish spread scaled by block count.
	max := p.Blocks / 64
	if max < 2 {
		max = 2
	}
	if max > 12 {
		max = 12
	}
	n := 1
	for n < max && rng.Bool(0.45) {
		n++
	}
	return n
}

// ExpectedRates returns the analytically expected per-strike outcome
// distribution under workload p, weighted by resource cross-sections.
// Useful for calibration and documentation; the sampled campaigns
// converge to these values (before kernel-level logical masking, which
// moves some architectural SDCs into the masked class).
func (m *Model) ExpectedRates(p Profile) (masked, sdc, crash, hang float64) {
	weights := m.resourceWeights(p)
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 1, 0, 0, 0
	}
	for r, w := range weights {
		d := m.outcomeDist(fault.Resource(r), p)
		dt := d.Total()
		frac := w / total
		masked += frac * d.Masked / dt
		sdc += frac * d.SDC / dt
		crash += frac * d.Crash / dt
		hang += frac * d.Hang / dt
	}
	return
}

// ResolveStrike maps a beam strike onto its syndrome.
func (m *Model) ResolveStrike(p Profile, s fault.Strike, rng *xrand.RNG) Syndrome {
	weights := m.resourceWeights(p)
	r := fault.Resource(rng.WeightedChoice(weights[:]))
	outcome := m.outcomeDist(r, p).Sample(rng)
	syn := Syndrome{Resource: r, Outcome: outcome}
	if outcome == fault.SDC {
		syn.Injection = m.buildInjection(r, p, s, rng)
	}
	return syn
}
