package arch

import (
	"testing"

	"radcrit/internal/fault"
	"radcrit/internal/floatbits"
	"radcrit/internal/grid"
	"radcrit/internal/xrand"
)

// testModel returns a small, self-consistent device model.
func testModel(hw bool) *Model {
	m := &Model{
		DeviceName:          "Test Device",
		Short:               "TD",
		TechNode:            "test",
		StorageSensitivity:  1,
		LogicSensitivity:    1,
		NumCores:            4,
		HWThreadsPerCore:    256,
		RegisterFileKB:      128,
		SharedMemKBPerCore:  16,
		L1KBPerCore:         16,
		L2KBTotal:           512,
		CacheLineBytes:      64,
		VectorWidthBits:     0,
		ECCRegisterFile:     false,
		HardwareScheduler:   hw,
		FPUAreaAU:           100,
		SFUAreaAU:           50,
		SchedulerAreaAU:     80,
		DispatchAreaAU:      40,
		ControlAreaAU:       40,
		ICacheAreaAU:        20,
		ControlFloor:        0.05,
		L2SharingDegree:     2,
		SchedStrainAt64K:    2,
		SchedStrainExponent: 1.2,
		DatapathFlip: FlipDist{
			Specs:   []fault.FlipSpec{{Field: floatbits.Mantissa, Bits: 1}},
			Weights: []float64{1},
		},
		StorageFlip: FlipDist{
			Specs:   []fault.FlipSpec{{Field: floatbits.AnyField, Bits: 1}},
			Weights: []float64{1},
		},
		RFEscapeFlip: FlipDist{
			Specs:   []fault.FlipSpec{{Field: floatbits.AnyField, Bits: 1}},
			Weights: []float64{1},
		},
		FPUScope:        ScopeAccumTerm,
		CacheOutputBias: 0.5,
	}
	return m
}

func testProfile(threads int) Profile {
	return Profile{
		Kernel:           "test",
		InputLabel:       "t",
		OutputDims:       grid.Dims{X: 64, Y: 64, Z: 1},
		Threads:          threads,
		Blocks:           threads / 64,
		CacheFootprintKB: 1024,
		FPUShare:         0.5,
		ControlShare:     0.05,
		RelRuntime:       1,
	}
}

func TestModelValidate(t *testing.T) {
	if err := testModel(true).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testModel(true)
	bad.NumCores = 0
	if bad.Validate() == nil {
		t.Fatal("zero cores accepted")
	}
	bad2 := testModel(true)
	bad2.DatapathFlip = FlipDist{}
	if bad2.Validate() == nil {
		t.Fatal("missing flip distributions accepted")
	}
}

func TestSensitiveAreaPositiveAndMonotonic(t *testing.T) {
	m := testModel(true)
	small := m.SensitiveArea(testProfile(1024))
	large := m.SensitiveArea(testProfile(1024 * 64))
	if small <= 0 {
		t.Fatal("non-positive area")
	}
	if large <= small {
		t.Fatalf("hardware-scheduled area should grow with threads: %v -> %v", small, large)
	}
}

func TestOSSchedulerNoStrainGrowth(t *testing.T) {
	m := testModel(false)
	m.SchedStrainAt64K = 0
	small := m.SensitiveArea(testProfile(1024))
	large := m.SensitiveArea(testProfile(1024 * 64))
	growth := large / small
	if growth > 1.05 {
		t.Fatalf("OS-scheduled area grew %vx with thread count", growth)
	}
}

func TestDispatchFactorDampensStrain(t *testing.T) {
	m := testModel(true)
	p := testProfile(1 << 20)
	full := m.schedulerStrain(p)
	p.DispatchFactor = 0.1
	damped := m.schedulerStrain(p)
	if damped >= full {
		t.Fatalf("dispatch factor did not dampen strain: %v vs %v", damped, full)
	}
}

func TestExpectedRatesNormalized(t *testing.T) {
	m := testModel(true)
	masked, sdc, crash, hang := m.ExpectedRates(testProfile(4096))
	sum := masked + sdc + crash + hang
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("rates sum to %v", sum)
	}
	if sdc <= 0 || crash <= 0 {
		t.Fatal("expected non-zero SDC and crash rates")
	}
}

func TestResolveStrikeCoversOutcomes(t *testing.T) {
	m := testModel(true)
	p := testProfile(4096)
	rng := xrand.New(1)
	seen := map[fault.OutcomeClass]int{}
	for i := 0; i < 3000; i++ {
		syn := m.ResolveStrike(p, fault.Strike{When: rng.Float64(), Energy: 1}, rng)
		seen[syn.Outcome]++
		if syn.Outcome == fault.SDC {
			inj := syn.Injection
			if inj.Words < 1 || inj.Lines < 1 || inj.Tasks < 1 {
				t.Fatalf("degenerate injection: %+v", inj)
			}
			if inj.Flip.Bits < 1 {
				t.Fatal("flip with no bits")
			}
		}
	}
	for _, class := range []fault.OutcomeClass{fault.Masked, fault.SDC, fault.Crash, fault.Hang} {
		if seen[class] == 0 {
			t.Fatalf("outcome class %v never sampled", class)
		}
	}
}

func TestECCRegisterFileMasksMost(t *testing.T) {
	m := testModel(true)
	m.ECCRegisterFile = true
	m.ECCEscapeProb = 0.1
	d := m.outcomeDist(fault.RegisterFile, testProfile(4096))
	if d.Masked < 0.85 {
		t.Fatalf("ECC should mask most RF strikes: masked=%v", d.Masked)
	}
}

func TestIterativeLaunchSchedulerMostlyMasked(t *testing.T) {
	m := testModel(true)
	p := testProfile(4096)
	p.IterativeLaunches = true
	d := m.outcomeDist(fault.Scheduler, p)
	if d.Masked < 0.6 {
		t.Fatalf("iterative-launch scheduler strikes should mostly mask: %v", d.Masked)
	}
}

func TestStreamingDataCacheMasking(t *testing.T) {
	m := testModel(true)
	p := testProfile(4096)
	base := m.outcomeDist(fault.L2Cache, p)
	p.StreamingData = true
	streaming := m.outcomeDist(fault.L2Cache, p)
	if streaming.Masked <= base.Masked {
		t.Fatal("streaming data should raise cache masking")
	}
}

func TestL2LineSpreadBounds(t *testing.T) {
	m := testModel(true)
	m.L2SharingDegree = 5
	rng := xrand.New(2)
	for i := 0; i < 1000; i++ {
		n := m.l2LineSpread(rng)
		if n < 1 || n > 10 {
			t.Fatalf("line spread %d out of bounds", n)
		}
	}
	m.L2SharingDegree = 1
	for i := 0; i < 100; i++ {
		if m.l2LineSpread(rng) != 1 {
			t.Fatal("sharing degree 1 should always spread to 1 line")
		}
	}
}

func TestTaskSpread(t *testing.T) {
	hw := testModel(true)
	os := testModel(false)
	rng := xrand.New(3)
	p := testProfile(1 << 16)
	for i := 0; i < 200; i++ {
		if n := hw.taskSpread(p, rng); n < 1 || n > 12 {
			t.Fatalf("hw task spread %d", n)
		}
		if n := os.taskSpread(p, rng); n < 1 || n > 2 {
			t.Fatalf("os task spread %d", n)
		}
	}
}

func TestFlipDistPanicsWhenEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty FlipDist did not panic")
		}
	}()
	FlipDist{}.Sample(xrand.New(1))
}

func TestScopeStrings(t *testing.T) {
	for s := ScopeAccumTerm; s <= ScopeTaskSet; s++ {
		if s.String() == "unknown" || s.String() == "" {
			t.Fatalf("scope %d has no name", s)
		}
	}
}

func TestProfileValidate(t *testing.T) {
	good := testProfile(1024)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Kernel = ""
	if bad.Validate() == nil {
		t.Fatal("empty kernel accepted")
	}
	bad = good
	bad.Threads = 0
	if bad.Validate() == nil {
		t.Fatal("zero threads accepted")
	}
	bad = good
	bad.RelRuntime = 0
	if bad.Validate() == nil {
		t.Fatal("zero runtime accepted")
	}
}

func TestCacheUtilBounds(t *testing.T) {
	if cacheUtil(100, 0) != 0 {
		t.Fatal("zero capacity should give 0")
	}
	if cacheUtil(1e6, 100) != 1 {
		t.Fatal("oversubscribed cache should saturate at 1")
	}
	if cacheUtil(1, 1e6) != 0.25 {
		t.Fatal("floor of 0.25 not applied")
	}
}
