// Package arch defines the behavioural architecture model shared by the two
// accelerator simulators (internal/k40 and internal/phi).
//
// The paper's central observation is that error *criticality* is decided by
// the device architecture: where data lives (registers vs caches), for how
// long (scheduling philosophy), how widely it is shared (cache size and
// coherence), and which functional unit produced it (FPU vs transcendental
// SFU vs 512-bit vector lanes). This package models exactly those levers:
//
//   - a Profile describes how a kernel occupies a device (threads, blocks,
//     local-memory footprint, arithmetic mix);
//   - a Model describes a device (resource inventory, technology
//     sensitivity, scheduler philosophy, flip-field distributions);
//   - ResolveStrike maps a raw beam Strike onto a Syndrome: either a
//     masked event, a crash, a hang, or an SDC with a concrete Injection
//     that a kernel then applies to its own live state.
//
// Kernels interpret Injections in their own terms (a cache line of the A
// matrix, a particle in a LavaMD box, a temperature cell mid-iteration) and
// continue the *real* computation so that error propagation — smoothing in
// stencils, amplification through exponentials, block-wide corruption from
// scheduler strikes — is emergent rather than scripted.
package arch

import (
	"fmt"

	"radcrit/internal/fault"
	"radcrit/internal/grid"
	"radcrit/internal/xrand"
)

// Profile describes how one kernel with one input size occupies a device.
// It is produced by the kernel for a specific device (occupancy differs
// between architectures, cf. Table II of the paper).
type Profile struct {
	// Kernel is the benchmark name ("dgemm", "lavamd", ...).
	Kernel string
	// InputLabel names the input configuration ("2048x2048", "grid 19"...).
	InputLabel string
	// OutputDims is the shape of the output array the metrics inspect.
	OutputDims grid.Dims

	// Threads is the total number of parallel work items instantiated.
	Threads int
	// Blocks is the number of thread blocks / core tasks.
	Blocks int
	// LocalMemPerBlockKB is per-block shared/local memory use; it limits
	// how many blocks are simultaneously active on a GPU SM.
	LocalMemPerBlockKB float64
	// CacheFootprintKB is the input working set cycling through caches.
	CacheFootprintKB float64

	// FPUShare, SFUShare, VectorShare and ControlShare describe the
	// instruction mix: fraction of dynamic work through the plain FP
	// datapath, the transcendental unit, the SIMD unit and control flow.
	FPUShare, SFUShare, VectorShare, ControlShare float64

	// MemoryBound mirrors Table I's "bound by" classification.
	MemoryBound bool
	// Irregular mirrors Table I's memory-access-pattern classification.
	Irregular bool

	// StreamingData marks kernels whose cached input lines are consumed
	// in a single burst and then die (LavaMD's particle boxes): an upset
	// in such a line usually lands on dead data and is masked.
	StreamingData bool

	// DispatchFactor scales hardware-scheduler strain relative to DGEMM's
	// block-streaming baseline (1.0). Kernels whose local-memory footprint
	// caps occupancy (LavaMD, §V-B) or that amortise dispatch over long-
	// lived blocks strain the scheduler less per instantiated thread.
	// Zero means "use the default of 1".
	DispatchFactor float64
	// IterativeLaunches marks kernels relaunched every time step
	// (HotSpot, CLAMR). A scheduler upset between launches is usually
	// absorbed by the next launch re-reading state, so scheduler strikes
	// are predominantly masked rather than silently corrupting.
	IterativeLaunches bool

	// RelRuntime is the execution wall time in arbitrary units; the beam
	// model uses it as exposure time per run.
	RelRuntime float64
}

// Validate reports a descriptive error for an unusable profile.
func (p Profile) Validate() error {
	switch {
	case p.Kernel == "":
		return fmt.Errorf("arch: profile has no kernel name")
	case !p.OutputDims.Valid():
		return fmt.Errorf("arch: profile %q has invalid output dims", p.Kernel)
	case p.Threads <= 0 || p.Blocks <= 0:
		return fmt.Errorf("arch: profile %q has non-positive threads/blocks", p.Kernel)
	case p.RelRuntime <= 0:
		return fmt.Errorf("arch: profile %q has non-positive runtime", p.Kernel)
	}
	return nil
}

// Scope is the semantic target of an SDC injection. Each kernel translates
// the scope into corruption of its own live state.
type Scope int

const (
	// ScopeAccumTerm perturbs a single term inside a reduction while it
	// transits the FP datapath; the surrounding correct terms dilute it.
	ScopeAccumTerm Scope = iota
	// ScopeOutputWord corrupts one already-computed result word.
	ScopeOutputWord
	// ScopeInputWord corrupts one input/state word before it is consumed.
	ScopeInputWord
	// ScopeCacheLine corrupts Words contiguous input/state words (one or
	// more cache lines) before they are consumed.
	ScopeCacheLine
	// ScopeSharedTile corrupts a block-shared staging tile: every consumer
	// of the tile reads poisoned data.
	ScopeSharedTile
	// ScopeVectorLanes corrupts Words adjacent output words written from
	// one SIMD register.
	ScopeVectorLanes
	// ScopeTaskSet makes Tasks whole work units execute incorrectly
	// (scheduler/dispatcher corruption).
	ScopeTaskSet
)

// String returns the scope name.
func (s Scope) String() string {
	switch s {
	case ScopeAccumTerm:
		return "accum-term"
	case ScopeOutputWord:
		return "output-word"
	case ScopeInputWord:
		return "input-word"
	case ScopeCacheLine:
		return "cache-line"
	case ScopeSharedTile:
		return "shared-tile"
	case ScopeVectorLanes:
		return "vector-lanes"
	case ScopeTaskSet:
		return "task-set"
	default:
		return "unknown"
	}
}

// Injection is the concrete SDC directive a kernel applies to its state.
type Injection struct {
	// Resource is the struck structure (for logging/analysis).
	Resource fault.Resource
	// Scope selects the corruption semantics.
	Scope Scope
	// When is the execution progress fraction [0,1) of the strike.
	When float64
	// Words is the contiguous word count per corrupted line for
	// line/tile/lane scopes.
	Words int
	// Lines is the number of distinct corrupted lines. A physical cache
	// line is refilled by successive addresses during a run; if its cell
	// is upset, every occupant read before eviction is poisoned. Large
	// shared caches (Phi) therefore spread one strike over several
	// distinct address ranges (paper §V-E).
	Lines int
	// Tasks is the work-unit count for ScopeTaskSet.
	Tasks int
	// OutputBias is the probability that corrupted cached data is on the
	// output side (already-computed results) rather than the input side
	// (operands still to be consumed). Input-side corruption is diluted
	// by downstream arithmetic; output-side corruption is not.
	OutputBias float64
	// Flip is the per-word bit perturbation.
	Flip fault.FlipSpec
}

// Syndrome is the resolved effect of one strike.
type Syndrome struct {
	Resource fault.Resource
	Outcome  fault.OutcomeClass
	// Injection is meaningful only when Outcome == fault.SDC.
	Injection Injection
}

// Device is an accelerator model.
type Device interface {
	// Name returns the full device name (e.g. "NVIDIA Tesla K40").
	Name() string
	// ShortName returns the figure label ("K40", "XeonPhi").
	ShortName() string
	// Model exposes the underlying parameter set.
	Model() *Model
	// SensitiveArea returns the device+workload relative cross-section
	// in arbitrary units; the beam converts it into a strike rate.
	SensitiveArea(p Profile) float64
	// ResolveStrike maps a strike to its syndrome under workload p.
	ResolveStrike(p Profile, s fault.Strike, rng *xrand.RNG) Syndrome
}
