package detect

import (
	"testing"

	"radcrit/internal/grid"
)

func TestMassCheck(t *testing.T) {
	r := MassCheck(1e-3, 1e-6)
	if !r.Fired || r.Name != "mass-conservation" {
		t.Fatalf("mass check should fire: %+v", r)
	}
	if MassCheck(1e-9, 1e-6).Fired {
		t.Fatal("sub-threshold drift fired")
	}
}

func TestEntropyCheck(t *testing.T) {
	if !EntropyCheck(3.0, 3.5, 0.2).Fired {
		t.Fatal("entropy shift not detected")
	}
	if EntropyCheck(3.0, 3.05, 0.2).Fired {
		t.Fatal("noise fired the entropy check")
	}
	// Symmetric in direction.
	if !EntropyCheck(3.5, 3.0, 0.2).Fired {
		t.Fatal("entropy drop not detected")
	}
}

func TestNeighborDisparity(t *testing.T) {
	g := grid.New2D(16, 16)
	g.Fill(100)
	if NeighborDisparity(g, 0.05) != 0 {
		t.Fatal("uniform field flagged")
	}
	g.Set2(8, 8, 200)
	flagged := NeighborDisparity(g, 0.05)
	if flagged == 0 {
		t.Fatal("outlier not flagged")
	}
	// The outlier and its four neighbours deviate from their
	// neighbourhood averages.
	if flagged > 5 {
		t.Fatalf("flagged %d cells for one outlier", flagged)
	}
}

func TestNeighborDisparityMissesSmoothError(t *testing.T) {
	// A smooth gradient (stencil-smoothed corruption) evades the check —
	// the paper's point about why neighbour checks are weak for HotSpot.
	g := grid.New2D(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			g.Set2(x, y, 100+float64(x)*0.1)
		}
	}
	if NeighborDisparity(g, 0.05) != 0 {
		t.Fatal("smooth gradient flagged")
	}
}

func TestNeighborDisparityPanicsOn3D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("3D grid accepted")
		}
	}()
	NeighborDisparity(grid.New3D(4, 4, 4), 0.1)
}

func TestCoverageStats(t *testing.T) {
	var c CoverageStats
	if c.Coverage() != 0 {
		t.Fatal("empty coverage not 0")
	}
	c.Add(true)
	c.Add(true)
	c.Add(false)
	if c.Evaluated != 3 || c.Detected != 2 {
		t.Fatalf("stats wrong: %+v", c)
	}
	if c.Coverage() < 0.66 || c.Coverage() > 0.67 {
		t.Fatalf("coverage = %v", c.Coverage())
	}
}
