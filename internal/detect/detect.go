// Package detect provides the application-level error detectors discussed
// in §V-C and §V-D of the paper: the CLAMR mass-conservation check (82%
// fault coverage in [4]), an entropy monitor for stencil codes, and a
// neighbour-disparity scan.
package detect

import (
	"math"

	"radcrit/internal/grid"
)

// Result is one detector's verdict on one execution.
type Result struct {
	// Name of the detector.
	Name string
	// Fired reports whether the detector flagged the run.
	Fired bool
	// Signal is the detector's raw evidence (drift, entropy delta, ...).
	Signal float64
	// Threshold is the firing threshold the signal was compared against.
	Threshold float64
}

// MassCheck evaluates a conservation-invariant drift: it fires when the
// observed relative drift exceeds the threshold. CLAMR ships exactly this
// check; the paper reports 82% fault coverage for it.
func MassCheck(maxDriftRel, thresholdRel float64) Result {
	return Result{
		Name:      "mass-conservation",
		Fired:     maxDriftRel > thresholdRel,
		Signal:    maxDriftRel,
		Threshold: thresholdRel,
	}
}

// EntropyCheck compares the spatial entropy of an output against the
// golden run's: widespread stencil corruption shifts the value
// distribution even when each individual error is small (§V-C). entropy
// functions are supplied by the kernel (e.g. hotspot.Entropy).
func EntropyCheck(goldenEntropy, observedEntropy, threshold float64) Result {
	return Result{
		Name:      "entropy",
		Fired:     math.Abs(observedEntropy-goldenEntropy) > threshold,
		Signal:    math.Abs(observedEntropy - goldenEntropy),
		Threshold: threshold,
	}
}

// NeighborDisparity scans a 2D field for cells that deviate from their
// neighbourhood average by more than threshold (relative). It returns the
// flagged cell count; stencil-smoothed corruption evades it easily, which
// is why the paper calls plain neighbour checks "difficult" for HotSpot.
func NeighborDisparity(g *grid.Grid, threshold float64) int {
	d := g.Dims()
	if d.Z != 1 {
		panic("detect: NeighborDisparity requires a 2D grid")
	}
	flagged := 0
	for y := 0; y < d.Y; y++ {
		for x := 0; x < d.X; x++ {
			var sum float64
			var n int
			for _, off := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+off[0], y+off[1]
				if nx < 0 || nx >= d.X || ny < 0 || ny >= d.Y {
					continue
				}
				sum += g.At2(nx, ny)
				n++
			}
			avg := sum / float64(n)
			if avg == 0 {
				continue
			}
			if math.Abs(g.At2(x, y)-avg) > threshold*math.Abs(avg) {
				flagged++
			}
		}
	}
	return flagged
}

// CoverageStats accumulates detector verdicts over a campaign.
type CoverageStats struct {
	Evaluated int
	Detected  int
}

// Add records one verdict.
func (c *CoverageStats) Add(fired bool) {
	c.Evaluated++
	if fired {
		c.Detected++
	}
}

// Coverage returns the detected fraction (the paper's "fault coverage").
func (c CoverageStats) Coverage() float64 {
	if c.Evaluated == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.Evaluated)
}
