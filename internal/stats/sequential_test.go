package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZForAlpha(t *testing.T) {
	// Classic two-sided critical values.
	cases := []struct{ alpha, want float64 }{
		{0.05, 1.9599639845},
		{0.01, 2.5758293035},
		{0.001, 3.2905267314},
	}
	for _, c := range cases {
		if got := ZForAlpha(c.alpha); !almostEqual(got, c.want, 1e-6) {
			t.Errorf("ZForAlpha(%v) = %v, want %v", c.alpha, got, c.want)
		}
	}
	if !math.IsInf(ZForAlpha(0), 1) || !math.IsInf(ZForAlpha(-1), 1) {
		t.Error("alpha <= 0 should demand an infinite critical value")
	}
	if ZForAlpha(1) != 0 || ZForAlpha(2) != 0 {
		t.Error("alpha >= 1 should demand no critical value")
	}
}

func TestConfidenceSequenceSpendsAlpha(t *testing.T) {
	cs := ConfidenceSequence{Alpha: 0.05}
	var spent float64
	for k := 1; k <= 100000; k++ {
		a := cs.LookAlpha(k)
		if a <= 0 {
			t.Fatalf("look %d got non-positive budget %v", k, a)
		}
		spent += a
	}
	// sum_{k>=1} 1/(k(k+1)) telescopes to 1, so the spend approaches
	// Alpha from below and never exceeds it.
	if spent > 0.05 {
		t.Fatalf("spent %v > alpha", spent)
	}
	if spent < 0.0499 {
		t.Fatalf("spend %v should approach alpha", spent)
	}
	// Defaults kick in for out-of-range alphas.
	if (ConfidenceSequence{}).LookAlpha(1) != DefaultAlpha/2 {
		t.Error("zero Alpha should fall back to DefaultAlpha")
	}
}

func TestConfidenceSequenceWidensWithLooks(t *testing.T) {
	cs := ConfidenceSequence{Alpha: 0.05}
	// Same data, later look => more spending pressure => wider interval.
	prev := 0.0
	for k := 1; k <= 8; k++ {
		hw := cs.HalfWidth(30, 100, k)
		if hw <= prev {
			t.Fatalf("look %d half-width %v not wider than look %d's %v", k, hw, k-1, prev)
		}
		prev = hw
	}
	// And wider than the fixed-z Wilson interval it generalizes.
	lo, hi := WilsonInterval(30, 100, ZForAlpha(0.05))
	if cs.HalfWidth(30, 100, 1) <= (hi-lo)/2 {
		t.Error("look-1 interval should be wider than the fixed-sample interval")
	}
}

func TestStopRuleEvaluate(t *testing.T) {
	rule := StopRule{TargetHalfWidth: 0.1, MinStrikes: 100, CheckEvery: 50, Alpha: 0.05}

	if _, ok := rule.Evaluate(0, 0); ok {
		t.Error("no look before CheckEvery trials")
	}
	if _, ok := rule.Evaluate(3, 49); ok {
		t.Error("no look before CheckEvery trials")
	}
	if _, ok := (StopRule{TargetHalfWidth: 0.1}).Evaluate(10, 100); ok {
		t.Error("no look schedule without CheckEvery")
	}

	// Look indices derive from trials alone.
	d, ok := rule.Evaluate(7, 50)
	if !ok || d.Look != 1 {
		t.Fatalf("trials=50: look %d ok=%v, want look 1", d.Look, ok)
	}
	d, ok = rule.Evaluate(7, 150)
	if !ok || d.Look != 3 {
		t.Fatalf("trials=150: look %d ok=%v, want look 3", d.Look, ok)
	}
	// Off-schedule boundaries (a resumed tail's partial chunk) still map
	// to a well-defined look.
	d, ok = rule.Evaluate(7, 130)
	if !ok || d.Look != 2 {
		t.Fatalf("trials=130: look %d ok=%v, want look 2", d.Look, ok)
	}

	// MinStrikes gates stopping but not geometry.
	d, _ = rule.Evaluate(0, 50)
	if d.Stop {
		t.Error("stopped below MinStrikes")
	}
	if d.HalfWidth <= 0 {
		t.Error("gated decision should still carry geometry")
	}

	// A tight proportion at enough trials stops; a 50/50 one does not.
	d, _ = rule.Evaluate(2, 200)
	if !d.Stop {
		t.Errorf("2/200 half-width %v should beat target 0.1", d.HalfWidth)
	}
	d, _ = rule.Evaluate(100, 200)
	if d.Stop {
		t.Errorf("100/200 half-width %v should not beat target 0.1", d.HalfWidth)
	}

	// Zero target disables stopping entirely.
	free := StopRule{MinStrikes: 0, CheckEvery: 50}
	d, _ = free.Evaluate(0, 10000)
	if d.Stop {
		t.Error("zero target must never stop")
	}
}

func TestStopRuleDecisionIsPure(t *testing.T) {
	// Replayability hinges on Evaluate being a pure function of
	// (successes, trials): same inputs, bit-identical decision.
	rule := StopRule{TargetHalfWidth: 0.08, MinStrikes: 50, CheckEvery: 25, Alpha: 0.05}
	f := func(s, n uint16) bool {
		trials := int(n%2000) + 1
		successes := int(s) % (trials + 1)
		d1, ok1 := rule.Evaluate(successes, trials)
		d2, ok2 := rule.Evaluate(successes, trials)
		return ok1 == ok2 &&
			math.Float64bits(d1.Lo) == math.Float64bits(d2.Lo) &&
			math.Float64bits(d1.Hi) == math.Float64bits(d2.Hi) &&
			math.Float64bits(d1.HalfWidth) == math.Float64bits(d2.HalfWidth) &&
			d1.Stop == d2.Stop && d1.Look == d2.Look
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStopRuleHalfWidthAt(t *testing.T) {
	rule := StopRule{TargetHalfWidth: 0.1, MinStrikes: 100, CheckEvery: 50}
	// On-schedule, HalfWidthAt agrees with Evaluate exactly.
	d, _ := rule.Evaluate(30, 150)
	if hw := rule.HalfWidthAt(30, 150); math.Float64bits(hw) != math.Float64bits(d.HalfWidth) {
		t.Errorf("HalfWidthAt = %v, Evaluate says %v", hw, d.HalfWidth)
	}
	// Below the first look it still ranks (look clamps to 1).
	if hw := rule.HalfWidthAt(3, 10); !(hw > 0 && hw <= 0.5) {
		t.Errorf("pre-look half-width %v out of range", hw)
	}
	// More data at the same proportion tightens the ranking.
	if !(rule.HalfWidthAt(60, 300) < rule.HalfWidthAt(20, 100)) {
		t.Error("more trials at equal proportion should rank tighter")
	}
}
