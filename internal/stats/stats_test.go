package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Fatal("Mean wrong")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic set is 32/7.
	if !almostEqual(Variance(xs), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if !almostEqual(StdDev(xs), math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
	if Variance([]float64{5}) != 0 {
		t.Fatal("Variance of singleton != 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 || Sum(xs) != 12 {
		t.Fatalf("Min/Max/Sum wrong: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max not infinities")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("Percentile(nil) != 0")
	}
	if Median(xs) != 3 {
		t.Fatal("Median wrong")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("interpolated percentile = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated input")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if !almostEqual(Pearson(xs, ys), 1, 1e-12) {
		t.Fatal("perfect correlation not 1")
	}
	neg := []float64{8, 6, 4, 2}
	if !almostEqual(Pearson(xs, neg), -1, 1e-12) {
		t.Fatal("perfect anticorrelation not -1")
	}
	if Pearson(xs, []float64{1, 1, 1, 1}) != 0 {
		t.Fatal("zero-variance series should give 0")
	}
	if Pearson(xs, ys[:3]) != 0 {
		t.Fatal("length mismatch should give 0")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Fatal("zero trials should return (0,1)")
	}
	lo, hi = WilsonInterval(50, 100, 1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("interval (%v,%v) should contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("interval too wide for n=100: %v", hi-lo)
	}
	lo, hi = WilsonInterval(100, 100, 1.96)
	if hi < 1-1e-9 {
		t.Fatalf("all successes upper bound = %v", hi)
	}
	if lo < 0.9 {
		t.Fatalf("all-successes lower bound too loose: %v", lo)
	}
}

func TestWilsonIntervalDomain(t *testing.T) {
	cases := []struct {
		name              string
		successes, trials int
		z                 float64
		wantLo, wantHi    float64
		exact             bool // compare exactly instead of by range
	}{
		{name: "successes above trials clamps to all-successes", successes: 150, trials: 100, z: 1.96},
		{name: "negative successes clamps to zero", successes: -7, trials: 100, z: 1.96},
		{name: "zero z degenerates to point", successes: 30, trials: 100, z: 0, wantLo: 0.3, wantHi: 0.3, exact: true},
		{name: "negative z degenerates to point", successes: 30, trials: 100, z: -2, wantLo: 0.3, wantHi: 0.3, exact: true},
		{name: "infinite z returns ignorance", successes: 30, trials: 100, z: math.Inf(1), wantLo: 0, wantHi: 1, exact: true},
		{name: "NaN z returns ignorance", successes: 30, trials: 100, z: math.NaN(), wantLo: 0, wantHi: 1, exact: true},
	}
	for _, c := range cases {
		lo, hi := WilsonInterval(c.successes, c.trials, c.z)
		if math.IsNaN(lo) || math.IsNaN(hi) {
			t.Errorf("%s: NaN bounds (%v, %v)", c.name, lo, hi)
			continue
		}
		if lo < 0 || hi > 1 || lo > hi {
			t.Errorf("%s: malformed interval (%v, %v)", c.name, lo, hi)
		}
		if c.exact && (lo != c.wantLo || hi != c.wantHi) {
			t.Errorf("%s: got (%v, %v), want (%v, %v)", c.name, lo, hi, c.wantLo, c.wantHi)
		}
	}

	// Clamped inputs agree exactly with their in-domain equivalents.
	lo1, hi1 := WilsonInterval(150, 100, 1.96)
	lo2, hi2 := WilsonInterval(100, 100, 1.96)
	if lo1 != lo2 || hi1 != hi2 {
		t.Errorf("over-clamp differs from all-successes: (%v,%v) vs (%v,%v)", lo1, hi1, lo2, hi2)
	}
	lo1, hi1 = WilsonInterval(-1, 100, 1.96)
	lo2, hi2 = WilsonInterval(0, 100, 1.96)
	if lo1 != lo2 || hi1 != hi2 {
		t.Errorf("under-clamp differs from zero-successes: (%v,%v) vs (%v,%v)", lo1, hi1, lo2, hi2)
	}
}

func TestPercentileNaNContract(t *testing.T) {
	// NaNs are stripped before ranking: the answer matches the clean
	// subset regardless of where the NaNs sat.
	clean := []float64{1, 2, 3, 4, 5}
	dirty := []float64{math.NaN(), 3, 1, math.NaN(), 5, 2, 4}
	for _, p := range []float64{0, 25, 50, 75, 100} {
		if got, want := Percentile(dirty, p), Percentile(clean, p); got != want {
			t.Errorf("Percentile(dirty, %v) = %v, want %v", p, got, want)
		}
	}
	if got := Median(dirty); got != 3 {
		t.Errorf("Median(dirty) = %v, want 3", got)
	}
	// All-NaN non-empty input has no rank to report.
	if got := Percentile([]float64{math.NaN(), math.NaN()}, 50); !math.IsNaN(got) {
		t.Errorf("all-NaN Percentile = %v, want NaN", got)
	}
	// NaN p has no rank either.
	if got := Percentile(clean, math.NaN()); !math.IsNaN(got) {
		t.Errorf("Percentile(xs, NaN) = %v, want NaN", got)
	}
	// Empty input keeps its documented 0.
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
}

func TestPercentileNeverGarbage(t *testing.T) {
	// Property: with at least one finite value present, the result is
	// always within the finite values' range — NaNs can't smuggle an
	// out-of-range answer through an undefined sort.
	f := func(raw []float64, p float64) bool {
		p = math.Mod(math.Abs(p), 120)
		xs := make([]float64, 0, len(raw)+2)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, x := range raw {
			if i%3 == 0 {
				xs = append(xs, math.NaN())
				continue
			}
			x = math.Mod(x, 1e6)
			if math.IsNaN(x) {
				x = 0
			}
			xs = append(xs, x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		got := Percentile(xs, p)
		if lo > hi { // no finite values made it in
			return len(xs) == 0 && got == 0 || math.IsNaN(got)
		}
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWilsonIntervalProperty(t *testing.T) {
	f := func(s, n uint16) bool {
		trials := int(n%1000) + 1
		successes := int(s) % (trials + 1)
		lo, hi := WilsonInterval(successes, trials, 1.96)
		p := float64(successes) / float64(trials)
		return lo >= 0 && hi <= 1 && lo <= p+1e-9 && hi >= p-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i := 0; i < 10; i++ {
		if h.Counts[i] != 1 {
			t.Fatalf("bin %d count %d", i, h.Counts[i])
		}
		if !almostEqual(h.Fraction(i), 0.1, 1e-12) {
			t.Fatalf("bin %d fraction %v", i, h.Fraction(i))
		}
	}
	if !almostEqual(h.BinCenter(0), 0.5, 1e-12) {
		t.Fatalf("BinCenter(0) = %v", h.BinCenter(0))
	}
	if !almostEqual(h.CDF(4), 0.5, 1e-12) {
		t.Fatalf("CDF(4) = %v", h.CDF(4))
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-100)
	h.Add(100)
	if h.Counts[0] != 1 || h.Counts[4] != 1 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
	if h.N != 2 {
		t.Fatal("N not tracked")
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 3, 3)
	h.Add(1.5)
	h.Add(1.5)
	h.Add(0.5)
	if h.Mode() != 1 {
		t.Fatalf("Mode = %d", h.Mode())
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 5) },
		func() { NewHistogram(2, 1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramEmptyFraction(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if h.Fraction(0) != 0 || h.CDF(1) != 0 {
		t.Fatal("empty histogram fractions not 0")
	}
}
