// Package stats provides the small statistical toolkit used by the campaign
// simulator and the result analysis: summary statistics, histograms, Wilson
// confidence intervals for observed error rates, and correlation, all over
// plain float64 slices. Only deterministic, allocation-light routines live
// here; random sampling lives in xrand.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 if len < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
//
// NaN contract: NaN observations are stripped before ranking
// (sort.Float64s leaves NaN placement undefined, which would make the
// result depend on the input order). A non-empty slice containing only
// NaNs returns NaN, as does a NaN p: there is no rank to interpolate.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if math.IsNaN(p) {
		return math.NaN()
	}
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			sorted = append(sorted, x)
		}
	}
	if len(sorted) == 0 {
		return math.NaN()
	}
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when the slices differ in length, are shorter than 2, or
// either has zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// WilsonInterval returns the Wilson score interval for an observed
// proportion of successes/trials at confidence z (1.96 for 95%).
// It returns (0, 1) for zero trials: total ignorance.
//
// Domain: successes is clamped into [0, trials] — out-of-range counts
// would put a negative p*(1-p) under the square root and poison both
// bounds with NaN. A non-positive z asks for no confidence at all and
// degenerates to the point interval (p, p); a non-finite z likewise has
// no usable margin and returns (0, 1).
func WilsonInterval(successes, trials int, z float64) (lo, hi float64) {
	if trials <= 0 {
		return 0, 1
	}
	if successes < 0 {
		successes = 0
	}
	if successes > trials {
		successes = trials
	}
	n := float64(trials)
	p := float64(successes) / n
	if z <= 0 {
		return p, p
	}
	if math.IsInf(z, 0) || math.IsNaN(z) {
		return 0, 1
	}
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	margin := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = center - margin
	hi = center + margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the range
// are clamped into the first/last bin so mass is never silently dropped.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
// It panics on a non-positive bin count or an empty interval.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram with bins <= 0")
	}
	if !(hi > lo) {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.N++
}

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Mode returns the index of the fullest bin (first one on ties).
func (h *Histogram) Mode() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	_ = best
	return best
}

// CDF returns the empirical cumulative fraction at or below bin i.
func (h *Histogram) CDF(i int) float64 {
	if h.N == 0 {
		return 0
	}
	total := 0
	for j := 0; j <= i && j < len(h.Counts); j++ {
		total += h.Counts[j]
	}
	return float64(total) / float64(h.N)
}
