package stats

import "math"

// This file holds the sequential-analysis primitives behind adaptive
// campaigns: an anytime-valid confidence sequence for the SDC
// proportion, and the stop rule the campaign engine evaluates at chunk
// boundaries.
//
// The construction is Wilson-with-alpha-spending. A fixed-z Wilson
// interval is only valid when the sample size is chosen in advance;
// peeking at the interval after every chunk and stopping the first time
// it looks tight inflates the error rate without bound. The standard
// repair is to give each look its own significance budget alpha_k with
// sum(alpha_k) <= alpha, so by a union bound the probability that ANY
// look's interval excludes the true proportion is at most alpha — the
// intervals form a confidence sequence and stopping at any data-
// dependent time keeps the coverage guarantee. We spend
//
//	alpha_k = alpha / (k*(k+1))        (sum over k >= 1 is exactly alpha)
//
// which front-loads the budget where campaigns actually stop: early
// looks get most of it, and the critical value grows only slowly
// (z_1 ~ 2.5, z_8 ~ 3.1 at alpha = 0.05).
//
// Everything here is a pure function of (successes, trials) — no
// internal state, no clock — which is what makes stop decisions
// replayable from a checkpoint log.

// DefaultAlpha is the overall error budget a confidence sequence spends
// across its looks when the caller does not choose one.
const DefaultAlpha = 0.05

// ZForAlpha returns the two-sided normal critical value for
// significance alpha: P(|N(0,1)| >= z) = alpha. It returns +Inf for
// alpha <= 0 and 0 for alpha >= 1.
func ZForAlpha(alpha float64) float64 {
	if alpha <= 0 {
		return math.Inf(1)
	}
	if alpha >= 1 {
		return 0
	}
	return math.Sqrt2 * math.Erfinv(1-alpha)
}

// ConfidenceSequence is an anytime-valid confidence sequence for a
// binomial proportion: a family of Wilson intervals, one per look, whose
// per-look significance levels sum to Alpha.
type ConfidenceSequence struct {
	// Alpha is the overall error budget. Values outside (0, 1) fall back
	// to DefaultAlpha.
	Alpha float64
}

func (c ConfidenceSequence) alpha() float64 {
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return DefaultAlpha
	}
	return c.Alpha
}

// LookAlpha returns the significance budget spent at look k (1-based):
// alpha / (k*(k+1)). Looks before the first are treated as look 1.
func (c ConfidenceSequence) LookAlpha(k int) float64 {
	if k < 1 {
		k = 1
	}
	return c.alpha() / (float64(k) * float64(k+1))
}

// Bounds returns the look-k confidence interval for successes/trials.
func (c ConfidenceSequence) Bounds(successes, trials, look int) (lo, hi float64) {
	return WilsonInterval(successes, trials, ZForAlpha(c.LookAlpha(look)))
}

// HalfWidth returns half the width of the look-k interval.
func (c ConfidenceSequence) HalfWidth(successes, trials, look int) float64 {
	lo, hi := c.Bounds(successes, trials, look)
	return (hi - lo) / 2
}

// StopRule is the early-stopping policy a campaign cell runs under: stop
// once the confidence sequence's interval for the SDC proportion is
// narrower than the target. The engine evaluates it only at chunk
// boundaries, which keeps every decision a pure, replayable function of
// the chunk-aligned (successes, trials) pairs a checkpoint log records.
type StopRule struct {
	// TargetHalfWidth is the interval half-width at which the cell has
	// "converged". Zero or negative disables stopping (the rule still
	// reports interval geometry).
	TargetHalfWidth float64
	// MinStrikes is the floor below which the rule never stops, however
	// tight the interval — guards against lucky tiny samples.
	MinStrikes int
	// CheckEvery is the look spacing in strikes: look k covers trials in
	// [k*CheckEvery, (k+1)*CheckEvery). The engine aligns its stream
	// chunk to this so chunk boundaries are exactly the scheduled looks.
	CheckEvery int
	// Alpha is the overall error budget (DefaultAlpha when unset).
	Alpha float64
}

// Decision is one evaluation of a StopRule at a chunk boundary.
type Decision struct {
	// Look is the 1-based look index the boundary mapped to.
	Look int
	// Lo, Hi bound the SDC proportion at this look's confidence.
	Lo, Hi float64
	// HalfWidth is (Hi-Lo)/2, the quantity the target is tested against.
	HalfWidth float64
	// Stop reports that the target was met at or past MinStrikes.
	Stop bool
}

// Evaluate judges the boundary at `trials` consumed strikes with
// `successes` observed events. ok is false before the first look
// (trials < CheckEvery) or when no look schedule is configured. The
// look index is trials/CheckEvery, so a boundary reached through any
// interruption/resume history maps to the same look — decisions depend
// only on (successes, trials), never on how execution was sliced.
func (r StopRule) Evaluate(successes, trials int) (d Decision, ok bool) {
	if r.CheckEvery <= 0 || trials < r.CheckEvery {
		return Decision{}, false
	}
	d.Look = trials / r.CheckEvery
	cs := ConfidenceSequence{Alpha: r.Alpha}
	d.Lo, d.Hi = cs.Bounds(successes, trials, d.Look)
	d.HalfWidth = (d.Hi - d.Lo) / 2
	d.Stop = r.TargetHalfWidth > 0 && trials >= r.MinStrikes && d.HalfWidth <= r.TargetHalfWidth
	return d, true
}

// HalfWidthAt reports the interval half-width at an arbitrary trial
// count, off the look schedule — the adaptive runner ranks open cells
// by this when reallocating freed strikes. It never gates on MinStrikes
// or the target.
func (r StopRule) HalfWidthAt(successes, trials int) float64 {
	every := r.CheckEvery
	if every <= 0 {
		every = 1
	}
	look := trials / every
	if look < 1 {
		look = 1
	}
	return ConfidenceSequence{Alpha: r.Alpha}.HalfWidth(successes, trials, look)
}
