// Package par provides the parallel execution primitive of the campaign
// engine: a chunked, dynamically scheduled loop over indexed work items.
//
// The campaign workload is embarrassingly parallel but irregular — an SDC
// strike runs a full injected kernel while a masked strike returns almost
// immediately — so a static index split would leave workers idle behind
// whichever range drew the expensive strikes. For instead hands out small
// contiguous chunks from a shared atomic cursor: workers that finish early
// steal the next chunk, bounding imbalance by one chunk per worker without
// any per-item synchronisation.
//
// Determinism is the caller's contract: fn receives the item index, writes
// only to its own slot of pre-sized output storage, and derives any
// randomness from a per-index RNG split. Under that contract the loop's
// results are independent of worker count and scheduling order.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// maxChunk caps the chunk size so a single expensive tail chunk cannot
// serialise the loop.
const maxChunk = 64

// For runs fn(i) for every i in [0, n) across a pool of workers.
// workers <= 0 selects runtime.GOMAXPROCS(0). The loop degenerates to a
// plain serial loop when one worker (or one item) makes a pool pointless,
// so callers need no serial fallback of their own.
func For(n, workers int, fn func(i int)) {
	// context.Background is never done, so ForCtx cannot return an error.
	_ = ForCtx(context.Background(), n, workers, fn)
}

// ForCtx is For under a context: workers re-check ctx each time they claim
// a chunk from the shared cursor and stop claiming once it is cancelled.
// In-flight items finish (fn is never interrupted mid-call) and every
// worker goroutine has exited by the time ForCtx returns, so cancellation
// leaks nothing; it returns ctx.Err() when the loop stopped early and nil
// when every index ran. Callers that need a consistent result set must
// treat a non-nil return as "an unspecified subset of indices ran" — the
// campaign engines discard the whole chunk.
func ForCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	return ForSpansCtx(ctx, n, workers, func(start, end int) {
		for i := start; i < end; i++ {
			fn(i)
		}
	})
}

// ForSpansCtx is ForCtx at span granularity: fn receives each claimed
// chunk as a contiguous [start, end) index range instead of one index at
// a time. Callers that amortise per-call overhead across a run of items —
// the campaign engine hands each span to the kernels' batch seam so
// scratch and golden tables stay cache-hot — use this directly; ForCtx is
// a per-index wrapper over it. The determinism contract is unchanged:
// spans partition [0, n), every index is visited exactly once, and fn
// must write only to the slots of its own span.
func ForSpansCtx(ctx context.Context, n, workers int, fn func(start, end int)) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	chunk := chunkSize(n, workers)
	if workers == 1 {
		for start := 0; start < n; start += chunk {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			end := start + chunk
			if end > n {
				end = n
			}
			fn(start, end)
		}
		return nil
	}
	var cursor atomic.Int64
	var stopped atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					stopped.Store(true)
					return
				}
				end := int(cursor.Add(int64(chunk)))
				start := end - chunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				fn(start, end)
			}
		}()
	}
	wg.Wait()
	if stopped.Load() {
		return ctx.Err()
	}
	return nil
}

// chunkSize aims for several chunks per worker (load balance for irregular
// items) while keeping the cursor contention negligible.
func chunkSize(n, workers int) int {
	c := n / (workers * 8)
	if c < 1 {
		return 1
	}
	if c > maxChunk {
		return maxChunk
	}
	return c
}
