package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		for _, workers := range []int{0, 1, 2, 8, 33} {
			hits := make([]int32, n)
			For(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d hit %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestForIndexedWritesAreOrderIndependent(t *testing.T) {
	const n = 512
	want := make([]int, n)
	For(n, 1, func(i int) { want[i] = i * i })
	got := make([]int, n)
	For(n, 16, func(i int) { got[i] = i * i })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestChunkSizeBounds(t *testing.T) {
	if chunkSize(10, 4) != 1 {
		t.Fatal("small loops should use unit chunks")
	}
	if c := chunkSize(1_000_000, 2); c != maxChunk {
		t.Fatalf("huge loops should cap the chunk, got %d", c)
	}
}
