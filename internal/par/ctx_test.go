package par

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForCtxRunsAll(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var sum atomic.Int64
		err := ForCtx(context.Background(), 1000, workers, func(i int) {
			sum.Add(int64(i))
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want := int64(1000 * 999 / 2); sum.Load() != want {
			t.Errorf("workers=%d: sum %d, want %d", workers, sum.Load(), want)
		}
	}
}

func TestForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForCtx(ctx, 1000, workers, func(int) { ran.Add(1) })
		if err != context.Canceled {
			t.Fatalf("workers=%d: err %v", workers, err)
		}
		// A worker may claim at most its first chunk before noticing.
		if ran.Load() >= 1000 {
			t.Errorf("workers=%d: pre-cancelled loop ran everything", workers)
		}
	}
}

func TestForCtxCancelMidRun(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	err := ForCtx(ctx, 100000, 4, func(i int) {
		if ran.Add(1) == 50 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if ran.Load() >= 100000 {
		t.Errorf("cancelled loop ran every index")
	}
	// Workers are joined before ForCtx returns: nothing may leak.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
