package floatbits

import (
	"math"
	"testing"
	"testing/quick"

	"radcrit/internal/xrand"
)

func TestFlipBit64Involution(t *testing.T) {
	f := func(v float64, pos uint8) bool {
		p := int(pos) % 64
		return FlipBit64(FlipBit64(v, p), p) == v ||
			math.IsNaN(v) // NaN payload round-trips bitwise but != compares false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlipBit64Changes(t *testing.T) {
	v := 1.5
	for pos := 0; pos < 64; pos++ {
		flipped := FlipBit64(v, pos)
		if math.Float64bits(flipped) == math.Float64bits(v) {
			t.Fatalf("flip at %d did not change bits", pos)
		}
		diff := math.Float64bits(flipped) ^ math.Float64bits(v)
		if diff != 1<<uint(pos) {
			t.Fatalf("flip at %d changed wrong bits: %x", pos, diff)
		}
	}
}

func TestFlipBit64PanicsOutOfRange(t *testing.T) {
	for _, pos := range []int{-1, 64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("FlipBit64 pos=%d did not panic", pos)
				}
			}()
			FlipBit64(1.0, pos)
		}()
	}
}

func TestFlipBit32Involution(t *testing.T) {
	f := func(v float32, pos uint8) bool {
		p := int(pos) % 32
		r := FlipBit32(FlipBit32(v, p), p)
		return math.Float32bits(r) == math.Float32bits(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignFlip(t *testing.T) {
	rng := xrand.New(1)
	v := Flip64(3.25, Sign, rng)
	if v != -3.25 {
		t.Fatalf("sign flip of 3.25 = %v", v)
	}
}

func TestLowMantissaFlipIsSmall(t *testing.T) {
	rng := xrand.New(2)
	for i := 0; i < 1000; i++ {
		orig := 1.0 + rng.Float64()
		v := Flip64(orig, LowMantissa, rng)
		rel := math.Abs(v-orig) / math.Abs(orig)
		if rel > 1e-7 {
			t.Fatalf("low-mantissa flip relative error %v too large (orig %v -> %v)", rel, orig, v)
		}
		if v == orig {
			t.Fatal("flip did not change value")
		}
	}
}

func TestExponentFlipIsLarge(t *testing.T) {
	// The smallest possible exponent flip changes the value by a factor of
	// 2 (or 1/2), i.e. at least a 50% relative error. Every exponent flip
	// must therefore be "large" next to floating-point noise.
	rng := xrand.New(3)
	for i := 0; i < 1000; i++ {
		orig := 1.0 + rng.Float64()
		v := Flip64(orig, Exponent, rng)
		if !IsFinite(v) {
			continue // overflowed to Inf: certainly large
		}
		rel := math.Abs(v-orig) / math.Abs(orig)
		if rel < 0.499 {
			t.Fatalf("exponent flip relative error %v < 50%% (orig %v -> %v)", rel, orig, v)
		}
	}
}

func TestFieldOfBit64(t *testing.T) {
	if FieldOfBit64(0) != Mantissa {
		t.Fatal("bit 0 should be mantissa")
	}
	if FieldOfBit64(51) != Mantissa {
		t.Fatal("bit 51 should be mantissa")
	}
	if FieldOfBit64(52) != Exponent {
		t.Fatal("bit 52 should be exponent")
	}
	if FieldOfBit64(62) != Exponent {
		t.Fatal("bit 62 should be exponent")
	}
	if FieldOfBit64(63) != Sign {
		t.Fatal("bit 63 should be sign")
	}
}

func TestFlipN64DistinctBits(t *testing.T) {
	rng := xrand.New(5)
	orig := 123.456
	v := FlipN64(orig, 4, Mantissa, rng)
	diff := math.Float64bits(v) ^ math.Float64bits(orig)
	if popcount(diff) != 4 {
		t.Fatalf("FlipN64 flipped %d bits, want 4", popcount(diff))
	}
	if diff>>MantissaBits64 != 0 {
		t.Fatal("FlipN64 escaped the mantissa field")
	}
}

func TestFlipN64WholeField(t *testing.T) {
	rng := xrand.New(6)
	orig := 1.0
	v := FlipN64(orig, 100, Exponent, rng)
	diff := math.Float64bits(v) ^ math.Float64bits(orig)
	wantMask := uint64((1<<ExponentBits64)-1) << MantissaBits64
	if diff != wantMask {
		t.Fatalf("FlipN64 over-large n: diff %x, want %x", diff, wantMask)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestIsFinite(t *testing.T) {
	cases := []struct {
		v    float64
		want bool
	}{
		{0, true}, {1.5, true}, {-math.MaxFloat64, true},
		{math.Inf(1), false}, {math.Inf(-1), false}, {math.NaN(), false},
	}
	for _, c := range cases {
		if IsFinite(c.v) != c.want {
			t.Fatalf("IsFinite(%v) != %v", c.v, c.want)
		}
	}
}

func TestSanitize(t *testing.T) {
	if Sanitize(math.NaN(), 7) != 7 {
		t.Fatal("Sanitize(NaN) did not fall back")
	}
	if Sanitize(math.Inf(1), 7) != 7 {
		t.Fatal("Sanitize(+Inf) did not fall back")
	}
	if Sanitize(3, 7) != 3 {
		t.Fatal("Sanitize(finite) changed value")
	}
}

func TestFlip32FieldBounds(t *testing.T) {
	rng := xrand.New(8)
	for i := 0; i < 1000; i++ {
		orig := float32(1.0 + rng.Float64())
		v := Flip32(orig, LowMantissa, rng)
		diff := math.Float32bits(v) ^ math.Float32bits(orig)
		if diff == 0 {
			t.Fatal("Flip32 did not change value")
		}
		if diff>>(MantissaBits32/2) != 0 {
			t.Fatalf("Flip32 low-mantissa escaped field: %x", diff)
		}
	}
}

func TestFieldString(t *testing.T) {
	fields := []Field{AnyField, Mantissa, LowMantissa, HighMantissa, Exponent, Sign, Field(99)}
	for _, f := range fields {
		if f.String() == "" {
			t.Fatalf("empty string for field %d", f)
		}
	}
}

func TestFlip64AllFieldsStayInField(t *testing.T) {
	rng := xrand.New(9)
	checks := []struct {
		f    Field
		mask uint64
	}{
		{Mantissa, (1 << MantissaBits64) - 1},
		{Exponent, ((1 << ExponentBits64) - 1) << MantissaBits64},
		{Sign, 1 << SignBit64},
		{AnyField, ^uint64(0)},
	}
	for _, c := range checks {
		for i := 0; i < 200; i++ {
			orig := rng.Float64()*100 - 50
			v := Flip64(orig, c.f, rng)
			diff := math.Float64bits(v) ^ math.Float64bits(orig)
			if diff&^c.mask != 0 {
				t.Fatalf("field %v flip escaped mask: %x", c.f, diff)
			}
			if popcount(diff) != 1 {
				t.Fatalf("field %v flip flipped %d bits", c.f, popcount(diff))
			}
		}
	}
}
