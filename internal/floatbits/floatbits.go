// Package floatbits performs IEEE-754 bit surgery on float32 and float64
// values. A neutron strike that latches into a datapath or storage element
// manifests as one or more flipped bits in a word; where those bits land
// (sign, exponent, mantissa) determines the magnitude of the resulting
// numerical error, which is exactly what the paper's relative-error metric
// measures. This package is the lowest layer of the fault model.
package floatbits

import "math"

// Field identifies a region of an IEEE-754 word.
type Field int

const (
	// AnyField means the bit position is drawn over the whole word.
	AnyField Field = iota
	// Mantissa restricts flips to the fraction bits.
	Mantissa
	// LowMantissa restricts flips to the low half of the fraction, which
	// produces errors within typical floating-point noise.
	LowMantissa
	// HighMantissa restricts flips to the high half of the fraction.
	HighMantissa
	// Exponent restricts flips to the exponent bits (large magnitude errors).
	Exponent
	// Sign flips the sign bit.
	Sign
)

// String returns the field name.
func (f Field) String() string {
	switch f {
	case AnyField:
		return "any"
	case Mantissa:
		return "mantissa"
	case LowMantissa:
		return "low-mantissa"
	case HighMantissa:
		return "high-mantissa"
	case Exponent:
		return "exponent"
	case Sign:
		return "sign"
	default:
		return "unknown"
	}
}

// Float64 layout constants.
const (
	MantissaBits64 = 52
	ExponentBits64 = 11
	SignBit64      = 63
)

// Float32 layout constants.
const (
	MantissaBits32 = 23
	ExponentBits32 = 8
	SignBit32      = 31
)

// bitRange64 returns the half-open bit interval [lo, hi) of a field in a
// float64 word.
func bitRange64(f Field) (lo, hi int) {
	switch f {
	case Mantissa:
		return 0, MantissaBits64
	case LowMantissa:
		return 0, MantissaBits64 / 2
	case HighMantissa:
		return MantissaBits64 / 2, MantissaBits64
	case Exponent:
		return MantissaBits64, MantissaBits64 + ExponentBits64
	case Sign:
		return SignBit64, SignBit64 + 1
	default:
		return 0, 64
	}
}

// bitRange32 returns the half-open bit interval [lo, hi) of a field in a
// float32 word.
func bitRange32(f Field) (lo, hi int) {
	switch f {
	case Mantissa:
		return 0, MantissaBits32
	case LowMantissa:
		return 0, MantissaBits32 / 2
	case HighMantissa:
		return MantissaBits32 / 2, MantissaBits32
	case Exponent:
		return MantissaBits32, MantissaBits32 + ExponentBits32
	case Sign:
		return SignBit32, SignBit32 + 1
	default:
		return 0, 32
	}
}

// BitSource supplies bit positions; satisfied by *xrand.RNG.
type BitSource interface {
	Intn(n int) int
}

// Flip64 flips one uniformly chosen bit of v within field f.
func Flip64(v float64, f Field, src BitSource) float64 {
	lo, hi := bitRange64(f)
	return FlipBit64(v, lo+src.Intn(hi-lo))
}

// FlipBit64 flips bit position pos (0 = LSB) of v.
func FlipBit64(v float64, pos int) float64 {
	if pos < 0 || pos > 63 {
		panic("floatbits: FlipBit64 position out of range")
	}
	return math.Float64frombits(math.Float64bits(v) ^ (1 << uint(pos)))
}

// FlipN64 flips n distinct uniformly chosen bits of v within field f.
// Flipping the same bit twice would cancel, so positions are deduplicated.
func FlipN64(v float64, n int, f Field, src BitSource) float64 {
	lo, hi := bitRange64(f)
	width := hi - lo
	if n >= width {
		// Flip the whole field.
		for p := lo; p < hi; p++ {
			v = FlipBit64(v, p)
		}
		return v
	}
	seen := make(map[int]bool, n)
	for len(seen) < n {
		p := lo + src.Intn(width)
		if seen[p] {
			continue
		}
		seen[p] = true
		v = FlipBit64(v, p)
	}
	return v
}

// Flip32 flips one uniformly chosen bit of v within field f.
func Flip32(v float32, f Field, src BitSource) float32 {
	lo, hi := bitRange32(f)
	return FlipBit32(v, lo+src.Intn(hi-lo))
}

// FlipBit32 flips bit position pos (0 = LSB) of v.
func FlipBit32(v float32, pos int) float32 {
	if pos < 0 || pos > 31 {
		panic("floatbits: FlipBit32 position out of range")
	}
	return math.Float32frombits(math.Float32bits(v) ^ (1 << uint(pos)))
}

// FieldOfBit64 reports which exclusive field (Sign, Exponent, Mantissa) a
// float64 bit position belongs to.
func FieldOfBit64(pos int) Field {
	switch {
	case pos == SignBit64:
		return Sign
	case pos >= MantissaBits64:
		return Exponent
	default:
		return Mantissa
	}
}

// IsFinite reports whether v is neither NaN nor an infinity.
func IsFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Sanitize replaces NaN or infinite values produced by exponent-field flips
// with the given fallback. Device memory never holds "NaN" — the bits are
// just bits — but downstream metric arithmetic needs finite values, mirroring
// the paper's treatment of wildly corrupted outputs as ">= cap" values.
func Sanitize(v, fallback float64) float64 {
	if IsFinite(v) {
		return v
	}
	return fallback
}
