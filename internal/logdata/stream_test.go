package logdata

import (
	"strings"
	"testing"

	"radcrit/internal/fault"
)

// TestStreamWriterMatchesBatchWrite pins the two serialisation paths to
// one format: streaming a log's events produces byte-identical output to
// Write, modulo the checkpoint records only the streamer emits.
func TestStreamWriterMatchesBatchWrite(t *testing.T) {
	l := fuzzSampleLog()
	var batch strings.Builder
	if err := Write(&batch, l); err != nil {
		t.Fatal(err)
	}
	var streamed strings.Builder
	sw, err := NewStreamWriter(&streamed, l)
	if err != nil {
		t.Fatal(err)
	}
	sw.AddMasked(l.Masked)
	for _, ev := range l.Events {
		if err := sw.WriteEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if streamed.String() != batch.String() {
		t.Fatalf("stream and batch serialisations diverge:\n%s\nvs\n%s", streamed.String(), batch.String())
	}
}

func TestStreamWriterRejectsMaskedEvents(t *testing.T) {
	var sb strings.Builder
	sw, err := NewStreamWriter(&sb, fuzzSampleLog())
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteEvent(Event{Class: fault.Masked, Exec: 1}); err == nil {
		t.Fatal("masked outcomes are counted, not written as events; WriteEvent must reject them")
	}
	if err := sw.Close(); err == nil {
		t.Fatal("the write error must be sticky through Close")
	}
}

func TestParseResumeCheckpointSemantics(t *testing.T) {
	meta := fuzzSampleLog()
	var sb strings.Builder
	sw, err := NewStreamWriter(&sb, meta)
	if err != nil {
		t.Fatal(err)
	}
	sw.AddMasked(5)
	if err := sw.WriteEvent(meta.Events[0]); err != nil { // SDC with 2 mismatches
		t.Fatal(err)
	}
	if err := sw.Checkpoint(8); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteEvent(Event{Class: fault.Crash, Exec: 9, Resource: "bus"}); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate a crash after the unflushed crash event.
	res, err := ParseResume(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("log without trailer reported complete")
	}
	if res.Next != 8 || res.Masked != 5 {
		t.Fatalf("resume point (next %d, masked %d), want (8, 5)", res.Next, res.Masked)
	}
	if len(res.Log.Events) != 1 || res.Log.Events[0].Class != fault.SDC {
		t.Fatalf("salvage kept %d events, want the 1 checkpointed SDC", len(res.Log.Events))
	}
	if len(res.Log.Events[0].Mismatches) != 2 {
		t.Fatalf("salvaged SDC has %d mismatches, want 2", len(res.Log.Events[0].Mismatches))
	}
	if res.Log.Device != meta.Device || res.Log.Seed != meta.Seed {
		t.Fatal("salvage lost header metadata")
	}

	// Truncating inside the checkpointed region falls back to re-running
	// everything: the #CHK line itself is gone.
	cut := strings.Index(sb.String(), "#CHK")
	res2, err := ParseResume(strings.NewReader(sb.String()[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Next != 0 || len(res2.Log.Events) != 0 {
		t.Fatalf("pre-checkpoint truncation should salvage nothing, got next %d, %d events",
			res2.Next, len(res2.Log.Events))
	}

	// A torn final line that still parses — "masked:5" truncated to
	// "masked:" mid-checkpoint — must be discarded (it lacks its
	// newline), not trusted or treated as fatal.
	torn := sb.String()[:cut+len("#CHK next:8 masked:")]
	res3, err := ParseResume(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("torn #CHK line should be discarded, got error: %v", err)
	}
	if res3.Next != 0 || res3.Complete {
		t.Fatalf("torn #CHK trusted: %+v", res3)
	}
}

// TestEpochRoundTrip pins the #EPOCH record through both parsers: the
// streamed mark comes back bit-exact (hex-float half-width) from the
// strict parser and from salvage.
func TestEpochRoundTrip(t *testing.T) {
	meta := fuzzSampleLog()
	var sb strings.Builder
	sw, err := NewStreamWriter(&sb, meta)
	if err != nil {
		t.Fatal(err)
	}
	sw.AddMasked(5)
	if err := sw.WriteEvent(meta.Events[0]); err != nil { // one SDC
		t.Fatal(err)
	}
	if err := sw.Checkpoint(50); err != nil {
		t.Fatal(err)
	}
	mark := EpochMark{Epoch: 1, Alloc: 300, Consumed: 50, SDC: 1, HalfWidth: 0x1.91a7p-04, Stopped: true}
	if err := sw.WriteEpoch(mark); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	parsed, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Epochs) != 1 || parsed.Epochs[0] != mark {
		t.Fatalf("strict parse epochs = %+v, want [%+v]", parsed.Epochs, mark)
	}

	res, err := ParseResume(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("closed log not complete")
	}
	if len(res.Log.Epochs) != 1 || res.Log.Epochs[0] != mark {
		t.Fatalf("salvage epochs = %+v, want [%+v]", res.Log.Epochs, mark)
	}

	// A count-inconsistent epoch is a hard error for the strict parser...
	bad := strings.Replace(sb.String(), "sdc:1 hw:", "sdc:3 hw:", 1)
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Fatal("strict parser accepted an epoch disagreeing with the body")
	}
	// ...and a corrupt tail for salvage: the #CHK before it survives.
	res2, err := ParseResume(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Complete || len(res2.Log.Epochs) != 0 || res2.Next != 50 {
		t.Fatalf("inconsistent epoch salvage: %+v epochs %+v", res2, res2.Log.Epochs)
	}
}

// TestParseResumeDropsEpochPastSalvage: an epoch record annotating work
// beyond the last trusted checkpoint is discarded with that work.
func TestParseResumeDropsEpochPastSalvage(t *testing.T) {
	meta := fuzzSampleLog()
	var sb strings.Builder
	sw, err := NewStreamWriter(&sb, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Checkpoint(50); err != nil {
		t.Fatal(err)
	}
	keep := EpochMark{Epoch: 1, Alloc: 300, Consumed: 50, SDC: 0}
	if err := sw.WriteEpoch(keep); err != nil {
		t.Fatal(err)
	}
	// Epoch at a checkpoint whose #CHK got damaged: the mark's consumed
	// count points past the salvage point.
	drop := EpochMark{Epoch: 2, Alloc: 300, Consumed: 100, SDC: 0}
	if err := sw.WriteEpoch(drop); err != nil {
		t.Fatal(err)
	}
	// No Close, no #CHK at 100: the log tears here.
	res, err := ParseResume(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Next != 50 {
		t.Fatalf("next = %d, want 50", res.Next)
	}
	if len(res.Log.Epochs) != 1 || res.Log.Epochs[0] != keep {
		t.Fatalf("salvage epochs = %+v, want just %+v", res.Log.Epochs, keep)
	}
}

// TestParseResumeTornTrailer pins the #END defences: a trailer torn
// mid-line (still syntactically valid) must not mark the log complete,
// and a complete-looking trailer whose counts disagree with the body is
// a corrupt tail, not a finished campaign.
func TestParseResumeTornTrailer(t *testing.T) {
	meta := fuzzSampleLog()
	var sb strings.Builder
	sw, err := NewStreamWriter(&sb, meta)
	if err != nil {
		t.Fatal(err)
	}
	sw.AddMasked(20)
	for _, ev := range meta.Events {
		if err := sw.WriteEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Checkpoint(30); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	full := sb.String()

	// Tear the trailer one byte short: "masked:20" reads "masked:2".
	res, err := ParseResume(strings.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("torn #END accepted as completion")
	}
	if res.Next != 30 || res.Masked != 20 {
		t.Fatalf("torn trailer lost the checkpoint: %+v", res)
	}

	// A newline-terminated #END with body-inconsistent counts is corrupt.
	bad := strings.Replace(full, "#END sdc:1", "#END sdc:7", 1)
	res2, err := ParseResume(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Complete {
		t.Fatal("count-inconsistent #END accepted as completion")
	}
	if res2.Next != 30 {
		t.Fatalf("corrupt trailer lost the checkpoint: %+v", res2)
	}
}
