package logdata

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"

	"radcrit/internal/fault"
	"radcrit/internal/grid"
	"radcrit/internal/metrics"
)

// StreamWriter emits a campaign log incrementally, event by event, so a
// running campaign holds no event backlog in memory. Checkpoint records
// (#CHK lines) carry the cumulative outcome counts and the next strike
// index; a log truncated by a crash can be resumed from its last flushed
// checkpoint with ParseResume.
//
// StreamWriter is not safe for concurrent use: the campaign engine feeds
// it from its in-order consume loop.
type StreamWriter struct {
	bw     *bufio.Writer
	masked int
	sdc    int
	due    int
	err    error
}

// NewStreamWriter writes the header lines for the campaign described by
// meta (whose Events and Masked are ignored) and returns a writer ready to
// accept events.
func NewStreamWriter(w io.Writer, meta *Log) (*StreamWriter, error) {
	sw := &StreamWriter{bw: bufio.NewWriter(w)}
	writeHeader(sw.bw, meta)
	if err := sw.bw.Flush(); err != nil {
		return nil, fmt.Errorf("logdata: %v", err)
	}
	return sw, nil
}

// AddMasked records n masked executions. Masked runs produce no event
// lines; they are carried by checkpoint records and the trailer.
func (sw *StreamWriter) AddMasked(n int) { sw.masked += n }

// Masked returns the masked executions recorded so far.
func (sw *StreamWriter) Masked() int { return sw.masked }

// WriteEvent appends one non-masked event.
func (sw *StreamWriter) WriteEvent(e Event) error {
	if sw.err != nil {
		return sw.err
	}
	switch e.Class {
	case fault.SDC:
		sw.sdc++
	case fault.Crash, fault.Hang:
		sw.due++
	default:
		sw.err = fmt.Errorf("logdata: stream event with class %v", e.Class)
		return sw.err
	}
	writeEvent(sw.bw, e)
	return sw.setErr(nil)
}

// Checkpoint flushes everything written so far and appends a #CHK record:
// the next strike index to execute and the cumulative outcome counts. A
// resumed campaign restarts from the most recent complete checkpoint.
func (sw *StreamWriter) Checkpoint(next int) error {
	if sw.err != nil {
		return sw.err
	}
	fmt.Fprintf(sw.bw, "#CHK next:%d masked:%d sdc:%d due:%d\n", next, sw.masked, sw.sdc, sw.due)
	return sw.setErr(sw.bw.Flush())
}

// WriteEpoch appends an #EPOCH budget record and flushes, like
// Checkpoint: the record marks a durable decision point, so it must hit
// the disk with the checkpoint it annotates.
func (sw *StreamWriter) WriteEpoch(m EpochMark) error {
	if sw.err != nil {
		return sw.err
	}
	writeEpoch(sw.bw, m)
	return sw.setErr(sw.bw.Flush())
}

// Close appends the #END trailer and flushes. The writer must not be used
// afterwards.
func (sw *StreamWriter) Close() error {
	if sw.err != nil {
		return sw.err
	}
	fmt.Fprintf(sw.bw, "#END sdc:%d due:%d masked:%d\n", sw.sdc, sw.due, sw.masked)
	return sw.setErr(sw.bw.Flush())
}

func (sw *StreamWriter) setErr(err error) error {
	if sw.err == nil && err != nil {
		sw.err = fmt.Errorf("logdata: %v", err)
	}
	return sw.err
}

// Resume is the recoverable state of a possibly-truncated streamed log.
type Resume struct {
	// Log holds the parsed metadata and the events covered by the last
	// complete checkpoint (events written after it are discarded: they
	// will be reproduced exactly by re-running their strikes).
	Log *Log
	// Next is the first strike index not covered by the last checkpoint
	// (0 when no checkpoint was found: the whole campaign re-runs).
	Next int
	// Masked is the masked-execution count at that checkpoint.
	Masked int
	// Complete reports that the log ended with an #END trailer, i.e.
	// nothing needs to be re-run.
	Complete bool
}

// ParseResume reads a streamed log that may have been truncated mid-write
// (a crashed campaign). It tolerates an incomplete tail: a final line
// without its terminating newline is a torn write and is discarded before
// scanning (a tear can otherwise still parse — "masked:20" truncated to
// "masked:2" is valid syntax with the wrong value); scanning additionally
// stops at the first malformed or inconsistent line, and everything after
// the last complete #CHK record is dropped. The returned Resume pinpoints
// where the campaign must restart; per-index strike derivation guarantees
// the re-run tail is bit-identical to what the lost one would have been.
func ParseResume(r io.Reader) (Resume, error) {
	l := &Log{}
	res := Resume{Log: l}
	data, err := io.ReadAll(r)
	if err != nil {
		return res, fmt.Errorf("logdata: %v", err)
	}
	// Every line the StreamWriter flushed ends in '\n'; anything after the
	// last newline is a torn final line and cannot be trusted.
	if i := bytes.LastIndexByte(data, '\n'); i < 0 {
		data = nil
	} else {
		data = data[:i+1]
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var cur *Event
	sdc, due := 0, 0
	mark := 0 // events covered by the last complete checkpoint
scan:
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		tag, kv, err := splitLine(line)
		if err != nil {
			break // corrupt tail: trust only up to the last #CHK
		}
		switch tag {
		case "#HEADER":
			l.Device = unfield(kv["device"])
			l.Kernel = unfield(kv["kernel"])
			l.Input = unfield(kv["input"])
			l.Facility = unfield(kv["facility"])
			if l.Seed, err = strconv.ParseUint(kv["seed"], 10, 64); err != nil {
				return res, fmt.Errorf("logdata: bad seed: %v", err)
			}
			if l.OutputDims, err = parseDims(kv["dims"]); err != nil {
				return res, fmt.Errorf("logdata: %v", err)
			}
		case "#BEGIN":
			l.Executions = atoi(kv["executions"])
			l.BeamHours, _ = strconv.ParseFloat(kv["beam_hours"], 64)
		case "#SDC":
			l.Events = append(l.Events, Event{Class: fault.SDC,
				Exec: atoi(kv["exec"]), Resource: unfield(kv["resource"]), Scope: unfield(kv["scope"])})
			cur = &l.Events[len(l.Events)-1]
			sdc++
		case "#ERR":
			if cur == nil || cur.Class != fault.SDC {
				return res, fmt.Errorf("logdata: #ERR outside #SDC")
			}
			read, err1 := strconv.ParseFloat(kv["read"], 64)
			exp, err2 := strconv.ParseFloat(kv["expected"], 64)
			if err1 != nil || err2 != nil {
				break scan // truncated float: drop the unflushed tail
			}
			cur.Mismatches = append(cur.Mismatches, metrics.Mismatch{
				Coord:     grid.Coord{X: atoi(kv["x"]), Y: atoi(kv["y"]), Z: atoi(kv["z"])},
				Read:      read,
				Expected:  exp,
				RelErrPct: metrics.RelativeErrorPct(read, exp),
			})
		case "#CRASH":
			l.Events = append(l.Events, Event{Class: fault.Crash,
				Exec: atoi(kv["exec"]), Resource: unfield(kv["resource"])})
			cur = nil
			due++
		case "#HANG":
			l.Events = append(l.Events, Event{Class: fault.Hang,
				Exec: atoi(kv["exec"]), Resource: unfield(kv["resource"])})
			cur = nil
			due++
		case "#CHK":
			// Only trust a checkpoint whose counts agree with the events
			// actually present: a mismatch means this line (or the body
			// before it) is damaged, so salvage falls back to the previous
			// checkpoint rather than failing recovery outright.
			if atoi(kv["sdc"]) != sdc || atoi(kv["due"]) != due {
				break scan
			}
			res.Next = atoi(kv["next"])
			res.Masked = atoi(kv["masked"])
			mark = len(l.Events)
			cur = nil
		case "#EPOCH":
			// Adaptive budget record: trusted only when its cumulative SDC
			// count matches the events actually present, like #CHK.
			m, err := parseEpoch(kv)
			if err != nil || m.SDC != sdc {
				break scan
			}
			l.Epochs = append(l.Epochs, m)
			cur = nil
		case "#END":
			// Same defence for the trailer: only a count-consistent #END
			// proves the campaign completed.
			if atoi(kv["sdc"]) != sdc || atoi(kv["due"]) != due {
				break scan
			}
			res.Complete = true
			res.Masked = atoi(kv["masked"])
			mark = len(l.Events)
			break scan
		default:
			break scan // unknown tag: treat as a corrupt tail
		}
	}
	if err := sc.Err(); err != nil {
		return res, fmt.Errorf("logdata: %v", err)
	}
	l.Events = l.Events[:mark]
	l.Masked = res.Masked
	if !res.Complete {
		// Epoch records past the salvage point annotate work that is
		// being discarded; keep only marks the trusted prefix covers.
		kept := l.Epochs[:0]
		for _, m := range l.Epochs {
			if m.Consumed <= res.Next {
				kept = append(kept, m)
			}
		}
		l.Epochs = kept
	}
	return res, nil
}
