// Package logdata reads and writes campaign logs in a CAROL-style text
// format, mirroring the public log repository the paper releases for
// third-party re-analysis ("we made available all our corrupted outputs in
// a publicly accessible repository so to allow users to apply different
// filters", §III). Every corrupted element is logged with exact (hex
// float) values so any relative-error filter can be re-applied offline.
package logdata

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"radcrit/internal/fault"
	"radcrit/internal/grid"
	"radcrit/internal/metrics"
)

// Event is one non-masked irradiated execution.
type Event struct {
	// Class is SDC, Crash or Hang (masked runs are not logged
	// individually, as in the real campaigns).
	Class fault.OutcomeClass
	// Exec is the execution index within the campaign.
	Exec int
	// Resource is the struck resource name.
	Resource string
	// Scope is the injection scope name (empty for crash/hang).
	Scope string
	// Mismatches lists corrupted elements (SDC only).
	Mismatches []metrics.Mismatch
}

// EpochMark is one adaptive-campaign budget-epoch record (an #EPOCH
// line): the planned allocation the epoch ran under, where it actually
// ended, and the stop rule's verdict there. Marks are an audit trail —
// stop decisions are pure functions of (SDC, Consumed), so a replay
// re-derives them from the events rather than trusting the mark — but
// they let plan+log reconstruct the budget state machine byte for byte.
type EpochMark struct {
	// Epoch is the 1-based budget epoch index.
	Epoch int
	// Alloc is the strike budget the cell held during this epoch.
	Alloc int
	// Consumed is the chunk-aligned strike count where the epoch ended.
	Consumed int
	// SDC is the cumulative SDC count at Consumed (consistency-checked
	// against the event body on parse, like #CHK counts).
	SDC int
	// HalfWidth is the confidence-sequence half-width at the decision.
	HalfWidth float64
	// Stopped reports that the stop rule fired: the cell is complete at
	// Consumed even though Consumed < the plan budget.
	Stopped bool
}

// Log is one campaign's record.
type Log struct {
	Device     string
	Kernel     string
	Input      string
	Facility   string
	Seed       uint64
	Executions int
	BeamHours  float64
	OutputDims grid.Dims
	// Masked is the number of masked executions. Masked runs carry no
	// per-execution payload, so (as in the real campaigns) they are
	// recorded as a single count in the trailer rather than as events —
	// without it a parsed log could not reconstruct the outcome tally.
	Masked int
	Events []Event
	// Epochs holds the #EPOCH budget records of an adaptive campaign, in
	// file order. Write ignores it (epoch records are positional and only
	// the StreamWriter knows the positions); parsers populate it.
	Epochs []EpochMark
}

// SDCCount returns the number of SDC events.
func (l *Log) SDCCount() int {
	n := 0
	for _, e := range l.Events {
		if e.Class == fault.SDC {
			n++
		}
	}
	return n
}

// CrashHangCount returns the number of crash plus hang events.
func (l *Log) CrashHangCount() int {
	n := 0
	for _, e := range l.Events {
		if e.Class == fault.Crash || e.Class == fault.Hang {
			n++
		}
	}
	return n
}

// Reports reconstructs the per-SDC mismatch reports, onto which any
// relative-error filter can be re-applied.
func (l *Log) Reports() []*metrics.Report {
	var reps []*metrics.Report
	for _, e := range l.Events {
		if e.Class != fault.SDC {
			continue
		}
		reps = append(reps, &metrics.Report{
			Dims:          l.OutputDims,
			TotalElements: l.OutputDims.Len(),
			Mismatches:    e.Mismatches,
		})
	}
	return reps
}

// Write serialises the log. Float values use Go hex-float formatting for
// bit-exact round trips.
func Write(w io.Writer, l *Log) error {
	bw := bufio.NewWriter(w)
	writeHeader(bw, l)
	for _, e := range l.Events {
		writeEvent(bw, e)
	}
	fmt.Fprintf(bw, "#END sdc:%d due:%d masked:%d\n", l.SDCCount(), l.CrashHangCount(), l.Masked)
	return bw.Flush()
}

// writeHeader emits the #HEADER and #BEGIN lines of the format.
func writeHeader(bw *bufio.Writer, l *Log) {
	fmt.Fprintf(bw, "#HEADER device:%s kernel:%s input:%s facility:%s seed:%d dims:%d,%d,%d\n",
		field(l.Device), field(l.Kernel), field(l.Input), field(l.Facility),
		l.Seed, l.OutputDims.X, l.OutputDims.Y, l.OutputDims.Z)
	fmt.Fprintf(bw, "#BEGIN executions:%d beam_hours:%s\n",
		l.Executions, strconv.FormatFloat(l.BeamHours, 'x', -1, 64))
}

// writeEvent emits one event's lines (shared by Write and StreamWriter).
func writeEvent(bw *bufio.Writer, e Event) {
	switch e.Class {
	case fault.SDC:
		fmt.Fprintf(bw, "#SDC exec:%d resource:%s scope:%s count:%d\n",
			e.Exec, field(e.Resource), field(e.Scope), len(e.Mismatches))
		for _, m := range e.Mismatches {
			fmt.Fprintf(bw, "#ERR x:%d y:%d z:%d read:%s expected:%s\n",
				m.Coord.X, m.Coord.Y, m.Coord.Z,
				strconv.FormatFloat(m.Read, 'x', -1, 64),
				strconv.FormatFloat(m.Expected, 'x', -1, 64))
		}
	case fault.Crash:
		fmt.Fprintf(bw, "#CRASH exec:%d resource:%s\n", e.Exec, field(e.Resource))
	case fault.Hang:
		fmt.Fprintf(bw, "#HANG exec:%d resource:%s\n", e.Exec, field(e.Resource))
	}
}

// writeEpoch emits one #EPOCH budget record. The half-width uses hex
// floats like every float in the format, for bit-exact round trips.
func writeEpoch(bw *bufio.Writer, m EpochMark) {
	stopped := 0
	if m.Stopped {
		stopped = 1
	}
	fmt.Fprintf(bw, "#EPOCH epoch:%d alloc:%d consumed:%d sdc:%d hw:%s stopped:%d\n",
		m.Epoch, m.Alloc, m.Consumed, m.SDC,
		strconv.FormatFloat(m.HalfWidth, 'x', -1, 64), stopped)
}

// parseEpoch decodes an #EPOCH line's fields.
func parseEpoch(kv map[string]string) (EpochMark, error) {
	hw, err := strconv.ParseFloat(kv["hw"], 64)
	if err != nil {
		return EpochMark{}, fmt.Errorf("bad epoch half-width: %v", err)
	}
	return EpochMark{
		Epoch:     atoi(kv["epoch"]),
		Alloc:     atoi(kv["alloc"]),
		Consumed:  atoi(kv["consumed"]),
		SDC:       atoi(kv["sdc"]),
		HalfWidth: hw,
		Stopped:   kv["stopped"] == "1",
	}, nil
}

// field sanitises a free-text field for the space-separated format.
func field(s string) string {
	if s == "" {
		return "-"
	}
	return strings.ReplaceAll(s, " ", "_")
}

// HeaderField returns the sanitised form a free-text header field is
// serialised in. The space→underscore escaping is lossy — Parse cannot
// recover the original — so code comparing a parsed header against live
// metadata must escape the live side with this function rather than
// expect the parsed side to round-trip.
func HeaderField(s string) string {
	return field(s)
}

func unfield(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

// Parse reads a log written by Write.
func Parse(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	l := &Log{}
	var cur *Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		tag, kv, err := splitLine(line)
		if err != nil {
			return nil, fmt.Errorf("logdata: line %d: %v", lineNo, err)
		}
		switch tag {
		case "#HEADER":
			l.Device = unfield(kv["device"])
			l.Kernel = unfield(kv["kernel"])
			l.Input = unfield(kv["input"])
			l.Facility = unfield(kv["facility"])
			l.Seed, err = strconv.ParseUint(kv["seed"], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("logdata: line %d: bad seed: %v", lineNo, err)
			}
			if l.OutputDims, err = parseDims(kv["dims"]); err != nil {
				return nil, fmt.Errorf("logdata: line %d: %v", lineNo, err)
			}
		case "#BEGIN":
			if l.Executions, err = strconv.Atoi(kv["executions"]); err != nil {
				return nil, fmt.Errorf("logdata: line %d: bad executions: %v", lineNo, err)
			}
			if l.BeamHours, err = strconv.ParseFloat(kv["beam_hours"], 64); err != nil {
				return nil, fmt.Errorf("logdata: line %d: bad beam_hours: %v", lineNo, err)
			}
		case "#SDC":
			l.Events = append(l.Events, Event{Class: fault.SDC,
				Exec: atoi(kv["exec"]), Resource: unfield(kv["resource"]), Scope: unfield(kv["scope"])})
			cur = &l.Events[len(l.Events)-1]
		case "#ERR":
			if cur == nil || cur.Class != fault.SDC {
				return nil, fmt.Errorf("logdata: line %d: #ERR outside #SDC", lineNo)
			}
			read, err1 := strconv.ParseFloat(kv["read"], 64)
			exp, err2 := strconv.ParseFloat(kv["expected"], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("logdata: line %d: bad float", lineNo)
			}
			cur.Mismatches = append(cur.Mismatches, metrics.Mismatch{
				Coord:     grid.Coord{X: atoi(kv["x"]), Y: atoi(kv["y"]), Z: atoi(kv["z"])},
				Read:      read,
				Expected:  exp,
				RelErrPct: metrics.RelativeErrorPct(read, exp),
			})
		case "#CRASH":
			l.Events = append(l.Events, Event{Class: fault.Crash,
				Exec: atoi(kv["exec"]), Resource: unfield(kv["resource"])})
			cur = nil
		case "#HANG":
			l.Events = append(l.Events, Event{Class: fault.Hang,
				Exec: atoi(kv["exec"]), Resource: unfield(kv["resource"])})
			cur = nil
		case "#CHK":
			// Streamed checkpoint record: its cumulative SDC/DUE counts must
			// agree with the events seen so far (the masked count has no
			// event trail to check against).
			if atoi(kv["sdc"]) != l.SDCCount() || atoi(kv["due"]) != l.CrashHangCount() {
				return nil, fmt.Errorf("logdata: line %d: checkpoint counts disagree with body", lineNo)
			}
			cur = nil
		case "#EPOCH":
			// Adaptive budget record: like #CHK, its cumulative SDC count
			// must agree with the events seen so far.
			m, err := parseEpoch(kv)
			if err != nil {
				return nil, fmt.Errorf("logdata: line %d: %v", lineNo, err)
			}
			if m.SDC != l.SDCCount() {
				return nil, fmt.Errorf("logdata: line %d: epoch counts disagree with body", lineNo)
			}
			l.Epochs = append(l.Epochs, m)
			cur = nil
		case "#END":
			// Consistency check against the trailer counts.
			if atoi(kv["sdc"]) != l.SDCCount() || atoi(kv["due"]) != l.CrashHangCount() {
				return nil, fmt.Errorf("logdata: trailer counts disagree with body")
			}
			l.Masked = atoi(kv["masked"])
		default:
			return nil, fmt.Errorf("logdata: line %d: unknown tag %q", lineNo, tag)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("logdata: %v", err)
	}
	return l, nil
}

func splitLine(line string) (tag string, kv map[string]string, err error) {
	parts := strings.Fields(line)
	if len(parts) == 0 || !strings.HasPrefix(parts[0], "#") {
		return "", nil, fmt.Errorf("malformed line %q", line)
	}
	kv = make(map[string]string, len(parts)-1)
	for _, p := range parts[1:] {
		k, v, ok := strings.Cut(p, ":")
		if !ok {
			return "", nil, fmt.Errorf("malformed field %q", p)
		}
		kv[k] = v
	}
	return parts[0], kv, nil
}

func parseDims(s string) (grid.Dims, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return grid.Dims{}, fmt.Errorf("bad dims %q", s)
	}
	var d grid.Dims
	var err error
	if d.X, err = strconv.Atoi(parts[0]); err != nil {
		return d, err
	}
	if d.Y, err = strconv.Atoi(parts[1]); err != nil {
		return d, err
	}
	if d.Z, err = strconv.Atoi(parts[2]); err != nil {
		return d, err
	}
	return d, nil
}

func atoi(s string) int {
	v, _ := strconv.Atoi(s)
	return v
}
