package logdata

import (
	"math"
	"strings"
	"testing"

	"radcrit/internal/fault"
	"radcrit/internal/grid"
	"radcrit/internal/metrics"
)

func sampleLog() *Log {
	return &Log{
		Device:     "K40",
		Kernel:     "DGEMM",
		Input:      "2048x2048",
		Facility:   "LANSCE",
		Seed:       42,
		Executions: 100000,
		BeamHours:  12.5,
		OutputDims: grid.Dims{X: 2048, Y: 2048, Z: 1},
		Events: []Event{
			{
				Class:    fault.SDC,
				Exec:     13,
				Resource: "l2-cache",
				Scope:    "cache-line",
				Mismatches: []metrics.Mismatch{
					{Coord: grid.Coord{X: 5, Y: 7}, Read: 1.25, Expected: 2.5,
						RelErrPct: metrics.RelativeErrorPct(1.25, 2.5)},
					{Coord: grid.Coord{X: 6, Y: 7}, Read: 1e-300, Expected: 3.25,
						RelErrPct: metrics.RelativeErrorPct(1e-300, 3.25)},
				},
			},
			{Class: fault.Crash, Exec: 20, Resource: "scheduler"},
			{Class: fault.Hang, Exec: 31, Resource: "control-logic"},
		},
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	l := sampleLog()
	var sb strings.Builder
	if err := Write(&sb, l); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Device != l.Device || got.Kernel != l.Kernel || got.Input != l.Input ||
		got.Facility != l.Facility || got.Seed != l.Seed ||
		got.Executions != l.Executions || got.OutputDims != l.OutputDims {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.BeamHours != l.BeamHours {
		t.Fatalf("beam hours %v != %v (hex float round trip)", got.BeamHours, l.BeamHours)
	}
	if len(got.Events) != len(l.Events) {
		t.Fatalf("events %d != %d", len(got.Events), len(l.Events))
	}
	for i, e := range got.Events {
		want := l.Events[i]
		if e.Class != want.Class || e.Exec != want.Exec || e.Resource != want.Resource {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, e, want)
		}
		for j, m := range e.Mismatches {
			wm := want.Mismatches[j]
			if m.Read != wm.Read || m.Expected != wm.Expected || m.Coord != wm.Coord {
				t.Fatalf("mismatch %d/%d: %+v vs %+v", i, j, m, wm)
			}
		}
	}
}

func TestExactFloatRoundTrip(t *testing.T) {
	l := sampleLog()
	// Use a value with no short decimal representation.
	l.Events[0].Mismatches[0].Read = math.Nextafter(1.0, 2.0)
	var sb strings.Builder
	if err := Write(&sb, l); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Events[0].Mismatches[0].Read != math.Nextafter(1.0, 2.0) {
		t.Fatal("float not bit-exact after round trip")
	}
}

func TestCounts(t *testing.T) {
	l := sampleLog()
	if l.SDCCount() != 1 || l.CrashHangCount() != 2 {
		t.Fatal("counts wrong")
	}
}

func TestReports(t *testing.T) {
	l := sampleLog()
	reps := l.Reports()
	if len(reps) != 1 {
		t.Fatalf("reports = %d", len(reps))
	}
	if reps[0].Count() != 2 {
		t.Fatal("mismatch count wrong")
	}
	if reps[0].TotalElements != 2048*2048 {
		t.Fatal("total elements wrong")
	}
	// Different filters can be re-applied offline (the whole point of
	// publishing logs).
	if reps[0].Filter(49).Count() != 2 {
		t.Fatal("both mismatches exceed 49%")
	}
	if reps[0].Filter(51).Count() != 1 {
		t.Fatal("only one mismatch exceeds 51%")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []string{
		"not a log",
		"#WHAT x:1",
		"#ERR x:1 y:2 z:0 read:1 expected:2", // ERR outside SDC
		"#HEADER device:K40 kernel:D input:i facility:L seed:zzz dims:1,1,1",
		"#HEADER device:K40 kernel:D input:i facility:L seed:1 dims:1,1",
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Fatalf("accepted malformed log %q", c)
		}
	}
}

func TestParseDetectsTrailerMismatch(t *testing.T) {
	l := sampleLog()
	var sb strings.Builder
	if err := Write(&sb, l); err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(sb.String(), "#END sdc:1", "#END sdc:9", 1)
	if _, err := Parse(strings.NewReader(corrupted)); err == nil {
		t.Fatal("trailer mismatch not detected")
	}
}

func TestEmptyFieldsRoundTrip(t *testing.T) {
	l := sampleLog()
	l.Events[1].Resource = ""
	var sb strings.Builder
	if err := Write(&sb, l); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Events[1].Resource != "" {
		t.Fatal("empty field did not round trip")
	}
}

func TestSpacesInFields(t *testing.T) {
	l := sampleLog()
	l.Device = "NVIDIA Tesla K40"
	var sb strings.Builder
	if err := Write(&sb, l); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got.Device, "NVIDIA") {
		t.Fatalf("device mangled: %q", got.Device)
	}
	// The escaping is lossy: Parse yields the underscore form, and
	// HeaderField is how callers map live metadata onto it.
	if got.Device != HeaderField(l.Device) {
		t.Fatalf("parsed device %q, HeaderField gives %q", got.Device, HeaderField(l.Device))
	}
}

func TestHeaderField(t *testing.T) {
	cases := map[string]string{
		"":                 "-",
		"grid 4":           "grid_4",
		"NVIDIA Tesla K40": "NVIDIA_Tesla_K40",
		"dgemm:128":        "dgemm:128",
	}
	for in, want := range cases {
		if got := HeaderField(in); got != want {
			t.Errorf("HeaderField(%q) = %q, want %q", in, got, want)
		}
	}
}
