package logdata

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"radcrit/internal/fault"
	"radcrit/internal/grid"
	"radcrit/internal/metrics"
)

// sampleLog builds a small but fully featured log for fuzz seeding.
func fuzzSampleLog() *Log {
	return &Log{
		Device:     "K40",
		Kernel:     "DGEMM",
		Input:      "128x128",
		Facility:   "LANSCE",
		Seed:       42,
		Executions: 1000,
		BeamHours:  12.5,
		OutputDims: grid.Dims{X: 128, Y: 128, Z: 1},
		Masked:     7,
		Events: []Event{
			{Class: fault.SDC, Exec: 3, Resource: "register-file", Scope: "accum-term",
				Mismatches: []metrics.Mismatch{
					{Coord: grid.Coord{X: 1, Y: 2}, Read: 1.5, Expected: 1.0, RelErrPct: 50},
					{Coord: grid.Coord{X: 7, Y: 9}, Read: math.NaN(), Expected: 2.0, RelErrPct: metrics.InfiniteRelErr},
				}},
			{Class: fault.Crash, Exec: 10, Resource: "scheduler"},
			{Class: fault.Hang, Exec: 21, Resource: "dispatcher"},
		},
	}
}

// FuzzLogRoundTrip feeds arbitrary bytes to Parse; whatever it accepts
// must survive a Write→Parse round trip with identical semantics, and
// Write must be canonical (a second round trip reproduces the same
// bytes). This pins the format against parser/serialiser drift — the
// public-log re-analysis path depends on it.
func FuzzLogRoundTrip(f *testing.F) {
	var sb strings.Builder
	if err := Write(&sb, fuzzSampleLog()); err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(sb.String()))
	f.Add([]byte("#HEADER device:K40 kernel:D input:- facility:- seed:1 dims:2,2,1\n#END sdc:0 due:0\n"))
	f.Add([]byte("#SDC exec:1 resource:- scope:- count:0\n#ERR x:0 y:0 z:0 read:0x1p+0 expected:0x1.8p+0\n"))
	f.Add([]byte("#CHK next:64 masked:3 sdc:0 due:0\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Parse(bytes.NewReader(data))
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		var first strings.Builder
		if err := Write(&first, l); err != nil {
			t.Fatalf("Write failed on parsed log: %v", err)
		}
		l2, err := Parse(strings.NewReader(first.String()))
		if err != nil {
			t.Fatalf("re-parse of written log failed: %v\n%s", err, first.String())
		}
		if !sameLog(l, l2) {
			t.Fatalf("round trip changed the log\nbefore: %+v\nafter:  %+v", l, l2)
		}
		var second strings.Builder
		if err := Write(&second, l2); err != nil {
			t.Fatal(err)
		}
		if first.String() != second.String() {
			t.Fatalf("Write is not canonical:\n%s\nvs\n%s", first.String(), second.String())
		}
	})
}

// sameLog compares logs semantically, with floats by bit pattern (NaN
// reads are legal in mismatch data).
func sameLog(a, b *Log) bool {
	if a.Device != b.Device || a.Kernel != b.Kernel || a.Input != b.Input ||
		a.Facility != b.Facility || a.Seed != b.Seed || a.Executions != b.Executions ||
		math.Float64bits(a.BeamHours) != math.Float64bits(b.BeamHours) ||
		a.OutputDims != b.OutputDims || a.Masked != b.Masked || len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ea.Class != eb.Class || ea.Exec != eb.Exec || ea.Resource != eb.Resource ||
			ea.Scope != eb.Scope || len(ea.Mismatches) != len(eb.Mismatches) {
			return false
		}
		for j := range ea.Mismatches {
			ma, mb := ea.Mismatches[j], eb.Mismatches[j]
			if ma.Coord != mb.Coord ||
				math.Float64bits(ma.Read) != math.Float64bits(mb.Read) ||
				math.Float64bits(ma.Expected) != math.Float64bits(mb.Expected) ||
				math.Float64bits(ma.RelErrPct) != math.Float64bits(mb.RelErrPct) {
				return false
			}
		}
	}
	return true
}

// FuzzParseResume feeds arbitrary byte prefixes to the crash-recovery
// parser: it must never panic, and whatever it salvages must itself be a
// serialisable log whose event counts agree with its salvage counters.
func FuzzParseResume(f *testing.F) {
	var sb strings.Builder
	meta := fuzzSampleLog()
	sw, err := NewStreamWriter(&sb, meta)
	if err != nil {
		f.Fatal(err)
	}
	sw.AddMasked(3)
	for _, ev := range meta.Events {
		sw.WriteEvent(ev)
	}
	sw.Checkpoint(10)
	sw.WriteEvent(Event{Class: fault.Crash, Exec: 12, Resource: "bus"})
	full := sb.String()
	for _, cut := range []int{len(full), len(full) / 2, len(full) / 3} {
		f.Add([]byte(full[:cut]))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := ParseResume(bytes.NewReader(data))
		if err != nil {
			return
		}
		if res.Log == nil {
			t.Fatal("nil salvage log without error")
		}
		if res.Log.Masked != res.Masked {
			t.Fatalf("salvaged log masked %d != resume masked %d", res.Log.Masked, res.Masked)
		}
		var out strings.Builder
		if err := Write(&out, res.Log); err != nil {
			t.Fatalf("salvaged log not serialisable: %v", err)
		}
		if _, err := Parse(strings.NewReader(out.String())); err != nil {
			t.Fatalf("salvaged log not re-parseable: %v", err)
		}
	})
}
