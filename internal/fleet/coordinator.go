package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"radcrit/internal/sched"
	"radcrit/internal/service"
	"radcrit/internal/tenant"
)

// Options tunes the coordinator's failure model. The zero value selects
// production-ish defaults; tests shrink everything.
type Options struct {
	// LeaseTTL is how long a lease survives without a heartbeat before it
	// expires and its cell is requeued (default 10s).
	LeaseTTL time.Duration
	// Heartbeat is the interval workers are told to heartbeat at
	// (default LeaseTTL/4).
	Heartbeat time.Duration
	// Poll is the idle-worker poll interval workers are told to use
	// (default 500ms).
	Poll time.Duration
	// WorkerTTL is how long a silent worker stays registered — and counts
	// as "healthy" for the degrade-to-local decision (default 3×LeaseTTL).
	WorkerTTL time.Duration
	// SpeculateAfter is the straggler threshold: an item leased for longer
	// than this may be speculatively re-dispatched to an idle worker
	// (work-stealing), first result wins. <= 0 selects the default 30s;
	// set very large to effectively disable.
	SpeculateAfter time.Duration
	// MaxAttempts bounds how many times an item is requeued after losing
	// all its leases before the coordinator gives up and hands the cell
	// back for local execution (default 5).
	MaxAttempts int
	// Logf receives coordinator lifecycle lines (nil = silent).
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 10 * time.Second
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = opts.LeaseTTL / 4
	}
	if opts.Poll <= 0 {
		opts.Poll = 500 * time.Millisecond
	}
	if opts.WorkerTTL <= 0 {
		opts.WorkerTTL = 3 * opts.LeaseTTL
	}
	if opts.SpeculateAfter <= 0 {
		opts.SpeculateAfter = 30 * time.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	return opts
}

// workerState is the coordinator's record of one registered worker.
type workerState struct {
	id        string
	name      string
	lastSeen  time.Time
	leases    int
	completed int
}

// lease is one grant of an item to a worker.
type lease struct {
	id       string
	item     *item
	worker   string
	started  time.Time
	deadline time.Time
	strikes  int
}

// item is one cell awaiting, or under, remote execution.
type item struct {
	id  string
	seq uint64 // weighted-fair queue submission sequence
	req service.RemoteCell

	leases        map[string]*lease
	queued        bool // currently on the pending queue
	attempts      int  // requeues consumed
	firstDispatch time.Time

	// bestStrikes/bestLog are the furthest checkpoint any lease has
	// streamed back — the seed for requeues and local fallback.
	bestStrikes int
	bestLog     []byte
	// delivered (guarded by cbMu, not the coordinator mutex) is the last
	// strike count handed to the manager's Progress/SaveLog callbacks;
	// it keeps delivery monotonic when heartbeats race.
	cbMu      sync.Mutex
	delivered int

	completed bool
	fallback  bool // completed by giving up: run locally instead
	res       *service.RemoteResult
	cellErr   error
	done      chan struct{}
}

// Coordinator owns the fleet: worker registry, pending queue, lease
// table, and the janitor that turns silence into requeues. It implements
// service.RemoteRunner; mount its HTTP surface with Routes.
type Coordinator struct {
	opts Options

	mu      sync.Mutex
	workers map[string]*workerState
	items   map[string]*item
	leases  map[string]*lease
	// pending is the dispatch queue: weighted-fair across the tenants of
	// the jobs that own the cells, so one tenant's wide job cannot starve
	// the fleet for everyone else. Within a tenant, requeued items re-enter
	// at a higher priority than fresh ones (the pre-WFQ requeue-at-front
	// behavior, now tenant-scoped).
	pending  *sched.Queue[*item]
	seq      uint64
	counters Counters

	stop     chan struct{}
	stopOnce sync.Once
	janitorW sync.WaitGroup
}

// NewCoordinator builds a coordinator and starts its janitor. Close it
// when the daemon shuts down.
func NewCoordinator(opts Options) *Coordinator {
	c := &Coordinator{
		opts:    opts.withDefaults(),
		workers: map[string]*workerState{},
		items:   map[string]*item{},
		leases:  map[string]*lease{},
		pending: sched.NewQueue[*item](),
		stop:    make(chan struct{}),
	}
	c.janitorW.Add(1)
	go c.janitor()
	return c
}

// Close stops the janitor. In-flight RunRemote calls are the manager's
// to cancel (they hold the job context).
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.janitorW.Wait()
}

func (c *Coordinator) nextIDLocked(prefix string) string {
	c.seq++
	return fmt.Sprintf("%s-%d", prefix, c.seq)
}

// healthyLocked reports whether any worker has been seen recently enough
// to be trusted with a lease.
func (c *Coordinator) healthyLocked(now time.Time) bool {
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.opts.WorkerTTL {
			return true
		}
	}
	return false
}

// --- service.RemoteRunner ---

// RunRemote queues one cell for the fleet and waits for its first
// result. It returns service.ErrRemoteUnavailable — telling the manager
// to run the cell locally from the streamed checkpoint — when no worker
// is healthy, immediately or at any later point where the item holds no
// lease, or after MaxAttempts lease losses.
func (c *Coordinator) RunRemote(ctx context.Context, req service.RemoteCell) (*service.RemoteResult, error) {
	now := time.Now()
	c.mu.Lock()
	if !c.healthyLocked(now) {
		c.counters.LocalFallbacks++
		c.mu.Unlock()
		return nil, service.ErrRemoteUnavailable
	}
	it := &item{
		id:          c.nextIDLocked("it"),
		req:         req,
		leases:      map[string]*lease{},
		bestStrikes: 0,
		bestLog:     append([]byte(nil), req.PrevLog...),
		done:        make(chan struct{}),
	}
	it.seq = c.seq
	c.items[it.id] = it
	c.enqueueLocked(it, 0)
	c.mu.Unlock()
	defer c.finishItem(it)

	check := c.opts.LeaseTTL / 2
	if check > 500*time.Millisecond {
		check = 500 * time.Millisecond
	}
	if check < 10*time.Millisecond {
		check = 10 * time.Millisecond
	}
	tick := time.NewTicker(check)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-it.done:
			switch {
			case it.fallback:
				return nil, service.ErrRemoteUnavailable
			case it.cellErr != nil:
				return nil, it.cellErr
			default:
				return it.res, nil
			}
		case <-tick.C:
			now := time.Now()
			c.mu.Lock()
			if !it.completed && len(it.leases) == 0 && !c.healthyLocked(now) {
				// The fleet emptied out under us: degrade rather than wait
				// for workers that may never come back.
				it.completed, it.fallback = true, true
				c.counters.LocalFallbacks++
				close(it.done)
			}
			c.mu.Unlock()
		}
	}
}

// finishItem removes an item and all its leases from the tables; any
// still-working speculative leaseholder gets 410 on its next heartbeat
// and abandons.
func (c *Coordinator) finishItem(it *item) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.items, it.id)
	c.removeFromPendingLocked(it)
	c.dropItemLeasesLocked(it)
}

// tenantOf names the namespace an item schedules under; pre-tenancy
// managers leave RemoteCell.Tenant empty.
func tenantOf(req service.RemoteCell) string {
	if req.Tenant == "" {
		return tenant.Default
	}
	return req.Tenant
}

// enqueueLocked puts an item on the weighted-fair dispatch queue.
// Requeued items (a lost lease's salvage) enter at priority 1, above
// fresh cells' priority 0, so a tenant's salvaged checkpoints resume
// before its untouched backlog — the old requeue-at-front behavior,
// scoped to the tenant.
func (c *Coordinator) enqueueLocked(it *item, priority int) {
	weight := it.req.Weight
	if weight < 1 {
		weight = 1
	}
	it.queued = true
	c.pending.Push(tenantOf(it.req), weight, priority, it.seq, it.req.CostNS, it)
}

func (c *Coordinator) removeFromPendingLocked(it *item) {
	if !it.queued {
		return
	}
	c.pending.Remove(tenantOf(it.req), it.seq)
	it.queued = false
}

func (c *Coordinator) dropItemLeasesLocked(it *item) {
	for id, l := range it.leases {
		if w := c.workers[l.worker]; w != nil {
			w.leases--
		}
		delete(c.leases, id)
		delete(it.leases, id)
	}
}

// requeueLocked puts an item that lost its last lease back at the front
// of the queue, seeded from its best streamed checkpoint — or gives up
// after MaxAttempts and hands the cell back for local execution.
func (c *Coordinator) requeueLocked(it *item) {
	if it.completed || it.queued {
		return
	}
	it.attempts++
	if it.attempts >= c.opts.MaxAttempts {
		it.completed, it.fallback = true, true
		c.counters.LocalFallbacks++
		c.opts.Logf("fleet: item %s (%s): %d lease losses, degrading to local execution", it.id, it.req.Key, it.attempts)
		close(it.done)
		return
	}
	c.counters.Requeues++
	c.counters.RequeuedStrikes += it.bestStrikes
	c.enqueueLocked(it, 1)
	c.opts.Logf("fleet: item %s (%s): requeued from strike %d (attempt %d)", it.id, it.req.Key, it.bestStrikes, it.attempts)
}

// deliver hands the item's best checkpoint to the manager's callbacks,
// monotonically: a stale heartbeat that lost the race never overwrites a
// newer log or walks progress backwards.
func (c *Coordinator) deliver(it *item) {
	it.cbMu.Lock()
	defer it.cbMu.Unlock()
	c.mu.Lock()
	strikes, log := it.bestStrikes, it.bestLog
	c.mu.Unlock()
	if strikes <= it.delivered {
		return
	}
	it.delivered = strikes
	if it.req.SaveLog != nil {
		it.req.SaveLog(log)
	}
	if it.req.Progress != nil {
		it.req.Progress(strikes)
	}
}

// --- janitor ---

func (c *Coordinator) janitor() {
	defer c.janitorW.Done()
	interval := c.opts.LeaseTTL / 4
	if interval > time.Second {
		interval = time.Second
	}
	if interval < 25*time.Millisecond {
		interval = 25 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.sweep(time.Now())
		}
	}
}

// sweep expires overdue leases (requeueing orphaned items) and forgets
// long-silent workers.
func (c *Coordinator) sweep(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, l := range c.leases {
		if now.Before(l.deadline) {
			continue
		}
		c.counters.LeaseExpiries++
		c.opts.Logf("fleet: lease %s (worker %s, %s) expired at strike %d", id, l.worker, l.item.req.Key, l.strikes)
		if w := c.workers[l.worker]; w != nil {
			w.leases--
		}
		delete(c.leases, id)
		delete(l.item.leases, id)
		if !l.item.completed && len(l.item.leases) == 0 {
			c.requeueLocked(l.item)
		}
	}
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) > c.opts.WorkerTTL {
			c.counters.WorkersExpired++
			c.opts.Logf("fleet: worker %s (%s) silent for %v, deregistered", id, w.name, now.Sub(w.lastSeen).Round(time.Millisecond))
			delete(c.workers, id)
		}
	}
}

// --- dispatch ---

// dispatchLocked picks the next item for a polling worker: the queue
// head, or — when the queue is empty — a speculative duplicate lease on
// the longest-running straggler this worker is not already working on.
func (c *Coordinator) dispatchLocked(w *workerState, now time.Time) (*item, bool) {
	if it, ok := c.pending.Pop(); ok {
		it.queued = false
		return it, false
	}
	var best *item
	for _, it := range c.items {
		if it.completed || it.queued || len(it.leases) == 0 || len(it.leases) >= 2 {
			continue
		}
		held := false
		for _, l := range it.leases {
			if l.worker == w.id {
				held = true
				break
			}
		}
		if held || now.Sub(it.firstDispatch) < c.opts.SpeculateAfter {
			continue
		}
		if best == nil || it.firstDispatch.Before(best.firstDispatch) {
			best = it
		}
	}
	return best, best != nil
}

// grantLocked creates a lease of it for worker w and renders the wire
// payload.
func (c *Coordinator) grantLocked(w *workerState, it *item, now time.Time) WorkItem {
	l := &lease{
		id:       c.nextIDLocked("l"),
		item:     it,
		worker:   w.id,
		started:  now,
		deadline: now.Add(c.opts.LeaseTTL),
	}
	it.leases[l.id] = l
	c.leases[l.id] = l
	w.leases++
	if it.firstDispatch.IsZero() {
		it.firstDispatch = now
	}
	c.counters.LeasesDispatched++
	return WorkItem{
		Lease:           l.id,
		Key:             it.req.Key,
		Spec:            it.req.Spec,
		Cfg:             cellConfig(it.req.Cfg, it.req.Thresholds),
		Log:             append([]byte(nil), it.bestLog...),
		LeaseTTLMillis:  c.opts.LeaseTTL.Milliseconds(),
		HeartbeatMillis: c.opts.Heartbeat.Milliseconds(),
	}
}

// --- HTTP surface ---

// Routes mounts the fleet API:
//
//	GET  /v1/fleet                          health: workers, leases, counters
//	POST /v1/fleet/workers                  register a worker
//	POST /v1/fleet/lease?worker=ID          poll for work (204 = none)
//	POST /v1/fleet/leases/{id}/heartbeat    refresh + stream checkpoints
//	POST /v1/fleet/leases/{id}/complete     report a cell's outcome
func (c *Coordinator) Routes(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/fleet", c.handleHealth)
	mux.HandleFunc("POST /v1/fleet/workers", c.handleRegister)
	mux.HandleFunc("POST /v1/fleet/lease", c.handleLease)
	mux.HandleFunc("POST /v1/fleet/leases/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/fleet/leases/{id}/complete", c.handleComplete)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type fleetError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, fleetError{Error: fmt.Sprintf(format, args...)})
}

// maxBodyBytes bounds fleet request bodies; checkpoint logs are the big
// payload and stay far under this for any realistic strike budget.
const maxBodyBytes = 64 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "fleet: bad request body: %v", err)
		return false
	}
	return true
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.mu.Lock()
	ws := &workerState{id: c.nextIDLocked("w"), name: req.Name, lastSeen: time.Now()}
	c.workers[ws.id] = ws
	c.counters.WorkersRegistered++
	c.mu.Unlock()
	c.opts.Logf("fleet: worker %s (%s) registered", ws.id, ws.name)
	writeJSON(w, http.StatusOK, RegisterResponse{
		Worker:          ws.id,
		LeaseTTLMillis:  c.opts.LeaseTTL.Milliseconds(),
		HeartbeatMillis: c.opts.Heartbeat.Milliseconds(),
		PollMillis:      c.opts.Poll.Milliseconds(),
	})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("worker")
	now := time.Now()
	c.mu.Lock()
	ws := c.workers[id]
	if ws == nil {
		c.mu.Unlock()
		writeErr(w, http.StatusNotFound, "fleet: unknown worker %q (re-register)", id)
		return
	}
	ws.lastSeen = now
	it, stolen := c.dispatchLocked(ws, now)
	if it == nil {
		c.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if stolen {
		c.counters.Steals++
		c.opts.Logf("fleet: worker %s steals straggler %s (%s)", ws.id, it.id, it.req.Key)
	}
	payload := c.grantLocked(ws, it, now)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, payload)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	id := r.PathValue("id")
	now := time.Now()
	c.mu.Lock()
	l := c.leases[id]
	if l == nil {
		c.mu.Unlock()
		writeErr(w, http.StatusGone, "fleet: lease %q is gone", id)
		return
	}
	it := l.item
	l.deadline = now.Add(c.opts.LeaseTTL)
	if req.Strikes > l.strikes {
		l.strikes = req.Strikes
	}
	if ws := c.workers[l.worker]; ws != nil {
		ws.lastSeen = now
	}
	improved := req.Strikes > it.bestStrikes && len(req.Log) > 0
	if improved {
		it.bestStrikes = req.Strikes
		it.bestLog = append([]byte(nil), req.Log...)
	}
	if req.Abandon {
		c.counters.Abandons++
		if ws := c.workers[l.worker]; ws != nil {
			ws.leases--
		}
		delete(c.leases, id)
		delete(it.leases, id)
		if !it.completed && len(it.leases) == 0 {
			c.requeueLocked(it)
		}
	}
	c.mu.Unlock()
	if improved {
		c.deliver(it)
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{OK: true})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeBody(w, r, &req) {
		return
	}
	id := r.PathValue("id")
	c.mu.Lock()
	l := c.leases[id]
	if l == nil {
		// Expired, superseded by a faster speculative twin, or the item's
		// RunRemote already returned: the result is simply dropped —
		// first result wins, and the store dedups identical content anyway.
		c.counters.DuplicateResults++
		c.mu.Unlock()
		writeErr(w, http.StatusGone, "fleet: lease %q is gone", id)
		return
	}
	it := l.item
	workerName := l.worker
	if ws := c.workers[l.worker]; ws != nil {
		ws.lastSeen = time.Now()
		ws.completed++
		if ws.name != "" {
			workerName = ws.name
		}
	}
	c.dropItemLeasesLocked(it)
	c.removeFromPendingLocked(it)
	it.completed = true
	if req.Error != "" {
		c.counters.CellErrors++
		it.cellErr = fmt.Errorf("fleet: worker %s: %s", workerName, req.Error)
	} else if req.Info == nil || req.Summary == nil {
		c.counters.CellErrors++
		it.cellErr = fmt.Errorf("fleet: worker %s returned an empty result", workerName)
	} else {
		c.counters.Completions++
		it.res = &service.RemoteResult{Info: *req.Info, Summary: req.Summary, Worker: workerName}
	}
	close(it.done)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, HeartbeatResponse{OK: true})
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.Health())
}

// Health snapshots the fleet for GET /v1/fleet and tests.
func (c *Coordinator) Health() Health {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	h := Health{
		Healthy:     c.healthyLocked(now),
		QueueDepth:  c.pending.Len(),
		TenantDepth: c.pending.Depths(),
		ActiveItems: len(c.items),
		Counters:    c.counters,
		// Empty slices, not nil: the JSON body always has "workers" and
		// "leases" arrays, so clients (and jq one-liners) can iterate
		// without a null guard.
		Workers: []WorkerHealth{},
		Leases:  []LeaseHealth{},
	}
	for _, ws := range c.workers {
		h.Workers = append(h.Workers, WorkerHealth{
			ID:           ws.id,
			Name:         ws.name,
			LastSeenMS:   now.Sub(ws.lastSeen).Milliseconds(),
			ActiveLeases: ws.leases,
			Completed:    ws.completed,
		})
	}
	sort.Slice(h.Workers, func(i, k int) bool { return h.Workers[i].ID < h.Workers[k].ID })
	for id, l := range c.leases {
		h.Leases = append(h.Leases, LeaseHealth{
			Lease:   id,
			Worker:  l.worker,
			Key:     l.item.req.Key,
			Tenant:  tenantOf(l.item.req),
			AgeMS:   now.Sub(l.started).Milliseconds(),
			Strikes: l.strikes,
			Total:   l.item.req.Cfg.Strikes,
		})
	}
	sort.Slice(h.Leases, func(i, k int) bool { return h.Leases[i].Lease < h.Leases[k].Lease })
	return h
}
