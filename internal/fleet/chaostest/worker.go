package chaostest

import (
	"context"
	"hash/fnv"
	"log"
	"os"
	"os/exec"
	"time"

	"radcrit/internal/fleet"
)

// Env vars the re-exec'd test binary reads to become a worker process.
const (
	envWorkerBase = "RADCRIT_CHAOS_WORKER"
	envWorkerName = "RADCRIT_CHAOS_NAME"
	envThrottle   = "RADCRIT_CHAOS_THROTTLE"
)

// WorkerMain turns the current process into a fleet worker when the
// chaos environment variables are set, and never returns in that case.
// Call it first thing from a test package's TestMain:
//
//	func TestMain(m *testing.M) {
//		chaostest.WorkerMain()
//		os.Exit(m.Run())
//	}
//
// SpawnWorker then re-execs the test binary with the variables set,
// yielding a real OS process the test can SIGKILL mid-cell.
func WorkerMain() {
	base := os.Getenv(envWorkerBase)
	if base == "" {
		return
	}
	throttle, _ := time.ParseDuration(os.Getenv(envThrottle))
	logger := log.New(os.Stderr, "chaos-worker: ", log.LstdFlags)
	// Jitter is seeded from the worker name alone: chaos runs replay the
	// same backoff schedule per worker, run after run, while distinct
	// names still desynchronise from each other.
	h := fnv.New64a()
	_, _ = h.Write([]byte(os.Getenv(envWorkerName)))
	w := fleet.NewWorker(fleet.WorkerOptions{
		Base:          base,
		Name:          os.Getenv(envWorkerName),
		Logf:          logger.Printf,
		ThrottleChunk: throttle,
		JitterSeed:    h.Sum64() | 1,
	})
	_ = w.Run(context.Background())
	os.Exit(0)
}

// SpawnWorker re-execs the current (test) binary as a fleet worker
// process pointed at base. throttle paces the worker's chunk flushes so
// a test can reliably observe — and kill — it mid-cell. The caller owns
// the process: Kill it (SIGKILL, no cleanup) or let cleanup reap it.
func SpawnWorker(base, name string, throttle time.Duration, logTo *os.File) (*exec.Cmd, error) {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		envWorkerBase+"="+base,
		envWorkerName+"="+name,
		envThrottle+"="+throttle.String(),
	)
	if logTo != nil {
		cmd.Stdout, cmd.Stderr = logTo, logTo
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return cmd, nil
}
