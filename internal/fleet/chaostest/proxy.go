// Package chaostest is the fleet's failure-injection harness: a seeded
// flaky reverse proxy that drops, delays, 5xxes and kills connections
// mid-response, plus helpers that run real worker subprocesses the tests
// can SIGKILL mid-cell. The chaos suite routes fleet traffic through the
// proxy and asserts that every induced failure still converges to
// summaries byte-identical to a direct in-process run — the repo's
// bit-identity contract, extended to a lossy network.
package chaostest

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// ProxyOptions configures one flaky proxy.
type ProxyOptions struct {
	// Target is the backend base URL ("http://127.0.0.1:port").
	Target string
	// Addr is the listen address (default "127.0.0.1:0", a fresh port).
	Addr string
	// Seed drives the fault lottery deterministically (for a fixed
	// request order).
	Seed uint64
	// DropOneIn, DelayOneIn, ErrorOneIn, KillOneIn are 1-in-N fault
	// rates (0 disables that fault). Drop severs the connection before
	// forwarding; Delay stalls the request; Error answers 503 without
	// forwarding; Kill forwards, then truncates the response body
	// mid-stream and severs the connection.
	DropOneIn, DelayOneIn, ErrorOneIn, KillOneIn int
	// Delay is the stall injected by a Delay fault (default 50ms).
	Delay time.Duration
	// Logf receives one line per injected fault (nil = silent).
	Logf func(format string, args ...any)
}

// ProxyCounters tallies what the proxy did — the proof chaos actually
// happened.
type ProxyCounters struct {
	Forwarded int
	Drops     int
	Delays    int
	Errors    int
	Kills     int
}

// Proxy is a deliberately unreliable HTTP reverse proxy.
type Proxy struct {
	opts   ProxyOptions
	lis    net.Listener
	srv    *http.Server
	client *http.Client

	mu       sync.Mutex
	rng      *rand.Rand
	counters ProxyCounters
}

const (
	faultNone = iota
	faultDrop
	faultDelay
	faultError
	faultKill
)

// NewProxy starts a flaky proxy on a fresh localhost port. Close it when
// done; Addr is the base URL clients should use.
func NewProxy(opts ProxyOptions) (*Proxy, error) {
	if opts.Delay <= 0 {
		opts.Delay = 50 * time.Millisecond
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		opts: opts,
		lis:  lis,
		rng:  rand.New(rand.NewSource(int64(opts.Seed))),
		// The proxy's upstream client must not recycle its own faults:
		// plain transport, generous timeout.
		client: &http.Client{Timeout: 2 * time.Minute},
	}
	p.srv = &http.Server{Handler: p}
	go func() { _ = p.srv.Serve(lis) }()
	return p, nil
}

// Addr is the proxy's base URL.
func (p *Proxy) Addr() string { return "http://" + p.lis.Addr().String() }

// Close stops the proxy.
func (p *Proxy) Close() { _ = p.srv.Close() }

// Counters snapshots the fault tallies.
func (p *Proxy) Counters() ProxyCounters {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counters
}

// roll draws the next request's fault from the seeded lottery.
func (p *Proxy) roll() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	oneIn := func(n int) bool { return n > 0 && p.rng.Intn(n) == 0 }
	switch {
	case oneIn(p.opts.DropOneIn):
		p.counters.Drops++
		return faultDrop
	case oneIn(p.opts.ErrorOneIn):
		p.counters.Errors++
		return faultError
	case oneIn(p.opts.KillOneIn):
		p.counters.Kills++
		return faultKill
	case oneIn(p.opts.DelayOneIn):
		p.counters.Delays++
		return faultDelay
	default:
		p.counters.Forwarded++
		return faultNone
	}
}

// ServeHTTP implements the flaky forwarding. Bodies are buffered whole
// (the fleet API is small JSON; this proxy is not for SSE streams).
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fault := p.roll()
	switch fault {
	case faultDrop:
		p.opts.Logf("chaos: drop %s %s", r.Method, r.URL.Path)
		sever(w)
		return
	case faultError:
		p.opts.Logf("chaos: 503 %s %s", r.Method, r.URL.Path)
		http.Error(w, "chaos: injected 503", http.StatusServiceUnavailable)
		return
	case faultDelay:
		p.opts.Logf("chaos: delay %s %s", r.Method, r.URL.Path)
		time.Sleep(p.opts.Delay)
	}

	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "chaos proxy: read request: "+err.Error(), http.StatusBadGateway)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.opts.Target+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		http.Error(w, "chaos proxy: "+err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		http.Error(w, "chaos proxy: upstream: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, "chaos proxy: upstream body: "+err.Error(), http.StatusBadGateway)
		return
	}

	if fault == faultKill {
		p.opts.Logf("chaos: kill mid-response %s %s (%d of %d bytes)", r.Method, r.URL.Path, len(data)/2, len(data))
		killMidResponse(w, resp, data)
		return
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(data)
}

// sever hijacks the connection and closes it without any response — the
// client sees a reset/EOF, as if the network ate the request.
func sever(w http.ResponseWriter) {
	h, ok := w.(http.Hijacker)
	if !ok {
		panic("chaostest: response writer is not hijackable")
	}
	conn, _, err := h.Hijack()
	if err != nil {
		return
	}
	_ = conn.Close()
}

// killMidResponse writes a response that promises the full body but
// delivers only half of it, then severs — the mid-stream truncation a
// dying peer produces.
func killMidResponse(w http.ResponseWriter, resp *http.Response, data []byte) {
	h, ok := w.(http.Hijacker)
	if !ok {
		panic("chaostest: response writer is not hijackable")
	}
	conn, buf, err := h.Hijack()
	if err != nil {
		return
	}
	defer conn.Close()
	fmt.Fprintf(buf, "HTTP/1.1 %s\r\n", resp.Status)
	ct := resp.Header.Get("Content-Type")
	if ct != "" {
		fmt.Fprintf(buf, "Content-Type: %s\r\n", ct)
	}
	fmt.Fprintf(buf, "Content-Length: %s\r\n\r\n", strconv.Itoa(len(data)))
	_, _ = buf.Write(data[:len(data)/2])
	_ = buf.Flush()
}
