package fleet_test

import (
	"context"
	"encoding/json"
	"errors"
	"hash/fnv"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"radcrit/internal/api"
	"radcrit/internal/campaign"
	"radcrit/internal/fleet"
	"radcrit/internal/fleet/chaostest"
	"radcrit/internal/service"
)

// TestMain doubles as the chaos suite's worker entry point: when the
// chaos env vars are set the process becomes a fleet worker and never
// runs any tests (see chaostest.SpawnWorker).
func TestMain(m *testing.M) {
	chaostest.WorkerMain()
	os.Exit(m.Run())
}

// smokePlan mirrors the service suite's fast plan; cells lists the
// (device, kernel) pairs so sharding tests can use several cells.
func smokePlan(strikes int, cells ...string) *campaign.Plan {
	p := campaign.NewPlan(42, strikes).
		Named("fleet-test").
		WithThresholds(0, 2).
		WithWorkers(1).
		WithStreamChunk(32)
	for _, c := range cells {
		dev, kern, _ := strings.Cut(c, "/")
		p = p.WithCell(dev, kern)
	}
	return p
}

// testFleet is one coordinator+manager+HTTP stack on a fresh state dir.
type testFleet struct {
	m     *service.Manager
	coord *fleet.Coordinator
	srv   *httptest.Server
}

func startFleet(t *testing.T, fo fleet.Options) *testFleet {
	t.Helper()
	if fo.Logf == nil && testing.Verbose() {
		fo.Logf = t.Logf
	}
	coord := fleet.NewCoordinator(fo)
	m, err := service.New(service.Options{StateDir: t.TempDir(), Executors: 2, Remote: coord})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	root := http.NewServeMux()
	root.Handle("/", api.New(m, "test"))
	coord.Routes(root)
	srv := httptest.NewServer(root)
	// LIFO: drain the manager while workers can still talk to the
	// coordinator, then stop the janitor, then the listener.
	t.Cleanup(srv.Close)
	t.Cleanup(coord.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := m.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return &testFleet{m: m, coord: coord, srv: srv}
}

// startWorker runs an in-process worker against base until the test ends
// (or the returned stop func is called).
func startWorker(t *testing.T, base, name string, throttle time.Duration, client *http.Client) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var logf func(string, ...any)
	if testing.Verbose() {
		logf = t.Logf
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	w := fleet.NewWorker(fleet.WorkerOptions{
		Base: base, Name: name, Client: client, Logf: logf, ThrottleChunk: throttle,
		JitterSeed: h.Sum64() | 1,
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = w.Run(ctx)
	}()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			cancel()
			wg.Wait()
		})
	}
	t.Cleanup(stop)
	return stop
}

// waitDone polls a job to StateDone and returns its result.
func waitDone(t *testing.T, m *service.Manager, id string, deadline time.Duration) *service.JobResult {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		s, err := m.Job(id)
		if err != nil {
			t.Fatalf("Job(%s): %v", id, err)
		}
		if s.State == service.StateDone {
			jr, err := m.Result(id)
			if err != nil {
				t.Fatalf("Result(%s): %v", id, err)
			}
			return jr
		}
		if s.State.Terminal() {
			t.Fatalf("job %s reached %s (err %q), want done", id, s.State, s.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

// summariesJSON renders the per-cell summaries — the byte-comparison
// form of the bit-identity contract (same shape as the service suite's).
func summariesJSON(t *testing.T, jr *service.JobResult) string {
	t.Helper()
	type cell struct {
		Spec    campaign.CellSpec    `json:"spec"`
		Info    *campaign.StreamInfo `json:"info"`
		Summary *campaign.Summary    `json:"summary"`
	}
	var cells []cell
	for _, c := range jr.Cells {
		cells = append(cells, cell{Spec: c.Spec, Info: c.Info, Summary: c.Summary})
	}
	data, err := json.Marshal(cells)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func directSummaries(t *testing.T, p *campaign.Plan) string {
	t.Helper()
	res, err := (&campaign.StreamRunner{}).Run(context.Background(), p)
	if err != nil {
		t.Fatalf("direct StreamRunner: %v", err)
	}
	return summariesJSON(t, service.ResultFromPlan("direct", res))
}

// waitWorkers polls fleet health until n workers are registered —
// submitting before that races the register round-trip and the
// coordinator would (correctly) degrade the job to local execution.
func waitWorkers(t *testing.T, coord *fleet.Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if len(coord.Health().Workers) >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("never saw %d registered workers", n)
}

// waitLeaseStrikes polls fleet health until some lease reports at least
// want flushed strikes, returning that lease.
func waitLeaseStrikes(t *testing.T, coord *fleet.Coordinator, want int, deadline time.Duration) fleet.LeaseHealth {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		for _, l := range coord.Health().Leases {
			if l.Strikes >= want {
				return l
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no lease reached %d strikes", want)
	return fleet.LeaseHealth{}
}

// TestFleetShardedBitIdentityAndDedup is the tentpole's happy path: two
// workers execute a two-cell job's leases, the summaries are
// byte-identical to a direct in-process run, and a second submission of
// the same plan is served from the content-addressed store — still
// byte-identical — without new fleet work.
func TestFleetShardedBitIdentityAndDedup(t *testing.T) {
	tf := startFleet(t, fleet.Options{
		LeaseTTL: 2 * time.Second, Poll: 20 * time.Millisecond, SpeculateAfter: time.Hour,
	})
	startWorker(t, tf.srv.URL, "w1", 0, nil)
	startWorker(t, tf.srv.URL, "w2", 0, nil)
	waitWorkers(t, tf.coord, 2)

	plan := smokePlan(60, "k40/dgemm:128", "phi/dgemm:128")
	want := directSummaries(t, plan)

	snap, err := tf.m.Submit(plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	jr := waitDone(t, tf.m, snap.ID, 60*time.Second)
	if got := summariesJSON(t, jr); got != want {
		t.Fatalf("fleet summaries differ from direct run:\n got %s\nwant %s", got, want)
	}
	remotes := 0
	for _, c := range jr.Cells {
		if c.Remote {
			remotes++
			if c.Worker == "" {
				t.Errorf("cell %v: Remote set but no Worker recorded", c.Spec)
			}
		}
	}
	if remotes != len(jr.Cells) {
		t.Fatalf("want all %d cells remote, got %d", len(jr.Cells), remotes)
	}
	h := tf.coord.Health()
	if h.Counters.Completions < len(jr.Cells) {
		t.Fatalf("completions = %d, want >= %d", h.Counters.Completions, len(jr.Cells))
	}

	// Warm path: a second job over the same plan is pure store dedup.
	snap2, err := tf.m.Submit(smokePlan(60, "k40/dgemm:128", "phi/dgemm:128"), 0)
	if err != nil {
		t.Fatal(err)
	}
	jr2 := waitDone(t, tf.m, snap2.ID, 60*time.Second)
	if got := summariesJSON(t, jr2); got != want {
		t.Fatalf("warm summaries differ from direct run:\n got %s\nwant %s", got, want)
	}
	for _, c := range jr2.Cells {
		if c.Remote {
			t.Errorf("warm cell %v re-ran remotely instead of dedup from store", c.Spec)
		}
	}

	// The health endpoint serves the same snapshot over HTTP.
	resp, err := http.Get(tf.srv.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hh fleet.Health
	if err := json.NewDecoder(resp.Body).Decode(&hh); err != nil {
		t.Fatal(err)
	}
	if !hh.Healthy || len(hh.Workers) != 2 {
		t.Fatalf("health = healthy:%v workers:%d, want healthy with 2 workers", hh.Healthy, len(hh.Workers))
	}
}

// cutTransport is a transport with a kill switch: once cut, every
// request fails — the network face of a crashed worker host.
type cutTransport struct{ dead atomic.Bool }

func (c *cutTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if c.dead.Load() {
		return nil, errors.New("cut: network unreachable")
	}
	return http.DefaultTransport.RoundTrip(r)
}

// TestFleetLeaseExpiryRequeueFromCheckpoint crashes a worker mid-cell
// (its network is severed, so no abandon is sent — exactly a SIGKILL's
// signature from the coordinator's side), waits for the lease to expire,
// and asserts the cell is requeued seeded from the worker's last
// streamed checkpoint and finished elsewhere with a byte-identical
// summary.
func TestFleetLeaseExpiryRequeueFromCheckpoint(t *testing.T) {
	tf := startFleet(t, fleet.Options{
		LeaseTTL: 500 * time.Millisecond, Heartbeat: 100 * time.Millisecond,
		Poll: 20 * time.Millisecond, SpeculateAfter: time.Hour, MaxAttempts: 10,
	})
	ct := &cutTransport{}
	// The doomed worker paces itself so its lease is mid-cell for long
	// enough to observe; it heartbeats every 100ms regardless.
	startWorker(t, tf.srv.URL, "doomed", 120*time.Millisecond, &http.Client{Transport: ct})
	waitWorkers(t, tf.coord, 1)

	plan := smokePlan(96, "k40/dgemm:128")
	want := directSummaries(t, plan)
	snap, err := tf.m.Submit(plan, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until at least one chunk's checkpoint has been streamed back,
	// then sever the worker's network.
	l := waitLeaseStrikes(t, tf.coord, 32, 30*time.Second)
	ct.dead.Store(true)
	t.Logf("cut worker at lease %s, %d/%d strikes", l.Lease, l.Strikes, l.Total)

	// A healthy worker picks up the requeued item.
	startWorker(t, tf.srv.URL, "rescue", 0, nil)

	jr := waitDone(t, tf.m, snap.ID, 60*time.Second)
	if got := summariesJSON(t, jr); got != want {
		t.Fatalf("post-crash summaries differ from direct run:\n got %s\nwant %s", got, want)
	}
	h := tf.coord.Health()
	if h.Counters.LeaseExpiries < 1 {
		t.Errorf("lease expiries = %d, want >= 1", h.Counters.LeaseExpiries)
	}
	if h.Counters.Requeues < 1 {
		t.Errorf("requeues = %d, want >= 1", h.Counters.Requeues)
	}
	if h.Counters.RequeuedStrikes < 32 {
		t.Errorf("requeued strikes = %d, want >= 32 (resume from checkpoint, not scratch)", h.Counters.RequeuedStrikes)
	}
}

// TestFleetDegradeToLocal: with zero workers the coordinator refuses
// every cell and the manager runs them locally — the job completes with
// byte-identical summaries instead of stalling.
func TestFleetDegradeToLocal(t *testing.T) {
	tf := startFleet(t, fleet.Options{LeaseTTL: time.Second})
	plan := smokePlan(60, "k40/dgemm:128", "phi/dgemm:128")
	want := directSummaries(t, plan)
	snap, err := tf.m.Submit(plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	jr := waitDone(t, tf.m, snap.ID, 60*time.Second)
	if got := summariesJSON(t, jr); got != want {
		t.Fatalf("degraded summaries differ from direct run:\n got %s\nwant %s", got, want)
	}
	for _, c := range jr.Cells {
		if c.Remote {
			t.Errorf("cell %v claims remote execution with no workers", c.Spec)
		}
	}
	if got := tf.coord.Health().Counters.LocalFallbacks; got != len(jr.Cells) {
		t.Errorf("local fallbacks = %d, want %d", got, len(jr.Cells))
	}
}

// TestFleetSpeculativeSteal: a straggling leaseholder keeps its lease
// alive with heartbeats but crawls; past SpeculateAfter an idle worker
// is handed a duplicate lease and its faster result wins.
func TestFleetSpeculativeSteal(t *testing.T) {
	tf := startFleet(t, fleet.Options{
		LeaseTTL: 5 * time.Second, Heartbeat: 100 * time.Millisecond,
		Poll: 20 * time.Millisecond, SpeculateAfter: 300 * time.Millisecond,
	})
	// The straggler: ~500ms per chunk, 3 chunks — alive but slow.
	startWorker(t, tf.srv.URL, "straggler", 500*time.Millisecond, nil)
	waitWorkers(t, tf.coord, 1)

	plan := smokePlan(96, "k40/dgemm:128")
	want := directSummaries(t, plan)
	snap, err := tf.m.Submit(plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Ensure the straggler owns the lease before the thief shows up.
	waitLeaseStrikes(t, tf.coord, 0, 30*time.Second)
	startWorker(t, tf.srv.URL, "thief", 0, nil)

	jr := waitDone(t, tf.m, snap.ID, 60*time.Second)
	if got := summariesJSON(t, jr); got != want {
		t.Fatalf("speculative summaries differ from direct run:\n got %s\nwant %s", got, want)
	}
	if got := tf.coord.Health().Counters.Steals; got < 1 {
		t.Errorf("steals = %d, want >= 1", got)
	}
}

// TestCoordinatorProtocol unit-tests the HTTP protocol edges without a
// manager: unavailable with no workers, worker-reported cell errors
// propagating out of RunRemote, first-result-wins 410s, and 410 on
// heartbeats for dead leases.
func TestCoordinatorProtocol(t *testing.T) {
	coord := fleet.NewCoordinator(fleet.Options{LeaseTTL: time.Second, Poll: 10 * time.Millisecond})
	defer coord.Close()
	mux := http.NewServeMux()
	coord.Routes(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	plan := smokePlan(8, "k40/dgemm:128")
	req := service.RemoteCell{
		JobID: "j1", Cell: 0,
		Spec:       plan.Cells[0],
		Cfg:        plan.Config(),
		Thresholds: plan.EffectiveThresholds(),
		Key:        plan.CellKey(0),
	}

	// No workers: immediately unavailable.
	if _, err := coord.RunRemote(context.Background(), req); !errors.Is(err, service.ErrRemoteUnavailable) {
		t.Fatalf("RunRemote with no workers = %v, want ErrRemoteUnavailable", err)
	}

	post := func(path string, in, out any) int {
		t.Helper()
		body, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil && resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	var reg fleet.RegisterResponse
	if code := post("/v1/fleet/workers", fleet.RegisterRequest{Name: "manual"}, &reg); code != http.StatusOK {
		t.Fatalf("register: HTTP %d", code)
	}

	// A worker-reported cell failure propagates out of RunRemote.
	errc := make(chan error, 1)
	go func() {
		_, err := coord.RunRemote(context.Background(), req)
		errc <- err
	}()
	var item fleet.WorkItem
	lease := func() fleet.WorkItem {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			var it fleet.WorkItem
			if code := post("/v1/fleet/lease?worker="+reg.Worker, struct{}{}, &it); code == http.StatusOK {
				return it
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatal("never leased an item")
		return fleet.WorkItem{}
	}
	item = lease()
	if item.Key != req.Key {
		t.Fatalf("leased key %s, want %s", item.Key, req.Key)
	}
	if code := post("/v1/fleet/leases/"+item.Lease+"/complete", fleet.CompleteRequest{Error: "boom"}, nil); code != http.StatusOK {
		t.Fatalf("complete: HTTP %d", code)
	}
	if err := <-errc; err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("RunRemote = %v, want worker error containing %q", err, "boom")
	}
	// The lease died with the item: a duplicate completion answers 410.
	if code := post("/v1/fleet/leases/"+item.Lease+"/complete", fleet.CompleteRequest{Error: "boom"}, nil); code != http.StatusGone {
		t.Fatalf("dup complete: HTTP %d, want 410", code)
	}
	if code := post("/v1/fleet/leases/"+item.Lease+"/heartbeat", fleet.HeartbeatRequest{Strikes: 1}, nil); code != http.StatusGone {
		t.Fatalf("dead-lease heartbeat: HTTP %d, want 410", code)
	}
	if got := coord.Health().Counters.DuplicateResults; got < 1 {
		t.Errorf("duplicate results = %d, want >= 1", got)
	}

	// Abandoning a lease requeues its item for the next poll.
	go func() {
		_, err := coord.RunRemote(context.Background(), req)
		errc <- err
	}()
	item = lease()
	if code := post("/v1/fleet/leases/"+item.Lease+"/heartbeat", fleet.HeartbeatRequest{Abandon: true}, nil); code != http.StatusOK {
		t.Fatalf("abandon: HTTP %d", code)
	}
	item = lease()
	info := campaign.StreamInfo{Device: "k40", Kernel: "dgemm", Input: "128"}
	if code := post("/v1/fleet/leases/"+item.Lease+"/complete",
		fleet.CompleteRequest{Info: &info, Summary: &campaign.Summary{}}, nil); code != http.StatusOK {
		t.Fatalf("complete: HTTP %d", code)
	}
	if err := <-errc; err != nil {
		t.Fatalf("RunRemote after abandon+complete = %v", err)
	}
	h := coord.Health()
	if h.Counters.Abandons != 1 {
		t.Errorf("abandons = %d, want 1", h.Counters.Abandons)
	}
	if h.Counters.Completions != 1 {
		t.Errorf("completions = %d, want 1", h.Counters.Completions)
	}
}
