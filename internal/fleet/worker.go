package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"radcrit/internal/campaign"
	"radcrit/internal/injector"
	"radcrit/internal/service"
)

// WorkerOptions configures one worker process (radcritd -worker).
type WorkerOptions struct {
	// Base is the coordinator's base URL, e.g. "http://127.0.0.1:8347".
	Base string
	// Name labels the worker in the coordinator's health output.
	Name string
	// Client is the HTTP client to use (nil = a default with a sane
	// per-request timeout).
	Client *http.Client
	// Logf receives worker lifecycle lines (nil = silent).
	Logf func(format string, args ...any)
	// Metrics, when non-nil, meters every executed cell's strike stream
	// (radcrit_strikes_total, radcrit_chunk_seconds) — the worker half of
	// the engine telemetry; serve it with -metrics-addr.
	Metrics *service.EngineMetrics
	// ThrottleChunk inserts a pause after every flushed chunk. Production
	// leaves it zero; the chaos harness uses it to hold a cell in flight
	// long enough to kill the worker mid-cell deterministically.
	ThrottleChunk time.Duration
	// JitterSeed seeds the worker's private backoff-jitter stream. Zero
	// (the production default) derives a seed from the worker name and
	// the clock, so same-named workers still desynchronise; tests set it
	// for reproducible backoff schedules.
	JitterSeed uint64
}

// Worker pulls leases from a coordinator and executes cells through the
// same campaign primitives the daemon uses locally, heartbeating each
// cell's checkpoint log back so a crash never costs more than one chunk.
type Worker struct {
	opts   WorkerOptions
	client *http.Client
	logf   func(string, ...any)
	// rng drives backoff jitter. It is private to the worker and only
	// touched from Run's goroutine, so no lock — and no contention on
	// (or pollution of) the process-global math/rand state, which the
	// engine's determinism story must never depend on.
	rng *rand.Rand

	id        string
	lease     time.Duration
	heartbeat time.Duration
	poll      time.Duration
}

// NewWorker builds a worker; Run drives it.
func NewWorker(opts WorkerOptions) *Worker {
	w := &Worker{opts: opts, client: opts.Client, logf: opts.Logf}
	if w.client == nil {
		w.client = &http.Client{Timeout: 30 * time.Second}
	}
	if w.logf == nil {
		w.logf = func(string, ...any) {}
	}
	seed := opts.JitterSeed
	if seed == 0 {
		h := fnv.New64a()
		_, _ = h.Write([]byte(opts.Name))
		seed = h.Sum64() ^ uint64(time.Now().UnixNano())
	}
	w.rng = rand.New(rand.NewSource(int64(seed)))
	return w
}

// Run registers with the coordinator and processes leases until ctx is
// cancelled. Transport failures — including a coordinator restart that
// forgets the worker — are retried with jittered exponential backoff;
// the only non-nil return is ctx's error.
func (w *Worker) Run(ctx context.Context) error {
	backoff := 250 * time.Millisecond
	const maxBackoff = 5 * time.Second
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if w.id == "" {
			if err := w.register(ctx); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				w.logf("fleet worker: register: %v (retrying in %v)", err, backoff)
				if !sleepCtx(ctx, w.jitter(backoff)) {
					return ctx.Err()
				}
				backoff = min(backoff*2, maxBackoff)
				continue
			}
			backoff = 250 * time.Millisecond
		}
		item, status, err := w.pollLease(ctx)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.logf("fleet worker %s: lease poll: %v (retrying in %v)", w.id, err, backoff)
			if !sleepCtx(ctx, w.jitter(backoff)) {
				return ctx.Err()
			}
			backoff = min(backoff*2, maxBackoff)
		case status == http.StatusNotFound:
			// Coordinator restarted and forgot us: re-register.
			w.logf("fleet worker %s: unknown to coordinator, re-registering", w.id)
			w.id = ""
		case item != nil:
			backoff = 250 * time.Millisecond
			w.runItem(ctx, item)
		case status == http.StatusNoContent:
			backoff = 250 * time.Millisecond
			if !sleepCtx(ctx, w.jitter(w.poll)) {
				return ctx.Err()
			}
		default:
			// An unexpected status (a proxy-injected 5xx, a draining
			// coordinator): transient, poll again after a backoff.
			w.logf("fleet worker %s: lease poll: HTTP %d (retrying in %v)", w.id, status, backoff)
			if !sleepCtx(ctx, w.jitter(backoff)) {
				return ctx.Err()
			}
			backoff = min(backoff*2, maxBackoff)
		}
	}
}

func (w *Worker) register(ctx context.Context) error {
	var resp RegisterResponse
	status, err := w.postJSON(ctx, "/v1/fleet/workers", RegisterRequest{Name: w.opts.Name}, &resp)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("fleet: register: HTTP %d", status)
	}
	w.id = resp.Worker
	w.lease = time.Duration(resp.LeaseTTLMillis) * time.Millisecond
	w.heartbeat = time.Duration(resp.HeartbeatMillis) * time.Millisecond
	w.poll = time.Duration(resp.PollMillis) * time.Millisecond
	if w.heartbeat <= 0 {
		w.heartbeat = time.Second
	}
	if w.poll <= 0 {
		w.poll = 500 * time.Millisecond
	}
	w.logf("fleet worker %s: registered with %s (lease %v, heartbeat %v)", w.id, w.opts.Base, w.lease, w.heartbeat)
	return nil
}

func (w *Worker) pollLease(ctx context.Context) (*WorkItem, int, error) {
	var item WorkItem
	status, err := w.postJSON(ctx, "/v1/fleet/lease?worker="+w.id, struct{}{}, &item)
	if err != nil {
		return nil, 0, err
	}
	if status == http.StatusOK {
		return &item, status, nil
	}
	return nil, status, nil
}

// runItem executes one leased cell: resume from the item's checkpoint
// log when present, heartbeat the growing log back on the coordinator's
// cadence, and report the terminal outcome. A 410 from any heartbeat
// means the lease is gone (expired, or a speculative twin finished
// first) — the cell's context is cancelled and the result dropped.
func (w *Worker) runItem(ctx context.Context, item *WorkItem) {
	w.logf("fleet worker %s: lease %s: cell %s/%s from strike log of %d bytes",
		w.id, item.Lease, item.Spec.Device, item.Spec.Kernel, len(item.Log))

	cellCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	buf := &logBuffer{}
	tracker := &chunkTracker{buf: buf, throttle: w.opts.ThrottleChunk}

	hb := time.Duration(item.HeartbeatMillis) * time.Millisecond
	if hb <= 0 {
		hb = w.heartbeat
	}
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	leaseLost := false
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(hb)
		defer t.Stop()
		// The log rides along only when a new chunk has flushed since the
		// last acknowledged send: refreshes in between are a few bytes, so
		// a fat checkpoint log can never crowd out the keep-alive cadence.
		sent := 0
		for {
			select {
			case <-cellCtx.Done():
				return
			case <-t.C:
				strikes, log := buf.snapshot()
				req := HeartbeatRequest{Strikes: strikes}
				if strikes > sent {
					req.Log = log
				}
				var resp HeartbeatResponse
				status, err := w.postJSON(cellCtx, "/v1/fleet/leases/"+item.Lease+"/heartbeat", req, &resp)
				switch {
				case err != nil:
					// Transient: the next tick retries; if the lease expires
					// meanwhile the coordinator answers 410 below.
				case status == http.StatusGone:
					w.logf("fleet worker %s: lease %s gone, stopping cell", w.id, item.Lease)
					leaseLost = true
					cancel()
					return
				case status == http.StatusOK && req.Log != nil:
					sent = strikes
				}
			}
		}
	}()

	info, sum, runErr := w.executeCell(cellCtx, item, buf, tracker)
	cancel()
	hbWG.Wait()

	switch {
	case leaseLost:
		return
	case ctx.Err() != nil:
		// Worker is shutting down mid-cell: hand the lease back with the
		// best log so the cell requeues immediately instead of waiting out
		// the lease TTL. Best effort — a SIGKILLed worker never gets here,
		// and the TTL covers that.
		strikes, log := buf.snapshot()
		abandonCtx, acancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer acancel()
		var resp HeartbeatResponse
		_, _ = w.postJSON(abandonCtx, "/v1/fleet/leases/"+item.Lease+"/heartbeat",
			HeartbeatRequest{Strikes: strikes, Log: log, Abandon: true}, &resp)
		return
	}

	req := CompleteRequest{}
	if runErr != nil {
		req.Error = runErr.Error()
	} else {
		req.Info, req.Summary = &info, sum
	}
	w.complete(ctx, item, req)
}

// executeCell runs or resumes the leased cell. Sink order matters: on
// the fresh path the CheckpointSink precedes the tracker, so a snapshot
// never claims strikes its log does not cover. (On the resume path the
// engine's internal checkpoint sink flushes last; a snapshot there may
// lead log coverage by at most one chunk, which only ever costs a
// requeued lease one extra chunk of re-execution — never correctness,
// which rests on the log alone.)
func (w *Worker) executeCell(ctx context.Context, item *WorkItem, buf *logBuffer, tracker *chunkTracker) (campaign.StreamInfo, *campaign.Summary, error) {
	cfg, err := item.Cfg.EngineConfig()
	if err != nil {
		return campaign.StreamInfo{}, nil, err
	}
	cell, err := campaign.BuildCell(item.Spec)
	if err != nil {
		return campaign.StreamInfo{}, nil, err
	}
	sinks := []campaign.Sink{tracker}
	if w.opts.Metrics != nil {
		sinks = append(sinks, w.opts.Metrics.Sink(item.Spec.Kernel, item.Spec.Device))
	}
	if len(item.Log) > 0 {
		return campaign.ResumePlanCell(ctx, bytes.NewReader(item.Log), buf, cell, cfg, item.Cfg.Thresholds, sinks...)
	}
	info, err := campaign.CellInfo(cell.Dev, cell.Kern, cfg)
	if err != nil {
		return campaign.StreamInfo{}, nil, err
	}
	chk, err := campaign.NewCheckpointSink(buf, info, cfg.Seed)
	if err != nil {
		return campaign.StreamInfo{}, nil, err
	}
	info, sum, err := campaign.RunPlanCell(ctx, cell, cfg, item.Cfg.Thresholds, append(sinks, chk)...)
	if err != nil {
		return info, sum, err
	}
	return info, sum, chk.Close()
}

// complete reports the cell's outcome, retrying transient transport
// failures; a 410 means a twin's result already won and ours is dropped.
func (w *Worker) complete(ctx context.Context, item *WorkItem, req CompleteRequest) {
	backoff := 200 * time.Millisecond
	for attempt := 0; attempt < 5; attempt++ {
		var resp HeartbeatResponse
		status, err := w.postJSON(ctx, "/v1/fleet/leases/"+item.Lease+"/complete", req, &resp)
		switch {
		case err == nil && status == http.StatusOK:
			w.logf("fleet worker %s: lease %s complete", w.id, item.Lease)
			return
		case err == nil && status == http.StatusGone:
			w.logf("fleet worker %s: lease %s superseded, result dropped", w.id, item.Lease)
			return
		case ctx.Err() != nil:
			return
		}
		if !sleepCtx(ctx, w.jitter(backoff)) {
			return
		}
		backoff *= 2
	}
	w.logf("fleet worker %s: lease %s: could not deliver result", w.id, item.Lease)
}

// postJSON is the worker's single HTTP primitive: POST in, decode out,
// return the status code. Non-2xx statuses are returned, not errors —
// the caller distinguishes protocol answers (204/404/410) from
// transport failure.
func (w *Worker) postJSON(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimRight(w.opts.Base, "/")+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("fleet: decoding %s response: %w", path, err)
		}
		return resp.StatusCode, nil
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	return resp.StatusCode, nil
}

// logBuffer accumulates the cell's checkpoint log under a mutex so the
// heartbeat goroutine can snapshot a consistent (strikes, log) pair
// while the engine's consume loop appends.
type logBuffer struct {
	mu      sync.Mutex
	data    []byte
	flushed int
}

// Write implements io.Writer for the checkpoint stream.
func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	b.data = append(b.data, p...)
	b.mu.Unlock()
	return len(p), nil
}

func (b *logBuffer) setFlushed(n int) {
	b.mu.Lock()
	if n > b.flushed {
		b.flushed = n
	}
	b.mu.Unlock()
}

func (b *logBuffer) snapshot() (int, []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushed, append([]byte(nil), b.data...)
}

// chunkTracker is a no-op Sink whose FlushChunk records the flushed
// strike count (and optionally throttles, for the chaos harness).
type chunkTracker struct {
	buf      *logBuffer
	throttle time.Duration
}

// Consume implements campaign.Sink (the tracker only cares about chunk
// boundaries).
func (t *chunkTracker) Consume(int, injector.Outcome) {}

// FlushChunk implements campaign.ChunkFlusher.
func (t *chunkTracker) FlushChunk(next int) {
	t.buf.setFlushed(next)
	if t.throttle > 0 {
		time.Sleep(t.throttle)
	}
}

// jitter spreads a backoff delay over [d/2, d] so synchronised workers
// desynchronise instead of thundering together. It draws from the
// worker's private stream: the old process-global math/rand source made
// every co-resident worker (and anything else in the process calling
// math/rand) share one lock and one schedule.
func (w *Worker) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(w.rng.Int63n(int64(d/2)+1))
}

// sleepCtx sleeps for d or until ctx is done; it reports whether the
// full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
