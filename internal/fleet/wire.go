// Package fleet is radcritd's coordinator/worker layer: a lease-based
// work queue that shards a job's cells across remote worker processes
// over HTTP, built so that failure is the normal case. Workers register
// with the coordinator and pull leases; heartbeats refresh lease
// deadlines and stream the cell's checkpoint log back; a lost worker's
// lease expires and the cell is requeued seeded from the last streamed
// #CHK record, so a crash costs at most one chunk of re-execution;
// stragglers are speculatively re-dispatched to idle workers with
// first-result-wins dedup; and when zero workers are healthy the
// coordinator tells the service layer to run cells locally instead of
// stalling the queue.
//
// The determinism contract survives all of it: cells are pure functions
// of (spec, config, thresholds) — per-index RNG splits make any resumed
// tail bit-identical to an uninterrupted run — so whichever worker (or
// mixture of workers, or local fallback) executes a cell, the summary is
// byte-identical to a direct in-process StreamRunner run. The chaos
// suite (chaos_test.go, chaostest/) pins exactly that.
package fleet

import (
	"fmt"

	"radcrit/internal/campaign"
)

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name labels the worker in health output (hostname, pod name, ...).
	Name string `json:"name"`
}

// RegisterResponse carries the worker's identity and the coordinator's
// timing contract.
type RegisterResponse struct {
	// Worker is the coordinator-assigned worker ID, presented on every
	// subsequent lease poll.
	Worker string `json:"worker"`
	// LeaseTTLMillis is how long a lease lives without a heartbeat.
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
	// HeartbeatMillis is how often a leaseholder should heartbeat.
	HeartbeatMillis int64 `json:"heartbeat_ms"`
	// PollMillis is how long an idle worker should wait between polls.
	PollMillis int64 `json:"poll_ms"`
}

// CellConfig is the engine configuration on the wire: campaign.Config
// with the facility flattened to its name. JSON floats round-trip
// bit-exactly (shortest-round-trip encoding), so a worker reconstructs
// the exact Config — and therefore the exact summary bit pattern.
type CellConfig struct {
	Seed            uint64    `json:"seed"`
	Strikes         int       `json:"strikes"`
	BaseExecSeconds float64   `json:"base_exec_seconds"`
	Facility        string    `json:"facility,omitempty"`
	Workers         int       `json:"workers,omitempty"`
	StreamChunk     int       `json:"stream_chunk,omitempty"`
	Thresholds      []float64 `json:"thresholds"`
	// Adaptive carries the plan's early-stopping spec, when present. The
	// stop rule is a pure function of (spec, outcome stream), so every
	// worker — and any resumed tail on a different worker — makes the
	// same stop decision at the same chunk boundary.
	Adaptive *campaign.AdaptiveSpec `json:"adaptive,omitempty"`
}

// cellConfig flattens an engine config for the wire.
func cellConfig(cfg campaign.Config, thresholds []float64) CellConfig {
	c := CellConfig{
		Seed:            cfg.Seed,
		Strikes:         cfg.Strikes,
		BaseExecSeconds: cfg.BaseExecSeconds,
		Facility:        cfg.Facility.Name,
		Workers:         cfg.Workers,
		StreamChunk:     cfg.StreamChunk,
		Thresholds:      append([]float64(nil), thresholds...),
	}
	if cfg.Adaptive != nil {
		a := *cfg.Adaptive
		c.Adaptive = &a
	}
	return c
}

// EngineConfig reconstructs the campaign Config a worker runs under.
func (c CellConfig) EngineConfig() (campaign.Config, error) {
	fac, err := campaign.FacilityByName(c.Facility)
	if err != nil {
		return campaign.Config{}, fmt.Errorf("fleet: %w", err)
	}
	cfg := campaign.Config{
		Seed:            c.Seed,
		Strikes:         c.Strikes,
		BaseExecSeconds: c.BaseExecSeconds,
		Facility:        fac,
		Workers:         c.Workers,
		StreamChunk:     c.StreamChunk,
	}
	if c.Adaptive != nil {
		a := *c.Adaptive
		cfg.Adaptive = &a
	}
	return cfg, nil
}

// WorkItem is one leased cell: everything a worker needs to execute it
// bit-identically, plus the lease's timing contract.
type WorkItem struct {
	// Lease identifies this grant; heartbeats and completion present it.
	Lease string `json:"lease"`
	// Key is the cell's content address (campaign.CellKey) — for logs and
	// health output; workers never need to recompute it.
	Key  string            `json:"key"`
	Spec campaign.CellSpec `json:"spec"`
	Cfg  CellConfig        `json:"config"`
	// Log is the cell's checkpoint log so far (empty for a fresh cell).
	// The worker resumes from its last #CHK record, re-running only the
	// uncovered tail.
	Log []byte `json:"log,omitempty"`
	// LeaseTTLMillis / HeartbeatMillis restate the coordinator's timing
	// contract for this lease.
	LeaseTTLMillis  int64 `json:"lease_ttl_ms"`
	HeartbeatMillis int64 `json:"heartbeat_ms"`
}

// HeartbeatRequest refreshes a lease and streams checkpoint progress.
// When the log is present it is the full accumulated log, never a
// delta: full-state heartbeats are idempotent under the dropped or
// duplicated deliveries a flaky network produces — no offset
// reconciliation to get wrong. Workers omit the log when no new chunk
// has flushed since the last acknowledged send, so keep-alive refreshes
// stay a few bytes even when the checkpoint log is large.
type HeartbeatRequest struct {
	// Strikes is the flushed strike count (chunk-aligned, monotonic).
	Strikes int `json:"strikes"`
	// Log is the cell's full checkpoint log so far.
	Log []byte `json:"log,omitempty"`
	// Abandon releases the lease (a draining worker): the item requeues
	// immediately, seeded from Log, instead of waiting out the TTL.
	Abandon bool `json:"abandon,omitempty"`
}

// HeartbeatResponse acknowledges a refresh. A dead lease answers 410
// Gone instead, telling the worker to stop work on the cell.
type HeartbeatResponse struct {
	OK bool `json:"ok"`
}

// CompleteRequest reports a leased cell's terminal outcome: a summary,
// or the cell's own deterministic failure.
type CompleteRequest struct {
	Error   string               `json:"error,omitempty"`
	Info    *campaign.StreamInfo `json:"info,omitempty"`
	Summary *campaign.Summary    `json:"summary,omitempty"`
}

// Counters are the coordinator's cumulative failure-handling tallies —
// the "observable, not silent" half of the fleet's robustness story.
type Counters struct {
	WorkersRegistered int `json:"workers_registered"`
	WorkersExpired    int `json:"workers_expired"`
	LeasesDispatched  int `json:"leases_dispatched"`
	LeaseExpiries     int `json:"lease_expiries"`
	// Requeues counts items put back on the queue after losing all their
	// leases; RequeuedStrikes totals the checkpoint-covered strikes those
	// items carried back (the work the lease loss did NOT cost).
	Requeues        int `json:"requeues"`
	RequeuedStrikes int `json:"requeued_strikes"`
	Abandons        int `json:"abandons"`
	// Steals counts speculative duplicate leases handed to idle workers
	// for straggling items.
	Steals           int `json:"steals"`
	Completions      int `json:"completions"`
	DuplicateResults int `json:"duplicate_results"`
	CellErrors       int `json:"cell_errors"`
	// LocalFallbacks counts cells the coordinator declined (zero healthy
	// workers, or an item out of attempts) and the service ran locally.
	LocalFallbacks int `json:"local_fallbacks"`
}

// WorkerHealth is one worker's row in the health report.
type WorkerHealth struct {
	ID           string `json:"id"`
	Name         string `json:"name,omitempty"`
	LastSeenMS   int64  `json:"last_seen_ms"` // age of last contact
	ActiveLeases int    `json:"active_leases"`
	Completed    int    `json:"completed"`
}

// LeaseHealth is one active lease's row in the health report.
type LeaseHealth struct {
	Lease   string `json:"lease"`
	Worker  string `json:"worker"`
	Key     string `json:"key"`
	Tenant  string `json:"tenant"`
	AgeMS   int64  `json:"age_ms"`
	Strikes int    `json:"strikes"`
	Total   int    `json:"total"`
}

// Health is GET /v1/fleet's body.
type Health struct {
	// Healthy reports at least one live worker.
	Healthy bool `json:"healthy"`
	// Workers lists registered workers, most recently seen first.
	Workers []WorkerHealth `json:"workers"`
	// QueueDepth is the number of items awaiting dispatch; TenantDepth
	// breaks it down by the tenant of the job each cell belongs to
	// (tenants with nothing queued are omitted).
	QueueDepth  int            `json:"queue_depth"`
	TenantDepth map[string]int `json:"tenant_depth,omitempty"`
	// ActiveItems is the number of items currently leased or queued.
	ActiveItems int           `json:"active_items"`
	Leases      []LeaseHealth `json:"leases"`
	Counters    Counters      `json:"counters"`
}
