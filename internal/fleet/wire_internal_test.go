package fleet

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"radcrit/internal/campaign"
)

// TestJitterSeeded: jitter draws from the worker's private seeded
// stream — same seed, same schedule; distinct seeds, distinct schedules;
// every draw inside [d/2, d].
func TestJitterSeeded(t *testing.T) {
	const d = 800 * time.Millisecond
	draw := func(seed uint64, n int) []time.Duration {
		w := NewWorker(WorkerOptions{JitterSeed: seed})
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = w.jitter(d)
		}
		return out
	}
	a, b := draw(41, 32), draw(41, 32)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	if reflect.DeepEqual(a, draw(42, 32)) {
		t.Fatal("distinct seeds produced identical 32-draw schedules")
	}
	for i, v := range a {
		if v < d/2 || v > d {
			t.Fatalf("draw %d = %v outside [%v, %v]", i, v, d/2, d)
		}
	}
	// Degenerate delays pass through untouched.
	w := NewWorker(WorkerOptions{JitterSeed: 1})
	if got := w.jitter(0); got != 0 {
		t.Fatalf("jitter(0) = %v", got)
	}
	if got := w.jitter(-time.Second); got != -time.Second {
		t.Fatalf("jitter(-1s) = %v", got)
	}
}

// TestJitterSeedZeroDistinct: the production default (seed 0) derives a
// per-worker seed, so even same-named workers get distinct streams.
func TestJitterSeedZeroDistinct(t *testing.T) {
	const d = 800 * time.Millisecond
	a := NewWorker(WorkerOptions{Name: "w"})
	time.Sleep(time.Microsecond) // distinct clock reads
	b := NewWorker(WorkerOptions{Name: "w"})
	same := true
	for i := 0; i < 32; i++ {
		if a.jitter(d) != b.jitter(d) {
			same = false
		}
	}
	if same {
		t.Fatal("two seed-0 workers produced identical 32-draw schedules")
	}
}

// TestCellConfigAdaptiveRoundTrip: the adaptive spec survives the wire —
// flatten, marshal, unmarshal, reconstruct — bit for bit, and absent
// specs stay absent (no "adaptive" key, nil on reconstruction).
func TestCellConfigAdaptiveRoundTrip(t *testing.T) {
	cfg := campaign.NewPlan(42, 300).WithCell("k40", "dgemm:128").Config()
	cfg.Adaptive = &campaign.AdaptiveSpec{
		TargetHalfWidth: 0.1, MinStrikes: 100, CheckEvery: 50, Alpha: 0.01, MaxEpochs: 4,
	}
	wire := cellConfig(cfg, []float64{0, 2})
	blob, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	var back CellConfig
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.EngineConfig()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Adaptive, cfg.Adaptive) {
		t.Fatalf("adaptive spec mangled on the wire: %+v vs %+v", got.Adaptive, cfg.Adaptive)
	}
	if got.Adaptive == cfg.Adaptive {
		t.Fatal("EngineConfig aliased the wire struct's spec pointer")
	}

	cfg.Adaptive = nil
	blob, err = json.Marshal(cellConfig(cfg, nil))
	if err != nil {
		t.Fatal(err)
	}
	if jsonHasKey(t, blob, "adaptive") {
		t.Fatalf("nil spec serialised an adaptive key: %s", blob)
	}
	var back2 CellConfig
	if err := json.Unmarshal(blob, &back2); err != nil {
		t.Fatal(err)
	}
	got2, err := back2.EngineConfig()
	if err != nil {
		t.Fatal(err)
	}
	if got2.Adaptive != nil {
		t.Fatalf("nil spec came back non-nil: %+v", got2.Adaptive)
	}
}

func jsonHasKey(t *testing.T, blob []byte, key string) bool {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	_, ok := m[key]
	return ok
}
