package fleet_test

import (
	"os"
	"testing"
	"time"

	"radcrit/internal/fleet"
	"radcrit/internal/fleet/chaostest"
)

// TestChaosFlakyNetworkConvergence routes all worker↔coordinator
// traffic through a seeded flaky proxy injecting drops, delays, 503s
// and mid-response kills, and asserts the job still converges to
// summaries byte-identical to a direct in-process run. Every fleet
// failure path can fire here — lost leases (a killed lease response
// orphans the grant), duplicate completions, heartbeat gaps — and none
// of them may perturb a single bit of the result.
func TestChaosFlakyNetworkConvergence(t *testing.T) {
	tf := startFleet(t, fleet.Options{
		LeaseTTL: time.Second, Heartbeat: 150 * time.Millisecond,
		Poll: 30 * time.Millisecond, SpeculateAfter: time.Hour, MaxAttempts: 50,
	})
	var logf func(string, ...any)
	if testing.Verbose() {
		logf = t.Logf
	}
	proxy, err := chaostest.NewProxy(chaostest.ProxyOptions{
		Target: tf.srv.URL,
		Seed:   1,
		// Roughly one request in three suffers *something*.
		DropOneIn: 8, ErrorOneIn: 8, KillOneIn: 10, DelayOneIn: 6,
		Delay: 30 * time.Millisecond,
		Logf:  logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	startWorker(t, proxy.Addr(), "flaky-1", 0, nil)
	startWorker(t, proxy.Addr(), "flaky-2", 0, nil)
	waitWorkers(t, tf.coord, 2)

	plan := smokePlan(96, "k40/dgemm:128", "phi/dgemm:128")
	want := directSummaries(t, plan)
	snap, err := tf.m.Submit(plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	jr := waitDone(t, tf.m, snap.ID, 120*time.Second)
	if got := summariesJSON(t, jr); got != want {
		t.Fatalf("summaries through flaky network differ from direct run:\n got %s\nwant %s", got, want)
	}

	pc := proxy.Counters()
	t.Logf("proxy: %+v", pc)
	t.Logf("fleet: %+v", tf.coord.Health().Counters)
	if pc.Drops+pc.Errors+pc.Kills+pc.Delays == 0 {
		t.Fatal("the chaos proxy injected no faults; the test proved nothing")
	}
}

// TestChaosWorkerSIGKILLMidCell runs a real worker subprocess (the test
// binary re-exec'd; see TestMain), SIGKILLs it after it has streamed at
// least one chunk's checkpoint, and asserts the cell is finished by a
// rescue worker with byte-identical summaries — re-running only the
// strikes after the victim's last #CHK record, as witnessed by the
// requeued-strikes counter.
func TestChaosWorkerSIGKILLMidCell(t *testing.T) {
	tf := startFleet(t, fleet.Options{
		// Generous enough that a race-instrumented worker's multi-MB
		// checkpoint heartbeats always land well inside the TTL.
		LeaseTTL: 2 * time.Second, Heartbeat: 200 * time.Millisecond,
		Poll: 30 * time.Millisecond, SpeculateAfter: time.Hour, MaxAttempts: 20,
	})

	victim, err := chaostest.SpawnWorker(tf.srv.URL, "victim", 400*time.Millisecond, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = victim.Process.Kill()
		_, _ = victim.Process.Wait()
	}()
	waitWorkers(t, tf.coord, 1)

	plan := smokePlan(96, "k40/dgemm:128")
	want := directSummaries(t, plan)
	snap, err := tf.m.Submit(plan, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Wait for a heartbeat proving the victim is mid-cell with at least
	// one chunk checkpointed, then SIGKILL it — no abandon, no cleanup.
	l := waitLeaseStrikes(t, tf.coord, 32, 30*time.Second)
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = victim.Process.Wait()
	t.Logf("SIGKILLed victim holding lease %s at %d/%d strikes", l.Lease, l.Strikes, l.Total)

	rescue, err := chaostest.SpawnWorker(tf.srv.URL, "rescue", 0, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = rescue.Process.Kill()
		_, _ = rescue.Process.Wait()
	}()

	jr := waitDone(t, tf.m, snap.ID, 120*time.Second)
	if got := summariesJSON(t, jr); got != want {
		t.Fatalf("post-SIGKILL summaries differ from direct run:\n got %s\nwant %s", got, want)
	}
	h := tf.coord.Health()
	t.Logf("fleet: %+v", h.Counters)
	if h.Counters.LeaseExpiries < 1 {
		t.Errorf("lease expiries = %d, want >= 1 (the victim's lease must time out)", h.Counters.LeaseExpiries)
	}
	if h.Counters.RequeuedStrikes < 32 {
		t.Errorf("requeued strikes = %d, want >= 32 (rescue must resume from the victim's checkpoint)", h.Counters.RequeuedStrikes)
	}
	for _, c := range jr.Cells {
		if !c.Remote {
			t.Errorf("cell %v fell back to local execution; want remote completion by the rescue worker", c.Spec)
		}
	}
}
