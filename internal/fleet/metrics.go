package fleet

import (
	"time"

	"radcrit/internal/telemetry"
)

// RegisterMetrics exports the coordinator's fleet state on reg — all of
// it scrape-time collectors over the tables the coordinator already
// guards with its mutex, so the dispatch paths gain no new bookkeeping.
// Mount reg.Handler() next to Routes to serve it.
func (c *Coordinator) RegisterMetrics(reg *telemetry.Registry) {
	reg.CounterVecFunc("radcrit_fleet_events_total",
		"Coordinator lifecycle event counts, by event kind.",
		[]string{"event"}, func(emit func([]string, float64)) {
			c.mu.Lock()
			ct := c.counters
			c.mu.Unlock()
			for _, e := range []struct {
				name string
				n    int
			}{
				{"workers_registered", ct.WorkersRegistered},
				{"workers_expired", ct.WorkersExpired},
				{"leases_dispatched", ct.LeasesDispatched},
				{"lease_expiries", ct.LeaseExpiries},
				{"requeues", ct.Requeues},
				{"requeued_strikes", ct.RequeuedStrikes},
				{"abandons", ct.Abandons},
				{"steals", ct.Steals},
				{"completions", ct.Completions},
				{"duplicate_results", ct.DuplicateResults},
				{"cell_errors", ct.CellErrors},
				{"local_fallbacks", ct.LocalFallbacks},
			} {
				emit([]string{e.name}, float64(e.n))
			}
		})
	reg.GaugeFunc("radcrit_fleet_workers",
		"Workers currently registered (healthy or not).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.workers))
		})
	reg.GaugeFunc("radcrit_fleet_active_leases",
		"Leases currently outstanding.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.leases))
		})
	reg.GaugeFunc("radcrit_fleet_active_items",
		"Cells queued or under lease.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.items))
		})
	reg.GaugeVecFunc("radcrit_fleet_queue_depth",
		"Pending (unleased) cells per tenant.",
		[]string{"tenant"}, func(emit func([]string, float64)) {
			c.mu.Lock()
			depths := c.pending.Depths()
			c.mu.Unlock()
			for name, d := range depths {
				emit([]string{name}, float64(d))
			}
		})
	reg.GaugeVecFunc("radcrit_fleet_worker_heartbeat_seconds",
		"Age of each registered worker's last contact.",
		[]string{"worker"}, func(emit func([]string, float64)) {
			now := time.Now()
			c.mu.Lock()
			defer c.mu.Unlock()
			for _, ws := range c.workers {
				name := ws.name
				if name == "" {
					name = ws.id
				}
				emit([]string{name}, now.Sub(ws.lastSeen).Seconds())
			}
		})
}
