package fleet

import (
	"fmt"
	"testing"
	"time"

	"radcrit/internal/service"
)

// newItemLocked fabricates a queued item the way RunRemote does, without
// a blocking RunRemote goroutine behind it.
func (c *Coordinator) newItemLocked(tenantName string, weight int, cost uint64) *item {
	it := &item{
		id:     c.nextIDLocked("it"),
		req:    service.RemoteCell{Tenant: tenantName, Weight: weight, CostNS: cost, Key: fmt.Sprintf("%064x", c.seq)},
		leases: map[string]*lease{},
		done:   make(chan struct{}),
	}
	it.seq = c.seq
	c.items[it.id] = it
	c.enqueueLocked(it, 0)
	return it
}

// TestDispatchWeightedFair: with two tenants saturating the pending
// queue at equal cost and 3:1 weights, the dispatch stream serves them
// 3:1 (±10%) — the fleet-side half of the acceptance-criteria ratio.
func TestDispatchWeightedFair(t *testing.T) {
	c := NewCoordinator(Options{LeaseTTL: time.Hour})
	defer c.Close()
	c.mu.Lock()
	for i := 0; i < 40; i++ {
		c.newItemLocked("alpha", 3, 1000)
		c.newItemLocked("beta", 1, 1000)
	}
	if d := c.pending.Depths(); d["alpha"] != 40 || d["beta"] != 40 {
		c.mu.Unlock()
		t.Fatalf("tenant depths = %v", d)
	}
	w := &workerState{id: "w-1", lastSeen: time.Now()}
	counts := map[string]int{}
	for i := 0; i < 40; i++ { // both tenants still backlogged throughout
		it, stolen := c.dispatchLocked(w, time.Now())
		if it == nil || stolen {
			c.mu.Unlock()
			t.Fatalf("dispatch %d = %v (stolen=%v)", i, it, stolen)
		}
		counts[tenantOf(it.req)]++
	}
	c.mu.Unlock()
	ratio := float64(counts["alpha"]) / float64(counts["beta"])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("alpha:beta dispatch ratio = %.2f (%v), want 3.0 ±10%%", ratio, counts)
	}
}

// TestRequeueJumpsTenantBacklog: a requeued item (priority 1) dispatches
// before the same tenant's fresh backlog (priority 0) — the old
// requeue-at-front behavior, tenant-scoped.
func TestRequeueJumpsTenantBacklog(t *testing.T) {
	c := NewCoordinator(Options{LeaseTTL: time.Hour, MaxAttempts: 5})
	defer c.Close()
	c.mu.Lock()
	first := c.newItemLocked("solo", 1, 1000)
	c.newItemLocked("solo", 1, 1000)
	c.newItemLocked("solo", 1, 1000)
	w := &workerState{id: "w-1", lastSeen: time.Now()}
	got, _ := c.dispatchLocked(w, time.Now())
	if got != first {
		c.mu.Unlock()
		t.Fatalf("first dispatch = %v, want the first-submitted item", got.id)
	}
	c.requeueLocked(first) // lost its lease: back it goes, ahead of the backlog
	got, _ = c.dispatchLocked(w, time.Now())
	requeues := c.counters.Requeues
	c.mu.Unlock()
	if got != first {
		t.Fatalf("post-requeue dispatch = %v, want the requeued item first", got.id)
	}
	if requeues != 1 {
		t.Fatalf("requeues = %d, want 1", requeues)
	}
}
