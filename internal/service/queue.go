package service

// jobQueue is the scheduler's priority/FIFO queue: higher Priority pops
// first, equal priorities pop in submission order (Seq). It implements
// container/heap over *Job, tracking each job's heap index so a cancelled
// queued job can be removed in O(log n).
type jobQueue []*Job

func (q jobQueue) Len() int { return len(q) }

func (q jobQueue) Less(i, j int) bool {
	if q[i].Priority != q[j].Priority {
		return q[i].Priority > q[j].Priority
	}
	return q[i].Seq < q[j].Seq
}

func (q jobQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].heapIndex = i
	q[j].heapIndex = j
}

func (q *jobQueue) Push(x any) {
	j := x.(*Job)
	j.heapIndex = len(*q)
	*q = append(*q, j)
}

func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIndex = -1
	*q = old[:n-1]
	return j
}
