package service

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"radcrit/internal/telemetry"
	"radcrit/internal/tenant"
)

// scrape renders the registry's exposition text.
func scrape(r *telemetry.Registry) string {
	var sb strings.Builder
	r.WritePrometheus(&sb)
	return sb.String()
}

// sumSeries sums the values of every sample line of one family.
func sumSeries(t *testing.T, exposition, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(?:\{[^}]*\})? (\S+)$`)
	var total float64
	for _, match := range re.FindAllStringSubmatch(exposition, -1) {
		v, err := strconv.ParseFloat(match[1], 64)
		if err != nil {
			t.Fatalf("bad sample %q: %v", match[0], err)
		}
		total += v
	}
	return total
}

// TestManagerMetricsEndToEnd runs one job through a metered manager and
// asserts every instrumented layer shows up on the scrape: strike
// classes, chunk latency, job state transitions, cell outcomes, store
// traffic, executor gauges and drain duration.
func TestManagerMetricsEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	m, err := New(Options{StateDir: t.TempDir(), Executors: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	snap, err := m.Submit(smokePlan(64), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, StateDone)
	drain(t, m)

	out := scrape(reg)
	if got := sumSeries(t, out, "radcrit_strikes_total"); got != 64 {
		t.Errorf("strikes_total sums to %v, want 64\n%s", got, out)
	}
	if !strings.Contains(out, `radcrit_strikes_total{kernel="dgemm:128",device="k40",class=`) {
		t.Errorf("strikes_total missing kernel/device/class labels:\n%s", out)
	}
	for _, want := range []string{
		`radcrit_jobs_total{tenant="default",state="queued"} 1`,
		`radcrit_jobs_total{tenant="default",state="running"} 1`,
		`radcrit_jobs_total{tenant="default",state="done"} 1`,
		`radcrit_cells_total{tenant="default",outcome="done"} 1`,
		`radcrit_tenant_strikes_done{tenant="default"} 64`,
		"radcrit_executors 1",
		"radcrit_executors_busy 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
	if got := sumSeries(t, out, "radcrit_chunk_seconds_count"); got < 1 {
		t.Errorf("chunk histogram has no observations:\n%s", out)
	}
	// The store answered at least one Get (a miss: the cell had never
	// been computed) and one Put.
	if got := sumSeries(t, out, "radcrit_store_misses_total"); got < 1 {
		t.Errorf("store misses = %v, want >= 1", got)
	}
	if got := sumSeries(t, out, "radcrit_store_put_bytes_total"); got < 1 {
		t.Errorf("store put bytes = %v, want >= 1", got)
	}
	if got := sumSeries(t, out, "radcrit_drain_seconds"); got <= 0 {
		t.Errorf("drain_seconds = %v, want > 0", got)
	}
}

// TestMeteredStoreHit: a second identical submission is served from the
// content-addressed store and shows up as a hit plus a cached cell.
func TestMeteredStoreHit(t *testing.T) {
	reg := telemetry.NewRegistry()
	m, err := New(Options{StateDir: t.TempDir(), Executors: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	for i := 0; i < 2; i++ {
		snap, err := m.Submit(smokePlan(48), 0)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, snap.ID, StateDone)
	}
	drain(t, m)
	out := scrape(reg)
	if got := sumSeries(t, out, "radcrit_store_hits_total"); got < 1 {
		t.Errorf("store hits = %v, want >= 1\n%s", got, out)
	}
	if !strings.Contains(out, `radcrit_cells_total{tenant="default",outcome="cached"} 1`) {
		t.Errorf("scrape missing cached cell count:\n%s", out)
	}
	// Only the first run touched the engine.
	if got := sumSeries(t, out, "radcrit_strikes_total"); got != 48 {
		t.Errorf("strikes_total = %v, want 48 (cached rerun must not re-strike)", got)
	}
}

// TestReloadTenantsReweightsQueue is the hot-reload contract end to end:
// after ReloadTenants, a re-weighted tenant's share changes on the very
// next Pop, and a tenant deleted from the file keeps draining under the
// weight it was admitted with.
func TestReloadTenantsReweightsQueue(t *testing.T) {
	dir := t.TempDir()
	tpath := filepath.Join(dir, "tenants.json")
	write := func(body string) {
		t.Helper()
		if err := os.WriteFile(tpath, []byte(body), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	write(`{"tenants":[{"name":"alpha","weight":1},{"name":"beta","weight":1}]}`)
	regT, err := tenant.Load(tpath)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	m, err := New(Options{StateDir: dir, Executors: 1, Tenants: regT, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	// No Start(): the queue must hold its backlog while we reload.
	const perTenant = 40
	for i := 0; i < perTenant; i++ {
		if _, err := m.SubmitAs("alpha", smokePlan(32), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := m.SubmitAs("beta", smokePlan(32), 0); err != nil {
			t.Fatal(err)
		}
	}

	// With backlog on both tenants, the fairness collectors have series.
	out := scrape(reg)
	for _, want := range []string{
		fmt.Sprintf(`radcrit_queue_depth{tenant="alpha"} %d`, perTenant),
		`radcrit_sched_vtime_lag{tenant="alpha"}`,
		`radcrit_sched_vtime_lag{tenant="beta"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}

	// Reload: alpha now weight 3, beta deleted.
	write(`{"tenants":[{"name":"alpha","weight":3}]}`)
	if err := m.ReloadTenants(); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Tenants().Get("beta"); ok {
		t.Fatal("beta still registered after reload")
	}

	// Pop under the manager's lock, as executors would.
	m.mu.Lock()
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		j, ok := m.queue.Pop()
		if !ok {
			break
		}
		counts[j.Tenant]++
	}
	rest := 0
	for {
		j, ok := m.queue.Pop()
		if !ok {
			break
		}
		if j.Tenant == "beta" {
			rest++
		}
	}
	m.mu.Unlock()

	// Weight 3 vs 1: alpha should take ~30 of the first 40 pops.
	if counts["alpha"] < 25 || counts["alpha"] > 35 {
		t.Errorf("alpha took %d of the first 40 pops, want ~30 (3x weight)", counts["alpha"])
	}
	// Beta — deleted from the registry — still drains all its jobs.
	if counts["beta"]+rest != perTenant {
		t.Errorf("beta drained %d jobs, want %d", counts["beta"]+rest, perTenant)
	}
	// A reload error keeps the old table: corrupt the file and check.
	write(`{nope`)
	if err := m.ReloadTenants(); err == nil {
		t.Fatal("corrupt tenants.json did not error")
	}
	if w := m.Tenants().Weight("alpha"); w != 3 {
		t.Errorf("alpha weight after failed reload = %d, want 3", w)
	}
}
