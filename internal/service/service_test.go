package service

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"radcrit/internal/campaign"
	"radcrit/internal/sched"
	"radcrit/internal/tenant"
)

// TestQueuePriorityFIFO pins the scheduler's single-tenant pop order:
// higher priority first, FIFO within a priority — the pre-tenancy
// contract, which the weighted-fair queue degenerates to when only the
// default tenant submits.
func TestQueuePriorityFIFO(t *testing.T) {
	q := sched.NewQueue[*Job]()
	push := func(id string, prio int, seq uint64) {
		q.Push(tenant.Default, 1, prio, seq, 100, &Job{ID: id, Priority: prio, Seq: seq})
	}
	push("a", 0, 1)
	push("b", 0, 2)
	push("hot", 5, 3)
	push("c", 0, 4)
	push("warm", 2, 5)
	var got []string
	for {
		j, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, j.ID)
	}
	want := []string{"hot", "warm", "a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// smokePlan is a fast single-device plan for lifecycle tests.
func smokePlan(strikes int) *campaign.Plan {
	return campaign.NewPlan(42, strikes).
		Named("svc-test").
		WithCell("k40", "dgemm:128").
		WithThresholds(0, 2).
		WithWorkers(1).
		WithStreamChunk(32)
}

func newManager(t *testing.T, dir string) *Manager {
	t.Helper()
	m, err := New(Options{StateDir: dir, Executors: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func drain(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// waitState polls until the job reaches a wanted state (or fails the test).
func waitState(t *testing.T, m *Manager, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		s, err := m.Job(id)
		if err != nil {
			t.Fatalf("Job(%s): %v", id, err)
		}
		if s.State == want {
			return s
		}
		if terminal(s.State) && s.State != want {
			t.Fatalf("job %s reached %s (err %q), want %s", id, s.State, s.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Snapshot{}
}

// summariesJSON renders just the per-cell summaries of a result, the
// byte-comparison form of the bit-identity contract.
func summariesJSON(t *testing.T, jr *JobResult) string {
	t.Helper()
	type cell struct {
		Spec    campaign.CellSpec    `json:"spec"`
		Info    *campaign.StreamInfo `json:"info"`
		Summary *campaign.Summary    `json:"summary"`
	}
	var cells []cell
	for _, c := range jr.Cells {
		cells = append(cells, cell{Spec: c.Spec, Info: c.Info, Summary: c.Summary})
	}
	data, err := json.Marshal(cells)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// directSummaries runs the plan in-process through StreamRunner — the
// reference the daemon must match byte for byte.
func directSummaries(t *testing.T, p *campaign.Plan) string {
	t.Helper()
	res, err := (&campaign.StreamRunner{}).Run(context.Background(), p)
	if err != nil {
		t.Fatalf("direct StreamRunner: %v", err)
	}
	return summariesJSON(t, ResultFromPlan("direct", res))
}

// TestJobLifecycleAndStoreDedup submits the same plan twice: the first
// job computes and populates the content-addressed store, the second is
// served entirely from it, and both return summaries byte-identical to a
// direct in-process StreamRunner run.
func TestJobLifecycleAndStoreDedup(t *testing.T) {
	dir := t.TempDir()
	m := newManager(t, dir)
	m.Start()
	defer drain(t, m)

	want := directSummaries(t, smokePlan(120))

	s1, err := m.Submit(smokePlan(120), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, s1.ID, StateDone)
	r1, err := m.Result(s1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Cells) != 1 || r1.Cells[0].Cached {
		t.Fatalf("first job: %d cells, cached=%v; want 1 uncached", len(r1.Cells), r1.Cells[0].Cached)
	}
	if got := summariesJSON(t, r1); got != want {
		t.Errorf("cold-store summaries differ from direct StreamRunner run")
	}

	s2, err := m.Submit(smokePlan(120), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, s2.ID, StateDone)
	r2, err := m.Result(s2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cells[0].Cached {
		t.Errorf("second job was not served from the store")
	}
	if got := summariesJSON(t, r2); got != want {
		t.Errorf("warm-store summaries differ from direct StreamRunner run")
	}

	// Unfinished jobs refuse to produce a result; unknown jobs error.
	if _, err := m.Result("j-000000000000"); err != ErrUnknownJob {
		t.Errorf("Result(unknown) = %v, want ErrUnknownJob", err)
	}
}

// TestDrainResumeBitIdentical is the crash-resume contract end to end:
// a job is interrupted mid-campaign at a checkpoint boundary by a drain,
// a second Manager incarnation on the same state directory picks it up,
// resumes the in-flight cell from its last #CHK record, and the final
// summaries are byte-identical to an uninterrupted in-process run.
func TestDrainResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	plan := campaign.NewPlan(42, 300).
		Named("resume-test").
		WithCell("k40", "dgemm:128").
		WithCell("phi", "dgemm:128").
		WithThresholds(0, 2).
		WithWorkers(1).
		WithStreamChunk(32)
	want := directSummaries(t, plan)

	m1 := newManager(t, dir)
	s, err := m1.Submit(plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Subscribe before starting the executors so no chunk event is missed.
	events, unsub, err := m1.Subscribe(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	m1.Start()

	// Wait until cell 0 has consumed at least two chunks, then drain:
	// the executor cancels at the next chunk boundary, checkpointing the
	// in-flight cell.
	progressed := false
	timeout := time.After(60 * time.Second)
	for !progressed {
		select {
		case ev := <-events:
			if ev.Type == "chunk" && ev.Cell == 0 && ev.Done >= 64 {
				progressed = true
			}
		case <-timeout:
			t.Fatal("no chunk progress observed")
		}
	}
	drain(t, m1)

	snap, err := m1.Job(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateQueued {
		t.Fatalf("drained job state = %s, want queued", snap.State)
	}
	logPath := m1.cellLogPath(s.ID, 0)
	if _, err := os.Stat(logPath); err != nil {
		t.Fatalf("no checkpoint log survived the drain: %v", err)
	}

	// Second incarnation on the same state dir: the job is re-queued and
	// resumed to completion.
	m2 := newManager(t, dir)
	m2.Start()
	defer drain(t, m2)
	waitState(t, m2, s.ID, StateDone)
	jr, err := m2.Result(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(jr.Cells) != 2 {
		t.Fatalf("resumed job has %d cells, want 2", len(jr.Cells))
	}
	if !jr.Cells[0].Resumed {
		t.Errorf("cell 0 was not resumed from its checkpoint log")
	}
	if got := summariesJSON(t, jr); got != want {
		t.Errorf("resumed summaries differ from the uninterrupted run")
	}
	if _, err := os.Stat(logPath); !os.IsNotExist(err) {
		t.Errorf("checkpoint log not cleaned up after completion")
	}
}

// TestTornLogRestart simulates a hard crash: after a drain, the
// in-flight cell's checkpoint log is truncated mid-record (a torn write)
// before the restart. ParseResume salvages up to the last complete #CHK
// and the summary still comes out bit-identical.
func TestTornLogRestart(t *testing.T) {
	dir := t.TempDir()
	plan := smokePlan(300)
	want := directSummaries(t, plan)

	m1 := newManager(t, dir)
	s, err := m1.Submit(plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	events, unsub, err := m1.Subscribe(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	m1.Start()
	timeout := time.After(60 * time.Second)
	for progressed := false; !progressed; {
		select {
		case ev := <-events:
			if ev.Type == "chunk" && ev.Done >= 64 {
				progressed = true
			}
		case <-timeout:
			t.Fatal("no chunk progress observed")
		}
	}
	drain(t, m1)

	logPath := m1.cellLogPath(s.ID, 0)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatalf("checkpoint log: %v", err)
	}
	if err := os.WriteFile(logPath, data[:len(data)-len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := newManager(t, dir)
	m2.Start()
	defer drain(t, m2)
	waitState(t, m2, s.ID, StateDone)
	jr, err := m2.Result(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := summariesJSON(t, jr); got != want {
		t.Errorf("torn-log resumed summaries differ from the uninterrupted run")
	}
}

// TestAdaptiveJob submits a plan with an early-stopping spec: the job
// completes with the cell's recorded strike count at the measured stop
// point (100 of 300), the summary is byte-identical to a direct
// RunPlanCell run of the same cell, and a resubmission is served from
// the content-addressed store (the adaptive spec is key material).
func TestAdaptiveJob(t *testing.T) {
	adaptive := func() *campaign.Plan {
		return campaign.NewPlan(42, 300).
			Named("svc-adaptive").
			WithCell("k40", "lavamd:4").
			WithThresholds(0, 2).
			WithWorkers(1).
			WithAdaptive(campaign.AdaptiveSpec{TargetHalfWidth: 0.1, MinStrikes: 100, CheckEvery: 50})
	}
	plan := adaptive()
	cells, err := plan.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantInfo, wantSum, err := campaign.RunPlanCell(context.Background(), cells[0], plan.Config(), plan.EffectiveThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if wantInfo.Strikes != 100 {
		t.Fatalf("reference run stopped at %d strikes, expected 100", wantInfo.Strikes)
	}

	m := newManager(t, t.TempDir())
	m.Start()
	defer drain(t, m)
	s, err := m.Submit(adaptive(), 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := waitState(t, m, s.ID, StateDone)
	if cs := snap.Cells[0]; cs.Strikes != 100 || cs.Total != 300 {
		t.Fatalf("cell status %d/%d strikes, want 100/300", cs.Strikes, cs.Total)
	}
	jr, err := m.Result(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(struct {
		Info    *campaign.StreamInfo
		Summary *campaign.Summary
	}{jr.Cells[0].Info, jr.Cells[0].Summary})
	wantJSON, _ := json.Marshal(struct {
		Info    *campaign.StreamInfo
		Summary *campaign.Summary
	}{&wantInfo, wantSum})
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("adaptive job summary differs from direct run:\n%s\nvs\n%s", gotJSON, wantJSON)
	}

	s2, err := m.Submit(adaptive(), 0)
	if err != nil {
		t.Fatal(err)
	}
	snap2 := waitState(t, m, s2.ID, StateDone)
	jr2, err := m.Result(s2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !jr2.Cells[0].Cached {
		t.Errorf("identical adaptive plan was not served from the store")
	}
	if cs := snap2.Cells[0]; cs.Strikes != 100 {
		t.Errorf("cached adaptive cell status shows %d strikes, want 100", cs.Strikes)
	}
}

// TestCancelRunning cancels a job mid-flight: it lands in cancelled with
// its checkpoint logs removed, and a result document listing what
// completed.
func TestCancelRunning(t *testing.T) {
	dir := t.TempDir()
	m := newManager(t, dir)
	s, err := m.Submit(smokePlan(100_000), 0)
	if err != nil {
		t.Fatal(err)
	}
	events, unsub, err := m.Subscribe(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	m.Start()
	defer drain(t, m)
	timeout := time.After(60 * time.Second)
	for progressed := false; !progressed; {
		select {
		case ev := <-events:
			if ev.Type == "chunk" {
				progressed = true
			}
		case <-timeout:
			t.Fatal("no chunk progress observed")
		}
	}
	if _, err := m.Cancel(s.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, s.ID, StateCancelled)
	if _, err := os.Stat(m.cellLogPath(s.ID, 0)); !os.IsNotExist(err) {
		t.Errorf("cancelled job kept its checkpoint log")
	}
	if jr, err := m.Result(s.ID); err != nil || jr.State != StateCancelled {
		t.Errorf("Result of cancelled job = %v, %v", jr, err)
	}
	// Cancelling a terminal job is a no-op.
	if snap, err := m.Cancel(s.ID); err != nil || snap.State != StateCancelled {
		t.Errorf("re-cancel = %v, %v", snap, err)
	}
}

// TestPriorityScheduling submits before Start so the queue orders the
// whole batch: the high-priority job must run first.
func TestPriorityScheduling(t *testing.T) {
	dir := t.TempDir()
	m := newManager(t, dir)
	low1, err := m.Submit(smokePlan(60), 0)
	if err != nil {
		t.Fatal(err)
	}
	low2, err := m.Submit(smokePlan(90), 0)
	if err != nil {
		t.Fatal(err)
	}
	high, err := m.Submit(smokePlan(120), 7)
	if err != nil {
		t.Fatal(err)
	}
	// Pop order (white box): high first, then FIFO among equals.
	m.mu.Lock()
	var order []string
	for m.queue.Len() > 0 {
		j, _ := m.queue.Pop()
		order = append(order, j.ID)
	}
	for _, id := range order { // restore
		m.enqueueLocked(m.jobs[id])
	}
	m.mu.Unlock()
	want := []string{high.ID, low1.ID, low2.ID}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("scheduling order %v, want %v", order, want)
		}
	}
	m.Start()
	defer drain(t, m)
	waitState(t, m, high.ID, StateDone)
	waitState(t, m, low1.ID, StateDone)
	waitState(t, m, low2.ID, StateDone)
}

// TestSubmitValidation rejects invalid plans up front.
func TestSubmitValidation(t *testing.T) {
	m := newManager(t, t.TempDir())
	if _, err := m.Submit(campaign.NewPlan(1, 0).WithCell("k40", "dgemm:128"), 0); err == nil {
		t.Errorf("zero-strike plan accepted")
	}
	if _, err := m.Submit(campaign.NewPlan(1, 10).WithCell("nope", "dgemm:128"), 0); err == nil {
		t.Errorf("unknown-device plan accepted")
	}
	drain(t, m)
	if _, err := m.Submit(smokePlan(10), 0); err != ErrDraining {
		t.Errorf("Submit after drain = %v, want ErrDraining", err)
	}
}

// TestJobRetention pins the MaxJobs prune: oldest terminal jobs (record
// and state directory) are evicted once the table exceeds the cap, while
// live jobs are untouched.
func TestJobRetention(t *testing.T) {
	dir := t.TempDir()
	m, err := New(Options{StateDir: dir, Executors: 1, MaxJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer drain(t, m)
	var ids []string
	for i := 0; i < 4; i++ {
		s, err := m.Submit(smokePlan(60+i), 0)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, s.ID, StateDone)
		ids = append(ids, s.ID)
	}
	// The last submission prunes down to MaxJobs: only the newest two
	// survive.
	for i, id := range ids {
		_, err := m.Job(id)
		if i < 2 {
			if err != ErrUnknownJob {
				t.Errorf("job %d (%s) not pruned: %v", i, id, err)
			}
			if _, serr := os.Stat(m.jobDir(id)); !os.IsNotExist(serr) {
				t.Errorf("job %d (%s) directory not removed", i, id)
			}
		} else if err != nil {
			t.Errorf("job %d (%s) wrongly pruned: %v", i, id, err)
		}
	}
}

// TestCancelBetweenPopAndClaim pins the pop/claim race fix: a job
// cancelled in the instant after an executor dequeues it but before
// runJob claims it must stay cancelled, not resurrect and run.
func TestCancelBetweenPopAndClaim(t *testing.T) {
	m := newManager(t, t.TempDir())
	s, err := m.Submit(smokePlan(100_000), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the race deterministically: pop the job (no executors are
	// running), cancel it, then hand it to runJob as an executor would.
	j := m.next()
	if j == nil || j.ID != s.ID {
		t.Fatalf("next() = %v", j)
	}
	if _, err := m.Cancel(s.ID); err != nil {
		t.Fatal(err)
	}
	m.runJob(m.baseCtx, j)
	snap, err := m.Job(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateCancelled {
		t.Errorf("job state after pop-race cancel = %s, want cancelled", snap.State)
	}
	drain(t, m)
}

// TestTerminalEventClosesSlowSubscriber pins the event-stream exit
// guarantee: a subscriber too far behind to receive the terminal state
// event has its channel closed instead, so an SSE stream can never hang
// on a finished job.
func TestTerminalEventClosesSlowSubscriber(t *testing.T) {
	m := newManager(t, t.TempDir())
	s, err := m.Submit(smokePlan(10), 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, unsub, err := m.Subscribe(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	m.mu.Lock()
	for i := 0; i < 400; i++ { // overflow the 256-slot buffer
		m.publishLocked(Event{Type: "chunk", JobID: s.ID, Cell: 0, Done: i})
	}
	m.publishLocked(Event{Type: "state", JobID: s.ID, State: StateDone})
	m.mu.Unlock()
	n := 0
	for range ch { // terminates only if the channel was closed
		n++
		if n > 500 {
			t.Fatal("channel never closed")
		}
	}
	if n != 256 {
		t.Errorf("drained %d buffered events, want 256", n)
	}
	drain(t, m)
}
