package service

import (
	"context"
	"errors"

	"radcrit/internal/campaign"
)

// ErrRemoteUnavailable is a RemoteRunner's signal that a cell cannot be
// executed remotely right now (no healthy workers, or the fleet gave up
// after repeated lease losses). The manager reacts by degrading to local
// in-process execution — seeded from whatever checkpoint prefix the
// remote attempt streamed back — instead of stalling the queue.
var ErrRemoteUnavailable = errors.New("service: remote execution unavailable")

// RemoteCell describes one cell the manager offers to a remote executor.
// Everything a worker needs to reproduce the cell bit-identically is
// here: the spec strings, the engine config, the summary thresholds and
// (for a cell interrupted mid-flight) the checkpoint log to resume from.
type RemoteCell struct {
	JobID      string
	Cell       int
	Spec       campaign.CellSpec
	Cfg        campaign.Config
	Thresholds []float64
	// Key is the cell's content address (campaign.CellKey).
	Key string
	// Tenant names the namespace the owning job was submitted under; the
	// coordinator schedules pending work weighted-fairly across tenants
	// using Weight and CostNS, exactly like the local executor queue.
	Tenant string
	Weight int
	CostNS uint64
	// PrevLog is the cell's checkpoint log so far — empty for a fresh
	// cell, a salvageable #CHK-checkpointed prefix for one a previous
	// attempt (local or remote) already progressed.
	PrevLog []byte

	// Progress relays the cell's flushed strike count (monotonic
	// non-decreasing across the whole remote attempt, whatever worker or
	// lease produced it). May be nil.
	Progress func(strikes int)
	// SaveLog durably persists the cell's best checkpoint log so far; the
	// manager writes it to the job's cell log file, which is what lets a
	// coordinator restart — or a degrade-to-local fallback — resume from
	// the last streamed #CHK record instead of strike zero. Calls are
	// serialised by the RemoteRunner. May be nil.
	SaveLog func(log []byte)
}

// RemoteResult is a remotely executed cell's outcome. Summary floats
// survive the JSON hop bit-exactly (shortest-round-trip encoding), so a
// remote summary is byte-identical to a local run of the same cell.
type RemoteResult struct {
	Info    campaign.StreamInfo
	Summary *campaign.Summary
	// Worker names the worker that produced the result (observability
	// only; never part of any bit-identity comparison).
	Worker string
}

// RemoteRunner executes cells somewhere else — radcritd's fleet
// coordinator implements it. Contract:
//
//   - A nil error means the cell ran to completion and the result is
//     authoritative (the engine is deterministic, so worker identity is
//     irrelevant).
//   - ErrRemoteUnavailable (possibly wrapped) means the fleet cannot run
//     the cell now; the caller should run it locally. Any streamed
//     checkpoint prefix has already been handed to SaveLog.
//   - ctx errors propagate as-is (the caller distinguishes cancellation
//     from failure exactly as for local execution).
//   - Any other error is the cell's own deterministic failure, reported
//     by a worker.
type RemoteRunner interface {
	RunRemote(ctx context.Context, req RemoteCell) (*RemoteResult, error)
}
