package service

import (
	"time"

	"radcrit/internal/fault"
	"radcrit/internal/injector"
	"radcrit/internal/store"
	"radcrit/internal/telemetry"
)

// EngineMetrics owns the campaign engine's telemetry families: strike
// outcomes by kernel/device/class and chunk latency by kernel. One set
// per registry; the service manager and the fleet worker both consume it
// through Sink.
type EngineMetrics struct {
	strikes *telemetry.CounterVec
	chunks  *telemetry.HistogramVec
}

// NewEngineMetrics registers the engine families on reg (idempotent —
// re-registration returns the same underlying state).
func NewEngineMetrics(reg *telemetry.Registry) *EngineMetrics {
	return &EngineMetrics{
		strikes: reg.CounterVec("radcrit_strikes_total",
			"Strikes executed, by kernel, device and fault class (masked, sdc, due).",
			[]string{"kernel", "device", "class"}),
		chunks: reg.HistogramVec("radcrit_chunk_seconds",
			"Wall time between consecutive chunk boundaries of a streaming cell.",
			telemetry.DefBuckets, []string{"kernel"}),
	}
}

// Sink builds a campaign sink that meters one cell's strike stream. The
// counter children are resolved here, once per cell; Consume is a plain
// local increment (the engine delivers outcomes from a single goroutine,
// in order) and the accumulated tallies reach the shared counters only
// at chunk boundaries — the strike hot path performs zero atomic or
// shared-memory operations per strike.
func (em *EngineMetrics) Sink(kernel, device string) *StrikeSink {
	return &StrikeSink{
		masked: em.strikes.With(kernel, device, "masked"),
		sdc:    em.strikes.With(kernel, device, "sdc"),
		due:    em.strikes.With(kernel, device, "due"),
		chunk:  em.chunks.With(kernel),
		last:   time.Now(),
	}
}

// StrikeSink implements campaign.Sink and campaign.ChunkFlusher: it
// tallies fault classes locally per chunk and flushes to pre-resolved
// counters at chunk boundaries.
type StrikeSink struct {
	masked, sdc, due *telemetry.Counter
	chunk            *telemetry.Histogram

	nMasked, nSDC, nDUE uint64
	last                time.Time
}

// Consume tallies one strike outcome. Crash and Hang fold into the
// paper's DUE class (detected unrecoverable error).
func (s *StrikeSink) Consume(_ int, out injector.Outcome) {
	switch out.Class {
	case fault.Masked:
		s.nMasked++
	case fault.SDC:
		s.nSDC++
	default:
		s.nDUE++
	}
}

// FlushChunk publishes the chunk's tallies and latency.
func (s *StrikeSink) FlushChunk(int) {
	now := time.Now()
	s.chunk.Observe(now.Sub(s.last).Seconds())
	s.last = now
	if s.nMasked > 0 {
		s.masked.Add(s.nMasked)
		s.nMasked = 0
	}
	if s.nSDC > 0 {
		s.sdc.Add(s.nSDC)
		s.nSDC = 0
	}
	if s.nDUE > 0 {
		s.due.Add(s.nDUE)
		s.nDUE = 0
	}
}

// managerMetrics is the Manager's own instrumentation: event counters
// incremented at job/cell transitions, plus scrape-time collectors over
// the queue and job table (registered in newManagerMetrics; they take
// m.mu only while a scrape is rendering).
type managerMetrics struct {
	engine *EngineMetrics
	jobs   *telemetry.CounterVec
	cells  *telemetry.CounterVec
	busy   *telemetry.Gauge
	drain  *telemetry.Gauge
}

// newManagerMetrics registers the manager's families and collectors.
// Called from New before Start, never under m.mu.
func newManagerMetrics(reg *telemetry.Registry, m *Manager) *managerMetrics {
	mm := &managerMetrics{
		engine: NewEngineMetrics(reg),
		jobs: reg.CounterVec("radcrit_jobs_total",
			"Job state transitions, by tenant and entered state.",
			[]string{"tenant", "state"}),
		cells: reg.CounterVec("radcrit_cells_total",
			"Completed cells, by tenant and outcome (done, failed, cached, resumed, remote).",
			[]string{"tenant", "outcome"}),
		busy: reg.Gauge("radcrit_executors_busy",
			"Executors currently running a job."),
		drain: reg.Gauge("radcrit_drain_seconds",
			"Duration of the last completed drain."),
	}
	reg.GaugeFunc("radcrit_executors",
		"Size of the executor pool.",
		func() float64 { return float64(m.opts.Executors) })
	reg.GaugeVecFunc("radcrit_queue_depth",
		"Queued jobs per tenant.",
		[]string{"tenant"}, func(emit func([]string, float64)) {
			m.mu.Lock()
			depths := m.queue.Depths()
			m.mu.Unlock()
			for name, d := range depths {
				emit([]string{name}, float64(d))
			}
		})
	reg.GaugeVecFunc("radcrit_sched_vtime_lag",
		"Per-tenant virtual-time lag of the weighted-fair queue (fairness drift: ~0 is a fair share, persistently negative is starvation).",
		[]string{"tenant"}, func(emit func([]string, float64)) {
			m.mu.Lock()
			lags := m.queue.Lags()
			m.mu.Unlock()
			for name, l := range lags {
				emit([]string{name}, l)
			}
		})
	reg.GaugeVecFunc("radcrit_tenant_weight",
		"Registered scheduling weight per tenant.",
		[]string{"tenant"}, func(emit func([]string, float64)) {
			for _, t := range m.tenants.All() {
				emit([]string{t.Name}, float64(t.EffectiveWeight()))
			}
		})
	reg.GaugeVecFunc("radcrit_tenant_strikes_done",
		"Strikes consumed so far across a tenant's known jobs.",
		[]string{"tenant"}, func(emit func([]string, float64)) {
			for name, done := range m.tenantStrikes() {
				emit([]string{name}, float64(done))
			}
		})
	return mm
}

// tenantStrikes sums consumed strikes over the job table, per tenant.
func (m *Manager) tenantStrikes() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[string]int{}
	for _, j := range m.jobs {
		for _, c := range j.cells {
			out[j.Tenant] += c.Strikes
		}
	}
	return out
}

// countState records one job state transition (nil-safe).
func (mm *managerMetrics) countState(tenant string, s State) {
	if mm == nil {
		return
	}
	mm.jobs.With(tenant, string(s)).Inc()
}

// countCell records one completed cell's outcome (nil-safe). Precedence:
// failed > cached > resumed > remote > done, so each cell lands in
// exactly one class.
func (mm *managerMetrics) countCell(tenant string, cr *CellResult) {
	if mm == nil {
		return
	}
	outcome := "done"
	switch {
	case cr.Error != "":
		outcome = "failed"
	case cr.Cached:
		outcome = "cached"
	case cr.Resumed:
		outcome = "resumed"
	case cr.Remote:
		outcome = "remote"
	}
	mm.cells.With(tenant, outcome).Inc()
}

// sink builds a cell's strike-metering sink (nil when unmetered).
func (mm *managerMetrics) sink(kernel, device string) *StrikeSink {
	if mm == nil {
		return nil
	}
	return mm.engine.Sink(kernel, device)
}

// backendName labels a store backend's metric series.
func backendName(b store.Backend) string {
	switch b.(type) {
	case *store.Store:
		return "disk"
	case *store.Mem:
		return "mem"
	default:
		return "remote"
	}
}
