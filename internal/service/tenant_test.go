package service

import (
	"errors"
	"testing"
	"time"

	"radcrit/internal/tenant"
)

// tenantRegistry builds an in-memory registry with alpha (weight 3) and
// beta (weight 1) alongside the default tenant.
func tenantRegistry(t *testing.T) *tenant.Registry {
	t.Helper()
	r := tenant.NewRegistry()
	for _, tn := range []tenant.Tenant{
		{Name: "alpha", Weight: 3},
		{Name: "beta", Weight: 1},
	} {
		if err := r.Upsert(tn); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// TestTenantWeightedPopOrder pins the acceptance-criteria scheduling
// ratio at the queue seam: with alpha at weight 3 and beta at weight 1
// both saturating the queue with equal-cost jobs, the executor pop
// stream serves them 3:1 (±10%) while both still have backlog.
func TestTenantWeightedPopOrder(t *testing.T) {
	m, err := New(Options{StateDir: t.TempDir(), Executors: 2, Tenants: tenantRegistry(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, m) // never started: drain just closes bookkeeping
	for i := 0; i < 40; i++ {
		// Identical plans, so every job prices identically and the pop
		// ratio reads the weights directly (the jobs never execute here).
		if _, err := m.SubmitAs("alpha", smokePlan(100), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := m.SubmitAs("beta", smokePlan(100), 0); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[string]int{}
	m.mu.Lock()
	for i := 0; i < 40; i++ { // mid-drain window: both tenants backlogged
		j, ok := m.queue.Pop()
		if !ok {
			break
		}
		counts[j.Tenant]++
	}
	m.mu.Unlock()
	ratio := float64(counts["alpha"]) / float64(counts["beta"])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("alpha:beta pop ratio = %.2f (%v), want 3.0 ±10%%", ratio, counts)
	}
}

func TestTenantQuotas(t *testing.T) {
	reg := tenant.NewRegistry()
	if err := reg.Upsert(tenant.Tenant{
		Name:   "capped",
		Quotas: tenant.Quotas{MaxQueuedJobs: 2, MaxPlannedStrikes: 500},
	}); err != nil {
		t.Fatal(err)
	}
	m, err := New(Options{StateDir: t.TempDir(), Executors: 2, Tenants: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, m)

	if _, err := m.SubmitAs("nobody", smokePlan(10), 0); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant submit = %v, want ErrUnknownTenant", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.SubmitAs("capped", smokePlan(10+i), 0); err != nil {
			t.Fatal(err)
		}
	}
	_, err = m.SubmitAs("capped", smokePlan(30), 0)
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("over-quota submit = %v, want *QuotaError", err)
	}
	if qe.Tenant != "capped" || qe.RetryAfter < time.Second || qe.RetryAfter > time.Minute {
		t.Fatalf("quota error = %+v", qe)
	}
	// The strike-budget quota trips independently of job count: cancel a
	// job to free the queue slot, then submit a plan too large in strikes.
	snaps := m.Jobs()
	if _, err := m.Cancel(snaps[0].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SubmitAs("capped", smokePlan(495), 0); !errors.As(err, &qe) {
		t.Fatalf("strike-quota submit = %v, want *QuotaError", err)
	} else if qe.Detail == "" {
		t.Error("quota error carries no detail")
	}
	// The default tenant is never quota-bound.
	if _, err := m.Submit(smokePlan(40), 0); err != nil {
		t.Fatalf("default tenant submit: %v", err)
	}
}

// TestTenantStoreIsolationAndBitIdentity runs the same plan as three
// tenants: the default tenant computes and caches it; a second tenant
// must NOT be served from the default namespace (no cross-tenant dedup)
// yet must produce byte-identical summaries; a repeat submission within
// that tenant dedups normally.
func TestTenantStoreIsolationAndBitIdentity(t *testing.T) {
	m, err := New(Options{StateDir: t.TempDir(), Executors: 1, Tenants: tenantRegistry(t)})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer drain(t, m)
	want := directSummaries(t, smokePlan(120))

	run := func(tn string) *JobResult {
		s, err := m.SubmitAs(tn, smokePlan(120), 0)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, s.ID, StateDone)
		jr, err := m.Result(s.ID)
		if err != nil {
			t.Fatal(err)
		}
		return jr
	}

	first := run(tenant.Default)
	if first.Cells[0].Cached {
		t.Fatal("first run reported cached")
	}
	if got := summariesJSON(t, first); got != want {
		t.Fatalf("default summaries diverge:\n got %s\nwant %s", got, want)
	}

	alpha := run("alpha")
	if alpha.Cells[0].Cached {
		t.Fatal("alpha was served from another tenant's namespace")
	}
	if got := summariesJSON(t, alpha); got != want {
		t.Fatalf("alpha summaries diverge from direct run:\n got %s\nwant %s", got, want)
	}

	alpha2 := run("alpha")
	if !alpha2.Cells[0].Cached {
		t.Fatal("intra-tenant dedup did not fire")
	}
	if got := summariesJSON(t, alpha2); got != want {
		t.Fatalf("cached alpha summaries diverge:\n got %s", got)
	}

	stats := m.TenantStats()
	byName := map[string]TenantStat{}
	for _, ts := range stats {
		byName[ts.Tenant] = ts
	}
	if byName["alpha"].Weight != 3 || byName["beta"].Weight != 1 || byName[tenant.Default].Weight != 1 {
		t.Fatalf("TenantStats weights wrong: %+v", stats)
	}
	if byName["alpha"].Jobs[StateDone] != 2 || byName[tenant.Default].Jobs[StateDone] != 1 {
		t.Fatalf("TenantStats job counts wrong: %+v", stats)
	}
	if byName["alpha"].StrikesDone != 240 {
		t.Fatalf("alpha strikes done = %d, want 240", byName["alpha"].StrikesDone)
	}
}

// TestTenantSurvivesRestart: a non-default tenant's queued job record
// reloads with its tenant intact.
func TestTenantSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	reg := tenantRegistry(t)
	m1, err := New(Options{StateDir: dir, Executors: 1, Tenants: reg})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m1.SubmitAs("beta", smokePlan(90), 2)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, m1) // never started: the job stays queued on disk

	m2, err := New(Options{StateDir: dir, Executors: 1, Tenants: reg})
	if err != nil {
		t.Fatal(err)
	}
	m2.Start()
	defer drain(t, m2)
	snap := waitState(t, m2, s.ID, StateDone)
	if snap.Tenant != "beta" || snap.Priority != 2 {
		t.Fatalf("reloaded job = tenant %q priority %d, want beta/2", snap.Tenant, snap.Priority)
	}
}
