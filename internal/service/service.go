// Package service turns the campaign engine into a long-lived,
// multi-tenant job service: clients submit declarative Plans (PR 3) under
// a tenant namespace, a cost-priced weighted-fair queue (internal/sched)
// over per-tenant sub-queues feeds a bounded executor pool — within one
// tenant the old priority/FIFO order holds exactly — every cell streams
// through the engine with live progress, and the whole thing survives
// restarts — in-flight cells checkpoint continuously (campaign
// CheckpointSink) and a restarted manager resumes them from the last #CHK
// record with bit-identical final summaries (campaign.ResumePlanCell).
//
// Completed cell summaries are filed in a persistent content-addressed
// store under campaign.CellKey, so identical cells across jobs, clients
// and process lifetimes are served from disk instead of re-executed —
// the across-restart extension of the engine's in-process single-flight
// memo.
//
// The state directory layout is plain files:
//
//	state/
//	  store/ab/abcd...        content-addressed cell summaries (LRU GC)
//	  jobs/<id>/job.json      job record: plan, priority, state
//	  jobs/<id>/cell-3.log    checkpoint log of an in-flight cell
//	  jobs/<id>/cell-3.json   durable outcome of a completed cell
//	  jobs/<id>/result.json   final per-cell summaries of a finished job
package service

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"radcrit/internal/campaign"
	"radcrit/internal/injector"
	"radcrit/internal/sched"
	"radcrit/internal/store"
	"radcrit/internal/telemetry"
	"radcrit/internal/tenant"
)

// State is a job's lifecycle position.
type State string

const (
	// StateQueued covers both never-started jobs and jobs interrupted by
	// a daemon drain/crash: their checkpoint logs are on disk and the
	// next executor to pick them up resumes rather than restarts.
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final — the one lifecycle
// predicate, shared with the API layer (SSE stream end, client Wait).
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// terminal is the package-internal spelling of State.Terminal.
func terminal(s State) bool { return s.Terminal() }

// CellStatus is one plan cell's live progress.
type CellStatus struct {
	// State is "pending", "running", "done" or "failed".
	State string `json:"state"`
	// Strikes is the number of strikes consumed so far (chunk-aligned).
	Strikes int `json:"strikes"`
	// Total is the cell's strike budget.
	Total int `json:"total"`
	// Cached marks a cell served from the content-addressed store.
	Cached bool `json:"cached,omitempty"`
	// Resumed marks a cell recovered from a checkpoint log.
	Resumed bool `json:"resumed,omitempty"`
	// Error is the cell's failure, if any.
	Error string `json:"error,omitempty"`
}

// Snapshot is a job's wire-facing status.
type Snapshot struct {
	ID           string       `json:"id"`
	Tenant       string       `json:"tenant,omitempty"`
	State        State        `json:"state"`
	Priority     int          `json:"priority"`
	Name         string       `json:"name,omitempty"`
	Cells        []CellStatus `json:"cells"`
	StrikesDone  int          `json:"strikes_done"`
	StrikesTotal int          `json:"strikes_total"`
	Error        string       `json:"error,omitempty"`
	Created      time.Time    `json:"created"`
	Started      *time.Time   `json:"started,omitempty"`
	Finished     *time.Time   `json:"finished,omitempty"`
}

// CellResult is one cell's completed outcome on the wire (and in the
// job's result.json / the store's entries). Summary floats survive the
// JSON round trip bit-exactly: encoding/json emits the shortest decimal
// that re-parses to the same float64.
type CellResult struct {
	Spec campaign.CellSpec `json:"spec"`
	// Key is the cell's content address (campaign.CellKey).
	Key string `json:"key,omitempty"`
	// Cached marks a summary served from the store instead of executed.
	Cached bool `json:"cached,omitempty"`
	// Resumed marks a summary completed from a checkpoint log after a
	// daemon restart.
	Resumed bool `json:"resumed,omitempty"`
	// Remote marks a summary computed by a fleet worker; Worker names it.
	// Observability only — remote summaries are byte-identical to local
	// ones, which is exactly what the chaos suite pins.
	Remote  bool                 `json:"remote,omitempty"`
	Worker  string               `json:"worker,omitempty"`
	Error   string               `json:"error,omitempty"`
	Info    *campaign.StreamInfo `json:"info,omitempty"`
	Summary *campaign.Summary    `json:"summary,omitempty"`
}

// JobResult is a finished job's record: one CellResult per completed
// cell, in plan order (a cancelled or failed job may hold fewer entries
// than the plan has cells).
type JobResult struct {
	ID         string       `json:"id"`
	State      State        `json:"state"`
	Name       string       `json:"name,omitempty"`
	Thresholds []float64    `json:"thresholds"`
	Cells      []CellResult `json:"cells"`
}

// ResultFromPlan renders an in-process PlanResult in the service's wire
// shape — the comparison form for "daemon result equals direct
// StreamRunner run" checks (CI's service smoke, the API's e2e suite).
func ResultFromPlan(id string, res *campaign.PlanResult) *JobResult {
	jr := &JobResult{
		ID:         id,
		State:      StateDone,
		Name:       res.Plan.Name,
		Thresholds: append([]float64(nil), res.Thresholds...),
	}
	for i, out := range res.Cells {
		cr := CellResult{Spec: out.Spec, Key: res.Plan.CellKey(i)}
		if out.Err != nil {
			cr.Error = out.Err.Error()
			jr.State = StateFailed
		}
		if out.Summary != nil {
			info := out.Info
			cr.Info = &info
			cr.Summary = out.Summary
		}
		jr.Cells = append(jr.Cells, cr)
	}
	return jr
}

// StoreRecord is the content-addressed store's entry payload.
type StoreRecord struct {
	Key     string               `json:"key"`
	Spec    campaign.CellSpec    `json:"spec"`
	Info    *campaign.StreamInfo `json:"info"`
	Summary *campaign.Summary    `json:"summary"`
}

// Event is one progress notification on a job's event stream.
type Event struct {
	// Type is "state" (job state change), "cell" (cell finished) or
	// "chunk" (strike progress within a cell).
	Type string `json:"type"`
	// Seq orders the job's events (1, 2, 3, ...). The SSE handler emits
	// it as the event id, and SubscribeFrom replays events after a given
	// seq from the job's ring buffer — the server half of Last-Event-ID
	// reconnect resume.
	Seq    uint64 `json:"seq,omitempty"`
	JobID  string `json:"job"`
	State  State  `json:"state,omitempty"`
	Cell   int    `json:"cell"`
	Done   int    `json:"done,omitempty"`
	Total  int    `json:"total,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

// eventRingCap bounds the per-job replay ring behind Last-Event-ID
// resume. A reconnecting client further behind than this still gets the
// full status snapshot first, so nothing is ever wrong — only the replay
// is best-effort.
const eventRingCap = 512

// Job is the manager's record of one submitted plan. All mutable fields
// are guarded by the manager's mutex; handlers only ever see copies
// (Snapshot, JobResult).
type Job struct {
	ID       string
	Tenant   string
	Seq      uint64
	Priority int
	Plan     *campaign.Plan

	State    State
	Error    string
	Created  time.Time
	Started  *time.Time
	Finished *time.Time

	cells      []CellStatus
	outcomes   []CellResult
	result     *JobResult
	cancel     context.CancelFunc // non-nil while running
	userCancel bool
	eventSeq   uint64
	events     []Event // ring of the last eventRingCap published events
}

// jobRecord is job.json: what survives a restart.
type jobRecord struct {
	ID       string         `json:"id"`
	Tenant   string         `json:"tenant,omitempty"`
	Seq      uint64         `json:"seq"`
	Priority int            `json:"priority"`
	State    State          `json:"state"`
	Error    string         `json:"error,omitempty"`
	Created  time.Time      `json:"created"`
	Plan     *campaign.Plan `json:"plan"`
}

// Options configures a Manager.
type Options struct {
	// StateDir is the root of all persistent state (jobs + store).
	StateDir string
	// Executors bounds how many jobs run concurrently (default 2). Each
	// job's strike-level parallelism is its plan's Workers setting.
	Executors int
	// StoreCap is the content-addressed store's size cap in bytes; the
	// LRU GC runs after every store write. <= 0 disables eviction.
	StoreCap int64
	// MaxJobs bounds how many job records the manager retains. When a
	// submission would exceed it, the oldest *terminal* jobs are pruned —
	// in-memory record and jobs/<id>/ directory alike (their deduplicated
	// cell summaries live on in the store). Queued and running jobs are
	// never pruned. <= 0 selects the default of 1024.
	MaxJobs int
	// Backend overrides the content-addressed result store (nil opens the
	// disk store at StateDir/store). Keys written on behalf of non-default
	// tenants carry store.TenantPrefix, so tenants never share dedup hits.
	Backend store.Backend
	// Tenants is the registry consulted for scheduling weights and
	// admission quotas (nil builds an in-memory registry holding only the
	// unlimited default tenant — the pre-tenancy behaviour).
	Tenants *tenant.Registry
	// Remote, when non-nil, offers each cell to a remote executor (the
	// fleet coordinator) before running it locally. With a Remote set, a
	// job's cells are dispatched concurrently — sharded across whatever
	// workers the fleet has — while local fallback execution stays
	// serialised per job, so a fleetless manager behaves exactly like the
	// sequential one.
	Remote RemoteRunner
	// Metrics, when non-nil, instruments the manager on that registry:
	// job/cell transition counters, queue-depth and fairness-drift
	// collectors, store hit/miss metering (the backend is wrapped), and
	// per-chunk engine metering on locally executed cells. Nil runs
	// unmetered with zero overhead.
	Metrics *telemetry.Registry
}

// ErrNotFinished is returned by Result for a job still queued or running.
var ErrNotFinished = errors.New("service: job has not finished")

// ErrUnknownJob is returned for job IDs the manager has never seen.
var ErrUnknownJob = errors.New("service: unknown job")

// ErrDraining is returned by Submit once a drain has begun.
var ErrDraining = errors.New("service: manager is draining")

// ErrUnknownTenant is returned by SubmitAs for unregistered tenants.
var ErrUnknownTenant = errors.New("service: unknown tenant")

// QuotaError rejects a submission that would exceed the tenant's
// admission quotas. The API layer renders it as 429 with a Retry-After
// header; RetryAfter estimates when the tenant's backlog will have
// drained enough for the submission to fit, from the cost model's
// pricing of its outstanding work.
type QuotaError struct {
	Tenant     string
	Detail     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("service: tenant %q over quota: %s", e.Tenant, e.Detail)
}

// Manager owns the queue, the executor pool, the job table and the
// result store. Create with New, start executors with Start, stop with
// Drain — which checkpoints in-flight jobs so a successor Manager on the
// same state directory resumes them.
type Manager struct {
	opts    Options
	store   store.Backend
	tenants *tenant.Registry
	cost    sched.CostModel
	metrics *managerMetrics // nil when Options.Metrics is nil

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu     sync.Mutex
	cond   *sync.Cond
	jobs   map[string]*Job
	queue  *sched.Queue[*Job]
	seq    uint64
	closed bool
	subs   map[string]map[chan Event]bool
}

// New opens (or creates) the state directory, loads persisted jobs —
// re-queueing any that were queued or running when the previous process
// stopped — and opens the content-addressed store. Call Start to begin
// executing.
func New(opts Options) (*Manager, error) {
	if opts.StateDir == "" {
		return nil, fmt.Errorf("service: Options.StateDir is required")
	}
	if opts.Executors <= 0 {
		opts.Executors = 2
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 1024
	}
	backend := opts.Backend
	if backend == nil {
		st, err := store.Open(filepath.Join(opts.StateDir, "store"))
		if err != nil {
			return nil, err
		}
		backend = st
	}
	tenants := opts.Tenants
	if tenants == nil {
		tenants = tenant.NewRegistry()
	}
	if opts.Metrics != nil {
		backend = store.NewMetrics(opts.Metrics).Wrap(backend, backendName(backend))
	}
	if err := os.MkdirAll(filepath.Join(opts.StateDir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:       opts,
		store:      backend,
		tenants:    tenants,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		queue:      sched.NewQueue[*Job](),
		subs:       map[string]map[chan Event]bool{},
	}
	m.cond = sync.NewCond(&m.mu)
	if opts.Metrics != nil {
		m.metrics = newManagerMetrics(opts.Metrics, m)
	}
	if err := m.load(); err != nil {
		cancel()
		return nil, err
	}
	return m, nil
}

// Store exposes the result store backend (stats endpoints, tests).
func (m *Manager) Store() store.Backend { return m.store }

// Tenants exposes the tenant registry (API middleware, tests).
func (m *Manager) Tenants() *tenant.Registry { return m.tenants }

// load restores the job table from the state directory.
func (m *Manager) load() error {
	entries, err := os.ReadDir(filepath.Join(m.opts.StateDir, "jobs"))
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	var loaded []*Job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(m.opts.StateDir, "jobs", e.Name(), "job.json"))
		if err != nil {
			continue // half-created job dir: ignore
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil || rec.ID == "" || rec.Plan == nil {
			continue
		}
		if err := rec.Plan.Validate(); err != nil {
			continue // a plan this build can no longer run (deregistered kernel)
		}
		j := &Job{
			ID:       rec.ID,
			Tenant:   rec.Tenant,
			Seq:      rec.Seq,
			Priority: rec.Priority,
			Plan:     rec.Plan,
			State:    rec.State,
			Error:    rec.Error,
			Created:  rec.Created,
		}
		if j.Tenant == "" {
			j.Tenant = tenant.Default // records from a pre-tenancy daemon
		}
		j.cells = newCellStatuses(rec.Plan)
		// A job that was mid-flight when the previous process stopped is
		// simply queued again: its completed cells reload from
		// cell-<i>.json and its in-flight cell resumes from its log.
		if j.State == StateRunning {
			j.State = StateQueued
		}
		m.markRestoredCells(j)
		loaded = append(loaded, j)
	}
	sort.Slice(loaded, func(i, k int) bool { return loaded[i].Seq < loaded[k].Seq })
	for _, j := range loaded {
		m.jobs[j.ID] = j
		if j.Seq >= m.seq {
			m.seq = j.Seq + 1
		}
		if j.State == StateQueued {
			m.enqueueLocked(j)
			m.persistJobLocked(j) // running -> queued transition
		}
	}
	m.pruneJobsLocked()
	return nil
}

// markRestoredCells fills a reloaded job's cell statuses from its durable
// per-cell outcomes, so status reads are accurate before re-execution.
func (m *Manager) markRestoredCells(j *Job) {
	for i := range j.cells {
		data, err := os.ReadFile(m.cellResultPath(j.ID, i))
		if err != nil {
			continue
		}
		var cr CellResult
		if json.Unmarshal(data, &cr) != nil {
			continue
		}
		switch {
		case cr.Error != "":
			j.cells[i].State = "failed"
			j.cells[i].Error = cr.Error
		case cr.Summary != nil:
			j.cells[i].State = "done"
			// Info carries the true consumed count (an adaptive stop
			// consumes fewer strikes than planned); Total covers records
			// persisted before Info existed.
			j.cells[i].Strikes = j.cells[i].Total
			if cr.Info != nil {
				j.cells[i].Strikes = cr.Info.Strikes
			}
			j.cells[i].Cached = cr.Cached
			j.cells[i].Resumed = cr.Resumed
		}
	}
}

func newCellStatuses(p *campaign.Plan) []CellStatus {
	cells := make([]CellStatus, len(p.Cells))
	for i := range cells {
		cells[i] = CellStatus{State: "pending", Total: p.Strikes}
	}
	return cells
}

// Start launches the executor pool.
func (m *Manager) Start() {
	for i := 0; i < m.opts.Executors; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for {
				j := m.next()
				if j == nil {
					return
				}
				if m.metrics != nil {
					m.metrics.busy.Add(1)
				}
				m.runJob(m.baseCtx, j)
				if m.metrics != nil {
					m.metrics.busy.Add(-1)
				}
			}
		}()
	}
}

// next blocks until a job is available or the manager is draining.
func (m *Manager) next() *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.queue.Len() == 0 && !m.closed {
		m.cond.Wait()
	}
	if m.closed {
		return nil
	}
	j, _ := m.queue.Pop()
	return j
}

// enqueueLocked pushes a queued job into the weighted-fair queue, pricing
// it with the cost model and the tenant's current weight.
func (m *Manager) enqueueLocked(j *Job) {
	m.queue.Push(j.Tenant, m.tenants.Weight(j.Tenant), j.Priority, j.Seq, m.jobCost(j.Plan), j)
}

// jobCost prices a whole plan: the sum of its cells' estimated execution
// charges. This is the charge the weighted-fair queue spends against the
// tenant's virtual time when the job is popped.
func (m *Manager) jobCost(p *campaign.Plan) uint64 {
	var total uint64
	for _, c := range p.Cells {
		total += m.cost.CellCost(c.Kernel, p.Strikes)
	}
	if total == 0 {
		total = 1
	}
	return total
}

// Drain stops the service gracefully: no new submissions, queued jobs
// stay queued, and running jobs are cancelled at their next chunk
// boundary — their checkpoint logs already cover everything before it —
// then persisted as queued so a successor Manager on the same state
// directory resumes them. Blocks until the executors have exited or ctx
// expires.
func (m *Manager) Drain(ctx context.Context) error {
	begin := time.Now()
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.baseCancel()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if m.metrics != nil {
			m.metrics.drain.Set(time.Since(begin).Seconds())
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain: %w", ctx.Err())
	}
}

// Submit validates and enqueues a plan for the default tenant at the
// given priority (within a tenant, higher runs first and equal priorities
// run in submission order) and returns the new job's snapshot.
func (m *Manager) Submit(p *campaign.Plan, priority int) (Snapshot, error) {
	return m.SubmitAs(tenant.Default, p, priority)
}

// SubmitAs is Submit under a tenant namespace: the tenant must be
// registered, its admission quotas are checked against its outstanding
// work (a breach returns a *QuotaError carrying a Retry-After estimate),
// and the job is queued into the tenant's weighted-fair sub-queue.
func (m *Manager) SubmitAs(tenantName string, p *campaign.Plan, priority int) (Snapshot, error) {
	if err := p.Validate(); err != nil {
		return Snapshot{}, err
	}
	tn, ok := m.tenants.Get(tenantName)
	if !ok {
		return Snapshot{}, fmt.Errorf("%w: %q", ErrUnknownTenant, tenantName)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Snapshot{}, ErrDraining
	}
	if qerr := m.checkQuotasLocked(tn, p); qerr != nil {
		return Snapshot{}, qerr
	}
	id, err := m.newIDLocked()
	if err != nil {
		return Snapshot{}, err
	}
	j := &Job{
		ID:       id,
		Tenant:   tn.Name,
		Seq:      m.seq,
		Priority: priority,
		Plan:     p,
		State:    StateQueued,
		Created:  time.Now(),
		cells:    newCellStatuses(p),
	}
	m.seq++
	if err := os.MkdirAll(m.jobDir(id), 0o755); err != nil {
		return Snapshot{}, fmt.Errorf("service: %w", err)
	}
	if err := m.persistJobLocked(j); err != nil {
		return Snapshot{}, err
	}
	m.jobs[id] = j
	m.enqueueLocked(j)
	m.metrics.countState(j.Tenant, StateQueued)
	m.cond.Signal()
	m.pruneJobsLocked()
	return m.snapshotLocked(j), nil
}

// ReloadTenants re-reads tenants.json (tenant.Registry.Reload) and
// re-weights the scheduler's live sub-queues so new weights take effect
// on the very next Pop, not the next submission. Only tenants present in
// the reloaded registry are touched: a tenant deleted from the file
// keeps its last admitted weight until its queued jobs drain, which is
// exactly the "removed tenants drain under their old weight" contract.
// The SIGHUP handler and POST /v1/tenants/reload both land here.
func (m *Manager) ReloadTenants() error {
	if err := m.tenants.Reload(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range m.tenants.All() {
		m.queue.SetWeight(t.Name, t.EffectiveWeight())
	}
	return nil
}

// tenantUsage aggregates one tenant's outstanding (non-terminal) work.
type tenantUsage struct {
	queuedJobs     int
	inflightCells  int
	plannedStrikes int
	outstandingNS  uint64
}

func (m *Manager) tenantUsageLocked(name string) tenantUsage {
	var u tenantUsage
	for _, j := range m.jobs {
		if j.Tenant != name || terminal(j.State) {
			continue
		}
		if j.State == StateQueued {
			u.queuedJobs++
		}
		for _, c := range j.cells {
			if c.State != "done" && c.State != "failed" {
				u.inflightCells++
			}
		}
		u.plannedStrikes += j.Plan.Strikes * len(j.Plan.Cells)
		u.outstandingNS += m.jobCost(j.Plan)
	}
	return u
}

// checkQuotasLocked admits or rejects one submission against the
// tenant's quotas. The Retry-After estimate divides the tenant's
// outstanding priced work across the executor pool — deterministic, and
// honest enough to spread thundering-herd retries.
func (m *Manager) checkQuotasLocked(tn tenant.Tenant, p *campaign.Plan) error {
	q := tn.Quotas
	if q == (tenant.Quotas{}) {
		return nil
	}
	u := m.tenantUsageLocked(tn.Name)
	retryAfter := func() time.Duration {
		d := time.Duration(u.outstandingNS/uint64(m.opts.Executors)) * time.Nanosecond
		if d < time.Second {
			d = time.Second
		}
		if d > time.Minute {
			d = time.Minute
		}
		return d
	}
	if q.MaxQueuedJobs > 0 && u.queuedJobs+1 > q.MaxQueuedJobs {
		return &QuotaError{Tenant: tn.Name, RetryAfter: retryAfter(),
			Detail: fmt.Sprintf("queued jobs %d at limit %d", u.queuedJobs, q.MaxQueuedJobs)}
	}
	if q.MaxInflightCells > 0 && u.inflightCells+len(p.Cells) > q.MaxInflightCells {
		return &QuotaError{Tenant: tn.Name, RetryAfter: retryAfter(),
			Detail: fmt.Sprintf("in-flight cells %d + %d over limit %d", u.inflightCells, len(p.Cells), q.MaxInflightCells)}
	}
	add := p.Strikes * len(p.Cells)
	if q.MaxPlannedStrikes > 0 && u.plannedStrikes+add > q.MaxPlannedStrikes {
		return &QuotaError{Tenant: tn.Name, RetryAfter: retryAfter(),
			Detail: fmt.Sprintf("planned strikes %d + %d over limit %d", u.plannedStrikes, add, q.MaxPlannedStrikes)}
	}
	return nil
}

// pruneJobsLocked evicts the oldest terminal jobs once the table exceeds
// Options.MaxJobs, so a long-lived daemon's job state stays bounded the
// same way its result store does.
func (m *Manager) pruneJobsLocked() {
	excess := len(m.jobs) - m.opts.MaxJobs
	if excess <= 0 {
		return
	}
	var done []*Job
	for _, j := range m.jobs {
		if terminal(j.State) {
			done = append(done, j)
		}
	}
	sort.Slice(done, func(i, k int) bool { return done[i].Seq < done[k].Seq })
	if excess > len(done) {
		excess = len(done)
	}
	for _, j := range done[:excess] {
		delete(m.jobs, j.ID)
		_ = os.RemoveAll(m.jobDir(j.ID))
		for ch := range m.subs[j.ID] {
			close(ch) // unsub tolerates this: it re-checks membership
		}
		delete(m.subs, j.ID)
	}
}

// newIDLocked draws a fresh random job ID.
func (m *Manager) newIDLocked() (string, error) {
	for range [8]int{} {
		var b [6]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "", fmt.Errorf("service: %w", err)
		}
		id := "j-" + hex.EncodeToString(b[:])
		if _, taken := m.jobs[id]; !taken {
			return id, nil
		}
	}
	return "", fmt.Errorf("service: could not allocate a job id")
}

// Job returns a job's snapshot.
func (m *Manager) Job(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, ErrUnknownJob
	}
	return m.snapshotLocked(j), nil
}

// Jobs lists every known job in submission order.
func (m *Manager) Jobs() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Snapshot, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, m.snapshotLocked(j))
	}
	sort.Slice(out, func(i, k int) bool {
		return out[i].Created.Before(out[k].Created) || (out[i].Created.Equal(out[k].Created) && out[i].ID < out[k].ID)
	})
	return out
}

// TenantStat is one tenant's live scheduling picture: weight, queue
// depth, per-state job counts and strike progress. The API surfaces it
// on /v1/tenants, the fleet health JSON and the jobs listing; radload
// samples it mid-drain to measure fairness while both tenants still
// have backlog.
type TenantStat struct {
	Tenant       string        `json:"tenant"`
	Weight       int           `json:"weight"`
	QueueDepth   int           `json:"queue_depth"`
	Jobs         map[State]int `json:"jobs,omitempty"`
	StrikesDone  int           `json:"strikes_done"`
	StrikesTotal int           `json:"strikes_total"`
}

// TenantStats reports every registered tenant (idle ones included) plus
// any tenant that still owns job records, sorted by name.
func (m *Manager) TenantStats() []TenantStat {
	m.mu.Lock()
	defer m.mu.Unlock()
	stats := map[string]*TenantStat{}
	get := func(name string) *TenantStat {
		ts, ok := stats[name]
		if !ok {
			ts = &TenantStat{Tenant: name, Weight: m.tenants.Weight(name), Jobs: map[State]int{}}
			stats[name] = ts
		}
		return ts
	}
	for _, t := range m.tenants.All() {
		get(t.Name)
	}
	for _, j := range m.jobs {
		ts := get(j.Tenant)
		ts.Jobs[j.State]++
		ts.StrikesTotal += j.Plan.Strikes * len(j.Plan.Cells)
		for _, c := range j.cells {
			ts.StrikesDone += c.Strikes
		}
	}
	for name, depth := range m.queue.Depths() {
		get(name).QueueDepth = depth
	}
	out := make([]TenantStat, 0, len(stats))
	for _, ts := range stats {
		out = append(out, *ts)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Tenant < out[k].Tenant })
	return out
}

// Result returns a finished job's per-cell summaries (ErrNotFinished
// while the job is queued or running).
func (m *Manager) Result(id string) (*JobResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	if !terminal(j.State) {
		return nil, ErrNotFinished
	}
	if j.result == nil {
		data, err := os.ReadFile(m.resultPath(id))
		if err != nil {
			return nil, fmt.Errorf("service: job %s result: %w", id, err)
		}
		var jr JobResult
		if err := json.Unmarshal(data, &jr); err != nil {
			return nil, fmt.Errorf("service: job %s result: %w", id, err)
		}
		j.result = &jr
	}
	return j.result, nil
}

// Cancel stops a job: a queued job is cancelled immediately, a running
// one at its next chunk boundary. Terminal jobs are left as they are.
func (m *Manager) Cancel(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, ErrUnknownJob
	}
	switch {
	case j.State == StateQueued:
		m.queue.Remove(j.Tenant, j.Seq)
		j.State = StateCancelled
		m.metrics.countState(j.Tenant, StateCancelled)
		j.Error = "cancelled by client"
		now := time.Now()
		j.Finished = &now
		j.userCancel = true
		m.removeCellLogsLocked(j)
		m.writeResultLocked(j)
		m.persistJobLocked(j)
		m.publishLocked(Event{Type: "state", JobID: j.ID, State: j.State, Error: j.Error})
	case j.State == StateRunning:
		j.userCancel = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return m.snapshotLocked(j), nil
}

// Subscribe attaches an event channel to a job. Events are dropped, not
// blocked on, when the subscriber lags. The returned function detaches
// and closes the channel.
func (m *Manager) Subscribe(id string) (<-chan Event, func(), error) {
	_, ch, unsub, err := m.SubscribeFrom(id, 0)
	return ch, unsub, err
}

// SubscribeFrom is Subscribe with Last-Event-ID resume: events already
// published with Seq > afterSeq are returned as a backlog (replayed from
// the job's bounded ring — a subscriber further behind than the ring
// reaches simply gets a shorter backlog, and should rely on a fresh
// status snapshot instead), and the channel carries everything after.
// afterSeq 0 asks for no replay.
func (m *Manager) SubscribeFrom(id string, afterSeq uint64) ([]Event, <-chan Event, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, nil, ErrUnknownJob
	}
	var backlog []Event
	if afterSeq > 0 {
		for _, ev := range j.events {
			if ev.Seq > afterSeq {
				backlog = append(backlog, ev)
			}
		}
	}
	ch := make(chan Event, 256)
	if m.subs[id] == nil {
		m.subs[id] = map[chan Event]bool{}
	}
	m.subs[id][ch] = true
	unsub := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.subs[id][ch] {
			delete(m.subs[id], ch)
			close(ch)
		}
	}
	return backlog, ch, unsub, nil
}

func (m *Manager) publishLocked(ev Event) {
	if j, ok := m.jobs[ev.JobID]; ok {
		j.eventSeq++
		ev.Seq = j.eventSeq
		j.events = append(j.events, ev)
		if len(j.events) > eventRingCap {
			j.events = j.events[len(j.events)-eventRingCap:]
		}
	}
	for ch := range m.subs[ev.JobID] {
		select {
		case ch <- ev:
		default:
			// Slow subscriber: drop rather than stall the engine. A
			// terminal state event must not vanish, though — the SSE
			// handler ends its stream on it — so a subscriber too far
			// behind to receive one has its channel closed instead, which
			// ends the stream just the same.
			if ev.Type == "state" && ev.State.Terminal() {
				delete(m.subs[ev.JobID], ch)
				close(ch)
			}
		}
	}
}

func (m *Manager) snapshotLocked(j *Job) Snapshot {
	s := Snapshot{
		ID:           j.ID,
		Tenant:       j.Tenant,
		State:        j.State,
		Priority:     j.Priority,
		Name:         j.Plan.Name,
		Cells:        append([]CellStatus(nil), j.cells...),
		StrikesTotal: j.Plan.Strikes * len(j.Plan.Cells),
		Error:        j.Error,
		Created:      j.Created,
		Started:      j.Started,
		Finished:     j.Finished,
	}
	for _, c := range j.cells {
		s.StrikesDone += c.Strikes
	}
	return s
}

// --- persistence paths ---

func (m *Manager) jobDir(id string) string {
	return filepath.Join(m.opts.StateDir, "jobs", id)
}
func (m *Manager) cellLogPath(id string, i int) string {
	return filepath.Join(m.jobDir(id), fmt.Sprintf("cell-%d.log", i))
}
func (m *Manager) cellResultPath(id string, i int) string {
	return filepath.Join(m.jobDir(id), fmt.Sprintf("cell-%d.json", i))
}
func (m *Manager) resultPath(id string) string {
	return filepath.Join(m.jobDir(id), "result.json")
}

// persistJobLocked writes job.json atomically.
func (m *Manager) persistJobLocked(j *Job) error {
	rec := jobRecord{
		ID:       j.ID,
		Tenant:   j.Tenant,
		Seq:      j.Seq,
		Priority: j.Priority,
		State:    j.State,
		Error:    j.Error,
		Created:  j.Created,
		Plan:     j.Plan,
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	return writeFileAtomic(filepath.Join(m.jobDir(j.ID), "job.json"), data)
}

// writeResultLocked materialises result.json from the in-memory outcomes.
func (m *Manager) writeResultLocked(j *Job) {
	jr := &JobResult{
		ID:         j.ID,
		State:      j.State,
		Name:       j.Plan.Name,
		Thresholds: j.Plan.EffectiveThresholds(),
		Cells:      append([]CellResult(nil), j.outcomes...),
	}
	j.result = jr
	if data, err := json.MarshalIndent(jr, "", "  "); err == nil {
		_ = writeFileAtomic(m.resultPath(j.ID), data)
	}
}

func (m *Manager) removeCellLogsLocked(j *Job) {
	for i := range j.Plan.Cells {
		_ = os.Remove(m.cellLogPath(j.ID, i))
	}
}

func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	return nil
}

// --- execution ---

// isCancellation mirrors the campaign engine's definition: the caller's
// context speaking, never a cell's own failure.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// runJob executes one job to completion, cancellation or interruption.
func (m *Manager) runJob(ctx context.Context, j *Job) {
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	m.mu.Lock()
	if terminal(j.State) {
		// A client cancelled the job in the window between the executor
		// popping it off the queue and this claim: the cancellation
		// already wrote its final state and result — do not resurrect it.
		m.mu.Unlock()
		return
	}
	j.State = StateRunning
	j.cancel = cancel
	now := time.Now()
	j.Started = &now
	_ = m.persistJobLocked(j)
	m.metrics.countState(j.Tenant, StateRunning)
	m.publishLocked(Event{Type: "state", JobID: j.ID, State: StateRunning})
	m.mu.Unlock()

	cfg := j.Plan.Config()
	ts := j.Plan.EffectiveThresholds()
	if m.opts.Remote != nil {
		outcomes, stop := m.runCellsSharded(jctx, j, cfg, ts)
		m.finishJob(j, outcomes, stop)
		return
	}
	// Kernel construction (the golden simulations) happens here, under
	// the job's context so a drain during construction still interrupts.
	cells, err := j.Plan.BuildCtx(jctx)
	if err != nil {
		m.finishJob(j, nil, err)
		return
	}
	var localMu sync.Mutex
	var outcomes []CellResult
	var stop error
	for i := range cells {
		if err := jctx.Err(); err != nil {
			stop = err
			break
		}
		cell := cells[i]
		cr, err := m.runCell(jctx, j, i, func() (campaign.Cell, error) { return cell, nil }, &localMu, cfg, ts)
		if err != nil {
			stop = err // only cancellation/interruption surfaces here
			break
		}
		outcomes = append(outcomes, cr)
	}
	m.finishJob(j, outcomes, stop)
}

// runCellsSharded dispatches every cell of the job concurrently — the
// fleet path. Remote execution is naturally parallel (each cell waits on
// its own lease), while local fallback work is serialised through one
// mutex so a fleetless or degraded job loads the host exactly like the
// sequential path. Outcomes come back in plan order; a cell interrupted
// by cancellation is simply absent (its durable record or checkpoint log
// carries it across the requeue).
func (m *Manager) runCellsSharded(jctx context.Context, j *Job, cfg campaign.Config, ts []float64) ([]CellResult, error) {
	n := len(j.Plan.Cells)
	results := make([]CellResult, n)
	errs := make([]error, n)
	var localMu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var cell campaign.Cell
			built := false
			getCell := func() (campaign.Cell, error) {
				if !built {
					c, err := campaign.BuildCell(j.Plan.Cells[i])
					if err != nil {
						return campaign.Cell{}, err
					}
					cell, built = c, true
				}
				return cell, nil
			}
			results[i], errs[i] = m.runCell(jctx, j, i, getCell, &localMu, cfg, ts)
		}(i)
	}
	wg.Wait()
	var outcomes []CellResult
	var stop error
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			if stop == nil {
				stop = errs[i]
			}
			continue
		}
		outcomes = append(outcomes, results[i])
	}
	return outcomes, stop
}

// finishJob resolves the job's final (or re-queued) state.
func (m *Manager) finishJob(j *Job, outcomes []CellResult, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.outcomes = outcomes
	j.cancel = nil
	switch {
	case err != nil && isCancellation(err) && j.userCancel:
		j.State = StateCancelled
		j.Error = "cancelled by client"
		m.removeCellLogsLocked(j)
	case err != nil && isCancellation(err):
		// Drain interruption: the job goes back to queued with its
		// checkpoint logs intact; the next incarnation of the manager
		// resumes it. (Executors are exiting — no local re-enqueue.)
		j.State = StateQueued
		j.Started = nil
	case err != nil:
		j.State = StateFailed
		j.Error = err.Error()
	default:
		j.State = StateDone
		for _, o := range outcomes {
			if o.Error != "" {
				j.State = StateFailed
				j.Error = "one or more cells failed"
				break
			}
		}
	}
	if terminal(j.State) {
		now := time.Now()
		j.Finished = &now
		m.writeResultLocked(j)
	}
	m.metrics.countState(j.Tenant, j.State)
	_ = m.persistJobLocked(j)
	m.publishLocked(Event{Type: "state", JobID: j.ID, State: j.State, Error: j.Error})
}

// progressSink relays chunk boundaries into live job status and the
// event stream. It satisfies campaign.Sink + ChunkFlusher.
type progressSink struct {
	m    *Manager
	j    *Job
	cell int
}

func (p *progressSink) Consume(int, injector.Outcome) {}

func (p *progressSink) FlushChunk(next int) {
	p.m.mu.Lock()
	defer p.m.mu.Unlock()
	p.j.cells[p.cell].Strikes = next
	p.m.publishLocked(Event{
		Type: "chunk", JobID: p.j.ID, Cell: p.cell,
		Done: next, Total: p.j.cells[p.cell].Total,
	})
}

// setCellState updates one cell's live status and emits a cell event for
// terminal cell states.
func (m *Manager) setCellState(j *Job, i int, cs CellStatus, emit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.cells[i] = cs
	if emit {
		m.publishLocked(Event{
			Type: "cell", JobID: j.ID, Cell: i,
			Done: cs.Strikes, Total: cs.Total,
			Cached: cs.Cached, Error: cs.Error,
		})
	}
}

// runCell produces one cell's outcome: from the job's own durable record
// (a previous incarnation finished it), from the content-addressed store
// (any job anywhere computed an identical cell), remotely through the
// fleet (when Options.Remote is set and has healthy workers), by resuming
// a checkpoint log (a previous incarnation — local or remote — was
// interrupted mid-cell), or by running it fresh under a new checkpoint
// log. Local engine work is serialised through localMu so sharded
// dispatch never oversubscribes the host. Only cancellation is returned
// as an error; cell failures are recorded in the outcome.
func (m *Manager) runCell(jctx context.Context, j *Job, i int, getCell func() (campaign.Cell, error), localMu *sync.Mutex, cfg campaign.Config, ts []float64) (CellResult, error) {
	spec := j.Plan.Cells[i]
	total := cfg.Strikes
	cr := CellResult{Spec: spec, Key: campaign.CellKey(spec, cfg, ts)}
	// The wire-facing Key stays the canonical content address (identical
	// to a direct StreamRunner run's), but store accesses go through the
	// tenant-prefixed key so namespaces never share dedup hits. The
	// default tenant is unprefixed: pre-tenancy state directories keep
	// their entries.
	skey := store.TenantPrefix(j.Tenant) + cr.Key
	logPath := m.cellLogPath(j.ID, i)

	// A previous incarnation of this job already finished this cell.
	if data, err := os.ReadFile(m.cellResultPath(j.ID, i)); err == nil {
		var prev CellResult
		if json.Unmarshal(data, &prev) == nil && (prev.Summary != nil || prev.Error != "") {
			_ = os.Remove(logPath) // a stale checkpoint log has nothing left to resume
			m.setCellState(j, i, cellStatusOf(&prev, total), true)
			return prev, nil
		}
	}

	// Content-addressed store: identical cell already computed anywhere
	// in this tenant's namespace.
	if data, ok := m.store.Get(skey); ok {
		var rec StoreRecord
		if err := json.Unmarshal(data, &rec); err == nil && rec.Summary != nil {
			cr.Cached = true
			cr.Info = rec.Info
			cr.Summary = rec.Summary
			_ = os.Remove(logPath) // ditto: the store superseded the in-flight log
			m.finishCell(j, i, &cr, total)
			return cr, nil
		}
		_ = m.store.Delete(skey) // torn/alien entry: recompute
	}

	m.setCellState(j, i, CellStatus{State: "running", Total: total}, false)
	relay := &progressSink{m: m, j: j, cell: i}
	// Local sinks: the progress relay plus, when metered, the strike
	// sink (children resolved once here, flushed at chunk boundaries).
	sinks := []campaign.Sink{relay}
	if ss := m.metrics.sink(spec.Kernel, spec.Device); ss != nil {
		sinks = append(sinks, ss)
	}

	var info campaign.StreamInfo
	var sum *campaign.Summary
	var runErr error
	resumed := false
	ran := false

	if m.opts.Remote != nil {
		prev, _ := os.ReadFile(logPath)
		res, rerr := m.opts.Remote.RunRemote(jctx, RemoteCell{
			JobID: j.ID, Cell: i, Spec: spec, Cfg: cfg, Thresholds: ts, Key: cr.Key,
			Tenant: j.Tenant, Weight: m.tenants.Weight(j.Tenant),
			CostNS:   m.cost.CellCost(spec.Kernel, cfg.Strikes),
			PrevLog:  prev,
			Progress: relay.FlushChunk,
			SaveLog:  func(log []byte) { _ = writeFileAtomic(logPath, log) },
		})
		switch {
		case rerr == nil:
			info, sum = res.Info, res.Summary
			cr.Remote, cr.Worker = true, res.Worker
			resumed = len(prev) > 0
			ran = true
		case errors.Is(rerr, ErrRemoteUnavailable):
			// Degrade to local execution below. Any prefix a worker
			// streamed before the fleet gave up is in the cell log, so the
			// local run picks up from the last #CHK record.
		case isCancellation(rerr):
			runErr = rerr
			ran = true
		default:
			// A worker's authoritative cell failure (the engine is
			// deterministic — re-running elsewhere would fail identically).
			runErr = rerr
			ran = true
		}
	}

	if !ran {
		cell, cerr := getCell()
		if cerr != nil {
			runErr = cerr // construction failure: recorded as the cell's error
		} else {
			localMu.Lock()
			if prev, err := os.ReadFile(logPath); err == nil && len(prev) > 0 {
				resumed = true
				info, sum, runErr = m.resumeCell(jctx, prev, logPath, cell, cfg, ts, sinks)
				if runErr != nil && !isCancellation(runErr) {
					// The log could not be resumed (damaged beyond salvage, or it
					// describes something else): discard it and run fresh rather
					// than wedging the job forever.
					_ = os.Remove(logPath)
					resumed = false
					info, sum, runErr = m.freshCell(jctx, logPath, cell, cfg, ts, sinks)
				}
			} else {
				info, sum, runErr = m.freshCell(jctx, logPath, cell, cfg, ts, sinks)
			}
			localMu.Unlock()
		}
	}
	cr.Resumed = resumed

	if runErr != nil {
		if isCancellation(runErr) {
			// Leave the checkpoint log for the next incarnation; the cell
			// returns to pending with its consumed-strike count intact.
			m.mu.Lock()
			j.cells[i].State = "pending"
			m.mu.Unlock()
			return cr, runErr
		}
		cr.Error = runErr.Error()
		_ = os.Remove(logPath)
		m.finishCell(j, i, &cr, total)
		return cr, nil
	}

	cr.Info = &info
	cr.Summary = sum
	if data, err := json.Marshal(StoreRecord{Key: cr.Key, Spec: spec, Info: cr.Info, Summary: sum}); err == nil {
		if m.store.Put(skey, data) == nil && m.opts.StoreCap > 0 {
			_, _, _ = m.store.GC(m.opts.StoreCap)
		}
	}
	m.finishCell(j, i, &cr, total)
	_ = os.Remove(logPath)
	return cr, nil
}

// finishCell persists a completed cell outcome and updates live status.
func (m *Manager) finishCell(j *Job, i int, cr *CellResult, total int) {
	m.metrics.countCell(j.Tenant, cr)
	if data, err := json.MarshalIndent(cr, "", "  "); err == nil {
		_ = writeFileAtomic(m.cellResultPath(j.ID, i), data)
	}
	m.setCellState(j, i, cellStatusOf(cr, total), true)
}

func cellStatusOf(cr *CellResult, total int) CellStatus {
	cs := CellStatus{Total: total, Cached: cr.Cached, Resumed: cr.Resumed}
	if cr.Error != "" {
		cs.State = "failed"
		cs.Error = cr.Error
	} else {
		cs.State = "done"
		// An adaptively stopped cell consumes fewer strikes than planned;
		// the recorded Info carries the true count. Total is the fallback
		// for records persisted before Info existed.
		cs.Strikes = total
		if cr.Info != nil {
			cs.Strikes = cr.Info.Strikes
		}
	}
	return cs
}

// freshCell runs a cell from strike zero under a new checkpoint log.
func (m *Manager) freshCell(jctx context.Context, logPath string, cell campaign.Cell, cfg campaign.Config, ts []float64, sinks []campaign.Sink) (campaign.StreamInfo, *campaign.Summary, error) {
	info, err := campaign.CellInfo(cell.Dev, cell.Kern, cfg)
	if err != nil {
		return campaign.StreamInfo{}, nil, err
	}
	f, err := os.Create(logPath)
	if err != nil {
		return info, nil, fmt.Errorf("service: checkpoint log: %w", err)
	}
	chk, err := campaign.NewCheckpointSink(f, info, cfg.Seed)
	if err != nil {
		f.Close()
		return info, nil, err
	}
	info, sum, runErr := campaign.RunPlanCell(jctx, cell, cfg, ts, append(append([]campaign.Sink{}, sinks...), chk)...)
	if runErr == nil {
		runErr = chk.Close() // writes the #END trailer
	}
	// On cancellation the trailer is deliberately not written: the log
	// stays resumable from its last flushed #CHK record.
	if cerr := f.Close(); runErr == nil {
		runErr = cerr
	}
	return info, sum, runErr
}

// resumeCell completes a cell from its truncated checkpoint log,
// rewriting the log (replayed prefix + re-run tail) alongside.
func (m *Manager) resumeCell(jctx context.Context, prev []byte, logPath string, cell campaign.Cell, cfg campaign.Config, ts []float64, sinks []campaign.Sink) (campaign.StreamInfo, *campaign.Summary, error) {
	tmp := logPath + ".resume"
	f, err := os.Create(tmp)
	if err != nil {
		return campaign.StreamInfo{}, nil, fmt.Errorf("service: checkpoint log: %w", err)
	}
	info, sum, runErr := campaign.ResumePlanCell(jctx, bytes.NewReader(prev), f, cell, cfg, ts, sinks...)
	if cerr := f.Close(); runErr == nil {
		runErr = cerr
	}
	if runErr == nil || isCancellation(runErr) {
		// Keep the rewritten log: it covers at least as much as the old
		// one (replayed prefix plus any newly checkpointed tail).
		if rerr := os.Rename(tmp, logPath); rerr != nil && runErr == nil {
			runErr = fmt.Errorf("service: checkpoint log: %w", rerr)
		}
	} else {
		_ = os.Remove(tmp)
	}
	return info, sum, runErr
}
