package hotspot

import (
	"math"
	"testing"
)

// The difference field obeys a strictly dissipative recurrence: its L1
// norm must never grow, and must shrink monotonically once the field is
// clear of the injection transient. This is the mathematical core behind
// §V-C's "errors will eventually dissipate as the result tend to reach an
// equilibrium".
func TestDiffFieldL1NormDecays(t *testing.T) {
	seeds := []diffSeed{{x: 24, y: 24, d: 100}}
	prev := math.Inf(1)
	// Evolving to iteration T from a seed at iteration 0: the norm after
	// T steps must be non-increasing in T.
	for _, steps := range []int{2, 3, 4, 6, 8, 10} {
		k := New(48, steps)
		diff := k.evolveDiff(seeds, 0)
		var norm float64
		for _, d := range diff {
			norm += math.Abs(d)
		}
		if norm > prev*(1+1e-12) {
			t.Fatalf("L1 norm grew at %d steps: %v > %v", steps, norm, prev)
		}
		prev = norm
	}
}

func TestRangeGuardBounds(t *testing.T) {
	// The golden field must live inside the validity band, otherwise the
	// guard would clip legitimate values.
	k := New(64, 200)
	for _, v := range k.final {
		if float64(v) < ValidLo || float64(v) > ValidHi {
			t.Fatalf("golden temperature %v outside the validity band [%v,%v]",
				v, ValidLo, ValidHi)
		}
	}
}

func TestSnapshotsCoverRun(t *testing.T) {
	k := New(32, 100)
	// One initial snapshot plus one per snapEvery interval.
	want := 1 + k.iters/k.snapEvery
	if len(k.golden) != want {
		t.Fatalf("snapshots = %d, want %d", len(k.golden), want)
	}
}
