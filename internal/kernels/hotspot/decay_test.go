package hotspot

import (
	"math"
	"testing"
)

// The difference field obeys a strictly dissipative recurrence: its L1
// norm must never grow, and must shrink monotonically once the field is
// clear of the injection transient. This is the mathematical core behind
// §V-C's "errors will eventually dissipate as the result tend to reach an
// equilibrium".
func TestDiffFieldL1NormDecays(t *testing.T) {
	seeds := []diffSeed{{x: 24, y: 24, d: 100}}
	prev := math.Inf(1)
	// Evolving to iteration T from a seed at iteration 0: the norm after
	// T steps must be non-increasing in T.
	for _, steps := range []int{2, 3, 4, 6, 8, 10} {
		k := New(48, steps)
		sc := newTestScratch(k)
		k.evolveDiff(sc, seeds, 0)
		var norm float64
		for _, d := range sc.diff {
			norm += math.Abs(d)
		}
		if norm > prev*(1+1e-12) {
			t.Fatalf("L1 norm grew at %d steps: %v > %v", steps, norm, prev)
		}
		prev = norm
	}
}

func newTestScratch(k *Kernel) *evolveScratch {
	n := k.side * k.side
	return &evolveScratch{diff: make([]float64, n), next: make([]float64, n)}
}

// naiveEvolve is the reference implementation the adaptive box must match
// bit for bit: the full-grid homogeneous recurrence with checked
// neighbour reads everywhere.
func naiveEvolve(k *Kernel, seeds []diffSeed, t0 int) []float64 {
	s := k.side
	diff := make([]float64, s*s)
	for _, sd := range seeds {
		diff[sd.y*s+sd.x] += sd.d
	}
	next := make([]float64, s*s)
	for it := t0; it < k.iters; it++ {
		for y := 0; y < s; y++ {
			for x := 0; x < s; x++ {
				i := y*s + x
				d := diff[i]
				n := dneighbor(diff, s, x, y-1, d)
				so := dneighbor(diff, s, x, y+1, d)
				w := dneighbor(diff, s, x-1, y, d)
				e := dneighbor(diff, s, x+1, y, d)
				next[i] = d + Diff*((n+so+e+w)-4*d) - Sink*d
			}
		}
		diff, next = next, diff
	}
	return diff
}

// The adaptive bounding box (grow by stencil radius, shrink on exact-zero
// edges, interior fast path) is an optimisation, not a model change: it
// must reproduce the naive full-grid evolution bit for bit, including
// seeds at grid corners where the checked boundary path engages.
func TestEvolveDiffMatchesNaiveBitwise(t *testing.T) {
	cases := [][]diffSeed{
		{{x: 10, y: 12, d: 3.7}},
		{{x: 0, y: 0, d: -2.5}},                       // corner: boundary slow path
		{{x: 31, y: 5, d: 1e-3}, {x: 4, y: 30, d: 9}}, // disjoint seeds, one box
		{{x: 15, y: 0, d: 0.5}, {x: 15, y: 31, d: -0.5}},
	}
	for ci, seeds := range cases {
		k := New(32, 24)
		sc := newTestScratch(k)
		bx := k.evolveDiff(sc, seeds, 0)
		want := naiveEvolve(k, seeds, 0)
		for i := range want {
			if math.Float64bits(sc.diff[i]) != math.Float64bits(want[i]) {
				t.Fatalf("case %d: cell %d differs: boxed %v vs naive %v", ci, i, sc.diff[i], want[i])
			}
		}
		// Every nonzero cell must sit inside the reported box.
		for i, d := range sc.diff {
			if d == 0 {
				continue
			}
			x, y := i%32, i/32
			if x < bx.minX || x > bx.maxX || y < bx.minY || y > bx.maxY {
				t.Fatalf("case %d: nonzero cell (%d,%d) outside box %+v", ci, x, y, bx)
			}
		}
	}
}

// A seed that underflows to exactly zero must collapse the bounding box
// to empty and end the evolution early: the long-horizon payoff of the
// shrink rule. A one-ulp denormal seed u does so after a single step:
// Diff*(-4u) rounds to -u (cancelling the centre), while Diff*u and
// Sink*u round to zero (0.18 and 0.05 of an ulp are below the halfway
// point), so every cell of the first step's box is exactly zero.
func TestEvolveDiffBoxCollapsesOnFullDecay(t *testing.T) {
	k := New(48, 48)
	sc := newTestScratch(k)
	bx := k.evolveDiff(sc, []diffSeed{{x: 24, y: 24, d: math.SmallestNonzeroFloat64}}, 0)
	if bx.maxX >= bx.minX {
		t.Fatalf("box did not collapse: %+v", bx)
	}
	for i, d := range sc.diff {
		if d != 0 {
			t.Fatalf("cell %d nonzero (%v) after full decay", i, d)
		}
	}
}

// After a pooled run the borrowed diff grid must be handed back all-zero:
// the pool invariant every later strike relies on.
func TestPooledScratchReturnsZeroed(t *testing.T) {
	k := New(32, 16)
	sc := newTestScratch(k)
	seeds := []diffSeed{{x: 3, y: 29, d: 42}}
	bx := k.evolveDiff(sc, seeds, 0)
	// Mirror RunInjectedPooled's release step.
	for y := bx.minY; y <= bx.maxY && bx.maxX >= bx.minX; y++ {
		for x := bx.minX; x <= bx.maxX; x++ {
			sc.diff[y*32+x] = 0
		}
	}
	for i, d := range sc.diff {
		if d != 0 {
			t.Fatalf("cell %d survived box zeroing: %v", i, d)
		}
	}
}

func TestRangeGuardBounds(t *testing.T) {
	// The golden field must live inside the validity band, otherwise the
	// guard would clip legitimate values.
	k := New(64, 200)
	for _, v := range k.final {
		if float64(v) < ValidLo || float64(v) > ValidHi {
			t.Fatalf("golden temperature %v outside the validity band [%v,%v]",
				v, ValidLo, ValidHi)
		}
	}
}

func TestSnapshotsCoverRun(t *testing.T) {
	k := New(32, 100)
	// One initial snapshot plus one per snapEvery interval.
	want := 1 + k.iters/k.snapEvery
	if len(k.golden) != want {
		t.Fatalf("snapshots = %d, want %d", len(k.golden), want)
	}
}
