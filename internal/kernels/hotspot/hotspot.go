// Package hotspot implements the paper's physics-simulation benchmark:
// Rodinia's HotSpot, a 2D iterative stencil estimating processor
// temperature from a power map. It is memory-bound, balanced and regular
// (Table I), computes in single precision, and is the most occupancy-
// friendly of the tested codes.
//
// The stencil update is affine in the temperature field:
//
//	T' = T + k*(Laplacian T) + sink*(Tamb - T) + c*P
//
// so the difference field D between a faulty and a golden execution obeys
// the homogeneous part of the same recurrence. Faulty runs therefore
// evolve only D inside its (growing) bounding box — mathematically
// equivalent to a full faulty re-run up to float32 rounding, which is
// accounted for by discarding differences below one float32 ulp of the
// golden value. Error "dissipation to equilibrium" (§V-C) is emergent:
// the same coefficients that smooth heat smooth D.
package hotspot

import (
	"fmt"
	"math"
	"sync"

	"radcrit/internal/arch"
	"radcrit/internal/grid"
	"radcrit/internal/kernels"
	"radcrit/internal/metrics"
	"radcrit/internal/scratch"
	"radcrit/internal/xrand"
)

// Simulation constants (diffusion-stable: 4*Diff + Sink < 1).
const (
	Diff     = 0.18 // neighbour coupling
	Sink     = 0.05 // coupling to ambient through the heat sink
	PowerC   = 0.35 // power-to-temperature coefficient
	Ambient  = 80.0 // ambient temperature
	ulp32    = 6.0e-8
	TileSide = 32 // scheduler work-unit tile

	// ValidLo and ValidHi bound the physically-plausible temperature band.
	// Production thermal solvers validate their state: a cell whose value
	// leaves the plausible range (a wildly corrupted word) is reset to
	// ambient rather than propagated. This range guard is why the paper
	// observes HotSpot mean relative errors "lower than 25% in all cases"
	// (§V-C) despite exponent-field upsets being physically possible: the
	// catastrophic flips are converted into modest ambient-reset errors
	// that then dissipate, and only in-band (mantissa-scale) corruption
	// survives as SDC.
	ValidLo = 70.0
	ValidHi = 115.0
)

// Kernel is a HotSpot instance: side x side cells, iters time steps.
type Kernel struct {
	side  int
	iters int
	seed  uint64

	power     []float32
	golden    [][]float32 // snapshots every snapEvery iterations, plus final
	snapEvery int
	final     []float32

	handleOnce sync.Once
	handle     *goldenTimeline
}

// goldenTimeline is HotSpot's golden-state handle: the snapshot timeline
// computed once at construction plus a bounded memo of fully reconstructed
// per-iteration states, so strikes landing on the same iteration stop
// re-stepping from the nearest snapshot. Memoised slices are read-only.
// It also owns the pool of per-strike evolve scratch, shared by every
// worker of a campaign session.
type goldenTimeline struct {
	k      *Kernel
	states kernels.TimelineMemo[[]float32]
	scr    *scratch.Pool[*evolveScratch]
}

// evolveScratch is one borrowable strike working set. Pool invariant:
// diff is all-zero on Get (RunInjectedPooled re-zeroes only the strike's
// final bounding box before Put); next and seeds may hold stale data —
// next is always written before read and seeds is truncated on borrow.
type evolveScratch struct {
	diff, next []float64
	seeds      []diffSeed
}

// stateAt returns the golden temperature field at iteration it. The
// returned slice is shared and must not be mutated.
func (g *goldenTimeline) stateAt(it int) []float32 {
	return g.states.At(it, g.k.stateAt)
}

// Golden implements kernels.Kernel. The handle is device-independent:
// HotSpot's golden timeline depends only on the input configuration.
func (k *Kernel) Golden(dev arch.Device) kernels.GoldenState {
	k.handleOnce.Do(func() {
		n := k.side * k.side
		k.handle = &goldenTimeline{
			k: k,
			scr: scratch.NewNamedPool("hotspot.evolve", func() *evolveScratch {
				return &evolveScratch{diff: make([]float64, n), next: make([]float64, n)}
			}),
		}
	})
	return k.handle
}

var _ kernels.Kernel = (*Kernel)(nil)
var _ kernels.BatchRunner = (*Kernel)(nil)

// Check reports whether (side, iters) is a valid HotSpot configuration
// without running the golden simulation: the non-panicking face of New's
// precondition, used by plan validation.
func Check(side, iters int) error {
	if side < 8 || iters < 2 {
		return fmt.Errorf("hotspot: invalid config side=%d iters=%d", side, iters)
	}
	return nil
}

// New returns a HotSpot kernel. The paper's configuration is 1024x1024
// cells; iters controls simulated time steps.
func New(side, iters int) *Kernel {
	if err := Check(side, iters); err != nil {
		panic(err.Error())
	}
	k := &Kernel{side: side, iters: iters, seed: 0x407 + uint64(side)}
	k.initPower()
	k.computeGolden()
	return k
}

// Side returns the grid edge length.
func (k *Kernel) Side() int { return k.side }

// Iters returns the iteration count.
func (k *Kernel) Iters() int { return k.iters }

// Name implements kernels.Kernel.
func (k *Kernel) Name() string { return "HotSpot" }

// Domain implements kernels.Kernel (Table II).
func (k *Kernel) Domain() string { return "Physics simulation" }

// InputLabel implements kernels.Kernel.
func (k *Kernel) InputLabel() string { return fmt.Sprintf("%dx%d", k.side, k.side) }

// Class implements kernels.Kernel (Table I).
func (k *Kernel) Class() kernels.Class {
	return kernels.Class{BoundBy: "Memory", LoadBalance: "Balanced", MemoryAccess: "Regular"}
}

// initPower builds a deterministic architectural floor plan: rectangular
// functional-unit hot blocks over a low baseline.
func (k *Kernel) initPower() {
	s := k.side
	k.power = make([]float32, s*s)
	rng := xrand.New(k.seed)
	for b := 0; b < 12; b++ {
		x0, y0 := rng.Intn(s), rng.Intn(s)
		w, h := s/16+rng.Intn(s/8), s/16+rng.Intn(s/8)
		heat := float32(0.5 + 1.5*rng.Float64())
		for y := y0; y < y0+h && y < s; y++ {
			for x := x0; x < x0+w && x < s; x++ {
				k.power[y*s+x] += heat
			}
		}
	}
}

// step advances the temperature field by one iteration into dst.
func (k *Kernel) step(dst, src []float32) {
	s := k.side
	for y := 0; y < s; y++ {
		for x := 0; x < s; x++ {
			i := y*s + x
			c := src[i]
			n := neighbor(src, s, x, y-1, c)
			so := neighbor(src, s, x, y+1, c)
			w := neighbor(src, s, x-1, y, c)
			e := neighbor(src, s, x+1, y, c)
			dst[i] = c + Diff*((n+so+e+w)-4*c) + Sink*(Ambient-c) + PowerC*k.power[i]
		}
	}
}

// neighbor reads (x,y) with Neumann (insulated) boundaries.
func neighbor(t []float32, s, x, y int, self float32) float32 {
	if x < 0 || x >= s || y < 0 || y >= s {
		return self
	}
	return t[y*s+x]
}

// computeGolden runs the fault-free simulation once, storing periodic
// snapshots so faulty runs can reconstruct the state at any iteration.
func (k *Kernel) computeGolden() {
	s := k.side
	k.snapEvery = 32
	cur := make([]float32, s*s)
	for i := range cur {
		cur[i] = Ambient
	}
	next := make([]float32, s*s)
	snap := make([]float32, s*s)
	copy(snap, cur)
	k.golden = append(k.golden, snap)
	for it := 0; it < k.iters; it++ {
		k.step(next, cur)
		cur, next = next, cur
		if (it+1)%k.snapEvery == 0 {
			sn := make([]float32, s*s)
			copy(sn, cur)
			k.golden = append(k.golden, sn)
		}
	}
	k.final = make([]float32, s*s)
	copy(k.final, cur)
}

// stateAt reconstructs the golden temperature field at iteration it.
func (k *Kernel) stateAt(it int) []float32 {
	if it >= k.iters {
		out := make([]float32, len(k.final))
		copy(out, k.final)
		return out
	}
	si := it / k.snapEvery
	if si >= len(k.golden) {
		si = len(k.golden) - 1
	}
	cur := make([]float32, len(k.golden[si]))
	copy(cur, k.golden[si])
	next := make([]float32, len(cur))
	for t := si * k.snapEvery; t < it; t++ {
		k.step(next, cur)
		cur, next = next, cur
	}
	return cur
}

// GoldenFinal returns the golden output as a float64 grid.
func (k *Kernel) GoldenFinal() *grid.Grid {
	g := grid.New2D(k.side, k.side)
	for i, v := range k.final {
		g.Data()[i] = float64(v)
	}
	return g
}

// Profile implements kernels.Kernel. HotSpot's small footprint, register-
// and-local-memory-only iterations and single precision give it the
// highest occupancy of the tested codes (§IV-B).
func (k *Kernel) Profile(dev arch.Device) arch.Profile {
	cells := k.side * k.side
	p := arch.Profile{
		Kernel:           "HotSpot",
		InputLabel:       k.InputLabel(),
		OutputDims:       grid.Dims{X: k.side, Y: k.side, Z: 1},
		Threads:          cells,
		Blocks:           (k.side / TileSide) * (k.side / TileSide),
		CacheFootprintKB: 2 * float64(cells) * 4 / 1024, // temps + power, float32
		ControlShare:     0.02,
		MemoryBound:      true,
		Irregular:        false,
		// One kernel launch per time step: scheduler upsets are mostly
		// absorbed by the next launch, and dispatch is amortised.
		DispatchFactor:    0.1,
		IterativeLaunches: true,
		RelRuntime:        float64(cells) * float64(k.iters) / (1024 * 1024 * 400),
	}
	m := dev.Model()
	if m.SharedMemKBPerCore > 0 {
		p.LocalMemPerBlockKB = 4.5 // tile + halo in shared memory
	}
	if m.VectorWidthBits > 0 {
		p.VectorShare = 0.70
		p.FPUShare = 0.30
	} else {
		p.FPUShare = 0.60
	}
	return p
}

// diffSeed is one corrupted cell at the injection iteration.
type diffSeed struct {
	x, y int
	d    float64
}

// RunInjected implements kernels.Kernel.
func (k *Kernel) RunInjected(dev arch.Device, inj arch.Injection, rng *xrand.RNG) *metrics.Report {
	return k.RunInjectedOn(k.Golden(dev), inj, rng)
}

// RunInjectedOn implements kernels.Kernel.
func (k *Kernel) RunInjectedOn(gs kernels.GoldenState, inj arch.Injection, rng *xrand.RNG) *metrics.Report {
	return k.RunInjectedPooled(gs, inj, rng, nil)
}

// RunInjectedPooled implements kernels.Kernel: the evolve grids and seed
// list are borrowed from the handle's scratch pool, and only the strike's
// final diff bounding box is scanned for the report and re-zeroed before
// release, so a strike's cost tracks the perturbed region, not the domain.
func (k *Kernel) RunInjectedPooled(gs kernels.GoldenState, inj arch.Injection, rng *xrand.RNG, reports *metrics.ReportPool) *metrics.Report {
	g := gs.(*goldenTimeline)
	t0 := k.injectionStep(inj)
	sc := g.scr.Get()
	rep := k.runInjectedWith(g, sc, g.stateAt(t0), t0, inj, rng, reports)
	g.scr.Put(sc)
	return rep
}

// RunInjectedBatch implements kernels.BatchRunner: the whole batch shares
// one borrowed evolve scratch, and the strike-time golden state lookup is
// hoisted across consecutive strikes landing on the same timestep — the
// memoised reconstruction behind stateAt is shared either way, but the
// hoist also skips the per-strike memo probe.
func (k *Kernel) RunInjectedBatch(gs kernels.GoldenState, batch []kernels.BatchStrike, reports *metrics.ReportPool) {
	g := gs.(*goldenTimeline)
	sc := g.scr.Get()
	lastT0 := -1
	var state []float32
	for i := range batch {
		t0 := k.injectionStep(batch[i].Inj)
		if t0 != lastT0 {
			state = g.stateAt(t0)
			lastT0 = t0
		}
		batch[i].Report = k.runInjectedWith(g, sc, state, t0, batch[i].Inj, batch[i].RNG, reports)
	}
	g.scr.Put(sc)
}

// injectionStep maps an injection's progress fraction to its iteration.
func (k *Kernel) injectionStep(inj arch.Injection) int {
	t0 := int(inj.When * float64(k.iters))
	if t0 >= k.iters {
		t0 = k.iters - 1
	}
	return t0
}

// runInjectedWith executes one injection against externally owned scratch
// and a pre-resolved strike-time golden state (state == stateAt(t0)).
func (k *Kernel) runInjectedWith(g *goldenTimeline, sc *evolveScratch, state []float32, t0 int, inj arch.Injection, rng *xrand.RNG, reports *metrics.ReportPool) *metrics.Report {
	seeds, start := k.buildSeeds(g, state, inj, rng, t0, sc.seeds[:0])
	sc.seeds = seeds // keep grown capacity pooled
	bx := k.evolveDiff(sc, seeds, start)
	rep := k.reportFromDiff(reports, sc.diff, bx)
	scratch.ZeroBox(sc.diff, k.side, bx.minX, bx.minY, bx.maxX, bx.maxY)
	return rep
}

// buildSeeds translates the injection into initial difference-field seeds
// and the iteration at which they enter the field, appending onto the
// caller's (possibly recycled) seed slice. state is read-only.
func (k *Kernel) buildSeeds(g *goldenTimeline, state []float32, inj arch.Injection, rng *xrand.RNG, t0 int, seeds []diffSeed) ([]diffSeed, int) {
	s := k.side
	cells := s * s
	addFlip := func(idx int) {
		v := state[idx]
		f := inj.Flip.Apply32(v, rng)
		// Range guard: out-of-band values are reset to ambient by the
		// solver's state validation (see ValidLo/ValidHi).
		if math.IsNaN(float64(f)) || math.IsInf(float64(f), 0) || f < ValidLo || f > ValidHi {
			f = Ambient
		}
		if f != v {
			seeds = append(seeds, diffSeed{x: idx % s, y: idx / s, d: float64(f) - float64(v)})
		}
	}

	switch inj.Scope {
	case arch.ScopeAccumTerm, arch.ScopeInputWord, arch.ScopeOutputWord:
		addFlip(rng.Intn(cells))

	case arch.ScopeVectorLanes:
		w32 := kernels.Words32(inj.Words)
		start := rng.Intn(cells)
		for w := 0; w < w32 && start+w < cells; w++ {
			addFlip(start + w)
		}

	case arch.ScopeCacheLine, arch.ScopeSharedTile:
		w32 := kernels.Words32(inj.Words)
		for line := 0; line < inj.Lines; line++ {
			slots := cells / w32
			if slots < 1 {
				slots = 1
			}
			start := rng.Intn(slots) * w32
			for w := 0; w < w32 && start+w < cells; w++ {
				addFlip(start + w)
			}
		}

	case arch.ScopeTaskSet:
		// A mis-scheduled tile misses `stall` update steps: its cells keep
		// stale values, a deficit (state@t0 - state@t0+stall) that enters
		// the field at t0+stall and then diffuses.
		stall := 1 + rng.Intn(3)
		start := min(t0+stall, k.iters)
		future := g.stateAt(start)
		tilesPerSide := k.side / TileSide
		for t := 0; t < inj.Tasks; t++ {
			tx, ty := rng.Intn(tilesPerSide), rng.Intn(tilesPerSide)
			for y := ty * TileSide; y < (ty+1)*TileSide; y++ {
				for x := tx * TileSide; x < (tx+1)*TileSide; x++ {
					i := y*s + x
					d := float64(state[i]) - float64(future[i])
					if d != 0 {
						seeds = append(seeds, diffSeed{x: x, y: y, d: d})
					}
				}
			}
		}
		return seeds, start
	}
	return seeds, t0
}

// diffBox is the closed bounding box of the active difference field;
// empty (maxX < minX) when the field is identically zero.
type diffBox struct {
	minX, minY, maxX, maxY int
}

func emptyBox() diffBox { return diffBox{minX: 1, maxX: 0} }

// evolveDiff advances the difference field from iteration t0 to the end
// inside an adaptive bounding box: the box grows by the stencil radius
// each step and shrinks again when edge rows or columns decay to exactly
// zero, so long-horizon strikes stop paying for a box that only ever
// grew. The restriction is bit-exact: cells outside the box are exactly
// zero, and the homogeneous recurrence maps an all-zero neighbourhood to
// exactly zero, so skipping those cells computes the same field a
// full-grid evolution would. Returns the final bounding box; sc.diff
// holds the field.
func (k *Kernel) evolveDiff(sc *evolveScratch, seeds []diffSeed, t0 int) diffBox {
	s := k.side
	diff, next := sc.diff, sc.next
	if len(seeds) == 0 {
		return emptyBox()
	}
	minX, minY, maxX, maxY := s, s, -1, -1
	for _, sd := range seeds {
		diff[sd.y*s+sd.x] += sd.d
		minX, minY = min(minX, sd.x), min(minY, sd.y)
		maxX, maxY = max(maxX, sd.x), max(maxY, sd.y)
	}
	for it := t0; it < k.iters; it++ {
		// Expand the active box by the stencil radius.
		minX, minY = max(0, minX-1), max(0, minY-1)
		maxX, maxY = min(s-1, maxX+1), min(s-1, maxY+1)
		for y := minY; y <= maxY; y++ {
			// Interior rows take a bounds-free fast path; grid-edge rows
			// and columns fall back to the checked neighbour reads. Both
			// evaluate the identical float expression in identical order.
			if y == 0 || y == s-1 {
				for x := minX; x <= maxX; x++ {
					k.evolveCell(diff, next, x, y)
				}
				continue
			}
			x := minX
			if x == 0 {
				k.evolveCell(diff, next, 0, y)
				x = 1
			}
			xHi := maxX
			if xHi == s-1 {
				xHi = s - 2
			}
			row := y * s
			for ; x <= xHi; x++ {
				i := row + x
				d := diff[i]
				next[i] = d + Diff*((diff[i-s]+diff[i+s]+diff[i+1]+diff[i-1])-4*d) - Sink*d
			}
			if maxX == s-1 {
				k.evolveCell(diff, next, s-1, y)
			}
		}
		for y := minY; y <= maxY; y++ {
			copy(diff[y*s+minX:y*s+maxX+1], next[y*s+minX:y*s+maxX+1])
		}
		// Shrink edges that decayed to exactly zero; an empty box means
		// the field fully dissipated and further iterations are identity.
		for minY <= maxY && rowZero(diff, s, minY, minX, maxX) {
			minY++
		}
		for minY <= maxY && rowZero(diff, s, maxY, minX, maxX) {
			maxY--
		}
		if minY > maxY {
			return emptyBox()
		}
		for minX <= maxX && colZero(diff, s, minX, minY, maxY) {
			minX++
		}
		for minX <= maxX && colZero(diff, s, maxX, minY, maxY) {
			maxX--
		}
	}
	return diffBox{minX: minX, minY: minY, maxX: maxX, maxY: maxY}
}

// evolveCell is the checked-stencil update of one cell: the slow path for
// grid-edge cells, bitwise identical to the interior fast path.
func (k *Kernel) evolveCell(diff, next []float64, x, y int) {
	s := k.side
	i := y*s + x
	d := diff[i]
	n := dneighbor(diff, s, x, y-1, d)
	so := dneighbor(diff, s, x, y+1, d)
	w := dneighbor(diff, s, x-1, y, d)
	e := dneighbor(diff, s, x+1, y, d)
	next[i] = d + Diff*((n+so+e+w)-4*d) - Sink*d
}

func rowZero(d []float64, s, y, x0, x1 int) bool {
	for _, v := range d[y*s+x0 : y*s+x1+1] {
		if v != 0 {
			return false
		}
	}
	return true
}

func colZero(d []float64, s, x, y0, y1 int) bool {
	for y := y0; y <= y1; y++ {
		if d[y*s+x] != 0 {
			return false
		}
	}
	return true
}

func dneighbor(d []float64, s, x, y int, self float64) float64 {
	if x < 0 || x >= s || y < 0 || y >= s {
		return self
	}
	return d[y*s+x]
}

// reportFromDiff converts the final difference field into a mismatch
// report, discarding sub-ulp differences that float32 arithmetic would
// have rounded away. Only the final bounding box is scanned — every cell
// outside it is exactly zero — in the same row-major order a full-grid
// scan would visit, so the report is unchanged by the restriction.
func (k *Kernel) reportFromDiff(pool *metrics.ReportPool, diff []float64, bx diffBox) *metrics.Report {
	s := k.side
	rep := pool.Get(grid.Dims{X: s, Y: s, Z: 1}, s*s)
	for y := bx.minY; y <= bx.maxY; y++ {
		for x := bx.minX; x <= bx.maxX; x++ {
			i := y*s + x
			d := diff[i]
			if d == 0 {
				continue
			}
			g := float64(k.final[i])
			if math.Abs(d) < math.Abs(g)*ulp32 {
				continue
			}
			read := g + d
			rep.Mismatches = append(rep.Mismatches, metrics.Mismatch{
				Coord:     grid.Coord{X: x, Y: y},
				Read:      read,
				Expected:  g,
				RelErrPct: metrics.RelativeErrorPct(read, g),
			})
		}
	}
	return rep
}

// RunDense runs an injection and materialises golden and faulty outputs
// as dense grids (for examples and detectors).
func (k *Kernel) RunDense(dev arch.Device, inj arch.Injection, rng *xrand.RNG) (golden, faulty *grid.Grid) {
	golden = k.GoldenFinal()
	faulty = golden.Clone()
	rep := k.RunInjected(dev, inj, rng)
	for _, m := range rep.Mismatches {
		faulty.Set(m.Coord, m.Read)
	}
	return golden, faulty
}

// Entropy returns a spatial-disorder measure of a temperature field: the
// Shannon entropy of the binned temperature distribution. §V-C suggests
// monitoring system entropy to detect widespread stencil errors.
func Entropy(g *grid.Grid, bins int) float64 {
	if bins < 2 {
		bins = 16
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range g.Data() {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if !(hi > lo) {
		return 0
	}
	counts := make([]int, bins)
	for _, v := range g.Data() {
		b := int(float64(bins) * (v - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	n := float64(g.Len())
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}
