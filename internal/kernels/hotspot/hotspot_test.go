package hotspot

import (
	"math"
	"testing"

	"radcrit/internal/arch"
	"radcrit/internal/fault"
	"radcrit/internal/floatbits"
	"radcrit/internal/k40"
	"radcrit/internal/metrics"
	"radcrit/internal/phi"
	"radcrit/internal/xrand"
)

func small() *Kernel { return New(64, 80) }

func TestNewValidation(t *testing.T) {
	for _, c := range []struct{ s, i int }{{4, 100}, {64, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d,%d) did not panic", c.s, c.i)
				}
			}()
			New(c.s, c.i)
		}()
	}
}

func TestGoldenDeterministic(t *testing.T) {
	a := New(32, 40).GoldenFinal()
	b := New(32, 40).GoldenFinal()
	if !a.Equal(b) {
		t.Fatal("golden runs differ")
	}
}

func TestGoldenWarmsAboveAmbient(t *testing.T) {
	k := small()
	g := k.GoldenFinal()
	anyAbove := false
	for _, v := range g.Data() {
		if v < Ambient-1e-3 {
			t.Fatalf("temperature fell below ambient: %v", v)
		}
		if v > Ambient+0.5 {
			anyAbove = true
		}
	}
	if !anyAbove {
		t.Fatal("power map heated nothing")
	}
}

func TestStateAtConsistency(t *testing.T) {
	k := small()
	// stateAt(iters) must equal the cached final.
	s := k.stateAt(k.iters)
	for i := range s {
		if s[i] != k.final[i] {
			t.Fatal("stateAt(iters) != final")
		}
	}
	// stateAt must be consistent: stepping stateAt(10) once gives stateAt(11).
	s10 := k.stateAt(10)
	s11 := k.stateAt(11)
	next := make([]float32, len(s10))
	k.step(next, s10)
	for i := range next {
		if next[i] != s11[i] {
			t.Fatal("stateAt(10)+step != stateAt(11)")
		}
	}
}

func mkInj(scope arch.Scope, when float64) arch.Injection {
	return arch.Injection{
		Scope: scope,
		When:  when,
		Words: 8,
		Lines: 1,
		Tasks: 1,
		Flip:  fault.FlipSpec{Field: floatbits.Exponent, Bits: 1},
	}
}

// The diff-field evolution must agree with a brute-force faulty
// re-simulation.
func TestDiffEvolutionMatchesBruteForce(t *testing.T) {
	k := New(48, 60)
	t0 := 20
	// Brute force: re-simulate with one corrupted cell at t0.
	state := k.stateAt(t0)
	cx, cy := 24, 24
	idx := cy*48 + cx
	corrupted := state[idx] * 2 // exponent-style doubling
	state[idx] = corrupted
	next := make([]float32, len(state))
	for it := t0; it < k.iters; it++ {
		k.step(next, state)
		state, next = next, state
	}

	// Diff evolution of the same corruption.
	seeds := []diffSeed{{x: cx, y: cy, d: float64(corrupted) - float64(k.stateAt(t0)[idx])}}
	sc := newTestScratch(k)
	k.evolveDiff(sc, seeds, t0)
	diff := sc.diff

	worst := 0.0
	for i := range state {
		got := float64(k.final[i]) + diff[i]
		want := float64(state[i])
		err := math.Abs(got - want)
		if want != 0 {
			err /= math.Abs(want)
		}
		if err > worst {
			worst = err
		}
	}
	// float32 rounding is the only divergence source.
	if worst > 1e-4 {
		t.Fatalf("diff evolution diverged from brute force: %v relative", worst)
	}
}

func TestErrorsDissipate(t *testing.T) {
	// The defining HotSpot behaviour (§V-C): an early corruption is
	// smoothed toward equilibrium, so late injections hurt more than
	// early ones.
	k := New(64, 200)
	in := mkInj(arch.ScopeOutputWord, 0)
	early := k.RunInjected(k40.New(), in, xrand.New(7))
	in.When = 0.95
	late := k.RunInjected(k40.New(), in, xrand.New(7))
	if early.Count() > 0 && late.Count() > 0 {
		if early.MaxRelErrPct() > late.MaxRelErrPct() {
			t.Fatalf("early error (%v%%) should have dissipated below late (%v%%)",
				early.MaxRelErrPct(), late.MaxRelErrPct())
		}
	}
}

func TestMeanRelativeErrorIsLow(t *testing.T) {
	// Paper: HotSpot MRE < 25% in all observed cases. The range guard
	// bounds instantaneous errors to the validity band (worst ~45%), and
	// dissipation plus spreading pull the mean well below it.
	k := small()
	runs := 0
	for seed := uint64(0); seed < 60; seed++ {
		rng := xrand.New(seed)
		in := mkInj(arch.ScopeCacheLine, rng.Float64())
		rep := k.RunInjected(k40.New(), in, rng)
		if rep.Count() == 0 {
			continue
		}
		runs++
		if mre := rep.MeanRelErrPct(math.Inf(1)); mre > 60 {
			t.Fatalf("seed %d: MRE %v%% exceeds the range-guard bound", seed, mre)
		}
	}
	if runs == 0 {
		t.Fatal("all runs masked")
	}
}

func TestLocalityLineOrSquare(t *testing.T) {
	// Paper Fig. 7: HotSpot exhibits only line and square errors.
	k := small()
	for seed := uint64(0); seed < 30; seed++ {
		rng := xrand.New(seed)
		in := mkInj(arch.ScopeCacheLine, 0.9)
		rep := k.RunInjected(phi.New(), in, rng)
		if rep.Count() < 2 {
			continue
		}
		loc := rep.Locality()
		if loc == metrics.Cubic {
			t.Fatal("2D stencil produced cubic locality")
		}
	}
}

func TestTaskSetStallProducesSmallErrors(t *testing.T) {
	k := small()
	in := mkInj(arch.ScopeTaskSet, 0.5)
	rep := k.RunInjected(k40.New(), in, xrand.New(3))
	if rep.Count() > 0 {
		if rep.MeanRelErrPct(math.Inf(1)) > 10 {
			t.Fatalf("a 1-3 iteration stall should cause small errors, got %v%%",
				rep.MeanRelErrPct(math.Inf(1)))
		}
	}
}

func TestRunDenseAgreesWithReport(t *testing.T) {
	k := small()
	in := mkInj(arch.ScopeVectorLanes, 0.8)
	rng1 := xrand.New(9)
	rng2 := xrand.New(9)
	golden, faulty := k.RunDense(phi.New(), in, rng1)
	rep := k.RunInjected(phi.New(), in, rng2)
	diff := metrics.Evaluate(golden, faulty)
	if diff.Count() != rep.Count() {
		t.Fatalf("dense diff count %d != report %d", diff.Count(), rep.Count())
	}
}

func TestEntropyDetectsDisorder(t *testing.T) {
	k := small()
	g := k.GoldenFinal()
	base := Entropy(g, 32)
	// Corrupt a block grossly and entropy should shift.
	c := g.Clone()
	for y := 10; y < 30; y++ {
		for x := 10; x < 30; x++ {
			c.Set2(x, y, c.At2(x, y)*8)
		}
	}
	if Entropy(c, 32) == base {
		t.Fatal("entropy blind to gross corruption")
	}
}

func TestEntropyUniformIsZero(t *testing.T) {
	k := small()
	g := k.GoldenFinal()
	g.Fill(5)
	if Entropy(g, 16) != 0 {
		t.Fatal("uniform field should have zero entropy")
	}
}

func TestProfileHighOccupancy(t *testing.T) {
	k := New(1024, 100)
	p := k.Profile(k40.New())
	if p.Threads != 1024*1024 {
		t.Fatalf("threads = %d, want #cells (Table II)", p.Threads)
	}
	if !p.MemoryBound {
		t.Fatal("HotSpot is memory bound (Table I)")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
