// Package lavamd implements the paper's particle-interaction benchmark:
// an N-Body style solver (Rodinia's LavaMD) computing particle potentials
// from mutual forces within a large 3D space divided into boxes. It is
// memory-bound, load-imbalanced (border boxes have fewer neighbours) and
// has a regular access pattern (Table I).
//
// Each particle's potential accumulates q_j * exp(-alpha * r^2) over all
// particles in the 27-box neighbourhood (home box + 26 cut-off
// neighbours). The exponential is the criticality lever the paper
// highlights: "exponentiation operations can turn small value variations
// into large differences" (§V-E), which is why transcendental-unit strikes
// on the K40 produce enormous relative errors. Faulty runs use exact delta
// propagation over the affected neighbourhoods, reading particle state and
// golden potentials from per-handle golden-sum tables (DESIGN.md §13): a
// locality-friendly SoA layout with flattened neighbour lists, built
// lazily per box in the exact naive summation order so every table value
// is bit-identical to an on-demand recomputation.
package lavamd

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"radcrit/internal/arch"
	"radcrit/internal/grid"
	"radcrit/internal/kernels"
	"radcrit/internal/metrics"
	"radcrit/internal/scratch"
	"radcrit/internal/xrand"
)

// Alpha is the exponential decay constant of the interaction kernel.
const Alpha = 0.5

// ParticleWords is the per-particle state footprint in 64-bit words
// (x, y, z, charge).
const ParticleWords = 4

// Kernel is a LavaMD instance: a g x g x g grid of boxes.
type Kernel struct {
	g    int
	seed uint64
	// handles memoises golden-state handles per particles-per-box count
	// (the only device-dependent parameter of LavaMD's golden state).
	handles sync.Map // int -> *goldenHandle
}

// goldenHandle is LavaMD's golden-state handle: the device's particle
// count per box, the golden-sum tables shared by every strike, and the
// pool of per-strike scratch shared by a campaign session's workers.
type goldenHandle struct {
	k   *Kernel
	p   int
	tab *goldenTab
	scr *scratch.Pool[*runScratch]
}

// goldenTab holds the per-(kernel, particles-per-box) golden-sum tables:
// flattened cut-off neighbour lists (CSR layout, replacing the neighbors()
// callback walk) plus per-box particle state and golden potentials in SoA
// layout. Neighbour lists are built eagerly (cheap); state and potential
// arrays fill lazily per box, because a campaign's strikes touch a biased
// subset of boxes and an eager build of a paper-scale grid would cost
// seconds per handle.
type goldenTab struct {
	k     *Kernel
	p     int
	total int
	// nbrOff/nbrBoxes are the CSR neighbour lists: box bi's cut-off
	// neighbourhood (itself included) is nbrBoxes[nbrOff[bi]:nbrOff[bi+1]],
	// in exactly appendNeighbors order.
	nbrOff   []int32
	nbrBoxes []int32
	boxes    []boxTab
}

// boxTab is one box's lazily built table slots. Racing builders compute
// bit-identical values (pure functions of the kernel), so publication is a
// plain CompareAndSwap: either winner is correct, and readers never see a
// partial build. Atomic pointers keep the hot-path read allocation-free
// (a sync.Once closure would allocate per lookup).
type boxTab struct {
	st  atomic.Pointer[boxState]
	pot atomic.Pointer[[]float64]
}

// boxState is one box's particle state in SoA layout: component arrays
// indexed by particle, so consumer loops stream x/y/z/q sequentially
// instead of re-deriving four hash values per particle.
type boxState struct {
	x, y, z, q []float64
}

// runScratch is one borrowable strike working set: the epoch-stamped
// faulty-potential map (cleared in O(1) between strikes) plus the small
// corrupted-word buffer the cache-line path used to allocate fresh.
type runScratch struct {
	faulty scratch.IndexMap[float64]
	cs     []corruptedParticle
}

// nb is one box of a cut-off neighbourhood.
type nb struct{ x, y, z int }

// corruptedParticle identifies one corrupted particle-state word.
type corruptedParticle struct {
	bx, by, bz, idx int
	comp            int
}

// Golden implements kernels.Kernel.
func (k *Kernel) Golden(dev arch.Device) kernels.GoldenState {
	return k.handleFor(k.ParticlesPerBox(dev))
}

// handleFor memoises the golden handle per particles-per-box count.
// Racing creators build duplicate (empty) tables; LoadOrStore keeps one.
func (k *Kernel) handleFor(p int) *goldenHandle {
	if v, ok := k.handles.Load(p); ok {
		return v.(*goldenHandle)
	}
	h := &goldenHandle{k: k, p: p, tab: k.newGoldenTab(p),
		scr: scratch.NewNamedPool("lavamd.run", func() *runScratch { return &runScratch{} })}
	v, _ := k.handles.LoadOrStore(p, h)
	return v.(*goldenHandle)
}

var _ kernels.Kernel = (*Kernel)(nil)
var _ kernels.BatchRunner = (*Kernel)(nil)

// Check reports whether g is a valid box-grid size without building
// anything: the non-panicking face of New's precondition, used by plan
// validation.
func Check(g int) error {
	if g < 2 {
		return fmt.Errorf("lavamd: grid size %d too small", g)
	}
	return nil
}

// New returns a LavaMD kernel with g boxes per dimension (the paper uses
// 13, 15, 19 and 23).
func New(g int) *Kernel {
	if err := Check(g); err != nil {
		panic(err.Error())
	}
	return &Kernel{g: g, seed: 0x1A7A + uint64(g)}
}

// GridSize returns boxes per dimension.
func (k *Kernel) GridSize() int { return k.g }

// Name implements kernels.Kernel.
func (k *Kernel) Name() string { return "LavaMD" }

// Domain implements kernels.Kernel (Table II).
func (k *Kernel) Domain() string { return "Molecular dynamics" }

// InputLabel implements kernels.Kernel.
func (k *Kernel) InputLabel() string { return fmt.Sprintf("grid %d", k.g) }

// Class implements kernels.Kernel (Table I).
func (k *Kernel) Class() kernels.Class {
	return kernels.Class{BoundBy: "Memory", LoadBalance: "Imbalanced", MemoryAccess: "Regular"}
}

// ParticlesPerBox returns the per-box particle count, selected "to best
// fit the hardware" (Table II): 192 on the K40's wide SMs, 100 on the
// Phi's 4-thread cores. The device's SIMD width is the discriminator.
func (k *Kernel) ParticlesPerBox(dev arch.Device) int {
	if dev.Model().VectorWidthBits > 0 {
		return 100
	}
	return 192
}

// particle returns the deterministic state of global particle gidx in box
// (bx,by,bz): global position and charge.
func (k *Kernel) particle(bx, by, bz, idx int) (x, y, z, q float64) {
	gidx := ((bz*k.g+by)*k.g+bx)*4096 + idx
	x = float64(bx) + kernels.ValueAt(k.seed, gidx, 0, 0, 1)
	y = float64(by) + kernels.ValueAt(k.seed, gidx, 1, 0, 1)
	z = float64(bz) + kernels.ValueAt(k.seed, gidx, 2, 0, 1)
	q = kernels.ValueAt(k.seed, gidx, 3, 0.5, 1.5)
	return
}

// interaction returns one pairwise term q_j * exp(-Alpha * r^2).
func interaction(xi, yi, zi, xj, yj, zj, qj float64) float64 {
	dx, dy, dz := xi-xj, yi-yj, zi-zj
	r2 := dx*dx + dy*dy + dz*dz
	return qj * math.Exp(-Alpha*r2)
}

// boxIndex linearises box coordinates; it also defines processing order.
func (k *Kernel) boxIndex(bx, by, bz int) int { return (bz*k.g+by)*k.g + bx }

// neighbors calls fn for every box in b's cut-off neighbourhood including
// b itself. It delegates to appendNeighbors so the enumeration order —
// which the injected paths' RNG consumption depends on — has exactly one
// definition.
func (k *Kernel) neighbors(bx, by, bz int, fn func(nx, ny, nz int)) {
	var buf [27]nb
	for _, b := range k.appendNeighbors(buf[:0], bx, by, bz) {
		fn(b.x, b.y, b.z)
	}
}

// appendNeighbors collects the cut-off neighbourhood of (bx,by,bz) into
// buf[:0] — the enumeration order every neighbour consumer (including the
// flattened nbrBoxes lists) derives from.
func (k *Kernel) appendNeighbors(buf []nb, bx, by, bz int) []nb {
	buf = buf[:0]
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny, nz := bx+dx, by+dy, bz+dz
				if nx < 0 || nx >= k.g || ny < 0 || ny >= k.g || nz < 0 || nz >= k.g {
					continue
				}
				buf = append(buf, nb{nx, ny, nz})
			}
		}
	}
	return buf
}

// newGoldenTab builds the CSR neighbour lists and empty per-box slots.
func (k *Kernel) newGoldenTab(p int) *goldenTab {
	total := k.g * k.g * k.g
	t := &goldenTab{
		k:      k,
		p:      p,
		total:  total,
		nbrOff: make([]int32, total+1),
		boxes:  make([]boxTab, total),
	}
	t.nbrBoxes = make([]int32, 0, total*27)
	var buf [27]nb
	for bi := 0; bi < total; bi++ {
		bx, by, bz := k.boxCoords(bi)
		for _, b := range k.appendNeighbors(buf[:0], bx, by, bz) {
			t.nbrBoxes = append(t.nbrBoxes, int32(k.boxIndex(b.x, b.y, b.z)))
		}
		t.nbrOff[bi+1] = int32(len(t.nbrBoxes))
	}
	return t
}

// boxCoords inverts boxIndex.
func (k *Kernel) boxCoords(bi int) (bx, by, bz int) {
	return bi % k.g, (bi / k.g) % k.g, bi / (k.g * k.g)
}

// nbrsOf returns box bi's flattened cut-off neighbourhood (itself
// included), in appendNeighbors order.
func (t *goldenTab) nbrsOf(bi int) []int32 {
	return t.nbrBoxes[t.nbrOff[bi]:t.nbrOff[bi+1]]
}

// state returns box bi's particle-state SoA, building it on first use.
func (t *goldenTab) state(bi int) *boxState {
	if s := t.boxes[bi].st.Load(); s != nil {
		return s
	}
	return t.buildState(bi)
}

func (t *goldenTab) buildState(bi int) *boxState {
	bx, by, bz := t.k.boxCoords(bi)
	s := &boxState{
		x: make([]float64, t.p), y: make([]float64, t.p),
		z: make([]float64, t.p), q: make([]float64, t.p),
	}
	for idx := 0; idx < t.p; idx++ {
		s.x[idx], s.y[idx], s.z[idx], s.q[idx] = t.k.particle(bx, by, bz, idx)
	}
	if !t.boxes[bi].st.CompareAndSwap(nil, s) {
		return t.boxes[bi].st.Load()
	}
	return s
}

// potential returns the golden potential of particle idx of box bi from
// the golden-sum table, building the box's column on first use.
func (t *goldenTab) potential(bi, idx int) float64 {
	if p := t.boxes[bi].pot.Load(); p != nil {
		return (*p)[idx]
	}
	return (*t.buildPot(bi))[idx]
}

// buildPot fills box bi's golden-potential column in the exact naive
// summation order — a flat left-fold over the neighbourhood in
// appendNeighbors order, self-interaction skipped — so table values are
// bit-identical to an on-demand recomputation (the float accumulation
// tree is the bit-identity contract, DESIGN.md §13).
func (t *goldenTab) buildPot(bi int) *[]float64 {
	own := t.state(bi)
	nbrs := t.nbrsOf(bi)
	pot := make([]float64, t.p)
	for idx := 0; idx < t.p; idx++ {
		xi, yi, zi := own.x[idx], own.y[idx], own.z[idx]
		var v float64
		for _, nbi := range nbrs {
			ns := t.state(int(nbi))
			same := int(nbi) == bi
			for j := 0; j < t.p; j++ {
				if same && j == idx {
					continue
				}
				v += interaction(xi, yi, zi, ns.x[j], ns.y[j], ns.z[j], ns.q[j])
			}
		}
		pot[idx] = v
	}
	if !t.boxes[bi].pot.CompareAndSwap(nil, &pot) {
		return t.boxes[bi].pot.Load()
	}
	return &pot
}

// GoldenPotential computes the fault-free potential of particle idx of box
// (bx,by,bz) from the golden-sum table.
func (k *Kernel) GoldenPotential(dev arch.Device, bx, by, bz, idx int) float64 {
	h := k.handleFor(k.ParticlesPerBox(dev))
	return h.tab.potential(k.boxIndex(bx, by, bz), idx)
}

// Profile implements kernels.Kernel. LavaMD keeps the home box and one
// neighbour box in local memory at all times (~14 KB per block on the
// K40, §V-B), which caps GPU occupancy and with it scheduler strain.
// Border boxes have truncated neighbourhoods: the resulting load imbalance
// shrinks with grid size, reducing the control-flow share of big inputs.
func (k *Kernel) Profile(dev arch.Device) arch.Profile {
	p := k.ParticlesPerBox(dev)
	boxes := k.g * k.g * k.g
	inner := float64((k.g - 2) * (k.g - 2) * (k.g - 2))
	borderFrac := 1 - inner/float64(boxes)
	prof := arch.Profile{
		Kernel:             "LavaMD",
		InputLabel:         k.InputLabel(),
		OutputDims:         k.outputDims(dev),
		Threads:            boxes * p,
		Blocks:             boxes,
		LocalMemPerBlockKB: 2 * float64(p) * ParticleWords * 8 / 1024,
		CacheFootprintKB:   float64(boxes) * float64(p) * ParticleWords * 8 / 1024,
		ControlShare:       0.04 + 1.2*borderFrac*borderFrac,
		MemoryBound:        true,
		Irregular:          false,
		// Heavy local-memory use caps the number of simultaneously
		// resident blocks, limiting scheduler strain (§V-B).
		DispatchFactor: 0.08,
		RelRuntime:     float64(boxes) * float64(p*p) / (13 * 13 * 13 * 100 * 100),
	}
	m := dev.Model()
	// On the K40 blocks stage particle boxes into local memory and read
	// each cache line once (streaming: upsets mostly hit dead lines); the
	// Phi instead re-reads neighbour boxes from its large coherent L2, so
	// cached particle data stays live across many consumers (§V-E).
	prof.StreamingData = m.SharedMemKBPerCore > 0
	if m.SFUAreaAU > 0 {
		// GPU: exponentials run on the dedicated transcendental unit.
		prof.SFUShare = 0.45
		prof.FPUShare = 0.45
	} else {
		prof.FPUShare = 0.45
	}
	if m.VectorWidthBits > 0 {
		prof.VectorShare = 0.55
	}
	return prof
}

// outputDims maps the particle potentials to a 3D grid: the x axis
// interleaves the particles of each box (x = bx*P + idx), y and z are box
// coordinates — exactly the "multiple dimensions of the output" view the
// paper's spatial-locality metric takes of LavaMD.
func (k *Kernel) outputDims(dev arch.Device) grid.Dims {
	return k.outputDimsP(k.ParticlesPerBox(dev))
}

// outputDimsP is outputDims keyed directly by particles-per-box.
func (k *Kernel) outputDimsP(p int) grid.Dims {
	return grid.Dims{X: k.g * p, Y: k.g, Z: k.g}
}

// run carries per-execution corrupted state on top of the shared golden
// tables. The faulty-potential map (flat particle id -> potential) lives
// in scratch borrowed from the handle's pool; runs are stack values so a
// strike allocates nothing of its own.
type run struct {
	k   *Kernel
	tab *goldenTab
	p   int
	sc  *runScratch
	rep *metrics.Report
}

func (r *run) coordOf(bx, by, bz, idx int) grid.Coord {
	return grid.Coord{X: bx*r.p + idx, Y: by, Z: bz}
}

// adjust accumulates a potential delta for one particle of box bi.
func (r *run) adjust(bi, idx int, delta float64) {
	if delta == 0 {
		return
	}
	key := (bi << 12) | idx
	// potential never touches the faulty map, so the slot pointer stays
	// valid across the initialisation.
	slot, fresh := r.sc.faulty.Ref(key)
	if fresh {
		*slot = r.tab.potential(bi, idx)
	}
	*slot += delta
}

// set overrides a particle's faulty potential outright.
func (r *run) set(bi, idx int, v float64) {
	r.sc.faulty.Set((bi<<12)|idx, v)
}

// finish converts accumulated faulty values into the mismatch report.
// Mismatches are emitted in ascending particle-id order so the report is
// a deterministic function of the corrupted set, exactly as the
// pre-pooling sort emitted them.
func (r *run) finish() *metrics.Report {
	for _, key := range r.sc.faulty.SortedKeys() {
		v, _ := r.sc.faulty.Get(key)
		idx := key & 0xFFF
		box := key >> 12
		g := r.tab.potential(box, idx)
		if v == g {
			continue
		}
		bx, by, bz := r.k.boxCoords(box)
		r.rep.Mismatches = append(r.rep.Mismatches, metrics.Mismatch{
			Coord:     r.coordOf(bx, by, bz, idx),
			Read:      v,
			Expected:  g,
			RelErrPct: metrics.RelativeErrorPct(v, g),
		})
	}
	return r.rep
}

// RunInjected implements kernels.Kernel.
func (k *Kernel) RunInjected(dev arch.Device, inj arch.Injection, rng *xrand.RNG) *metrics.Report {
	return k.RunInjectedOn(k.Golden(dev), inj, rng)
}

// RunInjectedOn implements kernels.Kernel.
func (k *Kernel) RunInjectedOn(gs kernels.GoldenState, inj arch.Injection, rng *xrand.RNG) *metrics.Report {
	return k.RunInjectedPooled(gs, inj, rng, nil)
}

// RunInjectedPooled implements kernels.Kernel: the faulty-potential map
// comes from the handle's scratch pool, the report from the session pool.
func (k *Kernel) RunInjectedPooled(gs kernels.GoldenState, inj arch.Injection, rng *xrand.RNG, reports *metrics.ReportPool) *metrics.Report {
	h := gs.(*goldenHandle)
	sc := h.scr.Get()
	rep := k.runInjectedWith(h, sc, inj, rng, reports)
	h.scr.Put(sc)
	return rep
}

// RunInjectedBatch implements kernels.BatchRunner: the whole batch shares
// one borrowed scratch working set, so the faulty map's backing array and
// the golden-sum tables it touches stay cache-hot across strikes.
func (k *Kernel) RunInjectedBatch(gs kernels.GoldenState, batch []kernels.BatchStrike, reports *metrics.ReportPool) {
	h := gs.(*goldenHandle)
	sc := h.scr.Get()
	for i := range batch {
		batch[i].Report = k.runInjectedWith(h, sc, batch[i].Inj, batch[i].RNG, reports)
	}
	h.scr.Put(sc)
}

// runInjectedWith executes one injection against externally owned scratch.
func (k *Kernel) runInjectedWith(h *goldenHandle, sc *runScratch, inj arch.Injection, rng *xrand.RNG, reports *metrics.ReportPool) *metrics.Report {
	sc.faulty.Clear()
	dims := k.outputDimsP(h.p)
	r := run{k: k, tab: h.tab, p: h.p, sc: sc, rep: reports.Get(dims, dims.Len())}
	p := h.p
	g := k.g
	tab := h.tab

	switch inj.Scope {
	case arch.ScopeAccumTerm, arch.ScopeInputWord:
		// Datapath strike (FPU or transcendental unit): in LavaMD
		// virtually every FP operation feeds an exponential. A strike in
		// the transcendental pipeline perturbs the range-reduced
		// representation — the integer exponent part of exp()'s
		// argument — so the produced term comes out scaled by a power of
		// two: always a large error, matching the paper's hypothesis
		// that "exponentiation operations can turn small value
		// variations into large differences" and that the K40's LavaMD
		// SDCs are uniformly enormous (§V-E).
		bx, by, bz := rng.Intn(g), rng.Intn(g), rng.Intn(g)
		idx := rng.Intn(p)
		bi := k.boxIndex(bx, by, bz)
		t := k.randomTerm(tab, bi, idx, rng)
		shift := 4 + rng.Intn(28)
		scale := math.Ldexp(1, shift)
		if rng.Bool(0.3) {
			scale = 1 / scale // result collapses instead of exploding
		}
		r.adjust(bi, idx, t*scale-t)

	case arch.ScopeOutputWord:
		bx, by, bz := rng.Intn(g), rng.Intn(g), rng.Intn(g)
		idx := rng.Intn(p)
		bi := k.boxIndex(bx, by, bz)
		gv := tab.potential(bi, idx)
		r.set(bi, idx, inj.Flip.Apply(gv, rng))

	case arch.ScopeVectorLanes:
		// Adjacent potentials written back from one SIMD register.
		bx, by, bz := rng.Intn(g), rng.Intn(g), rng.Intn(g)
		idx0 := rng.Intn(p)
		bi := k.boxIndex(bx, by, bz)
		for w := 0; w < inj.Words && idx0+w < p; w++ {
			gv := tab.potential(bi, idx0+w)
			r.set(bi, idx0+w, inj.Flip.Apply(gv, rng))
		}

	case arch.ScopeCacheLine:
		k.injectCacheLines(&r, inj, rng)

	case arch.ScopeSharedTile:
		k.injectSharedTile(&r, inj, rng)

	case arch.ScopeTaskSet:
		k.injectTaskSet(&r, inj, rng)
	}

	return r.finish()
}

// randomTerm returns one golden pairwise term of particle idx of box bi:
// a random interaction partner among the p particles of each neighbouring
// box, excluding idx itself. The neighbour pick draws from the flattened
// list, which has the same length and order as the appendNeighbors walk,
// so RNG consumption is unchanged.
func (k *Kernel) randomTerm(tab *goldenTab, bi, idx int, rng *xrand.RNG) float64 {
	own := tab.state(bi)
	xi, yi, zi := own.x[idx], own.y[idx], own.z[idx]
	nbrs := tab.nbrsOf(bi)
	for {
		nbi := int(nbrs[rng.Intn(len(nbrs))])
		j := rng.Intn(tab.p)
		if nbi == bi && j == idx {
			continue // no self-interaction; p > 1 guarantees progress
		}
		ns := tab.state(nbi)
		return interaction(xi, yi, zi, ns.x[j], ns.y[j], ns.z[j], ns.q[j])
	}
}

// injectCacheLines corrupts particle state resident in cache. Every box
// whose neighbourhood contains a corrupted particle and which is processed
// after the strike consumes the poisoned copy; deltas are computed with
// the real interaction kernel.
func (k *Kernel) injectCacheLines(r *run, inj arch.Injection, rng *xrand.RNG) {
	p := r.p
	g := k.g
	totalWords := g * g * g * p * ParticleWords
	for line := 0; line < inj.Lines; line++ {
		w0 := alignedStart(rng, totalWords, inj.Words)
		// Collect the corrupted particle words into recycled scratch.
		cs := r.sc.cs[:0]
		for w := 0; w < inj.Words && w0+w < totalWords; w++ {
			word := w0 + w
			gidx := word / ParticleWords
			comp := word % ParticleWords
			idx := gidx % p
			box := gidx / p
			bx, by, bz := k.boxCoords(box)
			cs = append(cs, corruptedParticle{bx, by, bz, idx, comp})
		}
		r.sc.cs = cs // keep grown capacity pooled
		for _, c := range cs {
			k.propagateParticleCorruption(r, inj, rng, k.boxIndex(c.bx, c.by, c.bz), c.idx, c.comp)
		}
	}
}

// propagateParticleCorruption recomputes, by exact delta, every potential
// that consumed the corrupted component of particle (sb, idx). The
// corrupted-minus-golden term pairs stream the consumer boxes' SoA state,
// which is the whole-path arithmetic hot loop.
func (k *Kernel) propagateParticleCorruption(r *run, inj arch.Injection, rng *xrand.RNG, sb, idx, comp int) {
	p := r.p
	tab := r.tab
	ss := tab.state(sb)
	xj, yj, zj, qj := ss.x[idx], ss.y[idx], ss.z[idx], ss.q[idx]
	vals := [ParticleWords]float64{xj, yj, zj, qj}
	orig := vals[comp]
	vals[comp] = inj.Flip.Apply(orig, rng)
	if vals[comp] == orig {
		return
	}
	xn, yn, zn, qn := vals[0], vals[1], vals[2], vals[3]

	for _, nbi := range tab.nbrsOf(sb) {
		cb := int(nbi)
		// Consumer boxes processed before the strike read clean data.
		if !kernels.ProgressConsumed(cb, tab.total, inj.When) {
			continue
		}
		cs := tab.state(cb)
		same := cb == sb
		for i := 0; i < p; i++ {
			if same && i == idx {
				continue
			}
			xi, yi, zi := cs.x[i], cs.y[i], cs.z[i]
			old := interaction(xi, yi, zi, xj, yj, zj, qj)
			new_ := interaction(xi, yi, zi, xn, yn, zn, qn)
			r.adjust(cb, i, new_-old)
		}
	}

	// The corrupted particle's own potential is also recomputed from its
	// corrupted position if its box runs after the strike.
	if kernels.ProgressConsumed(sb, tab.total, inj.When) && comp < 3 {
		var v float64
		for _, nbi := range tab.nbrsOf(sb) {
			ns := tab.state(int(nbi))
			same := int(nbi) == sb
			for j := 0; j < p; j++ {
				if same && j == idx {
					continue
				}
				v += interaction(xn, yn, zn, ns.x[j], ns.y[j], ns.z[j], ns.q[j])
			}
		}
		r.set(sb, idx, v)
	}
}

// injectSharedTile corrupts a neighbour-box copy staged in one block's
// local memory: only that single consumer box computes with poisoned data.
func (k *Kernel) injectSharedTile(r *run, inj arch.Injection, rng *xrand.RNG) {
	p := r.p
	g := k.g
	tab := r.tab
	cx, cy, cz := rng.Intn(g), rng.Intn(g), rng.Intn(g)
	cb := k.boxIndex(cx, cy, cz)
	nbrs := tab.nbrsOf(cb)
	nbi := int(nbrs[rng.Intn(len(nbrs))])
	same := nbi == cb
	cs := tab.state(cb)
	ns := tab.state(nbi)

	w0 := alignedStart(rng, p*ParticleWords, inj.Words)
	for w := 0; w < inj.Words && w0+w < p*ParticleWords; w++ {
		word := w0 + w
		j := word / ParticleWords
		comp := word % ParticleWords
		xj, yj, zj, qj := ns.x[j], ns.y[j], ns.z[j], ns.q[j]
		vals := [ParticleWords]float64{xj, yj, zj, qj}
		orig := vals[comp]
		vals[comp] = inj.Flip.Apply(orig, rng)
		if vals[comp] == orig {
			continue
		}
		for i := 0; i < p; i++ {
			if same && i == j {
				continue
			}
			xi, yi, zi := cs.x[i], cs.y[i], cs.z[i]
			old := interaction(xi, yi, zi, xj, yj, zj, qj)
			new_ := interaction(xi, yi, zi, vals[0], vals[1], vals[2], vals[3])
			r.adjust(cb, i, new_-old)
		}
	}
}

// injectTaskSet mis-executes whole boxes: a corrupted scheduler entry
// either never launches a box (zero potentials) or launches it against a
// displaced neighbourhood.
func (k *Kernel) injectTaskSet(r *run, inj arch.Injection, rng *xrand.RNG) {
	p := r.p
	g := k.g
	tab := r.tab
	for t := 0; t < inj.Tasks; t++ {
		bx, by, bz := rng.Intn(g), rng.Intn(g), rng.Intn(g)
		bi := k.boxIndex(bx, by, bz)
		if rng.Bool(0.5) {
			for i := 0; i < p; i++ {
				r.set(bi, i, 0)
			}
			continue
		}
		// Displaced neighbourhood: the box computes as if it sat one box
		// over in x, so every particle sees a shifted particle set.
		sx := (bx + 1) % g
		sbi := k.boxIndex(sx, by, bz)
		own := tab.state(bi)
		nbrs := tab.nbrsOf(sbi)
		for i := 0; i < p; i++ {
			xi, yi, zi := own.x[i], own.y[i], own.z[i]
			var v float64
			for _, nbix := range nbrs {
				ns := tab.state(int(nbix))
				same := int(nbix) == bi
				for j := 0; j < p; j++ {
					if same && j == i {
						continue
					}
					v += interaction(xi, yi, zi, ns.x[j], ns.y[j], ns.z[j], ns.q[j])
				}
			}
			r.set(bi, i, v)
		}
	}
}

// alignedStart picks a line-aligned start index within [0, n).
func alignedStart(rng *xrand.RNG, n, words int) int {
	if words <= 0 {
		words = 1
	}
	slots := n / words
	if slots < 1 {
		return 0
	}
	return rng.Intn(slots) * words
}
