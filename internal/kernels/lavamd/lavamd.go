// Package lavamd implements the paper's particle-interaction benchmark:
// an N-Body style solver (Rodinia's LavaMD) computing particle potentials
// from mutual forces within a large 3D space divided into boxes. It is
// memory-bound, load-imbalanced (border boxes have fewer neighbours) and
// has a regular access pattern (Table I).
//
// Each particle's potential accumulates q_j * exp(-alpha * r^2) over all
// particles in the 27-box neighbourhood (home box + 26 cut-off
// neighbours). The exponential is the criticality lever the paper
// highlights: "exponentiation operations can turn small value variations
// into large differences" (§V-E), which is why transcendental-unit strikes
// on the K40 produce enormous relative errors. Faulty runs use exact delta
// propagation over the affected neighbourhoods.
package lavamd

import (
	"fmt"
	"math"
	"sync"

	"radcrit/internal/arch"
	"radcrit/internal/grid"
	"radcrit/internal/kernels"
	"radcrit/internal/metrics"
	"radcrit/internal/scratch"
	"radcrit/internal/xrand"
)

// Alpha is the exponential decay constant of the interaction kernel.
const Alpha = 0.5

// ParticleWords is the per-particle state footprint in 64-bit words
// (x, y, z, charge).
const ParticleWords = 4

// Kernel is a LavaMD instance: a g x g x g grid of boxes.
type Kernel struct {
	g    int
	seed uint64
	// goldenCache memoises GoldenPotential per (particles-per-box,
	// flat particle id): potentials are pure functions of the kernel's
	// deterministic particle state, and campaign runs query the same
	// consumers thousands of times.
	goldenCache sync.Map
	// handles memoises golden-state handles per particles-per-box count
	// (the only device-dependent parameter of LavaMD's golden state).
	handles sync.Map // int -> *goldenHandle
}

// goldenHandle is LavaMD's golden-state handle: the device's particle
// count per box, access to the kernel's shared potential cache, and the
// pool of per-strike scratch shared by a campaign session's workers.
type goldenHandle struct {
	k   *Kernel
	p   int
	scr *scratch.Pool[*runScratch]
}

// runScratch is one borrowable strike working set: the epoch-stamped
// faulty-potential map (cleared in O(1) between strikes) plus the small
// neighbour-enumeration buffers the injections used to allocate fresh.
type runScratch struct {
	faulty scratch.IndexMap[float64]
	nbs    []nb
	cs     []corruptedParticle
}

// nb is one box of a cut-off neighbourhood.
type nb struct{ x, y, z int }

// corruptedParticle identifies one corrupted particle-state word.
type corruptedParticle struct {
	bx, by, bz, idx int
	comp            int
}

// Golden implements kernels.Kernel.
func (k *Kernel) Golden(dev arch.Device) kernels.GoldenState {
	p := k.ParticlesPerBox(dev)
	if v, ok := k.handles.Load(p); ok {
		return v.(*goldenHandle)
	}
	h := &goldenHandle{k: k, p: p,
		scr: scratch.NewPool(func() *runScratch { return &runScratch{} })}
	v, _ := k.handles.LoadOrStore(p, h)
	return v.(*goldenHandle)
}

var _ kernels.Kernel = (*Kernel)(nil)

// Check reports whether g is a valid box-grid size without building
// anything: the non-panicking face of New's precondition, used by plan
// validation.
func Check(g int) error {
	if g < 2 {
		return fmt.Errorf("lavamd: grid size %d too small", g)
	}
	return nil
}

// New returns a LavaMD kernel with g boxes per dimension (the paper uses
// 13, 15, 19 and 23).
func New(g int) *Kernel {
	if err := Check(g); err != nil {
		panic(err.Error())
	}
	return &Kernel{g: g, seed: 0x1A7A + uint64(g)}
}

// GridSize returns boxes per dimension.
func (k *Kernel) GridSize() int { return k.g }

// Name implements kernels.Kernel.
func (k *Kernel) Name() string { return "LavaMD" }

// Domain implements kernels.Kernel (Table II).
func (k *Kernel) Domain() string { return "Molecular dynamics" }

// InputLabel implements kernels.Kernel.
func (k *Kernel) InputLabel() string { return fmt.Sprintf("grid %d", k.g) }

// Class implements kernels.Kernel (Table I).
func (k *Kernel) Class() kernels.Class {
	return kernels.Class{BoundBy: "Memory", LoadBalance: "Imbalanced", MemoryAccess: "Regular"}
}

// ParticlesPerBox returns the per-box particle count, selected "to best
// fit the hardware" (Table II): 192 on the K40's wide SMs, 100 on the
// Phi's 4-thread cores. The device's SIMD width is the discriminator.
func (k *Kernel) ParticlesPerBox(dev arch.Device) int {
	if dev.Model().VectorWidthBits > 0 {
		return 100
	}
	return 192
}

// particle returns the deterministic state of global particle gidx in box
// (bx,by,bz): global position and charge.
func (k *Kernel) particle(bx, by, bz, idx int) (x, y, z, q float64) {
	gidx := ((bz*k.g+by)*k.g+bx)*4096 + idx
	x = float64(bx) + kernels.ValueAt(k.seed, gidx, 0, 0, 1)
	y = float64(by) + kernels.ValueAt(k.seed, gidx, 1, 0, 1)
	z = float64(bz) + kernels.ValueAt(k.seed, gidx, 2, 0, 1)
	q = kernels.ValueAt(k.seed, gidx, 3, 0.5, 1.5)
	return
}

// interaction returns one pairwise term q_j * exp(-Alpha * r^2).
func interaction(xi, yi, zi, xj, yj, zj, qj float64) float64 {
	dx, dy, dz := xi-xj, yi-yj, zi-zj
	r2 := dx*dx + dy*dy + dz*dz
	return qj * math.Exp(-Alpha*r2)
}

// boxIndex linearises box coordinates; it also defines processing order.
func (k *Kernel) boxIndex(bx, by, bz int) int { return (bz*k.g+by)*k.g + bx }

// neighbors calls fn for every box in b's cut-off neighbourhood including
// b itself. It delegates to appendNeighbors so the enumeration order —
// which the injected paths' RNG consumption depends on — has exactly one
// definition.
func (k *Kernel) neighbors(bx, by, bz int, fn func(nx, ny, nz int)) {
	var buf [27]nb
	for _, b := range k.appendNeighbors(buf[:0], bx, by, bz) {
		fn(b.x, b.y, b.z)
	}
}

// GoldenPotential computes the fault-free potential of particle idx of box
// (bx,by,bz) on demand, memoised per particle.
func (k *Kernel) GoldenPotential(dev arch.Device, bx, by, bz, idx int) float64 {
	return k.goldenPotential(k.ParticlesPerBox(dev), bx, by, bz, idx)
}

// goldenPotential is GoldenPotential keyed directly by particles-per-box.
func (k *Kernel) goldenPotential(p, bx, by, bz, idx int) float64 {
	key := (int64(p)<<40 | int64(k.boxIndex(bx, by, bz))<<12 | int64(idx))
	if v, ok := k.goldenCache.Load(key); ok {
		return v.(float64)
	}
	xi, yi, zi, _ := k.particle(bx, by, bz, idx)
	var v float64
	k.neighbors(bx, by, bz, func(nx, ny, nz int) {
		for j := 0; j < p; j++ {
			if nx == bx && ny == by && nz == bz && j == idx {
				continue // no self-interaction
			}
			xj, yj, zj, qj := k.particle(nx, ny, nz, j)
			v += interaction(xi, yi, zi, xj, yj, zj, qj)
		}
	})
	k.goldenCache.Store(key, v)
	return v
}

// Profile implements kernels.Kernel. LavaMD keeps the home box and one
// neighbour box in local memory at all times (~14 KB per block on the
// K40, §V-B), which caps GPU occupancy and with it scheduler strain.
// Border boxes have truncated neighbourhoods: the resulting load imbalance
// shrinks with grid size, reducing the control-flow share of big inputs.
func (k *Kernel) Profile(dev arch.Device) arch.Profile {
	p := k.ParticlesPerBox(dev)
	boxes := k.g * k.g * k.g
	inner := float64((k.g - 2) * (k.g - 2) * (k.g - 2))
	borderFrac := 1 - inner/float64(boxes)
	prof := arch.Profile{
		Kernel:             "LavaMD",
		InputLabel:         k.InputLabel(),
		OutputDims:         k.outputDims(dev),
		Threads:            boxes * p,
		Blocks:             boxes,
		LocalMemPerBlockKB: 2 * float64(p) * ParticleWords * 8 / 1024,
		CacheFootprintKB:   float64(boxes) * float64(p) * ParticleWords * 8 / 1024,
		ControlShare:       0.04 + 1.2*borderFrac*borderFrac,
		MemoryBound:        true,
		Irregular:          false,
		// Heavy local-memory use caps the number of simultaneously
		// resident blocks, limiting scheduler strain (§V-B).
		DispatchFactor: 0.08,
		RelRuntime:     float64(boxes) * float64(p*p) / (13 * 13 * 13 * 100 * 100),
	}
	m := dev.Model()
	// On the K40 blocks stage particle boxes into local memory and read
	// each cache line once (streaming: upsets mostly hit dead lines); the
	// Phi instead re-reads neighbour boxes from its large coherent L2, so
	// cached particle data stays live across many consumers (§V-E).
	prof.StreamingData = m.SharedMemKBPerCore > 0
	if m.SFUAreaAU > 0 {
		// GPU: exponentials run on the dedicated transcendental unit.
		prof.SFUShare = 0.45
		prof.FPUShare = 0.45
	} else {
		prof.FPUShare = 0.45
	}
	if m.VectorWidthBits > 0 {
		prof.VectorShare = 0.55
	}
	return prof
}

// outputDims maps the particle potentials to a 3D grid: the x axis
// interleaves the particles of each box (x = bx*P + idx), y and z are box
// coordinates — exactly the "multiple dimensions of the output" view the
// paper's spatial-locality metric takes of LavaMD.
func (k *Kernel) outputDims(dev arch.Device) grid.Dims {
	return k.outputDimsP(k.ParticlesPerBox(dev))
}

// outputDimsP is outputDims keyed directly by particles-per-box.
func (k *Kernel) outputDimsP(p int) grid.Dims {
	return grid.Dims{X: k.g * p, Y: k.g, Z: k.g}
}

// run carries per-execution corrupted state on top of the shared golden
// handle. The faulty-potential map (flat particle id -> potential) and
// neighbour buffers live in scratch borrowed from the handle's pool.
type run struct {
	k   *Kernel
	g   *goldenHandle
	p   int
	sc  *runScratch
	rep *metrics.Report
}

func (k *Kernel) newRun(g *goldenHandle, reports *metrics.ReportPool) *run {
	dims := k.outputDimsP(g.p)
	sc := g.scr.Get()
	sc.faulty.Clear()
	return &run{
		k:   k,
		g:   g,
		p:   g.p,
		sc:  sc,
		rep: reports.Get(dims, dims.Len()),
	}
}

func (r *run) coordOf(bx, by, bz, idx int) grid.Coord {
	return grid.Coord{X: bx*r.p + idx, Y: by, Z: bz}
}

// adjust accumulates a potential delta for one particle.
func (r *run) adjust(bx, by, bz, idx int, delta float64) {
	if delta == 0 {
		return
	}
	key := (r.k.boxIndex(bx, by, bz) << 12) | idx
	// goldenPotential never touches the faulty map, so the slot pointer
	// stays valid across the initialisation.
	slot, fresh := r.sc.faulty.Ref(key)
	if fresh {
		*slot = r.k.goldenPotential(r.p, bx, by, bz, idx)
	}
	*slot += delta
}

// set overrides a particle's faulty potential outright.
func (r *run) set(bx, by, bz, idx int, v float64) {
	key := (r.k.boxIndex(bx, by, bz) << 12) | idx
	r.sc.faulty.Set(key, v)
}

// finish converts accumulated faulty values into the mismatch report and
// releases the scratch. Mismatches are emitted in ascending particle-id
// order so the report is a deterministic function of the corrupted set,
// exactly as the pre-pooling sort emitted them.
func (r *run) finish() *metrics.Report {
	for _, key := range r.sc.faulty.SortedKeys() {
		v, _ := r.sc.faulty.Get(key)
		idx := key & 0xFFF
		box := key >> 12
		bx := box % r.k.g
		by := (box / r.k.g) % r.k.g
		bz := box / (r.k.g * r.k.g)
		g := r.k.goldenPotential(r.p, bx, by, bz, idx)
		if v == g {
			continue
		}
		r.rep.Mismatches = append(r.rep.Mismatches, metrics.Mismatch{
			Coord:     r.coordOf(bx, by, bz, idx),
			Read:      v,
			Expected:  g,
			RelErrPct: metrics.RelativeErrorPct(v, g),
		})
	}
	r.g.scr.Put(r.sc)
	r.sc = nil
	return r.rep
}

// RunInjected implements kernels.Kernel.
func (k *Kernel) RunInjected(dev arch.Device, inj arch.Injection, rng *xrand.RNG) *metrics.Report {
	return k.RunInjectedOn(k.Golden(dev), inj, rng)
}

// RunInjectedOn implements kernels.Kernel.
func (k *Kernel) RunInjectedOn(gs kernels.GoldenState, inj arch.Injection, rng *xrand.RNG) *metrics.Report {
	return k.RunInjectedPooled(gs, inj, rng, nil)
}

// RunInjectedPooled implements kernels.Kernel: the faulty-potential map
// and neighbour buffers come from the handle's scratch pool, the report
// from the session pool.
func (k *Kernel) RunInjectedPooled(gs kernels.GoldenState, inj arch.Injection, rng *xrand.RNG, reports *metrics.ReportPool) *metrics.Report {
	r := k.newRun(gs.(*goldenHandle), reports)
	p := r.p
	g := k.g
	randBox := func() (int, int, int) { return rng.Intn(g), rng.Intn(g), rng.Intn(g) }

	switch inj.Scope {
	case arch.ScopeAccumTerm, arch.ScopeInputWord:
		// Datapath strike (FPU or transcendental unit): in LavaMD
		// virtually every FP operation feeds an exponential. A strike in
		// the transcendental pipeline perturbs the range-reduced
		// representation — the integer exponent part of exp()'s
		// argument — so the produced term comes out scaled by a power of
		// two: always a large error, matching the paper's hypothesis
		// that "exponentiation operations can turn small value
		// variations into large differences" and that the K40's LavaMD
		// SDCs are uniformly enormous (§V-E).
		bx, by, bz := randBox()
		idx := rng.Intn(p)
		t := k.randomTerm(r.sc, p, bx, by, bz, idx, rng)
		shift := 4 + rng.Intn(28)
		scale := math.Ldexp(1, shift)
		if rng.Bool(0.3) {
			scale = 1 / scale // result collapses instead of exploding
		}
		r.adjust(bx, by, bz, idx, t*scale-t)

	case arch.ScopeOutputWord:
		bx, by, bz := randBox()
		idx := rng.Intn(p)
		gv := k.goldenPotential(p, bx, by, bz, idx)
		r.set(bx, by, bz, idx, inj.Flip.Apply(gv, rng))

	case arch.ScopeVectorLanes:
		// Adjacent potentials written back from one SIMD register.
		bx, by, bz := randBox()
		idx0 := rng.Intn(p)
		for w := 0; w < inj.Words && idx0+w < p; w++ {
			gv := k.goldenPotential(p, bx, by, bz, idx0+w)
			r.set(bx, by, bz, idx0+w, inj.Flip.Apply(gv, rng))
		}

	case arch.ScopeCacheLine:
		k.injectCacheLines(r, inj, rng)

	case arch.ScopeSharedTile:
		k.injectSharedTile(r, inj, rng)

	case arch.ScopeTaskSet:
		k.injectTaskSet(r, inj, rng)
	}

	return r.finish()
}

// appendNeighbors collects the cut-off neighbourhood of (bx,by,bz) into
// buf[:0] — the same enumeration order as neighbors, without the
// callback's per-call closure allocation.
func (k *Kernel) appendNeighbors(buf []nb, bx, by, bz int) []nb {
	buf = buf[:0]
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny, nz := bx+dx, by+dy, bz+dz
				if nx < 0 || nx >= k.g || ny < 0 || ny >= k.g || nz < 0 || nz >= k.g {
					continue
				}
				buf = append(buf, nb{nx, ny, nz})
			}
		}
	}
	return buf
}

// randomTerm returns one golden pairwise term of particle idx.
func (k *Kernel) randomTerm(sc *runScratch, p, bx, by, bz, idx int, rng *xrand.RNG) float64 {
	xi, yi, zi, _ := k.particle(bx, by, bz, idx)
	nx, ny, nz, j := k.randomNeighborParticle(sc, p, bx, by, bz, idx, rng)
	xj, yj, zj, qj := k.particle(nx, ny, nz, j)
	return interaction(xi, yi, zi, xj, yj, zj, qj)
}

// randomNeighborParticle picks a random interaction partner of (box, idx)
// among the p particles of each neighbouring box, excluding idx itself.
func (k *Kernel) randomNeighborParticle(sc *runScratch, p, bx, by, bz, idx int, rng *xrand.RNG) (nx, ny, nz, j int) {
	sc.nbs = k.appendNeighbors(sc.nbs, bx, by, bz)
	for {
		b := sc.nbs[rng.Intn(len(sc.nbs))]
		j = rng.Intn(p)
		if b.x == bx && b.y == by && b.z == bz && j == idx {
			continue // no self-interaction; p > 1 guarantees progress
		}
		return b.x, b.y, b.z, j
	}
}

// injectCacheLines corrupts particle state resident in cache. Every box
// whose neighbourhood contains a corrupted particle and which is processed
// after the strike consumes the poisoned copy; deltas are computed with
// the real interaction kernel.
func (k *Kernel) injectCacheLines(r *run, inj arch.Injection, rng *xrand.RNG) {
	p := r.p
	g := k.g
	totalWords := g * g * g * p * ParticleWords
	for line := 0; line < inj.Lines; line++ {
		w0 := alignedStart(rng, totalWords, inj.Words)
		// Collect the corrupted particle words into recycled scratch.
		cs := r.sc.cs[:0]
		for w := 0; w < inj.Words && w0+w < totalWords; w++ {
			word := w0 + w
			gidx := word / ParticleWords
			comp := word % ParticleWords
			idx := gidx % p
			box := gidx / p
			bx := box % g
			by := (box / g) % g
			bz := box / (g * g)
			cs = append(cs, corruptedParticle{bx, by, bz, idx, comp})
		}
		r.sc.cs = cs // keep grown capacity pooled
		for _, c := range cs {
			k.propagateParticleCorruption(r, inj, rng, c.bx, c.by, c.bz, c.idx, c.comp)
		}
	}
}

// propagateParticleCorruption recomputes, by exact delta, every potential
// that consumed the corrupted component of particle (box, idx).
func (k *Kernel) propagateParticleCorruption(r *run, inj arch.Injection, rng *xrand.RNG, bx, by, bz, idx, comp int) {
	p := r.p
	xj, yj, zj, qj := k.particle(bx, by, bz, idx)
	vals := [ParticleWords]float64{xj, yj, zj, qj}
	orig := vals[comp]
	vals[comp] = inj.Flip.Apply(orig, rng)
	if vals[comp] == orig {
		return
	}
	xn, yn, zn, qn := vals[0], vals[1], vals[2], vals[3]

	k.neighbors(bx, by, bz, func(cx, cy, cz int) {
		// Consumer boxes processed before the strike read clean data.
		if !kernels.ProgressConsumed(k.boxIndex(cx, cy, cz), k.g*k.g*k.g, inj.When) {
			return
		}
		for i := 0; i < p; i++ {
			if cx == bx && cy == by && cz == bz && i == idx {
				continue
			}
			xi, yi, zi, _ := k.particle(cx, cy, cz, i)
			old := interaction(xi, yi, zi, xj, yj, zj, qj)
			new_ := interaction(xi, yi, zi, xn, yn, zn, qn)
			r.adjust(cx, cy, cz, i, new_-old)
		}
	})

	// The corrupted particle's own potential is also recomputed from its
	// corrupted position if its box runs after the strike.
	if kernels.ProgressConsumed(k.boxIndex(bx, by, bz), k.g*k.g*k.g, inj.When) && comp < 3 {
		var v float64
		k.neighbors(bx, by, bz, func(nx2, ny2, nz2 int) {
			for j := 0; j < p; j++ {
				if nx2 == bx && ny2 == by && nz2 == bz && j == idx {
					continue
				}
				x2, y2, z2, q2 := k.particle(nx2, ny2, nz2, j)
				v += interaction(xn, yn, zn, x2, y2, z2, q2)
			}
		})
		r.set(bx, by, bz, idx, v)
	}
}

// injectSharedTile corrupts a neighbour-box copy staged in one block's
// local memory: only that single consumer box computes with poisoned data.
func (k *Kernel) injectSharedTile(r *run, inj arch.Injection, rng *xrand.RNG) {
	p := r.p
	g := k.g
	cx, cy, cz := rng.Intn(g), rng.Intn(g), rng.Intn(g)
	r.sc.nbs = k.appendNeighbors(r.sc.nbs, cx, cy, cz)
	nb := r.sc.nbs[rng.Intn(len(r.sc.nbs))]

	w0 := alignedStart(rng, p*ParticleWords, inj.Words)
	for w := 0; w < inj.Words && w0+w < p*ParticleWords; w++ {
		word := w0 + w
		j := word / ParticleWords
		comp := word % ParticleWords
		if nb.x == cx && nb.y == cy && nb.z == cz {
			// Home-box copy corrupted; fall through to same math.
		}
		xj, yj, zj, qj := k.particle(nb.x, nb.y, nb.z, j)
		vals := [ParticleWords]float64{xj, yj, zj, qj}
		orig := vals[comp]
		vals[comp] = inj.Flip.Apply(orig, rng)
		if vals[comp] == orig {
			continue
		}
		for i := 0; i < p; i++ {
			if nb.x == cx && nb.y == cy && nb.z == cz && i == j {
				continue
			}
			xi, yi, zi, _ := k.particle(cx, cy, cz, i)
			old := interaction(xi, yi, zi, xj, yj, zj, qj)
			new_ := interaction(xi, yi, zi, vals[0], vals[1], vals[2], vals[3])
			r.adjust(cx, cy, cz, i, new_-old)
		}
	}
}

// injectTaskSet mis-executes whole boxes: a corrupted scheduler entry
// either never launches a box (zero potentials) or launches it against a
// displaced neighbourhood.
func (k *Kernel) injectTaskSet(r *run, inj arch.Injection, rng *xrand.RNG) {
	p := r.p
	g := k.g
	for t := 0; t < inj.Tasks; t++ {
		bx, by, bz := rng.Intn(g), rng.Intn(g), rng.Intn(g)
		if rng.Bool(0.5) {
			for i := 0; i < p; i++ {
				r.set(bx, by, bz, i, 0)
			}
			continue
		}
		// Displaced neighbourhood: the box computes as if it sat one box
		// over in x, so every particle sees a shifted particle set.
		sx := (bx + 1) % g
		for i := 0; i < p; i++ {
			xi, yi, zi, _ := k.particle(bx, by, bz, i)
			var v float64
			k.neighbors(sx, by, bz, func(nx, ny, nz int) {
				for j := 0; j < p; j++ {
					if nx == bx && ny == by && nz == bz && j == i {
						continue
					}
					xj, yj, zj, qj := k.particle(nx, ny, nz, j)
					v += interaction(xi, yi, zi, xj, yj, zj, qj)
				}
			})
			r.set(bx, by, bz, i, v)
		}
	}
}

// alignedStart picks a line-aligned start index within [0, n).
func alignedStart(rng *xrand.RNG, n, words int) int {
	if words <= 0 {
		words = 1
	}
	slots := n / words
	if slots < 1 {
		return 0
	}
	return rng.Intn(slots) * words
}
