package lavamd

import (
	"math"
	"testing"

	"radcrit/internal/arch"
	"radcrit/internal/fault"
	"radcrit/internal/floatbits"
	"radcrit/internal/k40"
	"radcrit/internal/metrics"
	"radcrit/internal/phi"
	"radcrit/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1) did not panic")
		}
	}()
	New(1)
}

func TestParticlesPerBoxByDevice(t *testing.T) {
	k := New(4)
	if k.ParticlesPerBox(k40.New()) != 192 {
		t.Fatal("K40 should get 192 particles per box (Table II)")
	}
	if k.ParticlesPerBox(phi.New()) != 100 {
		t.Fatal("Phi should get 100 particles per box (Table II)")
	}
}

func TestParticleDeterministic(t *testing.T) {
	k := New(4)
	x1, y1, z1, q1 := k.particle(1, 2, 3, 7)
	x2, y2, z2, q2 := k.particle(1, 2, 3, 7)
	if x1 != x2 || y1 != y2 || z1 != z2 || q1 != q2 {
		t.Fatal("particle state not deterministic")
	}
	// Positions are inside the owning box.
	if x1 < 1 || x1 >= 2 || y1 < 2 || y1 >= 3 || z1 < 3 || z1 >= 4 {
		t.Fatalf("particle escaped its box: %v %v %v", x1, y1, z1)
	}
	if q1 < 0.5 || q1 >= 1.5 {
		t.Fatalf("charge out of range: %v", q1)
	}
}

func TestGoldenPotentialPositiveAndDeterministic(t *testing.T) {
	k := New(3)
	dev := phi.New()
	v1 := k.GoldenPotential(dev, 1, 1, 1, 5)
	v2 := k.GoldenPotential(dev, 1, 1, 1, 5)
	if v1 != v2 {
		t.Fatal("golden potential not deterministic")
	}
	if v1 <= 0 {
		t.Fatalf("potential should be positive: %v", v1)
	}
}

// Brute-force recomputation with one corrupted particle must agree with
// the delta path used by propagateParticleCorruption.
func TestDeltaMatchesBruteForce(t *testing.T) {
	k := New(3)
	dev := phi.New()
	p := k.ParticlesPerBox(dev)

	// Corrupt particle (1,1,1,3)'s charge.
	bx, by, bz, idx := 1, 1, 1, 3
	xj, yj, zj, qj := k.particle(bx, by, bz, idx)
	qNew := qj * 2

	// Consumer: particle (0,1,1,8).
	cx, cy, cz, ci := 0, 1, 1, 8
	xi, yi, zi, _ := k.particle(cx, cy, cz, ci)

	// Brute force: full recompute with substituted charge.
	var brute float64
	k.neighbors(cx, cy, cz, func(nx, ny, nz int) {
		for j := 0; j < p; j++ {
			if nx == cx && ny == cy && nz == cz && j == ci {
				continue
			}
			x2, y2, z2, q2 := k.particle(nx, ny, nz, j)
			if nx == bx && ny == by && nz == bz && j == idx {
				q2 = qNew
			}
			brute += interaction(xi, yi, zi, x2, y2, z2, q2)
		}
	})

	// Delta: golden + (new - old) term.
	golden := k.GoldenPotential(dev, cx, cy, cz, ci)
	delta := interaction(xi, yi, zi, xj, yj, zj, qNew) - interaction(xi, yi, zi, xj, yj, zj, qj)
	if math.Abs((golden+delta)-brute) > 1e-9*math.Abs(brute) {
		t.Fatalf("delta %v vs brute %v", golden+delta, brute)
	}
}

func mkInj(scope arch.Scope) arch.Injection {
	return arch.Injection{
		Scope: scope,
		Words: 8,
		Lines: 1,
		Tasks: 1,
		Flip:  fault.FlipSpec{Field: floatbits.Exponent, Bits: 1},
	}
}

func TestOutputWordSingle(t *testing.T) {
	k := New(3)
	rep := k.RunInjected(phi.New(), mkInj(arch.ScopeOutputWord), xrand.New(1))
	if rep.Count() != 1 {
		t.Fatalf("count = %d", rep.Count())
	}
	if rep.Locality() != metrics.Single {
		t.Fatalf("locality = %v", rep.Locality())
	}
}

func TestSFUOperandAmplification(t *testing.T) {
	// Exponent flips on the r^2 operand of exp() must produce at least
	// some enormous relative errors (the paper's LavaMD signature).
	k := New(3)
	in := mkInj(arch.ScopeInputWord)
	sawHuge := false
	for seed := uint64(0); seed < 40; seed++ {
		rep := k.RunInjected(k40.New(), in, xrand.New(seed))
		if rep.Count() > 0 && rep.MaxRelErrPct() > 1000 {
			sawHuge = true
			break
		}
	}
	if !sawHuge {
		t.Fatal("transcendental operand corruption never amplified past 1000%")
	}
}

func TestVectorLanesWithinBox(t *testing.T) {
	k := New(3)
	rep := k.RunInjected(phi.New(), mkInj(arch.ScopeVectorLanes), xrand.New(2))
	if rep.Count() == 0 || rep.Count() > 8 {
		t.Fatalf("count = %d", rep.Count())
	}
	// All mismatches share the same box (y, z).
	c0 := rep.Mismatches[0].Coord
	for _, m := range rep.Mismatches {
		if m.Coord.Y != c0.Y || m.Coord.Z != c0.Z {
			t.Fatal("vector lanes crossed boxes")
		}
	}
}

func TestCacheLineSpreadsAcrossBoxes(t *testing.T) {
	k := New(4)
	in := mkInj(arch.ScopeCacheLine)
	in.Words = 16 // 4 particles
	in.When = 0
	spread := false
	for seed := uint64(0); seed < 20 && !spread; seed++ {
		rep := k.RunInjected(phi.New(), in, xrand.New(seed))
		if rep.Count() > 100 {
			loc := rep.Locality()
			if loc == metrics.Cubic || loc == metrics.Square {
				spread = true
			}
		}
	}
	if !spread {
		t.Fatal("cached particle corruption never spread across boxes (cubic/square)")
	}
}

func TestSharedTileSingleConsumer(t *testing.T) {
	k := New(3)
	in := mkInj(arch.ScopeSharedTile)
	rep := k.RunInjected(k40.New(), in, xrand.New(3))
	if rep.Count() == 0 {
		t.Skip("masked run")
	}
	// One consumer box: all mismatches share y and z.
	c0 := rep.Mismatches[0].Coord
	for _, m := range rep.Mismatches {
		if m.Coord.Y != c0.Y || m.Coord.Z != c0.Z {
			t.Fatal("shared-tile corruption escaped the consuming box")
		}
	}
}

func TestTaskSetSkippedBox(t *testing.T) {
	k := New(3)
	in := mkInj(arch.ScopeTaskSet)
	p := k.ParticlesPerBox(k40.New())
	found := false
	for seed := uint64(0); seed < 10 && !found; seed++ {
		rep := k.RunInjected(k40.New(), in, xrand.New(seed))
		if rep.Count() != p {
			continue
		}
		allZero := true
		for _, m := range rep.Mismatches {
			if m.Read != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			// Skipped box: all potentials zero, 100% relative error.
			for _, m := range rep.Mismatches {
				if m.RelErrPct < 99 {
					t.Fatalf("zeroed potential with small relative error: %+v", m)
				}
			}
			found = true
		}
	}
	if !found {
		t.Fatal("never saw a fully skipped box")
	}
}

func TestWhenLateMostlyMasked(t *testing.T) {
	k := New(3)
	in := mkInj(arch.ScopeCacheLine)
	in.When = 0.999999
	masked := 0
	for seed := uint64(0); seed < 20; seed++ {
		if k.RunInjected(phi.New(), in, xrand.New(seed)).Count() == 0 {
			masked++
		}
	}
	if masked < 15 {
		t.Fatalf("late strikes should mostly be masked: %d/20", masked)
	}
}

func TestProfileLavaMDDeviceDifferences(t *testing.T) {
	k := New(13)
	pk := k.Profile(k40.New())
	pp := k.Profile(phi.New())
	if pk.SFUShare == 0 {
		t.Fatal("K40 LavaMD must exercise the SFU")
	}
	if pp.SFUShare != 0 {
		t.Fatal("Phi has no SFU")
	}
	if pk.Threads != 13*13*13*192 {
		t.Fatalf("K40 threads = %d", pk.Threads)
	}
	if pp.Threads != 13*13*13*100 {
		t.Fatalf("Phi threads = %d", pp.Threads)
	}
	if pk.LocalMemPerBlockKB < 10 || pk.LocalMemPerBlockKB > 16 {
		t.Fatalf("K40 local memory per block = %v, paper says ~14KB", pk.LocalMemPerBlockKB)
	}
}

func TestControlShareDecreasesWithGridSize(t *testing.T) {
	// Border-box load imbalance shrinks with grid size.
	dev := phi.New()
	small := New(13).Profile(dev).ControlShare
	large := New(23).Profile(dev).ControlShare
	if large >= small {
		t.Fatalf("control share should shrink: %v -> %v", small, large)
	}
}

func TestMismatchCoordsInBounds(t *testing.T) {
	k := New(3)
	dims := k.outputDims(phi.New())
	for seed := uint64(0); seed < 30; seed++ {
		rng := xrand.New(seed)
		in := mkInj(arch.Scope(rng.Intn(7)))
		rep := k.RunInjected(phi.New(), in, rng)
		for _, m := range rep.Mismatches {
			if m.Coord.X < 0 || m.Coord.X >= dims.X ||
				m.Coord.Y < 0 || m.Coord.Y >= dims.Y ||
				m.Coord.Z < 0 || m.Coord.Z >= dims.Z {
				t.Fatalf("out of bounds: %+v vs %v", m.Coord, dims)
			}
		}
	}
}
