package lavamd

// Property and fuzz suites pinning the golden-sum delta evaluator
// bit-identical to the frozen naive path (naive_test.go): same mismatch
// values to the last bit, same emission order, across every scope, grid
// size, and particles-per-box count.

import (
	"math"
	"testing"

	"radcrit/internal/arch"
	"radcrit/internal/fault"
	"radcrit/internal/floatbits"
	"radcrit/internal/kernels"
	"radcrit/internal/metrics"
	"radcrit/internal/xrand"
)

var deltaScopes = []arch.Scope{
	arch.ScopeAccumTerm, arch.ScopeInputWord, arch.ScopeOutputWord,
	arch.ScopeVectorLanes, arch.ScopeCacheLine, arch.ScopeSharedTile,
	arch.ScopeTaskSet,
}

var deltaFields = []floatbits.Field{
	floatbits.AnyField, floatbits.Mantissa, floatbits.Exponent, floatbits.Sign,
}

// randomInjection derives an injection for scope from rng, exercising the
// word/line/task spreads of every scope path.
func randomInjection(scope arch.Scope, rng *xrand.RNG) arch.Injection {
	return arch.Injection{
		Scope: scope,
		When:  rng.Float64(),
		Words: 1 + rng.Intn(8),
		Lines: 1 + rng.Intn(3),
		Tasks: 1 + rng.Intn(3),
		Flip: fault.FlipSpec{
			Field: deltaFields[rng.Intn(len(deltaFields))],
			Bits:  1 + rng.Intn(2),
		},
	}
}

// reportsBitIdentical fails the test unless the two reports carry the same
// mismatches, in the same order, with bit-equal floats.
func reportsBitIdentical(t *testing.T, got, want *metrics.Report) {
	t.Helper()
	if got.Dims != want.Dims || got.TotalElements != want.TotalElements {
		t.Fatalf("shape mismatch: got %v/%d want %v/%d",
			got.Dims, got.TotalElements, want.Dims, want.TotalElements)
	}
	if len(got.Mismatches) != len(want.Mismatches) {
		t.Fatalf("mismatch count: got %d want %d", len(got.Mismatches), len(want.Mismatches))
	}
	for i := range got.Mismatches {
		gm, wm := got.Mismatches[i], want.Mismatches[i]
		if gm.Coord != wm.Coord {
			t.Fatalf("mismatch %d: coord %v != %v", i, gm.Coord, wm.Coord)
		}
		if math.Float64bits(gm.Read) != math.Float64bits(wm.Read) ||
			math.Float64bits(gm.Expected) != math.Float64bits(wm.Expected) ||
			math.Float64bits(gm.RelErrPct) != math.Float64bits(wm.RelErrPct) {
			t.Fatalf("mismatch %d at %v: got (%x,%x,%x) want (%x,%x,%x)", i, gm.Coord,
				math.Float64bits(gm.Read), math.Float64bits(gm.Expected), math.Float64bits(gm.RelErrPct),
				math.Float64bits(wm.Read), math.Float64bits(wm.Expected), math.Float64bits(wm.RelErrPct))
		}
	}
}

// checkDeltaVsNaive replays one (g, p, scope, seed) case through both
// paths from identical RNG states and compares bitwise.
func checkDeltaVsNaive(t *testing.T, g, p int, scope arch.Scope, seed uint64) {
	t.Helper()
	k := New(g)
	inj := randomInjection(scope, xrand.New(seed^0xD5))
	fast := k.RunInjectedPooled(k.handleFor(p), inj, xrand.New(seed), nil)
	naive := k.naiveRunInjected(p, inj, xrand.New(seed))
	reportsBitIdentical(t, fast, naive)
}

// TestLavaMDDeltaMatchesNaiveBitwise sweeps grid sizes, particle counts,
// scopes and seeds: the table-driven delta evaluator must reproduce the
// naive path's reports bit-for-bit with identical emission order.
func TestLavaMDDeltaMatchesNaiveBitwise(t *testing.T) {
	cases := []struct{ g, p int }{{2, 24}, {3, 16}, {4, 10}, {3, 100}}
	for _, c := range cases {
		for _, scope := range deltaScopes {
			for seed := uint64(1); seed <= 4; seed++ {
				checkDeltaVsNaive(t, c.g, c.p, scope, seed*0x9E37+uint64(scope))
			}
		}
	}
}

// TestLavaMDDeltaMatchesNaiveDeviceCounts runs a slimmer sweep at the two
// real per-device particle counts (K40's 192, Phi's 100).
func TestLavaMDDeltaMatchesNaiveDeviceCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("naive reference is slow at device-scale particle counts")
	}
	for _, p := range []int{100, 192} {
		for _, scope := range deltaScopes {
			checkDeltaVsNaive(t, 3, p, scope, 0xBEEF+uint64(p)+uint64(scope))
		}
	}
}

// FuzzLavaMDDeltaVsNaive lets the fuzzer drive (grid, particles, scope,
// seed) combinations through the same bitwise comparison.
func FuzzLavaMDDeltaVsNaive(f *testing.F) {
	f.Add(uint64(42), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(7), uint8(1), uint8(2), uint8(4))
	f.Add(uint64(1234), uint8(2), uint8(1), uint8(6))
	f.Fuzz(func(t *testing.T, seed uint64, gSel, pSel, scopeSel uint8) {
		grids := []int{2, 3, 4}
		parts := []int{8, 16, 32}
		g := grids[int(gSel)%len(grids)]
		p := parts[int(pSel)%len(parts)]
		scope := deltaScopes[int(scopeSel)%len(deltaScopes)]
		checkDeltaVsNaive(t, g, p, scope, seed)
	})
}

// TestGoldenSumTableRebuildMatchesIncremental pins the lazy per-box fills:
// a table populated incrementally by a workload of strikes must hold
// exactly the values a from-scratch rebuild computes.
func TestGoldenSumTableRebuildMatchesIncremental(t *testing.T) {
	k := New(3)
	const p = 20
	h := k.handleFor(p)

	// Populate tables incrementally through a mixed strike workload.
	rng := xrand.New(99)
	for i := 0; i < 40; i++ {
		scope := deltaScopes[i%len(deltaScopes)]
		inj := randomInjection(scope, rng.Split(uint64(i)))
		k.RunInjectedPooled(h, inj, rng.Split(uint64(i)+1000), nil)
	}

	// Rebuild every box column on a fresh kernel (fresh tables) and
	// compare bitwise against whatever the workload filled in.
	k2 := New(3)
	fresh := k2.handleFor(p).tab
	total := k.g * k.g * k.g
	checked := 0
	for bi := 0; bi < total; bi++ {
		if st := h.tab.boxes[bi].st.Load(); st != nil {
			ref := fresh.state(bi)
			for idx := 0; idx < p; idx++ {
				if math.Float64bits(st.x[idx]) != math.Float64bits(ref.x[idx]) ||
					math.Float64bits(st.y[idx]) != math.Float64bits(ref.y[idx]) ||
					math.Float64bits(st.z[idx]) != math.Float64bits(ref.z[idx]) ||
					math.Float64bits(st.q[idx]) != math.Float64bits(ref.q[idx]) {
					t.Fatalf("box %d particle %d: incremental state differs from rebuild", bi, idx)
				}
			}
		}
		pot := h.tab.boxes[bi].pot.Load()
		if pot == nil {
			continue
		}
		checked++
		for idx := 0; idx < p; idx++ {
			want := fresh.potential(bi, idx)
			if math.Float64bits((*pot)[idx]) != math.Float64bits(want) {
				t.Fatalf("box %d particle %d: incremental pot %v != rebuild %v",
					bi, idx, (*pot)[idx], want)
			}
		}
	}
	if checked == 0 {
		t.Fatal("workload never materialised a golden-sum column; test is vacuous")
	}
}

// TestLavaMDBatchMatchesSingle pins the kernel's BatchRunner seam: a batch
// run must fill, strike for strike, the exact reports that standalone
// pooled calls produce from the same RNG states.
func TestLavaMDBatchMatchesSingle(t *testing.T) {
	k := New(3)
	const p = 24
	h := k.handleFor(p)

	const n = 32
	seeds := make([]uint64, n)
	batch := make([]kernels.BatchStrike, n)
	singles := make([]*metrics.Report, n)
	for i := 0; i < n; i++ {
		seeds[i] = uint64(i)*0x51AB + 3
		scope := deltaScopes[i%len(deltaScopes)]
		batch[i] = kernels.BatchStrike{
			Inj: randomInjection(scope, xrand.New(seeds[i]^0xD5)),
			RNG: xrand.New(seeds[i]),
		}
		singles[i] = k.RunInjectedPooled(h, batch[i].Inj, xrand.New(seeds[i]), nil)
	}

	k.RunInjectedBatch(h, batch, nil)
	for i := range batch {
		reportsBitIdentical(t, batch[i].Report, singles[i])
	}
}
