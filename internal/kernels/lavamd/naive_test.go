package lavamd

// This file freezes the pre-golden-sum-table injected path as a naive
// reference implementation: plain maps, fresh allocations, golden
// potentials recomputed with the original callback walk. It consumes the
// RNG in exactly the same order as the production path and emits
// mismatches in the same ascending-particle-id order, so the delta
// evaluator can be pinned bit-identical against it
// (TestLavaMDDeltaMatchesNaiveBitwise, FuzzLavaMDDeltaVsNaive).

import (
	"math"
	"sort"

	"radcrit/internal/arch"
	"radcrit/internal/grid"
	"radcrit/internal/kernels"
	"radcrit/internal/metrics"
	"radcrit/internal/xrand"
)

// naiveRun carries one naive injected execution: faulty potentials and a
// per-run golden-potential memo, both plain maps keyed by
// boxIndex<<12|idx.
type naiveRun struct {
	k      *Kernel
	p      int
	faulty map[int]float64
	golden map[int]float64
}

// naiveGoldenPotential is the original on-demand golden computation: a
// flat left-fold over the cut-off neighbourhood in neighbors() order.
func (r *naiveRun) naiveGoldenPotential(bx, by, bz, idx int) float64 {
	k := r.k
	key := (k.boxIndex(bx, by, bz) << 12) | idx
	if v, ok := r.golden[key]; ok {
		return v
	}
	xi, yi, zi, _ := k.particle(bx, by, bz, idx)
	var v float64
	k.neighbors(bx, by, bz, func(nx, ny, nz int) {
		for j := 0; j < r.p; j++ {
			if nx == bx && ny == by && nz == bz && j == idx {
				continue
			}
			xj, yj, zj, qj := k.particle(nx, ny, nz, j)
			v += interaction(xi, yi, zi, xj, yj, zj, qj)
		}
	})
	r.golden[key] = v
	return v
}

func (r *naiveRun) adjust(bx, by, bz, idx int, delta float64) {
	if delta == 0 {
		return
	}
	key := (r.k.boxIndex(bx, by, bz) << 12) | idx
	if _, ok := r.faulty[key]; !ok {
		r.faulty[key] = r.naiveGoldenPotential(bx, by, bz, idx)
	}
	r.faulty[key] += delta
}

func (r *naiveRun) set(bx, by, bz, idx int, v float64) {
	key := (r.k.boxIndex(bx, by, bz) << 12) | idx
	r.faulty[key] = v
}

// naiveRunInjected replays inj through the frozen pre-table logic and
// returns a freshly allocated report.
func (k *Kernel) naiveRunInjected(p int, inj arch.Injection, rng *xrand.RNG) *metrics.Report {
	r := &naiveRun{k: k, p: p,
		faulty: make(map[int]float64), golden: make(map[int]float64)}
	g := k.g
	randBox := func() (int, int, int) { return rng.Intn(g), rng.Intn(g), rng.Intn(g) }

	switch inj.Scope {
	case arch.ScopeAccumTerm, arch.ScopeInputWord:
		bx, by, bz := randBox()
		idx := rng.Intn(p)
		t := r.naiveRandomTerm(bx, by, bz, idx, rng)
		shift := 4 + rng.Intn(28)
		scale := math.Ldexp(1, shift)
		if rng.Bool(0.3) {
			scale = 1 / scale
		}
		r.adjust(bx, by, bz, idx, t*scale-t)

	case arch.ScopeOutputWord:
		bx, by, bz := randBox()
		idx := rng.Intn(p)
		gv := r.naiveGoldenPotential(bx, by, bz, idx)
		r.set(bx, by, bz, idx, inj.Flip.Apply(gv, rng))

	case arch.ScopeVectorLanes:
		bx, by, bz := randBox()
		idx0 := rng.Intn(p)
		for w := 0; w < inj.Words && idx0+w < p; w++ {
			gv := r.naiveGoldenPotential(bx, by, bz, idx0+w)
			r.set(bx, by, bz, idx0+w, inj.Flip.Apply(gv, rng))
		}

	case arch.ScopeCacheLine:
		r.naiveInjectCacheLines(inj, rng)

	case arch.ScopeSharedTile:
		r.naiveInjectSharedTile(inj, rng)

	case arch.ScopeTaskSet:
		r.naiveInjectTaskSet(inj, rng)
	}

	return r.naiveFinish()
}

func (r *naiveRun) naiveRandomTerm(bx, by, bz, idx int, rng *xrand.RNG) float64 {
	k := r.k
	xi, yi, zi, _ := k.particle(bx, by, bz, idx)
	nbs := k.appendNeighbors(nil, bx, by, bz)
	for {
		b := nbs[rng.Intn(len(nbs))]
		j := rng.Intn(r.p)
		if b.x == bx && b.y == by && b.z == bz && j == idx {
			continue
		}
		xj, yj, zj, qj := k.particle(b.x, b.y, b.z, j)
		return interaction(xi, yi, zi, xj, yj, zj, qj)
	}
}

func (r *naiveRun) naiveInjectCacheLines(inj arch.Injection, rng *xrand.RNG) {
	p, g := r.p, r.k.g
	totalWords := g * g * g * p * ParticleWords
	for line := 0; line < inj.Lines; line++ {
		w0 := alignedStart(rng, totalWords, inj.Words)
		var cs []corruptedParticle
		for w := 0; w < inj.Words && w0+w < totalWords; w++ {
			word := w0 + w
			gidx := word / ParticleWords
			comp := word % ParticleWords
			idx := gidx % p
			box := gidx / p
			bx := box % g
			by := (box / g) % g
			bz := box / (g * g)
			cs = append(cs, corruptedParticle{bx, by, bz, idx, comp})
		}
		for _, c := range cs {
			r.naivePropagate(inj, rng, c.bx, c.by, c.bz, c.idx, c.comp)
		}
	}
}

func (r *naiveRun) naivePropagate(inj arch.Injection, rng *xrand.RNG, bx, by, bz, idx, comp int) {
	k, p := r.k, r.p
	xj, yj, zj, qj := k.particle(bx, by, bz, idx)
	vals := [ParticleWords]float64{xj, yj, zj, qj}
	orig := vals[comp]
	vals[comp] = inj.Flip.Apply(orig, rng)
	if vals[comp] == orig {
		return
	}
	xn, yn, zn, qn := vals[0], vals[1], vals[2], vals[3]

	k.neighbors(bx, by, bz, func(cx, cy, cz int) {
		if !kernels.ProgressConsumed(k.boxIndex(cx, cy, cz), k.g*k.g*k.g, inj.When) {
			return
		}
		for i := 0; i < p; i++ {
			if cx == bx && cy == by && cz == bz && i == idx {
				continue
			}
			xi, yi, zi, _ := k.particle(cx, cy, cz, i)
			old := interaction(xi, yi, zi, xj, yj, zj, qj)
			new_ := interaction(xi, yi, zi, xn, yn, zn, qn)
			r.adjust(cx, cy, cz, i, new_-old)
		}
	})

	if kernels.ProgressConsumed(k.boxIndex(bx, by, bz), k.g*k.g*k.g, inj.When) && comp < 3 {
		var v float64
		k.neighbors(bx, by, bz, func(nx2, ny2, nz2 int) {
			for j := 0; j < p; j++ {
				if nx2 == bx && ny2 == by && nz2 == bz && j == idx {
					continue
				}
				x2, y2, z2, q2 := k.particle(nx2, ny2, nz2, j)
				v += interaction(xn, yn, zn, x2, y2, z2, q2)
			}
		})
		r.set(bx, by, bz, idx, v)
	}
}

func (r *naiveRun) naiveInjectSharedTile(inj arch.Injection, rng *xrand.RNG) {
	k, p, g := r.k, r.p, r.k.g
	cx, cy, cz := rng.Intn(g), rng.Intn(g), rng.Intn(g)
	nbs := k.appendNeighbors(nil, cx, cy, cz)
	nb := nbs[rng.Intn(len(nbs))]

	w0 := alignedStart(rng, p*ParticleWords, inj.Words)
	for w := 0; w < inj.Words && w0+w < p*ParticleWords; w++ {
		word := w0 + w
		j := word / ParticleWords
		comp := word % ParticleWords
		xj, yj, zj, qj := k.particle(nb.x, nb.y, nb.z, j)
		vals := [ParticleWords]float64{xj, yj, zj, qj}
		orig := vals[comp]
		vals[comp] = inj.Flip.Apply(orig, rng)
		if vals[comp] == orig {
			continue
		}
		for i := 0; i < p; i++ {
			if nb.x == cx && nb.y == cy && nb.z == cz && i == j {
				continue
			}
			xi, yi, zi, _ := k.particle(cx, cy, cz, i)
			old := interaction(xi, yi, zi, xj, yj, zj, qj)
			new_ := interaction(xi, yi, zi, vals[0], vals[1], vals[2], vals[3])
			r.adjust(cx, cy, cz, i, new_-old)
		}
	}
}

func (r *naiveRun) naiveInjectTaskSet(inj arch.Injection, rng *xrand.RNG) {
	k, p, g := r.k, r.p, r.k.g
	for t := 0; t < inj.Tasks; t++ {
		bx, by, bz := rng.Intn(g), rng.Intn(g), rng.Intn(g)
		if rng.Bool(0.5) {
			for i := 0; i < p; i++ {
				r.set(bx, by, bz, i, 0)
			}
			continue
		}
		sx := (bx + 1) % g
		for i := 0; i < p; i++ {
			xi, yi, zi, _ := k.particle(bx, by, bz, i)
			var v float64
			k.neighbors(sx, by, bz, func(nx, ny, nz int) {
				for j := 0; j < p; j++ {
					if nx == bx && ny == by && nz == bz && j == i {
						continue
					}
					xj, yj, zj, qj := k.particle(nx, ny, nz, j)
					v += interaction(xi, yi, zi, xj, yj, zj, qj)
				}
			})
			r.set(bx, by, bz, i, v)
		}
	}
}

func (r *naiveRun) naiveFinish() *metrics.Report {
	k := r.k
	dims := k.outputDimsP(r.p)
	rep := &metrics.Report{Dims: dims, TotalElements: dims.Len()}
	keys := make([]int, 0, len(r.faulty))
	for key := range r.faulty {
		keys = append(keys, key)
	}
	sort.Ints(keys)
	for _, key := range keys {
		v := r.faulty[key]
		idx := key & 0xFFF
		box := key >> 12
		bx := box % k.g
		by := (box / k.g) % k.g
		bz := box / (k.g * k.g)
		g := r.naiveGoldenPotential(bx, by, bz, idx)
		if v == g {
			continue
		}
		rep.Mismatches = append(rep.Mismatches, metrics.Mismatch{
			Coord:     grid.Coord{X: bx*r.p + idx, Y: by, Z: bz},
			Read:      v,
			Expected:  g,
			RelErrPct: metrics.RelativeErrorPct(v, g),
		})
	}
	return rep
}
