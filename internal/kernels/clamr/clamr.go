// Package clamr implements a from-scratch substitute for CLAMR, the LANL
// fluid-dynamics mini-app used in the paper: a shallow-water solver
// (conservation of mass, x momentum and y momentum; flat bottom; no
// vertical flow) running the standard circular dam-break problem with a
// cell-based adaptive mesh refinement (AMR) layer.
//
// The real CLAMR is a proprietary LANL workload. The substitution keeps
// every property the paper's analysis relies on:
//
//   - a conservative scheme (Lax-Friedrichs) over (h, hu, hv), so a
//     radiation-corrupted cell violates the mass invariant and the error
//     propagates "as a wave ... increasing the number of incorrect
//     elements as the execution continues" (§V-D, Fig. 9) — emergent from
//     the real solver, not scripted;
//   - a refinement map recomputed from the water-height gradient, driving
//     load imbalance, an irregular access pattern, and the thread-count
//     changes between time steps that stress control resources (Table I:
//     CPU-bound, imbalanced, irregular);
//   - the mass-conservation check of [4]/[19]: total water volume is
//     tracked every step, so a detector can compare it against the
//     golden invariant (the paper reports 82% fault coverage).
package clamr

import (
	"fmt"
	"math"
	"sync"

	"radcrit/internal/arch"
	"radcrit/internal/grid"
	"radcrit/internal/kernels"
	"radcrit/internal/metrics"
	"radcrit/internal/xrand"
)

// Physics and scheme constants.
const (
	Gravity  = 9.8
	DT       = 0.02 // CFL-safe for wave speeds up to ~sqrt(g*10)
	DX       = 1.0
	HInside  = 10.0 // dam water column height
	HOutside = 2.0  // ambient water height
	// RefineThreshold is the |grad h| above which a cell is refined.
	RefineThreshold = 0.05
	// RefineInterval is the step period of refinement-map recomputation.
	RefineInterval = 10
	// TileSide is the scheduler work-unit tile.
	TileSide = 16
	// MassCheckCellFraction is the mass-check threshold expressed as a
	// fraction of one average cell's water volume: the detector fires when
	// total volume drifts by more than 1% of a single cell. This separates
	// real corruption (at least a sizeable fraction of one cell) from the
	// solver's floating-point non-conservation (orders of magnitude
	// smaller), independent of mesh size.
	MassCheckCellFraction = 0.01

	// UMax is the CFL velocity guard: solvers bound |u| to keep the time
	// step stable, so a momentum word corrupted to an absurd magnitude is
	// clamped to UMax*h instead of blowing up the scheme. The clamp keeps
	// such runs mass-conserving — they corrupt the wave field (a critical
	// SDC) without tripping the mass check, which is exactly the detector
	// escape that holds the paper's coverage at ~82% instead of 100%.
	UMax = 40.0
)

// state is the conserved-variable triple on the uniform fine mesh.
type state struct {
	h, hu, hv []float64
}

func newState(n int) *state {
	return &state{h: make([]float64, n), hu: make([]float64, n), hv: make([]float64, n)}
}

func (s *state) copyFrom(o *state) {
	copy(s.h, o.h)
	copy(s.hu, o.hu)
	copy(s.hv, o.hv)
}

// Kernel is a CLAMR instance: side x side cells, steps time steps.
type Kernel struct {
	side  int
	steps int
	seed  uint64

	snapEvery  int
	snaps      []*state
	finalH     []float64
	m0         float64 // golden total water volume
	refineFrac float64 // mean refined-cell fraction over the golden run

	handleOnce sync.Once
	handle     *goldenTimeline
}

// goldenTimeline is CLAMR's golden-state handle: the snapshot timeline
// computed once at construction plus a bounded memo of fully reconstructed
// per-step states, so strikes landing on the same timestep stop re-stepping
// from the nearest snapshot. Memoised states are canonical and read-only;
// irradiated runs copy them into working buffers before corrupting them.
type goldenTimeline struct {
	k      *Kernel
	states kernels.TimelineMemo[*state]
}

// stateAt returns the canonical golden state at step t. The returned state
// is shared and must not be mutated.
func (g *goldenTimeline) stateAt(t int) *state {
	return g.states.At(t, g.k.stateAt)
}

// Golden implements kernels.Kernel. The handle is device-independent:
// CLAMR's golden timeline depends only on the input configuration.
func (k *Kernel) Golden(dev arch.Device) kernels.GoldenState {
	k.handleOnce.Do(func() { k.handle = &goldenTimeline{k: k} })
	return k.handle
}

var _ kernels.Kernel = (*Kernel)(nil)

// Check reports whether (side, steps) is a valid CLAMR configuration
// without running the golden simulation: the non-panicking face of New's
// precondition, used by plan validation.
func Check(side, steps int) error {
	if side < 16 || steps < RefineInterval {
		return fmt.Errorf("clamr: invalid config side=%d steps=%d", side, steps)
	}
	return nil
}

// New returns a CLAMR kernel. The paper's standard problem starts from a
// 512x512 mesh and runs 5,000 timesteps; smaller configurations preserve
// the same wave physics for testing.
func New(side, steps int) *Kernel {
	if err := Check(side, steps); err != nil {
		panic(err.Error())
	}
	k := &Kernel{side: side, steps: steps, seed: 0xC1A + uint64(side), snapEvery: 32}
	k.computeGolden()
	return k
}

// Side returns the mesh edge length.
func (k *Kernel) Side() int { return k.side }

// Steps returns the timestep count.
func (k *Kernel) Steps() int { return k.steps }

// Name implements kernels.Kernel.
func (k *Kernel) Name() string { return "CLAMR" }

// Domain implements kernels.Kernel (Table II).
func (k *Kernel) Domain() string { return "Fluid dynamics" }

// InputLabel implements kernels.Kernel.
func (k *Kernel) InputLabel() string { return fmt.Sprintf("%dx%d", k.side, k.side) }

// Class implements kernels.Kernel (Table I).
func (k *Kernel) Class() kernels.Class {
	return kernels.Class{BoundBy: "CPU", LoadBalance: "Imbalanced", MemoryAccess: "Irregular"}
}

// GoldenMass returns the conserved total water volume of the golden run.
func (k *Kernel) GoldenMass() float64 { return k.m0 }

// MassCheckThresholdRel returns the detector threshold as a relative drift
// of total volume: MassCheckCellFraction of one average cell.
func (k *Kernel) MassCheckThresholdRel() float64 {
	return MassCheckCellFraction / float64(k.side*k.side)
}

// initState builds the circular dam-break initial condition.
func (k *Kernel) initState() *state {
	s := k.side
	st := newState(s * s)
	cx, cy := float64(s)/2, float64(s)/2
	r := float64(s) / 6
	for y := 0; y < s; y++ {
		for x := 0; x < s; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			if dx*dx+dy*dy <= r*r {
				st.h[y*s+x] = HInside
			} else {
				st.h[y*s+x] = HOutside
			}
		}
	}
	return st
}

// mirror reads conserved variables at (x,y) with reflective walls:
// height mirrored, wall-normal momentum negated.
func (k *Kernel) mirror(st *state, x, y int) (h, hu, hv float64) {
	s := k.side
	nx, ny := x, y
	fx, fy := 1.0, 1.0
	if nx < 0 {
		nx, fx = 0, -1
	}
	if nx >= s {
		nx, fx = s-1, -1
	}
	if ny < 0 {
		ny, fy = 0, -1
	}
	if ny >= s {
		ny, fy = s-1, -1
	}
	i := ny*s + nx
	return st.h[i], st.hu[i] * fx, st.hv[i] * fy
}

// fluxes of the shallow-water equations.
func fluxX(h, hu, hv float64) (f0, f1, f2 float64) {
	u := hu / h
	return hu, hu*u + 0.5*Gravity*h*h, hv * u
}

func fluxY(h, hu, hv float64) (g0, g1, g2 float64) {
	v := hv / h
	return hv, hu * v, hv*v + 0.5*Gravity*h*h
}

// step advances src into dst by one Lax-Friedrichs step. frozen, when
// non-nil, marks cells whose update is skipped (mis-scheduled tiles).
func (k *Kernel) step(dst, src *state, frozen []bool) {
	s := k.side
	c := DT / (2 * DX)
	for y := 0; y < s; y++ {
		for x := 0; x < s; x++ {
			i := y*s + x
			if frozen != nil && frozen[i] {
				dst.h[i], dst.hu[i], dst.hv[i] = src.h[i], src.hu[i], src.hv[i]
				continue
			}
			hE, huE, hvE := k.mirror(src, x+1, y)
			hW, huW, hvW := k.mirror(src, x-1, y)
			hN, huN, hvN := k.mirror(src, x, y-1)
			hS, huS, hvS := k.mirror(src, x, y+1)

			fE0, fE1, fE2 := fluxX(hE, huE, hvE)
			fW0, fW1, fW2 := fluxX(hW, huW, hvW)
			gN0, gN1, gN2 := fluxY(hN, huN, hvN)
			gS0, gS1, gS2 := fluxY(hS, huS, hvS)

			dst.h[i] = 0.25*(hE+hW+hN+hS) - c*(fE0-fW0) - c*(gS0-gN0)
			dst.hu[i] = 0.25*(huE+huW+huN+huS) - c*(fE1-fW1) - c*(gS1-gN1)
			dst.hv[i] = 0.25*(hvE+hvW+hvN+hvS) - c*(fE2-fW2) - c*(gS2-gN2)

			sanitizeCell(dst, i)
		}
	}
}

// sanitizeCell keeps the solver marching after radical corruption: real
// hardware would either crash (caught upstream by the outcome model) or
// keep producing finite garbage. Non-finite values are replaced by the
// ambient state and heights are clamped positive, so corruption spreads as
// data rather than as NaN wavefronts.
func sanitizeCell(st *state, i int) {
	if math.IsNaN(st.h[i]) || math.IsInf(st.h[i], 0) {
		st.h[i] = HOutside
	}
	if st.h[i] < 1e-3 {
		st.h[i] = 1e-3
	}
	if st.h[i] > 1e9 {
		st.h[i] = 1e9
	}
	for _, arr := range [][]float64{st.hu, st.hv} {
		if math.IsNaN(arr[i]) || math.IsInf(arr[i], 0) {
			arr[i] = 0
		}
		// CFL velocity guard (see UMax).
		if lim := UMax * st.h[i]; arr[i] > lim {
			arr[i] = lim
		} else if arr[i] < -lim {
			arr[i] = -lim
		}
	}
}

// refineMap marks cells whose height gradient exceeds the threshold: the
// cell-based AMR criterion.
func (k *Kernel) refineMap(st *state) []bool {
	s := k.side
	m := make([]bool, s*s)
	for y := 0; y < s; y++ {
		for x := 0; x < s; x++ {
			hE, _, _ := k.mirror(st, x+1, y)
			hW, _, _ := k.mirror(st, x-1, y)
			hN, _, _ := k.mirror(st, x, y-1)
			hS, _, _ := k.mirror(st, x, y+1)
			gx := (hE - hW) / 2
			gy := (hS - hN) / 2
			m[y*s+x] = math.Sqrt(gx*gx+gy*gy) > RefineThreshold
		}
	}
	return m
}

// computeGolden runs the fault-free simulation, storing snapshots and the
// AMR statistics that feed the occupancy profile.
func (k *Kernel) computeGolden() {
	n := k.side * k.side
	cur := k.initState()
	next := newState(n)
	k.m0 = sum(cur.h)

	snap := newState(n)
	snap.copyFrom(cur)
	k.snaps = append(k.snaps, snap)

	var refinedSum float64
	samples := 0
	for t := 0; t < k.steps; t++ {
		k.step(next, cur, nil)
		cur, next = next, cur
		if (t+1)%k.snapEvery == 0 {
			sn := newState(n)
			sn.copyFrom(cur)
			k.snaps = append(k.snaps, sn)
		}
		if (t+1)%RefineInterval == 0 {
			m := k.refineMap(cur)
			c := 0
			for _, r := range m {
				if r {
					c++
				}
			}
			refinedSum += float64(c) / float64(n)
			samples++
		}
	}
	if samples > 0 {
		k.refineFrac = refinedSum / float64(samples)
	}
	k.finalH = make([]float64, n)
	copy(k.finalH, cur.h)
}

// stateAt reconstructs the golden state at step t.
func (k *Kernel) stateAt(t int) *state {
	si := t / k.snapEvery
	if si >= len(k.snaps) {
		si = len(k.snaps) - 1
	}
	n := k.side * k.side
	cur := newState(n)
	cur.copyFrom(k.snaps[si])
	next := newState(n)
	for step := si * k.snapEvery; step < t; step++ {
		k.step(next, cur, nil)
		cur, next = next, cur
	}
	return cur
}

// GoldenFinal returns the golden water-height output as a grid.
func (k *Kernel) GoldenFinal() *grid.Grid {
	g := grid.New2D(k.side, k.side)
	copy(g.Data(), k.finalH)
	return g
}

// RefinedFraction returns the mean fraction of refined cells during the
// golden run (AMR statistics).
func (k *Kernel) RefinedFraction() float64 { return k.refineFrac }

// Profile implements kernels.Kernel. CLAMR is compute-bound on double
// precision, control-heavy (border tests, AMR re-balancing, one kernel
// launch per timestep) and its thread count changes between steps
// ("#cells or more", Table II).
func (k *Kernel) Profile(dev arch.Device) arch.Profile {
	cells := k.side * k.side
	amrCells := int(float64(cells) * (1 + 3*k.refineFrac)) // refined cells split 2x2
	p := arch.Profile{
		Kernel:           "CLAMR",
		InputLabel:       k.InputLabel(),
		OutputDims:       grid.Dims{X: k.side, Y: k.side, Z: 1},
		Threads:          amrCells,
		Blocks:           (k.side / TileSide) * (k.side / TileSide),
		CacheFootprintKB: 3 * float64(cells) * 8 / 1024,
		ControlShare:     0.35,
		MemoryBound:      false,
		Irregular:        true,
		// CLAMR launches kernels every timestep but also rebalances the
		// mesh between steps: dispatch pressure sits between HotSpot's
		// amortised relaunch and DGEMM's block streaming.
		DispatchFactor:    0.6,
		IterativeLaunches: true,
		RelRuntime:        float64(cells) * float64(k.steps) / (512 * 512 * 5000),
	}
	m := dev.Model()
	if m.SharedMemKBPerCore > 0 {
		p.LocalMemPerBlockKB = 3
	}
	if m.VectorWidthBits > 0 {
		p.VectorShare = 0.45
		p.FPUShare = 0.40
	} else {
		p.FPUShare = 0.70
	}
	return p
}

// Detail is the per-run detector evidence accompanying a mismatch report.
type Detail struct {
	// MaxMassDriftRel is the largest |mass(t)-M0|/M0 observed after the
	// injection: the signal of the mass-conservation check.
	MaxMassDriftRel float64
	// MassCheckFired reports whether the drift exceeded the tolerance.
	MassCheckFired bool
}

// RunInjected implements kernels.Kernel.
func (k *Kernel) RunInjected(dev arch.Device, inj arch.Injection, rng *xrand.RNG) *metrics.Report {
	rep, _ := k.RunInjectedDetailed(dev, inj, rng)
	return rep
}

// RunInjectedOn implements kernels.Kernel.
func (k *Kernel) RunInjectedOn(gs kernels.GoldenState, inj arch.Injection, rng *xrand.RNG) *metrics.Report {
	rep, _ := k.RunInjectedDetailedOn(gs, inj, rng)
	return rep
}

// stateTargetWeights biases which conserved array a storage strike hits:
// h has the longest cache residency (read by every flux computation, the
// refinement criterion, and the mass check), so it absorbs the most
// strikes; the momentum arrays split the rest. Momentum corruption
// conserves mass unless it trips the solver's positivity clamps, which is
// the detector-escape path that keeps the mass check's coverage at the
// paper's ~82% rather than 100%.
var stateTargetWeights = []float64{0.70, 0.15, 0.15}

// RunInjectedDetailed runs one irradiated execution and also returns the
// detector evidence.
func (k *Kernel) RunInjectedDetailed(dev arch.Device, inj arch.Injection, rng *xrand.RNG) (*metrics.Report, Detail) {
	return k.RunInjectedDetailedOn(k.Golden(dev), inj, rng)
}

// RunInjectedDetailedOn is RunInjectedDetailed against a prepared
// golden-state handle: the hot path of campaign engines.
func (k *Kernel) RunInjectedDetailedOn(gs kernels.GoldenState, inj arch.Injection, rng *xrand.RNG) (*metrics.Report, Detail) {
	g := gs.(*goldenTimeline)
	t0 := int(inj.When * float64(k.steps))
	if t0 >= k.steps {
		t0 = k.steps - 1
	}
	n := k.side * k.side
	cur := newState(n)
	cur.copyFrom(g.stateAt(t0))
	next := newState(n)

	var frozen []bool
	frozenUntil := -1

	// Apply the injection to the live state.
	switch inj.Scope {
	case arch.ScopeAccumTerm, arch.ScopeInputWord, arch.ScopeOutputWord:
		k.corruptWords(cur, rng.Intn(n), 1, inj, rng)
	case arch.ScopeVectorLanes:
		k.corruptWords(cur, alignedStart(rng, n, inj.Words), inj.Words, inj, rng)
	case arch.ScopeCacheLine, arch.ScopeSharedTile:
		for line := 0; line < inj.Lines; line++ {
			k.corruptWords(cur, alignedStart(rng, n, inj.Words), inj.Words, inj, rng)
		}
	case arch.ScopeTaskSet:
		// Mis-refinement: tiles wrongly marked coarse are not updated
		// until the next refinement pass.
		frozen = make([]bool, n)
		tilesPerSide := k.side / TileSide
		for t := 0; t < inj.Tasks; t++ {
			tx, ty := rng.Intn(tilesPerSide), rng.Intn(tilesPerSide)
			for y := ty * TileSide; y < (ty+1)*TileSide; y++ {
				for x := tx * TileSide; x < (tx+1)*TileSide; x++ {
					frozen[y*k.side+x] = true
				}
			}
		}
		frozenUntil = t0 + RefineInterval
	}

	// Continue the real simulation, tracking the mass invariant.
	var maxDrift float64
	for t := t0; t < k.steps; t++ {
		fz := frozen
		if t >= frozenUntil {
			fz = nil
		}
		k.step(next, cur, fz)
		cur, next = next, cur
		drift := math.Abs(sum(cur.h)-k.m0) / k.m0
		if drift > maxDrift {
			maxDrift = drift
		}
	}

	// Compare against the golden output.
	rep := &metrics.Report{
		Dims:          grid.Dims{X: k.side, Y: k.side, Z: 1},
		TotalElements: n,
	}
	for i, v := range cur.h {
		g := k.finalH[i]
		if v == g {
			continue
		}
		rep.Mismatches = append(rep.Mismatches, metrics.Mismatch{
			Coord:     grid.Coord{X: i % k.side, Y: i / k.side},
			Read:      v,
			Expected:  g,
			RelErrPct: metrics.RelativeErrorPct(v, g),
		})
	}
	det := Detail{
		MaxMassDriftRel: maxDrift,
		MassCheckFired:  maxDrift > k.MassCheckThresholdRel(),
	}
	return rep, det
}

// RunDense materialises golden and faulty outputs for examples/Fig. 9.
func (k *Kernel) RunDense(dev arch.Device, inj arch.Injection, rng *xrand.RNG) (golden, faulty *grid.Grid) {
	golden = k.GoldenFinal()
	faulty = golden.Clone()
	rep := k.RunInjected(dev, inj, rng)
	for _, m := range rep.Mismatches {
		faulty.Set(m.Coord, m.Read)
	}
	return golden, faulty
}

// corruptWords flips words..words+count of a conserved array chosen by
// residency weight, starting at cell index start.
func (k *Kernel) corruptWords(st *state, start, count int, inj arch.Injection, rng *xrand.RNG) {
	arrs := [][]float64{st.h, st.hu, st.hv}
	arr := arrs[rng.WeightedChoice(stateTargetWeights)]
	for w := 0; w < count && start+w < len(arr); w++ {
		arr[start+w] = inj.Flip.Apply(arr[start+w], rng)
	}
	// Immediate sanitation mirrors what the next step would do anyway but
	// keeps the mass accounting finite.
	for w := 0; w < count && start+w < len(arr); w++ {
		sanitizeCell(st, start+w)
	}
}

func alignedStart(rng *xrand.RNG, n, words int) int {
	if words <= 0 {
		words = 1
	}
	slots := n / words
	if slots < 1 {
		return 0
	}
	return rng.Intn(slots) * words
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
