// Package clamr implements a from-scratch substitute for CLAMR, the LANL
// fluid-dynamics mini-app used in the paper: a shallow-water solver
// (conservation of mass, x momentum and y momentum; flat bottom; no
// vertical flow) running the standard circular dam-break problem with a
// cell-based adaptive mesh refinement (AMR) layer.
//
// The real CLAMR is a proprietary LANL workload. The substitution keeps
// every property the paper's analysis relies on:
//
//   - a conservative scheme (Lax-Friedrichs) over (h, hu, hv), so a
//     radiation-corrupted cell violates the mass invariant and the error
//     propagates "as a wave ... increasing the number of incorrect
//     elements as the execution continues" (§V-D, Fig. 9) — emergent from
//     the real solver, not scripted;
//   - a refinement map recomputed from the water-height gradient, driving
//     load imbalance, an irregular access pattern, and the thread-count
//     changes between time steps that stress control resources (Table I:
//     CPU-bound, imbalanced, irregular);
//   - the mass-conservation check of [4]/[19]: total water volume is
//     tracked every step, so a detector can compare it against the
//     golden invariant (the paper reports 82% fault coverage).
package clamr

import (
	"fmt"
	"math"
	"sync"

	"radcrit/internal/arch"
	"radcrit/internal/grid"
	"radcrit/internal/kernels"
	"radcrit/internal/metrics"
	"radcrit/internal/scratch"
	"radcrit/internal/xrand"
)

// Physics and scheme constants.
const (
	Gravity  = 9.8
	DT       = 0.02 // CFL-safe for wave speeds up to ~sqrt(g*10)
	DX       = 1.0
	HInside  = 10.0 // dam water column height
	HOutside = 2.0  // ambient water height
	// RefineThreshold is the |grad h| above which a cell is refined.
	RefineThreshold = 0.05
	// RefineInterval is the step period of refinement-map recomputation.
	RefineInterval = 10
	// TileSide is the scheduler work-unit tile.
	TileSide = 16
	// MassCheckCellFraction is the mass-check threshold expressed as a
	// fraction of one average cell's water volume: the detector fires when
	// total volume drifts by more than 1% of a single cell. This separates
	// real corruption (at least a sizeable fraction of one cell) from the
	// solver's floating-point non-conservation (orders of magnitude
	// smaller), independent of mesh size.
	MassCheckCellFraction = 0.01

	// UMax is the CFL velocity guard: solvers bound |u| to keep the time
	// step stable, so a momentum word corrupted to an absurd magnitude is
	// clamped to UMax*h instead of blowing up the scheme. The clamp keeps
	// such runs mass-conserving — they corrupt the wave field (a critical
	// SDC) without tripping the mass check, which is exactly the detector
	// escape that holds the paper's coverage at ~82% instead of 100%.
	UMax = 40.0
)

// state is the conserved-variable triple on the uniform fine mesh.
type state struct {
	h, hu, hv []float64
}

func newState(n int) *state {
	return &state{h: make([]float64, n), hu: make([]float64, n), hv: make([]float64, n)}
}

func (s *state) copyFrom(o *state) {
	copy(s.h, o.h)
	copy(s.hu, o.hu)
	copy(s.hv, o.hv)
}

// Kernel is a CLAMR instance: side x side cells, steps time steps.
type Kernel struct {
	side  int
	steps int
	seed  uint64

	snapEvery  int
	snaps      []*state
	finalH     []float64
	m0         float64 // golden total water volume
	refineFrac float64 // mean refined-cell fraction over the golden run

	handleOnce sync.Once
	handle     *goldenTimeline
}

// goldenTimeline is CLAMR's golden-state handle: the snapshot timeline
// computed once at construction plus a bounded memo of fully reconstructed
// per-step states, so strikes landing on the same timestep stop re-stepping
// from the nearest snapshot. Memoised states are canonical and read-only;
// irradiated runs copy them into working buffers borrowed from the
// handle's scratch pool before corrupting them.
type goldenTimeline struct {
	k      *Kernel
	states kernels.TimelineMemo[*state]
	scr    *scratch.Pool[*injectScratch]
}

// injectScratch is one borrowable irradiated-run working set. cur is
// fully overwritten by the golden-state copy, next is fully written by
// every step, and the flux rows are filled before every read, so none of
// them needs a cleanliness invariant; frozen (allocated lazily by the
// first task-set strike) must be all-false on Put.
type injectScratch struct {
	cur, next *state
	fr        *fluxRows
	frozen    []bool
}

// fluxRows bank the south fluxes of one step's row sweep so each cell
// computes one fluxY instead of two. Output row y consumes fluxY of rows
// y-1 (north) and y+1 (south); the south fluxes computed at row y are
// exactly the north fluxes row y+2 will need, and rows two apart share
// parity, so two buffers suffice — each read (as north) and overwritten
// (with the fresh south) in the same ascending x sweep. The banked values
// are bitwise the ones the inline computation produced, so the stencil's
// results are unchanged.
type fluxRows struct {
	buf [2][3][]float64 // [row parity][component][x]
}

func newFluxRows(s int) *fluxRows {
	fr := &fluxRows{}
	for p := 0; p < 2; p++ {
		for c := 0; c < 3; c++ {
			fr.buf[p][c] = make([]float64, s)
		}
	}
	return fr
}

// prime loads the bank with fluxY of source rows 0 and 1 — the north
// fluxes of the first two interior output rows.
func (fr *fluxRows) prime(k *Kernel, src *state) {
	s := k.side
	for r := 0; r < 2; r++ {
		row := r * s
		h, hu, hv := src.h[row:row+s], src.hu[row:row+s], src.hv[row:row+s]
		g0, g1, g2 := fr.buf[r][0], fr.buf[r][1], fr.buf[r][2]
		for x := 1; x < s-1; x++ {
			g0[x], g1[x], g2[x] = fluxY(h[x], hu[x], hv[x])
		}
	}
}

// stateAt returns the canonical golden state at step t. The returned state
// is shared and must not be mutated.
func (g *goldenTimeline) stateAt(t int) *state {
	return g.states.At(t, g.k.stateAt)
}

// Golden implements kernels.Kernel. The handle is device-independent:
// CLAMR's golden timeline depends only on the input configuration.
func (k *Kernel) Golden(dev arch.Device) kernels.GoldenState {
	k.handleOnce.Do(func() {
		n := k.side * k.side
		k.handle = &goldenTimeline{
			k: k,
			scr: scratch.NewNamedPool("clamr.inject", func() *injectScratch {
				return &injectScratch{cur: newState(n), next: newState(n), fr: newFluxRows(k.side)}
			}),
		}
	})
	return k.handle
}

var _ kernels.Kernel = (*Kernel)(nil)
var _ kernels.BatchRunner = (*Kernel)(nil)

// Check reports whether (side, steps) is a valid CLAMR configuration
// without running the golden simulation: the non-panicking face of New's
// precondition, used by plan validation.
func Check(side, steps int) error {
	if side < 16 || steps < RefineInterval {
		return fmt.Errorf("clamr: invalid config side=%d steps=%d", side, steps)
	}
	return nil
}

// New returns a CLAMR kernel. The paper's standard problem starts from a
// 512x512 mesh and runs 5,000 timesteps; smaller configurations preserve
// the same wave physics for testing.
func New(side, steps int) *Kernel {
	if err := Check(side, steps); err != nil {
		panic(err.Error())
	}
	k := &Kernel{side: side, steps: steps, seed: 0xC1A + uint64(side), snapEvery: 32}
	k.computeGolden()
	return k
}

// Side returns the mesh edge length.
func (k *Kernel) Side() int { return k.side }

// Steps returns the timestep count.
func (k *Kernel) Steps() int { return k.steps }

// Name implements kernels.Kernel.
func (k *Kernel) Name() string { return "CLAMR" }

// Domain implements kernels.Kernel (Table II).
func (k *Kernel) Domain() string { return "Fluid dynamics" }

// InputLabel implements kernels.Kernel.
func (k *Kernel) InputLabel() string { return fmt.Sprintf("%dx%d", k.side, k.side) }

// Class implements kernels.Kernel (Table I).
func (k *Kernel) Class() kernels.Class {
	return kernels.Class{BoundBy: "CPU", LoadBalance: "Imbalanced", MemoryAccess: "Irregular"}
}

// GoldenMass returns the conserved total water volume of the golden run.
func (k *Kernel) GoldenMass() float64 { return k.m0 }

// MassCheckThresholdRel returns the detector threshold as a relative drift
// of total volume: MassCheckCellFraction of one average cell.
func (k *Kernel) MassCheckThresholdRel() float64 {
	return MassCheckCellFraction / float64(k.side*k.side)
}

// initState builds the circular dam-break initial condition.
func (k *Kernel) initState() *state {
	s := k.side
	st := newState(s * s)
	cx, cy := float64(s)/2, float64(s)/2
	r := float64(s) / 6
	for y := 0; y < s; y++ {
		for x := 0; x < s; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			if dx*dx+dy*dy <= r*r {
				st.h[y*s+x] = HInside
			} else {
				st.h[y*s+x] = HOutside
			}
		}
	}
	return st
}

// mirror reads conserved variables at (x,y) with reflective walls:
// height mirrored, wall-normal momentum negated.
func (k *Kernel) mirror(st *state, x, y int) (h, hu, hv float64) {
	s := k.side
	nx, ny := x, y
	fx, fy := 1.0, 1.0
	if nx < 0 {
		nx, fx = 0, -1
	}
	if nx >= s {
		nx, fx = s-1, -1
	}
	if ny < 0 {
		ny, fy = 0, -1
	}
	if ny >= s {
		ny, fy = s-1, -1
	}
	i := ny*s + nx
	return st.h[i], st.hu[i] * fx, st.hv[i] * fy
}

// fluxes of the shallow-water equations.
func fluxX(h, hu, hv float64) (f0, f1, f2 float64) {
	u := hu / h
	return hu, hu*u + 0.5*Gravity*h*h, hv * u
}

func fluxY(h, hu, hv float64) (g0, g1, g2 float64) {
	v := hv / h
	return hv, hu * v, hv*v + 0.5*Gravity*h*h
}

// step advances src into dst by one Lax-Friedrichs step and returns the
// total water volume of dst, accumulated in the same cell order a
// separate pass would use (so the mass-check signal is bit-identical to
// summing afterwards, without re-reading the grid). frozen, when non-nil,
// marks cells whose update is skipped (mis-scheduled tiles).
//
// The hot layout: interior cells run a tight loop over row sub-slices
// (direct neighbour loads, bounds checks lifted to the slice headers, no
// per-cell branch on frozen/border), while wall cells keep the
// reflective-mirror reads via stepCell. Every path evaluates the
// identical float expressions in identical order, so the optimisation is
// bitwise invisible — mirror degenerates to the identity in the interior
// (fx = fy = 1, and momenta are finite after sanitisation, so the *1
// factors are exact).
func (k *Kernel) step(dst, src *state, frozen []bool, fr *fluxRows) float64 {
	if frozen != nil {
		return k.stepFrozen(dst, src, frozen)
	}
	s := k.side
	c := DT / (2 * DX)
	var mass float64
	fr.prime(k, src)
	for y := 0; y < s; y++ {
		if y == 0 || y == s-1 {
			for x := 0; x < s; x++ {
				mass += k.stepCell(dst, src, x, y, c)
			}
			continue
		}
		row := y * s
		mass += k.stepCell(dst, src, 0, y, c)
		hC, huC, hvC := src.h[row:row+s], src.hu[row:row+s], src.hv[row:row+s]
		hN, huN, hvN := src.h[row-s:row], src.hu[row-s:row], src.hv[row-s:row]
		hS, huS, hvS := src.h[row+s:row+2*s], src.hu[row+s:row+2*s], src.hv[row+s:row+2*s]
		dh, dhu, dhv := dst.h[row:row+s], dst.hu[row:row+s], dst.hv[row:row+s]
		// North fluxes come from the parity bank; the fresh south fluxes
		// overwrite the slot just read, becoming row y+2's north.
		g0, g1, g2 := fr.buf[(y-1)&1][0], fr.buf[(y-1)&1][1], fr.buf[(y-1)&1][2]
		// fluxX slides through lag registers: the flux of cell x+1
		// computed here is the west flux of cell x+2, so each cell pays
		// for one fluxX instead of two.
		fW0, fW1, fW2 := fluxX(hC[0], huC[0], hvC[0])
		fC0, fC1, fC2 := fluxX(hC[1], huC[1], hvC[1])
		for x := 1; x < s-1; x++ {
			hE, huE, hvE := hC[x+1], huC[x+1], hvC[x+1]
			hW, huW, hvW := hC[x-1], huC[x-1], hvC[x-1]
			hNv, huNv, hvNv := hN[x], huN[x], hvN[x]
			hSv, huSv, hvSv := hS[x], huS[x], hvS[x]

			fE0, fE1, fE2 := fluxX(hE, huE, hvE)
			gN0, gN1, gN2 := g0[x], g1[x], g2[x]
			gS0, gS1, gS2 := fluxY(hSv, huSv, hvSv)
			g0[x], g1[x], g2[x] = gS0, gS1, gS2

			h := 0.25*(hE+hW+hNv+hSv) - c*(fE0-fW0) - c*(gS0-gN0)
			hu := 0.25*(huE+huW+huNv+huSv) - c*(fE1-fW1) - c*(gS1-gN1)
			hv := 0.25*(hvE+hvW+hvNv+hvSv) - c*(fE2-fW2) - c*(gS2-gN2)

			// Lean inline sanitize: the NaN/Inf branches of sanitize are
			// provably dead here — every src cell is already sanitised
			// (finite, h >= 1e-3, |hu|,|hv| <= UMax*h), and no operation
			// above can overflow or divide by zero from such inputs — so
			// only the clamps remain, with identical results.
			if h < 1e-3 {
				h = 1e-3
			} else if h > 1e9 {
				h = 1e9
			}
			lim := UMax * h
			if hu > lim {
				hu = lim
			} else if hu < -lim {
				hu = -lim
			}
			if hv > lim {
				hv = lim
			} else if hv < -lim {
				hv = -lim
			}
			dh[x], dhu[x], dhv[x] = h, hu, hv
			mass += h

			fW0, fW1, fW2 = fC0, fC1, fC2
			fC0, fC1, fC2 = fE0, fE1, fE2
		}
		mass += k.stepCell(dst, src, s-1, y, c)
	}
	return mass
}

// stepCell updates one wall cell through the reflective-mirror reads and
// returns its sanitised water height.
func (k *Kernel) stepCell(dst, src *state, x, y int, c float64) float64 {
	i := y*k.side + x
	hE, huE, hvE := k.mirror(src, x+1, y)
	hW, huW, hvW := k.mirror(src, x-1, y)
	hN, huN, hvN := k.mirror(src, x, y-1)
	hS, huS, hvS := k.mirror(src, x, y+1)

	fE0, fE1, fE2 := fluxX(hE, huE, hvE)
	fW0, fW1, fW2 := fluxX(hW, huW, hvW)
	gN0, gN1, gN2 := fluxY(hN, huN, hvN)
	gS0, gS1, gS2 := fluxY(hS, huS, hvS)

	h := 0.25*(hE+hW+hN+hS) - c*(fE0-fW0) - c*(gS0-gN0)
	hu := 0.25*(huE+huW+huN+huS) - c*(fE1-fW1) - c*(gS1-gN1)
	hv := 0.25*(hvE+hvW+hvN+hvS) - c*(fE2-fW2) - c*(gS2-gN2)

	h, hu, hv = sanitize(h, hu, hv)
	dst.h[i], dst.hu[i], dst.hv[i] = h, hu, hv
	return h
}

// stepFrozen is the general (and rare) path for task-set strikes with
// mis-scheduled tiles: the pre-optimisation per-cell loop with the frozen
// check.
func (k *Kernel) stepFrozen(dst, src *state, frozen []bool) float64 {
	s := k.side
	c := DT / (2 * DX)
	var mass float64
	for y := 0; y < s; y++ {
		for x := 0; x < s; x++ {
			i := y*s + x
			if frozen[i] {
				dst.h[i], dst.hu[i], dst.hv[i] = src.h[i], src.hu[i], src.hv[i]
				mass += dst.h[i]
				continue
			}
			mass += k.stepCell(dst, src, x, y, c)
		}
	}
	return mass
}

// sanitizeCell keeps the solver marching after radical corruption: real
// hardware would either crash (caught upstream by the outcome model) or
// keep producing finite garbage. Non-finite values are replaced by the
// ambient state and heights are clamped positive, so corruption spreads as
// data rather than as NaN wavefronts.
func sanitizeCell(st *state, i int) {
	st.h[i], st.hu[i], st.hv[i] = sanitize(st.h[i], st.hu[i], st.hv[i])
}

// sanitize is sanitizeCell on scalars, so the stencil loops can clean a
// cell's conserved triple in registers before its single store.
func sanitize(h, hu, hv float64) (float64, float64, float64) {
	if math.IsNaN(h) || math.IsInf(h, 0) {
		h = HOutside
	}
	if h < 1e-3 {
		h = 1e-3
	}
	if h > 1e9 {
		h = 1e9
	}
	// CFL velocity guard (see UMax).
	lim := UMax * h
	if math.IsNaN(hu) || math.IsInf(hu, 0) {
		hu = 0
	}
	if hu > lim {
		hu = lim
	} else if hu < -lim {
		hu = -lim
	}
	if math.IsNaN(hv) || math.IsInf(hv, 0) {
		hv = 0
	}
	if hv > lim {
		hv = lim
	} else if hv < -lim {
		hv = -lim
	}
	return h, hu, hv
}

// refineMap marks cells whose height gradient exceeds the threshold: the
// cell-based AMR criterion.
func (k *Kernel) refineMap(st *state) []bool {
	s := k.side
	m := make([]bool, s*s)
	for y := 0; y < s; y++ {
		for x := 0; x < s; x++ {
			hE, _, _ := k.mirror(st, x+1, y)
			hW, _, _ := k.mirror(st, x-1, y)
			hN, _, _ := k.mirror(st, x, y-1)
			hS, _, _ := k.mirror(st, x, y+1)
			gx := (hE - hW) / 2
			gy := (hS - hN) / 2
			m[y*s+x] = math.Sqrt(gx*gx+gy*gy) > RefineThreshold
		}
	}
	return m
}

// computeGolden runs the fault-free simulation, storing snapshots and the
// AMR statistics that feed the occupancy profile.
func (k *Kernel) computeGolden() {
	n := k.side * k.side
	cur := k.initState()
	next := newState(n)
	k.m0 = sum(cur.h)

	snap := newState(n)
	snap.copyFrom(cur)
	k.snaps = append(k.snaps, snap)

	var refinedSum float64
	samples := 0
	fr := newFluxRows(k.side)
	for t := 0; t < k.steps; t++ {
		k.step(next, cur, nil, fr)
		cur, next = next, cur
		if (t+1)%k.snapEvery == 0 {
			sn := newState(n)
			sn.copyFrom(cur)
			k.snaps = append(k.snaps, sn)
		}
		if (t+1)%RefineInterval == 0 {
			m := k.refineMap(cur)
			c := 0
			for _, r := range m {
				if r {
					c++
				}
			}
			refinedSum += float64(c) / float64(n)
			samples++
		}
	}
	if samples > 0 {
		k.refineFrac = refinedSum / float64(samples)
	}
	k.finalH = make([]float64, n)
	copy(k.finalH, cur.h)
}

// stateAt reconstructs the golden state at step t.
func (k *Kernel) stateAt(t int) *state {
	si := t / k.snapEvery
	if si >= len(k.snaps) {
		si = len(k.snaps) - 1
	}
	n := k.side * k.side
	cur := newState(n)
	cur.copyFrom(k.snaps[si])
	next := newState(n)
	fr := newFluxRows(k.side)
	for step := si * k.snapEvery; step < t; step++ {
		k.step(next, cur, nil, fr)
		cur, next = next, cur
	}
	return cur
}

// GoldenFinal returns the golden water-height output as a grid.
func (k *Kernel) GoldenFinal() *grid.Grid {
	g := grid.New2D(k.side, k.side)
	copy(g.Data(), k.finalH)
	return g
}

// RefinedFraction returns the mean fraction of refined cells during the
// golden run (AMR statistics).
func (k *Kernel) RefinedFraction() float64 { return k.refineFrac }

// Profile implements kernels.Kernel. CLAMR is compute-bound on double
// precision, control-heavy (border tests, AMR re-balancing, one kernel
// launch per timestep) and its thread count changes between steps
// ("#cells or more", Table II).
func (k *Kernel) Profile(dev arch.Device) arch.Profile {
	cells := k.side * k.side
	amrCells := int(float64(cells) * (1 + 3*k.refineFrac)) // refined cells split 2x2
	p := arch.Profile{
		Kernel:           "CLAMR",
		InputLabel:       k.InputLabel(),
		OutputDims:       grid.Dims{X: k.side, Y: k.side, Z: 1},
		Threads:          amrCells,
		Blocks:           (k.side / TileSide) * (k.side / TileSide),
		CacheFootprintKB: 3 * float64(cells) * 8 / 1024,
		ControlShare:     0.35,
		MemoryBound:      false,
		Irregular:        true,
		// CLAMR launches kernels every timestep but also rebalances the
		// mesh between steps: dispatch pressure sits between HotSpot's
		// amortised relaunch and DGEMM's block streaming.
		DispatchFactor:    0.6,
		IterativeLaunches: true,
		RelRuntime:        float64(cells) * float64(k.steps) / (512 * 512 * 5000),
	}
	m := dev.Model()
	if m.SharedMemKBPerCore > 0 {
		p.LocalMemPerBlockKB = 3
	}
	if m.VectorWidthBits > 0 {
		p.VectorShare = 0.45
		p.FPUShare = 0.40
	} else {
		p.FPUShare = 0.70
	}
	return p
}

// Detail is the per-run detector evidence accompanying a mismatch report.
type Detail struct {
	// MaxMassDriftRel is the largest |mass(t)-M0|/M0 observed after the
	// injection: the signal of the mass-conservation check.
	MaxMassDriftRel float64
	// MassCheckFired reports whether the drift exceeded the tolerance.
	MassCheckFired bool
}

// RunInjected implements kernels.Kernel.
func (k *Kernel) RunInjected(dev arch.Device, inj arch.Injection, rng *xrand.RNG) *metrics.Report {
	rep, _ := k.RunInjectedDetailed(dev, inj, rng)
	return rep
}

// RunInjectedOn implements kernels.Kernel.
func (k *Kernel) RunInjectedOn(gs kernels.GoldenState, inj arch.Injection, rng *xrand.RNG) *metrics.Report {
	rep, _ := k.RunInjectedDetailedOn(gs, inj, rng)
	return rep
}

// RunInjectedPooled implements kernels.Kernel: working states come from
// the handle's scratch pool and the report from the session pool.
func (k *Kernel) RunInjectedPooled(gs kernels.GoldenState, inj arch.Injection, rng *xrand.RNG, reports *metrics.ReportPool) *metrics.Report {
	rep, _ := k.runInjectedDetailed(gs, inj, rng, reports)
	return rep
}

// stateTargetWeights biases which conserved array a storage strike hits:
// h has the longest cache residency (read by every flux computation, the
// refinement criterion, and the mass check), so it absorbs the most
// strikes; the momentum arrays split the rest. Momentum corruption
// conserves mass unless it trips the solver's positivity clamps, which is
// the detector-escape path that keeps the mass check's coverage at the
// paper's ~82% rather than 100%.
var stateTargetWeights = []float64{0.70, 0.15, 0.15}

// RunInjectedDetailed runs one irradiated execution and also returns the
// detector evidence.
func (k *Kernel) RunInjectedDetailed(dev arch.Device, inj arch.Injection, rng *xrand.RNG) (*metrics.Report, Detail) {
	return k.RunInjectedDetailedOn(k.Golden(dev), inj, rng)
}

// RunInjectedDetailedOn is RunInjectedDetailed against a prepared
// golden-state handle.
func (k *Kernel) RunInjectedDetailedOn(gs kernels.GoldenState, inj arch.Injection, rng *xrand.RNG) (*metrics.Report, Detail) {
	return k.runInjectedDetailed(gs, inj, rng, nil)
}

// runInjectedDetailed is the hot path of campaign engines: one irradiated
// execution against borrowed working state, with the report drawn from
// reports (nil degrades to plain allocation).
func (k *Kernel) runInjectedDetailed(gs kernels.GoldenState, inj arch.Injection, rng *xrand.RNG, reports *metrics.ReportPool) (*metrics.Report, Detail) {
	g := gs.(*goldenTimeline)
	t0 := k.injectionStep(inj)
	sc := g.scr.Get()
	rep, det := k.runInjectedWith(g, sc, g.stateAt(t0), t0, inj, rng, reports)
	g.scr.Put(sc)
	return rep, det
}

// RunInjectedBatch implements kernels.BatchRunner: the whole batch shares
// one borrowed pair of working states, and the strike-time golden state
// lookup is hoisted across consecutive strikes landing on the same
// timestep.
func (k *Kernel) RunInjectedBatch(gs kernels.GoldenState, batch []kernels.BatchStrike, reports *metrics.ReportPool) {
	g := gs.(*goldenTimeline)
	sc := g.scr.Get()
	lastT0 := -1
	var st *state
	for i := range batch {
		t0 := k.injectionStep(batch[i].Inj)
		if t0 != lastT0 {
			st = g.stateAt(t0)
			lastT0 = t0
		}
		batch[i].Report, _ = k.runInjectedWith(g, sc, st, t0, batch[i].Inj, batch[i].RNG, reports)
	}
	g.scr.Put(sc)
}

// injectionStep maps an injection's progress fraction to its timestep.
func (k *Kernel) injectionStep(inj arch.Injection) int {
	t0 := int(inj.When * float64(k.steps))
	if t0 >= k.steps {
		t0 = k.steps - 1
	}
	return t0
}

// runInjectedWith executes one injection against externally owned scratch
// and a pre-resolved strike-time golden state (st == stateAt(t0)).
func (k *Kernel) runInjectedWith(g *goldenTimeline, sc *injectScratch, st *state, t0 int, inj arch.Injection, rng *xrand.RNG, reports *metrics.ReportPool) (*metrics.Report, Detail) {
	n := k.side * k.side
	cur, next := sc.cur, sc.next
	cur.copyFrom(st)

	var frozen []bool
	frozenUntil := -1

	// Apply the injection to the live state.
	switch inj.Scope {
	case arch.ScopeAccumTerm, arch.ScopeInputWord, arch.ScopeOutputWord:
		k.corruptWords(cur, rng.Intn(n), 1, inj, rng)
	case arch.ScopeVectorLanes:
		k.corruptWords(cur, alignedStart(rng, n, inj.Words), inj.Words, inj, rng)
	case arch.ScopeCacheLine, arch.ScopeSharedTile:
		for line := 0; line < inj.Lines; line++ {
			k.corruptWords(cur, alignedStart(rng, n, inj.Words), inj.Words, inj, rng)
		}
	case arch.ScopeTaskSet:
		// Mis-refinement: tiles wrongly marked coarse are not updated
		// until the next refinement pass.
		if sc.frozen == nil {
			sc.frozen = make([]bool, n)
		}
		frozen = sc.frozen
		tilesPerSide := k.side / TileSide
		for t := 0; t < inj.Tasks; t++ {
			tx, ty := rng.Intn(tilesPerSide), rng.Intn(tilesPerSide)
			for y := ty * TileSide; y < (ty+1)*TileSide; y++ {
				for x := tx * TileSide; x < (tx+1)*TileSide; x++ {
					frozen[y*k.side+x] = true
				}
			}
		}
		frozenUntil = t0 + RefineInterval
	}

	// Continue the real simulation, tracking the mass invariant (the
	// step's write-order volume accumulation, bit-identical to summing
	// cur.h afterwards).
	var maxDrift float64
	for t := t0; t < k.steps; t++ {
		fz := frozen
		if t >= frozenUntil {
			fz = nil
		}
		mass := k.step(next, cur, fz, sc.fr)
		cur, next = next, cur
		drift := math.Abs(mass-k.m0) / k.m0
		if drift > maxDrift {
			maxDrift = drift
		}
	}

	// Compare against the golden output.
	rep := reports.Get(grid.Dims{X: k.side, Y: k.side, Z: 1}, n)
	for i, v := range cur.h {
		g := k.finalH[i]
		if v == g {
			continue
		}
		rep.Mismatches = append(rep.Mismatches, metrics.Mismatch{
			Coord:     grid.Coord{X: i % k.side, Y: i / k.side},
			Read:      v,
			Expected:  g,
			RelErrPct: metrics.RelativeErrorPct(v, g),
		})
	}
	if frozen != nil {
		clear(sc.frozen) // restore the pool's all-false invariant
	}
	det := Detail{
		MaxMassDriftRel: maxDrift,
		MassCheckFired:  maxDrift > k.MassCheckThresholdRel(),
	}
	return rep, det
}

// RunDense materialises golden and faulty outputs for examples/Fig. 9.
func (k *Kernel) RunDense(dev arch.Device, inj arch.Injection, rng *xrand.RNG) (golden, faulty *grid.Grid) {
	golden = k.GoldenFinal()
	faulty = golden.Clone()
	rep := k.RunInjected(dev, inj, rng)
	for _, m := range rep.Mismatches {
		faulty.Set(m.Coord, m.Read)
	}
	return golden, faulty
}

// corruptWords flips words..words+count of a conserved array chosen by
// residency weight, starting at cell index start.
func (k *Kernel) corruptWords(st *state, start, count int, inj arch.Injection, rng *xrand.RNG) {
	arrs := [][]float64{st.h, st.hu, st.hv}
	arr := arrs[rng.WeightedChoice(stateTargetWeights)]
	for w := 0; w < count && start+w < len(arr); w++ {
		arr[start+w] = inj.Flip.Apply(arr[start+w], rng)
	}
	// Immediate sanitation mirrors what the next step would do anyway but
	// keeps the mass accounting finite.
	for w := 0; w < count && start+w < len(arr); w++ {
		sanitizeCell(st, start+w)
	}
}

func alignedStart(rng *xrand.RNG, n, words int) int {
	if words <= 0 {
		words = 1
	}
	slots := n / words
	if slots < 1 {
		return 0
	}
	return rng.Intn(slots) * words
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
