package clamr

import (
	"math"
	"testing"

	"radcrit/internal/arch"
	"radcrit/internal/fault"
	"radcrit/internal/floatbits"
	"radcrit/internal/metrics"
	"radcrit/internal/phi"
	"radcrit/internal/xrand"
)

func small() *Kernel { return New(48, 60) }

func TestNewValidation(t *testing.T) {
	for _, c := range []struct{ s, st int }{{8, 100}, {64, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d,%d) did not panic", c.s, c.st)
				}
			}()
			New(c.s, c.st)
		}()
	}
}

func TestGoldenMassConserved(t *testing.T) {
	// The conservative scheme must keep total water volume constant to
	// floating-point accuracy over the golden run.
	k := small()
	final := sum(k.finalH)
	drift := math.Abs(final-k.m0) / k.m0
	if drift > 1e-11 {
		t.Fatalf("golden mass drift %v", drift)
	}
}

func TestGoldenDeterministic(t *testing.T) {
	a := New(32, 40).GoldenFinal()
	b := New(32, 40).GoldenFinal()
	if !a.Equal(b) {
		t.Fatal("golden runs differ")
	}
}

func TestDamBreakWavePropagates(t *testing.T) {
	// The central column must collapse and raise the water level nearby.
	k := small()
	g := k.GoldenFinal()
	center := g.At2(24, 24)
	if center >= HInside {
		t.Fatalf("dam did not collapse: center still %v", center)
	}
	edge := g.At2(2, 24)
	if edge == HOutside {
		t.Log("wave has not yet reached the edge (short run), acceptable")
	}
	if center < HOutside/2 {
		t.Fatalf("center drained unphysically: %v", center)
	}
}

func TestStateAtConsistency(t *testing.T) {
	k := small()
	s10 := k.stateAt(10)
	s11 := k.stateAt(11)
	n := k.side * k.side
	next := newState(n)
	k.step(next, s10, nil, newFluxRows(k.side))
	for i := 0; i < n; i++ {
		if next.h[i] != s11.h[i] || next.hu[i] != s11.hu[i] || next.hv[i] != s11.hv[i] {
			t.Fatal("stateAt(10)+step != stateAt(11)")
		}
	}
}

func TestRefinementTracksWaveFront(t *testing.T) {
	k := small()
	st := k.stateAt(20)
	m := k.refineMap(st)
	refined := 0
	for _, r := range m {
		if r {
			refined++
		}
	}
	if refined == 0 {
		t.Fatal("no cells refined despite a propagating dam-break wave")
	}
	if refined == len(m) {
		t.Fatal("every cell refined: threshold is meaningless")
	}
	if k.RefinedFraction() <= 0 || k.RefinedFraction() >= 1 {
		t.Fatalf("refined fraction = %v", k.RefinedFraction())
	}
}

func mkInj(scope arch.Scope, when float64) arch.Injection {
	return arch.Injection{
		Scope: scope,
		When:  when,
		Words: 8,
		Lines: 2,
		Tasks: 1,
		Flip:  fault.FlipSpec{Field: floatbits.Exponent, Bits: 1},
	}
}

func TestCorruptionSpreadsAsWave(t *testing.T) {
	// §V-D: "a wave of incorrect elements was propagating"; the number of
	// incorrect elements increases as the execution continues.
	k := New(48, 120)
	in := mkInj(arch.ScopeOutputWord, 0.25)
	early := k.RunInjected(phi.New(), in, xrand.New(5))
	in.When = 0.9
	late := k.RunInjected(phi.New(), in, xrand.New(5))
	if early.Count() == 0 || late.Count() == 0 {
		t.Skip("masked runs for this seed")
	}
	if early.Count() <= late.Count() {
		t.Fatalf("early corruption (%d) should spread wider than late (%d)",
			early.Count(), late.Count())
	}
}

func TestLocalityMostlySquare(t *testing.T) {
	// §V-D: square errors amount to 99% of spatial locality.
	k := small()
	squares, runs := 0, 0
	for seed := uint64(0); seed < 25; seed++ {
		rng := xrand.New(seed)
		in := mkInj(arch.ScopeCacheLine, 0.3+0.4*rng.Float64())
		rep := k.RunInjected(phi.New(), in, rng)
		if rep.Count() < 2 {
			continue
		}
		runs++
		if rep.Locality() == metrics.Square {
			squares++
		}
	}
	if runs == 0 {
		t.Fatal("all runs masked")
	}
	if float64(squares)/float64(runs) < 0.8 {
		t.Fatalf("only %d/%d runs square; the error wave should spread in 2D", squares, runs)
	}
}

func TestMassCheckFiresOnHeightCorruption(t *testing.T) {
	k := small()
	fired, runs := 0, 0
	for seed := uint64(0); seed < 60; seed++ {
		rng := xrand.New(seed)
		// AnyField single-bit flips: the actual storage-strike model.
		in := mkInj(arch.ScopeCacheLine, 0.5)
		in.Flip = fault.FlipSpec{Field: floatbits.AnyField, Bits: 1}
		in.Lines = 1
		rep, det := k.RunInjectedDetailed(phi.New(), in, rng)
		if rep.Filter(2).Count() == 0 {
			continue // not a critical SDC
		}
		runs++
		if det.MassCheckFired {
			fired++
		}
	}
	if runs == 0 {
		t.Fatal("no critical SDCs produced")
	}
	cov := float64(fired) / float64(runs)
	// Paper reports 82% coverage for the CLAMR mass check [4].
	if cov < 0.4 || cov > 0.99 {
		t.Fatalf("mass-check coverage %v outside the plausible band around 82%%", cov)
	}
}

func TestTaskSetMisRefinementDetectable(t *testing.T) {
	// Frozen tiles break flux telescoping: neighbours receive flux the
	// frozen region never loses, so total mass drifts and the mass check
	// fires.
	k := small()
	in := mkInj(arch.ScopeTaskSet, 0.4)
	rep, det := k.RunInjectedDetailed(phi.New(), in, xrand.New(3))
	if rep.Count() == 0 {
		t.Skip("masked")
	}
	if !det.MassCheckFired {
		t.Fatalf("mis-refinement drifted mass by only %v", det.MaxMassDriftRel)
	}
}

func TestMomentumCorruptionEvadesMassCheck(t *testing.T) {
	// A pure-momentum corruption conserves mass; it is exactly the
	// detector escape that keeps coverage below 100%.
	k := small()
	evaded := false
	for seed := uint64(0); seed < 60 && !evaded; seed++ {
		rng := xrand.New(seed)
		in := mkInj(arch.ScopeOutputWord, 0.5)
		rep, det := k.RunInjectedDetailed(phi.New(), in, rng)
		if rep.Count() > 0 && !det.MassCheckFired {
			evaded = true
		}
	}
	if !evaded {
		t.Fatal("no corruption ever evaded the mass check; coverage would be 100%, not 82%")
	}
}

func TestProfileCLAMR(t *testing.T) {
	k := small()
	p := k.Profile(phi.New())
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Threads <= k.side*k.side {
		t.Fatal("AMR should instantiate more threads than base cells (Table II: '#cells or more')")
	}
	if !p.Irregular || p.MemoryBound {
		t.Fatal("CLAMR is CPU-bound and irregular (Table I)")
	}
	if p.ControlShare < 0.2 {
		t.Fatal("CLAMR stresses control resources (§IV-B)")
	}
}

func TestSanitizeCell(t *testing.T) {
	st := newState(1)
	st.h[0] = math.NaN()
	st.hu[0] = math.Inf(1)
	st.hv[0] = -math.Inf(1)
	sanitizeCell(st, 0)
	if st.h[0] != HOutside || st.hu[0] != 0 || st.hv[0] != 0 {
		t.Fatalf("sanitize failed: %v %v %v", st.h[0], st.hu[0], st.hv[0])
	}
	st.h[0] = -5
	sanitizeCell(st, 0)
	if st.h[0] <= 0 {
		t.Fatal("negative height survived")
	}
}

func TestRunDenseAgreesWithReport(t *testing.T) {
	k := small()
	in := mkInj(arch.ScopeVectorLanes, 0.7)
	golden, faulty := k.RunDense(phi.New(), in, xrand.New(11))
	rep := k.RunInjected(phi.New(), in, xrand.New(11))
	diff := metrics.Evaluate(golden, faulty)
	if diff.Count() != rep.Count() {
		t.Fatalf("dense diff %d != report %d", diff.Count(), rep.Count())
	}
}
