package dgemm

import (
	"math"
	"testing"
	"testing/quick"

	"radcrit/internal/arch"
	"radcrit/internal/fault"
	"radcrit/internal/floatbits"
	"radcrit/internal/k40"
	"radcrit/internal/metrics"
	"radcrit/internal/phi"
	"radcrit/internal/xrand"
)

func TestNewValidations(t *testing.T) {
	for _, n := range []int{0, -64, 65, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
	if New(128).N() != 128 {
		t.Fatal("N() wrong")
	}
}

func TestInputsDeterministicAndBounded(t *testing.T) {
	k := New(128)
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			a1, a2 := k.A(i, j), k.A(i, j)
			if a1 != a2 {
				t.Fatal("A not deterministic")
			}
			if a1 < 0.5 || a1 >= 2.0 {
				t.Fatalf("A(%d,%d) = %v out of range", i, j, a1)
			}
			b := k.B(i, j)
			if b < 0.5 || b >= 2.0 {
				t.Fatalf("B out of range: %v", b)
			}
		}
	}
}

func TestGoldenElemMatchesMaterialize(t *testing.T) {
	k := New(64)
	full := k.Materialize()
	for i := 0; i < 64; i += 7 {
		for j := 0; j < 64; j += 5 {
			if full.At2(j, i) != k.GoldenElem(i, j) {
				t.Fatalf("Materialize disagrees at (%d,%d)", i, j)
			}
		}
	}
}

func TestGoldenHandleMemoised(t *testing.T) {
	// DGEMM's golden product depends only on the input matrices, so the
	// handle is device-independent and derived once per kernel.
	k := New(64)
	if k.Golden(k40.New()) != k.Golden(phi.New()) {
		t.Fatal("golden handle should be memoised across devices")
	}
}

func TestGoldenRowColAgree(t *testing.T) {
	k := New(64)
	gp := k.Golden(nil).(*goldenProduct)
	sc := gp.scr.Get()
	defer gp.scr.Put(sc)
	r := k.newRun(gp, sc, nil)
	row := r.goldenRow(5)
	col := r.goldenCol(9)
	direct := k.GoldenElem(5, 9)
	if math.Abs(row[9]-direct) > 1e-9*math.Abs(direct) {
		t.Fatalf("goldenRow disagrees with GoldenElem: %v vs %v", row[9], direct)
	}
	if math.Abs(col[5]-direct) > 1e-9*math.Abs(direct) {
		t.Fatalf("goldenCol disagrees with GoldenElem: %v vs %v", col[5], direct)
	}
}

// The delta-propagation faulty run must agree with a brute-force faulty
// re-execution for input-word corruption.
func TestDeltaPropagationMatchesBruteForce(t *testing.T) {
	const n = 64
	k := New(n)
	// Corrupt a_{3,10} by a sign flip and recompute C fully.
	i0, k0 := 3, 10
	orig := k.A(i0, k0)
	corrupted := -orig

	// Brute force faulty C row.
	bruteRow := make([]float64, n)
	for j := 0; j < n; j++ {
		var sum float64
		for kk := 0; kk < n; kk++ {
			a := k.A(i0, kk)
			if kk == k0 {
				a = corrupted
			}
			sum += a * k.B(kk, j)
		}
		bruteRow[j] = sum
	}

	// Delta propagation.
	gp := k.Golden(nil).(*goldenProduct)
	sc := gp.scr.Get()
	defer gp.scr.Put(sc)
	r := k.newRun(gp, sc, nil)
	row := r.goldenRow(i0)
	d := corrupted - orig
	for j := 0; j < n; j++ {
		delta := row[j] + d*k.B(k0, j)
		if math.Abs(delta-bruteRow[j]) > 1e-9*math.Abs(bruteRow[j]) {
			t.Fatalf("delta propagation mismatch at j=%d: %v vs %v", j, delta, bruteRow[j])
		}
	}
}

func devices() []arch.Device {
	return []arch.Device{k40.New(), phi.New()}
}

func TestProfileSane(t *testing.T) {
	k := New(1024)
	for _, dev := range devices() {
		p := k.Profile(dev)
		if err := p.Validate(); err != nil {
			t.Fatalf("%s profile invalid: %v", dev.ShortName(), err)
		}
		if p.Threads != 1024*1024/16 {
			t.Fatalf("threads = %d, want Table II side^2/16", p.Threads)
		}
		if p.OutputDims.X != 1024 || p.OutputDims.Y != 1024 {
			t.Fatal("output dims wrong")
		}
	}
}

func TestProfileDeviceSpecificShares(t *testing.T) {
	k := New(1024)
	pk := k.Profile(k40.New())
	pp := k.Profile(phi.New())
	if pk.VectorShare != 0 {
		t.Fatal("K40 should have no vector share")
	}
	if pp.VectorShare == 0 {
		t.Fatal("Phi should have vector share")
	}
	if pk.LocalMemPerBlockKB == 0 {
		t.Fatal("K40 DGEMM should stage tiles in shared memory")
	}
	if pp.LocalMemPerBlockKB != 0 {
		t.Fatal("Phi has no shared memory staging")
	}
}

func inj(scope arch.Scope, field floatbits.Field) arch.Injection {
	return arch.Injection{
		Scope: scope,
		Words: 8,
		Lines: 2,
		Tasks: 2,
		Flip:  fault.FlipSpec{Field: field, Bits: 1},
	}
}

func TestOutputWordInjection(t *testing.T) {
	k := New(128)
	rng := xrand.New(1)
	rep := k.RunInjected(k40.New(), inj(arch.ScopeOutputWord, floatbits.Exponent), rng)
	if rep.Count() != 1 {
		t.Fatalf("output-word corruption should yield 1 mismatch, got %d", rep.Count())
	}
	if rep.Locality() != metrics.Single {
		t.Fatalf("locality = %v, want single", rep.Locality())
	}
	if rep.Mismatches[0].RelErrPct < 49 {
		t.Fatalf("exponent flip should be large, got %v%%", rep.Mismatches[0].RelErrPct)
	}
}

func TestInputWordLineError(t *testing.T) {
	k := New(128)
	rng := xrand.New(2)
	in := inj(arch.ScopeCacheLine, floatbits.Exponent)
	in.OutputBias = 0 // force input-side
	in.Lines = 1
	in.When = 0 // always consumed
	// Force the A-side branch by trying seeds until we hit a run where the
	// mismatches form a line (A rows give lines; B rows give squares).
	sawLine := false
	for seed := uint64(0); seed < 20 && !sawLine; seed++ {
		rep := k.RunInjected(k40.New(), in, xrand.New(seed))
		if rep.Count() == 0 {
			continue
		}
		loc := rep.Locality()
		if loc == metrics.Line || loc == metrics.Single {
			sawLine = true
		}
	}
	_ = rng
	if !sawLine {
		t.Fatal("input-side cache corruption never produced line-patterned errors")
	}
}

func TestCacheLineOutputSide(t *testing.T) {
	k := New(128)
	in := inj(arch.ScopeCacheLine, floatbits.Exponent)
	in.OutputBias = 1 // force output-side
	in.Lines = 1
	rep := k.RunInjected(k40.New(), in, xrand.New(3))
	if rep.Count() == 0 || rep.Count() > 8 {
		t.Fatalf("output line corruption should corrupt up to Words elements, got %d", rep.Count())
	}
	loc := rep.Locality()
	if loc != metrics.Line && loc != metrics.Single {
		t.Fatalf("output line locality = %v", loc)
	}
}

func TestTaskSetSquare(t *testing.T) {
	k := New(128)
	in := inj(arch.ScopeTaskSet, floatbits.AnyField)
	in.Tasks = 1
	rep := k.RunInjected(k40.New(), in, xrand.New(4))
	if rep.Count() == 0 {
		t.Fatal("task-set corruption produced no mismatches")
	}
	if got := rep.Locality(); got != metrics.Square {
		t.Fatalf("block corruption locality = %v, want square", got)
	}
	// A skipped/displaced tile stays within one 64x64 block per task.
	if rep.Count() > TileSize*TileSize {
		t.Fatalf("single task corrupted %d elements > tile", rep.Count())
	}
}

func TestSharedTileInjectionBounded(t *testing.T) {
	k := New(128)
	in := inj(arch.ScopeSharedTile, floatbits.Exponent)
	rep := k.RunInjected(k40.New(), in, xrand.New(5))
	if rep.Count() > TileSize {
		t.Fatalf("shared-tile corruption escaped the consuming block: %d mismatches", rep.Count())
	}
}

func TestVectorLanesRowFragment(t *testing.T) {
	k := New(128)
	in := inj(arch.ScopeVectorLanes, floatbits.Exponent)
	rep := k.RunInjected(phi.New(), in, xrand.New(6))
	if rep.Count() == 0 || rep.Count() > in.Words {
		t.Fatalf("vector-lane corruption count = %d", rep.Count())
	}
	// All in one row.
	y := rep.Mismatches[0].Coord.Y
	for _, m := range rep.Mismatches {
		if m.Coord.Y != y {
			t.Fatal("vector lanes crossed rows")
		}
	}
}

func TestAccumTermDiluted(t *testing.T) {
	// A mantissa flip in one term of a 128-term reduction must produce a
	// tiny relative error on the output (the dilution effect).
	k := New(128)
	in := arch.Injection{
		Scope: arch.ScopeAccumTerm,
		Flip:  fault.FlipSpec{Field: floatbits.LowMantissa, Bits: 1},
	}
	for seed := uint64(0); seed < 10; seed++ {
		rep := k.RunInjected(k40.New(), in, xrand.New(seed))
		if rep.Count() == 0 {
			continue // delta below one ulp: logically masked
		}
		if rep.MaxRelErrPct() > 0.001 {
			t.Fatalf("low-mantissa accum term produced %v%% error", rep.MaxRelErrPct())
		}
	}
}

func TestWhenMasksConsumedInputs(t *testing.T) {
	k := New(128)
	in := inj(arch.ScopeCacheLine, floatbits.Exponent)
	in.OutputBias = 0
	in.When = 0.999999 // effectively always already consumed
	masked := 0
	for seed := uint64(0); seed < 30; seed++ {
		if k.RunInjected(k40.New(), in, xrand.New(seed)).Count() == 0 {
			masked++
		}
	}
	if masked < 28 {
		t.Fatalf("late input corruption should be masked, only %d/30 were", masked)
	}
}

func TestInjectionNeverPanicsProperty(t *testing.T) {
	k := New(128)
	devs := devices()
	f := func(seed uint64, scopeRaw, fieldRaw uint8) bool {
		scope := arch.Scope(int(scopeRaw) % 7)
		field := floatbits.Field(int(fieldRaw) % 6)
		in := inj(scope, field)
		rng := xrand.New(seed)
		in.When = rng.Float64()
		dev := devs[rng.Intn(len(devs))]
		rep := k.RunInjected(dev, in, rng)
		return rep.TotalElements == 128*128
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMismatchesWithinBounds(t *testing.T) {
	k := New(128)
	for seed := uint64(0); seed < 40; seed++ {
		rng := xrand.New(seed)
		scope := arch.Scope(rng.Intn(7))
		in := inj(scope, floatbits.AnyField)
		rep := k.RunInjected(k40.New(), in, rng)
		for _, m := range rep.Mismatches {
			if m.Coord.X < 0 || m.Coord.X >= 128 || m.Coord.Y < 0 || m.Coord.Y >= 128 {
				t.Fatalf("mismatch out of bounds: %+v", m.Coord)
			}
			if m.Read == m.Expected {
				t.Fatal("recorded non-mismatch")
			}
		}
	}
}
