// Package dgemm implements the paper's Matrix Multiplication benchmark: a
// Dense Linear Algebra kernel, CPU-bound, balanced, with a regular access
// pattern (Table I), O(N^3) compute over O(N^2) space. DGEMM is "a
// cornerstone code for several applications and performance evaluation
// tools", including Linpack.
//
// Faulty executions use exact delta propagation: C = A x B is linear in
// every input element, so corrupting a_ik changes row i of C by
// delta*b_k· and nothing else. Only reachable outputs are recomputed and
// golden values are evaluated lazily, which keeps paper-scale inputs
// (up to 8192x8192) tractable inside multi-thousand-run campaigns while
// remaining bit-identical to a full faulty re-execution.
package dgemm

import (
	"fmt"
	"math"
	"sync"

	"radcrit/internal/arch"
	"radcrit/internal/grid"
	"radcrit/internal/kernels"
	"radcrit/internal/metrics"
	"radcrit/internal/scratch"
	"radcrit/internal/xrand"
)

// TileSize is the block tile edge: each work block computes a
// TileSize x TileSize tile of C.
const TileSize = 64

// Kernel is a DGEMM instance of one input size.
type Kernel struct {
	n     int
	seedA uint64
	seedB uint64

	goldenOnce sync.Once
	golden     *goldenProduct
}

var _ kernels.Kernel = (*Kernel)(nil)
var _ kernels.BatchRunner = (*Kernel)(nil)

// Check reports whether n is a valid DGEMM input size without building
// anything: the non-panicking face of New's precondition, used by plan
// validation.
func Check(n int) error {
	if n <= 0 || n%TileSize != 0 {
		return fmt.Errorf("dgemm: size %d not a positive multiple of %d", n, TileSize)
	}
	return nil
}

// New returns an n x n DGEMM kernel. n must be a positive multiple of
// TileSize (the paper sweeps powers of two from 1024 to 8192).
func New(n int) *Kernel {
	if err := Check(n); err != nil {
		panic(err.Error())
	}
	return &Kernel{n: n, seedA: 0xA0A0 + uint64(n), seedB: 0xB0B0 + uint64(n)}
}

// N returns the matrix side.
func (k *Kernel) N() int { return k.n }

// Name implements kernels.Kernel.
func (k *Kernel) Name() string { return "DGEMM" }

// Domain implements kernels.Kernel (Table II).
func (k *Kernel) Domain() string { return "Linear algebra" }

// InputLabel implements kernels.Kernel.
func (k *Kernel) InputLabel() string { return fmt.Sprintf("%dx%d", k.n, k.n) }

// Class implements kernels.Kernel (Table I).
func (k *Kernel) Class() kernels.Class {
	return kernels.Class{BoundBy: "CPU", LoadBalance: "Balanced", MemoryAccess: "Regular"}
}

// A returns input element a_{i,k}. Values sit in [0.5, 2): big enough to be
// representative, small enough to avoid overflow, and bounded away from
// zero so relative errors are well defined (paper §IV-D).
func (k *Kernel) A(i, kk int) float64 {
	return kernels.ValueAt(k.seedA, i, kk, 0.5, 2.0)
}

// B returns input element b_{k,j}.
func (k *Kernel) B(kk, j int) float64 {
	return kernels.ValueAt(k.seedB, kk, j, 0.5, 2.0)
}

// GoldenElem computes the fault-free c_{i,j} on demand.
func (k *Kernel) GoldenElem(i, j int) float64 {
	var sum float64
	for kk := 0; kk < k.n; kk++ {
		sum += k.A(i, kk) * k.B(kk, j)
	}
	return sum
}

// Profile implements kernels.Kernel. Thread counts follow Table II
// (side^2/16 threads); blocks compute TileSize^2 output tiles.
func (k *Kernel) Profile(dev arch.Device) arch.Profile {
	m := dev.Model()
	p := arch.Profile{
		Kernel:           "DGEMM",
		InputLabel:       k.InputLabel(),
		OutputDims:       grid.Dims{X: k.n, Y: k.n, Z: 1},
		Threads:          k.n * k.n / 16,
		Blocks:           (k.n / TileSize) * (k.n / TileSize),
		CacheFootprintKB: 3 * float64(k.n) * float64(k.n) * 8 / 1024,
		ControlShare:     0.04,
		MemoryBound:      false,
		Irregular:        false,
		RelRuntime:       math.Pow(float64(k.n)/1024, 3),
	}
	if m.SharedMemKBPerCore > 0 {
		// GPU-style staging of A/B tiles in shared memory.
		p.LocalMemPerBlockKB = 8
	}
	if m.VectorWidthBits > 0 {
		p.VectorShare = 0.80
		p.FPUShare = 0.30
	} else {
		p.FPUShare = 0.85
	}
	return p
}

// goldenProduct is DGEMM's golden-state handle: rows and columns of the
// fault-free product C, materialised on demand and shared by every strike
// of a campaign. Entries are pure functions of the kernel, so concurrent
// strikes may race to compute the same row — both arrive at bit-identical
// values and LoadOrStore keeps exactly one. Cached slices are read-only.
// Memory grows with the set of distinct rows/columns touched, bounded by
// the full product (2*N^2 floats); campaign strikes revisit rows heavily,
// which is precisely why sharing beats per-run caches.
type goldenProduct struct {
	k    *Kernel
	rows sync.Map // int -> []float64
	cols sync.Map // int -> []float64
	scr  *scratch.Pool[*runScratch]
}

// runScratch is one borrowable strike working set: the epoch-stamped
// corrupted-cell map (cleared in O(1) between strikes) plus the small
// per-line delta buffers the cache-line and shared-tile injections used
// to allocate fresh.
type runScratch struct {
	cells  scratch.IndexMap[faultyCell]
	deltas []float64
	ks     []int
	tile   [TileSize]float64
}

// Golden implements kernels.Kernel. The handle is device-independent:
// DGEMM's golden product depends only on the input matrices.
func (k *Kernel) Golden(dev arch.Device) kernels.GoldenState {
	k.goldenOnce.Do(func() {
		k.golden = &goldenProduct{
			k:   k,
			scr: scratch.NewNamedPool("dgemm.run", func() *runScratch { return &runScratch{} }),
		}
	})
	return k.golden
}

// row returns golden row i of C, computing and caching it on demand.
func (g *goldenProduct) row(i int) []float64 {
	if row, ok := g.rows.Load(i); ok {
		return row.([]float64)
	}
	n := g.k.n
	row := make([]float64, n)
	// k-outer loop: stream B rows for locality.
	for kk := 0; kk < n; kk++ {
		a := g.k.A(i, kk)
		for j := 0; j < n; j++ {
			row[j] += a * g.k.B(kk, j)
		}
	}
	v, _ := g.rows.LoadOrStore(i, row)
	return v.([]float64)
}

// col returns golden column j of C, computing and caching on demand.
func (g *goldenProduct) col(j int) []float64 {
	if col, ok := g.cols.Load(j); ok {
		return col.([]float64)
	}
	n := g.k.n
	col := make([]float64, n)
	for kk := 0; kk < n; kk++ {
		b := g.k.B(kk, j)
		for i := 0; i < n; i++ {
			col[i] += g.k.A(i, kk) * b
		}
	}
	v, _ := g.cols.LoadOrStore(j, col)
	return v.([]float64)
}

// run carries one execution's corrupted state on top of the shared golden
// product.
type run struct {
	k      *Kernel
	golden *goldenProduct
	sc     *runScratch
	rep    *metrics.Report
}

// faultyCell pairs a corrupted value with its golden counterpart so the
// final report never has to re-derive golden rows.
type faultyCell struct {
	read, expected float64
}

func (k *Kernel) newRun(g *goldenProduct, sc *runScratch, reports *metrics.ReportPool) run {
	sc.cells.Clear()
	return run{
		k:      k,
		golden: g,
		sc:     sc,
		rep:    reports.Get(grid.Dims{X: k.n, Y: k.n, Z: 1}, k.n*k.n),
	}
}

// goldenRow returns golden row i of C from the shared handle.
func (r *run) goldenRow(i int) []float64 { return r.golden.row(i) }

// goldenCol returns golden column j of C from the shared handle.
func (r *run) goldenCol(j int) []float64 { return r.golden.col(j) }

// recordWith stores a corrupted value against a caller-supplied golden
// value (already known from a cached row or column; recomputing it here
// would materialise whole golden rows). Deltas below one ulp vanish in
// the addition, which is exactly the logical masking a real device would
// exhibit. Overlapping corruptions of the same element keep the last
// value, like overlapping stores would; an element whose last write
// restored the golden value is skipped at emission, which is the same
// report the old delete-on-equal map produced.
func (r *run) recordWith(i, j int, faulty, golden float64) {
	r.sc.cells.Set(i*r.k.n+j, faultyCell{read: faulty, expected: golden})
}

// record stores a corrupted value, deriving golden from the row cache.
func (r *run) record(i, j int, faulty float64) {
	r.recordWith(i, j, faulty, r.goldenRow(i)[j])
}

// finish converts stored corrupted values into the mismatch report.
// Mismatches are emitted in ascending flat-index (row-major) order so the
// report is a deterministic function of the corrupted set, exactly as the
// pre-pooling sort emitted them. The scratch stays with the caller, so a
// batch of strikes can reuse it back to back.
func (r *run) finish() *metrics.Report {
	n := r.k.n
	for _, key := range r.sc.cells.SortedKeys() {
		c, _ := r.sc.cells.Get(key)
		if c.read == c.expected {
			continue // last write restored the golden value
		}
		i, j := key/n, key%n
		r.rep.Mismatches = append(r.rep.Mismatches, metrics.Mismatch{
			Coord:     grid.Coord{X: j, Y: i},
			Read:      c.read,
			Expected:  c.expected,
			RelErrPct: metrics.RelativeErrorPct(c.read, c.expected),
		})
	}
	return r.rep
}

// RunInjected implements kernels.Kernel.
func (k *Kernel) RunInjected(dev arch.Device, inj arch.Injection, rng *xrand.RNG) *metrics.Report {
	return k.RunInjectedOn(k.Golden(dev), inj, rng)
}

// RunInjectedOn implements kernels.Kernel.
func (k *Kernel) RunInjectedOn(g kernels.GoldenState, inj arch.Injection, rng *xrand.RNG) *metrics.Report {
	return k.RunInjectedPooled(g, inj, rng, nil)
}

// RunInjectedPooled implements kernels.Kernel: the corrupted-cell map and
// delta buffers come from the handle's scratch pool, the report from the
// session pool.
func (k *Kernel) RunInjectedPooled(g kernels.GoldenState, inj arch.Injection, rng *xrand.RNG, reports *metrics.ReportPool) *metrics.Report {
	gp := g.(*goldenProduct)
	sc := gp.scr.Get()
	rep := k.runInjectedWith(gp, sc, inj, rng, reports)
	gp.scr.Put(sc)
	return rep
}

// RunInjectedBatch implements kernels.BatchRunner: the whole batch shares
// one borrowed scratch working set, keeping the corrupted-cell map and the
// golden rows it touches cache-hot across strikes.
func (k *Kernel) RunInjectedBatch(gs kernels.GoldenState, batch []kernels.BatchStrike, reports *metrics.ReportPool) {
	gp := gs.(*goldenProduct)
	sc := gp.scr.Get()
	for i := range batch {
		batch[i].Report = k.runInjectedWith(gp, sc, batch[i].Inj, batch[i].RNG, reports)
	}
	gp.scr.Put(sc)
}

// runInjectedWith executes one injection against externally owned scratch.
func (k *Kernel) runInjectedWith(gp *goldenProduct, sc *runScratch, inj arch.Injection, rng *xrand.RNG, reports *metrics.ReportPool) *metrics.Report {
	rv := k.newRun(gp, sc, reports)
	r := &rv
	n := k.n

	switch inj.Scope {
	case arch.ScopeAccumTerm, arch.ScopeInputWord:
		// One term of one dot product transits the corrupted datapath.
		i, j, kk := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		t := k.A(i, kk) * k.B(kk, j)
		tf := inj.Flip.Apply(t, rng)
		r.record(i, j, r.goldenRow(i)[j]+(tf-t))

	case arch.ScopeOutputWord:
		i, j := rng.Intn(n), rng.Intn(n)
		g := r.goldenRow(i)[j]
		r.record(i, j, inj.Flip.Apply(g, rng))

	case arch.ScopeVectorLanes:
		// One SIMD register of already-computed C values is corrupted on
		// its way to memory: adjacent elements of one row.
		i := rng.Intn(n)
		j0 := alignedStart(rng, n, inj.Words)
		row := r.goldenRow(i)
		for w := 0; w < inj.Words && j0+w < n; w++ {
			r.record(i, j0+w, inj.Flip.Apply(row[j0+w], rng))
		}

	case arch.ScopeCacheLine:
		k.injectCacheLines(r, inj, rng)

	case arch.ScopeSharedTile:
		k.injectSharedTile(r, inj, rng)

	case arch.ScopeTaskSet:
		k.injectTaskSet(r, inj, rng)
	}

	return r.finish()
}

// alignedStart picks a line-aligned start index within [0, n).
func alignedStart(rng *xrand.RNG, n, words int) int {
	if words <= 0 {
		words = 1
	}
	slots := n / words
	if slots < 1 {
		return 0
	}
	return rng.Intn(slots) * words
}

// injectCacheLines corrupts inj.Lines distinct cache lines. A line holds
// either output data (a run of already-computed C elements, undiluted
// flips) or input data (a run of A or B, whose corruption propagates
// through the remaining real multiply-accumulates).
func (k *Kernel) injectCacheLines(r *run, inj arch.Injection, rng *xrand.RNG) {
	n := k.n
	for line := 0; line < inj.Lines; line++ {
		if rng.Bool(inj.OutputBias) {
			// Output-side: flip computed C words directly.
			i := rng.Intn(n)
			j0 := alignedStart(rng, n, inj.Words)
			row := r.goldenRow(i)
			for w := 0; w < inj.Words && j0+w < n; w++ {
				r.record(i, j0+w, inj.Flip.Apply(row[j0+w], rng))
			}
			continue
		}
		// Input-side: the line is only harmful if it is still to be
		// consumed when the strike lands.
		if rng.Float64() < inj.When {
			continue // already consumed: logically masked
		}
		if rng.Bool(0.5) {
			// A row fragment: poisons row i of C.
			i := rng.Intn(n)
			k0 := alignedStart(rng, n, inj.Words)
			row := r.goldenRow(i)
			deltas := r.sc.deltas[:0]
			ks := r.sc.ks[:0]
			for w := 0; w < inj.Words && k0+w < n; w++ {
				a := k.A(i, k0+w)
				deltas = append(deltas, inj.Flip.Apply(a, rng)-a)
				ks = append(ks, k0+w)
			}
			r.sc.deltas, r.sc.ks = deltas, ks // keep grown capacity pooled
			for j := 0; j < n; j++ {
				d := 0.0
				for t, kk := range ks {
					d += deltas[t] * k.B(kk, j)
				}
				if d != 0 {
					r.record(i, j, row[j]+d)
				}
			}
		} else {
			// B row fragment: poisons columns j0..j0+w of C.
			kk := rng.Intn(n)
			j0 := alignedStart(rng, n, inj.Words)
			for w := 0; w < inj.Words && j0+w < n; w++ {
				j := j0 + w
				b := k.B(kk, j)
				d := inj.Flip.Apply(b, rng) - b
				if d == 0 {
					continue
				}
				col := r.goldenCol(j)
				for i := 0; i < n; i++ {
					r.recordWith(i, j, col[i]+k.A(i, kk)*d, col[i])
				}
			}
		}
	}
}

// injectSharedTile corrupts words of an A tile staged in one block's
// shared memory: only that block's TileSize output columns consume the
// poisoned copy.
func (k *Kernel) injectSharedTile(r *run, inj arch.Injection, rng *xrand.RNG) {
	n := k.n
	blocksPerSide := n / TileSize
	bi, bj := rng.Intn(blocksPerSide), rng.Intn(blocksPerSide)
	i := bi*TileSize + rng.Intn(TileSize)
	k0 := alignedStart(rng, n, inj.Words)
	row := r.goldenRow(i)
	// Accumulate the combined delta of all corrupted words per output in
	// the scratch tile buffer (zeroed here, not at release: only this
	// injection scope uses it).
	deltas := r.sc.tile[:]
	clear(deltas)
	for w := 0; w < inj.Words && k0+w < n; w++ {
		kk := k0 + w
		a := k.A(i, kk)
		d := inj.Flip.Apply(a, rng) - a
		if d == 0 {
			continue
		}
		for t := 0; t < TileSize; t++ {
			deltas[t] += d * k.B(kk, bj*TileSize+t)
		}
	}
	for t, d := range deltas {
		if d != 0 {
			j := bj*TileSize + t
			r.record(i, j, row[j]+d)
		}
	}
}

// injectTaskSet mis-executes whole blocks: a corrupted scheduler entry
// either never dispatches a block (its tile keeps the initialisation
// value, zero) or dispatches it with a displaced row mapping.
func (k *Kernel) injectTaskSet(r *run, inj arch.Injection, rng *xrand.RNG) {
	n := k.n
	blocksPerSide := n / TileSize
	for t := 0; t < inj.Tasks; t++ {
		bi, bj := rng.Intn(blocksPerSide), rng.Intn(blocksPerSide)
		skip := rng.Bool(0.5)
		for i := bi * TileSize; i < (bi+1)*TileSize; i++ {
			var src []float64
			if !skip {
				src = r.goldenRow((i + 1) % n) // displaced mapping
			}
			for j := bj * TileSize; j < (bj+1)*TileSize; j++ {
				if skip {
					r.record(i, j, 0)
				} else {
					r.record(i, j, src[j])
				}
			}
		}
	}
}

// Materialize computes the full golden C as a dense grid. Intended for
// tests and small examples only: cost grows as N^3.
func (k *Kernel) Materialize() *grid.Grid {
	g := grid.New2D(k.n, k.n)
	for i := 0; i < k.n; i++ {
		for j := 0; j < k.n; j++ {
			g.Set2(j, i, k.GoldenElem(i, j))
		}
	}
	return g
}
