package kernels

import (
	"testing"
	"testing/quick"

	"radcrit/internal/k40"
	"radcrit/internal/phi"
)

func TestValueAtDeterministicAndBounded(t *testing.T) {
	for i := 0; i < 200; i++ {
		for j := 0; j < 5; j++ {
			a := ValueAt(7, i, j, 0.5, 2.0)
			b := ValueAt(7, i, j, 0.5, 2.0)
			if a != b {
				t.Fatal("ValueAt not deterministic")
			}
			if a < 0.5 || a >= 2.0 {
				t.Fatalf("ValueAt out of range: %v", a)
			}
		}
	}
}

func TestValueAtKeySensitivity(t *testing.T) {
	// Different indices and seeds must decorrelate.
	if ValueAt(1, 0, 0, 0, 1) == ValueAt(2, 0, 0, 0, 1) {
		t.Fatal("seed not mixed in")
	}
	if ValueAt(1, 0, 0, 0, 1) == ValueAt(1, 1, 0, 0, 1) {
		t.Fatal("i not mixed in")
	}
	if ValueAt(1, 0, 0, 0, 1) == ValueAt(1, 0, 1, 0, 1) {
		t.Fatal("k not mixed in")
	}
}

func TestValueAtDistribution(t *testing.T) {
	// Mean of uniform [0,1) values keyed by index should be ~0.5.
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += ValueAt(99, i, 0, 0, 1)
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("ValueAt mean %v, want ~0.5", mean)
	}
}

func TestValueAtRangeProperty(t *testing.T) {
	f := func(seed uint64, i, k int16) bool {
		v := ValueAt(seed, int(i), int(k), -3, 7)
		return v >= -3 && v < 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWords32(t *testing.T) {
	if Words32(8) != 16 {
		t.Fatal("8 words64 should be 16 words32")
	}
	if Words32(0) != 1 {
		t.Fatal("floor of 1 not applied")
	}
}

func TestProgressConsumed(t *testing.T) {
	if ProgressConsumed(0, 0, 0.5) {
		t.Fatal("zero total should never consume")
	}
	if !ProgressConsumed(5, 10, 0.5) {
		t.Fatal("index at the threshold should consume")
	}
	if ProgressConsumed(4, 10, 0.5) {
		t.Fatal("index before the threshold should not consume")
	}
	if !ProgressConsumed(0, 10, 0) {
		t.Fatal("when=0 consumes everything")
	}
}

func TestVectorWords(t *testing.T) {
	if VectorWords(phi.New(), 64) != 8 {
		t.Fatal("Phi has 8 64-bit lanes")
	}
	if VectorWords(phi.New(), 32) != 16 {
		t.Fatal("Phi has 16 32-bit lanes")
	}
	if VectorWords(k40.New(), 64) != 1 {
		t.Fatal("scalar device floor is 1")
	}
}
