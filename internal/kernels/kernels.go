// Package kernels defines the benchmark-kernel abstraction shared by the
// four workloads of the paper (DGEMM, LavaMD, HotSpot, CLAMR) and the
// helpers they share.
//
// A kernel knows how to (a) describe its occupancy of a device (Profile,
// Table II of the paper), (b) classify itself (Table I), and (c) run one
// irradiated execution: apply an arch.Injection to its own live state and
// report the resulting output mismatches against the fault-free golden
// output. Error propagation is performed by the kernel's real mathematics
// — a corrupted matrix element re-enters the actual dot products, a
// corrupted temperature cell is smoothed by the actual stencil — so the
// paper's observed behaviours are emergent rather than scripted.
//
// For the two non-iterative kernels (DGEMM, LavaMD) faulty runs use exact
// delta propagation: only outputs reachable from the corrupted state are
// recomputed, and golden values are derived lazily. This is mathematically
// identical to a full faulty re-execution because the untouched outputs are
// bit-identical by construction, and it makes paper-scale inputs (8192x8192
// matrices) tractable inside a campaign of thousands of executions.
package kernels

import (
	"sync"
	"sync/atomic"

	"radcrit/internal/arch"
	"radcrit/internal/metrics"
	"radcrit/internal/xrand"
)

// Class is a kernel's Table I classification.
type Class struct {
	// BoundBy is "CPU" or "Memory".
	BoundBy string
	// LoadBalance is "Balanced" or "Imbalanced".
	LoadBalance string
	// MemoryAccess is "Regular" or "Irregular".
	MemoryAccess string
}

// GoldenState is an opaque handle to a kernel's precomputed fault-free
// state on one device: DGEMM's lazily materialised golden product rows,
// LavaMD's potential cache, HotSpot's and CLAMR's snapshot timelines.
// Handles are safe for concurrent use by many irradiated executions, and
// every value read through a handle is a pure function of the kernel and
// device, so sharing one handle across strikes — in any order, from any
// number of goroutines — is bit-identical to deriving clean state per
// strike. Campaign engines obtain a handle once per (kernel, device)
// session and reuse it for every strike instead of paying the per-strike
// re-derivation.
type GoldenState any

// Kernel is one benchmark workload at one input configuration.
type Kernel interface {
	// Name is the benchmark name ("DGEMM", "LavaMD", "HotSpot", "CLAMR").
	Name() string
	// Domain is the Table II application domain.
	Domain() string
	// InputLabel names this input configuration (e.g. "2048x2048").
	InputLabel() string
	// Class returns the Table I classification.
	Class() Class
	// Profile describes the kernel's occupancy of dev.
	Profile(dev arch.Device) arch.Profile
	// Golden returns the kernel's reusable golden-state handle for dev.
	// Handles are memoised: repeated calls return the same handle, so the
	// underlying clean state is derived at most once per device.
	Golden(dev arch.Device) GoldenState
	// RunInjected executes the kernel under the given injection and
	// returns the output mismatch report against the golden output.
	// An empty report means the corruption was logically masked.
	// It is shorthand for RunInjectedOn(Golden(dev), inj, rng).
	RunInjected(dev arch.Device, inj arch.Injection, rng *xrand.RNG) *metrics.Report
	// RunInjectedOn is RunInjected against a prepared golden-state handle
	// (from Golden on the desired device). It is shorthand for
	// RunInjectedPooled(g, inj, rng, nil): the report is freshly
	// allocated and belongs to the caller outright.
	RunInjectedOn(g GoldenState, inj arch.Injection, rng *xrand.RNG) *metrics.Report
	// RunInjectedPooled is the zero-allocation hot path of campaign
	// engines: internal working state (difference grids, corrupted-cell
	// maps) is borrowed from pools owned by the golden-state handle, and
	// the returned report is borrowed from reports when it is non-nil.
	// The caller owns the returned report and may hand it back to the
	// pool (injector.Session.ReleaseReport) once no reference to it can
	// be used again; a nil reports pool degrades to plain allocation.
	// Pooled and unpooled runs are bit-identical for the same (handle,
	// injection, RNG state) — pinned by TestPooledKernelPathsBitIdentical.
	RunInjectedPooled(g GoldenState, inj arch.Injection, rng *xrand.RNG, reports *metrics.ReportPool) *metrics.Report
}

// BatchStrike is one strike of a RunInjectedBatch call: the resolved
// injection, the strike's private RNG (already split per strike index, so
// batch members are order-independent), and the output slot the kernel
// fills with the mismatch report. Report ownership follows the
// RunInjectedPooled contract: the caller owns every filled report and
// releases it after consumption; the kernel must not retain references
// past the batch call.
type BatchStrike struct {
	Inj arch.Injection
	RNG *xrand.RNG
	// Report is filled by the batch runner; an empty report means the
	// corruption was logically masked.
	Report *metrics.Report
}

// BatchRunner is the optional cross-strike batching seam (DESIGN.md §13):
// kernels that implement it execute a whole slice of strikes against one
// golden handle, keeping handle-local scratch, golden-sum tables, and
// memoised timeline states cache-hot across the batch. Each strike must
// produce a report bit-identical to a standalone RunInjectedPooled call
// with the same (handle, injection, RNG state) — batching is a locality
// optimisation, never a semantic one.
type BatchRunner interface {
	RunInjectedBatch(g GoldenState, batch []BatchStrike, reports *metrics.ReportPool)
}

// RunBatch executes a batch of strikes through k's BatchRunner seam when
// it has one, and otherwise through RunBatchFallback.
func RunBatch(k Kernel, g GoldenState, batch []BatchStrike, reports *metrics.ReportPool) {
	if br, ok := k.(BatchRunner); ok {
		br.RunInjectedBatch(g, batch, reports)
		return
	}
	RunBatchFallback(k, g, batch, reports)
}

// RunBatchFallback is the default BatchRunner: a plain loop over
// RunInjectedPooled. Kernel batch implementations are pinned bit-identical
// to it by the campaign engine's pooled property suites.
func RunBatchFallback(k Kernel, g GoldenState, batch []BatchStrike, reports *metrics.ReportPool) {
	for i := range batch {
		batch[i].Report = k.RunInjectedPooled(g, batch[i].Inj, batch[i].RNG, reports)
	}
}

// DenseRunner is implemented by kernels that can materialise full golden
// and faulty output grids (used by examples and the Fig. 9 locality map).
type DenseRunner interface {
	Kernel
	// RunDense returns the golden and faulty outputs as dense grids.
	RunDense(dev arch.Device, inj arch.Injection, rng *xrand.RNG) (golden, faulty interface{ Data() []float64 })
}

// TimelineMemo is a bounded, concurrency-safe memo of reconstructed
// golden states keyed by timestep, shared by the iterative kernels'
// golden-state handles (HotSpot, CLAMR): strikes landing on the same step
// stop re-stepping from the nearest snapshot. compute must be a pure
// function of the step; memoised values are shared and must be treated as
// read-only by callers. The entry cap bounds paper-scale memory — racing
// writers can overshoot it by at most one entry each, which is benign.
type TimelineMemo[T any] struct {
	states sync.Map // int -> T
	cached atomic.Int32
}

// timelineMemoCap bounds the per-handle memo: enough to cover every
// distinct injection step of a test-scale campaign.
const timelineMemoCap = 96

// At returns the memoised state for step t, computing it on a miss.
func (m *TimelineMemo[T]) At(t int, compute func(int) T) T {
	if v, ok := m.states.Load(t); ok {
		return v.(T)
	}
	st := compute(t)
	if m.cached.Load() < timelineMemoCap {
		if v, loaded := m.states.LoadOrStore(t, st); loaded {
			return v.(T)
		}
		m.cached.Add(1)
	}
	return st
}

// ValueAt returns a deterministic pseudo-random value in [lo, hi) keyed by
// (seed, i, k). It lets huge matrices exist without storage: element (i,k)
// is a pure function of the key, so lazy golden evaluation and full
// materialisation agree bit-for-bit.
func ValueAt(seed uint64, i, k int, lo, hi float64) float64 {
	h := seed
	h ^= uint64(i)*0x9E3779B97F4A7C15 + 0x7F4A7C15
	h = mix(h)
	h ^= uint64(k)*0xC2B2AE3D27D4EB4F + 0x27D4EB4F
	h = mix(h)
	u := float64(h>>11) / (1 << 53)
	return lo + u*(hi-lo)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Words32 converts a 64-bit word count from the device model into a 32-bit
// word count for single-precision kernels (HotSpot): the same cache line
// holds twice as many float32 values.
func Words32(words64 int) int {
	w := words64 * 2
	if w < 1 {
		w = 1
	}
	return w
}

// ProgressConsumed reports whether a consumer at progress frac (position
// idx of total) runs after the injection time when, i.e. observes the
// corrupted state.
func ProgressConsumed(idx, total int, when float64) bool {
	if total <= 0 {
		return false
	}
	return float64(idx)/float64(total) >= when
}

// VectorWords returns the SIMD lane count in output words for a device
// (minimum 1 for scalar devices).
func VectorWords(dev arch.Device, precisionBits int) int {
	vw := dev.Model().VectorWidthBits / precisionBits
	if vw < 1 {
		vw = 1
	}
	return vw
}
