// Package kernels defines the benchmark-kernel abstraction shared by the
// four workloads of the paper (DGEMM, LavaMD, HotSpot, CLAMR) and the
// helpers they share.
//
// A kernel knows how to (a) describe its occupancy of a device (Profile,
// Table II of the paper), (b) classify itself (Table I), and (c) run one
// irradiated execution: apply an arch.Injection to its own live state and
// report the resulting output mismatches against the fault-free golden
// output. Error propagation is performed by the kernel's real mathematics
// — a corrupted matrix element re-enters the actual dot products, a
// corrupted temperature cell is smoothed by the actual stencil — so the
// paper's observed behaviours are emergent rather than scripted.
//
// For the two non-iterative kernels (DGEMM, LavaMD) faulty runs use exact
// delta propagation: only outputs reachable from the corrupted state are
// recomputed, and golden values are derived lazily. This is mathematically
// identical to a full faulty re-execution because the untouched outputs are
// bit-identical by construction, and it makes paper-scale inputs (8192x8192
// matrices) tractable inside a campaign of thousands of executions.
package kernels

import (
	"radcrit/internal/arch"
	"radcrit/internal/metrics"
	"radcrit/internal/xrand"
)

// Class is a kernel's Table I classification.
type Class struct {
	// BoundBy is "CPU" or "Memory".
	BoundBy string
	// LoadBalance is "Balanced" or "Imbalanced".
	LoadBalance string
	// MemoryAccess is "Regular" or "Irregular".
	MemoryAccess string
}

// Kernel is one benchmark workload at one input configuration.
type Kernel interface {
	// Name is the benchmark name ("DGEMM", "LavaMD", "HotSpot", "CLAMR").
	Name() string
	// Domain is the Table II application domain.
	Domain() string
	// InputLabel names this input configuration (e.g. "2048x2048").
	InputLabel() string
	// Class returns the Table I classification.
	Class() Class
	// Profile describes the kernel's occupancy of dev.
	Profile(dev arch.Device) arch.Profile
	// RunInjected executes the kernel under the given injection and
	// returns the output mismatch report against the golden output.
	// An empty report means the corruption was logically masked.
	RunInjected(dev arch.Device, inj arch.Injection, rng *xrand.RNG) *metrics.Report
}

// DenseRunner is implemented by kernels that can materialise full golden
// and faulty output grids (used by examples and the Fig. 9 locality map).
type DenseRunner interface {
	Kernel
	// RunDense returns the golden and faulty outputs as dense grids.
	RunDense(dev arch.Device, inj arch.Injection, rng *xrand.RNG) (golden, faulty interface{ Data() []float64 })
}

// ValueAt returns a deterministic pseudo-random value in [lo, hi) keyed by
// (seed, i, k). It lets huge matrices exist without storage: element (i,k)
// is a pure function of the key, so lazy golden evaluation and full
// materialisation agree bit-for-bit.
func ValueAt(seed uint64, i, k int, lo, hi float64) float64 {
	h := seed
	h ^= uint64(i)*0x9E3779B97F4A7C15 + 0x7F4A7C15
	h = mix(h)
	h ^= uint64(k)*0xC2B2AE3D27D4EB4F + 0x27D4EB4F
	h = mix(h)
	u := float64(h>>11) / (1 << 53)
	return lo + u*(hi-lo)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Words32 converts a 64-bit word count from the device model into a 32-bit
// word count for single-precision kernels (HotSpot): the same cache line
// holds twice as many float32 values.
func Words32(words64 int) int {
	w := words64 * 2
	if w < 1 {
		w = 1
	}
	return w
}

// ProgressConsumed reports whether a consumer at progress frac (position
// idx of total) runs after the injection time when, i.e. observes the
// corrupted state.
func ProgressConsumed(idx, total int, when float64) bool {
	if total <= 0 {
		return false
	}
	return float64(idx)/float64(total) >= when
}

// VectorWords returns the SIMD lane count in output words for a device
// (minimum 1 for scalar devices).
func VectorWords(dev arch.Device, precisionBits int) int {
	vw := dev.Model().VectorWidthBits / precisionBits
	if vw < 1 {
		vw = 1
	}
	return vw
}
