package metrics

import (
	"testing"

	"radcrit/internal/grid"
)

func sampleReport() *Report {
	r := &Report{Dims: grid.Dims{X: 4, Y: 4, Z: 1}, TotalElements: 16, ThresholdPct: 2}
	r.Mismatches = append(r.Mismatches,
		Mismatch{Coord: grid.Coord{X: 1, Y: 2}, Read: 5, Expected: 4, RelErrPct: 25},
		Mismatch{Coord: grid.Coord{X: 3, Y: 0}, Read: 2, Expected: 4, RelErrPct: 50},
		Mismatch{Coord: grid.Coord{X: 0, Y: 1}, Read: 4.1, Expected: 4, RelErrPct: 2.5},
	)
	return r
}

func TestReportReset(t *testing.T) {
	r := sampleReport()
	_ = r.Coords() // populate the caches so Reset must drop them
	_ = r.RelErrsPct()
	r.Reset()
	if r.Count() != 0 || r.TotalElements != 0 || r.ThresholdPct != 0 || r.Dims != (grid.Dims{}) {
		t.Fatalf("Reset left state behind: %+v", r)
	}
	if len(r.Coords()) != 0 || len(r.RelErrsPct()) != 0 {
		t.Fatal("Reset kept stale accessor caches")
	}
}

func TestReportClone(t *testing.T) {
	r := sampleReport()
	c := r.Clone()
	if c.Dims != r.Dims || c.TotalElements != r.TotalElements || c.ThresholdPct != r.ThresholdPct {
		t.Fatalf("clone header differs: %+v vs %+v", c, r)
	}
	if len(c.Mismatches) != len(r.Mismatches) {
		t.Fatalf("clone mismatch count %d != %d", len(c.Mismatches), len(r.Mismatches))
	}
	// Deep copy: resetting the original must not disturb the clone.
	r.Reset()
	if len(c.Mismatches) != 3 || c.Mismatches[0].Read != 5 {
		t.Fatal("clone shares storage with the recycled original")
	}
}

func TestReportPoolRecyclesAndDegrades(t *testing.T) {
	var p ReportPool
	r := p.Get(grid.Dims{X: 2, Y: 2, Z: 1}, 4)
	if r.Dims.X != 2 || r.TotalElements != 4 || r.Count() != 0 {
		t.Fatalf("pooled Get shape wrong: %+v", r)
	}
	r.Mismatches = append(r.Mismatches, Mismatch{Read: 1})
	p.Put(r)
	r2 := p.Get(grid.Dims{X: 8, Y: 1, Z: 1}, 8)
	if r2.Count() != 0 || r2.Dims.X != 8 {
		t.Fatalf("recycled report not reset: %+v", r2)
	}
	// Nil pool and nil report degrade to plain behaviour, no panics.
	var nilPool *ReportPool
	r3 := nilPool.Get(grid.Dims{X: 1, Y: 1, Z: 1}, 1)
	if r3 == nil || r3.TotalElements != 1 {
		t.Fatal("nil pool Get did not allocate")
	}
	nilPool.Put(r3)
	p.Put(nil)
}

func TestCoordsAndRelErrsCached(t *testing.T) {
	r := sampleReport()
	c1, c2 := r.Coords(), r.Coords()
	if &c1[0] != &c2[0] {
		t.Error("Coords rebuilt despite unchanged mismatches")
	}
	e1, e2 := r.RelErrsPct(), r.RelErrsPct()
	if &e1[0] != &e2[0] {
		t.Error("RelErrsPct rebuilt despite unchanged mismatches")
	}
	for i := 1; i < len(e1); i++ {
		if e1[i-1] > e1[i] {
			t.Fatalf("RelErrsPct not sorted: %v", e1)
		}
	}
	// Appending a mismatch must invalidate both caches.
	r.Mismatches = append(r.Mismatches, Mismatch{Coord: grid.Coord{X: 2, Y: 2}, RelErrPct: 9})
	if len(r.Coords()) != 4 || len(r.RelErrsPct()) != 4 {
		t.Fatal("caches served stale lengths after append")
	}
	if got := r.Coords()[3]; got != (grid.Coord{X: 2, Y: 2}) {
		t.Fatalf("rebuilt coords wrong: %+v", got)
	}
}
