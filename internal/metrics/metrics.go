// Package metrics implements the paper's error-criticality metrics (§III):
//
//  1. number of incorrect elements — how many output elements differ from
//     the fault-free ("golden") output;
//  2. relative error — |read-expected| / |expected| × 100 per element;
//  3. mean relative error — the average of (2) over all corrupted elements
//     of one execution;
//  4. spatial locality — the geometric pattern of the corrupted elements
//     (single, line, square, cubic, or random).
//
// The relative-error threshold filter (default 2%, §III) removes mismatches
// that an imprecise-computing consumer would accept as correct; executions
// with no mismatch left after filtering are no longer counted as SDCs.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"radcrit/internal/grid"
)

// DefaultThresholdPct is the paper's conservative relative-error filter.
const DefaultThresholdPct = 2.0

// InfiniteRelErr is the relative error assigned when the expected value is
// exactly zero but the read value is not: the discrepancy cannot be
// expressed as a percentage, so it is treated as larger than any threshold.
const InfiniteRelErr = math.MaxFloat64

// RelativeErrorPct returns |read-expected|/|expected| in percent.
// If expected is 0 and read is not, it returns InfiniteRelErr.
// NaN or infinite reads are treated as maximally wrong.
func RelativeErrorPct(read, expected float64) float64 {
	if read == expected {
		return 0
	}
	if math.IsNaN(read) || math.IsInf(read, 0) {
		return InfiniteRelErr
	}
	if expected == 0 {
		return InfiniteRelErr
	}
	return math.Abs(read-expected) / math.Abs(expected) * 100
}

// Mismatch is one corrupted output element.
type Mismatch struct {
	Coord     grid.Coord
	Read      float64
	Expected  float64
	RelErrPct float64
}

// Report holds the criticality metrics of one execution's output against
// its golden output.
//
// Reports are cheap to recycle: a campaign session borrows them from a
// ReportPool, and Reset returns one to its empty state while keeping the
// mismatch slice's capacity. Use pointers — the lazily built accessor
// caches make Report values non-copyable (go vet enforces this).
type Report struct {
	// Dims is the shape of the compared output.
	Dims grid.Dims
	// TotalElements is the number of output elements compared.
	TotalElements int
	// Mismatches lists every corrupted element. Builders append here
	// directly; established mismatches must never be mutated in place
	// (the accessor caches key off the slice length only).
	Mismatches []Mismatch
	// ThresholdPct is the relative-error filter already applied to
	// Mismatches (0 means unfiltered).
	ThresholdPct float64

	// coords and relErrs cache the Coords/RelErrsPct derivations, which
	// the figure builders request once per threshold per report. Atomic
	// pointers keep concurrent readers race-free: racing builders compute
	// identical caches and either may win.
	coords  atomic.Pointer[coordsCache]
	relErrs atomic.Pointer[relErrsCache]
}

type coordsCache struct {
	n      int
	coords []grid.Coord
}

type relErrsCache struct {
	n    int
	errs []float64
}

// Reset returns the report to its empty state, retaining the mismatch
// slice's capacity for reuse. Any slices previously handed out by
// Mismatches, Coords or RelErrsPct become invalid.
func (r *Report) Reset() {
	r.Dims = grid.Dims{}
	r.TotalElements = 0
	r.Mismatches = r.Mismatches[:0]
	r.ThresholdPct = 0
	r.coords.Store(nil)
	r.relErrs.Store(nil)
}

// Clone returns a deep copy of the report whose lifetime is independent of
// the receiver — the escape hatch for consumers that retain reports past a
// pooled report's release (e.g. the batch campaign engine's result sink).
func (r *Report) Clone() *Report {
	out := &Report{
		Dims:          r.Dims,
		TotalElements: r.TotalElements,
		ThresholdPct:  r.ThresholdPct,
	}
	if len(r.Mismatches) > 0 {
		out.Mismatches = append(make([]Mismatch, 0, len(r.Mismatches)), r.Mismatches...)
	}
	return out
}

// ReportPool recycles Reports across the strikes of a campaign session so
// the hot path stops allocating one report (plus its mismatch slice) per
// execution. A nil *ReportPool is valid and degrades to plain allocation,
// which is how the unpooled compat paths run. Safe for concurrent use.
//
// Ownership contract (DESIGN.md §8): Get transfers ownership to the
// caller; Put takes it back and must only be called once no reference to
// the report — including its Mismatches backing array — can be used again.
// Callers that need to retain a pooled report Clone it instead.
type ReportPool struct {
	pool sync.Pool
}

// Get borrows an empty report shaped (dims, totalElements).
func (p *ReportPool) Get(dims grid.Dims, totalElements int) *Report {
	if p == nil {
		return &Report{Dims: dims, TotalElements: totalElements}
	}
	r, ok := p.pool.Get().(*Report)
	if !ok {
		r = &Report{}
	}
	r.Dims = dims
	r.TotalElements = totalElements
	return r
}

// Put resets r and returns it to the pool. Nil pools and nil reports are
// no-ops, so release paths need no guards.
func (p *ReportPool) Put(r *Report) {
	if p == nil || r == nil {
		return
	}
	r.Reset()
	p.pool.Put(r)
}

// Evaluate compares observed against golden and returns the unfiltered
// report. It panics if the shapes differ — comparing different experiments
// is a caller bug, not a data condition.
func Evaluate(golden, observed *grid.Grid) *Report {
	if golden.Dims() != observed.Dims() {
		panic("metrics: Evaluate on grids of different shapes")
	}
	r := &Report{Dims: golden.Dims(), TotalElements: golden.Len()}
	gd, od := golden.Data(), observed.Data()
	for i := range gd {
		if gd[i] == od[i] {
			continue
		}
		r.Mismatches = append(r.Mismatches, Mismatch{
			Coord:     golden.CoordOf(i),
			Read:      od[i],
			Expected:  gd[i],
			RelErrPct: RelativeErrorPct(od[i], gd[i]),
		})
	}
	return r
}

// Count returns the number of incorrect elements (metric 1).
func (r *Report) Count() int { return len(r.Mismatches) }

// IsSDC reports whether the execution shows any corruption under the
// report's current filter.
func (r *Report) IsSDC() bool { return len(r.Mismatches) > 0 }

// MeanRelErrPct returns the mean relative error (metric 3) in percent.
// Elements with unrepresentable (infinite) relative error are capped at
// cap before averaging; pass math.Inf(1) to disable capping. The paper's
// figures cap at 100% (DGEMM) or 20,000% (LavaMD) for readability.
func (r *Report) MeanRelErrPct(cap float64) float64 {
	if len(r.Mismatches) == 0 {
		return 0
	}
	var sum float64
	for _, m := range r.Mismatches {
		e := m.RelErrPct
		if e > cap {
			e = cap
		}
		sum += e
	}
	return sum / float64(len(r.Mismatches))
}

// MaxRelErrPct returns the largest per-element relative error.
func (r *Report) MaxRelErrPct() float64 {
	var mx float64
	for _, m := range r.Mismatches {
		if m.RelErrPct > mx {
			mx = m.RelErrPct
		}
	}
	return mx
}

// MinRelErrPct returns the smallest per-element relative error, or 0 when
// there are no mismatches.
func (r *Report) MinRelErrPct() float64 {
	if len(r.Mismatches) == 0 {
		return 0
	}
	mn := math.Inf(1)
	for _, m := range r.Mismatches {
		if m.RelErrPct < mn {
			mn = m.RelErrPct
		}
	}
	return mn
}

// Filter returns a new report keeping only mismatches with relative error
// strictly greater than thresholdPct (§III: "we ignore all incorrect
// elements whose relative error is lower than 2%"). The receiver is not
// modified, so different consumers can apply different filters to the same
// logged execution.
func (r *Report) Filter(thresholdPct float64) *Report {
	out := &Report{
		Dims:          r.Dims,
		TotalElements: r.TotalElements,
		ThresholdPct:  thresholdPct,
	}
	for _, m := range r.Mismatches {
		if m.RelErrPct > thresholdPct {
			out.Mismatches = append(out.Mismatches, m)
		}
	}
	return out
}

// CorruptedFraction returns the fraction of output elements corrupted.
func (r *Report) CorruptedFraction() float64 {
	if r.TotalElements == 0 {
		return 0
	}
	return float64(len(r.Mismatches)) / float64(r.TotalElements)
}

// Coords returns the coordinates of all mismatches. The slice comes from
// a lazily built cache shared by every caller (the figure builders ask
// once per threshold per report): treat it as read-only. It is valid until
// the report is Reset.
func (r *Report) Coords() []grid.Coord {
	if c := r.coords.Load(); c != nil && c.n == len(r.Mismatches) {
		return c.coords
	}
	cs := make([]grid.Coord, len(r.Mismatches))
	for i, m := range r.Mismatches {
		cs[i] = m.Coord
	}
	r.coords.Store(&coordsCache{n: len(cs), coords: cs})
	return cs
}

// Locality classifies the spatial pattern of the mismatches (metric 4).
func (r *Report) Locality() Pattern {
	return Classify(r.Dims, r.Coords())
}

// RelErrsPct returns the per-element relative errors, sorted ascending.
// Like Coords, the slice comes from a lazily built shared cache: treat it
// as read-only; it is valid until the report is Reset.
func (r *Report) RelErrsPct() []float64 {
	if c := r.relErrs.Load(); c != nil && c.n == len(r.Mismatches) {
		return c.errs
	}
	es := make([]float64, len(r.Mismatches))
	for i, m := range r.Mismatches {
		es[i] = m.RelErrPct
	}
	sort.Float64s(es)
	r.relErrs.Store(&relErrsCache{n: len(es), errs: es})
	return es
}
