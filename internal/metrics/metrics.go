// Package metrics implements the paper's error-criticality metrics (§III):
//
//  1. number of incorrect elements — how many output elements differ from
//     the fault-free ("golden") output;
//  2. relative error — |read-expected| / |expected| × 100 per element;
//  3. mean relative error — the average of (2) over all corrupted elements
//     of one execution;
//  4. spatial locality — the geometric pattern of the corrupted elements
//     (single, line, square, cubic, or random).
//
// The relative-error threshold filter (default 2%, §III) removes mismatches
// that an imprecise-computing consumer would accept as correct; executions
// with no mismatch left after filtering are no longer counted as SDCs.
package metrics

import (
	"math"
	"sort"

	"radcrit/internal/grid"
)

// DefaultThresholdPct is the paper's conservative relative-error filter.
const DefaultThresholdPct = 2.0

// InfiniteRelErr is the relative error assigned when the expected value is
// exactly zero but the read value is not: the discrepancy cannot be
// expressed as a percentage, so it is treated as larger than any threshold.
const InfiniteRelErr = math.MaxFloat64

// RelativeErrorPct returns |read-expected|/|expected| in percent.
// If expected is 0 and read is not, it returns InfiniteRelErr.
// NaN or infinite reads are treated as maximally wrong.
func RelativeErrorPct(read, expected float64) float64 {
	if read == expected {
		return 0
	}
	if math.IsNaN(read) || math.IsInf(read, 0) {
		return InfiniteRelErr
	}
	if expected == 0 {
		return InfiniteRelErr
	}
	return math.Abs(read-expected) / math.Abs(expected) * 100
}

// Mismatch is one corrupted output element.
type Mismatch struct {
	Coord     grid.Coord
	Read      float64
	Expected  float64
	RelErrPct float64
}

// Report holds the criticality metrics of one execution's output against
// its golden output.
type Report struct {
	// Dims is the shape of the compared output.
	Dims grid.Dims
	// TotalElements is the number of output elements compared.
	TotalElements int
	// Mismatches lists every corrupted element.
	Mismatches []Mismatch
	// ThresholdPct is the relative-error filter already applied to
	// Mismatches (0 means unfiltered).
	ThresholdPct float64
}

// Evaluate compares observed against golden and returns the unfiltered
// report. It panics if the shapes differ — comparing different experiments
// is a caller bug, not a data condition.
func Evaluate(golden, observed *grid.Grid) *Report {
	if golden.Dims() != observed.Dims() {
		panic("metrics: Evaluate on grids of different shapes")
	}
	r := &Report{Dims: golden.Dims(), TotalElements: golden.Len()}
	gd, od := golden.Data(), observed.Data()
	for i := range gd {
		if gd[i] == od[i] {
			continue
		}
		r.Mismatches = append(r.Mismatches, Mismatch{
			Coord:     golden.CoordOf(i),
			Read:      od[i],
			Expected:  gd[i],
			RelErrPct: RelativeErrorPct(od[i], gd[i]),
		})
	}
	return r
}

// Count returns the number of incorrect elements (metric 1).
func (r *Report) Count() int { return len(r.Mismatches) }

// IsSDC reports whether the execution shows any corruption under the
// report's current filter.
func (r *Report) IsSDC() bool { return len(r.Mismatches) > 0 }

// MeanRelErrPct returns the mean relative error (metric 3) in percent.
// Elements with unrepresentable (infinite) relative error are capped at
// cap before averaging; pass math.Inf(1) to disable capping. The paper's
// figures cap at 100% (DGEMM) or 20,000% (LavaMD) for readability.
func (r *Report) MeanRelErrPct(cap float64) float64 {
	if len(r.Mismatches) == 0 {
		return 0
	}
	var sum float64
	for _, m := range r.Mismatches {
		e := m.RelErrPct
		if e > cap {
			e = cap
		}
		sum += e
	}
	return sum / float64(len(r.Mismatches))
}

// MaxRelErrPct returns the largest per-element relative error.
func (r *Report) MaxRelErrPct() float64 {
	var mx float64
	for _, m := range r.Mismatches {
		if m.RelErrPct > mx {
			mx = m.RelErrPct
		}
	}
	return mx
}

// MinRelErrPct returns the smallest per-element relative error, or 0 when
// there are no mismatches.
func (r *Report) MinRelErrPct() float64 {
	if len(r.Mismatches) == 0 {
		return 0
	}
	mn := math.Inf(1)
	for _, m := range r.Mismatches {
		if m.RelErrPct < mn {
			mn = m.RelErrPct
		}
	}
	return mn
}

// Filter returns a new report keeping only mismatches with relative error
// strictly greater than thresholdPct (§III: "we ignore all incorrect
// elements whose relative error is lower than 2%"). The receiver is not
// modified, so different consumers can apply different filters to the same
// logged execution.
func (r *Report) Filter(thresholdPct float64) *Report {
	out := &Report{
		Dims:          r.Dims,
		TotalElements: r.TotalElements,
		ThresholdPct:  thresholdPct,
	}
	for _, m := range r.Mismatches {
		if m.RelErrPct > thresholdPct {
			out.Mismatches = append(out.Mismatches, m)
		}
	}
	return out
}

// CorruptedFraction returns the fraction of output elements corrupted.
func (r *Report) CorruptedFraction() float64 {
	if r.TotalElements == 0 {
		return 0
	}
	return float64(len(r.Mismatches)) / float64(r.TotalElements)
}

// Coords returns the coordinates of all mismatches.
func (r *Report) Coords() []grid.Coord {
	cs := make([]grid.Coord, len(r.Mismatches))
	for i, m := range r.Mismatches {
		cs[i] = m.Coord
	}
	return cs
}

// Locality classifies the spatial pattern of the mismatches (metric 4).
func (r *Report) Locality() Pattern {
	return Classify(r.Dims, r.Coords())
}

// RelErrsPct returns the per-element relative errors, sorted ascending.
func (r *Report) RelErrsPct() []float64 {
	es := make([]float64, len(r.Mismatches))
	for i, m := range r.Mismatches {
		es[i] = m.RelErrPct
	}
	sort.Float64s(es)
	return es
}
