package metrics

import (
	"testing"
	"testing/quick"

	"radcrit/internal/grid"
)

func TestFilterPreservesShape(t *testing.T) {
	r := makeReport(t, 8, map[grid.Coord]float64{
		{X: 0, Y: 0}: 10.05,
		{X: 3, Y: 4}: 20,
	})
	f := r.Filter(2)
	if f.Dims != r.Dims || f.TotalElements != r.TotalElements {
		t.Fatal("filter must preserve output shape metadata")
	}
}

func TestFilterIdempotentProperty(t *testing.T) {
	r := makeReport(t, 8, map[grid.Coord]float64{
		{X: 0, Y: 0}: 10.05,
		{X: 1, Y: 0}: 11,
		{X: 2, Y: 0}: 15,
		{X: 3, Y: 0}: 100,
	})
	f := func(raw uint8) bool {
		th := float64(raw) / 4
		once := r.Filter(th)
		twice := once.Filter(th)
		return once.Count() == twice.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFullGridCorruptionIsSquare(t *testing.T) {
	// CLAMR frequently floods the whole mesh: that must classify as
	// square (structured 2D spread), never random.
	golden := grid.New2D(16, 16)
	golden.Fill(5)
	observed := golden.Clone()
	for i := range observed.Data() {
		observed.Data()[i] = 6
	}
	rep := Evaluate(golden, observed)
	if rep.Count() != 256 {
		t.Fatal("full corruption expected")
	}
	if rep.Locality() != Square {
		t.Fatalf("full-grid corruption = %v, want square", rep.Locality())
	}
}

func TestTwoElementsSameRowIsLine(t *testing.T) {
	// The minimal multi-element patterns at the classification boundary.
	dims := grid.Dims{X: 8, Y: 8, Z: 1}
	if got := Classify(dims, []grid.Coord{{X: 1, Y: 3}, {X: 5, Y: 3}}); got != Line {
		t.Fatalf("two in a row = %v", got)
	}
	if got := Classify(dims, []grid.Coord{{X: 1, Y: 3}, {X: 5, Y: 4}}); got != Random {
		t.Fatalf("two sharing nothing = %v", got)
	}
}

func TestDuplicateCoordinatesDoNotCrash(t *testing.T) {
	dims := grid.Dims{X: 8, Y: 8, Z: 1}
	coords := []grid.Coord{{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 1}}
	// Duplicates share every axis: a degenerate single-position set.
	if got := Classify(dims, coords); got != Single {
		t.Fatalf("duplicated coordinate set = %v, want single", got)
	}
}

func TestRelErrsPctDoesNotMutate(t *testing.T) {
	r := makeReport(t, 8, map[grid.Coord]float64{
		{X: 0, Y: 0}: 30,
		{X: 1, Y: 0}: 11,
	})
	first := r.Mismatches[0].RelErrPct
	_ = r.RelErrsPct()
	if r.Mismatches[0].RelErrPct != first {
		t.Fatal("RelErrsPct mutated the report")
	}
}
