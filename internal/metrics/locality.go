package metrics

import "radcrit/internal/grid"

// Pattern is the spatial-locality class of a set of corrupted elements
// (paper §III). "When several elements are corrupted, but they do not share
// the same position in one of the axis, they are tagged as random errors.
// When the corrupted elements share one, two, or three dimensions of the
// axis we classify them as line, square, or cubic respectively."
type Pattern int

const (
	// NoPattern means no corrupted elements (masked execution).
	NoPattern Pattern = iota
	// Single is exactly one corrupted element.
	Single
	// Line is multiple corrupted elements varying along exactly one axis.
	Line
	// Square is multiple corrupted elements spreading over two axes.
	Square
	// Cubic is multiple corrupted elements spreading over three axes.
	Cubic
	// Random is multiple corrupted elements where no two elements share a
	// position on any axis — an unstructured scatter.
	Random
)

// String returns the pattern name as used in the paper's figures.
func (p Pattern) String() string {
	switch p {
	case NoPattern:
		return "none"
	case Single:
		return "single"
	case Line:
		return "line"
	case Square:
		return "square"
	case Cubic:
		return "cubic"
	case Random:
		return "random"
	default:
		return "unknown"
	}
}

// Patterns lists all error-producing patterns in figure order.
var Patterns = []Pattern{Cubic, Square, Line, Single, Random}

// Classify returns the spatial-locality class of coords inside an output of
// shape dims.
//
// The decision procedure, matching the paper's prose:
//
//   - 0 elements → NoPattern; 1 element → Single.
//   - If the elements vary along exactly one axis they form a Line.
//   - Otherwise, if no two elements share a coordinate on any varying axis,
//     the scatter is Random.
//   - Otherwise the elements share axis positions while spreading over two
//     (Square) or three (Cubic) axes.
func Classify(dims grid.Dims, coords []grid.Coord) Pattern {
	switch len(coords) {
	case 0:
		return NoPattern
	case 1:
		return Single
	}

	distinctX := distinctCount(coords, func(c grid.Coord) int { return c.X })
	distinctY := distinctCount(coords, func(c grid.Coord) int { return c.Y })
	distinctZ := distinctCount(coords, func(c grid.Coord) int { return c.Z })

	varying := 0
	for _, d := range []int{distinctX, distinctY, distinctZ} {
		if d > 1 {
			varying++
		}
	}

	switch varying {
	case 0:
		// All coordinates identical yet len > 1 cannot happen for a set of
		// distinct mismatch positions; defensively call it Single.
		return Single
	case 1:
		return Line
	}

	// Spread over 2 or 3 axes: distinguish structured (square/cubic) from
	// random scatter. A scatter is random when no axis position repeats:
	// every varying axis has as many distinct values as elements.
	n := len(coords)
	isRandom := true
	if distinctX > 1 && distinctX < n {
		isRandom = false
	}
	if distinctY > 1 && distinctY < n {
		isRandom = false
	}
	if distinctZ > 1 && distinctZ < n {
		isRandom = false
	}
	if isRandom {
		return Random
	}
	if varying == 2 {
		return Square
	}
	return Cubic
}

func distinctCount(coords []grid.Coord, axis func(grid.Coord) int) int {
	seen := make(map[int]struct{}, len(coords))
	for _, c := range coords {
		seen[axis(c)] = struct{}{}
	}
	return len(seen)
}
