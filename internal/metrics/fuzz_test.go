package metrics

import (
	"math"
	"testing"

	"radcrit/internal/grid"
)

// FuzzReportFilter drives Report.Filter with arbitrary mismatch values and
// thresholds (including NaN, infinities and negative thresholds) and
// checks its algebraic contract: filtering only removes, kept mismatches
// all exceed the threshold, the receiver is untouched, filtering is
// idempotent at one threshold and monotonic across thresholds, and IsSDC
// agrees with MaxRelErrPct — the identity the streaming SDC counters rely
// on.
func FuzzReportFilter(f *testing.F) {
	f.Add(1.5, 1.0, 0.0, 2.0, 2.0, 5.0)
	f.Add(math.NaN(), 1.0, 3.0, 0.0, 0.0, 1.0)
	f.Add(1.0, 1.0, -4.5, -4.5, -1.0, math.NaN())
	f.Add(math.Inf(1), 2.0, 2.0, math.Inf(-1), 100.0, 1e307)

	f.Fuzz(func(t *testing.T, read1, exp1, read2, exp2, t1, t2 float64) {
		rep := &Report{
			Dims:          grid.Dims{X: 2, Y: 1, Z: 1},
			TotalElements: 2,
			Mismatches: []Mismatch{
				{Coord: grid.Coord{X: 0}, Read: read1, Expected: exp1, RelErrPct: RelativeErrorPct(read1, exp1)},
				{Coord: grid.Coord{X: 1}, Read: read2, Expected: exp2, RelErrPct: RelativeErrorPct(read2, exp2)},
			},
		}
		before := len(rep.Mismatches)

		fl := rep.Filter(t1)
		if len(rep.Mismatches) != before {
			t.Fatal("Filter mutated its receiver")
		}
		if fl.Count() > rep.Count() {
			t.Fatalf("filter grew the report: %d -> %d", rep.Count(), fl.Count())
		}
		if fl.Dims != rep.Dims || fl.TotalElements != rep.TotalElements {
			t.Fatal("filter changed report shape")
		}
		if fl.ThresholdPct != t1 && !math.IsNaN(t1) {
			t.Fatalf("filtered report records threshold %v, want %v", fl.ThresholdPct, t1)
		}
		for _, m := range fl.Mismatches {
			if !(m.RelErrPct > t1) {
				t.Fatalf("kept mismatch with RelErrPct %v under threshold %v", m.RelErrPct, t1)
			}
		}
		if again := fl.Filter(t1); again.Count() != fl.Count() {
			t.Fatalf("filter not idempotent: %d -> %d", fl.Count(), again.Count())
		}
		if fl.IsSDC() != (rep.MaxRelErrPct() > t1) {
			t.Fatalf("IsSDC %v disagrees with MaxRelErrPct %v vs threshold %v",
				fl.IsSDC(), rep.MaxRelErrPct(), t1)
		}
		// Monotonicity: a stricter threshold can only keep fewer.
		lo, hi := t1, t2
		if hi < lo {
			lo, hi = hi, lo
		}
		if rep.Filter(hi).Count() > rep.Filter(lo).Count() {
			t.Fatalf("stricter threshold %v kept more than %v", hi, lo)
		}
	})
}

// FuzzRelativeErrorPct pins the error metric's range contract: the result
// is always non-negative (or the Infinite sentinel) and zero exactly when
// read == expected.
func FuzzRelativeErrorPct(f *testing.F) {
	f.Add(1.0, 1.0)
	f.Add(0.0, 1.0)
	f.Add(math.NaN(), 0.0)
	f.Add(math.Inf(1), -2.0)

	f.Fuzz(func(t *testing.T, read, expected float64) {
		e := RelativeErrorPct(read, expected)
		if math.IsNaN(e) {
			t.Fatalf("RelativeErrorPct(%v, %v) = NaN", read, expected)
		}
		if e < 0 {
			t.Fatalf("RelativeErrorPct(%v, %v) = %v < 0", read, expected, e)
		}
		if read == expected && e != 0 {
			t.Fatalf("equal values yield error %v", e)
		}
		if e == 0 && read != expected && !math.IsNaN(read) {
			// A genuinely different finite read must register; the only
			// zero-error case is equality (NaN read maps to the sentinel).
			if math.Abs(read-expected) > 0 && math.Abs((read-expected)/expected)*100 > 0 {
				t.Fatalf("distinct values (%v, %v) yield zero error", read, expected)
			}
		}
	})
}
