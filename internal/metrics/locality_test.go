package metrics

import (
	"testing"
	"testing/quick"

	"radcrit/internal/grid"
	"radcrit/internal/xrand"
)

var dims2D = grid.Dims{X: 16, Y: 16, Z: 1}
var dims3D = grid.Dims{X: 8, Y: 8, Z: 8}

func TestClassifyEmptyAndSingle(t *testing.T) {
	if Classify(dims2D, nil) != NoPattern {
		t.Fatal("empty should be NoPattern")
	}
	if Classify(dims2D, []grid.Coord{{X: 3, Y: 4}}) != Single {
		t.Fatal("one element should be Single")
	}
}

func TestClassifyRow(t *testing.T) {
	coords := []grid.Coord{{X: 0, Y: 5}, {X: 3, Y: 5}, {X: 9, Y: 5}}
	if got := Classify(dims2D, coords); got != Line {
		t.Fatalf("row = %v, want line", got)
	}
}

func TestClassifyColumn(t *testing.T) {
	coords := []grid.Coord{{X: 7, Y: 0}, {X: 7, Y: 1}, {X: 7, Y: 15}}
	if got := Classify(dims2D, coords); got != Line {
		t.Fatalf("column = %v, want line", got)
	}
}

func TestClassify3DLine(t *testing.T) {
	coords := []grid.Coord{{X: 1, Y: 2, Z: 3}, {X: 1, Y: 2, Z: 5}}
	if got := Classify(dims3D, coords); got != Line {
		t.Fatalf("z-line = %v, want line", got)
	}
}

func TestClassifySquareBlock(t *testing.T) {
	// A 2x2 block shares rows and columns among its members.
	coords := []grid.Coord{
		{X: 2, Y: 2}, {X: 3, Y: 2},
		{X: 2, Y: 3}, {X: 3, Y: 3},
	}
	if got := Classify(dims2D, coords); got != Square {
		t.Fatalf("block = %v, want square", got)
	}
}

func TestClassifyRandomScatter(t *testing.T) {
	// No two elements share a row or a column: a permutation-like scatter.
	coords := []grid.Coord{
		{X: 1, Y: 4}, {X: 5, Y: 9}, {X: 12, Y: 2},
	}
	if got := Classify(dims2D, coords); got != Random {
		t.Fatalf("scatter = %v, want random", got)
	}
}

func TestClassifyLShapeIsSquare(t *testing.T) {
	// Two on one row plus one sharing a column: structured, spans 2 axes.
	coords := []grid.Coord{
		{X: 2, Y: 2}, {X: 5, Y: 2}, {X: 2, Y: 8},
	}
	if got := Classify(dims2D, coords); got != Square {
		t.Fatalf("L shape = %v, want square", got)
	}
}

func TestClassifyCubic(t *testing.T) {
	coords := []grid.Coord{
		{X: 1, Y: 1, Z: 1}, {X: 2, Y: 1, Z: 1},
		{X: 1, Y: 2, Z: 1}, {X: 1, Y: 1, Z: 2},
	}
	if got := Classify(dims3D, coords); got != Cubic {
		t.Fatalf("3D cluster = %v, want cubic", got)
	}
}

func TestClassify3DRandom(t *testing.T) {
	coords := []grid.Coord{
		{X: 1, Y: 2, Z: 3}, {X: 4, Y: 5, Z: 6}, {X: 7, Y: 0, Z: 1},
	}
	if got := Classify(dims3D, coords); got != Random {
		t.Fatalf("3D scatter = %v, want random", got)
	}
}

func TestClassify3DPlaneIsSquare(t *testing.T) {
	// All in the z=2 plane, sharing structure over x and y.
	coords := []grid.Coord{
		{X: 1, Y: 1, Z: 2}, {X: 2, Y: 1, Z: 2}, {X: 1, Y: 3, Z: 2}, {X: 2, Y: 3, Z: 2},
	}
	if got := Classify(dims3D, coords); got != Square {
		t.Fatalf("plane = %v, want square", got)
	}
}

func TestClassifyFullRow2D(t *testing.T) {
	var coords []grid.Coord
	for x := 0; x < dims2D.X; x++ {
		coords = append(coords, grid.Coord{X: x, Y: 3})
	}
	if got := Classify(dims2D, coords); got != Line {
		t.Fatalf("full row = %v", got)
	}
}

func TestClassifyLargeRegionIsSquare(t *testing.T) {
	// Dense sub-block bigger than any row: must be square, not random.
	var coords []grid.Coord
	for y := 4; y < 10; y++ {
		for x := 4; x < 10; x++ {
			coords = append(coords, grid.Coord{X: x, Y: y})
		}
	}
	if got := Classify(dims2D, coords); got != Square {
		t.Fatalf("region = %v, want square", got)
	}
}

func TestPatternString(t *testing.T) {
	for _, p := range []Pattern{NoPattern, Single, Line, Square, Cubic, Random, Pattern(42)} {
		if p.String() == "" {
			t.Fatalf("empty name for %d", p)
		}
	}
}

func TestPatternsListCoversErrorPatterns(t *testing.T) {
	want := map[Pattern]bool{Cubic: true, Square: true, Line: true, Single: true, Random: true}
	for _, p := range Patterns {
		delete(want, p)
	}
	if len(want) != 0 {
		t.Fatalf("Patterns missing %v", want)
	}
}

// Property: classification is permutation-invariant.
func TestClassifyOrderInvariant(t *testing.T) {
	rng := xrand.New(99)
	f := func(seed uint64) bool {
		r := rng.Split(seed)
		n := 2 + r.Intn(12)
		coords := make([]grid.Coord, n)
		for i := range coords {
			coords[i] = grid.Coord{X: r.Intn(8), Y: r.Intn(8), Z: r.Intn(8)}
		}
		base := Classify(dims3D, coords)
		shuffled := make([]grid.Coord, n)
		copy(shuffled, coords)
		r.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return Classify(dims3D, shuffled) == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: 2D coords never classify as cubic.
func TestClassify2DNeverCubic(t *testing.T) {
	rng := xrand.New(100)
	f := func(seed uint64) bool {
		r := rng.Split(seed)
		n := 1 + r.Intn(20)
		coords := make([]grid.Coord, n)
		for i := range coords {
			coords[i] = grid.Coord{X: r.Intn(16), Y: r.Intn(16)}
		}
		return Classify(dims2D, coords) != Cubic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
