package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"radcrit/internal/grid"
)

func TestRelativeErrorPct(t *testing.T) {
	cases := []struct {
		read, expected, want float64
	}{
		{10, 10, 0},
		{11, 10, 10},
		{9, 10, 10},
		{100, 10, 900}, // the paper's own example: 10x the expected -> 900%
		{-10, 10, 200},
		{0, 10, 100},
	}
	for _, c := range cases {
		if got := RelativeErrorPct(c.read, c.expected); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("RelativeErrorPct(%v,%v) = %v, want %v", c.read, c.expected, got, c.want)
		}
	}
}

func TestRelativeErrorZeroExpected(t *testing.T) {
	if RelativeErrorPct(0, 0) != 0 {
		t.Fatal("0 vs 0 should be 0")
	}
	if RelativeErrorPct(1e-300, 0) != InfiniteRelErr {
		t.Fatal("nonzero vs 0 should be infinite")
	}
}

func TestRelativeErrorNonFiniteRead(t *testing.T) {
	if RelativeErrorPct(math.NaN(), 5) != InfiniteRelErr {
		t.Fatal("NaN read should be maximal error")
	}
	if RelativeErrorPct(math.Inf(1), 5) != InfiniteRelErr {
		t.Fatal("Inf read should be maximal error")
	}
}

func TestRelativeErrorSymmetryProperty(t *testing.T) {
	f := func(e float64, deltaPct float64) bool {
		if e == 0 || math.IsNaN(e) || math.IsInf(e, 0) || math.Abs(e) > 1e300 {
			return true // read = e*(1+d) would overflow
		}
		d := math.Mod(math.Abs(deltaPct), 50)
		read := e * (1 + d/100)
		got := RelativeErrorPct(read, e)
		return math.Abs(got-d) < 1e-6 || d == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func makeReport(t *testing.T, side int, corrupt map[grid.Coord]float64) *Report {
	t.Helper()
	golden := grid.New2D(side, side)
	for i := range golden.Data() {
		golden.Data()[i] = 10
	}
	observed := golden.Clone()
	for c, v := range corrupt {
		observed.Set(c, v)
	}
	return Evaluate(golden, observed)
}

func TestEvaluateIdentical(t *testing.T) {
	g := grid.New2D(8, 8)
	g.Fill(3)
	r := Evaluate(g, g.Clone())
	if r.IsSDC() || r.Count() != 0 {
		t.Fatal("identical grids produced mismatches")
	}
	if r.Locality() != NoPattern {
		t.Fatal("no mismatch should be NoPattern")
	}
	if r.MeanRelErrPct(math.Inf(1)) != 0 {
		t.Fatal("MRE of clean run not 0")
	}
}

func TestEvaluateCountsAndCoords(t *testing.T) {
	r := makeReport(t, 4, map[grid.Coord]float64{
		{X: 1, Y: 2}: 20,
		{X: 3, Y: 0}: 5,
	})
	if r.Count() != 2 {
		t.Fatalf("Count = %d", r.Count())
	}
	if r.TotalElements != 16 {
		t.Fatalf("TotalElements = %d", r.TotalElements)
	}
	if math.Abs(r.CorruptedFraction()-2.0/16.0) > 1e-12 {
		t.Fatalf("CorruptedFraction = %v", r.CorruptedFraction())
	}
}

func TestEvaluatePanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	Evaluate(grid.New2D(2, 2), grid.New2D(2, 3))
}

func TestMeanRelErrCapping(t *testing.T) {
	r := makeReport(t, 4, map[grid.Coord]float64{
		{X: 0, Y: 0}: 11,    // 10%
		{X: 1, Y: 1}: 10000, // 99900%
	})
	uncapped := r.MeanRelErrPct(math.Inf(1))
	if math.Abs(uncapped-(10+99900)/2) > 1e-6 {
		t.Fatalf("uncapped MRE = %v", uncapped)
	}
	capped := r.MeanRelErrPct(100)
	if math.Abs(capped-(10+100)/2) > 1e-6 {
		t.Fatalf("capped MRE = %v", capped)
	}
}

func TestMinMaxRelErr(t *testing.T) {
	r := makeReport(t, 4, map[grid.Coord]float64{
		{X: 0, Y: 0}: 10.1, // 1%
		{X: 1, Y: 1}: 15,   // 50%
	})
	if math.Abs(r.MinRelErrPct()-1) > 1e-9 {
		t.Fatalf("MinRelErrPct = %v", r.MinRelErrPct())
	}
	if math.Abs(r.MaxRelErrPct()-50) > 1e-9 {
		t.Fatalf("MaxRelErrPct = %v", r.MaxRelErrPct())
	}
	empty := makeReport(t, 4, nil)
	if empty.MinRelErrPct() != 0 || empty.MaxRelErrPct() != 0 {
		t.Fatal("empty report min/max should be 0")
	}
}

func TestFilterRemovesSmallErrors(t *testing.T) {
	r := makeReport(t, 4, map[grid.Coord]float64{
		{X: 0, Y: 0}: 10.1, // 1% — filtered at 2%
		{X: 1, Y: 1}: 15,   // 50% — kept
	})
	f := r.Filter(DefaultThresholdPct)
	if f.Count() != 1 {
		t.Fatalf("filtered count = %d", f.Count())
	}
	if f.Mismatches[0].RelErrPct != 50 {
		t.Fatal("kept the wrong mismatch")
	}
	if f.ThresholdPct != 2 {
		t.Fatal("threshold not recorded")
	}
	// Original must be untouched.
	if r.Count() != 2 {
		t.Fatal("Filter mutated the receiver")
	}
}

func TestFilterCanClearSDC(t *testing.T) {
	r := makeReport(t, 4, map[grid.Coord]float64{
		{X: 0, Y: 0}: 10.05, // 0.5%
	})
	if !r.IsSDC() {
		t.Fatal("unfiltered run should be SDC")
	}
	if r.Filter(2).IsSDC() {
		t.Fatal("2% filter should clear this SDC (paper: executions with no mismatch left are removed)")
	}
}

func TestFilterBoundaryIsExclusive(t *testing.T) {
	// "mismatches with relative errors greater than 2%": exactly 2% is dropped.
	r := makeReport(t, 4, map[grid.Coord]float64{
		{X: 0, Y: 0}: 10.2, // exactly 2%
	})
	if got := r.Filter(2).Count(); got != 0 {
		t.Fatalf("exactly-threshold mismatch kept: %d", got)
	}
}

func TestFilterThresholdMonotonicProperty(t *testing.T) {
	r := makeReport(t, 8, map[grid.Coord]float64{
		{X: 0, Y: 0}: 10.05,
		{X: 1, Y: 0}: 10.3,
		{X: 2, Y: 0}: 11,
		{X: 3, Y: 0}: 13,
		{X: 4, Y: 0}: 20,
		{X: 5, Y: 0}: 100,
	})
	f := func(a, b float64) bool {
		ta := math.Mod(math.Abs(a), 200)
		tb := math.Mod(math.Abs(b), 200)
		if ta > tb {
			ta, tb = tb, ta
		}
		return r.Filter(tb).Count() <= r.Filter(ta).Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelErrsSorted(t *testing.T) {
	r := makeReport(t, 4, map[grid.Coord]float64{
		{X: 0, Y: 0}: 15,
		{X: 1, Y: 1}: 10.1,
		{X: 2, Y: 2}: 12,
	})
	es := r.RelErrsPct()
	if len(es) != 3 {
		t.Fatalf("len = %d", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i] < es[i-1] {
			t.Fatal("RelErrsPct not sorted")
		}
	}
}
