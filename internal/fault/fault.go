// Package fault defines the radiation fault model shared by the device
// simulators: the on-chip resources a neutron can strike, the outcome
// classes of a strike (§II-A of the paper), and bit-flip specifications.
//
// The beam experiments in the paper induce failures "in all the components
// of the device, including the scheduler, dispatcher, and control logic" —
// resources that software fault injectors cannot reach. The Resource
// enumeration below covers exactly that component inventory so the
// simulated campaigns exercise the same failure surface.
package fault

import (
	"radcrit/internal/floatbits"
	"radcrit/internal/xrand"
)

// Resource is an on-chip structure a neutron strike can perturb.
type Resource int

const (
	// RegisterFile is the SM/core register file holding thread state.
	RegisterFile Resource = iota
	// SharedMemory is per-SM shared/local memory (GPU) scratch.
	SharedMemory
	// L1Cache is the per-SM/per-core L1 data cache.
	L1Cache
	// L2Cache is the device-level (K40) or ring-coherent (Phi) L2.
	L2Cache
	// FPU is the floating-point datapath (adders/multipliers/FMA).
	FPU
	// SFU is the special-function (transcendental) unit.
	SFU
	// VectorUnit is the 512-bit SIMD datapath (Xeon Phi).
	VectorUnit
	// Scheduler is the warp/thread scheduler (hardware on NVIDIA,
	// operating-system software on Intel).
	Scheduler
	// Dispatcher is the instruction dispatch logic.
	Dispatcher
	// ControlLogic is miscellaneous control state (kernel launch, fences,
	// memory controllers' control paths).
	ControlLogic
	// InstructionPath is instruction fetch/cache corruption.
	InstructionPath
	numResources
)

// NumResources is the number of distinct strikeable resources.
const NumResources = int(numResources)

// String returns the resource name.
func (r Resource) String() string {
	switch r {
	case RegisterFile:
		return "register-file"
	case SharedMemory:
		return "shared-memory"
	case L1Cache:
		return "l1-cache"
	case L2Cache:
		return "l2-cache"
	case FPU:
		return "fpu"
	case SFU:
		return "sfu"
	case VectorUnit:
		return "vector-unit"
	case Scheduler:
		return "scheduler"
	case Dispatcher:
		return "dispatcher"
	case ControlLogic:
		return "control-logic"
	case InstructionPath:
		return "instruction-path"
	default:
		return "unknown"
	}
}

// Resources lists every strikeable resource.
func Resources() []Resource {
	rs := make([]Resource, NumResources)
	for i := range rs {
		rs[i] = Resource(i)
	}
	return rs
}

// ResourceFromString inverts Resource.String: it parses a resource name
// as written into campaign logs, so a replayed log event reconstructs the
// struck structure. The second result is false for unknown names (logs
// from a build with extra registered semantics, or the empty field of a
// legacy record).
func ResourceFromString(s string) (Resource, bool) {
	for r := Resource(0); r < numResources; r++ {
		if r.String() == s {
			return r, true
		}
	}
	return 0, false
}

// OutcomeClass is the observable result of one irradiated execution
// (paper §II-A): masked, silent data corruption, crash, or hang.
type OutcomeClass int

const (
	// Masked: no effect on the program output.
	Masked OutcomeClass = iota
	// SDC: incorrect program output, undetected by the system.
	SDC
	// Crash: the application terminates abnormally.
	Crash
	// Hang: the node stops responding and must be rebooted.
	Hang
)

// String returns the outcome name.
func (o OutcomeClass) String() string {
	switch o {
	case Masked:
		return "masked"
	case SDC:
		return "sdc"
	case Crash:
		return "crash"
	case Hang:
		return "hang"
	default:
		return "unknown"
	}
}

// OutcomeDist is a probability distribution over outcome classes.
// Weights need not be normalised; Sample normalises on the fly.
type OutcomeDist struct {
	Masked, SDC, Crash, Hang float64
}

// Sample draws an outcome class from the distribution.
func (d OutcomeDist) Sample(rng *xrand.RNG) OutcomeClass {
	idx := rng.WeightedChoice([]float64{d.Masked, d.SDC, d.Crash, d.Hang})
	return OutcomeClass(idx)
}

// Total returns the sum of weights.
func (d OutcomeDist) Total() float64 {
	return d.Masked + d.SDC + d.Crash + d.Hang
}

// FlipSpec describes how a corrupted word's bits are perturbed.
type FlipSpec struct {
	// Field restricts the flipped bit positions.
	Field floatbits.Field
	// Bits is the flip multiplicity per word (>= 1). Multi-bit upsets
	// become more common at smaller technology nodes.
	Bits int
}

// Apply flips Bits bits of v within Field.
func (s FlipSpec) Apply(v float64, rng *xrand.RNG) float64 {
	bits := s.Bits
	if bits < 1 {
		bits = 1
	}
	return floatbits.FlipN64(v, bits, s.Field, rng)
}

// Apply32 flips Bits bits of a single-precision v within Field (HotSpot
// computes in float32; the same strike flips bits of a narrower word).
func (s FlipSpec) Apply32(v float32, rng *xrand.RNG) float32 {
	bits := s.Bits
	if bits < 1 {
		bits = 1
	}
	out := v
	for i := 0; i < bits; i++ {
		out = floatbits.Flip32(out, s.Field, rng)
	}
	return out
}

// Strike is a raw particle strike event produced by the beam model, before
// the device architecture resolves it into an effect.
type Strike struct {
	// When is the execution progress fraction [0, 1) at which the strike
	// lands.
	When float64
	// Energy is a relative deposited-charge factor; larger deposits flip
	// more bits. Drawn from the beam spectrum.
	Energy float64
}

// MultiBitProbability converts a strike energy into an expected flip
// multiplicity: energy 1.0 is a single-bit upset; each additional unit adds
// a chance of another adjacent bit.
func (s Strike) MultiBitProbability() int {
	switch {
	case s.Energy < 1.5:
		return 1
	case s.Energy < 2.5:
		return 2
	default:
		return 3
	}
}
