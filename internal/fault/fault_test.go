package fault

import (
	"math"
	"testing"
	"testing/quick"

	"radcrit/internal/floatbits"
	"radcrit/internal/xrand"
)

func TestResourceStrings(t *testing.T) {
	for _, r := range Resources() {
		if r.String() == "unknown" || r.String() == "" {
			t.Fatalf("resource %d has no name", r)
		}
	}
	if Resource(999).String() != "unknown" {
		t.Fatal("invalid resource should be unknown")
	}
	if len(Resources()) != NumResources {
		t.Fatal("Resources() count wrong")
	}
}

func TestOutcomeStrings(t *testing.T) {
	want := map[OutcomeClass]string{
		Masked: "masked", SDC: "sdc", Crash: "crash", Hang: "hang",
	}
	for o, s := range want {
		if o.String() != s {
			t.Fatalf("%v != %s", o, s)
		}
	}
}

func TestOutcomeDistSample(t *testing.T) {
	d := OutcomeDist{Masked: 1, SDC: 1, Crash: 1, Hang: 1}
	if d.Total() != 4 {
		t.Fatal("total wrong")
	}
	rng := xrand.New(1)
	seen := map[OutcomeClass]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		seen[d.Sample(rng)]++
	}
	for _, c := range []OutcomeClass{Masked, SDC, Crash, Hang} {
		frac := float64(seen[c]) / n
		if math.Abs(frac-0.25) > 0.02 {
			t.Fatalf("class %v frequency %v, want ~0.25", c, frac)
		}
	}
}

func TestOutcomeDistZeroWeightNeverSampled(t *testing.T) {
	d := OutcomeDist{Masked: 1, SDC: 1}
	rng := xrand.New(2)
	for i := 0; i < 1000; i++ {
		c := d.Sample(rng)
		if c == Crash || c == Hang {
			t.Fatal("zero-weight class sampled")
		}
	}
}

func TestFlipSpecApply(t *testing.T) {
	rng := xrand.New(3)
	s := FlipSpec{Field: floatbits.Sign, Bits: 1}
	if s.Apply(2.5, rng) != -2.5 {
		t.Fatal("sign flip wrong")
	}
	// Zero bits behaves as one.
	z := FlipSpec{Field: floatbits.Mantissa}
	if z.Apply(1.5, rng) == 1.5 {
		t.Fatal("zero-bit spec should still flip one bit")
	}
}

func TestFlipSpecApply32(t *testing.T) {
	rng := xrand.New(4)
	s := FlipSpec{Field: floatbits.Sign, Bits: 1}
	if s.Apply32(2.5, rng) != -2.5 {
		t.Fatal("sign flip wrong in float32")
	}
}

func TestFlipSpecApplyChangesValueProperty(t *testing.T) {
	rng := xrand.New(5)
	f := func(v float64, bits uint8) bool {
		if math.IsNaN(v) {
			return true
		}
		s := FlipSpec{Field: floatbits.AnyField, Bits: 1 + int(bits%3)}
		out := s.Apply(v, rng)
		return math.Float64bits(out) != math.Float64bits(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStrikeMultiBit(t *testing.T) {
	cases := []struct {
		energy float64
		want   int
	}{
		{1.0, 1}, {1.4, 1}, {2.0, 2}, {3.5, 3}, {100, 3},
	}
	for _, c := range cases {
		s := Strike{Energy: c.energy}
		if got := s.MultiBitProbability(); got != c.want {
			t.Fatalf("energy %v -> %d bits, want %d", c.energy, got, c.want)
		}
	}
}
