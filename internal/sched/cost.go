// Package sched prices campaign cells and schedules them fairly across
// tenants. The two halves compose: the cost model turns a cell's registry
// params and strike budget into an estimated execution charge (ns), and
// the weighted-fair queue spends those charges against per-tenant virtual
// time, so one tenant's slow LavaMD plans cannot starve another tenant's
// cheap DGEMM cells — the scheduler sees the price difference before
// placement instead of discovering it in wall time.
//
// Everything here is deterministic: the same queue contents always pop in
// the same order, which keeps the service layer's scheduling reproducible
// (and testable) even though per-cell results never depended on order in
// the first place.
package sched

import (
	"strconv"
	"strings"
)

// Per-strike reference charges in nanoseconds, calibrated against the
// mixed-strike benchmarks recorded in BENCH_campaign.json
// (strike_hot_path.benchmarks, this repo's 1-core Xeon baseline):
//
//	StrikeDGEMM    dgemm:256      43_559 ns/strike
//	StrikeLavaMD   lavamd:5     5_441_730 ns/strike
//	StrikeHotSpot  hotspot:64x80   86_537 ns/strike
//	StrikeCLAMR    clamr:48x60    487_984 ns/strike
//
// The absolute numbers only matter relative to each other — the queue
// divides charges by weights, so a uniform rescale changes nothing — but
// anchoring them to the measured baseline keeps the model honest: a
// LavaMD strike really is ~125x a DGEMM strike on this hardware.
const (
	dgemmRefNS   = 43_559 // at N = 256
	lavamdRefNS  = 5_441_730
	hotspotRefNS = 86_537
	clamrRefNS   = 487_984

	dgemmRefN   = 256
	lavamdRefG  = 5
	hotspotRefS = 64
	hotspotRefI = 80
	clamrRefS   = 48
	clamrRefT   = 60
)

// DefaultStrikeNS is the per-strike charge for kernels the model has no
// calibration for (third-party registrations): mid-range, so an unknown
// kernel neither starves its tenant nor gets a free ride.
const DefaultStrikeNS = 250_000

// CostModel prices cells. The zero value is ready to use.
type CostModel struct {
	// DefaultNS overrides the per-strike charge for unrecognised kernels
	// (0 selects DefaultStrikeNS).
	DefaultNS uint64
}

// StrikeCost estimates one strike's execution charge (ns) for a kernel
// spec ("dgemm:1024", "lavamd:19", "hotspot:1024x400", "clamr:512x600").
// The scaling laws follow each kernel's dominant per-strike work:
//
//	dgemm:N      ∝ N²    (golden-product compare over the output matrix)
//	lavamd:G     ∝ G³    (G³ boxes, 27-neighbourhood force sums)
//	hotspot:SxI  ∝ S²·I  (S² grid re-evolved over I steps)
//	clamr:SxT    ∝ S²·T  (S² mesh over T timesteps)
//
// Malformed params fall back to each family's reference dims — pricing
// never rejects a cell; validation is the plan layer's job.
func (m *CostModel) StrikeCost(kernelSpec string) uint64 {
	name, params, _ := strings.Cut(kernelSpec, ":")
	switch name {
	case "dgemm":
		n := atoiOr(params, dgemmRefN)
		return scale(dgemmRefNS, ratio2(n, dgemmRefN))
	case "lavamd":
		g := atoiOr(params, lavamdRefG)
		return scale(lavamdRefNS, ratio3(g, lavamdRefG))
	case "hotspot":
		s, i := dimsOr(params, hotspotRefS, hotspotRefI)
		return scale(hotspotRefNS, ratio2(s, hotspotRefS)*ratio(i, hotspotRefI))
	case "clamr":
		s, t := dimsOr(params, clamrRefS, clamrRefT)
		return scale(clamrRefNS, ratio2(s, clamrRefS)*ratio(t, clamrRefT))
	default:
		if m != nil && m.DefaultNS > 0 {
			return m.DefaultNS
		}
		return DefaultStrikeNS
	}
}

// CellCost prices a whole cell: per-strike charge × strike budget.
func (m *CostModel) CellCost(kernelSpec string, strikes int) uint64 {
	if strikes < 1 {
		strikes = 1
	}
	return m.StrikeCost(kernelSpec) * uint64(strikes)
}

func atoiOr(s string, def int) int {
	v, err := strconv.Atoi(s)
	if err != nil || v < 1 {
		return def
	}
	return v
}

func dimsOr(s string, defA, defB int) (int, int) {
	a, b, ok := strings.Cut(s, "x")
	if !ok {
		return defA, defB
	}
	return atoiOr(a, defA), atoiOr(b, defB)
}

func ratio(v, ref int) float64  { return float64(v) / float64(ref) }
func ratio2(v, ref int) float64 { r := ratio(v, ref); return r * r }
func ratio3(v, ref int) float64 { r := ratio(v, ref); return r * r * r }

// scale applies a dimensional ratio to a reference charge, clamping to
// at least 1 ns so no cell is ever free.
func scale(refNS uint64, r float64) uint64 {
	v := float64(refNS) * r
	if v < 1 {
		return 1
	}
	return uint64(v)
}
