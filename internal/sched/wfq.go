package sched

import (
	"container/heap"
	"sort"
)

// Queue is a weighted-fair queue over per-tenant sub-queues, scheduled by
// virtual time (start-time fair queueing): every pop charges the popped
// item's cost to its tenant's virtual clock, divided by the tenant's
// weight, and the next pop goes to the tenant whose head item finishes
// earliest in virtual time. Under saturation each tenant's share of
// popped cost converges to weight/Σweights; an idle tenant's clock is
// clamped to the global virtual time when it becomes active again, so
// idleness earns no banked credit (and bursts after idleness cannot
// starve the tenants that kept working).
//
// Within a tenant, items pop by priority (higher first), then submission
// sequence — the pre-tenancy scheduler's contract, now scoped to one
// tenant's own jobs so priority games cannot cross namespaces.
//
// Not safe for concurrent use; callers hold their own lock (the service
// manager's mutex, the fleet coordinator's mutex).
type Queue[T any] struct {
	tenants map[string]*tenantState[T]
	vtime   float64
	length  int
}

type entry[T any] struct {
	priority int
	seq      uint64
	cost     uint64
	value    T
}

// subQueue orders one tenant's items: priority desc, then seq asc.
type subQueue[T any] []*entry[T]

func (q subQueue[T]) Len() int { return len(q) }
func (q subQueue[T]) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].seq < q[j].seq
}
func (q subQueue[T]) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *subQueue[T]) Push(x any)   { *q = append(*q, x.(*entry[T])) }
func (q *subQueue[T]) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

type tenantState[T any] struct {
	weight  float64
	vfinish float64
	h       subQueue[T]
}

// NewQueue builds an empty weighted-fair queue.
func NewQueue[T any]() *Queue[T] {
	return &Queue[T]{tenants: map[string]*tenantState[T]{}}
}

// Push enqueues an item for tenant with the given weight (>= 1; lower is
// clamped), cost (0 is clamped to 1 so virtual time always advances),
// intra-tenant priority and submission sequence. Pushing refreshes the
// tenant's weight, so a reconfigured weight takes effect on the next
// submission without draining the queue.
func (q *Queue[T]) Push(tenant string, weight int, priority int, seq uint64, cost uint64, v T) {
	ts := q.tenants[tenant]
	if ts == nil {
		ts = &tenantState[T]{}
		q.tenants[tenant] = ts
	}
	if weight < 1 {
		weight = 1
	}
	ts.weight = float64(weight)
	if len(ts.h) == 0 && ts.vfinish < q.vtime {
		// Reactivating after idleness: no banked credit.
		ts.vfinish = q.vtime
	}
	if cost == 0 {
		cost = 1
	}
	heap.Push(&ts.h, &entry[T]{priority: priority, seq: seq, cost: cost, value: v})
	q.length++
}

// Pop removes and returns the item that finishes earliest in virtual
// time. The boolean is false when the queue is empty.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	if q.length == 0 {
		return zero, false
	}
	// Deterministic selection: visit active tenants in name order.
	names := make([]string, 0, len(q.tenants))
	for name, ts := range q.tenants {
		if len(ts.h) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var (
		selName   string
		selStart  float64
		selFinish float64
		selSeq    uint64
	)
	for _, name := range names {
		ts := q.tenants[name]
		head := ts.h[0]
		// A backlogged tenant's start tag is its own virtual finish — it
		// must NOT be re-clamped to the advancing global clock here, or
		// tenants waiting behind a cheaper competitor are dragged forward
		// forever and starve. The clamp happens once, at reactivation
		// (Push on an empty sub-queue).
		start := ts.vfinish
		finish := start + float64(head.cost)/ts.weight
		if selName == "" || finish < selFinish ||
			(finish == selFinish && head.seq < selSeq) {
			selName, selStart, selFinish, selSeq = name, start, finish, head.seq
		}
	}
	ts := q.tenants[selName]
	e := heap.Pop(&ts.h).(*entry[T])
	if selStart > q.vtime {
		q.vtime = selStart // monotone: never rewind for late-served tenants
	}
	ts.vfinish = selFinish
	q.length--
	return e.value, true
}

// Remove deletes the queued item with the given submission sequence from
// tenant's sub-queue (a cancelled queued job). The boolean is false when
// no such item is queued. Virtual time is not refunded: a cancelled item
// was never popped, so it was never charged.
func (q *Queue[T]) Remove(tenant string, seq uint64) (T, bool) {
	var zero T
	ts := q.tenants[tenant]
	if ts == nil {
		return zero, false
	}
	for i, e := range ts.h {
		if e.seq == seq {
			v := e.value
			heap.Remove(&ts.h, i)
			q.length--
			return v, true
		}
	}
	return zero, false
}

// SetWeight updates a tenant's weight in place (>= 1; lower is clamped),
// taking effect on the next Pop — the hot-reload path, where waiting for
// the tenant's next Push would leave an already-queued backlog draining
// under the stale weight. Unknown tenants are a no-op: a tenant removed
// from the registry is deliberately never re-weighted, so its queued
// jobs drain under the last weight they were admitted with.
func (q *Queue[T]) SetWeight(tenant string, weight int) {
	ts := q.tenants[tenant]
	if ts == nil {
		return
	}
	if weight < 1 {
		weight = 1
	}
	ts.weight = float64(weight)
}

// Lags maps every backlogged tenant to its virtual-time lag: the
// tenant's virtual finish minus the global virtual clock. Around zero
// the tenant is receiving exactly its weighted share; persistently
// positive means it has been served ahead of the clock, persistently
// negative means it is starved — the fairness-drift signal the
// telemetry layer exports.
func (q *Queue[T]) Lags() map[string]float64 {
	out := map[string]float64{}
	for name, ts := range q.tenants {
		if len(ts.h) > 0 {
			out[name] = ts.vfinish - q.vtime
		}
	}
	return out
}

// Len is the total number of queued items.
func (q *Queue[T]) Len() int { return q.length }

// Depth is one tenant's queued-item count.
func (q *Queue[T]) Depth(tenant string) int {
	ts := q.tenants[tenant]
	if ts == nil {
		return 0
	}
	return len(ts.h)
}

// Depths maps every tenant with queued items to its depth.
func (q *Queue[T]) Depths() map[string]int {
	out := map[string]int{}
	for name, ts := range q.tenants {
		if len(ts.h) > 0 {
			out[name] = len(ts.h)
		}
	}
	return out
}
