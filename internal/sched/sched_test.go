package sched

import (
	"math/rand"
	"testing"
)

func TestCostModelCalibration(t *testing.T) {
	var m CostModel
	// Reference dims reproduce the BENCH_campaign.json baselines exactly.
	refs := map[string]uint64{
		"dgemm:256":     43_559,
		"lavamd:5":      5_441_730,
		"hotspot:64x80": 86_537,
		"clamr:48x60":   487_984,
	}
	for spec, want := range refs {
		if got := m.StrikeCost(spec); got != want {
			t.Errorf("StrikeCost(%q) = %d, want %d", spec, got, want)
		}
	}
	// The relative ordering the scheduler exists to exploit: LavaMD
	// strikes dwarf DGEMM strikes.
	if m.StrikeCost("lavamd:5") < 50*m.StrikeCost("dgemm:256") {
		t.Error("lavamd should price far above dgemm")
	}
	// Scaling laws: quadratic in dgemm N, cubic in lavamd G, linear in
	// hotspot iterations.
	if got, want := m.StrikeCost("dgemm:512"), uint64(4*43_559); got != want {
		t.Errorf("dgemm:512 = %d, want %d (4x reference)", got, want)
	}
	if got, want := m.StrikeCost("lavamd:10"), uint64(8*5_441_730); got != want {
		t.Errorf("lavamd:10 = %d, want %d (8x reference)", got, want)
	}
	if got, want := m.StrikeCost("hotspot:64x160"), uint64(2*86_537); got != want {
		t.Errorf("hotspot:64x160 = %d, want %d (2x reference)", got, want)
	}
	// Unknown kernels price at the default; malformed params fall back to
	// reference dims instead of failing.
	if got := m.StrikeCost("bfs:1000"); got != DefaultStrikeNS {
		t.Errorf("unknown kernel = %d, want %d", got, DefaultStrikeNS)
	}
	if got := m.StrikeCost("dgemm:not-a-number"); got != refs["dgemm:256"] {
		t.Errorf("malformed params = %d, want reference %d", got, refs["dgemm:256"])
	}
	if got, want := m.CellCost("dgemm:256", 100), uint64(100*43_559); got != want {
		t.Errorf("CellCost = %d, want %d", got, want)
	}
	custom := CostModel{DefaultNS: 7}
	if got := custom.StrikeCost("bfs"); got != 7 {
		t.Errorf("custom default = %d, want 7", got)
	}
}

// TestSingleTenantPriorityFIFO pins the intra-tenant contract — the
// pre-tenancy scheduler's order: priority desc, then submission seq.
func TestSingleTenantPriorityFIFO(t *testing.T) {
	q := NewQueue[string]()
	push := func(id string, prio int, seq uint64) {
		q.Push("default", 1, prio, seq, 100, id)
	}
	push("a", 0, 1)
	push("b", 0, 2)
	push("hot", 5, 3)
	push("c", 0, 4)
	push("warm", 2, 5)
	want := []string{"hot", "warm", "a", "b", "c"}
	for _, w := range want {
		got, ok := q.Pop()
		if !ok || got != w {
			t.Fatalf("pop = %q ok=%v, want %q", got, ok, w)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

// TestEqualWeightFairness is the fairness property test: two equal-weight
// tenants under saturation split popped cost within 10% of 50/50, at
// every prefix past a short warmup — even with randomised item costs.
// Each popped value carries [tenantIndex, cost] so the drain can track
// cumulative cost per tenant.
func TestEqualWeightFairness(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		q := NewQueue[[2]uint64]()
		rng := rand.New(rand.NewSource(int64(trial)*7919 + 1))
		var seq uint64
		for i := 0; i < 200; i++ {
			ti := i % 2
			c := uint64(1_000 + rng.Intn(100_000))
			seq++
			q.Push([]string{"a", "b"}[ti], 1, 0, seq, c, [2]uint64{uint64(ti), c})
		}
		var totals [2]float64
		for n := 1; ; n++ {
			v, ok := q.Pop()
			if !ok {
				break
			}
			totals[v[0]] += float64(v[1])
			if n >= 20 { // warmup: a few items of lead are inherent
				share := totals[0] / (totals[0] + totals[1])
				if share < 0.4 || share > 0.6 {
					t.Fatalf("trial %d: after %d pops share(a) = %.3f, want within 10%% of 0.5", trial, n, share)
				}
			}
		}
	}
}

// TestWeightedShares pins the 3:1 contract the acceptance criteria use:
// a weight-3 tenant receives 3x the popped cost of a weight-1 tenant
// under saturation, within 10%.
func TestWeightedShares(t *testing.T) {
	q := NewQueue[string]()
	var seq uint64
	const itemCost = 50_000
	for i := 0; i < 400; i++ {
		seq++
		q.Push("heavy", 3, 0, seq, itemCost, "heavy")
		seq++
		q.Push("light", 1, 0, seq, itemCost, "light")
	}
	counts := map[string]int{}
	// Sample mid-drain: both tenants still have backlog for the first 400
	// pops (heavy drains its 400 items by pop ~533).
	for i := 0; i < 400; i++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatal("queue drained early")
		}
		counts[v]++
	}
	ratio := float64(counts["heavy"]) / float64(counts["light"])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("heavy:light pop ratio = %.2f (%d:%d), want 3.0 ±10%%", ratio, counts["heavy"], counts["light"])
	}
}

// TestCostAwareFairness pins the point of pricing: a tenant submitting
// expensive items gets proportionally fewer of them, so equal weights
// still split cost — not item count — evenly.
func TestCostAwareFairness(t *testing.T) {
	q := NewQueue[string]()
	var seq uint64
	for i := 0; i < 300; i++ {
		seq++
		q.Push("slow", 1, 0, seq, 500_000, "slow") // LavaMD-ish
		seq++
		q.Push("fast", 1, 0, seq, 50_000, "fast") // DGEMM-ish
	}
	var slowCost, fastCost float64
	counts := map[string]int{}
	for i := 0; i < 300; i++ { // mid-drain: fast still has backlog
		v, _ := q.Pop()
		counts[v]++
		if v == "slow" {
			slowCost += 500_000
		} else {
			fastCost += 50_000
		}
	}
	share := slowCost / (slowCost + fastCost)
	if share < 0.4 || share > 0.6 {
		t.Fatalf("slow tenant's cost share = %.3f, want ~0.5", share)
	}
	if counts["fast"] < 5*counts["slow"] {
		t.Errorf("fast tenant popped %d items vs slow's %d; expected ~10x more", counts["fast"], counts["slow"])
	}
}

// TestIdleTenantEarnsNoCredit: a tenant idle while another works cannot
// monopolise the queue when it returns.
func TestIdleTenantEarnsNoCredit(t *testing.T) {
	q := NewQueue[string]()
	var seq uint64
	push := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			seq++
			q.Push(tenant, 1, 0, seq, 1000, tenant)
		}
	}
	push("worker", 100)
	for i := 0; i < 100; i++ {
		q.Pop() // worker runs alone; virtual time advances far
	}
	// Latecomer arrives; both submit equally from here on.
	push("worker", 50)
	push("late", 50)
	counts := map[string]int{}
	for i := 0; i < 50; i++ {
		v, _ := q.Pop()
		counts[v]++
	}
	// Interleaved, not 50 lates in a row.
	if counts["late"] > 30 || counts["worker"] > 30 {
		t.Fatalf("post-idle pops = %v, want interleaved ~25/25", counts)
	}
}

func TestRemoveAndDepths(t *testing.T) {
	q := NewQueue[int]()
	q.Push("a", 1, 0, 1, 10, 101)
	q.Push("a", 1, 0, 2, 10, 102)
	q.Push("b", 2, 0, 3, 10, 103)
	if q.Len() != 3 || q.Depth("a") != 2 || q.Depth("b") != 1 {
		t.Fatalf("Len=%d depths a=%d b=%d", q.Len(), q.Depth("a"), q.Depth("b"))
	}
	d := q.Depths()
	if d["a"] != 2 || d["b"] != 1 || len(d) != 2 {
		t.Fatalf("Depths() = %v", d)
	}
	if v, ok := q.Remove("a", 1); !ok || v != 101 {
		t.Fatalf("Remove = %d ok=%v", v, ok)
	}
	if _, ok := q.Remove("a", 99); ok {
		t.Fatal("Remove of unknown seq succeeded")
	}
	if _, ok := q.Remove("zzz", 1); ok {
		t.Fatal("Remove of unknown tenant succeeded")
	}
	if q.Len() != 2 {
		t.Fatalf("Len after remove = %d", q.Len())
	}
	// Remaining items still pop, in order.
	if v, _ := q.Pop(); v != 102 && v != 103 {
		t.Fatalf("unexpected pop %d", v)
	}
}

// TestDeterministicOrder: identical pushes yield identical pop order.
func TestDeterministicOrder(t *testing.T) {
	build := func() *Queue[int] {
		q := NewQueue[int]()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 100; i++ {
			tenant := []string{"a", "b", "c"}[rng.Intn(3)]
			q.Push(tenant, 1+rng.Intn(3), rng.Intn(2), uint64(i), uint64(1+rng.Intn(10000)), i)
		}
		return q
	}
	q1, q2 := build(), build()
	for {
		v1, ok1 := q1.Pop()
		v2, ok2 := q2.Pop()
		if ok1 != ok2 || v1 != v2 {
			t.Fatalf("pop order diverged: %d/%v vs %d/%v", v1, ok1, v2, ok2)
		}
		if !ok1 {
			return
		}
	}
}

// TestSetWeightEffectiveNextPop pins the hot-reload contract: a weight
// changed via SetWeight reshapes the drain of an ALREADY-queued backlog
// starting with the very next Pop — no re-Push needed.
func TestSetWeightEffectiveNextPop(t *testing.T) {
	q := NewQueue[string]()
	var seq uint64
	const itemCost = 50_000
	for i := 0; i < 400; i++ {
		seq++
		q.Push("a", 1, 0, seq, itemCost, "a")
		seq++
		q.Push("b", 1, 0, seq, itemCost, "b")
	}
	// Reload: tenant a is now weight 3. Every subsequent pop must price
	// a's items at cost/3.
	q.SetWeight("a", 3)
	counts := map[string]int{}
	for i := 0; i < 400; i++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatal("queue drained early")
		}
		counts[v]++
	}
	ratio := float64(counts["a"]) / float64(counts["b"])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("a:b pop ratio after SetWeight = %.2f (%d:%d), want 3.0 ±10%%", ratio, counts["a"], counts["b"])
	}
	// Unknown tenants are a no-op (removed tenants keep their old weight).
	q.SetWeight("ghost", 9)
	if _, ok := q.tenants["ghost"]; ok {
		t.Fatal("SetWeight invented a tenant")
	}
}

// TestLags: backlogged tenants report vfinish - vtime; under equal
// weights and equal costs the lags stay within one item's virtual cost
// of zero, and idle tenants are absent.
func TestLags(t *testing.T) {
	q := NewQueue[string]()
	var seq uint64
	for i := 0; i < 10; i++ {
		seq++
		q.Push("a", 1, 0, seq, 1000, "a")
		seq++
		q.Push("b", 1, 0, seq, 1000, "b")
	}
	for i := 0; i < 10; i++ {
		q.Pop()
	}
	lags := q.Lags()
	if len(lags) != 2 {
		t.Fatalf("lags = %v, want both tenants backlogged", lags)
	}
	for name, lag := range lags {
		if lag < -1000 || lag > 1000 {
			t.Errorf("tenant %s lag = %v, want within one item cost of 0", name, lag)
		}
	}
	// Drain a's backlog: it must vanish from the lag map.
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		_ = v
	}
	if lags := q.Lags(); len(lags) != 0 {
		t.Fatalf("drained queue lags = %v, want empty", lags)
	}
}
