// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator used throughout the campaign simulator.
//
// Reproducibility is a hard requirement: a beam campaign is defined by a
// single root seed, and every experiment inside it must see the same random
// stream regardless of execution order or parallelism. To that end xrand
// implements SplitMix64 (Steele et al., "Fast Splittable Pseudorandom Number
// Generators") which supports cheap, well-distributed stream splitting.
package xrand

import "math"

// GoldenGamma is the SplitMix64 increment (2^64 / golden ratio).
const GoldenGamma = 0x9E3779B97F4A7C15

// RNG is a splittable SplitMix64 generator. The zero value is a valid
// generator seeded with 0; use New for explicit seeding.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent generator from r, keyed by label. Streams
// produced by different labels are statistically independent of each other
// and of the parent. Splitting does not advance the parent state, so the
// set of children is a pure function of (parent state, label).
func (r *RNG) Split(label uint64) *RNG {
	return &RNG{state: mix(r.state ^ mix(label*GoldenGamma+1))}
}

// SplitString derives an independent generator keyed by a string label.
func (r *RNG) SplitString(label string) *RNG {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return r.Split(h)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += GoldenGamma
	return mix(r.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Lemire's nearly-divisionless bounded generation with rejection.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Poisson returns a Poisson variate with the given mean. For small means it
// uses Knuth's product method; for large means a normal approximation with
// continuity correction, which is ample for campaign-scale statistics.
func (r *RNG) Poisson(mean float64) int {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		v := mean + math.Sqrt(mean)*r.NormFloat64() + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly swaps elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// WeightedChoice returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Zero-weight entries are never chosen.
// It panics if weights is empty or sums to a non-positive value.
func (r *RNG) WeightedChoice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if len(weights) == 0 || total <= 0 {
		panic("xrand: WeightedChoice with no positive weights")
	}
	target := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		target -= w
		if target < 0 {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("unreachable")
}
