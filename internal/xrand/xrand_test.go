package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("children with different labels produced identical first draw")
	}
	// Splitting must not advance the parent.
	p1 := New(7)
	_ = p1.Split(1)
	p2 := New(7)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Split advanced parent state")
	}
}

func TestSplitSameLabelSameStream(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(9)
	c2 := parent.Split(9)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("same-label children diverged at draw %d", i)
		}
	}
}

func TestSplitString(t *testing.T) {
	parent := New(3)
	a := parent.SplitString("dgemm")
	b := parent.SplitString("lavamd")
	if a.Uint64() == b.Uint64() {
		t.Fatal("different string labels produced identical streams")
	}
	// Same label from the same parent state reproduces the stream.
	c := New(3).SplitString("dgemm")
	d := New(3).SplitString("dgemm")
	for i := 0; i < 50; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatalf("SplitString not reproducible at draw %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	seen := make(map[int]int)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v]++
	}
	for v := 0; v < 7; v++ {
		if seen[v] == 0 {
			t.Fatalf("Intn(7) never produced %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(19)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Uint64n(10)]++
	}
	for v, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("Uint64n(10) bucket %d frequency %v, want ~0.1", v, frac)
		}
	}
}

func TestBool(t *testing.T) {
	r := New(23)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency %v", frac)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(29)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(31)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	if math.Abs(sum/n-1) > 0.02 {
		t.Fatalf("exponential mean = %v", sum/n)
	}
}

func TestPoissonSmallMean(t *testing.T) {
	r := New(37)
	const mean = 3.5
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Poisson(mean))
	}
	if math.Abs(sum/n-mean) > 0.05 {
		t.Fatalf("Poisson(%v) mean = %v", mean, sum/n)
	}
}

func TestPoissonLargeMean(t *testing.T) {
	r := New(41)
	const mean = 200.0
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Poisson(mean))
	}
	if math.Abs(sum/n-mean) > 2 {
		t.Fatalf("Poisson(%v) mean = %v", mean, sum/n)
	}
}

func TestPoissonZeroMean(t *testing.T) {
	r := New(43)
	for i := 0; i < 100; i++ {
		if r.Poisson(0) != 0 {
			t.Fatal("Poisson(0) != 0")
		}
		if r.Poisson(-1) != 0 {
			t.Fatal("Poisson(-1) != 0")
		}
	}
}

func TestPerm(t *testing.T) {
	r := New(47)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	r := New(53)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight entry chosen %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.25) > 0.01 {
		t.Fatalf("weight-1 entry frequency %v, want ~0.25", frac0)
	}
}

func TestWeightedChoicePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WeightedChoice(nil) did not panic")
		}
	}()
	New(1).WeightedChoice(nil)
}

func TestWeightedChoicePanicsOnAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WeightedChoice all-zero did not panic")
		}
	}()
	New(1).WeightedChoice([]float64{0, 0})
}

func TestUint64nPropertyInRange(t *testing.T) {
	r := New(59)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(61)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 10)
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("shuffle duplicated %d: %v", v, xs)
		}
		seen[v] = true
	}
}
