// Package harden implements the paper's proposed future work (§VI):
// "apply selective hardening to only those procedures, variables, or
// resources whose corruption is likely to produce the observed critical
// errors."
//
// Given a campaign result with per-resource attribution, Advise ranks the
// struck resources by their contribution to critical (above-threshold)
// SDCs and projects the FIT reduction of hardening each cumulatively —
// the information a designer needs to decide where duplication, ECC or
// checking effort pays off.
package harden

import (
	"fmt"
	"sort"
	"strings"

	"radcrit/internal/campaign"
	"radcrit/internal/fault"
)

// ResourceImpact is one resource's contribution to critical SDCs.
type ResourceImpact struct {
	// Resource is the struck structure.
	Resource fault.Resource
	// CriticalSDCs is the number of above-threshold SDCs it caused.
	CriticalSDCs int
	// Share is its fraction of all critical SDCs.
	Share float64
	// CumulativeShare is the fraction removed by hardening this resource
	// and every higher-ranked one.
	CumulativeShare float64
}

// Advice is a ranked selective-hardening plan.
type Advice struct {
	Device       string
	Kernel       string
	Input        string
	ThresholdPct float64
	// TotalCriticalSDCs is the critical SDC count before hardening.
	TotalCriticalSDCs int
	// Rankings orders resources by descending criticality contribution.
	Rankings []ResourceImpact
}

// Advise analyses a campaign result under the given imprecision threshold.
func Advise(res *campaign.Result, thresholdPct float64) Advice {
	adv := Advice{
		Device:       res.Device,
		Kernel:       res.Kernel,
		Input:        res.Input,
		ThresholdPct: thresholdPct,
	}
	counts := make(map[fault.Resource]int)
	for i, rep := range res.Reports {
		if i >= len(res.ReportResource) {
			break
		}
		eff := rep
		if thresholdPct > 0 {
			eff = rep.Filter(thresholdPct)
		}
		if !eff.IsSDC() {
			continue
		}
		counts[res.ReportResource[i]]++
		adv.TotalCriticalSDCs++
	}
	for r, c := range counts {
		adv.Rankings = append(adv.Rankings, ResourceImpact{Resource: r, CriticalSDCs: c})
	}
	sort.Slice(adv.Rankings, func(i, j int) bool {
		if adv.Rankings[i].CriticalSDCs != adv.Rankings[j].CriticalSDCs {
			return adv.Rankings[i].CriticalSDCs > adv.Rankings[j].CriticalSDCs
		}
		return adv.Rankings[i].Resource < adv.Rankings[j].Resource
	})
	cum := 0
	for i := range adv.Rankings {
		cum += adv.Rankings[i].CriticalSDCs
		if adv.TotalCriticalSDCs > 0 {
			adv.Rankings[i].Share = float64(adv.Rankings[i].CriticalSDCs) / float64(adv.TotalCriticalSDCs)
			adv.Rankings[i].CumulativeShare = float64(cum) / float64(adv.TotalCriticalSDCs)
		}
	}
	return adv
}

// TopResources returns the smallest resource set whose hardening removes
// at least the target fraction of critical SDCs.
func (a Advice) TopResources(targetFraction float64) []fault.Resource {
	var out []fault.Resource
	for _, r := range a.Rankings {
		out = append(out, r.Resource)
		if r.CumulativeShare >= targetFraction {
			break
		}
	}
	return out
}

// ProjectedCriticalSDCs returns the critical SDC count remaining after
// hardening the given resources (their silent corruptions are assumed
// detected-and-corrected, i.e. removed).
func (a Advice) ProjectedCriticalSDCs(hardened ...fault.Resource) int {
	set := make(map[fault.Resource]bool, len(hardened))
	for _, r := range hardened {
		set[r] = true
	}
	remaining := a.TotalCriticalSDCs
	for _, imp := range a.Rankings {
		if set[imp.Resource] {
			remaining -= imp.CriticalSDCs
		}
	}
	return remaining
}

// String renders the plan as a table.
func (a Advice) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "selective hardening plan for %s %s %s (filter >%.2g%%, %d critical SDCs):\n",
		a.Device, a.Kernel, a.Input, a.ThresholdPct, a.TotalCriticalSDCs)
	for i, r := range a.Rankings {
		fmt.Fprintf(&sb, "  %d. %-16s %3d critical SDCs (%5.1f%%, cumulative %5.1f%%)\n",
			i+1, r.Resource, r.CriticalSDCs, 100*r.Share, 100*r.CumulativeShare)
	}
	return sb.String()
}
