package harden

import (
	"strings"
	"testing"

	"radcrit/internal/campaign"
	"radcrit/internal/fault"
	"radcrit/internal/grid"
	"radcrit/internal/k40"
	"radcrit/internal/kernels/dgemm"
	"radcrit/internal/metrics"
)

func syntheticResult() *campaign.Result {
	dims := grid.Dims{X: 16, Y: 16, Z: 1}
	mk := func(rel float64) *metrics.Report {
		return &metrics.Report{
			Dims: dims, TotalElements: dims.Len(),
			Mismatches: []metrics.Mismatch{{
				Coord: grid.Coord{X: 1, Y: 1}, Read: 100 + rel, Expected: 100,
				RelErrPct: rel,
			}},
		}
	}
	return &campaign.Result{
		Device: "K40", Kernel: "DGEMM", Input: "16x16",
		Reports: []*metrics.Report{
			mk(50), mk(50), mk(50), // scheduler: 3 critical
			mk(50), mk(50), // l2: 2 critical
			mk(0.5), // l2: sub-threshold
			mk(50),  // fpu: 1 critical
		},
		ReportResource: []fault.Resource{
			fault.Scheduler, fault.Scheduler, fault.Scheduler,
			fault.L2Cache, fault.L2Cache,
			fault.L2Cache,
			fault.FPU,
		},
	}
}

func TestAdviseRanksByCriticality(t *testing.T) {
	adv := Advise(syntheticResult(), 2)
	if adv.TotalCriticalSDCs != 6 {
		t.Fatalf("critical SDCs = %d, want 6 (sub-threshold run excluded)", adv.TotalCriticalSDCs)
	}
	if len(adv.Rankings) != 3 {
		t.Fatalf("rankings = %d", len(adv.Rankings))
	}
	if adv.Rankings[0].Resource != fault.Scheduler || adv.Rankings[0].CriticalSDCs != 3 {
		t.Fatalf("top resource wrong: %+v", adv.Rankings[0])
	}
	if adv.Rankings[0].Share != 0.5 {
		t.Fatalf("top share = %v", adv.Rankings[0].Share)
	}
	last := adv.Rankings[len(adv.Rankings)-1]
	if last.CumulativeShare != 1 {
		t.Fatalf("cumulative share must end at 1: %v", last.CumulativeShare)
	}
}

func TestTopResources(t *testing.T) {
	adv := Advise(syntheticResult(), 2)
	top := adv.TopResources(0.5)
	if len(top) != 1 || top[0] != fault.Scheduler {
		t.Fatalf("50%% target should need only the scheduler: %v", top)
	}
	top = adv.TopResources(0.8)
	if len(top) != 2 {
		t.Fatalf("80%% target should need two resources: %v", top)
	}
	if len(adv.TopResources(1.0)) != 3 {
		t.Fatal("full coverage needs all three")
	}
}

func TestProjectedCriticalSDCs(t *testing.T) {
	adv := Advise(syntheticResult(), 2)
	if got := adv.ProjectedCriticalSDCs(fault.Scheduler); got != 3 {
		t.Fatalf("hardening the scheduler leaves %d, want 3", got)
	}
	if got := adv.ProjectedCriticalSDCs(fault.Scheduler, fault.L2Cache, fault.FPU); got != 0 {
		t.Fatalf("hardening everything leaves %d", got)
	}
	if got := adv.ProjectedCriticalSDCs(); got != 6 {
		t.Fatal("hardening nothing should change nothing")
	}
}

func TestStringRendering(t *testing.T) {
	s := Advise(syntheticResult(), 2).String()
	for _, want := range []string{"selective hardening plan", "scheduler", "cumulative"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestAdviseOnRealCampaign(t *testing.T) {
	res := campaign.Run(k40.New(), dgemm.New(128), campaign.DefaultConfig(21, 300))
	adv := Advise(res, 2)
	if adv.TotalCriticalSDCs == 0 {
		t.Fatal("no critical SDCs in a 300-strike campaign")
	}
	// Attribution must be complete and consistent.
	var sum int
	for _, r := range adv.Rankings {
		sum += r.CriticalSDCs
	}
	if sum != adv.TotalCriticalSDCs {
		t.Fatalf("rankings sum %d != total %d", sum, adv.TotalCriticalSDCs)
	}
	// Hardening every listed resource removes every critical SDC.
	all := make([]fault.Resource, len(adv.Rankings))
	for i, r := range adv.Rankings {
		all[i] = r.Resource
	}
	if adv.ProjectedCriticalSDCs(all...) != 0 {
		t.Fatal("full hardening left residual critical SDCs")
	}
}
