package beam

import (
	"math"
	"testing"

	"radcrit/internal/xrand"
)

func TestFacilityFluxes(t *testing.T) {
	// §IV-D: fluxes between 1e5 and 2.5e6 n/cm^2/s, 6-8 orders of
	// magnitude above the natural 13 n/cm^2/h.
	for _, f := range []Facility{LANSCE, ISIS} {
		acc := f.AccelerationFactor()
		if acc < 1e6 || acc > 1e9 {
			t.Fatalf("%s acceleration factor %e outside 10^6..10^9", f.Name, acc)
		}
	}
	if ISIS.Flux <= LANSCE.Flux {
		t.Fatal("ISIS flux should exceed LANSCE's in this configuration")
	}
}

func TestEquivalentNaturalHours(t *testing.T) {
	// 800 device-hours of beam cover ~10^8..10^9 natural hours (§IV-D
	// quotes 8x10^8 hours, about 91,000 years).
	h := LANSCE.EquivalentNaturalHours(800)
	if h < 1e7 || h > 1e11 {
		t.Fatalf("equivalent natural hours %e implausible", h)
	}
}

func exposure() Exposure {
	return Exposure{
		Facility:      LANSCE,
		Board:         Board{Label: "K40-A", Derating: 1},
		BeamHours:     10,
		ExecSeconds:   2,
		SensitiveArea: 10000,
	}
}

func TestExposureValidate(t *testing.T) {
	if err := exposure().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := exposure()
	bad.BeamHours = 0
	if bad.Validate() == nil {
		t.Fatal("zero hours accepted")
	}
	bad = exposure()
	bad.Board.Derating = 1.5
	if bad.Validate() == nil {
		t.Fatal("derating > 1 accepted")
	}
}

func TestExecutions(t *testing.T) {
	e := exposure()
	if e.Executions() != 10*3600/2 {
		t.Fatalf("executions = %d", e.Executions())
	}
}

func TestSingleStrikeRegime(t *testing.T) {
	// §IV-D: experiments tuned so error rates stay below 1e-3
	// errors/execution, keeping double strikes negligible.
	e := exposure().TuneSingleStrike()
	rate := e.StrikeRatePerExec()
	if rate <= 0 {
		t.Fatal("zero strike rate")
	}
	if rate > MaxStrikesPerExecution*(1+1e-9) {
		t.Fatalf("strike rate %e per execution violates the paper's single-strike bound", rate)
	}
}

func TestTuneSingleStrikeOnlyWhenNeeded(t *testing.T) {
	heavy := exposure()
	heavy.SensitiveArea = 1e9 // wildly over the bound
	tuned := heavy.TuneSingleStrike()
	if tuned.StrikeRatePerExec() > MaxStrikesPerExecution*(1+1e-9) {
		t.Fatal("tuning did not cap the rate")
	}
	light := exposure()
	light.SensitiveArea = 1
	if light.TuneSingleStrike() != light {
		t.Fatal("under-bound exposure should be unchanged")
	}
}

func TestDeratingReducesStrikes(t *testing.T) {
	near := exposure()
	far := exposure()
	far.Board.Derating = 0.5
	if far.StrikeRatePerExec() >= near.StrikeRatePerExec() {
		t.Fatal("derating did not reduce the strike rate")
	}
	if far.Fluence() >= near.Fluence() {
		t.Fatal("derating did not reduce fluence")
	}
}

func TestSampleStrikesPoisson(t *testing.T) {
	e := exposure()
	e.BeamHours = 4000 // enough for a meaningful expectation
	mean := e.StrikeRatePerExec() * float64(e.Executions())
	rng := xrand.New(5)
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		sum += float64(e.SampleStrikes(rng))
	}
	got := sum / n
	if math.Abs(got-mean) > mean*0.2+0.5 {
		t.Fatalf("sampled strike mean %v vs expected %v", got, mean)
	}
}

func TestHoursForStrikesRoundTrip(t *testing.T) {
	e := exposure()
	hours := e.HoursForStrikes(100)
	if math.IsInf(hours, 1) || hours <= 0 {
		t.Fatalf("HoursForStrikes = %v", hours)
	}
	e.BeamHours = hours
	mean := e.StrikeRatePerExec() * float64(e.Executions())
	if math.Abs(mean-100) > 2 {
		t.Fatalf("round trip gives %v strikes, want ~100", mean)
	}
}

func TestErrorRatePerExecution(t *testing.T) {
	e := exposure()
	if e.ErrorRatePerExecution(18) != 18.0/float64(e.Executions()) {
		t.Fatal("error rate wrong")
	}
	e.ExecSeconds = 0
	if e.ErrorRatePerExecution(18) != 0 {
		t.Fatal("zero executions should give 0")
	}
}

func TestStrikeEnergyDistribution(t *testing.T) {
	rng := xrand.New(9)
	for i := 0; i < 1000; i++ {
		e := StrikeEnergy(rng)
		if e < 1 {
			t.Fatalf("energy %v below single-bit scale", e)
		}
	}
}
