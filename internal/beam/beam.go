// Package beam models the accelerated neutron beam campaigns of §IV-D:
// facility fluxes (LANSCE and ISIS), beam spot restriction, derating by
// distance for serially mounted boards, Poisson strike arrival over
// execution exposure time, and the bookkeeping that converts beam hours
// into equivalent natural-environment operation.
package beam

import (
	"fmt"
	"math"

	"radcrit/internal/xrand"
)

// NaturalFlux is the terrestrial neutron flux at sea level (§II-A, [23]),
// in n/(cm^2 * h).
const NaturalFlux = 13.0

// Facility is a neutron source.
type Facility struct {
	// Name of the facility.
	Name string
	// Flux in n/(cm^2 * s) at the reference position.
	Flux float64
	// SpotDiameterInch is the restricted beam spot (2 inches in §IV-D:
	// enough to irradiate the chip but not the DRAM or power circuitry).
	SpotDiameterInch float64
}

// The two facilities used in the paper's campaigns.
var (
	LANSCE = Facility{Name: "LANSCE", Flux: 1.0e5, SpotDiameterInch: 2}
	ISIS   = Facility{Name: "ISIS", Flux: 2.5e6, SpotDiameterInch: 2}
)

// AccelerationFactor is how many times the facility flux exceeds the
// natural one (6 to 8 orders of magnitude, §IV-D).
func (f Facility) AccelerationFactor() float64 {
	return f.Flux * 3600 / NaturalFlux
}

// EquivalentNaturalHours converts beam hours into natural-operation hours.
func (f Facility) EquivalentNaturalHours(beamHours float64) float64 {
	return beamHours * f.AccelerationFactor()
}

// Board is one device mounted in the beam line. Boards sit at different
// distances from the source; a derating factor scales the effective flux
// (§IV-D: after derating, sensitivity was position-independent).
type Board struct {
	// Label identifies the physical board ("K40-A", "PHI-B").
	Label string
	// Derating is the flux attenuation at the board's position (1.0 at
	// the reference position, < 1 farther away).
	Derating float64
}

// EffectiveFlux is the facility flux after derating.
func (b Board) EffectiveFlux(f Facility) float64 {
	return f.Flux * b.Derating
}

// Exposure describes one campaign slot: a board in a beam for some hours
// running a workload with a given per-execution runtime and sensitive
// area.
type Exposure struct {
	Facility Facility
	Board    Board
	// BeamHours is wall-clock time under beam.
	BeamHours float64
	// ExecSeconds is one execution's duration in seconds.
	ExecSeconds float64
	// SensitiveArea is the device+workload cross-section in arbitrary
	// units (arch.Device.SensitiveArea).
	SensitiveArea float64
}

// AreaScale converts (sensitive area in a.u.) x (flux in n/cm^2/s) into
// strikes per second.
const AreaScale = 2.5e-13

// MaxStrikesPerExecution is the single-strike experimental bound: §IV-D
// tunes the beam so observed error rates stay below 10^-3 per execution,
// keeping the probability of two strikes in one run negligible.
const MaxStrikesPerExecution = 1e-3

// Executions returns how many back-to-back executions fit in the slot.
func (e Exposure) Executions() int {
	if e.ExecSeconds <= 0 {
		return 0
	}
	return int(e.BeamHours * 3600 / e.ExecSeconds)
}

// StrikeRatePerExec is the expected number of strikes in one execution.
func (e Exposure) StrikeRatePerExec() float64 {
	return e.Board.EffectiveFlux(e.Facility) * e.SensitiveArea * AreaScale * e.ExecSeconds
}

// Fluence is the total neutron fluence of the slot in n/cm^2.
func (e Exposure) Fluence() float64 {
	return e.Board.EffectiveFlux(e.Facility) * e.BeamHours * 3600
}

// Validate reports the first configuration error.
func (e Exposure) Validate() error {
	switch {
	case e.BeamHours <= 0:
		return fmt.Errorf("beam: non-positive beam hours")
	case e.ExecSeconds <= 0:
		return fmt.Errorf("beam: non-positive execution time")
	case e.SensitiveArea <= 0:
		return fmt.Errorf("beam: non-positive sensitive area")
	case e.Board.Derating <= 0 || e.Board.Derating > 1:
		return fmt.Errorf("beam: derating %v outside (0,1]", e.Board.Derating)
	}
	return nil
}

// TuneSingleStrike returns a copy of the exposure with the board derated
// (collimators/degraders in the real campaigns) so the per-execution
// strike rate respects MaxStrikesPerExecution. Exposures already under the
// bound are returned unchanged.
func (e Exposure) TuneSingleStrike() Exposure {
	rate := e.StrikeRatePerExec()
	if rate <= MaxStrikesPerExecution {
		return e
	}
	e.Board.Derating *= MaxStrikesPerExecution / rate
	return e
}

// SampleStrikes returns the number of struck executions in the slot,
// drawn from the Poisson arrival process. Executions hit by two strikes
// are vanishingly rare by construction; they are counted once, consistent
// with the paper's "at most one neutron generating a failure per
// execution" experimental design.
func (e Exposure) SampleStrikes(rng *xrand.RNG) int {
	mean := e.StrikeRatePerExec() * float64(e.Executions())
	return rng.Poisson(mean)
}

// StrikeEnergy samples a relative deposited-charge factor from the
// facility spectrum: mostly single-bit-scale deposits with an
// exponential high-energy tail.
func StrikeEnergy(rng *xrand.RNG) float64 {
	return 1 + 0.5*rng.ExpFloat64()
}

// ErrorRatePerExecution converts an observed error count into the
// errors/execution statistic the paper bounds at 10^-3.
func (e Exposure) ErrorRatePerExecution(errors int) float64 {
	ex := e.Executions()
	if ex == 0 {
		return 0
	}
	return float64(errors) / float64(ex)
}

// HoursForStrikes returns the beam hours needed for an expected number of
// strikes — campaign planning: the paper sizes campaigns to gather
// statistically significant data within limited beam time.
func (e Exposure) HoursForStrikes(strikes float64) float64 {
	perHour := e.StrikeRatePerExec() * 3600 / e.ExecSeconds
	if perHour <= 0 {
		return math.Inf(1)
	}
	return strikes / perHour
}
