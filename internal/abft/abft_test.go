package abft

import (
	"math"
	"testing"

	"radcrit/internal/grid"
	"radcrit/internal/metrics"
	"radcrit/internal/xrand"
)

func randomMatrix(n int, seed uint64) *grid.Grid {
	g := grid.New2D(n, n)
	rng := xrand.New(seed)
	for i := range g.Data() {
		g.Data()[i] = 0.5 + 1.5*rng.Float64()
	}
	return g
}

func TestMultiplyCorrect(t *testing.T) {
	n := 16
	a, b := randomMatrix(n, 1), randomMatrix(n, 2)
	cs := Multiply(a, b)
	// Spot check against the naive product.
	for _, pt := range [][2]int{{0, 0}, {3, 7}, {15, 15}} {
		i, j := pt[0], pt[1]
		var want float64
		for k := 0; k < n; k++ {
			want += a.At2(k, i) * b.At2(j, k)
		}
		if math.Abs(cs.C.At2(j, i)-want) > 1e-9*math.Abs(want) {
			t.Fatalf("C[%d][%d] = %v, want %v", i, j, cs.C.At2(j, i), want)
		}
	}
}

func TestAuditCleanMatrix(t *testing.T) {
	cs := Multiply(randomMatrix(16, 1), randomMatrix(16, 2))
	res := cs.Audit(0)
	if res.Detected || res.Corrected != 0 || res.Uncorrectable {
		t.Fatalf("clean matrix flagged: %+v", res)
	}
}

func TestAuditCorrectsSingleError(t *testing.T) {
	cs := Multiply(randomMatrix(16, 1), randomMatrix(16, 2))
	orig := cs.C.At2(5, 3)
	cs.C.Set2(5, 3, orig*4)
	res := cs.Audit(0)
	if !res.Detected || res.Corrected != 1 || res.Uncorrectable {
		t.Fatalf("single error not corrected: %+v", res)
	}
	if math.Abs(cs.C.At2(5, 3)-orig) > 1e-6*math.Abs(orig) {
		t.Fatalf("corrected value %v, want %v", cs.C.At2(5, 3), orig)
	}
}

func TestAuditCorrectsLineError(t *testing.T) {
	// §III/[33]: single and line errors are corrected in linear time.
	cs := Multiply(randomMatrix(16, 1), randomMatrix(16, 2))
	var origs []float64
	for j := 2; j < 9; j++ {
		origs = append(origs, cs.C.At2(j, 6))
		cs.C.Set2(j, 6, cs.C.At2(j, 6)+float64(j))
	}
	res := cs.Audit(0)
	if !res.Detected || res.Uncorrectable {
		t.Fatalf("line error not correctable: %+v", res)
	}
	if res.Corrected != 7 {
		t.Fatalf("corrected %d, want 7", res.Corrected)
	}
	for idx, j := range []int{2, 3, 4, 5, 6, 7, 8} {
		if math.Abs(cs.C.At2(j, 6)-origs[idx]) > 1e-6*math.Abs(origs[idx]) {
			t.Fatalf("element %d not restored", j)
		}
	}
}

func TestAuditCorrectsColumnError(t *testing.T) {
	cs := Multiply(randomMatrix(16, 1), randomMatrix(16, 2))
	for i := 1; i < 5; i++ {
		cs.C.Set2(9, i, cs.C.At2(9, i)*2)
	}
	res := cs.Audit(0)
	if !res.Detected || res.Uncorrectable || res.Corrected != 4 {
		t.Fatalf("column error not corrected: %+v", res)
	}
}

func TestAuditDetectsSquareButCannotCorrect(t *testing.T) {
	// §III: "ABFT DGEMM can detect and correct single and line errors
	// but not square errors".
	cs := Multiply(randomMatrix(16, 1), randomMatrix(16, 2))
	for i := 3; i < 6; i++ {
		for j := 3; j < 6; j++ {
			cs.C.Set2(j, i, cs.C.At2(j, i)*3)
		}
	}
	res := cs.Audit(0)
	if !res.Detected {
		t.Fatal("square error not detected")
	}
	if !res.Uncorrectable {
		t.Fatal("square error should be uncorrectable")
	}
}

func TestAttachAuditsExternalProduct(t *testing.T) {
	c := randomMatrix(16, 3)
	cs := Attach(c)
	if cs.Audit(0).Detected {
		t.Fatal("untouched attach flagged")
	}
	cs.C.Set2(0, 0, cs.C.At2(0, 0)+1)
	if !cs.Audit(0).Detected {
		t.Fatal("corruption after attach not detected")
	}
}

func TestPatternCorrectable(t *testing.T) {
	cases := map[metrics.Pattern]bool{
		metrics.Single: true,
		metrics.Line:   true,
		metrics.Square: false,
		metrics.Cubic:  false,
		metrics.Random: false,
	}
	for p, want := range cases {
		if PatternCorrectable(p) != want {
			t.Fatalf("PatternCorrectable(%v) != %v", p, want)
		}
	}
}

func makeReport(coords []grid.Coord) *metrics.Report {
	rep := &metrics.Report{Dims: grid.Dims{X: 64, Y: 64, Z: 1}, TotalElements: 64 * 64}
	for _, c := range coords {
		rep.Mismatches = append(rep.Mismatches, metrics.Mismatch{
			Coord: c, Read: 1, Expected: 2, RelErrPct: 50,
		})
	}
	return rep
}

func TestEvaluateCoverage(t *testing.T) {
	reports := []*metrics.Report{
		makeReport([]grid.Coord{{X: 1, Y: 1}}),                                           // single
		makeReport([]grid.Coord{{X: 1, Y: 2}, {X: 5, Y: 2}}),                             // line
		makeReport([]grid.Coord{{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 1, Y: 2}, {X: 2, Y: 2}}), // square
		makeReport(nil), // clean
	}
	cov := EvaluateCoverage(reports)
	if cov.Total != 4 || cov.Correctable != 2 || cov.DetectOnly != 1 || cov.CleanOrNoSDC != 1 {
		t.Fatalf("coverage wrong: %+v", cov)
	}
	if math.Abs(cov.CorrectableFraction()-2.0/3.0) > 1e-12 {
		t.Fatalf("fraction = %v", cov.CorrectableFraction())
	}
	if (Coverage{}).CorrectableFraction() != 0 {
		t.Fatal("empty coverage should be 0")
	}
}
