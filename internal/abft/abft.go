// Package abft implements Algorithm-Based Fault Tolerance for matrix
// multiplication (Huang & Abraham [20], tuned for GPUs in [33]): row and
// column checksums computed alongside C = A x B locate and correct
// radiation-induced errors after the fact.
//
// Single and line errors are corrected in linear time; square and random
// patterns are detected but not correctable (§III, §V-A) — which is
// precisely why the paper's spatial-locality metric matters: it predicts
// how much of a device's error rate ABFT can remove (60-80% on the K40,
// 20-40% on the Xeon Phi).
package abft

import (
	"math"

	"radcrit/internal/grid"
	"radcrit/internal/metrics"
)

// DefaultTolerance is the checksum comparison tolerance, absorbing the
// floating-point non-associativity between the checksum path and the data
// path.
const DefaultTolerance = 1e-6

// Checksummed is a matrix product carrying Huang-Abraham checksums.
type Checksummed struct {
	// C is the product matrix (possibly corrupted in flight).
	C *grid.Grid
	// RowSum[i] is the checksum of row i computed from A's row checksum
	// path (golden by construction: checksums travel separately).
	RowSum []float64
	// ColSum[j] is the checksum of column j.
	ColSum []float64
}

// Multiply computes C = A x B with checksums. A and B must be square and
// equally sized (the benchmark's configuration).
func Multiply(a, b *grid.Grid) *Checksummed {
	n := a.Dims().X
	if a.Dims() != b.Dims() || a.Dims().Y != n {
		panic("abft: Multiply requires equal square matrices")
	}
	c := grid.New2D(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			av := a.At2(k, i)
			for j := 0; j < n; j++ {
				c.Set2(j, i, c.At2(j, i)+av*b.At2(j, k))
			}
		}
	}
	cs := &Checksummed{C: c, RowSum: make([]float64, n), ColSum: make([]float64, n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := c.At2(j, i)
			cs.RowSum[i] += v
			cs.ColSum[j] += v
		}
	}
	return cs
}

// Attach builds checksums for an existing (trusted) product, e.g. a golden
// output; corruption applied to C afterwards is then auditable.
func Attach(c *grid.Grid) *Checksummed {
	n := c.Dims().X
	cs := &Checksummed{C: c.Clone(), RowSum: make([]float64, n), ColSum: make([]float64, n)}
	for i := 0; i < c.Dims().Y; i++ {
		for j := 0; j < n; j++ {
			v := c.At2(j, i)
			cs.RowSum[i] += v
			cs.ColSum[j] += v
		}
	}
	return cs
}

// AuditResult summarises a checksum audit.
type AuditResult struct {
	// Detected reports whether any checksum mismatch was found.
	Detected bool
	// Corrected is the number of elements repaired in place.
	Corrected int
	// Uncorrectable reports whether residual errors remain (square or
	// random patterns that checksums cannot localise).
	Uncorrectable bool
}

// Audit verifies the checksums against C, corrects single and line errors
// in place, and reports the result. tol <= 0 selects DefaultTolerance.
func (cs *Checksummed) Audit(tol float64) AuditResult {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	n := cs.C.Dims().X
	rows := cs.C.Dims().Y

	rowRes := make([]float64, rows)
	colRes := make([]float64, n)
	var badRows, badCols []int
	for i := 0; i < rows; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += cs.C.At2(j, i)
		}
		rowRes[i] = cs.RowSum[i] - s
		if relevant(rowRes[i], cs.RowSum[i], tol) {
			badRows = append(badRows, i)
		}
	}
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < rows; i++ {
			s += cs.C.At2(j, i)
		}
		colRes[j] = cs.ColSum[j] - s
		if relevant(colRes[j], cs.ColSum[j], tol) {
			badCols = append(badCols, j)
		}
	}

	res := AuditResult{Detected: len(badRows) > 0 || len(badCols) > 0}
	switch {
	case !res.Detected:
		return res
	case len(badRows) == 1:
		// One corrupted row: each bad column's residual is that element's
		// delta (single errors are the one-bad-column case).
		i := badRows[0]
		for _, j := range badCols {
			cs.C.Set2(j, i, cs.C.At2(j, i)+colRes[j])
			res.Corrected++
		}
	case len(badCols) == 1:
		// One corrupted column: symmetric correction from row residuals.
		j := badCols[0]
		for _, i := range badRows {
			cs.C.Set2(j, i, cs.C.At2(j, i)+rowRes[i])
			res.Corrected++
		}
	default:
		// Square/random: residuals cannot localise individual elements.
		res.Uncorrectable = true
	}
	return res
}

func relevant(residual, reference, tol float64) bool {
	return math.Abs(residual) > tol*math.Max(1, math.Abs(reference))
}

// PatternCorrectable reports whether ABFT can correct a given spatial
// pattern (§III: "ABFT DGEMM can detect and correct single and line errors
// but not square errors").
func PatternCorrectable(p metrics.Pattern) bool {
	return p == metrics.Single || p == metrics.Line
}

// Coverage is the outcome of applying ABFT across a set of SDC reports.
type Coverage struct {
	Total        int
	Correctable  int
	DetectOnly   int
	CleanOrNoSDC int
}

// Add classifies one report's locality against ABFT's correction
// capability, accumulating online so a streaming campaign can evaluate
// coverage without retaining reports.
func (c *Coverage) Add(r *metrics.Report) {
	c.Total++
	switch {
	case r.Count() == 0:
		c.CleanOrNoSDC++
	case PatternCorrectable(r.Locality()):
		c.Correctable++
	default:
		c.DetectOnly++
	}
}

// EvaluateCoverage classifies each report's locality against ABFT's
// correction capability.
func EvaluateCoverage(reports []*metrics.Report) Coverage {
	var cov Coverage
	for _, r := range reports {
		cov.Add(r)
	}
	return cov
}

// CorrectableFraction returns the fraction of error-bearing reports ABFT
// repairs.
func (c Coverage) CorrectableFraction() float64 {
	errs := c.Correctable + c.DetectOnly
	if errs == 0 {
		return 0
	}
	return float64(c.Correctable) / float64(errs)
}
