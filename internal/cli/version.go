package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
)

// Version assembles a human-readable build string from the binary's
// embedded build info: module version, toolchain, and the VCS revision
// stamp when the binary was built from a checkout. Every cmd/ tool
// surfaces it behind -version, and radcritd additionally serves it at
// GET /v1/version, so "which build is this?" has one answer everywhere.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "radcrit devel " + runtime.Version()
	}
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	var rev, modified, when string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		case "vcs.time":
			when = s.Value
		}
	}
	out := "radcrit " + v + " " + runtime.Version()
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if modified == "true" {
			rev += "+dirty"
		}
		out += " (" + rev
		if when != "" {
			out += " " + when
		}
		out += ")"
	}
	return out
}

// VersionFlag binds -version on fs. After flag parsing, pass the result
// to ExitIfVersion.
func VersionFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print build information and exit")
}

// ExitIfVersion prints the build string and exits 0 when show is set —
// the two-line version handling shared by every cmd/ tool.
func ExitIfVersion(show bool) {
	if show {
		fmt.Println(Version())
		os.Exit(0)
	}
}
