package cli

import (
	"flag"
	"strings"
	"testing"
)

// TestVersion pins the build string's shape: it always identifies the
// module and the toolchain, whatever build info the test binary carries.
func TestVersion(t *testing.T) {
	v := Version()
	if !strings.HasPrefix(v, "radcrit ") {
		t.Errorf("Version() = %q, want radcrit prefix", v)
	}
	if !strings.Contains(v, "go1") {
		t.Errorf("Version() = %q, want toolchain version", v)
	}
}

func TestVersionFlag(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	show := VersionFlag(fs)
	if err := fs.Parse([]string{"-version"}); err != nil {
		t.Fatal(err)
	}
	if !*show {
		t.Errorf("-version did not set the flag")
	}
}

// TestWithSuggestion pins the did-you-mean augmentation on registry
// unknown-name errors, and transparency for everything else.
func TestWithSuggestion(t *testing.T) {
	c := &CampaignFlags{Device: "k04", Kernel: "dgemm", Strikes: 10, Seed: 1, Scale: "test"}
	if _, err := c.ResolveDevice(); err == nil || !strings.Contains(err.Error(), `did you mean "k40"?`) {
		t.Errorf("ResolveDevice(k04) error = %v, want a k40 suggestion", err)
	}
	c = &CampaignFlags{Device: "k40", Kernel: "dgmem:128", Strikes: 10, Seed: 1, Scale: "test"}
	dev, err := c.ResolveDevice()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ResolveKernel(dev); err == nil || !strings.Contains(err.Error(), `did you mean "dgemm"?`) {
		t.Errorf("ResolveKernel(dgmem) error = %v, want a dgemm suggestion", err)
	}
	// The plan path carries the suggestion too.
	c = &CampaignFlags{Device: "phii", Kernel: "dgemm", Strikes: 10, Seed: 1, Scale: "test"}
	if _, err := c.ResolvePlan(); err == nil || !strings.Contains(err.Error(), `did you mean "phi"?`) {
		t.Errorf("ResolvePlan error = %v, want a phi suggestion", err)
	}
	if WithSuggestion(nil) != nil {
		t.Errorf("WithSuggestion(nil) != nil")
	}
}
