// Package cli is the shared command-line surface of the cmd/ tools: one
// registry-backed way to pick devices and kernels, load declarative plan
// files, and assemble campaign configuration. Before the plan API every
// binary re-implemented its own device/kernel string switch; now a tool
// binds the shared flags, keeps only its tool-specific ones, and anything
// registered with internal/registry — built-in or third-party — is
// addressable from every tool at once.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"radcrit/internal/arch"
	"radcrit/internal/campaign"
	"radcrit/internal/kernels"
	"radcrit/internal/registry"
)

// CampaignFlags are the flags shared by the campaign-running tools.
type CampaignFlags struct {
	Plan    string
	Device  string
	Kernel  string
	Strikes int
	Seed    uint64
	Scale   string
	Workers int
}

// Bind registers the shared flags on fs, seeding them from the receiver's
// current values (the tool's defaults). Tools with a fixed kernel family
// (abftscan is DGEMM-only) pass withKernel=false to skip -kernel.
func (c *CampaignFlags) Bind(fs *flag.FlagSet, withKernel bool) {
	fs.StringVar(&c.Plan, "plan", c.Plan,
		"JSON campaign plan `file`; the plan supplies the whole campaign, so the other shared flags (-device/-kernel/-strikes/-seed/-scale/-workers) are ignored")
	fs.StringVar(&c.Device, "device", c.Device,
		"device name: "+strings.Join(registry.DeviceNames(), ", "))
	if withKernel {
		fs.StringVar(&c.Kernel, "kernel", c.Kernel,
			"kernel spec, e.g. "+strings.Join(registry.KernelNames(), ", ")+
				" with optional :params (dgemm:1024, hotspot:1024x400); bare names take the scale default")
	}
	fs.IntVar(&c.Strikes, "strikes", c.Strikes, "particle strikes to simulate per cell")
	fs.Uint64Var(&c.Seed, "seed", c.Seed, "campaign seed")
	fs.StringVar(&c.Scale, "scale", c.Scale, "experiment scale: test or paper")
	fs.IntVar(&c.Workers, "workers", c.Workers, "strike worker pool size (0 = GOMAXPROCS)")
}

// ScaleValue parses the -scale flag.
func (c *CampaignFlags) ScaleValue() (campaign.Scale, error) {
	switch c.Scale {
	case "", "test":
		return campaign.TestScale, nil
	case "paper":
		return campaign.PaperScale, nil
	default:
		return campaign.TestScale, fmt.Errorf("-scale must be test or paper, got %q", c.Scale)
	}
}

// ResolveDevice constructs the -device selection through the registry.
func (c *CampaignFlags) ResolveDevice() (arch.Device, error) {
	dev, err := registry.NewDevice(c.Device)
	return dev, WithSuggestion(err)
}

// ResolveKernel constructs the -kernel selection through the registry,
// filling in the scale's default params for bare built-in family names
// ("dgemm" at test scale on the K40 means "dgemm:128").
func (c *CampaignFlags) ResolveKernel(dev arch.Device) (kernels.Kernel, error) {
	s, err := c.ScaleValue()
	if err != nil {
		return nil, err
	}
	k, err := registry.NewKernel(DefaultSpec(c.Kernel, s, dev))
	return k, WithSuggestion(err)
}

// WithSuggestion augments a registry unknown-name error with the closest
// registered name, so "-device k04" fails with "did you mean "k40"?"
// instead of just a list. Other errors (and nil) pass through untouched.
func WithSuggestion(err error) error {
	var ud *registry.UnknownDeviceError
	if errors.As(err, &ud) {
		if s, ok := registry.Suggest(ud.Name, ud.Known); ok {
			return fmt.Errorf("%w — did you mean %q?", err, s)
		}
	}
	var uk *registry.UnknownKernelError
	if errors.As(err, &uk) {
		if s, ok := registry.Suggest(uk.Name, uk.Known); ok {
			return fmt.Errorf("%w — did you mean %q?", err, s)
		}
	}
	return err
}

// DefaultSpec completes a built-in kernel family name that carries no
// params ("dgemm", and aberrations like "dgemm:") with the scale's
// default; full specs and unknown families pass through untouched. The
// result is rebuilt from the split name so a trailing colon cannot leak
// into the params.
func DefaultSpec(spec string, s campaign.Scale, dev arch.Device) string {
	name, params := registry.SplitSpec(spec)
	if params != "" {
		return spec
	}
	switch name {
	case "dgemm":
		return name + ":" + strconv.Itoa(campaign.DGEMMSizes(s, dev)[0])
	case "lavamd":
		return name + ":" + strconv.Itoa(campaign.LavaMDSizes(s, dev)[0])
	case "hotspot":
		side, iters := campaign.HotSpotConfig(s)
		return fmt.Sprintf("%s:%dx%d", name, side, iters)
	case "clamr":
		side, steps := campaign.CLAMRConfig(s)
		return fmt.Sprintf("%s:%dx%d", name, side, steps)
	}
	return spec
}

// LoadPlanFile reads and validates the JSON plan at path.
func LoadPlanFile(path string) (*campaign.Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := campaign.LoadPlan(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// ResolvePlan returns the tool's effective plan: the -plan file when
// given, otherwise a single-cell plan assembled from the shared flags.
// The kernel spec's scale defaults are applied against the -device
// selection, exactly as the pre-plan tools defaulted their -size flags.
func (c *CampaignFlags) ResolvePlan() (*campaign.Plan, error) {
	if c.Plan != "" {
		return LoadPlanFile(c.Plan)
	}
	s, err := c.ScaleValue()
	if err != nil {
		return nil, err
	}
	dev, err := c.ResolveDevice()
	if err != nil {
		return nil, err
	}
	p := campaign.NewPlan(c.Seed, c.Strikes).
		WithWorkers(c.Workers).
		WithCell(c.Device, DefaultSpec(c.Kernel, s, dev))
	if err := p.Validate(); err != nil {
		return nil, WithSuggestion(err)
	}
	return p, nil
}

// AdaptiveFlags are the shared early-stopping flags: a tool binds them
// next to CampaignFlags and applies them to whatever plan it resolved.
// Setting -adaptive-target turns the stop rule on; the rest refine it.
type AdaptiveFlags struct {
	Target     float64
	MinStrikes int
	CheckEvery int
	Alpha      float64
	MaxEpochs  int
}

// Bind registers the adaptive flags on fs.
func (a *AdaptiveFlags) Bind(fs *flag.FlagSet) {
	fs.Float64Var(&a.Target, "adaptive-target", a.Target,
		"stop a cell once its SDC-probability confidence interval is this tight (half-width, e.g. 0.05); 0 disables early stopping")
	fs.IntVar(&a.MinStrikes, "adaptive-min", a.MinStrikes,
		"minimum strikes before a cell may stop early (0 = one check interval)")
	fs.IntVar(&a.CheckEvery, "adaptive-every", a.CheckEvery,
		"strikes between stop-rule checks (0 = the effective stream chunk)")
	fs.Float64Var(&a.Alpha, "adaptive-alpha", a.Alpha,
		"total error probability the confidence sequence spends across all checks (0 = default)")
	fs.IntVar(&a.MaxEpochs, "adaptive-epochs", a.MaxEpochs,
		"budget-reallocation rounds for adaptive campaign runs (0 = default)")
}

// Active reports whether the flags request early stopping.
func (a *AdaptiveFlags) Active() bool { return a.Target != 0 }

// Apply overlays the flags onto p: when -adaptive-target is set the
// plan's spec is replaced outright (flags win over the plan file, like
// every other flag/plan conflict resolves toward the explicit flag);
// otherwise the plan is untouched and a plan-file spec stays in force.
func (a *AdaptiveFlags) Apply(p *campaign.Plan) error {
	if !a.Active() {
		return nil
	}
	p.WithAdaptive(campaign.AdaptiveSpec{
		TargetHalfWidth: a.Target,
		MinStrikes:      a.MinStrikes,
		CheckEvery:      a.CheckEvery,
		Alpha:           a.Alpha,
		MaxEpochs:       a.MaxEpochs,
	})
	return p.Validate()
}

// ProfileFlags are the shared profiling flags of the cmd/ tools, so perf
// work starts from a pprof profile instead of guesswork:
//
//	beamsim -cpuprofile cpu.out -plan plan.json
//	figures -memprofile mem.out -scale paper
//	go tool pprof cpu.out
//
// Profiles are written on a tool's successful exit (Stop); error exits
// through Fatal abandon them.
type ProfileFlags struct {
	CPUProfile string
	MemProfile string

	cpuFile *os.File
}

// Bind registers -cpuprofile and -memprofile on fs.
func (p *ProfileFlags) Bind(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUProfile, "cpuprofile", p.CPUProfile,
		"write a CPU profile to `file` (inspect with: go tool pprof file)")
	fs.StringVar(&p.MemProfile, "memprofile", p.MemProfile,
		"write an allocation (heap) profile to `file` on exit")
}

// Start begins CPU profiling when -cpuprofile was given. Call Stop before
// the tool exits.
func (p *ProfileFlags) Start() error {
	if p.CPUProfile == "" {
		return nil
	}
	f, err := os.Create(p.CPUProfile)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.cpuFile = f
	return nil
}

// Stop ends CPU profiling and writes the heap profile when -memprofile
// was given. Safe to call when Start did nothing.
func (p *ProfileFlags) Stop() error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return err
		}
		p.cpuFile = nil
	}
	if p.MemProfile == "" {
		return nil
	}
	f, err := os.Create(p.MemProfile)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // settle the heap so the profile shows live retention
	return pprof.WriteHeapProfile(f)
}

// Fatal prints "tool: message" to stderr and exits 1.
func Fatal(tool, format string, args ...any) {
	fmt.Fprintf(os.Stderr, tool+": "+format+"\n", args...)
	os.Exit(1)
}
