package cli

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"radcrit/internal/campaign"
	"radcrit/internal/registry"
)

func TestDefaultSpec(t *testing.T) {
	k40, err := registry.NewDevice("k40")
	if err != nil {
		t.Fatal(err)
	}
	phi, err := registry.NewDevice("phi")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		spec  string
		scale campaign.Scale
		dev   string
		want  string
	}{
		{"dgemm", campaign.TestScale, "k40", "dgemm:128"},
		{"dgemm", campaign.PaperScale, "k40", "dgemm:1024"},
		{"lavamd", campaign.TestScale, "phi", "lavamd:3"},
		{"hotspot", campaign.TestScale, "k40", "hotspot:64x80"},
		{"clamr", campaign.TestScale, "k40", "clamr:48x60"},
		{"dgemm:", campaign.TestScale, "k40", "dgemm:128"},    // trailing colon = no params
		{"dgemm:512", campaign.TestScale, "k40", "dgemm:512"}, // explicit params pass through
		{"mystery", campaign.TestScale, "k40", "mystery"},     // unknown families untouched
	}
	for _, c := range cases {
		dev := k40
		if c.dev == "phi" {
			dev = phi
		}
		if got := DefaultSpec(c.spec, c.scale, dev); got != c.want {
			t.Errorf("DefaultSpec(%q, %v, %s) = %q, want %q", c.spec, c.scale, c.dev, got, c.want)
		}
	}
}

func TestResolvePlanFromFlags(t *testing.T) {
	c := CampaignFlags{Device: "k40", Kernel: "dgemm", Strikes: 40, Seed: 5, Scale: "test", Workers: 2}
	p, err := c.ResolvePlan()
	if err != nil {
		t.Fatalf("ResolvePlan: %v", err)
	}
	if len(p.Cells) != 1 || p.Cells[0] != (campaign.CellSpec{Device: "k40", Kernel: "dgemm:128"}) {
		t.Errorf("cells = %+v", p.Cells)
	}
	if p.Seed != 5 || p.Strikes != 40 || p.Workers != 2 {
		t.Errorf("plan = %+v", p)
	}

	c.Device = "gtx"
	if _, err := c.ResolvePlan(); err == nil {
		t.Errorf("unknown device accepted")
	}
	c.Device = "k40"
	c.Scale = "huge"
	if _, err := c.ResolvePlan(); err == nil {
		t.Errorf("bad scale accepted")
	}
}

func TestResolvePlanFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	good := `{"seed":3,"strikes":25,"cells":[{"device":"phi","kernel":"lavamd:3"}]}`
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	c := CampaignFlags{Plan: path}
	p, err := c.ResolvePlan()
	if err != nil {
		t.Fatalf("ResolvePlan(file): %v", err)
	}
	if p.Seed != 3 || p.Strikes != 25 || len(p.Cells) != 1 {
		t.Errorf("plan = %+v", p)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"seed":3,"strikes":0,"cells":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c.Plan = bad
	if _, err := c.ResolvePlan(); err == nil {
		t.Errorf("invalid plan file accepted")
	}
	c.Plan = filepath.Join(dir, "missing.json")
	if _, err := c.ResolvePlan(); err == nil {
		t.Errorf("missing plan file accepted")
	}
}

func TestBindRegistersFlags(t *testing.T) {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	c := CampaignFlags{Device: "k40", Kernel: "dgemm", Strikes: 10, Seed: 1, Scale: "test"}
	c.Bind(fs, true)
	if err := fs.Parse([]string{"-device", "phi", "-kernel", "clamr:48x60", "-strikes", "77", "-workers", "3"}); err != nil {
		t.Fatal(err)
	}
	if c.Device != "phi" || c.Kernel != "clamr:48x60" || c.Strikes != 77 || c.Workers != 3 {
		t.Errorf("parsed flags = %+v", c)
	}

	fs2 := flag.NewFlagSet("tool2", flag.ContinueOnError)
	c2 := CampaignFlags{Device: "k40"}
	c2.Bind(fs2, false)
	if fs2.Lookup("kernel") != nil {
		t.Errorf("withKernel=false still bound -kernel")
	}
}

func TestAdaptiveFlags(t *testing.T) {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	var a AdaptiveFlags
	a.Bind(fs)
	err := fs.Parse([]string{
		"-adaptive-target", "0.05", "-adaptive-min", "100",
		"-adaptive-every", "50", "-adaptive-alpha", "0.01", "-adaptive-epochs", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Active() {
		t.Fatal("flags set but Active() is false")
	}
	p := campaign.NewPlan(1, 200).WithCell("k40", "dgemm:128")
	if err := a.Apply(p); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	want := campaign.AdaptiveSpec{TargetHalfWidth: 0.05, MinStrikes: 100, CheckEvery: 50, Alpha: 0.01, MaxEpochs: 3}
	if p.Adaptive == nil || *p.Adaptive != want {
		t.Fatalf("plan spec %+v, want %+v", p.Adaptive, want)
	}

	// Inactive flags leave a plan-file spec in force.
	var idle AdaptiveFlags
	if idle.Active() {
		t.Fatal("zero flags report active")
	}
	if err := idle.Apply(p); err != nil {
		t.Fatalf("idle Apply: %v", err)
	}
	if p.Adaptive == nil || *p.Adaptive != want {
		t.Fatalf("idle Apply modified the plan: %+v", p.Adaptive)
	}

	// A malformed target surfaces as a validation error.
	bad := AdaptiveFlags{Target: 0.9}
	if err := bad.Apply(campaign.NewPlan(1, 200).WithCell("k40", "dgemm:128")); err == nil {
		t.Fatal("target 0.9 accepted (half-widths cannot exceed 0.5)")
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")

	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	var p ProfileFlags
	p.Bind(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Burn a little CPU so the profile has samples to encode.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s not written: %v", path, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
	// Idle flags are no-ops.
	var idle ProfileFlags
	if err := idle.Start(); err != nil {
		t.Fatalf("idle Start: %v", err)
	}
	if err := idle.Stop(); err != nil {
		t.Fatalf("idle Stop: %v", err)
	}
}
