package cli

import (
	"context"
	"flag"
	"fmt"
	"io"

	"radcrit/internal/api"
	"radcrit/internal/campaign"
	"radcrit/internal/service"
)

// SubmitFlags are the daemon-client flags shared by the campaign tools:
// with -submit the tool's effective plan — whether from -plan or from
// the individual flags — runs on a radcritd daemon instead of
// in-process, sharing the daemon's content-addressed result store with
// every other client. The summaries that come back are bit-identical to
// an in-process StreamRunner run (the daemon's acceptance contract).
type SubmitFlags struct {
	Addr     string
	Priority int
}

// Bind registers -submit and -priority on fs.
func (s *SubmitFlags) Bind(fs *flag.FlagSet) {
	fs.StringVar(&s.Addr, "submit", s.Addr,
		"run the plan on a radcritd daemon at `addr` (e.g. 127.0.0.1:8447) instead of in-process")
	fs.IntVar(&s.Priority, "priority", s.Priority,
		"queue priority when submitting to a daemon (higher runs first)")
}

// Active reports whether the tool should run remotely.
func (s *SubmitFlags) Active() bool { return s.Addr != "" }

// Run submits the plan, waits for the job to finish, and fetches its
// per-cell summaries.
func (s *SubmitFlags) Run(ctx context.Context, p *campaign.Plan) (*service.JobResult, error) {
	return api.NewClient(s.Addr).Run(ctx, p, s.Priority, 0, nil)
}

// PrintJobSummaries renders a daemon job result in the campaign tools'
// summary format, one block per cell.
func PrintJobSummaries(w io.Writer, res *service.JobResult) {
	fmt.Fprintf(w, "job %s: %s\n", res.ID, res.State)
	for i, c := range res.Cells {
		tag := ""
		if c.Cached {
			tag = " [store hit]"
		} else if c.Resumed {
			tag = " [resumed]"
		}
		if c.Error != "" {
			fmt.Fprintf(w, "cell %d (%s on %s): FAILED: %s\n", i, c.Spec.Kernel, c.Spec.Device, c.Error)
			continue
		}
		if c.Info == nil || c.Summary == nil {
			fmt.Fprintf(w, "cell %d (%s on %s): no summary\n", i, c.Spec.Kernel, c.Spec.Device)
			continue
		}
		sum := c.Summary
		fmt.Fprintf(w, "campaign: %s %s %s%s\n", c.Info.Device, c.Info.Kernel, c.Info.Input, tag)
		fmt.Fprintf(w, "  strikes:   %d over %.1f simulated beam hours\n",
			c.Info.Strikes, c.Info.Exposure.BeamHours)
		fmt.Fprintf(w, "  outcomes:  %d masked, %d SDC, %d crash, %d hang\n",
			sum.Tally.Masked, sum.Tally.SDC, sum.Tally.Crash, sum.Tally.Hang)
		for k, t := range sum.Thresholds {
			fmt.Fprintf(w, "  SDC FIT:   %.3g a.u. (threshold %g%%), %.0f%% filtered\n",
				sum.SDCFIT[k], t, 100*sum.FilteredFraction[k])
		}
		fmt.Fprintf(w, "  DUE FIT:   %.3g a.u.\n", sum.DUEFIT)
	}
}
