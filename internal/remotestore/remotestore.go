// Package remotestore puts a network seam in front of the
// content-addressed store: Server exposes any store.Backend over a
// small object-storage-shaped HTTP protocol (PUT/GET/HEAD/DELETE per
// key, plus stats and a server-side GC hook, the way S3 pairs object
// calls with lifecycle policies), and Client implements store.Backend
// over that protocol. A daemon can therefore run against a shared
// result store served by another radcritd — or, eventually, a real
// object store speaking the same verbs — without the service layer
// knowing the difference.
//
// The wire format is deliberately boring: the key is the URL path, the
// value is the body, recency and eviction live server-side where the
// LRU clock is. No external SDK is involved.
package remotestore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"radcrit/internal/store"
)

// Client implements store.Backend against a remotestore.Server (or
// anything speaking the same protocol).
type Client struct {
	// Base is the server's URL prefix, e.g. "http://host:9090/v1/store".
	Base string
	// HTTPClient overrides the transport; nil uses a client with a
	// conservative timeout.
	HTTPClient *http.Client
}

var _ store.Backend = (*Client)(nil)

// New builds a client for a remote store rooted at base.
func New(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) url(key string) string { return c.Base + "/" + key }

func (c *Client) do(method, url string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, nil, fmt.Errorf("remotestore: %w", err)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, nil, fmt.Errorf("remotestore: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, fmt.Errorf("remotestore: %w", err)
	}
	return resp.StatusCode, data, nil
}

// Put stores data under key on the remote server.
func (c *Client) Put(key string, data []byte) error {
	if err := store.ValidKey(key); err != nil {
		return err
	}
	code, body, err := c.do(http.MethodPut, c.url(key), data)
	if err != nil {
		return err
	}
	if code != http.StatusNoContent {
		return fmt.Errorf("remotestore: put %s: HTTP %d: %s", key, code, strings.TrimSpace(string(body)))
	}
	return nil
}

// Get fetches the entry under key; a hit refreshes server-side recency.
func (c *Client) Get(key string) ([]byte, bool) {
	if store.ValidKey(key) != nil {
		return nil, false
	}
	code, body, err := c.do(http.MethodGet, c.url(key), nil)
	if err != nil || code != http.StatusOK {
		return nil, false
	}
	return body, true
}

// Has probes presence without refreshing recency.
func (c *Client) Has(key string) bool {
	if store.ValidKey(key) != nil {
		return false
	}
	code, _, err := c.do(http.MethodHead, c.url(key), nil)
	return err == nil && code == http.StatusOK
}

// Delete removes key's entry on the remote server.
func (c *Client) Delete(key string) error {
	if err := store.ValidKey(key); err != nil {
		return err
	}
	code, body, err := c.do(http.MethodDelete, c.url(key), nil)
	if err != nil {
		return err
	}
	if code != http.StatusNoContent && code != http.StatusNotFound {
		return fmt.Errorf("remotestore: delete %s: HTTP %d: %s", key, code, strings.TrimSpace(string(body)))
	}
	return nil
}

type statsBody struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

type gcBody struct {
	Evicted   int   `json:"evicted"`
	Reclaimed int64 `json:"reclaimed"`
}

// Stats reports the remote store's entry count and total size.
func (c *Client) Stats() (int, int64, error) {
	code, body, err := c.do(http.MethodGet, c.Base+"?stats", nil)
	if err != nil {
		return 0, 0, err
	}
	if code != http.StatusOK {
		return 0, 0, fmt.Errorf("remotestore: stats: HTTP %d", code)
	}
	var sb statsBody
	if err := json.Unmarshal(body, &sb); err != nil {
		return 0, 0, fmt.Errorf("remotestore: stats: %w", err)
	}
	return sb.Entries, sb.Bytes, nil
}

// GC asks the server to evict down to maxBytes. Eviction policy runs
// server-side, where the LRU clock lives.
func (c *Client) GC(maxBytes int64) (int, int64, error) {
	if maxBytes <= 0 {
		return 0, 0, nil
	}
	code, body, err := c.do(http.MethodPost, c.Base+"/gc?max_bytes="+strconv.FormatInt(maxBytes, 10), nil)
	if err != nil {
		return 0, 0, err
	}
	if code != http.StatusOK {
		return 0, 0, fmt.Errorf("remotestore: gc: HTTP %d", code)
	}
	var gb gcBody
	if err := json.Unmarshal(body, &gb); err != nil {
		return 0, 0, fmt.Errorf("remotestore: gc: %w", err)
	}
	return gb.Evicted, gb.Reclaimed, nil
}

// Server exposes a store.Backend over the remotestore protocol.
type Server struct {
	backend store.Backend
}

// NewServer wraps backend for serving.
func NewServer(b store.Backend) *Server { return &Server{backend: b} }

// ServeHTTP handles one store request. Mount it under a prefix and pass
// the key as the remaining path, e.g. mux.Handle("/v1/store/", ...) with
// http.StripPrefix.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := strings.Trim(r.URL.Path, "/")
	switch {
	case key == "" && r.Method == http.MethodGet:
		entries, bytes, err := s.backend.Stats()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, statsBody{Entries: entries, Bytes: bytes})
	case key == "gc" && r.Method == http.MethodPost:
		maxBytes, err := strconv.ParseInt(r.URL.Query().Get("max_bytes"), 10, 64)
		if err != nil || maxBytes <= 0 {
			http.Error(w, "remotestore: bad max_bytes", http.StatusBadRequest)
			return
		}
		evicted, reclaimed, err := s.backend.GC(maxBytes)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, gcBody{Evicted: evicted, Reclaimed: reclaimed})
	default:
		s.serveKey(w, r, key)
	}
}

func (s *Server) serveKey(w http.ResponseWriter, r *http.Request, key string) {
	if err := store.ValidKey(key); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut:
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.backend.Put(key, data); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodGet:
		data, ok := s.backend.Get(key)
		if !ok {
			http.Error(w, "remotestore: not found", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(data)
	case http.MethodHead:
		if !s.backend.Has(key) {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
	case http.MethodDelete:
		if err := s.backend.Delete(key); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "remotestore: method not allowed", http.StatusMethodNotAllowed)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	data, _ := json.Marshal(v)
	_, _ = w.Write(data)
}
