package campaign

// This file is the adaptive campaign layer: sequential early stopping
// for individual cells and deterministic strike-budget reallocation
// across a plan (DESIGN.md §11).
//
// The determinism story, because everything else hangs off it: a stop
// decision is a pure function of (SDC count, trials) evaluated at chunk
// boundaries, through stats.StopRule's anytime-valid confidence
// sequence. The engine already guarantees that the outcome stream is a
// bit-identical, chunk-aligned sequence for any worker count and any
// interruption history, so two runs of the same cell always present the
// rule with the same (SDC, trials) pairs in the same order and stop at
// the same strike. An early-stopped cell is therefore exactly "a cell
// whose strike budget was its stop point": its summary is byte-identical
// to a straight run with Strikes = the stop point, and a salvaged log
// replayed through ResumePlanCell re-derives the same decision from the
// same events.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"

	"radcrit/internal/fault"
	"radcrit/internal/injector"
	"radcrit/internal/logdata"
	"radcrit/internal/stats"
)

// ErrEarlyStop is the cancellation cause an earlyStopSink arms when its
// stop rule fires: the cell is complete at its chunk-aligned stop point,
// not aborted. RunPlanCell translates it back into a nil error with the
// info/summary rescaled to the strikes actually consumed.
var ErrEarlyStop = errors.New("campaign: confidence target reached")

// Default adaptive parameters.
const (
	// DefaultAdaptiveAlpha is the confidence sequence's overall error
	// budget when a spec leaves Alpha unset.
	DefaultAdaptiveAlpha = stats.DefaultAlpha
	// DefaultMaxEpochs bounds the AdaptiveRunner's reallocation rounds.
	DefaultMaxEpochs = 8
)

// AdaptiveSpec configures sequential early stopping for a plan: stop a
// cell once the anytime-valid confidence interval for its SDC proportion
// is tighter than TargetHalfWidth, and (under AdaptiveRunner) reallocate
// the freed strikes to the cells with the widest intervals.
type AdaptiveSpec struct {
	// TargetHalfWidth is the interval half-width at which a cell stops.
	// Required, in (0, 0.5]: a proportion's half-width cannot exceed 0.5.
	TargetHalfWidth float64 `json:"target_half_width"`
	// MinStrikes is the floor below which no cell stops (0 = none).
	MinStrikes int `json:"min_strikes,omitempty"`
	// CheckEvery is the look spacing in strikes. The engine forces its
	// stream chunk to this value so every chunk boundary is a scheduled
	// look; 0 adopts the plan's effective stream chunk.
	CheckEvery int `json:"check_every,omitempty"`
	// Alpha is the confidence sequence's overall error budget
	// (0 = DefaultAdaptiveAlpha).
	Alpha float64 `json:"alpha,omitempty"`
	// MaxEpochs bounds AdaptiveRunner's budget-reallocation rounds
	// (0 = DefaultMaxEpochs). It never affects a single cell's summary —
	// only how many times freed strikes are re-dealt — so it is excluded
	// from CellKey.
	MaxEpochs int `json:"max_epochs,omitempty"`
}

// validate rejects malformed specs with errors naming the field.
func (a *AdaptiveSpec) validate() error {
	if !(a.TargetHalfWidth > 0 && a.TargetHalfWidth <= 0.5) {
		return fmt.Errorf("target_half_width must be in (0, 0.5], got %v", a.TargetHalfWidth)
	}
	if a.MinStrikes < 0 {
		return fmt.Errorf("negative min_strikes %d", a.MinStrikes)
	}
	if a.CheckEvery < 0 {
		return fmt.Errorf("negative check_every %d", a.CheckEvery)
	}
	if a.Alpha < 0 || a.Alpha >= 1 {
		return fmt.Errorf("alpha must be in [0, 1), got %v", a.Alpha)
	}
	if a.MaxEpochs < 0 {
		return fmt.Errorf("negative max_epochs %d", a.MaxEpochs)
	}
	return nil
}

// normalized fills defaults against the plan's effective stream chunk,
// yielding the canonical spec CellKey and the engine run under.
func (a AdaptiveSpec) normalized(chunk int) AdaptiveSpec {
	if a.CheckEvery <= 0 {
		a.CheckEvery = chunk
	}
	if a.Alpha <= 0 || a.Alpha >= 1 {
		a.Alpha = DefaultAdaptiveAlpha
	}
	if a.MaxEpochs <= 0 {
		a.MaxEpochs = DefaultMaxEpochs
	}
	return a
}

// rule converts the (normalized) spec into the engine's stop rule.
func (a AdaptiveSpec) rule() stats.StopRule {
	return stats.StopRule{
		TargetHalfWidth: a.TargetHalfWidth,
		MinStrikes:      a.MinStrikes,
		CheckEvery:      a.CheckEvery,
		Alpha:           a.Alpha,
	}
}

// effectiveChunk is the stream chunk the engine will actually use.
func (cfg Config) effectiveChunk() int {
	if cfg.StreamChunk > 0 {
		return cfg.StreamChunk
	}
	return DefaultStreamChunk
}

// adaptiveConfig resolves cfg's adaptive spec: defaults filled in, the
// stream chunk forced to the look spacing (so every chunk boundary is a
// scheduled look and stop points land exactly on #CHK records), and the
// stop rule extracted. Non-adaptive configs pass through untouched.
func adaptiveConfig(cfg Config) (Config, stats.StopRule, bool) {
	if cfg.Adaptive == nil {
		return cfg, stats.StopRule{}, false
	}
	a := cfg.Adaptive.normalized(cfg.effectiveChunk())
	cfg.Adaptive = &a
	cfg.StreamChunk = a.CheckEvery
	return cfg, a.rule(), true
}

// earlyStopSink rides the streaming sink stack, counting SDC outcomes
// and evaluating the stop rule at every chunk boundary. When the rule
// fires it cancels the run's context with ErrEarlyStop — the engine's
// existing chunk-aligned cancellation path does the actual stopping, so
// the sinks ahead of it always hold a clean chunk-aligned prefix.
//
// It must be appended LAST in the sink order: a CheckpointSink earlier
// in the stack has then already flushed the #CHK record the decision is
// anchored to before the stop is requested.
type earlyStopSink struct {
	rule   stats.StopRule
	cancel context.CancelCauseFunc

	sdc     int
	stopped bool
	stopAt  int
}

// Consume implements Sink.
func (s *earlyStopSink) Consume(_ int, out injector.Outcome) {
	if out.Class == fault.SDC {
		s.sdc++
	}
}

// seed replays one salvaged log event into the SDC count, so a resumed
// tail evaluates the rule over the full history.
func (s *earlyStopSink) seed(ev logdata.Event) {
	if ev.Class == fault.SDC {
		s.sdc++
	}
}

// FlushChunk implements ChunkFlusher: chunk boundaries are the looks.
func (s *earlyStopSink) FlushChunk(next int) { s.evaluate(next) }

// evaluate runs the stop rule at an absolute trial count.
func (s *earlyStopSink) evaluate(trials int) {
	if s.stopped {
		return
	}
	d, ok := s.rule.Evaluate(s.sdc, trials)
	if !ok || !d.Stop {
		return
	}
	s.stopped, s.stopAt = true, trials
	if s.cancel != nil {
		s.cancel(ErrEarlyStop)
	}
}

// mark renders the sink's state as the epoch record for a run that ended
// (stopped or exhausted) at consumed strikes under the given allocation.
func (s *earlyStopSink) mark(epoch, alloc, consumed int) logdata.EpochMark {
	return logdata.EpochMark{
		Epoch:     epoch,
		Alloc:     alloc,
		Consumed:  consumed,
		SDC:       s.sdc,
		HalfWidth: s.rule.HalfWidthAt(s.sdc, consumed),
		Stopped:   s.stopped,
	}
}

// EpochRecorder is implemented by sinks that persist #EPOCH budget
// records (CheckpointSink). The adaptive paths scan a cell's extra sinks
// for it, so whatever checkpoint log the caller attached receives the
// stop record next to its #CHK lines.
type EpochRecorder interface {
	RecordEpoch(m logdata.EpochMark) error
}

// recordEpoch writes m through every EpochRecorder among sinks. Write
// errors are sticky inside the recorder and surface at its Close, like
// every other logging error on the consume path.
func recordEpoch(sinks []Sink, m logdata.EpochMark) {
	for _, s := range sinks {
		if r, ok := s.(EpochRecorder); ok {
			_ = r.RecordEpoch(m)
		}
	}
}

// AdaptiveRunner executes a plan in budget epochs: every cell starts
// with the plan's strike budget; cells whose confidence interval reaches
// the target stop early and return their unused strikes to a shared
// pool; between epochs the pool is re-dealt (in chunk quanta) to the
// open cells with the widest intervals, widest first. The loop ends when
// every cell has stopped, the pool is too small to deal, or MaxEpochs is
// reached.
//
// Reallocation is a pure function of the epoch log — cells are ranked by
// the same half-width the #EPOCH records carry, ties break on plan index
// — so a re-run of the same plan deals the same budgets. Each cell's
// summary is byte-identical to a straight run with Strikes = the strikes
// it actually consumed (the early-stop determinism contract), whatever
// epoch history produced that number.
//
// A plan without an Adaptive spec delegates to StreamRunner: outcomes
// are byte-identical to today's non-adaptive path.
type AdaptiveRunner struct {
	Progress Progress
	// Logs, when non-nil, supplies a checkpoint-log writer per cell. The
	// runner streams the cell's #CHK and #EPOCH records into it across
	// epochs and closes it when the plan finishes; an error creating a
	// log fails that cell. On cancellation the log is left without its
	// #END trailer — resumable, like every interrupted checkpoint log.
	Logs func(i int, spec CellSpec) (io.WriteCloser, error)
}

var _ Runner = (*AdaptiveRunner)(nil)

// adaptiveCellState is one cell's long-lived state across epochs.
type adaptiveCellState struct {
	acc  *SummaryAccumulator
	chk  *CheckpointSink
	logw io.WriteCloser
	es   earlyStopSink
	info StreamInfo

	budget   int // current strike allocation
	consumed int // chunk-aligned strikes executed so far
	started  bool
	failed   bool
}

// open reports the cell still wants strikes: neither stopped nor failed.
func (st *adaptiveCellState) open() bool {
	return !st.failed && !st.es.stopped
}

// Run implements Runner.
func (r *AdaptiveRunner) Run(ctx context.Context, p *Plan) (*PlanResult, error) {
	if p == nil || p.Adaptive == nil {
		sr := &StreamRunner{Progress: r.Progress}
		return sr.Run(ctx, p)
	}
	res, cells, err := planStart(ctx, p)
	if err != nil {
		return res, err
	}
	baseCfg, rule, _ := adaptiveConfig(p.Config())
	chunk := baseCfg.StreamChunk
	maxEpochs := baseCfg.Adaptive.MaxEpochs

	states := make([]*adaptiveCellState, len(cells))
	for i := range cells {
		st := &adaptiveCellState{
			acc:    NewSummaryAccumulator(res.Thresholds),
			budget: baseCfg.Strikes,
		}
		st.es.rule = rule
		states[i] = st
		if r.Logs == nil {
			continue
		}
		info, err := CellInfo(cells[i].Dev, cells[i].Kern, baseCfg)
		if err != nil {
			st.failed = true
			res.Cells[i].Err = err
			continue
		}
		w, err := r.Logs(i, p.Cells[i])
		if err != nil {
			st.failed = true
			res.Cells[i].Err = cellError(cells[i].Dev, cells[i].Kern, err)
			continue
		}
		st.logw = w
		if st.chk, err = NewCheckpointSink(w, info, baseCfg.Seed); err != nil {
			st.failed = true
			res.Cells[i].Err = cellError(cells[i].Dev, cells[i].Kern, err)
		}
	}

	pool := 0
	for epoch := 1; epoch <= maxEpochs; epoch++ {
		for i, cell := range cells {
			st := states[i]
			if st.failed || !st.open() || st.consumed >= st.budget {
				continue
			}
			if cerr := ctx.Err(); cerr != nil {
				return r.finishCancelled(res, states, cerr)
			}
			cfg := baseCfg
			cfg.Strikes = st.budget
			alloc := st.budget

			runCtx, cancel := context.WithCancelCause(ctx)
			st.es.cancel = cancel
			sinks := make([]Sink, 0, 4)
			sinks = append(sinks, st.acc)
			if r.Progress.OnChunk != nil {
				sinks = append(sinks, &chunkRelay{cell: i, fn: r.Progress.OnChunk})
			}
			if st.chk != nil {
				sinks = append(sinks, st.chk)
			}
			sinks = append(sinks, &st.es)
			info, err := RunStreamingFromCtx(runCtx, cell.Dev, cell.Kern, cfg, st.consumed, sinks...)
			cancel(nil)
			st.es.cancel = nil
			if err != nil && !(st.es.stopped && ctx.Err() == nil) {
				if isCancellation(err) {
					st.info, st.started = info, true
					st.consumed = st.acc.Consumed()
					return r.finishCancelled(res, states, ctx.Err())
				}
				st.failed = true
				res.Cells[i].Err = err
				continue
			}
			st.info, st.started = info, true
			st.consumed = st.acc.Consumed()
			if st.es.stopped {
				pool += st.budget - st.consumed
				st.budget = st.consumed
			}
			if st.chk != nil {
				_ = st.chk.RecordEpoch(st.es.mark(epoch, alloc, st.consumed))
			}
		}

		var open []int
		for i, st := range states {
			if st.open() {
				open = append(open, i)
			}
		}
		if len(open) == 0 || epoch == maxEpochs || pool < chunk {
			break
		}
		// Reallocate the freed pool to the widest intervals, widest first
		// (ties in plan order), in chunk quanta so continuation runs stay
		// look-aligned. Each open cell gets an equal chunk-quantized
		// share; the remainder is dealt a chunk at a time down the
		// ranking.
		sort.SliceStable(open, func(a, b int) bool {
			sa, sb := states[open[a]], states[open[b]]
			ha := rule.HalfWidthAt(sa.es.sdc, sa.consumed)
			hb := rule.HalfWidthAt(sb.es.sdc, sb.consumed)
			if ha != hb {
				return ha > hb
			}
			return open[a] < open[b]
		})
		per := pool / len(open)
		per -= per % chunk
		rem := pool - per*len(open)
		for _, idx := range open {
			add := per
			if rem >= chunk {
				add += chunk
				rem -= chunk
			}
			states[idx].budget += add
			pool -= add
		}
	}

	for i, st := range states {
		out := res.Cells[i]
		if st.failed || !st.started {
			if out.Err == nil && !st.started {
				out.Err = fmt.Errorf("campaign: cell %d never ran", i)
			}
			r.closeCell(st, out)
			if r.Progress.OnCell != nil {
				r.Progress.OnCell(i, out)
			}
			continue
		}
		info := prefixInfo(st.info, st.consumed)
		out.Info = info
		out.Summary = st.acc.Summary(info)
		r.closeCell(st, out)
		if r.Progress.OnCell != nil {
			r.Progress.OnCell(i, out)
		}
	}
	return res, res.Err()
}

// closeCell seals a cell's checkpoint log (trailer + file handle).
func (r *AdaptiveRunner) closeCell(st *adaptiveCellState, out *CellOutcome) {
	if st.chk != nil {
		if err := st.chk.Close(); err != nil && out.Err == nil {
			out.Err = err
		}
		st.chk = nil
	}
	if st.logw != nil {
		if err := st.logw.Close(); err != nil && out.Err == nil {
			out.Err = err
		}
		st.logw = nil
	}
}

// finishCancelled fills partial outcomes after an external cancellation:
// cells with progress keep their prefix-rescaled info and partial
// summary (like StreamRunner's cancelled cell), checkpoint logs are left
// WITHOUT their #END trailer so they stay resumable, and untouched cells
// are marked with ctx's error.
func (r *AdaptiveRunner) finishCancelled(res *PlanResult, states []*adaptiveCellState, cerr error) (*PlanResult, error) {
	for i, st := range states {
		out := res.Cells[i]
		if st.started {
			info := prefixInfo(st.info, st.consumed)
			out.Info = info
			out.Summary = st.acc.Summary(info)
			if !st.es.stopped {
				out.Err = cerr
			}
		} else if out.Err == nil {
			out.Err = cerr
		}
		// Close file handles but never the CheckpointSink: no #END means
		// the log resumes.
		if st.logw != nil {
			_ = st.logw.Close()
			st.logw = nil
		}
	}
	return res, cerr
}
