package campaign

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"radcrit/internal/beam"
)

// FuzzCellKey pins the two properties the persistent store leans on:
// the canonical cell encoding is deterministic (equal inputs → equal
// key) and injective (the payload decodes back to exactly the inputs,
// so distinct inputs can never collide before the hash). It also pins
// what the key deliberately ignores: Workers and StreamChunk, which can
// change wall time and checkpoint granularity but never a summary bit.
func FuzzCellKey(f *testing.F) {
	f.Add("k40", "dgemm:128", "LANSCE", uint64(42), 600, 1.5, 0.0, 2.0, uint8(2))
	f.Add("", "", "", uint64(0), 0, 0.0, 0.0, 0.0, uint8(0))
	// Adversarial names that try to smuggle field separators.
	f.Add("x\nkernel=y", "5:abc", "ISIS\n", uint64(1), -3, -0.0, math.Inf(1), 1e-300, uint8(1))
	f.Add("device=9:", "a,b", "thresholds=", ^uint64(0), 1<<30, 6.02e23, -1.0, 0.5, uint8(3))
	f.Fuzz(func(t *testing.T, device, kernel, facility string, seed uint64, strikes int, baseExec, t0, t1 float64, nThresh uint8) {
		// All NaN bit patterns render as one "NaN" token, so injectivity
		// cannot (and need not) hold across them: no real facility or
		// threshold is NaN.
		if math.IsNaN(baseExec) || math.IsNaN(t0) || math.IsNaN(t1) {
			t.Skip("NaN inputs are out of the encoding's domain")
		}
		spec := CellSpec{Device: device, Kernel: kernel}
		cfg := Config{
			Seed:            seed,
			Strikes:         strikes,
			BaseExecSeconds: baseExec,
			Facility:        beam.Facility{Name: facility},
		}
		// Halving cannot manufacture a NaN from non-NaN inputs, unlike
		// t0+t1 (Inf + -Inf), so the skip above keeps the whole list
		// inside the encoding's domain.
		thresholds := []float64{t0, t1, t0 * 0.5}[:nThresh%4]

		payload := cellKeyPayload(spec, cfg, thresholds)
		if again := cellKeyPayload(spec, cfg, thresholds); again != payload {
			t.Fatalf("payload is not deterministic:\n%q\n%q", payload, again)
		}
		key := CellKey(spec, cfg, thresholds)
		if len(key) != 64 {
			t.Fatalf("CellKey = %q, want 64 hex chars", key)
		}
		if again := CellKey(spec, cfg, thresholds); again != key {
			t.Fatalf("CellKey is not deterministic: %s vs %s", key, again)
		}

		// Workers and StreamChunk must not leak into the key: they are
		// wall-time knobs, excluded so a re-sharded re-run still hits.
		noisy := cfg
		noisy.Workers = 7
		noisy.StreamChunk = 33
		if CellKey(spec, noisy, thresholds) != key {
			t.Fatal("Workers/StreamChunk changed the cell key")
		}

		// Injectivity: the payload must decode back to the exact inputs.
		// An encoding a parser can invert cannot map two inputs to one
		// payload — even when field values contain \n, "field=" or ":".
		gotSpec, gotCfg, gotThresh := decodeKeyPayload(t, payload)
		if gotSpec != spec {
			t.Errorf("decoded spec %+v, want %+v", gotSpec, spec)
		}
		if gotCfg.Seed != seed || gotCfg.Strikes != strikes || gotCfg.Facility.Name != facility {
			t.Errorf("decoded cfg %+v, want seed=%d strikes=%d facility=%q", gotCfg, seed, strikes, facility)
		}
		if !sameFloat(gotCfg.BaseExecSeconds, baseExec) {
			t.Errorf("decoded base exec %x, want %x", gotCfg.BaseExecSeconds, baseExec)
		}
		if len(gotThresh) != len(thresholds) {
			t.Fatalf("decoded %d thresholds, want %d", len(gotThresh), len(thresholds))
		}
		for i := range thresholds {
			if !sameFloat(gotThresh[i], thresholds[i]) {
				t.Errorf("decoded threshold[%d] = %x, want %x", i, gotThresh[i], thresholds[i])
			}
		}
	})
}

// sameFloat compares by bit pattern: the key is a function of the exact
// bits, so -0 and +0 are distinct on purpose.
func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// decodeKeyPayload inverts cellKeyPayload. It is the test's independent
// reading of the canonical encoding — if the encoding ever becomes
// ambiguous (say, a field loses its length prefix), some fuzz input will
// decode to different values than went in.
func decodeKeyPayload(t *testing.T, payload string) (spec CellSpec, cfg Config, thresholds []float64) {
	t.Helper()
	rest, ok := strings.CutPrefix(payload, cellKeyVersion+"\n")
	if !ok {
		t.Fatalf("payload missing version header: %q", payload)
	}
	spec.Device, rest = cutLenStr(t, rest, "device")
	spec.Kernel, rest = cutLenStr(t, rest, "kernel")
	var line string
	line, rest = cutLine(t, rest)
	u, err := strconv.ParseUint(strings.TrimPrefix(line, "seed="), 10, 64)
	if err != nil {
		t.Fatalf("seed line %q: %v", line, err)
	}
	cfg.Seed = u
	line, rest = cutLine(t, rest)
	n, err := strconv.Atoi(strings.TrimPrefix(line, "strikes="))
	if err != nil {
		t.Fatalf("strikes line %q: %v", line, err)
	}
	cfg.Strikes = n
	line, rest = cutLine(t, rest)
	cfg.BaseExecSeconds = parseHexFloat(t, strings.TrimPrefix(line, "base_exec_seconds="))
	cfg.Facility.Name, rest = cutLenStr(t, rest, "facility")
	line, rest = cutLine(t, rest)
	list := strings.TrimPrefix(line, "thresholds=")
	if list != "" {
		for _, tok := range strings.Split(list, ",") {
			thresholds = append(thresholds, parseHexFloat(t, tok))
		}
	}
	if rest != "" {
		t.Fatalf("trailing bytes after payload: %q", rest)
	}
	return spec, cfg, thresholds
}

// cutLenStr consumes one length-prefixed field: "name=<len>:<val>\n"
// where val may itself contain newlines, '=' or ':'.
func cutLenStr(t *testing.T, s, field string) (val, rest string) {
	t.Helper()
	s, ok := strings.CutPrefix(s, field+"=")
	if !ok {
		t.Fatalf("payload missing %q field at %q", field, s)
	}
	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		t.Fatalf("%s field missing length prefix: %q", field, s)
	}
	n, err := strconv.Atoi(s[:colon])
	if err != nil || n < 0 || colon+1+n >= len(s) {
		t.Fatalf("%s field has bad length %q (err %v)", field, s[:colon], err)
	}
	val, s = s[colon+1:colon+1+n], s[colon+1+n:]
	if s[0] != '\n' {
		t.Fatalf("%s field not newline-terminated after %d bytes", field, n)
	}
	return val, s[1:]
}

func cutLine(t *testing.T, s string) (line, rest string) {
	t.Helper()
	line, rest, ok := strings.Cut(s, "\n")
	if !ok {
		t.Fatalf("payload truncated: %q", s)
	}
	return line, rest
}

func parseHexFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("float token %q: %v", s, err)
	}
	// FormatFloat('x') spells the sign explicitly, so a negative zero
	// round-trips; ParseFloat preserves it.
	if s == "-0x0p+00" && !math.Signbit(v) {
		t.Fatalf("negative zero lost its sign: %q -> %x", s, v)
	}
	return v
}
