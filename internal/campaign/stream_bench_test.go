package campaign

import (
	"runtime"
	"testing"

	"radcrit/internal/injector"
	"radcrit/internal/k40"
	"radcrit/internal/kernels/dgemm"
)

// peakSink samples the live heap (after GC) at chunk boundaries, tracking
// the streaming engine's true peak retention. Sampling every chunk would
// spend more time in GC than in strikes, so it probes every `interval`
// flushes.
type peakSink struct {
	interval int
	flushes  int
	peak     uint64
}

func (p *peakSink) Consume(int, injector.Outcome) {}

func (p *peakSink) FlushChunk(int) {
	p.flushes++
	if p.interval > 1 && p.flushes%p.interval != 0 {
		return
	}
	if live := liveHeap(); live > p.peak {
		p.peak = live
	}
}

func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// benchStreamingPeak measures the streaming engine's peak live heap on a
// large cell with the standard aggregate reducer stack. The acceptance
// criterion is boundedness: the reported peak must not grow with the
// strike (hence SDC) count — compare the 12500- and 50000-strike numbers.
func benchStreamingPeak(b *testing.B, strikes int) {
	dev := k40.New()
	kern := dgemm.New(128)
	cfg := DefaultConfig(42, strikes)
	// Warm the shared golden-state handle so the measurement isolates
	// engine retention from one-time kernel state.
	if _, err := RunStreaming(dev, kern, DefaultConfig(42, 2)); err != nil {
		b.Fatal(err)
	}
	base := liveHeap()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := &peakSink{interval: 8}
		tally := NewTallyReducer()
		counts := NewSDCCountReducer(0, 2)
		loc := NewLocalityReducer(2)
		scatter := NewScatterReducer(100, 1024, nil)
		if _, err := RunStreaming(dev, kern, cfg, tally, counts, loc, scatter, sink); err != nil {
			b.Fatal(err)
		}
		if sink.peak > base {
			b.ReportMetric(float64(sink.peak-base), "peak-live-bytes")
		} else {
			b.ReportMetric(0, "peak-live-bytes")
		}
		b.ReportMetric(float64(tally.Tally.SDC), "SDCs")
	}
}

func BenchmarkStreamingPeak12k(b *testing.B) { benchStreamingPeak(b, 12500) }
func BenchmarkStreamingPeak50k(b *testing.B) { benchStreamingPeak(b, 50000) }

// benchBatchRetained measures what the batch engine holds live once a
// cell of the same size completes: the retained SDC reports the memo
// cache keeps for the Result's lifetime. This is the O(SDC) cost the
// streaming engine removes.
func benchBatchRetained(b *testing.B, strikes int) {
	dev := k40.New()
	kern := dgemm.New(128)
	cfg := DefaultConfig(42, strikes)
	if _, err := RunStreaming(dev, kern, DefaultConfig(42, 2)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before := liveHeap()
		res := RunFresh(dev, kern, cfg)
		after := liveHeap()
		if after > before {
			b.ReportMetric(float64(after-before), "retained-bytes")
		}
		b.ReportMetric(float64(res.Tally.SDC), "SDCs")
		runtime.KeepAlive(res)
	}
}

func BenchmarkBatchRetained12k(b *testing.B) { benchBatchRetained(b, 12500) }
func BenchmarkBatchRetained50k(b *testing.B) { benchBatchRetained(b, 50000) }
