package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// cellKeyVersion stamps the canonical cell encoding. Bump it whenever the
// encoding below changes shape *or* whenever an engine change legitimately
// alters campaign outcomes (a golden-table regeneration): persisted store
// entries keyed under the old version then become unreachable instead of
// serving stale summaries.
const cellKeyVersion = "radcrit-cell-v1"

// CellKey returns the content address of one plan cell's result: a
// sha256 over a canonical encoding of everything that determines the
// cell's Summary bit pattern — the device and kernel spec as the plan
// names them, the seed, the strike budget, the base execution time, the
// facility, and the summary thresholds.
//
// Two cells with equal keys produce byte-identical summaries (the engine
// is deterministic in exactly these inputs), so a persistent result store
// can serve one cell's summary for the other — across jobs, processes and
// daemon restarts. Config.Workers and Config.StreamChunk are deliberately
// excluded for the same reason they are excluded from the in-process memo
// key: they can never change results, only wall time and checkpoint
// granularity.
//
// The key is spelled over the *spec strings*, not the resolved kernels:
// "dgemm:128" and a hypothetical alias resolving to the same kernel hash
// differently. That is the safe direction — distinct keys only cost a
// recomputation, never a wrong answer.
func CellKey(spec CellSpec, cfg Config, thresholds []float64) string {
	sum := sha256.Sum256([]byte(cellKeyPayload(spec, cfg, thresholds)))
	return hex.EncodeToString(sum[:])
}

// cellKeyPayload is the canonical pre-hash encoding behind CellKey. It is
// injective over its inputs (length-prefixed strings, hex-formatted
// floats) — FuzzCellKey round-trips it to keep that property pinned.
func cellKeyPayload(spec CellSpec, cfg Config, thresholds []float64) string {
	var b strings.Builder
	b.WriteString(cellKeyVersion)
	b.WriteByte('\n')
	keyStr(&b, "device", spec.Device)
	keyStr(&b, "kernel", spec.Kernel)
	fmt.Fprintf(&b, "seed=%d\n", cfg.Seed)
	fmt.Fprintf(&b, "strikes=%d\n", cfg.Strikes)
	// Floats are encoded as hex to make the key a function of the exact
	// bit pattern, not of a decimal rendering.
	fmt.Fprintf(&b, "base_exec_seconds=%s\n", strconv.FormatFloat(cfg.BaseExecSeconds, 'x', -1, 64))
	keyStr(&b, "facility", cfg.Facility.Name)
	b.WriteString("thresholds=")
	for i, t := range thresholds {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(t, 'x', -1, 64))
	}
	b.WriteByte('\n')
	// An adaptive spec changes where a cell stops, so it is part of the
	// result's identity. The line is appended only when a spec is present:
	// every pre-adaptive key (and its persisted store entry) is unchanged.
	// The spec is keyed in normalized form so "CheckEvery: 0" under a
	// 50-strike chunk and an explicit "CheckEvery: 50" — identical stop
	// schedules — share one key. MaxEpochs is deliberately absent: it
	// bounds AdaptiveRunner's reallocation rounds and never affects a
	// single cell's summary at a given budget.
	if cfg.Adaptive != nil {
		a := cfg.Adaptive.normalized(cfg.effectiveChunk())
		fmt.Fprintf(&b, "adaptive=%s,%d,%d,%s\n",
			strconv.FormatFloat(a.TargetHalfWidth, 'x', -1, 64),
			a.MinStrikes, a.CheckEvery,
			strconv.FormatFloat(a.Alpha, 'x', -1, 64))
	}
	return b.String()
}

// keyStr writes one length-prefixed string field, so no crafted name can
// collide with another field's encoding (a device called "x\nkernel=y"
// still hashes distinctly).
func keyStr(b *strings.Builder, field, val string) {
	fmt.Fprintf(b, "%s=%d:%s\n", field, len(val), val)
}

// CellKey returns the content address of the i-th plan cell under the
// plan's effective configuration and thresholds (the form serving layers
// use: one key per cell of a submitted plan).
func (p *Plan) CellKey(i int) string {
	return CellKey(p.Cells[i], p.Config(), p.EffectiveThresholds())
}
