//go:build !race

package campaign

import (
	"testing"

	"radcrit/internal/beam"
	"radcrit/internal/fault"
	"radcrit/internal/injector"
	"radcrit/internal/xrand"
)

// TestMaskedStrikeAllocBounds pins the zero-allocation contract of the
// strike hot path (ISSUE 4): a masked strike — the overwhelming majority
// of a campaign — allocates at most 2 objects end to end (the per-index
// RNG split plus slack for pool jitter) for every kernel family, on both
// the architecturally-masked path (no kernel run) and, where the probe
// window contains one, the logically-masked path (kernel runs against
// pooled scratch, empty report recycled in place).
//
// Excluded under -race: the race runtime's instrumentation allocates.
func TestMaskedStrikeAllocBounds(t *testing.T) {
	for _, cell := range determinismCells() {
		ses, err := injector.NewSession(cell.Dev, cell.Kern)
		if err != nil {
			t.Fatal(err)
		}
		prof := ses.Profile()
		base := xrand.New(0xA110C)

		runStrike := func(i uint64) injector.Outcome {
			sub := base.Split(i + 1)
			strike := fault.Strike{When: sub.Float64(), Energy: beam.StrikeEnergy(sub)}
			out := ses.RunOne(strike, sub)
			ses.ReleaseReport(out.Report)
			return out
		}
		syndromeOf := func(i uint64) fault.OutcomeClass {
			sub := base.Split(i + 1)
			strike := fault.Strike{When: sub.Float64(), Energy: beam.StrikeEnergy(sub)}
			return cell.Dev.ResolveStrike(prof, strike, sub).Outcome
		}

		// Scan for masked strikes, warming every pool on the way. An
		// index whose syndrome is an SDC but whose outcome is Masked
		// exercised the kernel and was logically masked.
		archMasked, logicalMasked := int64(-1), int64(-1)
		for i := uint64(0); i < 4000 && (archMasked < 0 || logicalMasked < 0); i++ {
			syn := syndromeOf(i)
			out := runStrike(i)
			if out.Class != fault.Masked {
				continue
			}
			if syn == fault.SDC {
				logicalMasked = int64(i)
			} else {
				archMasked = int64(i)
			}
		}
		if archMasked < 0 {
			t.Fatalf("%s: no architecturally masked strike in probe window", cell.Kern.Name())
		}
		check := func(label string, idx int64) {
			avg := testing.AllocsPerRun(100, func() { runStrike(uint64(idx)) })
			if avg > 2 {
				t.Errorf("%s: %s strike allocates %v objects, want <= 2",
					cell.Kern.Name(), label, avg)
			}
		}
		check("architecturally masked", archMasked)
		if logicalMasked >= 0 {
			check("logically masked", logicalMasked)
		} else {
			t.Logf("%s: no logically masked strike in probe window (ok)", cell.Kern.Name())
		}
	}
}

// TestLavaMDMixedStrikeAllocBounds tightens the alloc contract on the
// path that used to leak ~115 objects per strike: LavaMD's full mixed
// population, SDC strikes included. With the golden-sum tables the SDC
// paths read SoA state instead of boxing cached potentials in a sync.Map
// and allocating per-call closures, so a warmed-up mixed strike averages
// at most 2 allocations (the per-index RNG split plus pool jitter and
// occasional mismatch-slice growth).
//
// Excluded under -race: the race runtime's instrumentation allocates.
func TestLavaMDMixedStrikeAllocBounds(t *testing.T) {
	cell := determinismCells()[1] // phi x lavamd
	ses, err := injector.NewSession(cell.Dev, cell.Kern)
	if err != nil {
		t.Fatal(err)
	}
	base := xrand.New(0x1A7A)
	const cycle = 64
	runStrike := func(i uint64) {
		sub := base.Split(i + 1)
		strike := fault.Strike{When: sub.Float64(), Energy: beam.StrikeEnergy(sub)}
		out := ses.RunOne(strike, sub)
		ses.ReleaseReport(out.Report)
	}
	runCycle := func() {
		for i := uint64(0); i < cycle; i++ {
			runStrike(i)
		}
	}
	runCycle() // warm every pool and golden-sum table
	perStrike := testing.AllocsPerRun(5, runCycle) / cycle
	if perStrike > 2 {
		t.Errorf("LavaMD mixed population allocates %.2f objects/strike, want <= 2", perStrike)
	}
}
