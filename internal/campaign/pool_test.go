package campaign

import (
	"testing"

	"radcrit/internal/arch"
	"radcrit/internal/beam"
	"radcrit/internal/fault"
	"radcrit/internal/injector"
	"radcrit/internal/metrics"
	"radcrit/internal/xrand"
)

// TestPooledKernelPathsBitIdentical is the pooled hot path's contract
// (ISSUE 4): RunInjectedPooled against recycled scratch and a shared
// report pool produces bit-identical reports to the allocate-fresh
// RunInjectedOn path, across random (kernel, device, seed) draws for all
// four kernel families. Each SDC syndrome is replayed three ways from
// identical RNG states — pooled (into a reused pool), unpooled, and
// pooled again after the first report was recycled — so a strike leaking
// dirty scratch or a stale report into the next would be caught.
func TestPooledKernelPathsBitIdentical(t *testing.T) {
	cells := determinismCells()
	seedRng := xrand.New(0x900D5EED)
	for trial, cell := range cells {
		seed := seedRng.Uint64()
		ses, err := injector.NewSession(cell.Dev, cell.Kern)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		prof := ses.Profile()
		golden := cell.Kern.Golden(cell.Dev)
		base := xrand.New(seed)
		var pool metrics.ReportPool
		sdcs := 0
		for i := uint64(0); i < 300 && sdcs < 25; i++ {
			// Three clones of the per-index stream, consumed identically.
			subs := [3]*xrand.RNG{}
			var syn arch.Syndrome
			for v := 0; v < 3; v++ {
				sub := base.Split(i + 1)
				strike := fault.Strike{When: sub.Float64(), Energy: beam.StrikeEnergy(sub)}
				syn = cell.Dev.ResolveStrike(prof, strike, sub)
				subs[v] = sub
			}
			if syn.Outcome != fault.SDC {
				continue
			}
			sdcs++
			pooled := cell.Kern.RunInjectedPooled(golden, syn.Injection, subs[0], &pool)
			fresh := cell.Kern.RunInjectedOn(golden, syn.Injection, subs[1])
			if !sameReport(pooled, fresh) {
				t.Fatalf("%s strike %d: pooled report differs from unpooled", cell.Kern.Name(), i)
			}
			pool.Put(pooled) // recycle, then prove the reuse is invisible
			again := cell.Kern.RunInjectedPooled(golden, syn.Injection, subs[2], &pool)
			if !sameReport(again, fresh) {
				t.Fatalf("%s strike %d: report from recycled scratch differs", cell.Kern.Name(), i)
			}
			pool.Put(again)
		}
		if sdcs == 0 {
			t.Fatalf("%s: no SDC syndromes drawn", cell.Kern.Name())
		}
	}
}

// TestPooledEngineBitIdenticalAcrossWorkers draws random (seed, workers)
// pairs and pins that the full pooled engine — session pool, report
// recycling, result-sink cloning — stays bit-identical between a serial
// and a parallel run of every kernel family.
func TestPooledEngineBitIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell engine property test")
	}
	seedRng := xrand.New(0xAB1DE)
	for trial, cell := range determinismCells() {
		cfgA := DefaultConfig(seedRng.Uint64(), 120)
		cfgA.Workers = 1 + int(seedRng.Uint64()%4)
		cfgB := cfgA
		cfgB.Workers = 8
		a := runUncached(cell.Dev, cell.Kern, cfgA)
		b := runUncached(cell.Dev, cell.Kern, cfgB)
		requireIdentical(t, cell.Kern.Name(), a, b)
		_ = trial
	}
}
