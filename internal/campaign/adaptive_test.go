package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"testing"

	"radcrit/internal/logdata"
)

// adaptiveGoldenPlan is the frozen acceptance plan: the four K40 golden
// cells (seed 42, 300 strikes) under a 0.1 half-width target with looks
// every 50 strikes. The stop points pinned by the tests below were
// measured once and are locked exactly like the golden FIT table: dgemm
// 250, lavamd 100, hotspot 150, clamr 100 — three cells at >= 2x
// savings, 600 of 1200 planned strikes executed overall.
func adaptiveGoldenPlan() *Plan {
	return NewPlan(goldenSeed, goldenStrikes).
		WithCell("k40", "dgemm:128").
		WithCell("k40", "lavamd:4").
		WithCell("k40", "hotspot:64x80").
		WithCell("k40", "clamr:48x60").
		WithThresholds(0, 2).
		WithAdaptive(AdaptiveSpec{TargetHalfWidth: 0.1, MinStrikes: 100, CheckEvery: 50})
}

// adaptiveGoldenStops are the measured chunk-aligned stop points of
// adaptiveGoldenPlan's cells, in plan order.
var adaptiveGoldenStops = []int{250, 100, 150, 100}

type bufCloser struct{ *bytes.Buffer }

func (bufCloser) Close() error { return nil }

// sameEvents compares two parsed event streams through re-serialisation.
// Masked-SDC events carry NaN reads, and reflect.DeepEqual reports
// NaN != NaN even on identical streams; the hex-float wire format
// round-trips NaN bit patterns, so byte equality is the right test.
func sameEvents(t *testing.T, a, b *logdata.Log) bool {
	t.Helper()
	var wa, wb bytes.Buffer
	if err := logdata.Write(&wa, &logdata.Log{Events: a.Events}); err != nil {
		t.Fatal(err)
	}
	if err := logdata.Write(&wb, &logdata.Log{Events: b.Events}); err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(wa.Bytes(), wb.Bytes())
}

func TestAdaptiveSpecValidation(t *testing.T) {
	valid := AdaptiveSpec{TargetHalfWidth: 0.1, MinStrikes: 100, CheckEvery: 50}
	cases := []struct {
		name string
		mut  func(a *AdaptiveSpec)
		ok   bool
	}{
		{"valid", func(a *AdaptiveSpec) {}, true},
		{"zero target", func(a *AdaptiveSpec) { a.TargetHalfWidth = 0 }, false},
		{"negative target", func(a *AdaptiveSpec) { a.TargetHalfWidth = -0.1 }, false},
		{"target above half", func(a *AdaptiveSpec) { a.TargetHalfWidth = 0.6 }, false},
		{"NaN target", func(a *AdaptiveSpec) { a.TargetHalfWidth = nan() }, false},
		{"negative min_strikes", func(a *AdaptiveSpec) { a.MinStrikes = -1 }, false},
		{"negative check_every", func(a *AdaptiveSpec) { a.CheckEvery = -1 }, false},
		{"alpha one", func(a *AdaptiveSpec) { a.Alpha = 1 }, false},
		{"negative alpha", func(a *AdaptiveSpec) { a.Alpha = -0.01 }, false},
		{"negative max_epochs", func(a *AdaptiveSpec) { a.MaxEpochs = -1 }, false},
		{"defaults everywhere", func(a *AdaptiveSpec) { *a = AdaptiveSpec{TargetHalfWidth: 0.2} }, true},
	}
	for _, c := range cases {
		a := valid
		c.mut(&a)
		p := NewPlan(1, 10).WithCell("k40", "dgemm:128").WithAdaptive(a)
		err := p.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
	// A nil spec stays valid — the pre-adaptive plan shape.
	if err := NewPlan(1, 10).WithCell("k40", "dgemm:128").Validate(); err != nil {
		t.Fatalf("nil-adaptive plan invalid: %v", err)
	}
}

func nan() float64 { return float64(0) / zeroForNaN }

var zeroForNaN float64 // always zero; defeats the constant-division check

func TestAdaptivePlanJSONRoundTrip(t *testing.T) {
	p := adaptiveGoldenPlan()
	var buf bytes.Buffer
	if err := SavePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("round trip diverged:\n%+v\nvs\n%+v", p, back)
	}

	// The strict decoder reaches inside the nested spec: a typo there
	// fails loudly too.
	bad := `{"seed":1,"strikes":10,"cells":[{"device":"k40","kernel":"dgemm:128"}],` +
		`"adaptive":{"target_half_width":0.1,"check_eevery":50}}`
	if _, err := LoadPlan(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown field inside adaptive spec accepted")
	}

	// A plan without a spec serialises without the key: byte-compatible
	// with pre-adaptive plan files.
	data, err := json.Marshal(NewPlan(1, 10).WithCell("k40", "dgemm:128"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("adaptive")) {
		t.Fatalf("nil-adaptive plan leaks the field: %s", data)
	}
}

func TestAdaptiveConfigNormalization(t *testing.T) {
	cfg := NewPlan(1, 100).WithCell("k40", "dgemm:128").
		WithAdaptive(AdaptiveSpec{TargetHalfWidth: 0.1}).Config()
	got, rule, ok := adaptiveConfig(cfg)
	if !ok {
		t.Fatal("adaptive config not detected")
	}
	// CheckEvery defaults to the effective chunk, and the chunk is forced
	// to the look spacing so every boundary is a look.
	if got.StreamChunk != DefaultStreamChunk || got.Adaptive.CheckEvery != DefaultStreamChunk {
		t.Fatalf("chunk/check_every = %d/%d, want %d/%d",
			got.StreamChunk, got.Adaptive.CheckEvery, DefaultStreamChunk, DefaultStreamChunk)
	}
	if got.Adaptive.Alpha != DefaultAdaptiveAlpha || got.Adaptive.MaxEpochs != DefaultMaxEpochs {
		t.Fatalf("defaults not filled: %+v", got.Adaptive)
	}
	if rule.CheckEvery != DefaultStreamChunk || rule.Alpha != DefaultAdaptiveAlpha {
		t.Fatalf("rule not derived from normalized spec: %+v", rule)
	}

	// An explicit spacing overrides the chunk outright.
	cfg.StreamChunk = 128
	cfg.Adaptive = &AdaptiveSpec{TargetHalfWidth: 0.1, CheckEvery: 50}
	if got, _, _ = adaptiveConfig(cfg); got.StreamChunk != 50 {
		t.Fatalf("explicit check_every did not force the chunk: %d", got.StreamChunk)
	}

	// Non-adaptive configs pass through untouched.
	cfg.Adaptive = nil
	if got, _, ok = adaptiveConfig(cfg); ok || got.StreamChunk != 128 {
		t.Fatalf("non-adaptive config altered: %+v ok=%v", got, ok)
	}
}

func TestCellKeyAdaptive(t *testing.T) {
	base := NewPlan(42, 300).WithCell("k40", "dgemm:128").WithThresholds(0, 2)
	withSpec := func(a AdaptiveSpec) *Plan {
		p := NewPlan(42, 300).WithCell("k40", "dgemm:128").WithThresholds(0, 2)
		return p.WithAdaptive(a)
	}
	spec := AdaptiveSpec{TargetHalfWidth: 0.1, MinStrikes: 100, CheckEvery: 50}

	if base.CellKey(0) == withSpec(spec).CellKey(0) {
		t.Fatal("adaptive spec does not reach the cell key")
	}
	// Every spec field that can move a stop point is key material...
	distinct := map[string]string{
		"base":       withSpec(spec).CellKey(0),
		"target":     withSpec(AdaptiveSpec{TargetHalfWidth: 0.2, MinStrikes: 100, CheckEvery: 50}).CellKey(0),
		"min":        withSpec(AdaptiveSpec{TargetHalfWidth: 0.1, MinStrikes: 150, CheckEvery: 50}).CellKey(0),
		"every":      withSpec(AdaptiveSpec{TargetHalfWidth: 0.1, MinStrikes: 100, CheckEvery: 100}).CellKey(0),
		"alpha":      withSpec(AdaptiveSpec{TargetHalfWidth: 0.1, MinStrikes: 100, CheckEvery: 50, Alpha: 0.01}).CellKey(0),
		"no-mutable": base.CellKey(0),
	}
	seen := map[string]string{}
	for name, key := range distinct {
		if prev, dup := seen[key]; dup {
			t.Errorf("%s and %s collide on %s", name, prev, key)
		}
		seen[key] = name
	}
	// ...while MaxEpochs — pure reallocation policy — is not.
	a, b := spec, spec
	a.MaxEpochs, b.MaxEpochs = 3, 7
	if withSpec(a).CellKey(0) != withSpec(b).CellKey(0) {
		t.Fatal("MaxEpochs leaked into the cell key")
	}
	// The key is over the normalized spec: an implicit default equals its
	// explicit spelling.
	imp := withSpec(AdaptiveSpec{TargetHalfWidth: 0.1, MinStrikes: 100, CheckEvery: 50})
	exp := withSpec(AdaptiveSpec{TargetHalfWidth: 0.1, MinStrikes: 100, CheckEvery: 50, Alpha: DefaultAdaptiveAlpha})
	if imp.CellKey(0) != exp.CellKey(0) {
		t.Fatal("default alpha keys differently from its explicit value")
	}
	// CheckEvery 0 inherits the effective chunk, so the chunk becomes key
	// material exactly when the spec leaves the spacing implicit.
	chunk50 := withSpec(AdaptiveSpec{TargetHalfWidth: 0.1, MinStrikes: 100}).WithStreamChunk(50)
	explicit := withSpec(AdaptiveSpec{TargetHalfWidth: 0.1, MinStrikes: 100, CheckEvery: 50}).WithStreamChunk(50)
	if chunk50.CellKey(0) != explicit.CellKey(0) {
		t.Fatal("implicit spacing under a 50-chunk keys differently from explicit 50")
	}
	chunk100 := withSpec(AdaptiveSpec{TargetHalfWidth: 0.1, MinStrikes: 100}).WithStreamChunk(100)
	if chunk50.CellKey(0) == chunk100.CellKey(0) {
		t.Fatal("implicit spacing ignores the chunk it resolves to")
	}
}

func TestBatchEnginesRejectAdaptive(t *testing.T) {
	p := adaptiveGoldenPlan()
	for name, r := range map[string]Runner{
		"batch":  &BatchRunner{},
		"matrix": &MatrixRunner{},
	} {
		res, err := r.Run(context.Background(), p)
		if err == nil || res != nil {
			t.Errorf("%s engine accepted an adaptive plan (res %v, err %v)", name, res, err)
		}
	}
}

// TestEarlyStopMatchesStraightRun is the determinism contract at cell
// granularity: an early-stopped cell is byte-identical to a straight run
// whose budget IS the stop point — summary and rescaled exposure both —
// at any worker count.
func TestEarlyStopMatchesStraightRun(t *testing.T) {
	plan := adaptiveGoldenPlan()
	cells, err := plan.Build()
	if err != nil {
		t.Fatal(err)
	}
	const cell = 1 // lavamd: stops at 100 of 300
	for _, workers := range []int{1, 8} {
		cfg := plan.Config()
		cfg.Workers = workers
		info, sum, err := RunPlanCell(context.Background(), cells[cell], cfg, plan.EffectiveThresholds())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if info.Strikes != adaptiveGoldenStops[cell] {
			t.Fatalf("workers=%d: stopped at %d, golden stop is %d", workers, info.Strikes, adaptiveGoldenStops[cell])
		}
		straight := cfg
		straight.Adaptive = nil
		straight.Strikes = info.Strikes
		sInfo, sSum, err := RunPlanCell(context.Background(), cells[cell], straight, plan.EffectiveThresholds())
		if err != nil {
			t.Fatalf("workers=%d straight: %v", workers, err)
		}
		if !reflect.DeepEqual(info, sInfo) {
			t.Errorf("workers=%d: info diverges from straight run:\n%+v\nvs\n%+v", workers, info, sInfo)
		}
		if !reflect.DeepEqual(sum, sSum) {
			t.Errorf("workers=%d: summary diverges from straight run:\n%+v\nvs\n%+v", workers, sum, sSum)
		}
	}
}

// TestAdaptiveGoldenSavings is the acceptance anchor: on the frozen
// seed-42 plan the adaptive runner reaches the 0.1 half-width target
// with the pinned per-cell stop points — three cells at >= 2x fewer
// strikes — and every stopped cell's tally matches the straight-run
// prefix the golden engine produces for that budget.
func TestAdaptiveGoldenSavings(t *testing.T) {
	plan := adaptiveGoldenPlan()
	logs := make([]*bytes.Buffer, len(plan.Cells))
	r := &AdaptiveRunner{Logs: func(i int, _ CellSpec) (io.WriteCloser, error) {
		logs[i] = &bytes.Buffer{}
		return bufCloser{logs[i]}, nil
	}}
	res, err := r.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	executed, saved2x := 0, 0
	for i, out := range res.Cells {
		if out.Err != nil {
			t.Fatalf("cell %d: %v", i, out.Err)
		}
		if out.Info.Strikes != adaptiveGoldenStops[i] {
			t.Errorf("cell %d stopped at %d, golden stop is %d", i, out.Info.Strikes, adaptiveGoldenStops[i])
		}
		executed += out.Info.Strikes
		if 2*out.Info.Strikes <= plan.Strikes {
			saved2x++
		}
	}
	if planned := plan.Strikes * len(plan.Cells); executed >= planned {
		t.Fatalf("adaptive run saved nothing: %d executed of %d planned", executed, planned)
	}
	if saved2x < 2 {
		t.Fatalf("only %d cells reached 2x savings, acceptance floor is 2", saved2x)
	}

	// Each early-stopped cell equals the straight run at its stop budget.
	straight := NewPlan(goldenSeed, adaptiveGoldenStops[1]).
		WithCell("k40", "lavamd:4").WithCell("k40", "clamr:48x60").WithThresholds(0, 2)
	sres, err := (&StreamRunner{}).Run(context.Background(), straight)
	if err != nil {
		t.Fatal(err)
	}
	for i, cell := range []int{1, 3} {
		if !reflect.DeepEqual(res.Cells[cell].Summary, sres.Cells[i].Summary) {
			t.Errorf("cell %d summary diverges from straight %d-strike run", cell, adaptiveGoldenStops[1])
		}
		if !reflect.DeepEqual(res.Cells[cell].Info, sres.Cells[i].Info) {
			t.Errorf("cell %d info diverges from straight %d-strike run", cell, adaptiveGoldenStops[1])
		}
	}

	// Every log carries its stop decision as an #EPOCH record and closes
	// with a count-consistent trailer.
	for i, log := range logs {
		parsed, err := logdata.Parse(bytes.NewReader(log.Bytes()))
		if err != nil {
			t.Fatalf("log %d unparseable: %v", i, err)
		}
		if len(parsed.Epochs) != 1 {
			t.Fatalf("log %d has %d epoch records, want 1", i, len(parsed.Epochs))
		}
		m := parsed.Epochs[0]
		if m.Epoch != 1 || m.Alloc != plan.Strikes || m.Consumed != adaptiveGoldenStops[i] || !m.Stopped {
			t.Errorf("log %d epoch record %+v does not match golden stop %d", i, m, adaptiveGoldenStops[i])
		}
	}
}

// TestAdaptiveReplayByteIdentity: a stopped cell's #EPOCH+#CHK log
// replays through ResumePlanCell to the byte-identical summary — from
// the complete log (pure replay, no engine work) and from a prefix
// truncated mid-campaign (replay + deterministic tail re-run that makes
// the same stop decision).
func TestAdaptiveReplayByteIdentity(t *testing.T) {
	plan := adaptiveGoldenPlan()
	cells, err := plan.Build()
	if err != nil {
		t.Fatal(err)
	}
	const cell = 1 // lavamd: stops at 100
	cfg := plan.Config()
	ts := plan.EffectiveThresholds()

	info, err := CellInfo(cells[cell].Dev, cells[cell].Kern, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var orig bytes.Buffer
	chk, err := NewCheckpointSink(&orig, info, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	liveInfo, liveSum, err := RunPlanCell(context.Background(), cells[cell], cfg, ts, chk)
	if err != nil {
		t.Fatal(err)
	}
	if err := chk.Close(); err != nil {
		t.Fatal(err)
	}
	if liveInfo.Strikes != adaptiveGoldenStops[cell] {
		t.Fatalf("live run stopped at %d, golden stop is %d", liveInfo.Strikes, adaptiveGoldenStops[cell])
	}
	if !strings.Contains(orig.String(), "#EPOCH ") {
		t.Fatal("stopped cell's log carries no #EPOCH record")
	}

	// Replay the complete log: same summary, no strikes re-run.
	var rewrite bytes.Buffer
	rInfo, rSum, err := ResumePlanCell(context.Background(), bytes.NewReader(orig.Bytes()), &rewrite, cells[cell], cfg, ts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rInfo, liveInfo) || !reflect.DeepEqual(rSum, liveSum) {
		t.Fatalf("complete-log replay diverges:\n%+v\nvs live\n%+v", rSum, liveSum)
	}

	// Truncate right after the first checkpoint — a crash 50 strikes in —
	// and resume: the tail re-runs, the stop decision recurs at 100, and
	// the rewritten log pins the same epoch record.
	cut := strings.Index(orig.String(), "#CHK ")
	cut += strings.IndexByte(orig.String()[cut:], '\n') + 1
	var resumed bytes.Buffer
	tInfo, tSum, err := ResumePlanCell(context.Background(), strings.NewReader(orig.String()[:cut]), &resumed, cells[cell], cfg, ts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tInfo, liveInfo) || !reflect.DeepEqual(tSum, liveSum) {
		t.Fatalf("truncated-log resume diverges:\n%+v\nvs live\n%+v", tSum, liveSum)
	}
	origParsed, err := logdata.Parse(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resParsed, err := logdata.Parse(bytes.NewReader(resumed.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(origParsed.Epochs, resParsed.Epochs) {
		t.Fatalf("resume re-derived different epochs: %+v vs %+v", resParsed.Epochs, origParsed.Epochs)
	}
	if !sameEvents(t, origParsed, resParsed) || origParsed.Masked != resParsed.Masked {
		t.Fatal("resume re-derived a different event stream")
	}

	// A salvage point that already satisfies the rule stops without
	// re-running: truncate after the second checkpoint (the stop point's
	// own #CHK) but before the #EPOCH record survived.
	cut2 := strings.Index(orig.String(), "#EPOCH ")
	var salvaged bytes.Buffer
	sInfo, sSum, err := ResumePlanCell(context.Background(), strings.NewReader(orig.String()[:cut2]), &salvaged, cells[cell], cfg, ts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sInfo, liveInfo) || !reflect.DeepEqual(sSum, liveSum) {
		t.Fatalf("salvage-point stop diverges:\n%+v\nvs live\n%+v", sSum, liveSum)
	}
}

// TestAdaptiveRunnerNilSpecDelegates pins today's behaviour for plans
// without a spec: AdaptiveRunner is StreamRunner, outcome for outcome.
func TestAdaptiveRunnerNilSpecDelegates(t *testing.T) {
	plan := NewPlan(7, 60).
		WithCell("k40", "dgemm:128").WithCell("k40", "hotspot:64x80").
		WithThresholds(0, 2)
	a, err := (&AdaptiveRunner{}).Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	s, err := (&StreamRunner{}).Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Cells, s.Cells) {
		t.Fatalf("nil-spec AdaptiveRunner diverges from StreamRunner:\n%+v\nvs\n%+v", a.Cells, s.Cells)
	}
}

// TestAdaptiveRunnerReallocation pins the budget-epoch machinery under a
// tighter 0.08 target: lavamd frees 200 strikes and clamr 50, hotspot
// stops exactly at its budget, and the whole pool flows to dgemm — the
// one open cell — whose epoch-2 allocation of 550 stops at 450. Two runs
// produce byte-identical logs: reallocation is a pure function of the
// epoch log.
func TestAdaptiveRunnerReallocation(t *testing.T) {
	run := func() ([]*bytes.Buffer, *PlanResult) {
		plan := adaptiveGoldenPlan().
			WithAdaptive(AdaptiveSpec{TargetHalfWidth: 0.08, MinStrikes: 100, CheckEvery: 50, MaxEpochs: 3})
		logs := make([]*bytes.Buffer, len(plan.Cells))
		r := &AdaptiveRunner{Logs: func(i int, _ CellSpec) (io.WriteCloser, error) {
			logs[i] = &bytes.Buffer{}
			return bufCloser{logs[i]}, nil
		}}
		res, err := r.Run(context.Background(), plan)
		if err != nil {
			t.Fatal(err)
		}
		return logs, res
	}
	logs, res := run()

	wantStops := []int{450, 100, 300, 250}
	for i, out := range res.Cells {
		if out.Err != nil {
			t.Fatalf("cell %d: %v", i, out.Err)
		}
		if out.Info.Strikes != wantStops[i] {
			t.Errorf("cell %d consumed %d, want %d", i, out.Info.Strikes, wantStops[i])
		}
	}
	if res.Cells[0].Info.Strikes <= goldenStrikes {
		t.Fatal("reallocation never extended dgemm past its planned budget")
	}
	parsed, err := logdata.Parse(bytes.NewReader(logs[0].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := []logdata.EpochMark{
		{Epoch: 1, Alloc: 300, Consumed: 300, SDC: 112, HalfWidth: parsed.Epochs[0].HalfWidth, Stopped: false},
		{Epoch: 2, Alloc: 550, Consumed: 450, SDC: 170, HalfWidth: parsed.Epochs[1].HalfWidth, Stopped: true},
	}
	if !reflect.DeepEqual(parsed.Epochs, want) {
		t.Fatalf("dgemm epoch trail %+v, want %+v", parsed.Epochs, want)
	}

	logs2, res2 := run()
	for i := range logs {
		if !bytes.Equal(logs[i].Bytes(), logs2[i].Bytes()) {
			t.Errorf("run 2 log %d differs byte-wise", i)
		}
		if !reflect.DeepEqual(res.Cells[i].Summary, res2.Cells[i].Summary) {
			t.Errorf("run 2 summary %d differs", i)
		}
	}
}

// TestAdaptiveRunnerResumesOwnLog: a multi-epoch adaptive log (epoch
// marks mid-stream, events beyond them) survives the resume rewrite —
// marks are re-emitted at their original positions, so both parsers
// accept the rewritten log and the epoch trail is intact.
func TestAdaptiveRunnerResumesOwnLog(t *testing.T) {
	plan := adaptiveGoldenPlan().
		WithAdaptive(AdaptiveSpec{TargetHalfWidth: 0.08, MinStrikes: 100, CheckEvery: 50, MaxEpochs: 3})
	logs := make([]*bytes.Buffer, len(plan.Cells))
	r := &AdaptiveRunner{Logs: func(i int, _ CellSpec) (io.WriteCloser, error) {
		logs[i] = &bytes.Buffer{}
		return bufCloser{logs[i]}, nil
	}}
	if _, err := r.Run(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	// dgemm's log holds an epoch-1 mark at 300 with events beyond it.
	cells, err := plan.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := plan.Config()
	cfg.Strikes = 450 // the budget the epoch trail settled on
	var rewrite bytes.Buffer
	_, sum, err := ResumePlanCell(context.Background(), bytes.NewReader(logs[0].Bytes()), &rewrite,
		cells[0], cfg, plan.EffectiveThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Tally.SDC != 170 {
		t.Fatalf("replayed SDC count %d, want 170", sum.Tally.SDC)
	}
	parsed, err := logdata.Parse(bytes.NewReader(rewrite.Bytes()))
	if err != nil {
		t.Fatalf("rewritten multi-epoch log unparseable: %v", err)
	}
	origParsed, err := logdata.Parse(bytes.NewReader(logs[0].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed.Epochs, origParsed.Epochs) {
		t.Fatalf("rewrite lost the epoch trail: %+v vs %+v", parsed.Epochs, origParsed.Epochs)
	}
	if !sameEvents(t, parsed, origParsed) || parsed.Masked != origParsed.Masked {
		t.Fatal("rewrite altered the event stream")
	}
}

// TestAdaptiveRunnerCancellation: an external cancellation mid-plan
// still returns partial outcomes and resumable logs, never #END.
func TestAdaptiveRunnerCancellation(t *testing.T) {
	plan := adaptiveGoldenPlan()
	ctx, cancel := context.WithCancel(context.Background())
	logs := make([]*bytes.Buffer, len(plan.Cells))
	r := &AdaptiveRunner{
		Progress: Progress{OnChunk: func(cell, done int) {
			if cell == 0 && done >= 100 {
				cancel()
			}
		}},
		Logs: func(i int, _ CellSpec) (io.WriteCloser, error) {
			logs[i] = &bytes.Buffer{}
			return bufCloser{logs[i]}, nil
		},
	}
	res, err := r.Run(ctx, plan)
	if err != context.Canceled {
		t.Fatalf("cancelled run returned %v", err)
	}
	if res == nil || len(res.Cells) != len(plan.Cells) {
		t.Fatal("cancelled run lost the partial result")
	}
	out := res.Cells[0]
	if out.Err != context.Canceled || out.Summary == nil || out.Info.Strikes == 0 {
		t.Fatalf("in-flight cell outcome %+v lacks partial state", out)
	}
	if bytes.Contains(logs[0].Bytes(), []byte("#END")) {
		t.Fatal("cancelled cell's log was sealed — it must stay resumable")
	}
	resu, err := logdata.ParseResume(bytes.NewReader(logs[0].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if resu.Complete || resu.Next == 0 {
		t.Fatalf("cancelled log not resumable: %+v", resu)
	}
	for _, later := range res.Cells[1:] {
		if later.Err == nil {
			t.Fatal("unreached cell not marked cancelled")
		}
	}
}
