package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"radcrit/internal/abft"
	"radcrit/internal/arch"
	"radcrit/internal/beam"
	"radcrit/internal/fault"
	"radcrit/internal/fit"
	"radcrit/internal/injector"
	"radcrit/internal/kernels"
	"radcrit/internal/logdata"
	"radcrit/internal/metrics"
	"radcrit/internal/par"
	"radcrit/internal/xrand"
)

// DefaultStreamChunk is the streaming engine's flush granularity: strikes
// are executed in chunks of this many indices, consumed in order, and the
// chunk buffer is recycled. Peak memory is O(chunk) outcomes plus reducer
// state, independent of the campaign's SDC count.
const DefaultStreamChunk = 512

// Sink consumes classified strike outcomes as the engine produces them.
//
// The engine's determinism contract (DESIGN.md §6): Consume is called from
// a single goroutine, in strictly ascending strike-index order, for every
// index exactly once — regardless of Config.Workers.
//
// Report ownership (DESIGN.md §8): out.Report is only valid for the
// duration of the Consume call. Once every sink has consumed a strike the
// engine releases the report back to the session pool for reuse by a
// later strike, so a sink must extract what it needs before returning and
// must Clone the report to retain it (as the batch engine's result sink
// does). The online reducers all satisfy this by construction.
type Sink interface {
	Consume(i int, out injector.Outcome)
}

// ChunkFlusher is implemented by sinks that persist state at chunk
// boundaries (e.g. CheckpointSink). FlushChunk(next) is called after every
// outcome with index < next has been consumed; next is always a chunk
// boundary or the campaign's strike count.
type ChunkFlusher interface {
	FlushChunk(next int)
}

// StreamInfo is the cell metadata a streaming run yields in place of a
// *Result: identity, occupancy profile and the back-computed beam
// exposure. Reducers combine it with their accumulated state to produce
// the same statistics the batch Result methods compute from retained
// reports.
type StreamInfo struct {
	Device  string
	Kernel  string
	Input   string
	Profile arch.Profile
	Strikes int
	// Exposure is a pure function of (profile, config): it is available
	// before any strike runs, which is what lets a checkpoint log write
	// its header up front.
	Exposure beam.Exposure
}

// CellInfo computes a cell's StreamInfo without running any strikes.
func CellInfo(dev arch.Device, kern kernels.Kernel, cfg Config) (StreamInfo, error) {
	ses, err := injector.NewSession(dev, kern)
	if err != nil {
		return StreamInfo{}, cellError(dev, kern, err)
	}
	return cellInfo(ses, dev, kern, cfg), nil
}

// cellInfo assembles the metadata for a validated session. The exposure
// back-computation matches the batch engine's exactly: strikes derated
// into the single-strike regime, beam hours solved from the strike count.
func cellInfo(ses *injector.Session, dev arch.Device, kern kernels.Kernel, cfg Config) StreamInfo {
	prof := ses.Profile()
	execSeconds := prof.RelRuntime * cfg.BaseExecSeconds
	exp := beam.Exposure{
		Facility:      cfg.Facility,
		Board:         beam.Board{Label: dev.ShortName(), Derating: 1},
		ExecSeconds:   execSeconds,
		SensitiveArea: dev.SensitiveArea(prof),
	}
	exp = exp.TuneSingleStrike()
	exp.BeamHours = exp.HoursForStrikes(float64(cfg.Strikes))
	return StreamInfo{
		Device:   dev.ShortName(),
		Kernel:   kern.Name(),
		Input:    kern.InputLabel(),
		Profile:  prof,
		Strikes:  cfg.Strikes,
		Exposure: exp,
	}
}

// RunStreaming executes cfg.Strikes strikes of kern on dev, feeding every
// outcome to the sinks in strike-index order, holding O(chunk + reducer
// state) memory instead of the batch engine's O(SDC reports). Strikes
// within a chunk fan out over the Config.Workers pool with per-index RNG
// splits, so the outcome stream is bit-identical for any worker count.
func RunStreaming(dev arch.Device, kern kernels.Kernel, cfg Config, sinks ...Sink) (StreamInfo, error) {
	return RunStreamingFromCtx(context.Background(), dev, kern, cfg, 0, sinks...)
}

// RunStreamingCtx is RunStreaming under a context: cancellation is
// honoured at chunk boundaries (see RunStreamingFromCtx).
func RunStreamingCtx(ctx context.Context, dev arch.Device, kern kernels.Kernel, cfg Config, sinks ...Sink) (StreamInfo, error) {
	return RunStreamingFromCtx(ctx, dev, kern, cfg, 0, sinks...)
}

// RunStreamingFrom is RunStreaming restarted at strike index start: it
// executes indices [start, cfg.Strikes). Because every strike derives its
// randomness from an independent per-index RNG split, the tail produced
// here is bit-identical to the same indices of a full run — the foundation
// of checkpoint/resume (a crashed campaign re-runs only the strikes after
// its last flushed checkpoint).
func RunStreamingFrom(dev arch.Device, kern kernels.Kernel, cfg Config, start int, sinks ...Sink) (StreamInfo, error) {
	return RunStreamingFromCtx(context.Background(), dev, kern, cfg, start, sinks...)
}

// RunStreamingFromCtx is RunStreamingFrom under a context. Cancellation is
// graceful and chunk-aligned: a chunk whose execution was interrupted is
// discarded whole, so the sinks always observe a chunk-aligned prefix of
// the deterministic outcome stream — partial reducer state remains
// meaningful, and a CheckpointSink's log stays recoverable. The engine
// then stops and returns ctx.Err() alongside the cell's StreamInfo; no
// worker goroutine outlives the call.
func RunStreamingFromCtx(ctx context.Context, dev arch.Device, kern kernels.Kernel, cfg Config, start int, sinks ...Sink) (StreamInfo, error) {
	ses, err := injector.NewSession(dev, kern)
	if err != nil {
		return StreamInfo{}, cellError(dev, kern, err)
	}
	info := cellInfo(ses, dev, kern, cfg)
	rng := xrand.New(cfg.Seed).
		SplitString(dev.ShortName()).
		SplitString(kern.Name()).
		SplitString(kern.InputLabel())

	chunk := cfg.StreamChunk
	if chunk <= 0 {
		chunk = DefaultStreamChunk
	}
	if start < 0 {
		start = 0
	}
	bufLen := min(chunk, max(cfg.Strikes-start, 0))
	buf := make([]injector.Outcome, bufLen)
	strikes := make([]fault.Strike, bufLen)
	rngs := make([]*xrand.RNG, bufLen)
	for base := start; base < cfg.Strikes; base += chunk {
		if err := ctx.Err(); err != nil {
			return info, err
		}
		n := min(chunk, cfg.Strikes-base)
		// Each claimed span runs through the session's batch path: strikes
		// derive their RNG from the per-index split as before (bit-identity
		// at any worker count), but the kernel sees the whole span at once,
		// keeping its scratch and golden tables cache-hot across strikes.
		err := par.ForSpansCtx(ctx, n, cfg.Workers, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				sub := rng.Split(uint64(base+j) + 1)
				strikes[j] = fault.Strike{When: sub.Float64(), Energy: beam.StrikeEnergy(sub)}
				rngs[j] = sub
			}
			ses.RunBatch(strikes[lo:hi], rngs[lo:hi], buf[lo:hi])
		})
		if err != nil {
			// The chunk may be partially executed: discard it whole so the
			// sinks keep their chunk-aligned prefix.
			return info, err
		}
		for j := 0; j < n; j++ {
			for _, s := range sinks {
				s.Consume(base+j, buf[j])
			}
			// Recycle the report into the session pool: the sinks have
			// consumed it (Sink contract), so the next chunk's strikes
			// reuse its memory instead of allocating afresh.
			ses.ReleaseReport(buf[j].Report)
			buf[j] = injector.Outcome{}
		}
		for _, s := range sinks {
			if f, ok := s.(ChunkFlusher); ok {
				f.FlushChunk(base + n)
			}
		}
	}
	return info, nil
}

// StreamMatrix evaluates every cell under cfg concurrently through the
// streaming engine. The sinks factory is called once per cell (from that
// cell's goroutine) and must return the sinks that cell feeds; per-cell
// reducers need no locking because each cell's consume loop is a single
// goroutine. Infos are returned in cell order. Unlike RunMatrix, nothing
// is memoised: streaming trades the shared-cell cache for bounded memory.
func StreamMatrix(cells []Cell, cfg Config, sinks func(i int, c Cell) []Sink) ([]StreamInfo, error) {
	infos := make([]StreamInfo, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	wg.Add(len(cells))
	for i := range cells {
		go func(i int) {
			defer wg.Done()
			info, err := RunStreaming(cells[i].Dev, cells[i].Kern, cfg, sinks(i, cells[i])...)
			infos[i] = info
			if err != nil {
				errs[i] = fmt.Errorf("cell %d (%s/%s/%s): %w", i,
					cells[i].Dev.ShortName(), cells[i].Kern.Name(), cells[i].Kern.InputLabel(), err)
			}
		}(i)
	}
	wg.Wait()
	return infos, errors.Join(errs...)
}

// --- Online reducers ---
//
// Each reducer mirrors one batch Result method bit for bit: the golden and
// property suites in golden_test.go / stream_test.go pin the equivalence.

// TallyReducer accumulates the outcome tally and its per-resource split —
// the streaming counterpart of Result.Tally and Result.ResourceTally.
type TallyReducer struct {
	Tally      injector.Tally
	ByResource map[fault.Resource]injector.Tally
}

// NewTallyReducer returns an empty tally reducer.
func NewTallyReducer() *TallyReducer {
	return &TallyReducer{ByResource: make(map[fault.Resource]injector.Tally)}
}

// Consume implements Sink.
func (t *TallyReducer) Consume(_ int, out injector.Outcome) {
	rt := t.ByResource[out.Resource]
	switch out.Class {
	case fault.Masked:
		t.Tally.Masked++
		rt.Masked++
	case fault.SDC:
		t.Tally.SDC++
		rt.SDC++
	case fault.Crash:
		t.Tally.Crash++
		rt.Crash++
	case fault.Hang:
		t.Tally.Hang++
		rt.Hang++
	}
	t.ByResource[out.Resource] = rt
}

// SDCCountReducer counts SDC executions that survive each of a set of
// relative-error thresholds — the streaming counterpart of Result.SDCFIT
// (a threshold <= 0 counts every SDC, as in the batch method).
type SDCCountReducer struct {
	Thresholds []float64
	Counts     []int
}

// NewSDCCountReducer returns a reducer counting under each threshold.
func NewSDCCountReducer(thresholds ...float64) *SDCCountReducer {
	return &SDCCountReducer{Thresholds: thresholds, Counts: make([]int, len(thresholds))}
}

// Consume implements Sink.
func (r *SDCCountReducer) Consume(_ int, out injector.Outcome) {
	if out.Class != fault.SDC {
		return
	}
	for k, t := range r.Thresholds {
		if t <= 0 || out.Report.Filter(t).IsSDC() {
			r.Counts[k]++
		}
	}
}

// FIT converts the k-th threshold's count to a failure rate under the
// cell's exposure, exactly as Result.SDCFIT does.
func (r *SDCCountReducer) FIT(k int, exp beam.Exposure) float64 {
	return fit.FITFromCampaign(r.Counts[k], exp)
}

// LocalityReducer accumulates the spatial-pattern counts of critical SDCs
// — the streaming counterpart of Result.LocalityBreakdown.
type LocalityReducer struct {
	ThresholdPct float64
	Counts       map[metrics.Pattern]int
}

// NewLocalityReducer returns a reducer under the given filter
// (thresholdPct <= 0 keeps all mismatches).
func NewLocalityReducer(thresholdPct float64) *LocalityReducer {
	return &LocalityReducer{ThresholdPct: thresholdPct, Counts: make(map[metrics.Pattern]int)}
}

// Consume implements Sink.
func (r *LocalityReducer) Consume(_ int, out injector.Outcome) {
	if out.Class != fault.SDC {
		return
	}
	eff := out.Report
	if r.ThresholdPct > 0 {
		eff = eff.Filter(r.ThresholdPct)
	}
	if !eff.IsSDC() {
		return
	}
	r.Counts[eff.Locality()]++
}

// Breakdown renders the accumulated counts as the FIT breakdown of
// Figures 3, 5 and 7, identical to Result.LocalityBreakdown.
func (r *LocalityReducer) Breakdown(exp beam.Exposure) fit.Breakdown {
	bd := fit.Breakdown{}
	for _, p := range metrics.Patterns {
		bd.Labels = append(bd.Labels, p.String())
		bd.Values = append(bd.Values, fit.FITFromCampaign(r.Counts[p], exp))
	}
	return bd
}

// FilteredFractionReducer tracks the share of SDC executions fully cleared
// by the relative-error filter — the streaming counterpart of
// Result.FilteredFraction.
type FilteredFractionReducer struct {
	ThresholdPct float64
	SDCs         int
	Cleared      int
}

// NewFilteredFractionReducer returns a reducer for one threshold.
func NewFilteredFractionReducer(thresholdPct float64) *FilteredFractionReducer {
	return &FilteredFractionReducer{ThresholdPct: thresholdPct}
}

// Consume implements Sink.
func (r *FilteredFractionReducer) Consume(_ int, out injector.Outcome) {
	if out.Class != fault.SDC {
		return
	}
	r.SDCs++
	if !out.Report.Filter(r.ThresholdPct).IsSDC() {
		r.Cleared++
	}
}

// Fraction returns the cleared share (0 when no SDCs were seen), identical
// to Result.FilteredFraction.
func (r *FilteredFractionReducer) Fraction() float64 {
	if r.SDCs == 0 {
		return 0
	}
	return float64(r.Cleared) / float64(r.SDCs)
}

// ScatterReducer keeps a bounded uniform sample of the scatter points of
// Figures 2/4/6/8 via reservoir sampling (Vitter's Algorithm R) — the
// streaming counterpart of Result.Scatter. With MaxPoints <= 0 or larger
// than the SDC count it degenerates to the exact point list in strike
// order; otherwise each SDC has equal probability of being retained while
// memory stays O(MaxPoints).
type ScatterReducer struct {
	CapPct    float64
	MaxPoints int

	rng  *xrand.RNG
	seen int
	pts  []ScatterPoint
}

// NewScatterReducer returns a reducer capping per-point mean relative
// error at capPct (<= 0 disables capping) and retaining at most maxPoints
// points. The rng drives reservoir eviction only — it is never consumed
// before the reservoir overflows, so a full retention is rng-independent;
// pass nil for a fixed default stream.
func NewScatterReducer(capPct float64, maxPoints int, rng *xrand.RNG) *ScatterReducer {
	if rng == nil {
		rng = xrand.New(0x5ca77e12) // any fixed seed: eviction only needs uniformity
	}
	return &ScatterReducer{CapPct: capPct, MaxPoints: maxPoints, rng: rng}
}

// Consume implements Sink.
func (r *ScatterReducer) Consume(_ int, out injector.Outcome) {
	if out.Class != fault.SDC {
		return
	}
	limit := r.CapPct
	if limit <= 0 {
		limit = 1e308
	}
	pt := ScatterPoint{
		IncorrectElements: out.Report.Count(),
		MeanRelErrPct:     out.Report.MeanRelErrPct(limit),
	}
	r.seen++
	if r.MaxPoints <= 0 || len(r.pts) < r.MaxPoints {
		r.pts = append(r.pts, pt)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.MaxPoints {
		r.pts[j] = pt
	}
}

// Points returns the sampled points. When no eviction occurred (Seen() <=
// MaxPoints, or MaxPoints <= 0) this is exactly Result.Scatter's output.
func (r *ScatterReducer) Points() []ScatterPoint { return r.pts }

// Seen returns the total number of SDC points offered to the reservoir.
func (r *ScatterReducer) Seen() int { return r.seen }

// ABFTReducer accumulates ABFT coverage classification online — the
// streaming counterpart of abft.EvaluateCoverage over Result.Reports.
type ABFTReducer struct {
	Coverage abft.Coverage
}

// NewABFTReducer returns an empty coverage reducer.
func NewABFTReducer() *ABFTReducer { return &ABFTReducer{} }

// Consume implements Sink.
func (r *ABFTReducer) Consume(_ int, out injector.Outcome) {
	if out.Class != fault.SDC {
		return
	}
	r.Coverage.Add(out.Report)
}

// resultSink rebuilds the batch *Result from the outcome stream: the
// compat stack that lets Run/RunFresh share one engine with RunStreaming.
// The tally/per-resource accounting is delegated to a TallyReducer (one
// merge loop, not two to drift apart); this sink only adds the report
// retention that makes a Result a Result. Because the engine recycles
// reports after the chunk's sinks consume them, retention means cloning:
// the Result owns deep copies with lifetimes independent of the pool.
type resultSink struct {
	tally *TallyReducer
	res   *Result
}

func newResultSink() *resultSink {
	return &resultSink{tally: NewTallyReducer(), res: &Result{}}
}

// Consume implements Sink.
func (s *resultSink) Consume(i int, out injector.Outcome) {
	s.tally.Consume(i, out)
	if out.Class == fault.SDC {
		s.res.Reports = append(s.res.Reports, out.Report.Clone())
		s.res.ReportResource = append(s.res.ReportResource, out.Resource)
	}
}

// result stamps the cell identity onto the accumulated outcome.
func (s *resultSink) result(info StreamInfo) *Result {
	s.res.Tally = s.tally.Tally
	s.res.ResourceTally = s.tally.ByResource
	s.res.Device = info.Device
	s.res.Kernel = info.Kernel
	s.res.Input = info.Input
	s.res.Profile = info.Profile
	s.res.Strikes = info.Strikes
	s.res.Exposure = info.Exposure
	return s.res
}

// --- Checkpointed event streaming ---

// CheckpointSink streams every non-masked outcome into a logdata campaign
// log as it happens, flushing a checkpoint record at every chunk boundary.
// A campaign killed mid-cell leaves a log that ParseResume can truncate to
// its last checkpoint; RecoverLog then re-runs only the missing tail.
//
// Write errors are sticky: the first one is remembered and returned by
// Close (the engine's Consume path has no error channel, matching the
// real campaigns where logging must never abort beam time).
type CheckpointSink struct {
	sw *logdata.StreamWriter
}

// NewCheckpointSink starts a checkpointed log for the cell described by
// info, owned by the campaign with the given seed.
func NewCheckpointSink(w io.Writer, info StreamInfo, seed uint64) (*CheckpointSink, error) {
	sw, err := logdata.NewStreamWriter(w, checkpointMeta(info, seed))
	if err != nil {
		return nil, err
	}
	return &CheckpointSink{sw: sw}, nil
}

func checkpointMeta(info StreamInfo, seed uint64) *logdata.Log {
	return &logdata.Log{
		Device:     info.Device,
		Kernel:     info.Kernel,
		Input:      info.Input,
		Facility:   info.Exposure.Facility.Name,
		Seed:       seed,
		Executions: info.Exposure.Executions(),
		BeamHours:  info.Exposure.BeamHours,
		OutputDims: info.Profile.OutputDims,
	}
}

// Consume implements Sink. The event's Exec is the strike index, giving
// resumed logs a stable, replayable position key.
func (c *CheckpointSink) Consume(i int, out injector.Outcome) {
	switch out.Class {
	case fault.Masked:
		c.sw.AddMasked(1)
	case fault.SDC:
		c.sw.WriteEvent(logdata.Event{
			Class:      fault.SDC,
			Exec:       i,
			Resource:   out.Resource.String(),
			Scope:      out.Scope.String(),
			Mismatches: out.Report.Mismatches,
		})
	case fault.Crash:
		c.sw.WriteEvent(logdata.Event{Class: fault.Crash, Exec: i, Resource: out.Resource.String()})
	case fault.Hang:
		c.sw.WriteEvent(logdata.Event{Class: fault.Hang, Exec: i, Resource: out.Resource.String()})
	}
}

// FlushChunk implements ChunkFlusher: every chunk boundary becomes a
// durable checkpoint.
func (c *CheckpointSink) FlushChunk(next int) { c.sw.Checkpoint(next) }

// RecordEpoch writes an adaptive #EPOCH budget record into the log next
// to the checkpoint it annotates, implementing EpochRecorder. Like every
// other write, errors are sticky and surface at Close.
func (c *CheckpointSink) RecordEpoch(m logdata.EpochMark) error { return c.sw.WriteEpoch(m) }

// Close writes the trailer and reports any write error seen on the way.
func (c *CheckpointSink) Close() error { return c.sw.Close() }

// RecoverLog completes a checkpointed campaign log that was truncated by a
// crash: it parses the salvageable prefix (up to the last flushed
// checkpoint), replays those events into w, re-runs only the strikes the
// checkpoint does not cover, and closes the log. The recovered log is
// event-for-event identical to one written by an uninterrupted run —
// checkpoint/resume's determinism contract (DESIGN.md §6). It is
// resumeStreaming (serve.go) without a summary: log in, log out.
func RecoverLog(w io.Writer, truncated io.Reader, dev arch.Device, kern kernels.Kernel, cfg Config) error {
	_, err := resumeStreaming(context.Background(), w, truncated, dev, kern, cfg, nil, nil)
	return err
}
