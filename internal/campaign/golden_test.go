package campaign

import (
	"math"
	"strconv"
	"testing"

	"radcrit/internal/arch"
	"radcrit/internal/injector"
	"radcrit/internal/k40"
	"radcrit/internal/kernels"
	"radcrit/internal/kernels/dgemm"
	"radcrit/internal/kernels/lavamd"
	"radcrit/internal/phi"
)

// goldenCell is one frozen experiment cell outcome: seed 42, 300 strikes,
// TestScale smallest sweep size per kernel family. FIT values are pinned
// as hex floats for bit-exact comparison.
//
// This table is the engine's regression anchor: any refactor that
// silently changes campaign outcomes — RNG derivation, strike resolution,
// injection semantics, merge order, exposure back-computation — fails
// tier-1 here. If a change is *supposed* to alter outcomes, regenerate
// the table (run each cell and print Tally, SDCFIT(0), SDCFIT(1) and
// LocalityBreakdown(0).Values with strconv.FormatFloat(v, 'x', -1, 64))
// and say so loudly in the commit.
type goldenCell struct {
	device, kernel, input    string
	masked, sdc, crash, hang int
	sdcFIT0, sdcFIT1         string
	locality                 [5]string // cubic, square, line, single, random
}

const (
	goldenSeed    = 42
	goldenStrikes = 300
)

var goldenTable = []goldenCell{
	{
		device: "K40", kernel: "DGEMM", input: "128x128",
		masked: 152, sdc: 112, crash: 29, hang: 7,
		sdcFIT0: "0x1.cd5b57ed5d03fp+00", sdcFIT1: "0x1.4da8eb04ceb2ep+00",
		locality: [5]string{"0x0p+00", "0x1.93afecefb1637p-01", "0x1.fec9b3a239446p-02", "0x1.07a1e919ec025p-01", "0x0p+00"},
	},
	{
		device: "K40", kernel: "LavaMD", input: "grid 4",
		masked: 223, sdc: 42, crash: 30, hang: 5,
		sdcFIT0: "0x1.c66d50e1a0ce7p+00", sdcFIT1: "0x1.f1b4adeaed12dp-01",
		locality: [5]string{"0x1.b0c9a25cfaac2p-03", "0x1.5a3ae84a62236p-05", "0x1.5a3ae84a62236p-02", "0x1.2ef38b4115defp+00", "0x0p+00"},
	},
	{
		device: "K40", kernel: "HotSpot", input: "64x64",
		masked: 217, sdc: 70, crash: 9, hang: 4,
		sdcFIT0: "0x1.2419cf61787a9p+00", sdcFIT1: "0x1.d35c7f025a5dbp-04",
		locality: [5]string{"0x0p+00", "0x1.1fed8e3f29f52p+00", "0x0p+00", "0x1.0b104893a15a1p-06", "0x0p+00"},
	},
	{
		device: "K40", kernel: "CLAMR", input: "48x48",
		masked: 206, sdc: 67, crash: 21, hang: 6,
		sdcFIT0: "0x1.57c7412483f13p+00", sdcFIT1: "0x1.a4be5f02a91f9p-01",
		locality: [5]string{"0x0p+00", "0x1.57c7412483f13p+00", "0x0p+00", "0x0p+00", "0x0p+00"},
	},
	{
		device: "XeonPhi", kernel: "DGEMM", input: "128x128",
		masked: 118, sdc: 154, crash: 21, hang: 7,
		sdcFIT0: "0x1.d1af7c1258809p-01", sdcFIT1: "0x1.ad65f76408768p-01",
		locality: [5]string{"0x0p+00", "0x1.316ac765cc545p-01", "0x1.e3d43e6980859p-03", "0x1.3a7d28916056dp-04", "0x0p+00"},
	},
	{
		device: "XeonPhi", kernel: "LavaMD", input: "grid 3",
		masked: 97, sdc: 96, crash: 93, hang: 14,
		sdcFIT0: "0x1.5c54961aecc7cp-01", sdcFIT1: "0x1.fbfb5ae743f8cp-02",
		locality: [5]string{"0x1.30ca03578f2edp-02", "0x1.ed77d4a624c5ap-04", "0x1.5c54961aecc7cp-03", "0x1.795ba29d2b2ddp-04", "0x0p+00"},
	},
	{
		device: "XeonPhi", kernel: "HotSpot", input: "64x64",
		masked: 131, sdc: 122, crash: 38, hang: 9,
		sdcFIT0: "0x1.6b99d21552bf5p-01", sdcFIT1: "0x1.65a3e39f77294p-04",
		locality: [5]string{"0x0p+00", "0x1.6b99d21552bf5p-01", "0x0p+00", "0x0p+00", "0x0p+00"},
	},
	{
		device: "XeonPhi", kernel: "CLAMR", input: "48x48",
		masked: 111, sdc: 131, crash: 49, hang: 9,
		sdcFIT0: "0x1.7d9f3bc79e008p-01", sdcFIT1: "0x1.31e156ffc115ep-01",
		locality: [5]string{"0x0p+00", "0x1.7d9f3bc79e008p-01", "0x0p+00", "0x0p+00", "0x0p+00"},
	},
}

// goldenKernels returns the table's kernel set for a device, in table
// order: smallest DGEMM and LavaMD sweep sizes, HotSpot, CLAMR.
func goldenKernels(dev arch.Device) []kernels.Kernel {
	return []kernels.Kernel{
		dgemm.New(DGEMMSizes(TestScale, dev)[0]),
		lavamd.New(LavaMDSizes(TestScale, dev)[0]),
		HotSpotKernel(TestScale),
		CLAMRKernel(TestScale),
	}
}

func mustHex(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("golden table holds unparseable float %q: %v", s, err)
	}
	return v
}

func requireGoldenFloat(t *testing.T, label string, got float64, want string) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(mustHex(t, want)) {
		t.Errorf("%s: got %s, table pins %s",
			label, strconv.FormatFloat(got, 'x', -1, 64), want)
	}
}

// TestGoldenValues pins the exact campaign outcomes of seed 42 / 300
// strikes across all four kernels on both devices, through both engines:
// the batch Result methods and the streaming reducer stack must each
// reproduce the frozen table bit for bit.
func TestGoldenValues(t *testing.T) {
	cfg := DefaultConfig(goldenSeed, goldenStrikes)
	i := 0
	for _, dev := range []arch.Device{k40.New(), phi.New()} {
		for _, kern := range goldenKernels(dev) {
			want := goldenTable[i]
			i++
			label := want.device + "/" + want.kernel + "/" + want.input

			res := Run(dev, kern, cfg)
			if res.Device != want.device || res.Kernel != want.kernel || res.Input != want.input {
				t.Fatalf("%s: cell resolved to %s/%s/%s — table and sweep presets diverged",
					label, res.Device, res.Kernel, res.Input)
			}
			wantTally := injector.Tally{Masked: want.masked, SDC: want.sdc, Crash: want.crash, Hang: want.hang}
			if res.Tally != wantTally {
				t.Errorf("%s: tally %+v, table pins %+v", label, res.Tally, wantTally)
			}
			requireGoldenFloat(t, label+": SDCFIT(0)", res.SDCFIT(0), want.sdcFIT0)
			requireGoldenFloat(t, label+": SDCFIT(1)", res.SDCFIT(1), want.sdcFIT1)
			bd := res.LocalityBreakdown(0)
			for k, hex := range want.locality {
				requireGoldenFloat(t, label+": locality["+bd.Labels[k]+"]", bd.Values[k], hex)
			}

			// The streaming engine must land on the same frozen values.
			tally := NewTallyReducer()
			counts := NewSDCCountReducer(0, 1)
			loc := NewLocalityReducer(0)
			info, err := RunStreaming(dev, kern, cfg, tally, counts, loc)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if tally.Tally != wantTally {
				t.Errorf("%s: streaming tally %+v, table pins %+v", label, tally.Tally, wantTally)
			}
			requireGoldenFloat(t, label+": streaming SDCFIT(0)", counts.FIT(0, info.Exposure), want.sdcFIT0)
			requireGoldenFloat(t, label+": streaming SDCFIT(1)", counts.FIT(1, info.Exposure), want.sdcFIT1)
			sbd := loc.Breakdown(info.Exposure)
			for k, hex := range want.locality {
				requireGoldenFloat(t, label+": streaming locality["+sbd.Labels[k]+"]", sbd.Values[k], hex)
			}
		}
	}
	if i != len(goldenTable) {
		t.Fatalf("walked %d cells, table has %d", i, len(goldenTable))
	}
}
