// Package campaign assembles full beam-test campaigns: device x kernel x
// input-size experiment matrices, strike sampling, outcome aggregation,
// FIT accounting and the per-figure data series of the paper's evaluation
// (§V). It is the layer cmd/figures, the benchmarks and the public facade
// build on.
package campaign

import (
	"fmt"
	"sync"

	"radcrit/internal/arch"
	"radcrit/internal/beam"
	"radcrit/internal/fault"
	"radcrit/internal/fit"
	"radcrit/internal/injector"
	"radcrit/internal/kernels"
	"radcrit/internal/logdata"
	"radcrit/internal/metrics"
)

// Config controls one experiment's statistical weight.
type Config struct {
	// Seed is the campaign's reproducibility root.
	Seed uint64
	// Strikes is the number of particle strikes to simulate per
	// (device, kernel, input) cell. The paper gathers enough beam time
	// for statistically significant counts; several hundred strikes per
	// cell reproduce the trends.
	Strikes int
	// BaseExecSeconds scales a profile's RelRuntime into wall seconds.
	BaseExecSeconds float64
	// Facility provides the neutron flux (default LANSCE).
	Facility beam.Facility
	// Workers sizes the strike worker pool (0 = GOMAXPROCS). Every strike
	// derives its randomness from an independent per-index RNG split and
	// outcomes are merged in index order, so Workers affects wall time
	// only — Results are bit-identical for any value. It is therefore
	// deliberately excluded from the memo-cache key.
	Workers int
	// StreamChunk sizes the streaming engine's execution window
	// (0 = DefaultStreamChunk). Like Workers it can never change results —
	// outcomes are consumed in strike-index order whatever the chunking —
	// it only sets the flush/checkpoint granularity and the engine's peak
	// outcome memory, so it too is excluded from the memo-cache key.
	StreamChunk int
}

// DefaultConfig returns the standard campaign configuration.
func DefaultConfig(seed uint64, strikes int) Config {
	return Config{
		Seed:            seed,
		Strikes:         strikes,
		BaseExecSeconds: 1.0,
		Facility:        beam.LANSCE,
	}
}

// Result is one experiment cell's aggregated outcome.
type Result struct {
	Device  string
	Kernel  string
	Input   string
	Profile arch.Profile

	Strikes int
	Tally   injector.Tally
	Reports []*metrics.Report // one per SDC execution
	// ReportResource[i] is the struck resource behind Reports[i],
	// enabling the selective-hardening analysis the paper proposes as
	// future work (§VI).
	ReportResource []fault.Resource
	// ResourceTally is the per-resource outcome accounting.
	ResourceTally map[fault.Resource]injector.Tally
	Exposure      beam.Exposure
}

// cacheKey identifies one memoisable experiment cell. It is a comparable
// struct (not a formatted string) so lookups cost no allocation and fields
// cannot collide through separator ambiguity. Workers is deliberately
// absent: it never changes results (see Config.Workers).
type cacheKey struct {
	Device, Kernel, Input string
	Seed                  uint64
	Strikes               int
	BaseExecSeconds       float64
	Facility              string
}

// cacheEntry is one single-flight memo slot: the first goroutine to claim
// a key computes the cell inside once.Do while latecomers block on the
// same Once and then read the shared result. Without this, two goroutines
// racing on one cell (e.g. a campaign matrix whose figures share cells)
// would both pay the full strike loop.
type cacheEntry struct {
	once sync.Once
	res  *Result
}

// resultCache memoises Run: several figure builders share the same
// experiment cells, and Run is a pure function of (device, kernel, input,
// config).
var resultCache sync.Map // cacheKey -> *cacheEntry

// Run simulates cfg.Strikes strikes of kern on dev. Results are memoised
// with single-flight deduplication: repeated or concurrent calls with the
// same cell and config compute once and return the same *Result.
func Run(dev arch.Device, kern kernels.Kernel, cfg Config) *Result {
	key := cacheKey{
		Device:          dev.ShortName(),
		Kernel:          kern.Name(),
		Input:           kern.InputLabel(),
		Seed:            cfg.Seed,
		Strikes:         cfg.Strikes,
		BaseExecSeconds: cfg.BaseExecSeconds,
		Facility:        cfg.Facility.Name,
	}
	v, _ := resultCache.LoadOrStore(key, &cacheEntry{})
	entry := v.(*cacheEntry)
	entry.once.Do(func() { entry.res = runUncached(dev, kern, cfg) })
	if entry.res == nil {
		// A panic inside once.Do (e.g. an invalid profile) marks the Once
		// done with no result. If that panic was recovered upstream, a
		// retry must fail loudly here rather than hand out a nil *Result.
		panic(fmt.Sprintf("campaign: cell %s/%s/%s previously failed to compute",
			key.Device, key.Kernel, key.Input))
	}
	return entry.res
}

// RunFresh executes the cell without consulting or populating the memo
// cache. Benchmarks use it to measure true engine cost across repeated
// runs of one cell; everything else should prefer Run.
func RunFresh(dev arch.Device, kern kernels.Kernel, cfg Config) *Result {
	return runUncached(dev, kern, cfg)
}

// runUncached executes one experiment cell. It is the batch face of the
// streaming engine: one RunStreaming pass with the compat resultSink
// stack, which retains every SDC report and rebuilds the full *Result.
// The streaming engine consumes outcomes in strike-index order whatever
// the Workers and StreamChunk settings, so the Result is bit-identical to
// a serial execution for a given seed (pinned by parallel_test.go and the
// golden/property suites).
func runUncached(dev arch.Device, kern kernels.Kernel, cfg Config) *Result {
	sink := newResultSink()
	info, err := RunStreaming(dev, kern, cfg, sink)
	if err != nil {
		panic(err.Error())
	}
	return sink.result(info)
}

// SDCFIT returns the SDC failure rate in FIT, optionally applying the
// relative-error filter first (executions whose mismatches are all below
// the threshold are no longer errors, §III).
func (r *Result) SDCFIT(thresholdPct float64) float64 {
	count := 0
	for _, rep := range r.Reports {
		if thresholdPct <= 0 || rep.Filter(thresholdPct).IsSDC() {
			count++
		}
	}
	return fit.FITFromCampaign(count, r.Exposure)
}

// DUEFIT returns the crash+hang (detectable-unrecoverable) rate in FIT.
func (r *Result) DUEFIT() float64 {
	return fit.FITFromCampaign(r.Tally.Crash+r.Tally.Hang, r.Exposure)
}

// LocalityBreakdown splits the SDC FIT by spatial pattern after applying
// the relative-error filter (thresholdPct <= 0 keeps all mismatches):
// the data behind Figures 3, 5 and 7.
func (r *Result) LocalityBreakdown(thresholdPct float64) fit.Breakdown {
	counts := make(map[metrics.Pattern]int)
	for _, rep := range r.Reports {
		eff := rep
		if thresholdPct > 0 {
			eff = rep.Filter(thresholdPct)
		}
		if !eff.IsSDC() {
			continue
		}
		counts[eff.Locality()]++
	}
	bd := fit.Breakdown{}
	for _, p := range metrics.Patterns {
		bd.Labels = append(bd.Labels, p.String())
		bd.Values = append(bd.Values, fit.FITFromCampaign(counts[p], r.Exposure))
	}
	return bd
}

// ScatterPoint is one SDC execution in a Figure-2/4/6/8 style scatter.
type ScatterPoint struct {
	IncorrectElements int
	MeanRelErrPct     float64
}

// Scatter extracts the (incorrect elements, mean relative error) points,
// capping the per-element relative error at capPct as the paper's figures
// do for readability (capPct <= 0 disables capping).
func (r *Result) Scatter(capPct float64) []ScatterPoint {
	limit := capPct
	if limit <= 0 {
		limit = 1e308
	}
	pts := make([]ScatterPoint, 0, len(r.Reports))
	for _, rep := range r.Reports {
		pts = append(pts, ScatterPoint{
			IncorrectElements: rep.Count(),
			MeanRelErrPct:     rep.MeanRelErrPct(limit),
		})
	}
	return pts
}

// FilteredFraction is the fraction of SDC executions fully cleared by the
// relative-error filter (§V: 50-75% for DGEMM on K40, ~95% for HotSpot).
func (r *Result) FilteredFraction(thresholdPct float64) float64 {
	if len(r.Reports) == 0 {
		return 0
	}
	cleared := 0
	for _, rep := range r.Reports {
		if !rep.Filter(thresholdPct).IsSDC() {
			cleared++
		}
	}
	return float64(cleared) / float64(len(r.Reports))
}

// ToLog converts the result into the public log format. Masked outcomes
// carry no per-execution payload and are recorded as the log's Masked
// count (not as events), so a parsed log reconstructs the full tally.
func (r *Result) ToLog(seed uint64) *logdata.Log {
	l := &logdata.Log{
		Device:     r.Device,
		Kernel:     r.Kernel,
		Input:      r.Input,
		Facility:   r.Exposure.Facility.Name,
		Seed:       seed,
		Executions: r.Exposure.Executions(),
		BeamHours:  r.Exposure.BeamHours,
		OutputDims: r.Profile.OutputDims,
		Masked:     r.Tally.Masked,
	}
	exec := 0
	for i, rep := range r.Reports {
		exec += 13 // arbitrary but deterministic spacing
		ev := logdata.Event{
			Class:      fault.SDC,
			Exec:       exec,
			Mismatches: rep.Mismatches,
		}
		if i < len(r.ReportResource) {
			ev.Resource = r.ReportResource[i].String()
		}
		l.Events = append(l.Events, ev)
	}
	for i := 0; i < r.Tally.Crash; i++ {
		exec += 7
		l.Events = append(l.Events, logdata.Event{Class: fault.Crash, Exec: exec})
	}
	for i := 0; i < r.Tally.Hang; i++ {
		exec += 11
		l.Events = append(l.Events, logdata.Event{Class: fault.Hang, Exec: exec})
	}
	return l
}
