// Package campaign assembles full beam-test campaigns: device x kernel x
// input-size experiment matrices, strike sampling, outcome aggregation,
// FIT accounting and the per-figure data series of the paper's evaluation
// (§V). It is the layer cmd/figures, the benchmarks and the public facade
// build on.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"radcrit/internal/arch"
	"radcrit/internal/beam"
	"radcrit/internal/fault"
	"radcrit/internal/fit"
	"radcrit/internal/injector"
	"radcrit/internal/kernels"
	"radcrit/internal/logdata"
	"radcrit/internal/metrics"
)

// CellError is the typed failure of one experiment cell: it carries the
// cell's identity so a matrix or plan run can report which cell failed,
// and wraps the underlying cause. Both engines return it in place of the
// panics the pre-plan API used for invalid cells.
type CellError struct {
	Device, Kernel, Input string
	Err                   error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("campaign: cell %s/%s/%s: %v", e.Device, e.Kernel, e.Input, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// isCancellation reports whether err is the caller's context speaking —
// the one error class the engines must never cache or wrap as a cell
// failure.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// cellError wraps err with the cell's identity (no-op for nil and for
// context cancellation, which is the caller's signal, not the cell's
// fault).
func cellError(dev arch.Device, kern kernels.Kernel, err error) error {
	if err == nil || isCancellation(err) {
		return err
	}
	return &CellError{Device: dev.ShortName(), Kernel: kern.Name(), Input: kern.InputLabel(), Err: err}
}

// Config controls one experiment's statistical weight.
type Config struct {
	// Seed is the campaign's reproducibility root.
	Seed uint64
	// Strikes is the number of particle strikes to simulate per
	// (device, kernel, input) cell. The paper gathers enough beam time
	// for statistically significant counts; several hundred strikes per
	// cell reproduce the trends.
	Strikes int
	// BaseExecSeconds scales a profile's RelRuntime into wall seconds.
	BaseExecSeconds float64
	// Facility provides the neutron flux (default LANSCE).
	Facility beam.Facility
	// Workers sizes the strike worker pool (0 = GOMAXPROCS). Every strike
	// derives its randomness from an independent per-index RNG split and
	// outcomes are merged in index order, so Workers affects wall time
	// only — Results are bit-identical for any value. It is therefore
	// deliberately excluded from the memo-cache key.
	Workers int
	// StreamChunk sizes the streaming engine's execution window
	// (0 = DefaultStreamChunk). Like Workers it can never change results —
	// outcomes are consumed in strike-index order whatever the chunking —
	// it only sets the flush/checkpoint granularity and the engine's peak
	// outcome memory, so it too is excluded from the memo-cache key.
	//
	// One carve-out: when Adaptive is set with CheckEvery == 0, the look
	// spacing defaults to the effective chunk, and the look schedule DOES
	// change where a cell stops. The resolved spacing (not StreamChunk
	// itself) is what enters CellKey.
	StreamChunk int
	// Adaptive, when non-nil, enables sequential early stopping: the
	// streaming engine evaluates Adaptive's stop rule at every chunk
	// boundary and ends the cell once its SDC-proportion confidence
	// interval is tight enough (DESIGN.md §11). The batch engine and its
	// memo cache ignore it entirely — batch cells always run their full
	// budget — so Run/RunCtx results are unaffected.
	Adaptive *AdaptiveSpec
}

// DefaultConfig returns the standard campaign configuration.
func DefaultConfig(seed uint64, strikes int) Config {
	return Config{
		Seed:            seed,
		Strikes:         strikes,
		BaseExecSeconds: 1.0,
		Facility:        beam.LANSCE,
	}
}

// Result is one experiment cell's aggregated outcome.
type Result struct {
	Device  string
	Kernel  string
	Input   string
	Profile arch.Profile

	Strikes int
	Tally   injector.Tally
	Reports []*metrics.Report // one per SDC execution
	// ReportResource[i] is the struck resource behind Reports[i],
	// enabling the selective-hardening analysis the paper proposes as
	// future work (§VI).
	ReportResource []fault.Resource
	// ResourceTally is the per-resource outcome accounting.
	ResourceTally map[fault.Resource]injector.Tally
	Exposure      beam.Exposure
}

// cacheKey identifies one memoisable experiment cell. It is a comparable
// struct (not a formatted string) so lookups cost no allocation and fields
// cannot collide through separator ambiguity. Workers is deliberately
// absent: it never changes results (see Config.Workers).
type cacheKey struct {
	Device, Kernel, Input string
	Seed                  uint64
	Strikes               int
	BaseExecSeconds       float64
	Facility              string
}

// cacheEntry is one single-flight memo slot: the first goroutine to claim
// a key becomes the leader and computes the cell; followers wait on the
// generation channel and then read the shared outcome. Without this, two
// goroutines racing on one cell (e.g. a campaign matrix whose figures
// share cells) would both pay the full strike loop. A failed cell caches
// its *CellError — every later call gets the same typed error instead of
// the pre-plan API's panic — but a context cancellation is never cached:
// the slot returns to idle, the waiters are woken, and the next caller
// (or a waiting follower) becomes the new leader. Followers wait under
// their own context, so cancelling a caller that is merely queued behind
// another caller's computation returns ctx.Err() immediately.
type cacheEntry struct {
	mu    sync.Mutex
	state int           // entryIdle, entryRunning or entryDone
	wake  chan struct{} // non-nil while running; closed when the leader yields
	res   *Result
	err   error
}

const (
	entryIdle = iota
	entryRunning
	entryDone
)

// resultCache memoises Run: several figure builders share the same
// experiment cells, and Run is a pure function of (device, kernel, input,
// config).
var resultCache sync.Map // cacheKey -> *cacheEntry

// Run simulates cfg.Strikes strikes of kern on dev. Results are memoised
// with single-flight deduplication: repeated or concurrent calls with the
// same cell and config compute once and return the same *Result.
//
// Run is the compat face of RunCtx: it cannot be cancelled and panics on
// an invalid cell. Plan-driven callers use RunCtx, which returns a typed
// *CellError instead.
func Run(dev arch.Device, kern kernels.Kernel, cfg Config) *Result {
	res, err := RunCtx(context.Background(), dev, kern, cfg)
	if err != nil {
		panic(err.Error())
	}
	return res
}

// RunCtx is Run under a context: memoised, single-flighted, and
// cancellable at chunk boundaries. An invalid cell returns a *CellError
// (cached, so every caller sees the same failure); a cancelled context
// returns ctx.Err() without poisoning the cache.
func RunCtx(ctx context.Context, dev arch.Device, kern kernels.Kernel, cfg Config) (*Result, error) {
	key := cacheKey{
		Device:          dev.ShortName(),
		Kernel:          kern.Name(),
		Input:           kern.InputLabel(),
		Seed:            cfg.Seed,
		Strikes:         cfg.Strikes,
		BaseExecSeconds: cfg.BaseExecSeconds,
		Facility:        cfg.Facility.Name,
	}
	v, _ := resultCache.LoadOrStore(key, &cacheEntry{})
	entry := v.(*cacheEntry)
	for {
		entry.mu.Lock()
		switch entry.state {
		case entryDone:
			entry.mu.Unlock()
			return entry.res, entry.err

		case entryRunning:
			// Another caller is computing this cell: wait for it to yield
			// under our own context, so a queued caller stays cancellable
			// even while the leader churns.
			ch := entry.wake
			entry.mu.Unlock()
			select {
			case <-ch:
				continue // leader yielded: done, or back to idle — re-examine
			case <-ctx.Done():
				return nil, ctx.Err()
			}

		default: // entryIdle: become the leader
			entry.state = entryRunning
			entry.wake = make(chan struct{})
			entry.mu.Unlock()
			res, err := leaderCompute(ctx, entry, dev, kern, cfg)
			if isCancellation(err) {
				return nil, err
			}
			return res, err
		}
	}
}

// leaderCompute runs the cell as the entry's leader and publishes the
// outcome. The state transition sits in a defer so that even a panic
// escaping a kernel (a third-party RunInjectedOn bug, say) returns the
// slot to idle and wakes the waiters before propagating — otherwise the
// entry would wedge at entryRunning and every future caller of this cell
// would block forever.
func leaderCompute(ctx context.Context, entry *cacheEntry, dev arch.Device, kern kernels.Kernel, cfg Config) (res *Result, err error) {
	completed := false
	defer func() {
		entry.mu.Lock()
		switch {
		case !completed || isCancellation(err):
			entry.state = entryIdle // never cache a panic or a cancellation
		default:
			entry.state = entryDone
			entry.res, entry.err = res, err
		}
		close(entry.wake)
		entry.wake = nil
		entry.mu.Unlock()
	}()
	res, err = runUncachedCtx(ctx, dev, kern, cfg)
	completed = true
	return res, err
}

// RunFresh executes the cell without consulting or populating the memo
// cache. Benchmarks use it to measure true engine cost across repeated
// runs of one cell; everything else should prefer Run.
func RunFresh(dev arch.Device, kern kernels.Kernel, cfg Config) *Result {
	return runUncached(dev, kern, cfg)
}

// runUncached is runUncachedCtx for callers with no context: it panics on
// an invalid cell, the compat contract of Run/RunFresh.
func runUncached(dev arch.Device, kern kernels.Kernel, cfg Config) *Result {
	res, err := runUncachedCtx(context.Background(), dev, kern, cfg)
	if err != nil {
		panic(err.Error())
	}
	return res
}

// runUncachedCtx executes one experiment cell. It is the batch face of
// the streaming engine: one RunStreaming pass with the compat resultSink
// stack, which retains every SDC report and rebuilds the full *Result.
// The streaming engine consumes outcomes in strike-index order whatever
// the Workers and StreamChunk settings, so the Result is bit-identical to
// a serial execution for a given seed (pinned by parallel_test.go and the
// golden/property suites).
func runUncachedCtx(ctx context.Context, dev arch.Device, kern kernels.Kernel, cfg Config) (*Result, error) {
	sink := newResultSink()
	info, err := RunStreamingCtx(ctx, dev, kern, cfg, sink)
	if err != nil {
		return nil, err
	}
	return sink.result(info), nil
}

// SDCFIT returns the SDC failure rate in FIT, optionally applying the
// relative-error filter first (executions whose mismatches are all below
// the threshold are no longer errors, §III).
func (r *Result) SDCFIT(thresholdPct float64) float64 {
	count := 0
	for _, rep := range r.Reports {
		if thresholdPct <= 0 || rep.Filter(thresholdPct).IsSDC() {
			count++
		}
	}
	return fit.FITFromCampaign(count, r.Exposure)
}

// DUEFIT returns the crash+hang (detectable-unrecoverable) rate in FIT.
func (r *Result) DUEFIT() float64 {
	return fit.FITFromCampaign(r.Tally.Crash+r.Tally.Hang, r.Exposure)
}

// LocalityBreakdown splits the SDC FIT by spatial pattern after applying
// the relative-error filter (thresholdPct <= 0 keeps all mismatches):
// the data behind Figures 3, 5 and 7.
func (r *Result) LocalityBreakdown(thresholdPct float64) fit.Breakdown {
	counts := make(map[metrics.Pattern]int)
	for _, rep := range r.Reports {
		eff := rep
		if thresholdPct > 0 {
			eff = rep.Filter(thresholdPct)
		}
		if !eff.IsSDC() {
			continue
		}
		counts[eff.Locality()]++
	}
	bd := fit.Breakdown{}
	for _, p := range metrics.Patterns {
		bd.Labels = append(bd.Labels, p.String())
		bd.Values = append(bd.Values, fit.FITFromCampaign(counts[p], r.Exposure))
	}
	return bd
}

// ScatterPoint is one SDC execution in a Figure-2/4/6/8 style scatter.
type ScatterPoint struct {
	IncorrectElements int
	MeanRelErrPct     float64
}

// Scatter extracts the (incorrect elements, mean relative error) points,
// capping the per-element relative error at capPct as the paper's figures
// do for readability (capPct <= 0 disables capping).
func (r *Result) Scatter(capPct float64) []ScatterPoint {
	limit := capPct
	if limit <= 0 {
		limit = 1e308
	}
	pts := make([]ScatterPoint, 0, len(r.Reports))
	for _, rep := range r.Reports {
		pts = append(pts, ScatterPoint{
			IncorrectElements: rep.Count(),
			MeanRelErrPct:     rep.MeanRelErrPct(limit),
		})
	}
	return pts
}

// FilteredFraction is the fraction of SDC executions fully cleared by the
// relative-error filter (§V: 50-75% for DGEMM on K40, ~95% for HotSpot).
func (r *Result) FilteredFraction(thresholdPct float64) float64 {
	if len(r.Reports) == 0 {
		return 0
	}
	cleared := 0
	for _, rep := range r.Reports {
		if !rep.Filter(thresholdPct).IsSDC() {
			cleared++
		}
	}
	return float64(cleared) / float64(len(r.Reports))
}

// ToLog converts the result into the public log format. Masked outcomes
// carry no per-execution payload and are recorded as the log's Masked
// count (not as events), so a parsed log reconstructs the full tally.
func (r *Result) ToLog(seed uint64) *logdata.Log {
	l := &logdata.Log{
		Device:     r.Device,
		Kernel:     r.Kernel,
		Input:      r.Input,
		Facility:   r.Exposure.Facility.Name,
		Seed:       seed,
		Executions: r.Exposure.Executions(),
		BeamHours:  r.Exposure.BeamHours,
		OutputDims: r.Profile.OutputDims,
		Masked:     r.Tally.Masked,
	}
	exec := 0
	for i, rep := range r.Reports {
		exec += 13 // arbitrary but deterministic spacing
		ev := logdata.Event{
			Class:      fault.SDC,
			Exec:       exec,
			Mismatches: rep.Mismatches,
		}
		if i < len(r.ReportResource) {
			ev.Resource = r.ReportResource[i].String()
		}
		l.Events = append(l.Events, ev)
	}
	for i := 0; i < r.Tally.Crash; i++ {
		exec += 7
		l.Events = append(l.Events, logdata.Event{Class: fault.Crash, Exec: exec})
	}
	for i := 0; i < r.Tally.Hang; i++ {
		exec += 11
		l.Events = append(l.Events, logdata.Event{Class: fault.Hang, Exec: exec})
	}
	return l
}
