package campaign

// Batch-seam determinism suite (DESIGN.md §13): Session.RunBatch and every
// kernel's RunInjectedBatch implementation must be bit-identical to the
// per-strike RunOne path, at every span split, for every kernel family.

import (
	"testing"

	"radcrit/internal/beam"
	"radcrit/internal/fault"
	"radcrit/internal/injector"
	"radcrit/internal/kernels"
	"radcrit/internal/xrand"
)

// strikeAtIndex derives strike i exactly as the streaming engine does.
func strikeAtIndex(base *xrand.RNG, i int) (fault.Strike, *xrand.RNG) {
	sub := base.Split(uint64(i) + 1)
	return fault.Strike{When: sub.Float64(), Energy: beam.StrikeEnergy(sub)}, sub
}

func requireSameOutcome(t *testing.T, label string, i int, got, want injector.Outcome) {
	t.Helper()
	if got.Class != want.Class || got.Resource != want.Resource || got.Scope != want.Scope {
		t.Fatalf("%s strike %d: outcome (%v,%v,%v) != (%v,%v,%v)", label, i,
			got.Class, got.Resource, got.Scope, want.Class, want.Resource, want.Scope)
	}
	if (got.Report == nil) != (want.Report == nil) {
		t.Fatalf("%s strike %d: report presence differs", label, i)
	}
	if got.Report != nil && !sameReport(got.Report, want.Report) {
		t.Fatalf("%s strike %d: reports differ", label, i)
	}
}

// TestBatchMatchesRunOneBitIdentical runs the same strike population
// through RunOne (one call per strike) and RunBatch (several span splits,
// including span=1 and one whole-population span) and requires bit-equal
// classifications and reports everywhere.
func TestBatchMatchesRunOneBitIdentical(t *testing.T) {
	const strikes = 160
	for _, cell := range determinismCells() {
		if _, ok := cell.Kern.(kernels.BatchRunner); !ok {
			t.Errorf("%s: kernel does not implement the batch seam", cell.Kern.Name())
		}
		sesOne, err := injector.NewSession(cell.Dev, cell.Kern)
		if err != nil {
			t.Fatal(err)
		}
		base := xrand.New(0xBA7C4)
		want := make([]injector.Outcome, strikes)
		for i := 0; i < strikes; i++ {
			strike, sub := strikeAtIndex(base, i)
			want[i] = sesOne.RunOne(strike, sub)
		}

		for _, span := range []int{1, 7, 32, strikes} {
			sesBatch, err := injector.NewSession(cell.Dev, cell.Kern)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]injector.Outcome, strikes)
			strikesBuf := make([]fault.Strike, strikes)
			rngs := make([]*xrand.RNG, strikes)
			for i := 0; i < strikes; i++ {
				strikesBuf[i], rngs[i] = strikeAtIndex(base, i)
			}
			for lo := 0; lo < strikes; lo += span {
				hi := min(lo+span, strikes)
				sesBatch.RunBatch(strikesBuf[lo:hi], rngs[lo:hi], got[lo:hi])
			}
			for i := 0; i < strikes; i++ {
				requireSameOutcome(t, cell.Kern.Name(), i, got[i], want[i])
			}
		}
	}
}

// TestBatchFallbackMatchesRunOne pins kernels.RunBatchFallback itself: a
// kernel stripped of its BatchRunner seam must flow through the fallback
// loop and still match RunOne bit for bit.
func TestBatchFallbackMatchesRunOne(t *testing.T) {
	cell := determinismCells()[0]
	ses, err := injector.NewSession(cell.Dev, cell.Kern)
	if err != nil {
		t.Fatal(err)
	}
	base := xrand.New(0xFA11)
	const strikes = 64
	golden := cell.Kern.Golden(cell.Dev)
	for i := 0; i < strikes; i++ {
		strike, sub := strikeAtIndex(base, i)
		syn := cell.Dev.ResolveStrike(ses.Profile(), strike, sub)
		if syn.Outcome != fault.SDC {
			continue
		}
		_, ref := strikeAtIndex(base, i)
		refSyn := cell.Dev.ResolveStrike(ses.Profile(), strike, ref)
		want := cell.Kern.RunInjectedPooled(golden, refSyn.Injection, ref, nil)
		batch := []kernels.BatchStrike{{Inj: syn.Injection, RNG: sub}}
		kernels.RunBatchFallback(cell.Kern, golden, batch, nil)
		if !sameReport(batch[0].Report, want) {
			t.Fatalf("strike %d: fallback report differs from direct pooled run", i)
		}
	}
}
