package campaign

import (
	"radcrit/internal/arch"
	"radcrit/internal/k40"
	"radcrit/internal/kernels"
	"radcrit/internal/kernels/clamr"
	"radcrit/internal/kernels/dgemm"
	"radcrit/internal/kernels/hotspot"
	"radcrit/internal/kernels/lavamd"
	"radcrit/internal/phi"
	"radcrit/internal/registry"
)

// Scale selects experiment sizing: the paper's configurations (Table II)
// or reduced configurations with the same qualitative behaviour for fast
// test/CI runs.
type Scale int

const (
	// TestScale shrinks inputs so the full matrix runs in seconds.
	TestScale Scale = iota
	// PaperScale uses Table II sizes.
	PaperScale
)

// Devices returns the two tested accelerators.
func Devices() []arch.Device {
	return []arch.Device{k40.New(), phi.New()}
}

// DGEMMSizes returns the matrix sides swept for a device (Fig. 2/3: three
// sizes on the K40, four on the Xeon Phi).
func DGEMMSizes(s Scale, dev arch.Device) []int {
	phiDev := dev.Model().VectorWidthBits > 0
	if s == PaperScale {
		if phiDev {
			return []int{1024, 2048, 4096, 8192}
		}
		return []int{1024, 2048, 4096}
	}
	if phiDev {
		return []int{128, 256, 512, 1024}
	}
	return []int{128, 256, 512}
}

// LavaMDSizes returns the box-grid sizes swept for a device (Fig. 4/5:
// 15/19/23 on the K40, 13/15/19/23 on the Xeon Phi).
func LavaMDSizes(s Scale, dev arch.Device) []int {
	phiDev := dev.Model().VectorWidthBits > 0
	if s == PaperScale {
		if phiDev {
			return []int{13, 15, 19, 23}
		}
		return []int{15, 19, 23}
	}
	if phiDev {
		return []int{3, 4, 5, 6}
	}
	return []int{4, 5, 6}
}

// HotSpotConfig returns (side, iterations) for the scale (Table II:
// 1024x1024 cells).
func HotSpotConfig(s Scale) (side, iters int) {
	if s == PaperScale {
		return 1024, 400
	}
	return 64, 80
}

// CLAMRConfig returns (side, steps) for the scale (Table II: 512x512
// cells; steps reduced from the paper's 5,000 to keep the golden run
// tractable while the dam-break wave still crosses the domain).
func CLAMRConfig(s Scale) (side, steps int) {
	if s == PaperScale {
		return 512, 600
	}
	return 48, 60
}

// Iterative kernels carry precomputed golden state; the registry memoises
// them per configuration, so a preset-built kernel and a plan cell naming
// the same configuration share one golden timeline.

// HotSpotKernel returns the cached HotSpot instance for the scale.
func HotSpotKernel(s Scale) *hotspot.Kernel {
	side, iters := HotSpotConfig(s)
	return registry.HotSpot(side, iters)
}

// CLAMRKernel returns the cached CLAMR instance for the scale.
func CLAMRKernel(s Scale) *clamr.Kernel {
	side, steps := CLAMRConfig(s)
	return registry.CLAMR(side, steps)
}

// AllKernels returns one instance of each benchmark at the scale's
// default size for a device (used by Table I/II and the SDC-ratio stats).
func AllKernels(s Scale, dev arch.Device) []kernels.Kernel {
	dg := DGEMMSizes(s, dev)
	lv := LavaMDSizes(s, dev)
	return []kernels.Kernel{
		dgemm.New(dg[len(dg)-1]),
		lavamd.New(lv[len(lv)-1]),
		HotSpotKernel(s),
		CLAMRKernel(s),
	}
}
