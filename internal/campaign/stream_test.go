package campaign

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"radcrit/internal/abft"
	"radcrit/internal/arch"
	"radcrit/internal/k40"
	"radcrit/internal/kernels"
	"radcrit/internal/kernels/dgemm"
	"radcrit/internal/kernels/lavamd"
	"radcrit/internal/logdata"
	"radcrit/internal/phi"
	"radcrit/internal/xrand"
)

// requireSameFloat asserts bit-identity, which is NaN-safe: reservoirs and
// FIT values computed by two engines must agree to the last bit, and NaN
// == NaN under bit comparison even though it fails under ==.
func requireSameFloat(t *testing.T, label string, a, b float64) {
	t.Helper()
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("%s: %v (%#x) != %v (%#x)", label, a, math.Float64bits(a), b, math.Float64bits(b))
	}
}

func requireSameBreakdown(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: lengths %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		requireSameFloat(t, label, a[i], b[i])
	}
}

// streamSinks is one full reducer stack plus the batch methods it must
// reproduce.
type streamSinks struct {
	tally    *TallyReducer
	counts   *SDCCountReducer
	locAll   *LocalityReducer
	locFilt  *LocalityReducer
	fraction *FilteredFractionReducer
	scatter  *ScatterReducer
	abftRed  *ABFTReducer
}

func newStreamSinks(threshold, capPct float64, maxPoints int) (streamSinks, []Sink) {
	s := streamSinks{
		tally:    NewTallyReducer(),
		counts:   NewSDCCountReducer(0, threshold),
		locAll:   NewLocalityReducer(0),
		locFilt:  NewLocalityReducer(threshold),
		fraction: NewFilteredFractionReducer(threshold),
		scatter:  NewScatterReducer(capPct, maxPoints, xrand.New(99)),
		abftRed:  NewABFTReducer(),
	}
	return s, []Sink{s.tally, s.counts, s.locAll, s.locFilt, s.fraction, s.scatter, s.abftRed}
}

// requireStreamMatchesBatch asserts every reducer output is bit-identical
// to the corresponding batch Result method.
func requireStreamMatchesBatch(t *testing.T, label string, s streamSinks, info StreamInfo, res *Result, threshold float64) {
	t.Helper()
	if s.tally.Tally != res.Tally {
		t.Fatalf("%s: tally %+v != batch %+v", label, s.tally.Tally, res.Tally)
	}
	if !reflect.DeepEqual(s.tally.ByResource, res.ResourceTally) {
		t.Fatalf("%s: per-resource tallies differ", label)
	}
	if info.Exposure != res.Exposure {
		t.Fatalf("%s: exposures differ: %+v vs %+v", label, info.Exposure, res.Exposure)
	}
	requireSameFloat(t, label+": SDCFIT(0)", s.counts.FIT(0, info.Exposure), res.SDCFIT(0))
	requireSameFloat(t, label+": SDCFIT(t)", s.counts.FIT(1, info.Exposure), res.SDCFIT(threshold))
	requireSameBreakdown(t, label+": LocalityBreakdown(0)",
		s.locAll.Breakdown(info.Exposure).Values, res.LocalityBreakdown(0).Values)
	requireSameBreakdown(t, label+": LocalityBreakdown(t)",
		s.locFilt.Breakdown(info.Exposure).Values, res.LocalityBreakdown(threshold).Values)
	requireSameFloat(t, label+": FilteredFraction", s.fraction.Fraction(), res.FilteredFraction(threshold))
	batchPts := res.Scatter(s.scatter.CapPct)
	if len(s.scatter.Points()) != len(batchPts) {
		t.Fatalf("%s: scatter sizes %d vs %d", label, len(s.scatter.Points()), len(batchPts))
	}
	for i, p := range s.scatter.Points() {
		if p.IncorrectElements != batchPts[i].IncorrectElements {
			t.Fatalf("%s: scatter point %d element count differs", label, i)
		}
		requireSameFloat(t, label+": scatter MRE", p.MeanRelErrPct, batchPts[i].MeanRelErrPct)
	}
	if cov := abft.EvaluateCoverage(res.Reports); s.abftRed.Coverage != cov {
		t.Fatalf("%s: ABFT coverage %+v != batch %+v", label, s.abftRed.Coverage, cov)
	}
}

// TestStreamingEquivalenceProperty is the property-based pin of the
// acceptance criterion: for random (seed, strikes, kernel, device,
// threshold, chunk) draws, the streaming reducers must be bit-identical to
// the batch Result methods, under 1 worker and 8 workers alike.
func TestStreamingEquivalenceProperty(t *testing.T) {
	rng := xrand.New(20260729)
	devices := []arch.Device{k40.New(), phi.New()}
	kerns := []kernels.Kernel{
		dgemm.New(128),
		lavamd.New(4),
		HotSpotKernel(TestScale),
		CLAMRKernel(TestScale),
	}
	thresholds := []float64{0, 0.5, 1, 2, 5, 50}
	caps := []float64{0, 100, 20000}
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		dev := devices[rng.Intn(len(devices))]
		kern := kerns[rng.Intn(len(kerns))]
		threshold := thresholds[rng.Intn(len(thresholds))]
		capPct := caps[rng.Intn(len(caps))]
		cfg := DefaultConfig(rng.Uint64(), 30+rng.Intn(90))
		cfg.StreamChunk = 1 + rng.Intn(64)
		label := kern.Name() + "/" + dev.ShortName()

		batchCfg := cfg
		batchCfg.Workers = 1
		res := RunFresh(dev, kern, batchCfg)

		for _, workers := range []int{1, 8} {
			streamCfg := cfg
			streamCfg.Workers = workers
			s, sinks := newStreamSinks(threshold, capPct, cfg.Strikes+1)
			info, err := RunStreaming(dev, kern, streamCfg, sinks...)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			requireStreamMatchesBatch(t, label, s, info, res, threshold)
		}
	}
}

// TestScatterReservoirBounded checks the sampling side of the reservoir:
// with a cap smaller than the SDC count it must retain exactly MaxPoints
// points, every one of them a real scatter point of the batch result, and
// the sample must be deterministic for a fixed RNG.
func TestScatterReservoirBounded(t *testing.T) {
	dev := k40.New()
	kern := dgemm.New(128)
	cfg := DefaultConfig(7, 300)
	res := Run(dev, kern, cfg)
	if res.Tally.SDC < 20 {
		t.Fatalf("need a report-rich cell, got %d SDCs", res.Tally.SDC)
	}
	const maxPts = 10
	sample := func() []ScatterPoint {
		sc := NewScatterReducer(100, maxPts, xrand.New(5))
		if _, err := RunStreaming(dev, kern, cfg, sc); err != nil {
			t.Fatal(err)
		}
		if sc.Seen() != res.Tally.SDC {
			t.Fatalf("reservoir saw %d SDCs, want %d", sc.Seen(), res.Tally.SDC)
		}
		return sc.Points()
	}
	a := sample()
	if len(a) != maxPts {
		t.Fatalf("reservoir kept %d points, want %d", len(a), maxPts)
	}
	full := map[ScatterPoint]int{}
	for _, p := range res.Scatter(100) {
		full[p]++
	}
	for _, p := range a {
		if full[p] == 0 {
			t.Fatalf("sampled point %+v not in (or oversampled from) the full scatter", p)
		}
		full[p]--
	}
	if b := sample(); !reflect.DeepEqual(a, b) {
		t.Fatal("reservoir sample not deterministic for a fixed RNG")
	}
}

// TestStreamingBuildersMatchBatch pins the streaming figure builders
// against their batch counterparts on a shared matrix.
func TestStreamingBuildersMatchBatch(t *testing.T) {
	cfg := DefaultConfig(301, 120)
	dev := k40.New()

	batchScatter := BuildDGEMMScatter(dev, TestScale, cfg)
	streamScatter, err := ScatterStreaming("DGEMM", 100, 0, DGEMMCells(dev, TestScale), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batchScatter, streamScatter) {
		t.Fatal("streaming DGEMM scatter differs from batch")
	}

	batchLoc := BuildDGEMMLocality(dev, TestScale, cfg, 2)
	streamLoc, err := LocalityStreaming("DGEMM", DGEMMCells(dev, TestScale), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batchLoc, streamLoc) {
		t.Fatal("streaming DGEMM locality differs from batch")
	}

	// The full 18-cell matrix is the expensive comparison: a reduced
	// strike count keeps the property meaningful (every cell, every row
	// field) without doubling the suite's wall time.
	ratioCfg := DefaultConfig(301, 40)
	batchRatios := BuildSDCRatios(TestScale, ratioCfg)
	streamRatios, err := SDCRatiosStreaming(TestScale, ratioCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batchRatios, streamRatios) {
		t.Fatal("streaming SDC ratios differ from batch")
	}

	batchScaling := BuildDGEMMScaling(dev, TestScale, cfg, 2)
	streamScaling, err := DGEMMScalingStreaming(dev, TestScale, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batchScaling, streamScaling) {
		t.Fatal("streaming DGEMM scaling differs from batch")
	}

	batchABFT := BuildABFTCoverage(dev, TestScale, cfg)
	streamABFT, err := ABFTCoverageStreaming(dev, TestScale, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batchABFT, streamABFT) {
		t.Fatal("streaming ABFT coverage differs from batch")
	}
}

// TestCheckpointLogMatchesResult checks the checkpointed event stream is a
// faithful, parseable record: counts, masked executions and per-SDC
// mismatches all reconstruct the batch result.
func TestCheckpointLogMatchesResult(t *testing.T) {
	dev := phi.New()
	kern := dgemm.New(128)
	cfg := DefaultConfig(17, 150)
	cfg.StreamChunk = 32

	info, err := CellInfo(dev, kern, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink, err := NewCheckpointSink(&buf, info, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunStreaming(dev, kern, cfg, sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	res := RunFresh(dev, kern, cfg)
	l, err := logdata.Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if l.Masked != res.Tally.Masked {
		t.Fatalf("log masked %d != %d", l.Masked, res.Tally.Masked)
	}
	if l.SDCCount() != res.Tally.SDC || l.CrashHangCount() != res.Tally.Crash+res.Tally.Hang {
		t.Fatalf("log counts (%d SDC, %d DUE) != tally %+v", l.SDCCount(), l.CrashHangCount(), res.Tally)
	}
	if got := l.Masked + l.SDCCount() + l.CrashHangCount(); got != cfg.Strikes {
		t.Fatalf("log reconstructs %d strikes, want %d", got, cfg.Strikes)
	}
	reps := l.Reports()
	if len(reps) != len(res.Reports) {
		t.Fatalf("log has %d reports, batch %d", len(reps), len(res.Reports))
	}
	for i, rep := range reps {
		if rep.Count() != res.Reports[i].Count() {
			t.Fatalf("report %d: %d mismatches vs %d", i, rep.Count(), res.Reports[i].Count())
		}
	}
}

// TestCheckpointResumeReproducesTail is the crash-recovery contract: a log
// truncated at an arbitrary byte offset recovers, via RecoverLog, into a
// log whose parsed content is identical to the uninterrupted run's.
func TestCheckpointResumeReproducesTail(t *testing.T) {
	dev := k40.New()
	kern := dgemm.New(128)
	cfg := DefaultConfig(23, 120)
	cfg.StreamChunk = 16

	info, err := CellInfo(dev, kern, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	sink, err := NewCheckpointSink(&full, info, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunStreaming(dev, kern, cfg, sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := logdata.Parse(bytes.NewReader(full.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	data := full.Bytes()
	cuts := []int{}
	for _, frac := range []float64{0.15, 0.4, 0.7, 0.95} {
		cuts = append(cuts, int(float64(len(data))*frac))
	}
	// Torn-line cuts: a crash most often tears the very line being
	// flushed, and a torn "#CHK ... masked:20" or "#END ..." can truncate
	// to syntactically valid text with wrong values — recovery must
	// discard the unterminated tail, not trust or choke on it.
	s := string(data)
	if i := strings.LastIndex(s, "#CHK"); i >= 0 {
		cuts = append(cuts, i+10)
	}
	if i := strings.LastIndex(s, "#END"); i >= 0 {
		cuts = append(cuts, i+9, len(data)-1)
	}
	for _, cut := range cuts {
		var recovered bytes.Buffer
		if err := RecoverLog(&recovered, bytes.NewReader(data[:cut]), dev, kern, cfg); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		got, err := logdata.Parse(strings.NewReader(recovered.String()))
		if err != nil {
			t.Fatalf("cut %d: recovered log unparseable: %v", cut, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d bytes: recovered log differs from the uninterrupted run", cut)
		}
	}

	// A complete log passes through recovery untouched too.
	var normalized bytes.Buffer
	if err := RecoverLog(&normalized, bytes.NewReader(data), dev, kern, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := logdata.Parse(strings.NewReader(normalized.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recovering a complete log changed it")
	}
}

// TestRecoverLogRejectsMismatchedCell guards against resuming a log under
// the wrong cell or seed, which would silently fabricate a hybrid
// campaign.
func TestRecoverLogRejectsMismatchedCell(t *testing.T) {
	dev := k40.New()
	kern := dgemm.New(128)
	cfg := DefaultConfig(29, 60)
	cfg.StreamChunk = 16

	info, err := CellInfo(dev, kern, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink, err := NewCheckpointSink(&buf, info, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunStreaming(dev, kern, cfg, sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := RecoverLog(&out, bytes.NewReader(buf.Bytes()), dev, dgemm.New(256), cfg); err == nil {
		t.Fatal("recovery accepted a log from a different input size")
	}
	badSeed := cfg
	badSeed.Seed = 999
	if err := RecoverLog(&out, bytes.NewReader(buf.Bytes()), dev, kern, badSeed); err == nil {
		t.Fatal("recovery accepted a log written under a different seed")
	}
}

// TestStreamChunkInvariant pins StreamChunk's contract: like Workers it
// may never change results, only flush granularity.
func TestStreamChunkInvariant(t *testing.T) {
	dev := phi.New()
	kern := lavamd.New(4)
	base := DefaultConfig(31, 100)
	var first *Result
	for _, chunk := range []int{1, 7, 64, 1000} {
		cfg := base
		cfg.StreamChunk = chunk
		res := RunFresh(dev, kern, cfg)
		if first == nil {
			first = res
			continue
		}
		requireIdentical(t, "StreamChunk", first, res)
	}
}

// TestToLogReconstructsTally pins the ToLog fix: masked outcomes must
// survive the write/parse round trip so the full tally is recoverable
// from a published log.
func TestToLogReconstructsTally(t *testing.T) {
	res := Run(phi.New(), dgemm.New(128), DefaultConfig(7, 150))
	if res.Tally.Masked == 0 {
		t.Fatal("cell produced no masked outcomes; pick another seed")
	}
	var sb strings.Builder
	if err := logdata.Write(&sb, res.ToLog(7)); err != nil {
		t.Fatal(err)
	}
	parsed, err := logdata.Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Masked != res.Tally.Masked {
		t.Fatalf("parsed masked %d != %d", parsed.Masked, res.Tally.Masked)
	}
	if parsed.Masked+parsed.SDCCount()+parsed.CrashHangCount() != res.Tally.Count() {
		t.Fatalf("parsed log reconstructs %d outcomes, want %d",
			parsed.Masked+parsed.SDCCount()+parsed.CrashHangCount(), res.Tally.Count())
	}
}
