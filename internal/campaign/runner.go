package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"radcrit/internal/fit"
	"radcrit/internal/injector"
)

// Summary is one cell's aggregated statistics under the plan's
// thresholds. Both the batch and the streaming engines produce it — from
// retained reports and from online reducers respectively — and the two
// are bit-identical for a given plan (pinned by the golden suite), so
// consumers can switch engines without re-baselining.
type Summary struct {
	// Thresholds are the relative-error filters (percent) the per-index
	// slices below are computed under.
	Thresholds []float64
	// Tally is the outcome census of the cell.
	Tally injector.Tally
	// SDCFIT[k] is the SDC failure rate (FIT, arbitrary units) under
	// Thresholds[k].
	SDCFIT []float64
	// Locality[k] is the spatial-pattern FIT breakdown under
	// Thresholds[k].
	Locality []fit.Breakdown
	// FilteredFraction[k] is the share of SDC executions fully cleared by
	// Thresholds[k].
	FilteredFraction []float64
	// DUEFIT is the crash+hang failure rate.
	DUEFIT float64
}

// CellOutcome is one plan cell's execution record.
type CellOutcome struct {
	// Spec is the cell as the plan named it.
	Spec CellSpec
	// Info is the resolved cell identity and exposure (zero if the cell
	// failed before its session was established). On a cancelled
	// streaming cell both Info and Summary are rescaled to the strikes
	// actually consumed, so rates derived from either are consistent.
	Info StreamInfo
	// Summary holds the cell's statistics; on a cancelled streaming cell
	// it holds the chunk-aligned partial state accumulated so far. Nil
	// when the cell failed outright.
	Summary *Summary
	// Result is the retained batch result (nil under StreamRunner, whose
	// point is not retaining reports).
	Result *Result
	// Err is the cell's failure: a *CellError for an invalid cell, or
	// ctx.Err() if the run was cancelled while this cell was in flight.
	Err error
}

// PlanResult is a Runner's record of one plan execution, cell for cell in
// plan order. A cancelled or partially failed run still returns a
// PlanResult holding every outcome gathered so far.
type PlanResult struct {
	// Plan is the executed plan.
	Plan *Plan
	// Thresholds are the effective summary thresholds.
	Thresholds []float64
	// Cells holds one outcome per plan cell. On early cancellation the
	// tail cells carry Err == ctx.Err() and no summary.
	Cells []*CellOutcome
}

// Err joins the per-cell errors (nil when every cell succeeded).
func (r *PlanResult) Err() error {
	var errs []error
	for _, c := range r.Cells {
		if c != nil && c.Err != nil {
			errs = append(errs, c.Err)
		}
	}
	return errors.Join(errs...)
}

// Progress carries a Runner's optional observation hooks. Hooks are
// invoked synchronously; MatrixRunner serialises OnCell calls, so hooks
// never need their own locking.
type Progress struct {
	// OnCell fires when a cell completes (successfully or not), with its
	// plan index.
	OnCell func(i int, out *CellOutcome)
	// OnChunk fires at every streaming chunk boundary with the number of
	// strikes consumed so far; only StreamRunner emits it.
	OnChunk func(cell int, done int)
}

// Runner executes a validated plan under a context. Implementations
// honour cancellation at chunk boundaries, return the partial PlanResult
// gathered so far together with ctx.Err(), and leak no goroutines. An
// invalid plan is rejected up front (Plan.Validate) — no panic is
// reachable from any Runner for any plan value.
type Runner interface {
	Run(ctx context.Context, p *Plan) (*PlanResult, error)
}

// BatchRunner executes cells sequentially through the memoised batch
// engine: every CellOutcome retains its full *Result (reports included),
// and cells shared with other plans or figure builders are computed once.
// Memory is O(total SDC reports); prefer StreamRunner for huge strike
// budgets.
type BatchRunner struct {
	Progress Progress
}

// MatrixRunner is BatchRunner with cell-level concurrency: all cells run
// at once (each memoised and single-flighted), composing with the
// per-cell worker pool exactly like RunMatrix. Outcomes are still
// reported in plan order.
type MatrixRunner struct {
	Progress Progress
}

// StreamRunner executes cells sequentially through the streaming engine:
// summaries come from online reducers, no reports are retained, and peak
// memory per cell is O(StreamChunk + reducer state). A cancelled cell's
// outcome keeps the partial reducer state accumulated up to the last
// complete chunk.
type StreamRunner struct {
	Progress Progress
}

var (
	_ Runner = (*BatchRunner)(nil)
	_ Runner = (*MatrixRunner)(nil)
	_ Runner = (*StreamRunner)(nil)
)

// planStart validates and builds the plan (honouring ctx between kernel
// constructions — the golden simulations happen here) and allocates the
// shared result shell. An invalid plan returns (nil, nil, err); a
// cancellation during the build phase returns the shell with every cell
// marked ctx.Err(), honouring the Runner contract that a cancelled run
// always yields a partial PlanResult.
func planStart(ctx context.Context, p *Plan) (*PlanResult, []Cell, error) {
	cells, err := p.BuildCtx(ctx)
	if err != nil {
		if isCancellation(err) {
			res := planShell(p)
			markCancelled(res.Cells, err)
			return res, nil, err
		}
		return nil, nil, err
	}
	return planShell(p), cells, nil
}

// planShell allocates a PlanResult with one empty outcome per plan cell.
func planShell(p *Plan) *PlanResult {
	res := &PlanResult{
		Plan:       p,
		Thresholds: p.EffectiveThresholds(),
		Cells:      make([]*CellOutcome, len(p.Cells)),
	}
	for i := range res.Cells {
		res.Cells[i] = &CellOutcome{Spec: p.Cells[i]}
	}
	return res
}

// batchSummary derives a Summary from a retained batch Result.
func batchSummary(res *Result, ts []float64) *Summary {
	s := &Summary{
		Thresholds: append([]float64(nil), ts...),
		Tally:      res.Tally,
		DUEFIT:     res.DUEFIT(),
	}
	for _, t := range ts {
		s.SDCFIT = append(s.SDCFIT, res.SDCFIT(t))
		s.Locality = append(s.Locality, res.LocalityBreakdown(t))
		s.FilteredFraction = append(s.FilteredFraction, res.FilteredFraction(t))
	}
	return s
}

// runBatchCell executes one resolved cell through the memoised engine and
// fills its outcome.
func runBatchCell(ctx context.Context, cell Cell, cfg Config, ts []float64, out *CellOutcome) {
	res, err := RunCtx(ctx, cell.Dev, cell.Kern, cfg)
	if err != nil {
		out.Err = err
		return
	}
	out.Result = res
	out.Info = StreamInfo{
		Device:   res.Device,
		Kernel:   res.Kernel,
		Input:    res.Input,
		Profile:  res.Profile,
		Strikes:  res.Strikes,
		Exposure: res.Exposure,
	}
	out.Summary = batchSummary(res, ts)
}

// rejectAdaptive refuses adaptive plans on the batch engines: the memo
// cache and retained-report path always run a cell's full budget, so
// silently ignoring the spec would quietly spend the strikes the plan
// asked to save.
func rejectAdaptive(p *Plan, engine string) error {
	if p != nil && p.Adaptive != nil {
		return fmt.Errorf("campaign: plan %q has an adaptive spec; the %s engine cannot stop early — use StreamRunner or AdaptiveRunner", p.Name, engine)
	}
	return nil
}

// Run implements Runner.
func (r *BatchRunner) Run(ctx context.Context, p *Plan) (*PlanResult, error) {
	if err := rejectAdaptive(p, "batch"); err != nil {
		return nil, err
	}
	res, cells, err := planStart(ctx, p)
	if err != nil {
		// res is non-nil (with cells marked) for build-phase cancellation,
		// nil for an invalid plan.
		return res, err
	}
	for i, cell := range cells {
		if cerr := ctx.Err(); cerr != nil {
			markCancelled(res.Cells[i:], cerr)
			return res, cerr
		}
		runBatchCell(ctx, cell, p.Config(), res.Thresholds, res.Cells[i])
		if r.Progress.OnCell != nil {
			r.Progress.OnCell(i, res.Cells[i])
		}
		if isCancellation(res.Cells[i].Err) {
			markCancelled(res.Cells[i+1:], res.Cells[i].Err)
			return res, ctx.Err()
		}
	}
	return res, res.Err()
}

// Run implements Runner.
func (r *MatrixRunner) Run(ctx context.Context, p *Plan) (*PlanResult, error) {
	if err := rejectAdaptive(p, "matrix"); err != nil {
		return nil, err
	}
	res, cells, err := planStart(ctx, p)
	if err != nil {
		// res is non-nil (with cells marked) for build-phase cancellation,
		// nil for an invalid plan.
		return res, err
	}
	var mu sync.Mutex // serialises Progress.OnCell
	var wg sync.WaitGroup
	wg.Add(len(cells))
	for i, cell := range cells {
		go func(i int, cell Cell) {
			defer wg.Done()
			runBatchCell(ctx, cell, p.Config(), res.Thresholds, res.Cells[i])
			if r.Progress.OnCell != nil {
				mu.Lock()
				r.Progress.OnCell(i, res.Cells[i])
				mu.Unlock()
			}
		}(i, cell)
	}
	wg.Wait()
	if cerr := ctx.Err(); cerr != nil {
		return res, cerr
	}
	return res, res.Err()
}

// markCancelled stamps ctx's error on outcomes the runner never reached.
func markCancelled(outs []*CellOutcome, err error) {
	for _, o := range outs {
		if o.Err == nil && o.Summary == nil {
			o.Err = err
		}
	}
}

// streamReducers is the reducer stack a StreamRunner attaches per cell.
type streamReducers struct {
	tally  *TallyReducer
	counts *SDCCountReducer
	locs   []*LocalityReducer
	fracs  []*FilteredFractionReducer
}

func newStreamReducers(ts []float64) *streamReducers {
	r := &streamReducers{
		tally:  NewTallyReducer(),
		counts: NewSDCCountReducer(ts...),
	}
	for _, t := range ts {
		r.locs = append(r.locs, NewLocalityReducer(t))
		r.fracs = append(r.fracs, NewFilteredFractionReducer(t))
	}
	return r
}

// consumed counts the strikes the reducer stack has actually seen.
func (r *streamReducers) consumed() int {
	t := r.tally.Tally
	return t.Masked + t.SDC + t.Crash + t.Hang
}

// prefixInfo rescales a cell's exposure to the strikes consumed before a
// cancellation, so partial FIT values are true rates over the prefix.
func prefixInfo(info StreamInfo, consumed int) StreamInfo {
	info.Strikes = consumed
	info.Exposure.BeamHours = info.Exposure.HoursForStrikes(float64(consumed))
	return info
}

func (r *streamReducers) sinks() []Sink {
	sinks := []Sink{r.tally, r.counts}
	for _, l := range r.locs {
		sinks = append(sinks, l)
	}
	for _, f := range r.fracs {
		sinks = append(sinks, f)
	}
	return sinks
}

// summary folds the reducer state under the cell's exposure. It is valid
// on partial (cancelled) state too: every statistic is over the
// chunk-aligned prefix consumed so far.
func (r *streamReducers) summary(ts []float64, info StreamInfo) *Summary {
	s := &Summary{
		Thresholds: append([]float64(nil), ts...),
		Tally:      r.tally.Tally,
		DUEFIT:     fit.FITFromCampaign(r.tally.Tally.Crash+r.tally.Tally.Hang, info.Exposure),
	}
	for k := range ts {
		s.SDCFIT = append(s.SDCFIT, r.counts.FIT(k, info.Exposure))
		s.Locality = append(s.Locality, r.locs[k].Breakdown(info.Exposure))
		s.FilteredFraction = append(s.FilteredFraction, r.fracs[k].Fraction())
	}
	return s
}

// chunkRelay forwards chunk boundaries to a Progress hook.
type chunkRelay struct {
	cell int
	fn   func(cell, done int)
}

func (c *chunkRelay) Consume(int, injector.Outcome) {}
func (c *chunkRelay) FlushChunk(next int)           { c.fn(c.cell, next) }

// Run implements Runner.
func (r *StreamRunner) Run(ctx context.Context, p *Plan) (*PlanResult, error) {
	res, cells, err := planStart(ctx, p)
	if err != nil {
		// res is non-nil (with cells marked) for build-phase cancellation,
		// nil for an invalid plan.
		return res, err
	}
	cfg := p.Config()
	for i, cell := range cells {
		out := res.Cells[i]
		if cerr := ctx.Err(); cerr != nil {
			markCancelled(res.Cells[i:], cerr)
			return res, cerr
		}
		var extra []Sink
		if r.Progress.OnChunk != nil {
			extra = append(extra, &chunkRelay{cell: i, fn: r.Progress.OnChunk})
		}
		// RunPlanCell handles the cancellation bookkeeping: a cancelled
		// cell comes back with its info rescaled to the strikes actually
		// consumed and the partial summary over that prefix — against the
		// full planned exposure the FIT rates would be biased low by the
		// cancelled fraction.
		info, sum, err := RunPlanCell(ctx, cell, cfg, res.Thresholds, extra...)
		out.Info, out.Summary = info, sum
		if err != nil {
			out.Err = err
			if isCancellation(err) {
				if r.Progress.OnCell != nil {
					r.Progress.OnCell(i, out)
				}
				markCancelled(res.Cells[i+1:], err)
				return res, ctx.Err()
			}
		}
		if r.Progress.OnCell != nil {
			r.Progress.OnCell(i, out)
		}
	}
	return res, res.Err()
}
